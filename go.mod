module freerideg

go 1.22
