// Integration tests exercising the whole stack together: data repository,
// middleware, prediction framework, and resource selection.
package freerideg_test

import (
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/core"
	"freerideg/internal/grid"
	"freerideg/internal/middleware"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

func integrationHarness(t *testing.T) *bench.Harness {
	t.Helper()
	h, err := bench.NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestResourceSelectionPicksNearOptimal runs the full decision loop the
// middleware automates: profile once, rank every feasible (replica,
// configuration) pair by prediction, then simulate every pair and check
// the selected one is (near-)optimal in actual execution time.
func TestResourceSelectionPicksNearOptimal(t *testing.T) {
	h := integrationHarness(t)
	for _, app := range []string{"kmeans", "vortex", "defect"} {
		app := app
		t.Run(app, func(t *testing.T) {
			a, err := apps.Get(app)
			if err != nil {
				t.Fatal(err)
			}
			total := 256 * units.MB
			spec, err := bench.Dataset(app, total)
			if err != nil {
				t.Fatal(err)
			}
			cost, err := a.Cost(spec)
			if err != nil {
				t.Fatal(err)
			}
			baseCfg := core.Config{
				Cluster:      bench.PentiumCluster,
				DataNodes:    1,
				ComputeNodes: 1,
				Bandwidth:    middleware.DefaultBandwidth,
				DatasetBytes: total,
			}
			base, err := h.Grid().Simulate(cost, spec, baseCfg)
			if err != nil {
				t.Fatal(err)
			}
			pred, err := core.NewPredictor(base.Profile, a.Model)
			if err != nil {
				t.Fatal(err)
			}
			for cl, cal := range h.Links() {
				pred.Links[cl] = cal
			}

			svc := grid.NewService()
			for _, site := range []struct {
				name  string
				nodes int
				bw    units.Rate
			}{
				{"near", 2, 100 * units.MBPerSec},
				{"mid", 4, 50 * units.MBPerSec},
				{"far", 8, 20 * units.MBPerSec},
			} {
				layout, err := adr.Partition(spec, site.nodes, adr.RoundRobin)
				if err != nil {
					t.Fatal(err)
				}
				if err := svc.Replicas.Register(adr.Replica{
					Site: site.name, Cluster: bench.PentiumCluster,
					StorageNodes: site.nodes, Layout: layout,
				}); err != nil {
					t.Fatal(err)
				}
				if err := svc.SetBandwidth(site.name, bench.PentiumCluster, site.bw); err != nil {
					t.Fatal(err)
				}
			}
			for _, nodes := range []int{2, 4, 8, 16} {
				if err := svc.AddOffer(grid.ComputeOffer{Cluster: bench.PentiumCluster, Nodes: nodes}); err != nil {
					t.Fatal(err)
				}
			}

			sel := &grid.Selector{Predictor: pred, Variant: core.GlobalReduction}
			ranked, err := sel.Rank(svc, spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			if len(ranked) < 6 {
				t.Fatalf("only %d candidates enumerated", len(ranked))
			}

			// Ground truth: simulate every candidate.
			bestActual := -1.0
			var chosenActual float64
			for i, cand := range ranked {
				res, err := h.Grid().Simulate(cost, spec, cand.Config)
				if err != nil {
					t.Fatal(err)
				}
				actual := res.Makespan.Seconds()
				if bestActual < 0 || actual < bestActual {
					bestActual = actual
				}
				if i == 0 {
					chosenActual = actual
				}
				// Every prediction must be individually sane.
				if e := stats.RelError(actual, cand.Prediction.Texec().Seconds()); e > 0.15 {
					t.Errorf("candidate %s/%d-%d predicted %.1f%% off",
						cand.Replica.Site, cand.Config.DataNodes, cand.Config.ComputeNodes, 100*e)
				}
			}
			// The selected pair must be within 5% of the true optimum.
			if chosenActual > bestActual*1.05 {
				t.Errorf("selected pair runs in %.2fs, true best is %.2fs", chosenActual, bestActual)
			}
		})
	}
}

// TestProfileStoreDrivesPrediction saves a profile store to disk and
// rebuilds a working cross-cluster predictor from the file alone.
func TestProfileStoreDrivesPrediction(t *testing.T) {
	h := integrationHarness(t)
	const app = "em"
	total := 128 * units.MB
	a, _ := apps.Get(app)
	spec, err := bench.Dataset(app, total)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := a.Cost(spec)
	if err != nil {
		t.Fatal(err)
	}
	baseCfg := core.Config{
		Cluster:      bench.PentiumCluster,
		DataNodes:    1,
		ComputeNodes: 1,
		Bandwidth:    middleware.DefaultBandwidth,
		DatasetBytes: total,
	}
	base, err := h.Grid().Simulate(cost, spec, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	store := core.ProfileStore{
		Profiles: []core.Profile{base.Profile},
		Links:    h.Links(),
	}
	path := t.TempDir() + "/store.json"
	if err := core.SaveStore(path, store); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := core.NewPredictorFromStore(loaded, app, a.Model)
	if err != nil {
		t.Fatal(err)
	}
	target := baseCfg
	target.DataNodes, target.ComputeNodes = 2, 8
	p, err := pred.Predict(target, core.GlobalReduction)
	if err != nil {
		t.Fatal(err)
	}
	actual, err := h.Grid().Simulate(cost, spec, target)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelError(actual.Makespan.Seconds(), p.Texec().Seconds()); e > 0.05 {
		t.Fatalf("store-driven prediction off by %.1f%%", 100*e)
	}
}

// TestLocalAndSimulatedBackendsAgreeStructurally runs the same application
// on both backends and checks the structural facts the prediction model
// relies on hold for real executions too: the reduction object size
// matches the cost model, iteration counts agree, and the profile is
// valid.
func TestLocalAndSimulatedBackendsAgreeStructurally(t *testing.T) {
	h := integrationHarness(t)
	for _, app := range apps.Names() {
		app := app
		t.Run(app, func(t *testing.T) {
			a, _ := apps.Get(app)
			spec, err := bench.DatasetChunked(app, 2*units.MB, 256*units.KB)
			if err != nil {
				t.Fatal(err)
			}
			cost, err := a.Cost(spec)
			if err != nil {
				t.Fatal(err)
			}
			kern, err := a.NewKernel(spec)
			if err != nil {
				t.Fatal(err)
			}
			local, err := middleware.RunLocal(kern, spec, 1, 2)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.Config{
				Cluster:      bench.PentiumCluster,
				DataNodes:    1,
				ComputeNodes: 2,
				Bandwidth:    middleware.DefaultBandwidth,
				DatasetBytes: spec.TotalBytes,
			}
			sim, err := h.Grid().Simulate(cost, spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := local.Profile.Validate(); err != nil {
				t.Fatal(err)
			}
			if local.Iterations > sim.Profile.Iterations {
				t.Errorf("local ran %d passes, cost model caps at %d",
					local.Iterations, sim.Profile.Iterations)
			}
			// The cost model's RO size estimate must be within 2x of the
			// real measured object (they use the same formulas but the
			// real object includes encoding overheads).
			real := float64(local.Profile.ROBytesPerNode)
			model := float64(sim.Profile.ROBytesPerNode)
			if real > 2*model || model > 2*real {
				t.Errorf("RO size mismatch: real %v vs model %v",
					local.Profile.ROBytesPerNode, sim.Profile.ROBytesPerNode)
			}
		})
	}
}
