#!/bin/sh
# check.sh — the repository's fast correctness gate: formatting, vet, a
# module-wide race-detector run (the fault-injected goroutine backends
# exercise real concurrency well beyond the middleware package), and a
# fuzz seed-corpus regression pass (every Fuzz* target replayed against
# its checked-in corpus, no new fuzzing).
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...

# -shuffle=on randomizes test and subtest order so hidden inter-test
# state dependencies surface instead of calcifying.
go test -race -shuffle=on ./...

# Benchmark smoke pass: compile and run every Benchmark* exactly once so
# the tracked perf suite can't rot between `make bench` refreshes.
go test -run='^$' -bench=. -benchtime=1x ./...

# Fuzz regression mode: -run='^Fuzz' replays each target's seed corpus
# (f.Add seeds plus files under testdata/fuzz/) as ordinary tests.
go test -run='^Fuzz' ./internal/simgrid/

# Every command must build — a broken main is invisible to `go test`.
go build ./cmd/...

# fgserved smoke: start the service on an ephemeral port, drive every
# endpoint over real TCP, assert the request/instrumentation counters
# moved between two /metrics scrapes, and shut down gracefully. A small
# base size keeps the self-profiling simulation quick.
go run ./cmd/fgserved -selfcheck -base-size 64MB

echo "check: OK"
