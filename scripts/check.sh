#!/bin/sh
# check.sh — the repository's fast correctness gate: formatting, vet, a
# module-wide race-detector run (the fault-injected goroutine backends
# exercise real concurrency well beyond the middleware package), and a
# fuzz seed-corpus regression pass (every Fuzz* target replayed against
# its checked-in corpus, no new fuzzing).
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...

# -shuffle=on randomizes test and subtest order so hidden inter-test
# state dependencies surface instead of calcifying.
go test -race -shuffle=on ./...

# The serve path (response cache, handlers, load harness) gets a second
# racing pass: -count=2 reruns every test in-process so state leaked by
# a first run (cache entries, shared metric counters) breaks the second.
go test -race -count=2 -shuffle=on ./internal/fgservice/ ./internal/servecache/ ./internal/loadgen/

# Benchmark smoke pass: compile and run every Benchmark* exactly once so
# the tracked perf suite can't rot between `make bench` refreshes.
go test -run='^$' -bench=. -benchtime=1x ./...

# Allocation gates (race-free on purpose: the race detector makes
# sync.Pool drop items at random, so the pooled paths only meet their
# budgets under a plain build): the warm rank path and the pooled JSON
# encoder must hold their testing.AllocsPerRun budgets.
go test -run='Allocs' ./internal/grid/ ./internal/fgservice/

# Metrics scrape-vs-observe regression, explicitly under the race
# detector: a scrape stalled on a slow writer must never block
# observers or registration — the exposition formats from snapshots
# taken under the locks, never while holding them.
go test -race -run 'TestScrape' -count=1 ./internal/metrics/

# Request-tracing smoke: the span-tree acceptance test (a forced-miss
# /predict/batch trace shows root → handler → item → fill → simulate
# and is retrievable from /debug/requests by its X-FG-Request-ID) plus
# the reqtrace package under the race detector. The fgserved selfcheck
# below re-proves the ID round-trip over real TCP.
go test -race -run 'TestPredictBatchTraceTree|TestTimeoutEnvelopeCarriesRequestID' -count=1 ./internal/fgservice/
go test -race -count=1 ./internal/reqtrace/

# Fuzz regression mode: -run='^Fuzz' replays each target's seed corpus
# (f.Add seeds plus files under testdata/fuzz/) as ordinary tests.
go test -run='^Fuzz' ./internal/simgrid/ ./internal/fgservice/

# Every command must build — a broken main is invisible to `go test`.
go build ./cmd/...

# fgserved smoke: start the service on an ephemeral port, drive every
# endpoint over real TCP, assert the request/instrumentation counters
# moved between two /metrics scrapes, that every response carries an
# X-FG-Request-ID which round-trips into /debug/requests (error
# envelopes echo it as requestId), and shut down gracefully. A small
# base size keeps the self-profiling simulation quick.
go run ./cmd/fgserved -selfcheck -base-size 64MB

# fgload smoke: a short seeded load run with interleaved recalibrations
# against an in-process server. fgload exits nonzero on any transport
# error, 5xx, or cache-coherence violation, so this line is the gate
# that the serve-path cache stays coherent under concurrent load.
go run ./cmd/fgload -requests 120 -concurrency 6 -seed 1 -base-size 16MB -coherence-batches 2 -out /dev/null

# Batch-plane smoke: fold /predict/batch and /select/batch into the mix
# (per-item errors and per-item coherence are gated the same way) and
# run a small batch-vs-sequential A/B over a loopback listener.
go run ./cmd/fgload -requests 120 -concurrency 6 -seed 1 -base-size 16MB -coherence-batches 2 \
    -mix "predict=4,select=2,observe=1,runs=1,predictbatch=2,selectbatch=2" -batch-ab 16 -out /dev/null

# Cancellation smoke: the same seeded mix under a client deadline tight
# enough to abandon requests mid-handling. -expect-timeouts keeps
# 499/504 outcomes (the point of the run) and 503 shedding (timed-out
# clients refire before abandoned slots unwind) from tripping the gate,
# anything else still exits nonzero, and -goroutine-check asserts the
# abandoned requests drained instead of stranding handler goroutines.
go run ./cmd/fgload -requests 200 -concurrency 8 -seed 7 -base-size 16MB -client-timeout 2ms \
    -mix "predict=3,select=3,observe=1,runs=1,predictbatch=1,selectbatch=1" \
    -expect-timeouts -goroutine-check -out /dev/null

echo "check: OK"
