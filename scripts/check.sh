#!/bin/sh
# check.sh — the repository's fast correctness gate: formatting, vet, and
# a race-detector run over the packages with real concurrency (the
# middleware backends and the reduction kernels they drive).
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...

go test -race ./internal/middleware/... ./internal/reduction/...

echo "check: OK"
