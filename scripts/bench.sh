#!/bin/sh
# bench.sh — run the tracked performance suite and refresh
# BENCH_sweep.json at the repo root. The benchmarks live under
# ./internal/... (engine event loop, Grid.Simulate, Selector.Rank, and
# the serial-vs-parallel figure sweep); -benchtime=1x -count=3 keeps the
# run cheap while letting fgbench report min/mean over three samples.
set -eu

cd "$(dirname "$0")/.."

out=$(mktemp)
trap 'rm -f "$out"' EXIT

if ! go test -run='^$' -bench=. -benchtime=1x -count=3 ./internal/... > "$out" 2>&1; then
    echo "bench.sh: benchmark run failed:" >&2
    cat "$out" >&2
    exit 1
fi
cat "$out"

go run ./cmd/fgbench -in "$out" -out BENCH_sweep.json

# Serve-path benchmark: fgload A/Bs an in-process cold server (response
# cache disabled) against a warm one on a read-heavy mix and writes the
# latency quantiles, cache counters, and cold/warm speedups. -batch-ab
# adds the batch-plane measurement: 64 sequential singular calls versus
# one 64-item batch call, both cold, over a real loopback listener.
go run ./cmd/fgload -requests 3000 -concurrency 8 -seed 1 -base-size 16MB \
    -mix "predict=8,select=2" -compare -batch-ab 64 -out BENCH_serve.json
