// Benchmarks regenerating the paper's evaluation: one benchmark per
// figure (Figures 2-13), wall-clock benchmarks of the real application
// kernels, and the design-choice ablations from DESIGN.md.
//
// Figure benchmarks report two custom metrics alongside time/op:
// the maximum and mean relative prediction error (in percent) of the
// paper's most accurate model variant over the 14-configuration grid.
package freerideg_test

import (
	"sync"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/middleware"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

var (
	harnessOnce sync.Once
	harness     *bench.Harness
	harnessErr  error
)

func getHarness(b *testing.B) *bench.Harness {
	b.Helper()
	harnessOnce.Do(func() {
		harness, harnessErr = bench.NewHarness()
	})
	if harnessErr != nil {
		b.Fatal(harnessErr)
	}
	return harness
}

// benchFigure regenerates one figure per iteration and reports the
// headline error metrics of the figure's most accurate variant.
func benchFigure(b *testing.B, id string) {
	h := getHarness(b)
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = h.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := fig.Variants[len(fig.Variants)-1] // global reduction last
	b.ReportMetric(100*fig.MaxError(best), "maxerr%")
	b.ReportMetric(100*fig.MeanError(best), "meanerr%")
}

func BenchmarkFig02KMeansParallel(b *testing.B)     { benchFigure(b, "fig2") }
func BenchmarkFig03Vortex(b *testing.B)             { benchFigure(b, "fig3") }
func BenchmarkFig04Defect(b *testing.B)             { benchFigure(b, "fig4") }
func BenchmarkFig05EM(b *testing.B)                 { benchFigure(b, "fig5") }
func BenchmarkFig06KNN(b *testing.B)                { benchFigure(b, "fig6") }
func BenchmarkFig07EMDatasetScale(b *testing.B)     { benchFigure(b, "fig7") }
func BenchmarkFig08DefectDatasetScale(b *testing.B) { benchFigure(b, "fig8") }
func BenchmarkFig09DefectBandwidth(b *testing.B)    { benchFigure(b, "fig9") }
func BenchmarkFig10EMBandwidth(b *testing.B)        { benchFigure(b, "fig10") }
func BenchmarkFig11EMCrossCluster(b *testing.B)     { benchFigure(b, "fig11") }
func BenchmarkFig12DefectCrossCluster(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13VortexCrossCluster(b *testing.B) { benchFigure(b, "fig13") }

// ---------------------------------------------------------------------
// Ablation benchmarks (design choices called out in DESIGN.md).

func BenchmarkAblationTreeGather(b *testing.B) {
	h := getHarness(b)
	var res bench.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = h.AblationTreeGather("kmeans")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Baseline, "base-err%")
	b.ReportMetric(100*res.Variant, "tree-err%")
}

func BenchmarkAblationFlowControl(b *testing.B) {
	h := getHarness(b)
	var res bench.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = h.AblationFlowControl("knn")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Baseline, "sync-gap%")
	b.ReportMetric(100*res.Variant, "async-gap%")
}

func BenchmarkAblationStorageScaling(b *testing.B) {
	h := getHarness(b)
	var res bench.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = h.AblationStorageScaling("knn")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Baseline, "with-term%")
	b.ReportMetric(100*res.Variant, "dropped%")
}

func BenchmarkAblationDiskCache(b *testing.B) {
	h := getHarness(b)
	var res bench.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = h.AblationDiskCache("kmeans")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Baseline, "split-err%")
	b.ReportMetric(100*res.Variant, "naive-err%")
}

func BenchmarkAblationClassInference(b *testing.B) {
	h := getHarness(b)
	mismatches := 0
	for i := 0; i < b.N; i++ {
		inferred, err := h.InferredModels()
		if err != nil {
			b.Fatal(err)
		}
		mismatches = 0
		for _, name := range apps.Names() {
			a, _ := apps.Get(name)
			if inferred[name] != a.Model {
				mismatches++
			}
		}
	}
	b.ReportMetric(float64(mismatches), "mismatches")
}

// ---------------------------------------------------------------------
// Real-kernel benchmarks: per-chunk processing throughput of each
// application's actual implementation (bytes/s via SetBytes).

func kernelSpec(kind string) adr.DatasetSpec {
	spec := adr.DatasetSpec{
		Name:       "bench-" + kind,
		TotalBytes: 4 * units.MB,
		ChunkBytes: units.MB,
		Kind:       kind,
		Seed:       71,
	}
	switch kind {
	case "points":
		spec.ElemBytes, spec.Dims = 128, 16
	case "field":
		spec.ElemBytes, spec.Dims = 16, 2
	case "lattice":
		spec.ElemBytes, spec.Dims = 24, 3
	case "transactions":
		spec.ElemBytes, spec.Dims = 96, 12
	}
	return spec
}

func benchKernelChunk(b *testing.B, app string) {
	a, err := apps.Get(app)
	if err != nil {
		b.Fatal(err)
	}
	spec := kernelSpec(a.DatasetKind)
	gen, err := datagen.For(spec.Kind)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		b.Fatal(err)
	}
	chunk := layout.Chunks()[0]
	payload := reduction.Payload{
		Chunk:  chunk,
		Fields: gen.FieldsPerElem(spec),
		Values: gen.ChunkValues(spec, chunk),
	}
	kern, err := a.NewKernel(spec)
	if err != nil {
		b.Fatal(err)
	}
	obj := kern.NewObject()
	b.SetBytes(int64(chunk.Bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kern.ProcessChunk(payload, obj); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelKMeans(b *testing.B)  { benchKernelChunk(b, "kmeans") }
func BenchmarkKernelEM(b *testing.B)      { benchKernelChunk(b, "em") }
func BenchmarkKernelKNN(b *testing.B)     { benchKernelChunk(b, "knn") }
func BenchmarkKernelVortex(b *testing.B)  { benchKernelChunk(b, "vortex") }
func BenchmarkKernelDefect(b *testing.B)  { benchKernelChunk(b, "defect") }
func BenchmarkKernelApriori(b *testing.B) { benchKernelChunk(b, "apriori") }
func BenchmarkKernelANN(b *testing.B)     { benchKernelChunk(b, "ann") }

// BenchmarkLocalBackendScaling runs the full goroutine middleware at two
// parallelism levels, showing the real speedup the prediction framework
// models.
func BenchmarkLocalBackendScaling(b *testing.B) {
	for _, nodes := range []int{1, 4} {
		nodes := nodes
		b.Run(map[int]string{1: "c1", 4: "c4"}[nodes], func(b *testing.B) {
			a, _ := apps.Get("kmeans")
			spec := kernelSpec("points")
			for i := 0; i < b.N; i++ {
				kern, err := a.NewKernel(spec)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := middleware.RunLocal(kern, spec, 1, nodes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSMPStrategies compares the FREERIDE shared-memory techniques
// on a 4-thread SMP node (real execution).
func BenchmarkSMPStrategies(b *testing.B) {
	for _, strategy := range []middleware.ShmStrategy{middleware.FullReplication, middleware.FullLocking} {
		strategy := strategy
		b.Run(strategy.String(), func(b *testing.B) {
			a, _ := apps.Get("kmeans")
			spec := kernelSpec("points")
			for i := 0; i < b.N; i++ {
				kern, err := a.NewKernel(spec)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := middleware.RunShm(kern, spec, 4, strategy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures discrete-event simulation throughput for a
// paper-scale configuration (the harness's inner loop).
func BenchmarkSimulator(b *testing.B) {
	h := getHarness(b)
	a, _ := apps.Get("kmeans")
	total := 1434 * units.MB
	spec, err := bench.DatasetChunked("kmeans", total, bench.ChunkFor(total))
	if err != nil {
		b.Fatal(err)
	}
	cost, err := a.Cost(spec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Cluster:      bench.PentiumCluster,
		DataNodes:    8,
		ComputeNodes: 16,
		Bandwidth:    middleware.DefaultBandwidth,
		DatasetBytes: total,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Grid().Simulate(cost, spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
