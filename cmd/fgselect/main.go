// Command fgselect demonstrates the resource selection framework: a
// dataset replicated at several repository sites, a set of compute offers
// from two clusters, measured site-to-cluster bandwidths, and an
// application profile. It ranks every feasible (replica, configuration)
// pair by predicted execution time and picks the cheapest — the decision
// the FREERIDE-G middleware automates.
//
// The application profile lives in a versioned profile store (loaded
// with -load, or self-profiled and adopted into an in-memory store), and
// the selector resolves it through the store's live snapshot — the same
// path the fgserved service uses.
//
// Example:
//
//	fgselect -app kmeans -size 1.4GB
package main

import (
	"flag"
	"fmt"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/cliutil"
	"freerideg/internal/core"
	"freerideg/internal/grid"
	"freerideg/internal/profile"
	"freerideg/internal/units"
)

func main() {
	var (
		app      = cliutil.App("kmeans", apps.Names())
		size     = cliutil.Bytes("size", 7*units.GB/5, "dataset size")
		loadPath = flag.String("load", "", "read the application profile from this profile store instead of self-profiling")
		deadline = flag.Duration("deadline", 0, "plan the cheapest configuration meeting this deadline instead of the fastest")
		parallel = cliutil.Parallel("max workers evaluating candidate predictions (0 = GOMAXPROCS); ranking is identical either way")
	)
	flag.Parse()

	total := size.Bytes
	h, err := bench.NewHarness()
	if err != nil {
		fail(err)
	}
	a, err := apps.Get(*app)
	if err != nil {
		fail(err)
	}
	spec, err := bench.Dataset(*app, total)
	if err != nil {
		fail(err)
	}
	cost, err := a.Cost(spec)
	if err != nil {
		fail(err)
	}

	// The application profile comes through the store layer either way: a
	// -load file opens it directly; otherwise a 1-1 profiling run on the
	// Pentium cluster is adopted into a fresh in-memory store.
	var store *profile.Store
	if *loadPath != "" {
		if store, err = profile.Open(*loadPath, profile.Options{Lookup: modelLookup}); err != nil {
			fail(err)
		}
		snap := store.Snapshot()
		p, ver, ok := snap.Find(*app)
		if !ok {
			fail(fmt.Errorf("no profile for %q in %s", *app, *loadPath))
		}
		fmt.Printf("loaded profile (%s v%d) from %s: %v\n", *app, ver, *loadPath, p.Config)
	} else {
		baseCfg := core.Config{
			Cluster:      bench.PentiumCluster,
			DataNodes:    1,
			ComputeNodes: 1,
			Bandwidth:    100 * units.MBPerSec,
			DatasetBytes: total,
		}
		baseRes, err := h.Grid().Simulate(cost, spec, baseCfg)
		if err != nil {
			fail(err)
		}
		if store, err = profile.NewStore(core.ProfileStore{}, profile.Options{Lookup: modelLookup}); err != nil {
			fail(err)
		}
		if _, err := store.Ingest(profile.FromProfile(baseRes.Profile)); err != nil {
			fail(err)
		}
	}
	// Measured interconnects backstop clusters the store has no link
	// calibration for.
	store.SeedLinks(h.Links())

	// Grid information service: two replicas, three compute offers.
	svc := grid.NewService()
	for _, site := range []struct {
		name  string
		nodes int
		bw    units.Rate // to the Pentium cluster
	}{
		{"osu-repository", 4, 100 * units.MBPerSec},
		{"remote-mirror", 8, 25 * units.MBPerSec},
	} {
		layout, err := adr.Partition(spec, site.nodes, adr.RoundRobin)
		if err != nil {
			fail(err)
		}
		if err := svc.Replicas.Register(adr.Replica{
			Site: site.name, Cluster: bench.PentiumCluster,
			StorageNodes: site.nodes, Layout: layout,
		}); err != nil {
			fail(err)
		}
		if err := svc.SetBandwidth(site.name, bench.PentiumCluster, site.bw); err != nil {
			fail(err)
		}
	}
	for _, nodes := range []int{4, 8, 16} {
		if err := svc.AddOffer(grid.ComputeOffer{Cluster: bench.PentiumCluster, Nodes: nodes}); err != nil {
			fail(err)
		}
	}

	// The selector resolves the predictor from the store's live snapshot
	// per ranking round.
	sel := &grid.Selector{Source: store.NewSource(*app, a.Model), Variant: core.GlobalReduction, Parallel: *parallel}
	if *deadline > 0 {
		cand, err := grid.PlanCapacity(sel, svc, spec.Name, *deadline)
		if err != nil {
			fail(err)
		}
		fmt.Printf("cheapest configuration meeting %v: %s with %d storage / %d compute nodes (predicted %v)\n",
			*deadline, cand.Replica.Site, cand.Config.DataNodes, cand.Config.ComputeNodes,
			cand.Prediction.Texec().Round(time.Millisecond))
		return
	}
	ranked, err := sel.Rank(svc, spec.Name)
	if err != nil {
		fail(err)
	}
	fmt.Printf("resource selection for %s on %v (%d candidates):\n", *app, total, len(ranked))
	for i, cand := range ranked {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		fmt.Printf("%s %-16s %2d storage / %2d compute @ %-12v predicted %v\n",
			marker, cand.Replica.Site, cand.Config.DataNodes, cand.Config.ComputeNodes,
			cand.Config.Bandwidth, cand.Prediction.Texec().Round(time.Millisecond))
	}
	best := ranked[0]
	actual, err := h.Grid().Simulate(cost, spec, best.Config)
	if err != nil {
		fail(err)
	}
	fmt.Printf("selected %s with %d compute nodes; actual simulated T_exec %v\n",
		best.Replica.Site, best.Config.ComputeNodes, actual.Makespan.Round(time.Millisecond))
}

// modelLookup resolves an application's scaling-class model for the
// profile store layer.
func modelLookup(name string) core.AppModel {
	a, err := apps.Get(name)
	if err != nil {
		return core.AppModel{}
	}
	return a.Model
}

func fail(err error) { cliutil.Fatal("fgselect", err) }
