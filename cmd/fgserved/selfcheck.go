package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"freerideg/internal/fgservice"
)

// runSelfcheck is the make-check smoke step: start the service on an
// ephemeral port, drive every endpoint over real TCP, prove the request
// counters move between two /metrics scrapes, and shut down gracefully.
func runSelfcheck(srv *fgservice.Server, grace time.Duration) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 2 * time.Minute}

	// do issues one request and returns status, body, and headers; probe
	// is the 200-or-fail wrapper most steps use.
	do := func(method, path, body string) (int, string, http.Header, error) {
		var req *http.Request
		var err error
		if method == http.MethodGet {
			req, err = http.NewRequest(method, base+path, nil)
		} else {
			req, err = http.NewRequest(method, base+path, bytes.NewReader([]byte(body)))
			if req != nil {
				req.Header.Set("Content-Type", "application/json")
			}
		}
		if err != nil {
			return 0, "", nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, "", nil, fmt.Errorf("%s %s: %w", method, path, err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, "", nil, err
		}
		return resp.StatusCode, string(out), resp.Header, nil
	}
	probe := func(method, path, body string) (string, error) {
		status, out, _, err := do(method, path, body)
		if err != nil {
			return "", err
		}
		if status != http.StatusOK {
			return "", fmt.Errorf("%s %s: status %d: %s", method, path, status, out)
		}
		return out, nil
	}

	if _, err := probe(http.MethodGet, "/healthz", ""); err != nil {
		return err
	}
	before, err := probe(http.MethodGet, "/metrics", "")
	if err != nil {
		return err
	}
	predictBody := `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":4,` +
		`"computeNodes":8,"bandwidth":"100MB","datasetBytes":"512MB"}}`
	if out, err := probe(http.MethodPost, "/predict", predictBody); err != nil {
		return err
	} else if !strings.Contains(out, "texecNs") {
		return fmt.Errorf("/predict response missing texecNs: %s", out)
	}
	selectBody := `{"app":"kmeans","size":"512MB"}`
	if out, err := probe(http.MethodPost, "/select", selectBody); err != nil {
		return err
	} else if !strings.Contains(out, "candidates") {
		return fmt.Errorf("/select response missing candidates: %s", out)
	}
	observeBody := `{"site":"osu-repository","cluster":"pentium-myrinet","bytes":"64MB","elapsed":"700ms"}`
	if _, err := probe(http.MethodPost, "/observe", observeBody); err != nil {
		return err
	}

	// Close the run → observe → recalibrate → predict loop: the /predict
	// above self-profiled kmeans into the store (an adoption); posting
	// observed runs that disagree wildly with that profile must drive the
	// drift window over its threshold and trigger a recalibration.
	for i, mb := range []int{96, 128, 160, 192, 224, 256} {
		runBody := fmt.Sprintf(`{"app":"kmeans","config":{"cluster":"pentium-myrinet",`+
			`"dataNodes":1,"computeNodes":%d,"bandwidth":"100MB","datasetBytes":"%dMB"},`+
			`"tdisk":"5m","tnetwork":"10m","tcompute":"20m","tro":"30s","tglobal":"10s"}`,
			1+i%3, mb)
		if out, err := probe(http.MethodPost, "/runs", runBody); err != nil {
			return err
		} else if !strings.Contains(out, "storeVersion") {
			return fmt.Errorf("/runs response missing storeVersion: %s", out)
		}
	}
	profilesOut, err := probe(http.MethodGet, "/profiles", "")
	if err != nil {
		return err
	}
	var profiles struct {
		StoreVersion uint64 `json:"storeVersion"`
		Profiles     []struct {
			App            string `json:"app"`
			Version        uint64 `json:"version"`
			Recalibrations uint64 `json:"recalibrations"`
		} `json:"profiles"`
	}
	if err := json.Unmarshal([]byte(profilesOut), &profiles); err != nil {
		return fmt.Errorf("/profiles response: %w", err)
	}
	recalibrated := false
	for _, p := range profiles.Profiles {
		if p.App == "kmeans" && p.Version >= 2 && p.Recalibrations >= 1 {
			recalibrated = true
		}
	}
	if !recalibrated {
		return fmt.Errorf("posted runs did not recalibrate the kmeans profile: %s", profilesOut)
	}

	// Request-ID correlation: every response carries X-FG-Request-ID, an
	// error envelope echoes the same ID in its requestId field, and a
	// traced request's ID round-trips into the /debug/requests ring.
	status, _, hdr, err := do(http.MethodPost, "/predict", predictBody)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("correlation probe /predict: status %d", status)
	}
	reqID := hdr.Get("X-FG-Request-ID")
	if reqID == "" {
		return fmt.Errorf("/predict response carries no X-FG-Request-ID header")
	}
	status, eout, ehdr, err := do(http.MethodPost, "/predict", "{nope")
	if err != nil {
		return err
	}
	if status != http.StatusBadRequest {
		return fmt.Errorf("malformed /predict: status %d, want 400", status)
	}
	var env struct {
		RequestID string `json:"requestId"`
	}
	if err := json.Unmarshal([]byte(eout), &env); err != nil {
		return fmt.Errorf("400 body is not a JSON envelope: %w: %s", err, eout)
	}
	if env.RequestID == "" || env.RequestID != ehdr.Get("X-FG-Request-ID") {
		return fmt.Errorf("error envelope requestId %q does not match X-FG-Request-ID header %q",
			env.RequestID, ehdr.Get("X-FG-Request-ID"))
	}
	dbg, err := probe(http.MethodGet, "/debug/requests", "")
	if err != nil {
		return err
	}
	if !strings.Contains(dbg, reqID) {
		return fmt.Errorf("request %s not present in /debug/requests", reqID)
	}

	after, err := probe(http.MethodGet, "/metrics", "")
	if err != nil {
		return err
	}

	// The request counters must have moved between the two scrapes, and
	// the hot-layer instrumentation must be present.
	for _, series := range []string{
		`fg_http_requests_total{path="/predict"}`,
		`fg_http_requests_total{path="/select"}`,
		`fg_grid_rank_total`,
		`fg_grid_estimator_samples_total`,
		`fg_sim_runs_started_total`,
		`fg_mw_runs_total`,
		`fg_profile_observations_total`,
		`fg_profile_adoptions_total`,
		`fg_profile_recalibrations_total`,
	} {
		b, aft := seriesValue(before, series), seriesValue(after, series)
		if aft <= b {
			return fmt.Errorf("metric %s did not increase across requests (%v -> %v)", series, b, aft)
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-served; err != http.ErrServerClosed {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// seriesValue extracts one series' value from a text exposition (0 when
// absent, so "did it increase" checks also catch missing series).
func seriesValue(exposition, series string) float64 {
	for _, line := range strings.Split(exposition, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err == nil {
			return v
		}
	}
	return 0
}
