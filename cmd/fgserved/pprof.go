package main

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// pprofHandler builds the debug mux served on the -pprof listener. The
// profiles live on their own mux and listener — never the service mux —
// so the production address exposes nothing under /debug and the
// profiling port can stay firewalled to operators.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// servePprof starts the pprof listener on addr and returns the bound
// address (addr may carry port 0) and a closer for shutdown. Serve
// errors after Close are expected and dropped; pprof is an operator
// aid, not part of the service's availability contract.
func servePprof(addr string) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{
		Handler:           pprofHandler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// CPU profiles and traces stream for their whole -seconds window;
		// the write budget must cover the longest reasonable capture.
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  120 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Close, nil
}
