// Command fgserved is the long-running prediction service: it loads the
// simulated grid and the profile store once, then serves live
// resource-selection queries over HTTP — the deployment shape the paper
// assumes, where the framework answers "which replica / which
// configuration" questions from inside the grid middleware rather than
// per-invocation batch runs.
//
// Endpoints (see README for example curl calls):
//
//	POST /predict  profile + target config -> T̂_disk/T̂_network/T̂_compute
//	POST /select   dataset -> ranked (replica, configuration) candidates
//	POST /observe  feed an observed transfer into the bandwidth estimator
//	GET  /healthz  liveness
//	GET  /metrics  Prometheus text metrics
//	GET  /debug/requests  recent/slowest/errored request traces (see -trace-sample)
//
// Every response carries an X-FG-Request-ID header (error envelopes
// echo it as requestId); -slow-request-threshold logs a span breakdown
// for requests over the threshold.
//
// Example:
//
//	fgserved -addr :8080 -base-size 256MB
//	fgserved -selfcheck              # start, probe every endpoint, shut down
//	fgserved -pprof localhost:6060   # net/http/pprof on a separate listener
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"freerideg/internal/cliutil"
	"freerideg/internal/fgservice"
	"freerideg/internal/profile"
	"freerideg/internal/units"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		profiles  = flag.String("profiles", "", "profile store JSON (fgpredict -save output) seeding app profiles")
		persist   = flag.Bool("persist", false, "write recalibrated profiles back to the -profiles file after every content change")
		basePair  = cliutil.NodePair("base", 1, 1, "self-profiling base config as data,compute")
		baseSize  = cliutil.Bytes("base-size", 256*units.MB, "self-profiling base dataset size")
		baseBW    = cliutil.Rate("base-bw", 100*units.MBPerSec, "self-profiling base bandwidth per storage node, per second")
		variant   = flag.String("variant", "global", "default prediction variant: nocomm, reduction, or global")
		inflight  = flag.Int("max-inflight", 0, "max concurrently handled requests (0 = 4x GOMAXPROCS); excess gets 503")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request handling timeout")
		grace     = flag.Duration("grace", 15*time.Second, "graceful shutdown grace period")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty = off)")
		selfcheck = flag.Bool("selfcheck", false, "start on an ephemeral port, probe every endpoint, shut down (the make check smoke step)")

		slowThreshold = flag.Duration("slow-request-threshold", 0, "log one structured line with a span breakdown for every request at least this slow (0 = off)")
		traceSample   = flag.Int("trace-sample", 0, "trace one request in N into /debug/requests (0 or 1 = every request, negative = off)")
		traceRing     = flag.Int("trace-ring", 0, "completed traces retained for /debug/requests (0 = default 256)")
	)
	flag.Parse()

	opts := fgservice.Options{
		Variant:              *variant,
		BaseDataNodes:        basePair.Data,
		BaseComputeNodes:     basePair.Compute,
		BaseBandwidth:        baseBW.Rate,
		BaseBytes:            baseSize.Bytes,
		MaxInFlight:          *inflight,
		RequestTimeout:       *timeout,
		SlowRequestThreshold: *slowThreshold,
		TraceSample:          *traceSample,
		TraceRing:            *traceRing,
	}
	if *profiles != "" {
		store, err := profile.Open(*profiles, profile.Options{
			Lookup:      fgservice.AppModelLookup,
			AutoPersist: *persist,
		})
		if err != nil {
			fail(err)
		}
		opts.Store = store
		snap := store.Snapshot()
		fmt.Printf("fgserved: loaded %d profile(s) from %s (store version %d)\n",
			len(snap.Apps()), *profiles, snap.Version())
	}
	srv, err := fgservice.New(opts)
	if err != nil {
		fail(err)
	}

	if *selfcheck {
		if err := runSelfcheck(srv, *grace); err != nil {
			fail(fmt.Errorf("selfcheck: %w", err))
		}
		fmt.Println("fgserved: selfcheck OK")
		return
	}

	if *pprofAddr != "" {
		dbgAddr, closePprof, err := servePprof(*pprofAddr)
		if err != nil {
			fail(fmt.Errorf("pprof listener: %w", err))
		}
		defer closePprof()
		fmt.Printf("fgserved: pprof on http://%s/debug/pprof/\n", dbgAddr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// The middleware inside Handler() bounds handling; these bound
		// slow clients: a peer that trickles its headers or body, or one
		// that stops reading the response, must not hold a connection (and
		// its goroutine) open indefinitely. WriteTimeout is the handling
		// budget plus slack for actually transmitting the response.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *timeout + 15*time.Second,
		IdleTimeout:       120 * time.Second,
	}
	fmt.Printf("fgserved: serving on %s (variant %s, shutdown grace %v)\n", ln.Addr(), *variant, *grace)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
		stop()
		// Flip /healthz to 503 "degraded: draining" first, so load
		// balancers and harnesses stop routing new work here while
		// Shutdown lets the in-flight requests finish.
		srv.StartDrain()
		fmt.Println("fgserved: shutting down, draining in-flight requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fail(fmt.Errorf("shutdown: %w", err))
		}
		fmt.Println("fgserved: stopped")
	}
}

func fail(err error) { cliutil.Fatal("fgserved", err) }
