package main

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestPprofListenerServesHeapProfile is the -pprof smoke: the debug
// listener comes up on an ephemeral port, answers /debug/pprof/heap,
// and exposes nothing at the mux root outside /debug/pprof/.
func TestPprofListenerServesHeapProfile(t *testing.T) {
	addr, closeFn, err := servePprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("servePprof: %v", err)
	}
	defer closeFn()

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(fmt.Sprintf("http://%s/debug/pprof/heap", addr))
	if err != nil {
		t.Fatalf("GET /debug/pprof/heap: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading heap profile: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heap profile status = %d, want 200", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("heap profile body is empty")
	}

	resp, err = client.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatalf("GET /healthz on pprof listener: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/healthz on pprof listener status = %d, want 404 (service endpoints must not leak onto the debug mux)", resp.StatusCode)
	}
}
