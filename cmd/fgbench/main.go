// Command fgbench turns `go test -bench` output into the tracked
// BENCH_sweep.json summary: per-benchmark ns/op, B/op, and allocs/op
// aggregated across repeated counts (min and mean), plus the
// serial-vs-parallel sweep speedup derived from BenchmarkRunAllSerial
// and BenchmarkRunAllParallel. The machine's core count is recorded
// because the speedup is only observable with cores to spare.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -count=3 ./internal/... > bench.txt
//	fgbench -in bench.txt -out BENCH_sweep.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"

	"freerideg/internal/cliutil"
)

// benchLine matches one `go test -bench` result line. The trailing
// -N GOMAXPROCS suffix on the name is stripped so runs from machines
// with different core counts aggregate under one key.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// sample is one parsed benchmark measurement.
type sample struct {
	nsOp     float64
	bOp      float64
	allocsOp float64
	hasMem   bool
}

// Result summarizes one benchmark across its repeated counts.
type Result struct {
	Name     string  `json:"name"`
	Count    int     `json:"count"`
	MinNsOp  float64 `json:"min_ns_op"`
	MeanNsOp float64 `json:"mean_ns_op"`
	BOp      float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
}

// Report is the BENCH_sweep.json schema.
type Report struct {
	GoVersion  string `json:"go_version"`
	Cores      int    `json:"cores"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// SweepSpeedup is serial/parallel wall time for the full figure
	// sweep (min over counts). On a single-core machine this is ~1 by
	// construction; >=2 is expected with 4+ cores.
	SweepSpeedup float64  `json:"sweep_speedup,omitempty"`
	Benchmarks   []Result `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "-", "benchmark output file (- = stdin)")
	out := flag.String("out", "BENCH_sweep.json", "summary file to write")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	samples, err := parse(r)
	if err != nil {
		fail(err)
	}
	if len(samples) == 0 {
		fail(fmt.Errorf("no benchmark lines in %s", *in))
	}

	report := Report{
		GoVersion:  runtime.Version(),
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	byName := make(map[string]Result, len(names))
	for _, name := range names {
		res := summarize(name, samples[name])
		byName[name] = res
		report.Benchmarks = append(report.Benchmarks, res)
	}
	serial, okS := byName["BenchmarkRunAllSerial"]
	parallel, okP := byName["BenchmarkRunAllParallel"]
	if okS && okP && parallel.MinNsOp > 0 {
		report.SweepSpeedup = serial.MinNsOp / parallel.MinNsOp
	}

	js, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	js = append(js, '\n')
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("fgbench: %d benchmarks -> %s\n", len(report.Benchmarks), *out)
}

// parse collects the samples per benchmark name from -bench output.
func parse(r io.Reader) (map[string][]sample, error) {
	out := make(map[string][]sample)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		s := sample{nsOp: atof(m[3])}
		if m[4] != "" {
			s.bOp = atof(m[4])
			s.hasMem = true
		}
		if m[5] != "" {
			s.allocsOp = atof(m[5])
			s.hasMem = true
		}
		out[m[1]] = append(out[m[1]], s)
	}
	return out, sc.Err()
}

// summarize folds repeated counts into min/mean ns/op and mean memory
// stats.
func summarize(name string, ss []sample) Result {
	res := Result{Name: name, Count: len(ss), MinNsOp: ss[0].nsOp}
	var sumNs, sumB, sumAllocs float64
	mem := 0
	for _, s := range ss {
		sumNs += s.nsOp
		if s.nsOp < res.MinNsOp {
			res.MinNsOp = s.nsOp
		}
		if s.hasMem {
			sumB += s.bOp
			sumAllocs += s.allocsOp
			mem++
		}
	}
	res.MeanNsOp = sumNs / float64(len(ss))
	if mem > 0 {
		res.BOp = sumB / float64(mem)
		res.AllocsOp = sumAllocs / float64(mem)
	}
	return res
}

func atof(s string) float64 {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		fail(fmt.Errorf("parsing %q: %w", s, err))
	}
	return f
}

func fail(err error) { cliutil.Fatal("fgbench", err) }
