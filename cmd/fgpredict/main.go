// Command fgpredict demonstrates the prediction workflow end to end: it
// collects a base profile on one configuration of the simulated testbed,
// seeds the prediction framework with it, predicts a target configuration
// with all three model variants, and compares against the target's actual
// (simulated) execution time.
//
// Profiles are exchanged through the versioned profile store: -save
// writes one (with version metadata a long-running fgserved can keep
// recalibrating), -load reads one back in either the versioned or the
// plain core format.
//
// Example:
//
//	fgpredict -app em -size 350MB -base 1,1 -target 8,16 -target-size 1.4GB
package main

import (
	"flag"
	"fmt"
	"time"

	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/cliutil"
	"freerideg/internal/core"
	"freerideg/internal/profile"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

func main() {
	var (
		app        = cliutil.App("kmeans", apps.Names())
		size       = cliutil.Bytes("size", 512*units.MB, "base profile dataset size")
		basePair   = cliutil.NodePair("base", 1, 1, "base profile config as data,compute")
		targetPair = cliutil.NodePair("target", 8, 16, "target config as data,compute")
		targetSize = cliutil.Bytes("target-size", 0, "target dataset size (default: base size)")
		bw         = cliutil.Rate("bw", 100*units.MBPerSec, "bandwidth per storage node, per second")
		targetBW   = cliutil.Rate("target-bw", 0, "target bandwidth (default: base bandwidth)")
		cluster    = flag.String("target-cluster", bench.PentiumCluster, "target cluster")
		savePath   = flag.String("save", "", "write the base profile, calibrations, and factors to this versioned profile store")
		loadPath   = flag.String("load", "", "read the base profile from this profile store instead of profiling")
	)
	flag.Parse()

	baseTotal := size.Bytes
	tgtTotal := baseTotal
	if targetSize.IsSet() {
		tgtTotal = targetSize.Bytes
	}
	tgtBW := bw.Rate
	if targetBW.IsSet() {
		tgtBW = targetBW.Rate
	}

	h, err := bench.NewHarness()
	if err != nil {
		fail(err)
	}
	a, err := apps.Get(*app)
	if err != nil {
		fail(err)
	}
	var (
		baseProfile core.Profile
		pred        *core.Predictor
	)
	if *loadPath != "" {
		store, err := profile.Open(*loadPath, profile.Options{Lookup: modelLookup})
		if err != nil {
			fail(err)
		}
		snap := store.Snapshot()
		p, ver, ok := snap.Find(*app)
		if !ok {
			fail(fmt.Errorf("no profile for %q in %s", *app, *loadPath))
		}
		baseProfile = p
		baseTotal = p.Config.DatasetBytes
		if !targetSize.IsSet() {
			tgtTotal = baseTotal
		}
		fmt.Printf("loaded base profile (%s v%d) from %s (store version %d): %v\n",
			*app, ver, *loadPath, snap.Version(), p.Config)
		// The snapshot predictor carries the store's own link calibrations
		// and scaling factors.
		if pred, err = snap.Predictor(*app, a.Model); err != nil {
			fail(err)
		}
	} else {
		baseSpec, err := bench.DatasetChunked(*app, baseTotal, bench.ChunkFor(baseTotal))
		if err != nil {
			fail(err)
		}
		baseCost, err := a.Cost(baseSpec)
		if err != nil {
			fail(err)
		}
		baseCfg := core.Config{
			Cluster: bench.PentiumCluster, DataNodes: basePair.Data, ComputeNodes: basePair.Compute,
			Bandwidth: bw.Rate, DatasetBytes: baseTotal,
		}
		baseRes, err := h.Grid().Simulate(baseCost, baseSpec, baseCfg)
		if err != nil {
			fail(err)
		}
		baseProfile = baseRes.Profile
		fmt.Printf("base profile (%s): %v\n", *app, baseCfg)
		if pred, err = core.NewPredictor(baseProfile, a.Model); err != nil {
			fail(err)
		}
	}
	chunk := bench.ChunkFor(baseTotal)
	fmt.Printf("  t_d=%v t_n=%v t_c=%v (T_ro=%v T_g=%v), RO/node=%v, %d iter\n",
		rnd(baseProfile.Tdisk), rnd(baseProfile.Tnetwork), rnd(baseProfile.Tcompute),
		rnd(baseProfile.Tro), rnd(baseProfile.Tglobal),
		baseProfile.ROBytesPerNode, baseProfile.Iterations)

	// The harness's measured interconnects backstop clusters the loaded
	// store has no calibration for; loaded calibrations win.
	for cl, cal := range h.Links() {
		if _, ok := pred.Links[cl]; !ok {
			pred.Links[cl] = cal
		}
	}
	if _, ok := pred.Scalings[*cluster]; !ok && *cluster != bench.PentiumCluster {
		// Cross-cluster prediction needs experimentally measured scaling
		// factors (paper Section 3.4).
		fmt.Println("note: cross-cluster prediction uses kmeans/knn/vortex scaling factors")
		scal, err := crossScaling(h, basePair.Data, basePair.Compute, bw.Rate, *cluster)
		if err != nil {
			fail(err)
		}
		pred.Scalings[*cluster] = scal
	}

	if *savePath != "" {
		// Saving through the store layer stamps version metadata, so a
		// long-running service can pick the file up and keep recalibrating
		// it; core.LoadStore still reads the same file.
		st, err := profile.NewStore(core.ProfileStore{
			Profiles: []core.Profile{baseProfile},
			Links:    h.Links(),
			Scalings: pred.Scalings,
		}, profile.Options{Lookup: modelLookup})
		if err != nil {
			fail(err)
		}
		if err := st.SaveAs(*savePath); err != nil {
			fail(err)
		}
		fmt.Printf("versioned profile store written to %s\n", *savePath)
	}

	tgtSpec, err := bench.DatasetChunked(*app, tgtTotal, chunk)
	if err != nil {
		fail(err)
	}
	tgtCost, err := a.Cost(tgtSpec)
	if err != nil {
		fail(err)
	}
	tgtCfg := core.Config{
		Cluster: *cluster, DataNodes: targetPair.Data, ComputeNodes: targetPair.Compute,
		Bandwidth: tgtBW, DatasetBytes: tgtTotal,
	}
	actual, err := h.Grid().Simulate(tgtCost, tgtSpec, tgtCfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("target: %v\n", tgtCfg)
	fmt.Printf("  actual T_exec: %v\n", rnd(actual.Makespan))
	for _, v := range core.Variants() {
		p, err := pred.Predict(tgtCfg, v)
		if err != nil {
			fail(err)
		}
		e := stats.RelError(actual.Makespan.Seconds(), p.Texec().Seconds())
		fmt.Printf("  %-24s predicted %v (error %.2f%%)\n", v.String()+":", rnd(p.Texec()), 100*e)
	}
}

// modelLookup resolves an application's scaling-class model for the
// profile store layer.
func modelLookup(name string) core.AppModel {
	a, err := apps.Get(name)
	if err != nil {
		return core.AppModel{}
	}
	return a.Model
}

func crossScaling(h *bench.Harness, n, c int, bw units.Rate, target string) (core.Scaling, error) {
	var onA, onB []core.Profile
	for _, rep := range []string{"kmeans", "knn", "vortex"} {
		a, err := apps.Get(rep)
		if err != nil {
			return core.Scaling{}, err
		}
		spec, err := bench.Dataset(rep, 256*units.MB)
		if err != nil {
			return core.Scaling{}, err
		}
		cost, err := a.Cost(spec)
		if err != nil {
			return core.Scaling{}, err
		}
		for _, cl := range []string{bench.PentiumCluster, target} {
			cfg := core.Config{Cluster: cl, DataNodes: n, ComputeNodes: c,
				Bandwidth: bw, DatasetBytes: spec.TotalBytes}
			res, err := h.Grid().Simulate(cost, spec, cfg)
			if err != nil {
				return core.Scaling{}, err
			}
			if cl == bench.PentiumCluster {
				onA = append(onA, res.Profile)
			} else {
				onB = append(onB, res.Profile)
			}
		}
	}
	return core.ComputeScaling(onA, onB)
}

func rnd(d time.Duration) time.Duration { return d.Round(time.Millisecond) }

func fail(err error) { cliutil.Fatal("fgpredict", err) }
