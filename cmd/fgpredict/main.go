// Command fgpredict demonstrates the prediction workflow end to end: it
// collects a base profile on one configuration of the simulated testbed,
// seeds the prediction framework with it, predicts a target configuration
// with all three model variants, and compares against the target's actual
// (simulated) execution time.
//
// Example:
//
//	fgpredict -app em -size 350MB -base 1,1 -target 8,16 -target-size 1.4GB
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/cliutil"
	"freerideg/internal/core"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

func main() {
	var (
		app        = flag.String("app", "kmeans", "application: "+fmt.Sprint(apps.Names()))
		size       = flag.String("size", "512MB", "base profile dataset size")
		baseStr    = flag.String("base", "1,1", "base profile config as data,compute")
		targetStr  = flag.String("target", "8,16", "target config as data,compute")
		targetSize = flag.String("target-size", "", "target dataset size (default: base size)")
		bwFlag     = flag.String("bw", "100MB", "bandwidth per storage node, per second")
		targetBW   = flag.String("target-bw", "", "target bandwidth (default: base bandwidth)")
		cluster    = flag.String("target-cluster", bench.PentiumCluster, "target cluster")
		savePath   = flag.String("save", "", "write the base profile, calibrations, and factors to this JSON file")
		loadPath   = flag.String("load", "", "read the base profile from this JSON file instead of profiling")
	)
	flag.Parse()

	baseTotal, err := units.ParseBytes(*size)
	if err != nil {
		fail(err)
	}
	tgtTotal := baseTotal
	if *targetSize != "" {
		if tgtTotal, err = units.ParseBytes(*targetSize); err != nil {
			fail(err)
		}
	}
	bw, err := cliutil.ParseRate(*bwFlag)
	if err != nil {
		fail(err)
	}
	tgtBW := bw
	if *targetBW != "" {
		if tgtBW, err = cliutil.ParseRate(*targetBW); err != nil {
			fail(err)
		}
	}
	baseN, baseC, err := cliutil.ParseNodePair(*baseStr)
	if err != nil {
		fail(err)
	}
	tgtN, tgtC, err := cliutil.ParseNodePair(*targetStr)
	if err != nil {
		fail(err)
	}

	h, err := bench.NewHarness()
	if err != nil {
		fail(err)
	}
	a, err := apps.Get(*app)
	if err != nil {
		fail(err)
	}
	chunk := bench.ChunkFor(baseTotal)
	var baseProfile core.Profile
	if *loadPath != "" {
		store, err := core.LoadStore(*loadPath)
		if err != nil {
			fail(err)
		}
		p, ok := store.Find(*app)
		if !ok {
			fail(fmt.Errorf("no profile for %q in %s", *app, *loadPath))
		}
		baseProfile = p
		baseTotal = p.Config.DatasetBytes
		chunk = bench.ChunkFor(baseTotal)
		if *targetSize == "" {
			tgtTotal = baseTotal
		}
		fmt.Printf("loaded base profile (%s) from %s: %v\n", *app, *loadPath, p.Config)
	} else {
		baseSpec, err := bench.DatasetChunked(*app, baseTotal, chunk)
		if err != nil {
			fail(err)
		}
		baseCost, err := a.Cost(baseSpec)
		if err != nil {
			fail(err)
		}
		baseCfg := core.Config{
			Cluster: bench.PentiumCluster, DataNodes: baseN, ComputeNodes: baseC,
			Bandwidth: bw, DatasetBytes: baseTotal,
		}
		baseRes, err := h.Grid().Simulate(baseCost, baseSpec, baseCfg)
		if err != nil {
			fail(err)
		}
		baseProfile = baseRes.Profile
		fmt.Printf("base profile (%s): %v\n", *app, baseCfg)
	}
	fmt.Printf("  t_d=%v t_n=%v t_c=%v (T_ro=%v T_g=%v), RO/node=%v, %d iter\n",
		rnd(baseProfile.Tdisk), rnd(baseProfile.Tnetwork), rnd(baseProfile.Tcompute),
		rnd(baseProfile.Tro), rnd(baseProfile.Tglobal),
		baseProfile.ROBytesPerNode, baseProfile.Iterations)

	pred, err := core.NewPredictor(baseProfile, a.Model)
	if err != nil {
		fail(err)
	}
	for cl, cal := range h.Links() {
		pred.Links[cl] = cal
	}
	if *cluster != bench.PentiumCluster {
		// Cross-cluster prediction needs experimentally measured scaling
		// factors (paper Section 3.4).
		fmt.Println("note: cross-cluster prediction uses kmeans/knn/vortex scaling factors")
		scal, err := crossScaling(h, baseN, baseC, bw, *cluster)
		if err != nil {
			fail(err)
		}
		pred.Scalings[*cluster] = scal
	}

	if *savePath != "" {
		store := core.ProfileStore{
			Profiles: []core.Profile{baseProfile},
			Links:    h.Links(),
			Scalings: pred.Scalings,
		}
		if err := core.SaveStore(*savePath, store); err != nil {
			fail(err)
		}
		fmt.Printf("profile store written to %s\n", *savePath)
	}

	tgtSpec, err := bench.DatasetChunked(*app, tgtTotal, chunk)
	if err != nil {
		fail(err)
	}
	tgtCost, err := a.Cost(tgtSpec)
	if err != nil {
		fail(err)
	}
	tgtCfg := core.Config{
		Cluster: *cluster, DataNodes: tgtN, ComputeNodes: tgtC,
		Bandwidth: tgtBW, DatasetBytes: tgtTotal,
	}
	actual, err := h.Grid().Simulate(tgtCost, tgtSpec, tgtCfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("target: %v\n", tgtCfg)
	fmt.Printf("  actual T_exec: %v\n", rnd(actual.Makespan))
	for _, v := range core.Variants() {
		p, err := pred.Predict(tgtCfg, v)
		if err != nil {
			fail(err)
		}
		e := stats.RelError(actual.Makespan.Seconds(), p.Texec().Seconds())
		fmt.Printf("  %-24s predicted %v (error %.2f%%)\n", v.String()+":", rnd(p.Texec()), 100*e)
	}
}

func crossScaling(h *bench.Harness, n, c int, bw units.Rate, target string) (core.Scaling, error) {
	var onA, onB []core.Profile
	for _, rep := range []string{"kmeans", "knn", "vortex"} {
		a, err := apps.Get(rep)
		if err != nil {
			return core.Scaling{}, err
		}
		spec, err := bench.Dataset(rep, 256*units.MB)
		if err != nil {
			return core.Scaling{}, err
		}
		cost, err := a.Cost(spec)
		if err != nil {
			return core.Scaling{}, err
		}
		for _, cl := range []string{bench.PentiumCluster, target} {
			cfg := core.Config{Cluster: cl, DataNodes: n, ComputeNodes: c,
				Bandwidth: bw, DatasetBytes: spec.TotalBytes}
			res, err := h.Grid().Simulate(cost, spec, cfg)
			if err != nil {
				return core.Scaling{}, err
			}
			if cl == bench.PentiumCluster {
				onA = append(onA, res.Profile)
			} else {
				onB = append(onB, res.Profile)
			}
		}
	}
	return core.ComputeScaling(onA, onB)
}

func rnd(d time.Duration) time.Duration { return d.Round(time.Millisecond) }

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fgpredict:", err)
	os.Exit(1)
}
