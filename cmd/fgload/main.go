// Command fgload is the deterministic load and soak harness for the
// prediction service. It replays a seeded workload mix (/predict,
// /select, /observe, /runs at configurable weights and concurrency)
// against an in-process server or a remote -addr, and reports
// per-endpoint p50/p95/p99 latency, error rates, and — with
// -coherence-batches — the cache-coherence check that interleaves real
// recalibrations with the read traffic and asserts no response ever
// predates a completed recalibration.
//
// Modes:
//
//	fgload                                  # in-process, cache on
//	fgload -compare -out BENCH_serve.json   # cold (cache off) vs warm A/B
//	fgload -addr http://localhost:8080      # drive a running fgserved
//
// The exit status is the gate load scripts rely on: nonzero when any
// request failed at the transport, any response was a 5xx, or the
// coherence check counted a violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"freerideg/internal/cliutil"
	"freerideg/internal/fgservice"
	"freerideg/internal/loadgen"
	"freerideg/internal/servecache"
	"freerideg/internal/units"
)

// cacheCounters is the JSON view of one cache's servecache.Stats.
type cacheCounters struct {
	Hits          float64 `json:"hits"`
	Misses        float64 `json:"misses"`
	Coalesced     float64 `json:"coalesced"`
	Invalidations float64 `json:"invalidations"`
	Evictions     float64 `json:"evictions"`
	Abandoned     float64 `json:"abandoned,omitempty"`
}

func fromStats(s servecache.Stats) cacheCounters {
	return cacheCounters{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Coalesced:     s.Coalesced,
		Invalidations: s.Invalidations,
		Evictions:     s.Evictions,
		Abandoned:     s.Abandoned,
	}
}

func sub(a, b servecache.Stats) servecache.Stats {
	return servecache.Stats{
		Hits:          a.Hits - b.Hits,
		Misses:        a.Misses - b.Misses,
		Coalesced:     a.Coalesced - b.Coalesced,
		Invalidations: a.Invalidations - b.Invalidations,
		Evictions:     a.Evictions - b.Evictions,
		Abandoned:     a.Abandoned - b.Abandoned,
	}
}

// runOutput is one run's report plus, for in-process runs with the
// cache enabled, the cache counters the run moved.
type runOutput struct {
	loadgen.Report
	PredictCache *cacheCounters `json:"predictCache,omitempty"`
	SelectCache  *cacheCounters `json:"selectCache,omitempty"`
}

// output is the fgload report schema (BENCH_serve.json in -compare
// mode). SpeedupP50/SpeedupMean compare the cold (cache disabled) run
// against the warm run on overall latency.
type output struct {
	GoVersion   string     `json:"goVersion"`
	Cores       int        `json:"cores"`
	Mode        string     `json:"mode"`
	Run         *runOutput `json:"run,omitempty"`
	Cold        *runOutput `json:"cold,omitempty"`
	Warm        *runOutput `json:"warm,omitempty"`
	SpeedupP50  float64    `json:"speedupP50,omitempty"`
	SpeedupMean float64    `json:"speedupMean,omitempty"`
	// EndpointSpeedupMean breaks the cold/warm ratio down per endpoint:
	// the cheap /predict arithmetic is dominated by HTTP overhead either
	// way, while the ranking behind /select is where the cache pays.
	EndpointSpeedupMean map[string]float64 `json:"endpointSpeedupMean,omitempty"`
	// BatchAB is the -batch-ab measurement: N sequential singular calls
	// versus one N-item batch call, both on a cold cache.
	BatchAB *loadgen.BatchAB `json:"batchAB,omitempty"`
}

func main() {
	var (
		addr      = flag.String("addr", "", "base URL of a running service (empty = in-process server)")
		requests  = flag.Int("requests", 400, "total generated requests")
		conc      = flag.Int("concurrency", 8, "concurrent workers")
		seed      = flag.Int64("seed", 1, "workload seed; equal seeds replay identical request streams")
		mixFlag   = flag.String("mix", "", "workload mix weights, e.g. predict=6,select=2,observe=1,runs=1")
		app       = flag.String("app", "kmeans", "application every request targets")
		baseSize  = cliutil.Bytes("base-size", 64*units.MB, "mid-point dataset size; generated sizes span 0.5x..2x")
		coherence = flag.Int("coherence-batches", 0, "drift-driven recalibration batches interleaved with the reads (asserts cache coherence)")
		compare   = flag.Bool("compare", false, "A/B an in-process cold (cache disabled) run against a warm one and report the speedup")
		batchAB   = flag.Int("batch-ab", 0, "measure N sequential singular calls vs one N-item batch call on a cold cache over a loopback listener (0 = off)")
		out       = flag.String("out", "", "report file (empty = stdout)")

		clientTimeout  = flag.Duration("client-timeout", 0, "per-op client deadline; expired ops count as timeouts, not plain transport errors (0 = unbounded)")
		expectTimeouts = flag.Bool("expect-timeouts", false, "tolerate client timeouts, 504s, and 503 shedding in the gate (cancellation smoke mode)")
		goroutineCheck = flag.Bool("goroutine-check", false, "after the run, fail if goroutines have not drained back near the pre-run baseline")
	)
	flag.Parse()

	// Baseline before any server or worker goroutines exist; the post-run
	// check asserts abandoned requests did not strand handler goroutines.
	baselineGoroutines := runtime.NumGoroutine()

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fail(err)
	}
	opts := loadgen.Options{
		Requests:      *requests,
		Concurrency:   *conc,
		Seed:          *seed,
		Mix:           mix,
		App:           *app,
		BaseBytes:     baseSize.Bytes,
		Coherence:     *coherence,
		ClientTimeout: *clientTimeout,
	}

	rep := output{GoVersion: runtime.Version(), Cores: runtime.NumCPU()}
	switch {
	case *compare:
		if *addr != "" {
			fail(fmt.Errorf("-compare runs in-process; it cannot be combined with -addr"))
		}
		rep.Mode = "compare"
		cold, err := runInProcess(opts, *conc, true)
		if err != nil {
			fail(err)
		}
		warm, err := runInProcess(opts, *conc, false)
		if err != nil {
			fail(err)
		}
		rep.Cold, rep.Warm = cold, warm
		if warm.Overall.P50Ms > 0 {
			rep.SpeedupP50 = cold.Overall.P50Ms / warm.Overall.P50Ms
		}
		if warm.Overall.MeanMs > 0 {
			rep.SpeedupMean = cold.Overall.MeanMs / warm.Overall.MeanMs
		}
		rep.EndpointSpeedupMean = make(map[string]float64)
		for path, c := range cold.Endpoints {
			if w, ok := warm.Endpoints[path]; ok && w.MeanMs > 0 {
				rep.EndpointSpeedupMean[path] = c.MeanMs / w.MeanMs
			}
		}
	case *addr == "":
		rep.Mode = "in-process"
		run, err := runInProcess(opts, *conc, false)
		if err != nil {
			fail(err)
		}
		rep.Run = run
	default:
		rep.Mode = "remote"
		r := loadgen.New(loadgen.NewHTTPTarget(*addr, nil), opts)
		report, err := r.Run()
		if err != nil {
			fail(err)
		}
		rep.Run = &runOutput{Report: report}
	}

	if *batchAB > 0 {
		if *addr != "" {
			fail(fmt.Errorf("-batch-ab manages its own servers; it cannot be combined with -addr"))
		}
		ab, err := loadgen.RunBatchAB(newLoopbackTarget, opts, *batchAB)
		if err != nil {
			fail(err)
		}
		rep.BatchAB = &ab
	}

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
	} else {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("fgload: %s report -> %s\n", rep.Mode, *out)
	}

	for _, r := range []*runOutput{rep.Run, rep.Cold, rep.Warm} {
		if err := gate(r, *expectTimeouts); err != nil {
			fail(err)
		}
	}
	if ab := rep.BatchAB; ab != nil {
		if ab.Predict.ItemErrors > 0 || ab.Select.ItemErrors > 0 {
			fail(fmt.Errorf("batch A/B saw item errors: predict=%d select=%d",
				ab.Predict.ItemErrors, ab.Select.ItemErrors))
		}
	}
	if *goroutineCheck {
		if err := checkGoroutines(baselineGoroutines); err != nil {
			fail(err)
		}
	}
}

// checkGoroutines asserts the process drained back near its pre-run
// goroutine count. Abandoned requests keep their handler goroutines
// alive only until the handler notices ctx is done, so after a short
// settle window anything still running is a leak: a handler stuck past
// its deadline, a limiter slot never released, or a fill goroutine
// nobody cancelled. The slack term covers runtime-internal goroutines
// (GC workers, netpoller, timer goroutines) that scale with the
// machine, not the workload.
func checkGoroutines(baseline int) error {
	limit := baseline + 2*runtime.GOMAXPROCS(0) + 8
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > limit && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > limit {
		return fmt.Errorf("goroutine leak: %d alive after run (baseline %d, limit %d)", n, baseline, limit)
	}
	return nil
}

// newLoopbackTarget stands up a fresh cold-cache server behind a real
// loopback listener for one batch A/B side. Unlike the in-process
// handler target, every sequential request here pays the transport the
// batch plane amortizes — connection handling, HTTP framing, and a
// request-scoped timeout goroutine — which is exactly the overhead a
// caller fanning 64 singular calls at a deployed fgserved would pay.
func newLoopbackTarget() (loadgen.Target, func(), error) {
	srv, err := fgservice.New(fgservice.Options{MaxInFlight: 4})
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() { _ = hs.Serve(ln) }()
	cleanup := func() { _ = hs.Close() }
	return loadgen.NewHTTPTarget("http://"+ln.Addr().String(), nil), cleanup, nil
}

// runInProcess stands up a fresh server (cache on or off) and drives
// the workload straight into its handler. MaxInFlight admits every
// worker plus the coherence coordinator so the limiter never sheds the
// harness's own load.
func runInProcess(opts loadgen.Options, conc int, disableCache bool) (*runOutput, error) {
	srv, err := fgservice.New(fgservice.Options{
		DisableCache: disableCache,
		MaxInFlight:  conc + 2,
	})
	if err != nil {
		return nil, err
	}
	basePredict, baseSelect := srv.CacheStats()
	r := loadgen.New(loadgen.NewHandlerTarget(srv.Handler()), opts)
	report, err := r.Run()
	if err != nil {
		return nil, err
	}
	out := &runOutput{Report: report}
	if !disableCache {
		p, s := srv.CacheStats()
		pc, sc := fromStats(sub(p, basePredict)), fromStats(sub(s, baseSelect))
		out.PredictCache, out.SelectCache = &pc, &sc
	}
	return out, nil
}

// gate turns run-level failures into a nonzero exit: transport errors,
// server-side 5xx responses, or coherence violations. Client-side 4xx
// are reported but not fatal — a remote target may legitimately reject
// parts of a mix (e.g. an app it does not know).
//
// With expectTimeouts (the cancellation smoke), deadline outcomes are
// the point of the run, not failures: client-side timeouts and 504
// answers pass, and only transport errors beyond the timeout count or
// non-504 5xx statuses still trip the gate.
func gate(r *runOutput, expectTimeouts bool) error {
	if r == nil {
		return nil
	}
	if hard := r.TransportErrors - r.TransportTimeouts; !expectTimeouts && r.TransportErrors > 0 {
		return fmt.Errorf("%d requests failed at the transport", r.TransportErrors)
	} else if hard > 0 {
		return fmt.Errorf("%d requests failed at the transport beyond the %d expected timeouts", hard, r.TransportTimeouts)
	}
	for code, n := range r.StatusCounts {
		// 504 is the point of the cancellation smoke. 503 is the server
		// correctly shedding load in the race window where an abandoned
		// handler (possibly finishing a deliberately-detached profiling
		// run) still holds its slot while the timed-out client has
		// already fired its next op — legitimate backpressure, not a
		// stuck slot (the goroutine check still catches stranding).
		if expectTimeouts && (code == "504" || code == "503") {
			continue
		}
		if c, err := strconv.Atoi(code); err == nil && c >= 500 && n > 0 {
			return withFailedIDs(fmt.Errorf("%d responses with status %s", n, code), r.FailedRequestIDs)
		}
	}
	if !expectTimeouts && r.BatchItemErrors > 0 {
		return withFailedIDs(fmt.Errorf("%d of %d batch items answered with a per-item error",
			r.BatchItemErrors, r.BatchItems), r.FailedRequestIDs)
	}
	if coh := r.Coherence; coh != nil {
		if coh.Errors > 0 {
			return fmt.Errorf("coherence coordinator hit %d errors", coh.Errors)
		}
		if coh.Violations > 0 {
			return fmt.Errorf("%d cache-coherence violations (reads served pre-recalibration answers)", coh.Violations)
		}
	}
	return nil
}

// withFailedIDs appends a bounded sample of failed-request correlation
// IDs to a gate failure, so the operator can pull the exact traces from
// the target's /debug/requests ring.
func withFailedIDs(err error, ids []string) error {
	if len(ids) == 0 {
		return err
	}
	if len(ids) > 8 {
		ids = ids[:8]
	}
	return fmt.Errorf("%w (sample failed request IDs: %s)", err, strings.Join(ids, ", "))
}

func fail(err error) { cliutil.Fatal("fgload", err) }
