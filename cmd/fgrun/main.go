// Command fgrun executes one application on the FREERIDE-G middleware and
// prints the execution-time breakdown the prediction framework consumes.
//
// By default the run uses the simulated testbed (paper-scale datasets in
// milliseconds of wall time); -local runs the real goroutine backend with
// materialized data instead. -size accepts a comma-separated list of
// sizes: the simulated runs then fan out over a bounded worker pool
// (-parallel) and their reports print in list order.
//
// Examples:
//
//	fgrun -app kmeans -size 1.4GB -data 2 -compute 8
//	fgrun -app defect -size 130MB -data 1 -compute 4 -cluster opteron-infiniband
//	fgrun -app vortex -size 8MB -local -compute 4
//	fgrun -app kmeans -size 512MB -data 2 -compute 8 -fault-seed 7 -trace
//	fgrun -app kmeans -size 512MB -compute 4 -fault-plan 'crash node=1 pass=2; slow-disk node=0 factor=8'
//	fgrun -app kmeans -size 256MB,512MB,1GB,2GB -compute 8 -parallel 4
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/cliutil"
	"freerideg/internal/core"
	"freerideg/internal/middleware"
	"freerideg/internal/simgrid"
	"freerideg/internal/units"
)

func main() {
	var (
		app       = cliutil.App("kmeans", apps.Names())
		size      = cliutil.BytesList("size", 512*units.MB, "dataset size, or a comma-separated sweep (e.g. 256MB,1.4GB)")
		data      = flag.Int("data", 1, "storage (data server) nodes")
		compute   = flag.Int("compute", 1, "compute nodes (must be >= data nodes)")
		bwFlag    = cliutil.Rate("bw", 100*units.MBPerSec, "storage-to-compute bandwidth per node, per second")
		cluster   = flag.String("cluster", bench.PentiumCluster, "simulated cluster")
		local     = flag.Bool("local", false, "run the real goroutine backend instead of the simulator")
		trace     = flag.Bool("trace", false, "print the middleware phase trace as text")
		traceJSON = flag.Bool("trace-json", false, "print the middleware phase trace as JSON lines")
		faultSeed = flag.Int64("fault-seed", 0, "generate a deterministic fault plan from this seed (0 = no faults)")
		faultPlan = flag.String("fault-plan", "", "explicit fault plan, e.g. 'crash node=1 pass=2; flaky-link node=0 count=2'")
		parallel  = cliutil.Parallel("max concurrent simulations in a -size sweep (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *faultSeed != 0 && *faultPlan != "" {
		fail(fmt.Errorf("-fault-seed and -fault-plan are mutually exclusive"))
	}

	totals := size.Sizes
	bw := bwFlag.Rate
	a, err := apps.Get(*app)
	if err != nil {
		fail(err)
	}

	if *local {
		if len(totals) > 1 {
			fail(fmt.Errorf("-local runs on real wall time; sweep one size at a time"))
		}
		runLocal(os.Stdout, a, *app, totals[0], *data, *compute,
			*trace, *traceJSON, *faultSeed, *faultPlan)
		return
	}

	grid, err := middleware.NewGrid(middleware.PentiumMyrinet(), middleware.OpteronInfiniband())
	if err != nil {
		fail(err)
	}
	run := func(w io.Writer, total units.Bytes) error {
		return runSimulated(w, grid, a, *app, total, *data, *compute, bw, *cluster,
			*trace, *traceJSON, *faultSeed, *faultPlan)
	}
	if len(totals) == 1 {
		if err := run(os.Stdout, totals[0]); err != nil {
			fail(err)
		}
		return
	}

	// Size sweep: each size runs into its own buffer on a bounded pool,
	// and reports print in list order as they complete.
	workers := *parallel
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	bufs := make([]bytes.Buffer, len(totals))
	errs := make([]error, len(totals))
	done := make([]chan struct{}, len(totals))
	var wg sync.WaitGroup
	for i := range totals {
		done[i] = make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = run(&bufs[i], totals[i])
		}(i)
	}
	for i := range totals {
		<-done[i]
		os.Stdout.Write(bufs[i].Bytes())
		if errs[i] != nil {
			fail(errs[i])
		}
	}
	wg.Wait()
}

// runSimulated executes one simulated run and writes its report (and any
// requested trace) to w, so sweep output never interleaves.
func runSimulated(w io.Writer, grid *middleware.Grid, a apps.App, app string, total units.Bytes,
	data, compute int, bw units.Rate, cluster string,
	trace, traceJSON bool, faultSeed int64, faultPlan string) error {
	spec, err := bench.Dataset(app, total)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Cluster:      cluster,
		DataNodes:    data,
		ComputeNodes: compute,
		Bandwidth:    bw,
		DatasetBytes: total,
	}
	cost, err := a.Cost(spec)
	if err != nil {
		return err
	}
	faults, err := resolveFaults(w, faultSeed, faultPlan, data, compute, cost.Iterations)
	if err != nil {
		return err
	}
	var sink middleware.Sink
	switch {
	case traceJSON:
		sink = middleware.NewJSONSink(w)
	case trace:
		sink = middleware.NewTextSink(w)
	}
	res, err := grid.SimulateOpts(cost, spec, cfg, middleware.SimOptions{Faults: faults, Trace: sink})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "simulated run: %s on %v\n", app, cfg)
	fmt.Fprintf(w, "  makespan:    %v\n", res.Makespan.Round(time.Millisecond))
	printRecovery(w, res.Recovery, res.Retries)
	printProfile(w, res.Profile)
	return nil
}

// runLocal executes the real goroutine backend for one size.
func runLocal(w io.Writer, a apps.App, app string, total units.Bytes,
	data, compute int, trace, traceJSON bool, faultSeed int64, faultPlan string) {
	spec, err := bench.Dataset(app, total)
	if err != nil {
		fail(err)
	}
	kernel, err := a.NewKernel(spec)
	if err != nil {
		fail(err)
	}
	faults, err := resolveFaults(w, faultSeed, faultPlan, data, compute, kernel.Iterations())
	if err != nil {
		fail(err)
	}
	var sink middleware.Sink
	switch {
	case traceJSON:
		sink = middleware.NewJSONSink(w)
	case trace:
		sink = middleware.NewTextSink(w)
	}
	res, err := middleware.RunLocalSMP(kernel, spec, data, compute,
		middleware.LocalOptions{Faults: faults, Trace: sink})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(w, "local run: %s on %v, %d data / %d compute goroutines\n",
		app, total, data, compute)
	fmt.Fprintf(w, "  wall time:   %v over %d pass(es)\n", res.Elapsed.Round(time.Millisecond), res.Iterations)
	printRecovery(w, res.Recovery, res.Retries)
	printProfile(w, res.Profile)
}

// resolveFaults builds the run's fault plan from the CLI flags: an
// explicit -fault-plan wins, a nonzero -fault-seed generates a plan
// deterministically (and echoes it so the run is reproducible with
// -fault-plan), and nil means fault injection is off.
func resolveFaults(w io.Writer, seed int64, planText string, dataNodes, computeNodes, passes int) (*simgrid.FaultPlan, error) {
	switch {
	case planText != "":
		plan, err := simgrid.ParseFaultPlan(planText)
		if err != nil {
			return nil, err
		}
		return &plan, nil
	case seed != 0:
		plan := simgrid.GenerateFaultPlan(seed, dataNodes, computeNodes, passes)
		fmt.Fprintf(w, "fault plan (seed %d): %s\n", seed, plan)
		return &plan, nil
	}
	return nil, nil
}

func printRecovery(w io.Writer, recovery time.Duration, retries int) {
	if recovery == 0 && retries == 0 {
		return
	}
	fmt.Fprintf(w, "  recovery:    %v over %d retried deliver(ies)\n",
		recovery.Round(time.Millisecond), retries)
}

func printProfile(w io.Writer, p core.Profile) {
	fmt.Fprintf(w, "  T_disk:      %v\n", p.Tdisk.Round(time.Millisecond))
	fmt.Fprintf(w, "  T_network:   %v\n", p.Tnetwork.Round(time.Millisecond))
	fmt.Fprintf(w, "  T_compute:   %v (T_ro %v, T_g %v)\n",
		p.Tcompute.Round(time.Millisecond), p.Tro.Round(time.Millisecond), p.Tglobal.Round(time.Millisecond))
	fmt.Fprintf(w, "  T_exec:      %v\n", p.Texec().Round(time.Millisecond))
	fmt.Fprintf(w, "  RO per node: %v, broadcast %v, %d iteration(s)\n",
		p.ROBytesPerNode, p.BroadcastBytes, p.Iterations)
}

func fail(err error) { cliutil.Fatal("fgrun", err) }
