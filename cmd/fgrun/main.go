// Command fgrun executes one application on the FREERIDE-G middleware and
// prints the execution-time breakdown the prediction framework consumes.
//
// By default the run uses the simulated testbed (paper-scale datasets in
// milliseconds of wall time); -local runs the real goroutine backend with
// materialized data instead.
//
// Examples:
//
//	fgrun -app kmeans -size 1.4GB -data 2 -compute 8
//	fgrun -app defect -size 130MB -data 1 -compute 4 -cluster opteron-infiniband
//	fgrun -app vortex -size 8MB -local -compute 4
//	fgrun -app kmeans -size 512MB -data 2 -compute 8 -fault-seed 7 -trace
//	fgrun -app kmeans -size 512MB -compute 4 -fault-plan 'crash node=1 pass=2; slow-disk node=0 factor=8'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/cliutil"
	"freerideg/internal/core"
	"freerideg/internal/middleware"
	"freerideg/internal/simgrid"
	"freerideg/internal/units"
)

func main() {
	var (
		app       = flag.String("app", "kmeans", "application: "+fmt.Sprint(apps.Names()))
		size      = flag.String("size", "512MB", "dataset size (e.g. 1.4GB)")
		data      = flag.Int("data", 1, "storage (data server) nodes")
		compute   = flag.Int("compute", 1, "compute nodes (must be >= data nodes)")
		bwFlag    = flag.String("bw", "100MB", "storage-to-compute bandwidth per node, per second")
		cluster   = flag.String("cluster", bench.PentiumCluster, "simulated cluster")
		local     = flag.Bool("local", false, "run the real goroutine backend instead of the simulator")
		trace     = flag.Bool("trace", false, "print the middleware phase trace as text")
		traceJSON = flag.Bool("trace-json", false, "print the middleware phase trace as JSON lines")
		faultSeed = flag.Int64("fault-seed", 0, "generate a deterministic fault plan from this seed (0 = no faults)")
		faultPlan = flag.String("fault-plan", "", "explicit fault plan, e.g. 'crash node=1 pass=2; flaky-link node=0 count=2'")
	)
	flag.Parse()
	if *faultSeed != 0 && *faultPlan != "" {
		fail(fmt.Errorf("-fault-seed and -fault-plan are mutually exclusive"))
	}

	var sink middleware.Sink
	switch {
	case *traceJSON:
		sink = middleware.NewJSONSink(os.Stdout)
	case *trace:
		sink = middleware.NewTextSink(os.Stdout)
	}

	total, err := units.ParseBytes(*size)
	if err != nil {
		fail(err)
	}
	bw, err := cliutil.ParseRate(*bwFlag)
	if err != nil {
		fail(err)
	}
	a, err := apps.Get(*app)
	if err != nil {
		fail(err)
	}
	spec, err := bench.Dataset(*app, total)
	if err != nil {
		fail(err)
	}

	if *local {
		kernel, err := a.NewKernel(spec)
		if err != nil {
			fail(err)
		}
		faults, err := resolveFaults(*faultSeed, *faultPlan, *data, *compute, kernel.Iterations())
		if err != nil {
			fail(err)
		}
		res, err := middleware.RunLocalSMP(kernel, spec, *data, *compute,
			middleware.LocalOptions{Faults: faults, Trace: sink})
		if err != nil {
			fail(err)
		}
		fmt.Printf("local run: %s on %v, %d data / %d compute goroutines\n",
			*app, total, *data, *compute)
		fmt.Printf("  wall time:   %v over %d pass(es)\n", res.Elapsed.Round(time.Millisecond), res.Iterations)
		printRecovery(res.Recovery, res.Retries)
		printProfile(res.Profile)
		return
	}

	grid, err := middleware.NewGrid(middleware.PentiumMyrinet(), middleware.OpteronInfiniband())
	if err != nil {
		fail(err)
	}
	cfg := core.Config{
		Cluster:      *cluster,
		DataNodes:    *data,
		ComputeNodes: *compute,
		Bandwidth:    bw,
		DatasetBytes: total,
	}
	cost, err := a.Cost(spec)
	if err != nil {
		fail(err)
	}
	faults, err := resolveFaults(*faultSeed, *faultPlan, *data, *compute, cost.Iterations)
	if err != nil {
		fail(err)
	}
	res, err := grid.SimulateOpts(cost, spec, cfg, middleware.SimOptions{Faults: faults, Trace: sink})
	if err != nil {
		fail(err)
	}
	fmt.Printf("simulated run: %s on %v\n", *app, cfg)
	fmt.Printf("  makespan:    %v\n", res.Makespan.Round(time.Millisecond))
	printRecovery(res.Recovery, res.Retries)
	printProfile(res.Profile)
}

// resolveFaults builds the run's fault plan from the CLI flags: an
// explicit -fault-plan wins, a nonzero -fault-seed generates a plan
// deterministically (and echoes it so the run is reproducible with
// -fault-plan), and nil means fault injection is off.
func resolveFaults(seed int64, planText string, dataNodes, computeNodes, passes int) (*simgrid.FaultPlan, error) {
	switch {
	case planText != "":
		plan, err := simgrid.ParseFaultPlan(planText)
		if err != nil {
			return nil, err
		}
		return &plan, nil
	case seed != 0:
		plan := simgrid.GenerateFaultPlan(seed, dataNodes, computeNodes, passes)
		fmt.Printf("fault plan (seed %d): %s\n", seed, plan)
		return &plan, nil
	}
	return nil, nil
}

func printRecovery(recovery time.Duration, retries int) {
	if recovery == 0 && retries == 0 {
		return
	}
	fmt.Printf("  recovery:    %v over %d retried deliver(ies)\n",
		recovery.Round(time.Millisecond), retries)
}

func printProfile(p core.Profile) {
	fmt.Printf("  T_disk:      %v\n", p.Tdisk.Round(time.Millisecond))
	fmt.Printf("  T_network:   %v\n", p.Tnetwork.Round(time.Millisecond))
	fmt.Printf("  T_compute:   %v (T_ro %v, T_g %v)\n",
		p.Tcompute.Round(time.Millisecond), p.Tro.Round(time.Millisecond), p.Tglobal.Round(time.Millisecond))
	fmt.Printf("  T_exec:      %v\n", p.Texec().Round(time.Millisecond))
	fmt.Printf("  RO per node: %v, broadcast %v, %d iteration(s)\n",
		p.ROBytesPerNode, p.BroadcastBytes, p.Iterations)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fgrun:", err)
	os.Exit(1)
}
