// Command fgexperiments regenerates the paper's evaluation figures
// (Figures 2–13) on the simulated testbed and prints the prediction-error
// tables the figures plot.
//
// Usage:
//
//	fgexperiments              # run every figure
//	fgexperiments -fig 2       # run one figure
//	fgexperiments -list        # list available figures
//	fgexperiments -parallel 1  # force a strictly serial sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"freerideg/internal/bench"
	"freerideg/internal/cliutil"
)

func main() {
	figNum := flag.Int("fig", 0, "figure number to regenerate (0 = all)")
	list := flag.Bool("list", false, "list available figures")
	asJSON := flag.Bool("json", false, "emit figures as JSON instead of tables")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations instead of figures")
	parallel := cliutil.Parallel("max concurrent simulations (0 = GOMAXPROCS, 1 = serial); output is identical either way")
	flag.Parse()

	if *list {
		for _, id := range bench.FigureIDs() {
			fmt.Println(id)
		}
		return
	}
	h, err := bench.NewHarness()
	if err != nil {
		fail(err)
	}
	h.SetParallelism(*parallel)
	if *ablations {
		results, err := h.RunAblations()
		if err != nil {
			fail(err)
		}
		if *asJSON {
			emitJSON(results)
			return
		}
		if err := bench.RenderAblations(os.Stdout, results); err != nil {
			fail(err)
		}
		return
	}
	if *figNum != 0 {
		fig, err := h.Run(fmt.Sprintf("fig%d", *figNum))
		if err != nil {
			fail(err)
		}
		if *asJSON {
			emitJSON(fig)
			return
		}
		if err := bench.Render(os.Stdout, fig); err != nil {
			fail(err)
		}
		return
	}
	figs, err := h.RunAll()
	if err != nil {
		fail(err)
	}
	if *asJSON {
		emitJSON(figs)
		return
	}
	if err := bench.RenderAll(os.Stdout, figs); err != nil {
		fail(err)
	}
}

func emitJSON(v interface{}) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

func fail(err error) { cliutil.Fatal("fgexperiments", err) }
