# Build and verification entry points. `make check` is the fast gate a
# change must pass before review: formatting, vet, a module-wide
# race-detector run, a benchmark compile/smoke pass, and the fuzz
# seed-corpus regression pass. `make bench` runs the tracked performance
# suite and refreshes BENCH_sweep.json.

.PHONY: all build test check figures bench

all: build

build:
	go build ./...

test:
	go test -shuffle=on ./...

check:
	sh scripts/check.sh

figures:
	go run ./cmd/fgexperiments

bench:
	sh scripts/bench.sh
