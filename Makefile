# Build and verification entry points. `make check` is the fast gate a
# change must pass before review: formatting, vet, a module-wide
# race-detector run, and the fuzz seed-corpus regression pass.

.PHONY: all build test check figures

all: build

build:
	go build ./...

test:
	go test ./...

check:
	sh scripts/check.sh

figures:
	go run ./cmd/fgexperiments
