# Build and verification entry points. `make check` is the fast gate a
# change must pass before review: formatting, vet, a module-wide
# race-detector run (plus a -count=2 pass over the serve path), a
# benchmark compile/smoke pass, the fuzz seed-corpus regression pass,
# and the fgserved/fgload smokes. `make bench` runs the tracked
# performance suite and refreshes BENCH_sweep.json and BENCH_serve.json;
# `make load` runs a longer standalone soak with coherence checking.

.PHONY: all build test check figures bench load

all: build

build:
	go build ./...

test:
	go test -shuffle=on ./...

check:
	sh scripts/check.sh

figures:
	go run ./cmd/fgexperiments

bench:
	sh scripts/bench.sh

load:
	go run ./cmd/fgload -requests 2000 -concurrency 8 -seed 1 -coherence-batches 8
