// Package units provides byte sizes, transfer rates, and virtual-time
// helpers shared by the simulator, middleware, and prediction framework.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Bytes is a data volume. It is a distinct type so that dataset sizes,
// chunk sizes, and reduction object sizes cannot be accidentally mixed
// with element counts.
type Bytes int64

// Common byte units.
const (
	Byte Bytes = 1
	KB         = 1024 * Byte
	MB         = 1024 * KB
	GB         = 1024 * MB
	TB         = 1024 * GB
)

// String renders the volume with a binary-unit suffix, e.g. "1.40GB".
func (b Bytes) String() string {
	switch {
	case b >= TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// Float returns the volume as a float64 number of bytes.
func (b Bytes) Float() float64 { return float64(b) }

// ParseBytes parses strings such as "512", "64KB", "1.4GB", "710MB".
// Unit suffixes are case-insensitive and binary (1KB = 1024B).
func ParseBytes(s string) (Bytes, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	unit := Byte
	switch {
	case strings.HasSuffix(t, "TB"):
		unit, t = TB, t[:len(t)-2]
	case strings.HasSuffix(t, "GB"):
		unit, t = GB, t[:len(t)-2]
	case strings.HasSuffix(t, "MB"):
		unit, t = MB, t[:len(t)-2]
	case strings.HasSuffix(t, "KB"):
		unit, t = KB, t[:len(t)-2]
	case strings.HasSuffix(t, "B"):
		t = t[:len(t)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse %q as bytes: %v", s, err)
	}
	// strconv.ParseFloat accepts "inf", "nan", and values whose scaled
	// volume exceeds int64; all of them would silently convert to
	// math.MinInt64 below, poisoning every downstream size computation.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("units: non-finite byte volume %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative byte volume %q", s)
	}
	scaled := v * float64(unit)
	// float64(math.MaxInt64) is exactly 2^63; any float strictly below it
	// rounds to a representable int64, anything at or above overflows.
	if scaled >= float64(math.MaxInt64) {
		return 0, fmt.Errorf("units: byte volume %q overflows int64", s)
	}
	return Bytes(math.Round(scaled)), nil
}

// Rate is a transfer or processing rate in bytes per second.
type Rate float64

// Common rates. The paper's bandwidth-variation experiments are labelled in
// Kbps; only the ratio between profile and target bandwidth enters the
// model, so we keep the same labels.
const (
	BytePerSec Rate = 1
	KBPerSec        = 1024 * BytePerSec
	MBPerSec        = 1024 * KBPerSec
	GBPerSec        = 1024 * MBPerSec
)

// String renders the rate with a unit suffix, e.g. "350.00MB/s".
func (r Rate) String() string {
	switch {
	case r >= GBPerSec:
		return fmt.Sprintf("%.2fGB/s", float64(r)/float64(GBPerSec))
	case r >= MBPerSec:
		return fmt.Sprintf("%.2fMB/s", float64(r)/float64(MBPerSec))
	case r >= KBPerSec:
		return fmt.Sprintf("%.2fKB/s", float64(r)/float64(KBPerSec))
	}
	return fmt.Sprintf("%.2fB/s", float64(r))
}

// TransferTime reports the virtual time needed to move v bytes at rate r.
// A non-positive rate yields an infinite-like sentinel of math.MaxInt64,
// which callers treat as "unreachable".
func (r Rate) TransferTime(v Bytes) time.Duration {
	if r <= 0 {
		return time.Duration(math.MaxInt64)
	}
	sec := float64(v) / float64(r)
	return Seconds(sec)
}

// Seconds converts a float64 second count into a time.Duration, rounding
// to the nearest nanosecond and saturating instead of overflowing for
// very large values.
func Seconds(sec float64) time.Duration {
	ns := math.Round(sec * float64(time.Second))
	if ns >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	if ns <= float64(math.MinInt64) {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(ns)
}

// SecondsOf converts a duration to float64 seconds.
func SecondsOf(d time.Duration) float64 { return d.Seconds() }
