package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KB, "1.00KB"},
		{1536, "1.50KB"},
		{MB, "1.00MB"},
		{1433 * MB, "1.40GB"},
		{GB, "1.00GB"},
		{TB, "1.00TB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"512", 512},
		{"512B", 512},
		{"64KB", 64 * KB},
		{"64kb", 64 * KB},
		{" 1.5 MB ", 1536 * KB},
		{"1.4GB", Bytes(math.Round(1.4 * float64(GB)))},
		{"710MB", 710 * MB},
		{"2TB", 2 * TB},
		{"0", 0},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	cases := []struct {
		in     string
		reason string
	}{
		{"", "empty string"},
		{"abc", "not a number"},
		{"12XB", "unknown unit"},
		{"-5MB", "negative"},
		{"-0.4KB", "negative fraction"},
		{"GB", "unit without value"},
		// Non-finite and overflowing volumes used to parse to
		// math.MinInt64 with a nil error.
		{"inf", "positive infinity"},
		{"+Inf", "positive infinity"},
		{"-inf", "negative infinity"},
		{"Infinity", "spelled-out infinity"},
		{"infGB", "infinite volume with unit"},
		{"nan", "not-a-number"},
		{"NaNKB", "not-a-number with unit"},
		{"1e300GB", "overflow after unit scaling"},
		{"1e19", "overflow without unit"},
		{"9223372036854775808", "one past MaxInt64"},
	}
	for _, c := range cases {
		if v, err := ParseBytes(c.in); err == nil {
			t.Errorf("ParseBytes(%q) = %d, want error (%s)", c.in, int64(v), c.reason)
		}
	}
}

func TestParseBytesNearOverflowBoundary(t *testing.T) {
	// Just below 2^63 must still parse; the largest float64 below 2^63 is
	// 2^63 - 1024.
	got, err := ParseBytes("9223372036854774784")
	if err != nil {
		t.Fatalf("ParseBytes near MaxInt64: %v", err)
	}
	if got <= 0 {
		t.Fatalf("ParseBytes near MaxInt64 = %d, want positive", int64(got))
	}
	// 8 exbibytes exactly (2^63) must be rejected, 2^62 accepted.
	if v, err := ParseBytes("8388608TB"); err == nil {
		t.Fatalf("ParseBytes(8EiB) = %d, want overflow error", int64(v))
	}
	if _, err := ParseBytes("4194304TB"); err != nil {
		t.Fatalf("ParseBytes(4EiB): %v", err)
	}
}

func TestParseBytesNeverReturnsNegative(t *testing.T) {
	// Property pinning the original bug: whatever the input, a nil error
	// implies a non-negative, in-range volume.
	for _, in := range []string{"inf", "nan", "1e300GB", "1e308", "512MB", "0", "2TB"} {
		v, err := ParseBytes(in)
		if err == nil && v < 0 {
			t.Errorf("ParseBytes(%q) = %d with nil error", in, int64(v))
		}
	}
}

func TestParseBytesRoundTripsString(t *testing.T) {
	f := func(raw uint32) bool {
		b := Bytes(raw)
		got, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		// String() rounds to two decimals, so allow 1% slack above KB.
		if b < KB {
			return got == b
		}
		diff := math.Abs(float64(got - b))
		return diff <= 0.01*float64(b)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateTransferTime(t *testing.T) {
	cases := []struct {
		r    Rate
		v    Bytes
		want time.Duration
	}{
		{MBPerSec, MB, time.Second},
		{100 * MBPerSec, 50 * MB, 500 * time.Millisecond},
		{KBPerSec, KB, time.Second},
		{MBPerSec, 0, 0},
	}
	for _, c := range cases {
		if got := c.r.TransferTime(c.v); got != c.want {
			t.Errorf("%v.TransferTime(%v) = %v, want %v", c.r, c.v, got, c.want)
		}
	}
}

func TestZeroRateIsUnreachable(t *testing.T) {
	if got := Rate(0).TransferTime(MB); got != time.Duration(math.MaxInt64) {
		t.Fatalf("zero-rate transfer = %v, want saturated max", got)
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		r    Rate
		want string
	}{
		{100 * MBPerSec, "100.00MB/s"},
		{2 * GBPerSec, "2.00GB/s"},
		{500 * KBPerSec, "500.00KB/s"},
		{10, "10.00B/s"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Rate.String() = %q, want %q", got, c.want)
		}
	}
}

func TestSecondsSaturates(t *testing.T) {
	if got := Seconds(1e300); got != time.Duration(math.MaxInt64) {
		t.Fatalf("Seconds(1e300) = %v, want saturated max", got)
	}
	if got := Seconds(-1e300); got != time.Duration(math.MinInt64) {
		t.Fatalf("Seconds(-1e300) = %v, want saturated min", got)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		sec := float64(ms) / 1000
		return math.Abs(SecondsOf(Seconds(sec))-sec) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
