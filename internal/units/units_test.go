package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KB, "1.00KB"},
		{1536, "1.50KB"},
		{MB, "1.00MB"},
		{1433 * MB, "1.40GB"},
		{GB, "1.00GB"},
		{TB, "1.00TB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"512", 512},
		{"512B", 512},
		{"64KB", 64 * KB},
		{"64kb", 64 * KB},
		{" 1.5 MB ", 1536 * KB},
		{"1.4GB", Bytes(math.Round(1.4 * float64(GB)))},
		{"710MB", 710 * MB},
		{"2TB", 2 * TB},
		{"0", 0},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "12XB", "-5MB", "GB"} {
		if v, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) = %v, want error", in, v)
		}
	}
}

func TestParseBytesRoundTripsString(t *testing.T) {
	f := func(raw uint32) bool {
		b := Bytes(raw)
		got, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		// String() rounds to two decimals, so allow 1% slack above KB.
		if b < KB {
			return got == b
		}
		diff := math.Abs(float64(got - b))
		return diff <= 0.01*float64(b)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateTransferTime(t *testing.T) {
	cases := []struct {
		r    Rate
		v    Bytes
		want time.Duration
	}{
		{MBPerSec, MB, time.Second},
		{100 * MBPerSec, 50 * MB, 500 * time.Millisecond},
		{KBPerSec, KB, time.Second},
		{MBPerSec, 0, 0},
	}
	for _, c := range cases {
		if got := c.r.TransferTime(c.v); got != c.want {
			t.Errorf("%v.TransferTime(%v) = %v, want %v", c.r, c.v, got, c.want)
		}
	}
}

func TestZeroRateIsUnreachable(t *testing.T) {
	if got := Rate(0).TransferTime(MB); got != time.Duration(math.MaxInt64) {
		t.Fatalf("zero-rate transfer = %v, want saturated max", got)
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		r    Rate
		want string
	}{
		{100 * MBPerSec, "100.00MB/s"},
		{2 * GBPerSec, "2.00GB/s"},
		{500 * KBPerSec, "500.00KB/s"},
		{10, "10.00B/s"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Rate.String() = %q, want %q", got, c.want)
		}
	}
}

func TestSecondsSaturates(t *testing.T) {
	if got := Seconds(1e300); got != time.Duration(math.MaxInt64) {
		t.Fatalf("Seconds(1e300) = %v, want saturated max", got)
	}
	if got := Seconds(-1e300); got != time.Duration(math.MinInt64) {
		t.Fatalf("Seconds(-1e300) = %v, want saturated min", got)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		sec := float64(ms) / 1000
		return math.Abs(SecondsOf(Seconds(sec))-sec) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
