package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// stallWriter blocks every Write until release is closed — a scrape
// client that accepted the TCP connection and then stopped reading.
type stallWriter struct {
	first   chan struct{} // closed on the first Write
	release chan struct{}
	once    sync.Once
}

func (w *stallWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.first) })
	<-w.release
	return len(p), nil
}

// TestScrapeDoesNotBlockObserves pins the exposition locking contract:
// WritePrometheus must not hold any histogram's mutex (nor the registry
// mutex) across writes to the scrape client, so a stalled client cannot
// stall hot-path Observe calls or new-series registration.
func TestScrapeDoesNotBlockObserves(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fg_req_seconds", "latency", nil)
	h.Observe(0.01)
	c := r.Counter("fg_requests_total", "requests")

	w := &stallWriter{first: make(chan struct{}), release: make(chan struct{})}
	scrapeDone := make(chan struct{})
	go func() {
		r.WritePrometheus(w)
		close(scrapeDone)
	}()

	select {
	case <-w.first:
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never wrote anything")
	}

	// The scrape is now stalled mid-write. Every hot-path operation must
	// still complete promptly.
	opsDone := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i) * 0.001)
			c.Inc()
		}
		// Registration takes r.mu; it must not be held by the scrape.
		r.Counter("fg_registered_mid_scrape_total", "late registration")
		r.Histogram("fg_late_seconds", "late histogram", nil).Observe(1)
		close(opsDone)
	}()

	select {
	case <-opsDone:
	case <-time.After(5 * time.Second):
		close(w.release)
		t.Fatal("observe/registration blocked behind a stalled scrape writer")
	}

	close(w.release)
	select {
	case <-scrapeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never finished after release")
	}
}

// TestScrapeSnapshotConsistent checks a scrape taken while observes race
// still renders a self-consistent histogram (count equals the +Inf
// cumulative bucket) — the snapshot is atomic per series.
func TestScrapeSnapshotConsistent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fg_s", "help", []float64{0.5})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(0.25)
				h.Observe(0.75)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		out := r.Expose()
		var inf, count string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, `fg_s_bucket{le="+Inf"} `) {
				inf = strings.TrimPrefix(line, `fg_s_bucket{le="+Inf"} `)
			}
			if strings.HasPrefix(line, "fg_s_count ") {
				count = strings.TrimPrefix(line, "fg_s_count ")
			}
		}
		if inf == "" || count == "" || inf != count {
			close(stop)
			wg.Wait()
			t.Fatalf("inconsistent snapshot: +Inf bucket %q vs count %q\n%s", inf, count, out)
		}
	}
	close(stop)
	wg.Wait()
}
