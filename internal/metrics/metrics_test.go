package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAddAndMonotonicity(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(2.5)
	c.Add(-10)        // ignored
	c.Add(math.NaN()) // ignored
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help", Label{"path", "/x"})
	b := r.Counter("c_total", "help", Label{"path", "/x"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("c_total", "help", Label{"path", "/y"})
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("metric", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("metric", "help")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight", "in-flight requests")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramBucketsAndNonFinite(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 5, math.NaN(), math.Inf(1)} {
		h.Observe(v)
	}
	if got := h.Count(); got != 3 {
		t.Fatalf("histogram count = %d, want 3 (non-finite dropped)", got)
	}
	out := r.Expose()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		`latency_seconds_sum 5.55`,
		`latency_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second family").Add(2)
	r.Counter("a_total", "first family", Label{"path", "/predict"}).Inc()
	r.Gauge("g", `quoted "value"`+"\n").Set(1.5)

	out := r.Expose()
	want := `# HELP a_total first family
# TYPE a_total counter
a_total{path="/predict"} 1
# HELP b_total second family
# TYPE b_total counter
b_total 2
`
	if !strings.HasPrefix(out, want) {
		t.Errorf("exposition not deterministic/sorted:\n%s", out)
	}
	if !strings.Contains(out, "g 1.5") {
		t.Errorf("gauge missing from exposition:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "h", Label{"k", `a\b"c` + "\n"}).Inc()
	out := r.Expose()
	if !strings.Contains(out, `e_total{k="a\\b\"c\n"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 1") {
		t.Errorf("body: %s", rec.Body.String())
	}
}

func TestConcurrentUseIsRaceFree(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "h")
			h := r.Histogram("conc_seconds", "h", nil)
			g := r.Gauge("conc_gauge", "h")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			_ = r.Expose()
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if got := r.Counter("conc_total", "h").Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	c := GetCounter("fg_test_default_total", "h")
	c.Inc()
	if GetCounter("fg_test_default_total", "h") != c {
		t.Fatal("default helper not idempotent")
	}
	if !strings.Contains(Default().Expose(), "fg_test_default_total") {
		t.Fatal("default registry missing helper-registered counter")
	}
}
