// Package metrics is a small, dependency-free registry of counters,
// gauges, and histograms with a Prometheus text-format exposition
// endpoint. The hot layers of the system (the bench harness's simulation
// cache, the middleware's fault recovery, the grid selector and bandwidth
// estimator, and the fgserved HTTP handlers) register their instruments
// against the process-wide Default registry; fgserved serves them on
// /metrics.
//
// Instruments are identified by a family name plus an optional set of
// constant labels. Registering the same (name, labels) pair twice returns
// the same instrument, so package-level instrumentation can use
// package-level vars without coordination. Registering one name with two
// different instrument kinds panics: that is a programming error, not a
// runtime condition.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to an instrument.
type Label struct {
	Key, Value string
}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v to the counter. Negative and NaN deltas are ignored:
// counters only go up.
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (which may be negative) to the gauge.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds, +Inf implicit
	counts []uint64  // len(bounds)+1, last is the +Inf bucket
	sum    float64
	count  uint64
}

// DefSecondsBuckets are reasonable latency buckets for sub-second to
// tens-of-seconds request handling.
func DefSecondsBuckets() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}
}

// Observe records one sample. Non-finite samples are dropped: a NaN or
// ±Inf observation would poison sum forever.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// histSnapshot is a point-in-time copy of a histogram's state, taken
// under h.mu so exposition can format it with no lock held. bounds are
// immutable after construction and shared, not copied.
type histSnapshot struct {
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

func (h *Histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return histSnapshot{
		bounds: h.bounds,
		counts: append([]uint64(nil), h.counts...),
		sum:    h.sum,
		count:  h.count,
	}
}

// family is every series registered under one metric name.
type family struct {
	name, help string
	kind       kind
	series     map[string]any // rendered label string -> *Counter/*Gauge/*Histogram
}

// Registry holds instrument families and renders them in Prometheus text
// format. The zero value is not usable; use NewRegistry or Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var def = NewRegistry()

// Default returns the process-wide registry that package-level helpers
// register against.
func Default() *Registry { return def }

// GetCounter registers (or returns the existing) counter under name with
// the given constant labels on the default registry.
func GetCounter(name, help string, labels ...Label) *Counter {
	return def.Counter(name, help, labels...)
}

// GetGauge is the default-registry gauge helper.
func GetGauge(name, help string, labels ...Label) *Gauge {
	return def.Gauge(name, help, labels...)
}

// GetHistogram is the default-registry histogram helper.
func GetHistogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return def.Histogram(name, help, buckets, labels...)
}

func (r *Registry) lookup(name, help string, k kind, labels []Label) (any, string, *family) {
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: k, series: make(map[string]any)}
		r.families[name] = fam
	}
	if fam.kind != k {
		panic(fmt.Sprintf("metrics: %q registered as %v, requested as %v", name, fam.kind, k))
	}
	key := renderLabels(labels)
	m := fam.series[key]
	return m, key, fam
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, key, fam := r.lookup(name, help, counterKind, labels)
	if m != nil {
		return m.(*Counter)
	}
	c := &Counter{}
	fam.series[key] = c
	return c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, key, fam := r.lookup(name, help, gaugeKind, labels)
	if m != nil {
		return m.(*Gauge)
	}
	g := &Gauge{}
	fam.series[key] = g
	return g
}

// Histogram registers (or returns the existing) histogram series. buckets
// are upper bounds; nil selects DefSecondsBuckets. The bounds of the
// first registration win.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, key, fam := r.lookup(name, help, histogramKind, labels)
	if m != nil {
		return m.(*Histogram)
	}
	if buckets == nil {
		buckets = DefSecondsBuckets()
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	fam.series[key] = h
	return h
}

// renderLabels renders a deterministic `{k="v",...}` label string
// (empty for no labels), escaping backslash, quote, and newline as the
// text format requires.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// mergeLabelKey splices an extra label (e.g. le="...") into a rendered
// label string.
func mergeLabelKey(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// famSnapshot is one family's exposition-ready state: series pointers
// copied out under r.mu (the live series map may grow concurrently)
// with keys pre-sorted.
type famSnapshot struct {
	name, help string
	kind       kind
	keys       []string
	series     []any
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format, deterministically ordered (families by name, series
// by label string).
//
// No registry or histogram lock is held while writing to w: a stalled
// scrape client must never block hot-path Observe/Add calls or new
// series registration. Everything mutable is snapshotted first —
// family and series maps under r.mu, each histogram's buckets/sum/count
// under its own mu — and the formatting works from the copies.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]famSnapshot, 0, len(names))
	for _, n := range names {
		fam := r.families[n]
		fs := famSnapshot{
			name: fam.name,
			help: fam.help,
			kind: fam.kind,
			keys: make([]string, 0, len(fam.series)),
		}
		for k := range fam.series {
			fs.keys = append(fs.keys, k)
		}
		sort.Strings(fs.keys)
		fs.series = make([]any, len(fs.keys))
		for i, k := range fs.keys {
			fs.series[i] = fam.series[k]
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()

	for _, fam := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", fam.name, fam.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind)
		for i, k := range fam.keys {
			switch m := fam.series[i].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %s\n", fam.name, k, formatFloat(m.Value()))
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", fam.name, k, formatFloat(m.Value()))
			case *Histogram:
				snap := m.snapshot()
				cum := uint64(0)
				for j, bound := range snap.bounds {
					cum += snap.counts[j]
					le := mergeLabelKey(k, `le="`+formatFloat(bound)+`"`)
					fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, le, cum)
				}
				cum += snap.counts[len(snap.bounds)]
				le := mergeLabelKey(k, `le="+Inf"`)
				fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, le, cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, k, formatFloat(snap.sum))
				fmt.Fprintf(w, "%s_count%s %d\n", fam.name, k, snap.count)
			}
		}
	}
}

// Expose renders the registry to a string (the /metrics payload).
func (r *Registry) Expose() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// Handler returns an http.Handler serving the registry in text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.Expose())
	})
}
