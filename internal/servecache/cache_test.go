package servecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"freerideg/internal/reqtrace"
)

func TestGetCachesAtVersion(t *testing.T) {
	c := New[int](Options{Name: "test-basic"})
	fills := 0
	fill := func(context.Context) (int, error) { fills++; return 42, nil }
	for i := 0; i < 5; i++ {
		v, err := c.Get(context.Background(), "k", 7, fill)
		if err != nil || v != 42 {
			t.Fatalf("Get = %d, %v", v, err)
		}
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestVersionMoveInvalidates(t *testing.T) {
	c := New[int](Options{Name: "test-invalidate"})
	base := c.Stats()
	val := 1
	fill := func(context.Context) (int, error) { return val, nil }
	if v, _ := c.Get(context.Background(), "k", 1, fill); v != 1 {
		t.Fatalf("v1 read = %d", v)
	}
	val = 2
	// Same key, moved version: the old entry must not be served.
	if v, _ := c.Get(context.Background(), "k", 2, fill); v != 2 {
		t.Fatalf("post-move read = %d, want 2 (stale entry served)", v)
	}
	// And a re-read at the old version must not see the new entry either.
	val = 3
	if v, _ := c.Get(context.Background(), "k", 1, fill); v != 3 {
		t.Fatalf("old-version re-read = %d, want a fresh fill", v)
	}
	st := c.Stats()
	if got := st.Invalidations - base.Invalidations; got != 2 {
		t.Fatalf("invalidations = %v, want 2", got)
	}
	if got := st.Misses - base.Misses; got != 3 {
		t.Fatalf("misses = %v, want 3", got)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New[int](Options{Name: "test-errors"})
	boom := errors.New("boom")
	calls := 0
	if _, err := c.Get(context.Background(), "k", 1, func(context.Context) (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed fill left an entry (Len = %d)", c.Len())
	}
	if v, err := c.Get(context.Background(), "k", 1, func(context.Context) (int, error) { calls++; return 9, nil }); err != nil || v != 9 {
		t.Fatalf("retry after error: %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("fill calls = %d, want 2", calls)
	}
}

// TestCoalescing proves duplicate in-flight Gets run one fill: N
// concurrent readers of one cold key all block on the first fill, which
// is held open until every reader has arrived.
func TestCoalescing(t *testing.T) {
	c := New[string](Options{Name: "test-coalesce"})
	base := c.Stats()
	const readers = 8
	var fills atomic.Int32
	arrived := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Get(context.Background(), "hot", 3, func(context.Context) (string, error) {
				fills.Add(1)
				close(arrived) // the fill is in flight; let the others race in
				<-release
				return "value", nil
			})
			if err != nil || v != "value" {
				t.Errorf("Get = %q, %v", v, err)
			}
		}()
	}
	<-arrived
	// Wait until every other reader is parked on the in-flight entry.
	for c.Stats().Coalesced-base.Coalesced < readers-1 {
	}
	close(release)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1", n)
	}
	st := c.Stats()
	if got := st.Coalesced - base.Coalesced; got != readers-1 {
		t.Fatalf("coalesced = %v, want %d", got, readers-1)
	}
	if got := st.Misses - base.Misses; got != 1 {
		t.Fatalf("misses = %v, want 1", got)
	}
}

func TestEvictionBoundsEntries(t *testing.T) {
	c := New[int](Options{Name: "test-evict", Shards: 1, MaxEntries: 8})
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, err := c.Get(context.Background(), k, 1, func(context.Context) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 8 {
		t.Fatalf("Len = %d, want <= 8", n)
	}
	if ev := c.Stats().Evictions; ev < 42 {
		t.Fatalf("evictions = %v, want >= 42", ev)
	}
}

func TestEvictionPrefersStaleVersions(t *testing.T) {
	c := New[int](Options{Name: "test-evict-stale", Shards: 1, MaxEntries: 4})
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("old%d", i)
		c.Get(context.Background(), k, 1, func(context.Context) (int, error) { return i, nil })
	}
	// Insert fresh entries at a newer version; the stale ones must go
	// first, so the newest insert still hits afterwards.
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("new%d", i)
		c.Get(context.Background(), k, 2, func(context.Context) (int, error) { return 100 + i, nil })
	}
	fills := 0
	v, err := c.Get(context.Background(), "new2", 2, func(context.Context) (int, error) { fills++; return -1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if fills != 0 || v != 102 {
		t.Fatalf("fresh entry was evicted before stale ones (v=%d fills=%d)", v, fills)
	}
}

// TestConcurrentVersionChurn is the package-local race soak: readers
// hammer a small key space while a writer advances the version,
// asserting every read observes the value computed for its own version
// — the cache-coherence contract recalibration relies on.
func TestConcurrentVersionChurn(t *testing.T) {
	c := New[uint64](Options{Name: "test-churn", MaxEntries: 64})
	var version atomic.Uint64
	version.Store(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			version.Add(1)
		}
		close(stop)
	}()
	const readers = 8
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ver := version.Load()
				key := fmt.Sprintf("key%d", i%4)
				got, err := c.Get(context.Background(), key, ver, func(context.Context) (uint64, error) { return ver, nil })
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				// The entry must carry the version the reader asked for:
				// anything older is a stale serve, anything newer means the
				// version pin is broken.
				if got != ver {
					t.Errorf("reader %d: read version %d at version %d", r, got, ver)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func BenchmarkGetHit(b *testing.B) {
	c := New[int](Options{Name: "bench-hit"})
	c.Get(context.Background(), "k", 1, func(context.Context) (int, error) { return 1, nil })
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Get(context.Background(), "k", 1, func(context.Context) (int, error) { return 1, nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGetMiss(b *testing.B) {
	c := New[int](Options{Name: "bench-miss"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A moving version makes every read a miss.
		if _, err := c.Get(context.Background(), "k", uint64(i), func(context.Context) (int, error) { return i, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBatchGetsNeverServePreBumpEntries soaks the access pattern the
// batch serve plane relies on: a "batch" resolves the epoch once and
// issues many Gets pinned at it while a writer keeps bumping the epoch
// concurrently. Every item must come back with exactly the value filled
// for its pinned epoch — in particular, no item of a batch that started
// after a bump completed may return a pre-bump entry.
func TestBatchGetsNeverServePreBumpEntries(t *testing.T) {
	c := New[uint64](Options{Name: "test-batch-bumps", MaxEntries: 128})
	var epoch atomic.Uint64
	epoch.Store(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			epoch.Add(1)
		}
		close(stop)
	}()
	const readers = 6
	const batchItems = 16
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for b := 0; ; b++ {
				select {
				case <-stop:
					return
				default:
				}
				// floor is the last bump known complete before this batch
				// resolved its epoch; ver is the batch's single resolution.
				floor := epoch.Load()
				ver := epoch.Load()
				for i := 0; i < batchItems; i++ {
					key := fmt.Sprintf("item%d", i%5)
					got, err := c.Get(context.Background(), key, ver, func(context.Context) (uint64, error) { return ver, nil })
					if err != nil {
						t.Errorf("reader %d batch %d: %v", r, b, err)
						return
					}
					if got < floor {
						t.Errorf("reader %d batch %d item %d: served pre-bump entry %d, floor %d",
							r, b, i, got, floor)
						return
					}
					if got != ver {
						t.Errorf("reader %d batch %d item %d: entry version %d, batch pinned %d",
							r, b, i, got, ver)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestEvictionSparesRecentlyTouched pins the recency contract: under
// insert pressure at one version, the victim order is oldest last-touch
// first, so an entry read just before the burst survives it while the
// untouched entries rotate out.
func TestEvictionSparesRecentlyTouched(t *testing.T) {
	c := New[int](Options{Name: "test-evict-recency", Shards: 1, MaxEntries: 4})
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Get(context.Background(), k, 1, func(context.Context) (int, error) { return i, nil })
	}
	// Touch k0 strictly later than the initial inserts (the sleep
	// guarantees a newer stamp even on a coarse clock).
	time.Sleep(2 * time.Millisecond)
	if v, err := c.Get(context.Background(), "k0", 1, func(context.Context) (int, error) { return -1, nil }); err != nil || v != 0 {
		t.Fatalf("warm-up read of k0 = %d, %v", v, err)
	}
	time.Sleep(2 * time.Millisecond)
	// An insert burst at the same version: each insert must evict the
	// oldest-touched completed entry — k1, k2, k3 — never the
	// just-read k0.
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("burst%d", i)
		c.Get(context.Background(), k, 1, func(context.Context) (int, error) { return 100 + i, nil })
	}
	fills := 0
	v, err := c.Get(context.Background(), "k0", 1, func(context.Context) (int, error) { fills++; return -1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if fills != 0 || v != 0 {
		t.Fatalf("just-read entry k0 was evicted by the burst (v=%d fills=%d)", v, fills)
	}
}

// TestGetRecordsTraceSpans checks the cache's reqtrace integration: a
// miss records a cache span annotated "miss" plus a "fill" span in the
// originating request's trace (via the detached fill context), and a
// hit records "hit".
func TestGetRecordsTraceSpans(t *testing.T) {
	c := New[int](Options{Name: "traced", Shards: 1})
	tr := reqtrace.New("fg-test-cache", "/predict")
	ctx := reqtrace.WithTrace(context.Background(), tr)
	if _, err := c.Get(ctx, "k", 1, func(context.Context) (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "k", 1, func(context.Context) (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	rec := tr.Finish(200, time.Millisecond)
	var notes []string
	for _, sp := range rec.Spans[1:] {
		notes = append(notes, sp.Name+"="+sp.Note)
	}
	want := []string{"cache:traced=miss", "fill=", "cache:traced=hit"}
	if len(notes) != len(want) {
		t.Fatalf("spans = %v, want %v", notes, want)
	}
	for i := range want {
		if notes[i] != want[i] {
			t.Fatalf("spans = %v, want %v", notes, want)
		}
	}
}
