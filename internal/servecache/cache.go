// Package servecache is the request-path scaling layer of the
// prediction service: a sharded, concurrency-safe, version-pinned cache
// with single-flight coalescing of duplicate in-flight computations.
//
// The service's steady state is many concurrent requests asking the same
// few questions — "predict kmeans on this configuration", "rank replicas
// for this dataset" — against profile state that changes only when a
// recalibration lands. The cache exploits exactly that shape:
//
//   - Entries are keyed by an opaque request key (the caller renders
//     app, variant, configuration, and dataset spec into it) and pinned
//     to the version of the state they were computed from (the
//     profile.Store snapshot version, composed with any other input
//     epoch the caller folds in). A Get at a different version never
//     returns the entry: recalibration invalidates by moving the
//     version, so a post-recalibration read cannot observe a
//     pre-recalibration answer.
//   - Duplicate in-flight work coalesces: the first Get for a
//     (key, version) runs the fill function, concurrent Gets for the
//     same pair wait for that one computation. Fill errors are returned
//     to every waiter but never cached, so transient failures retry.
//   - Gets are context-aware. A waiter whose context ends abandons the
//     wait immediately — without cancelling or perturbing the fill the
//     other waiters still depend on. The fill itself runs under its own
//     context, detached from the request that started it: if the
//     originator departs, the remaining waiters adopt the fill; only
//     when the last waiter departs is the fill's context canceled, so
//     no computation keeps running (or holding resources) for an answer
//     nobody wants.
//   - The key space is sharded over independently locked maps, so
//     unrelated requests never contend on one mutex, and each shard is
//     bounded: inserts over the cap first drop entries made stale by a
//     version move, then arbitrary completed entries.
//
// Every cache reports hits, misses, coalesced waits, invalidations,
// evictions, and abandoned fills through internal/metrics under its
// Name label.
package servecache

import (
	"context"
	"hash/maphash"
	"sync"
	"time"

	"freerideg/internal/metrics"
	"freerideg/internal/reqtrace"
)

// DefaultShards is the shard count used when Options.Shards is zero:
// enough to keep independent request keys off one mutex without
// meaningfully growing the footprint of small caches.
const DefaultShards = 16

// DefaultMaxEntries bounds a cache's total entry count when
// Options.MaxEntries is zero.
const DefaultMaxEntries = 4096

// Options configure a Cache.
type Options struct {
	// Name labels the cache's metric series (e.g. "predict", "select").
	Name string
	// Shards is the number of independently locked shards; values are
	// rounded up to a power of two. Zero selects DefaultShards.
	Shards int
	// MaxEntries bounds the cache's total entry count (split evenly
	// across shards). Zero selects DefaultMaxEntries.
	MaxEntries int
}

// entry is one cached (or in-flight) computation. val and err are
// written once, before done is closed; waiters read them only after
// <-done, so the fields need no lock. waiters, cancel, and abandoned
// manage the fill's lifetime and are guarded by the shard mutex:
// waiters counts the Gets currently blocked on done (the originator
// included), cancel ends the fill's context, and abandoned marks an
// entry whose fill was canceled because its last waiter departed — a
// later Get must start fresh rather than join a doomed computation.
type entry[V any] struct {
	version   uint64
	done      chan struct{}
	val       V
	err       error
	waiters   int
	cancel    context.CancelFunc
	abandoned bool
	// touched is the UnixNano of the last Get that served or joined
	// this entry, guarded by the shard mutex. The stamp is taken once
	// per Get by the caller — never inside the eviction loop — and
	// orders eviction oldest-first among completed entries.
	touched int64
}

// shard is one independently locked slice of the key space.
type shard[V any] struct {
	mu sync.Mutex
	m  map[string]*entry[V]
}

// Cache is a sharded single-flight cache of V values pinned to input
// versions. The zero value is not usable; use New.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint64
	seed   maphash.Seed
	perMax int
	// spanName labels this cache's request-trace spans ("cache:predict");
	// prebuilt so the traced path concatenates nothing per Get.
	spanName string

	hits          *metrics.Counter
	misses        *metrics.Counter
	coalesced     *metrics.Counter
	invalidations *metrics.Counter
	evictions     *metrics.Counter
	abandoned     *metrics.Counter
	entries       *metrics.Gauge
}

// New builds a cache with the given options.
func New[V any](opts Options) *Cache[V] {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	max := opts.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	perMax := max / shards
	if perMax < 1 {
		perMax = 1
	}
	label := metrics.Label{Key: "cache", Value: opts.Name}
	c := &Cache[V]{
		shards:   make([]shard[V], shards),
		mask:     uint64(shards - 1),
		seed:     maphash.MakeSeed(),
		perMax:   perMax,
		spanName: "cache:" + opts.Name,
		hits: metrics.GetCounter("fg_servecache_hits_total",
			"Cache reads answered from a completed entry at the live version.", label),
		misses: metrics.GetCounter("fg_servecache_misses_total",
			"Cache reads that ran the fill computation.", label),
		coalesced: metrics.GetCounter("fg_servecache_coalesced_total",
			"Cache reads that waited on another request's in-flight fill.", label),
		invalidations: metrics.GetCounter("fg_servecache_invalidations_total",
			"Cache entries discarded because the input version moved.", label),
		evictions: metrics.GetCounter("fg_servecache_evictions_total",
			"Cache entries dropped by the per-shard size bound.", label),
		abandoned: metrics.GetCounter("fg_servecache_abandoned_total",
			"In-flight fills canceled because every waiter departed.", label),
		entries: metrics.GetGauge("fg_servecache_entries",
			"Entries currently held (completed or in flight).", label),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry[V])
	}
	return c
}

func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[maphash.String(c.seed, key)&c.mask]
}

// Get returns the value cached for key at version, running fill to
// compute it on a miss. Concurrent Gets for the same (key, version)
// coalesce onto one fill; a Get at a different version replaces the
// entry (the old computation's result is never served to it). Fill
// errors propagate to every coalesced waiter and are not cached.
//
// ctx bounds only this caller's wait, never the shared fill: a Get
// whose context ends returns ctx.Err() immediately while the fill (and
// every other waiter) continues. The fill receives its own context,
// canceled only when the last interested waiter has departed — so a
// fill started by a request that later timed out is adopted by the
// waiters that still want the answer, and a fill nobody wants anymore
// stops claiming work instead of running to completion unobserved.
func (c *Cache[V]) Get(ctx context.Context, key string, version uint64, fill func(context.Context) (V, error)) (V, error) {
	// A Get whose context is already dead must not touch the cache at
	// all: counting a miss and launching a fill that its only waiter
	// abandons in the same breath wastes a detached computation and
	// perturbs the shared hit/miss/abandoned accounting.
	if err := ctx.Err(); err != nil {
		var zero V
		return zero, err
	}
	// One wall-clock read per Get, taken here (the caller of the
	// eviction loop) and reused for every touch stamp below.
	now := time.Now().UnixNano()
	sp := reqtrace.Child(ctx, c.spanName)
	defer sp.End()
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		if e.version == version && !e.abandoned {
			if isDone(e.done) {
				e.touched = now
				sh.mu.Unlock()
				c.hits.Inc()
				sp.Annotate("hit")
				return e.val, e.err
			}
			e.waiters++
			e.touched = now
			sh.mu.Unlock()
			c.coalesced.Inc()
			sp.Annotate("coalesced")
			return c.wait(ctx, sh, key, e, sp)
		}
		// Either the version moved or the previous fill was abandoned
		// mid-flight; both mean the entry cannot serve this Get.
		if !e.abandoned {
			c.invalidations.Inc()
		}
		c.entries.Add(-1)
		delete(sh.m, key)
	}
	c.misses.Inc()
	sp.Annotate("miss")
	// The fill context is detached from the request's deadline on
	// purpose, but adopts its trace: the fill's span lands in the trace
	// of the request that started it even if that request departs.
	fillCtx, cancel := context.WithCancel(reqtrace.Adopt(context.Background(), ctx))
	e := &entry[V]{version: version, done: make(chan struct{}), waiters: 1, cancel: cancel, touched: now}
	sh.m[key] = e
	c.entries.Add(1)
	c.evictLocked(sh, e)
	sh.mu.Unlock()

	go func() {
		defer cancel()
		// StartSpan (not Child): work the fill fans out to — predictor
		// builds, simulations — must nest under the fill span.
		fctx, fsp := reqtrace.StartSpan(fillCtx, "fill")
		e.val, e.err = fill(fctx)
		if e.err != nil {
			fsp.Annotate("err")
		}
		fsp.End()
		close(e.done)
		if e.err != nil {
			sh.mu.Lock()
			// Only remove the entry if it is still ours: a concurrent Get
			// at a newer version may already have replaced it, and an
			// abandoning waiter may already have dropped it.
			if sh.m[key] == e {
				delete(sh.m, key)
				c.entries.Add(-1)
			}
			sh.mu.Unlock()
		}
	}()
	return c.wait(ctx, sh, key, e, sp)
}

// wait blocks until e completes or ctx ends. An abandoning waiter
// decrements the refcount; the last one out cancels the fill's context
// and marks the entry abandoned so later Gets start a fresh fill
// instead of joining a canceled one.
func (c *Cache[V]) wait(ctx context.Context, sh *shard[V], key string, e *entry[V], sp reqtrace.Span) (V, error) {
	select {
	case <-e.done:
		return e.val, e.err
	case <-ctx.Done():
	}
	// The cancellation may have raced completion; a completed fill wins
	// (the value is already paid for and the response may still be
	// deliverable).
	select {
	case <-e.done:
		return e.val, e.err
	default:
	}
	sh.mu.Lock()
	e.waiters--
	last := e.waiters == 0 && !isDone(e.done)
	if last {
		e.abandoned = true
		e.cancel()
		c.abandoned.Inc()
		if sh.m[key] == e {
			delete(sh.m, key)
			c.entries.Add(-1)
		}
	}
	sh.mu.Unlock()
	if last {
		sp.Annotate("abandoned")
	} else {
		sp.Annotate("abandoned-wait")
	}
	var zero V
	return zero, ctx.Err()
}

// evictLocked enforces the per-shard bound after an insert. Victims are
// completed entries only (in-flight entries have waiters holding their
// pointer; the fresh entry always survives), ordered by: stale entries
// (version behind the just-inserted one) first, then oldest last-touch
// first — so a hot, recently read entry is the last to go, rather than
// whichever entry map iteration happens to visit (which could evict the
// hottest key by chance, repeatedly). No clock reads here: touch stamps
// come from Get.
func (c *Cache[V]) evictLocked(sh *shard[V], keep *entry[V]) {
	for len(sh.m) > c.perMax {
		var (
			victimKey   string
			victim      *entry[V]
			victimStale bool
		)
		for k, e := range sh.m {
			if e == keep || !isDone(e.done) {
				continue
			}
			stale := e.version < keep.version
			switch {
			case victim == nil,
				stale && !victimStale,
				stale == victimStale && e.touched < victim.touched:
				victimKey, victim, victimStale = k, e, stale
			}
		}
		if victim == nil {
			return
		}
		delete(sh.m, victimKey)
		c.evictions.Inc()
		c.entries.Add(-1)
	}
}

func isDone(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Len reports the number of entries currently held across all shards
// (completed and in flight).
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time read of the cache's counters.
type Stats struct {
	Hits          float64
	Misses        float64
	Coalesced     float64
	Invalidations float64
	Evictions     float64
	Abandoned     float64
}

// Stats reads the cache's metric counters. Note that counters are
// shared per (metric, cache-name) series: two caches built with the
// same Name report joint totals.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Coalesced:     c.coalesced.Value(),
		Invalidations: c.invalidations.Value(),
		Evictions:     c.evictions.Value(),
		Abandoned:     c.abandoned.Value(),
	}
}
