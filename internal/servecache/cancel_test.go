package servecache

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestWaiterCancelDoesNotPoisonFill pins the shared-fill contract: a
// coalesced waiter whose context ends departs with its own ctx error
// while the fill — and the waiters still interested — are untouched.
func TestWaiterCancelDoesNotPoisonFill(t *testing.T) {
	c := New[string](Options{Name: "cancel-test-waiter"})
	// Counters live in the process-global metrics registry keyed by the
	// cache name, so under -count=2 a rerun sees the first run's totals:
	// assert deltas, never absolute values.
	base := c.Stats()
	release := make(chan struct{})
	started := make(chan struct{})
	fill := func(ctx context.Context) (string, error) {
		close(started)
		<-release
		if err := ctx.Err(); err != nil {
			return "", err
		}
		return "value", nil
	}

	origDone := make(chan error, 1)
	var origVal string
	go func() {
		v, err := c.Get(context.Background(), "k", 1, fill)
		origVal = v
		origDone <- err
	}()
	<-started

	// A second waiter coalesces, then abandons the wait.
	waitCtx, cancelWait := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.Get(waitCtx, "k", 1, func(context.Context) (string, error) {
			t.Error("coalesced Get ran a second fill")
			return "", nil
		})
		waiterDone <- err
	}()
	// The waiter must be counted before it can depart; poll the coalesced
	// counter rather than sleeping blind.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Coalesced == base.Coalesced {
		if time.Now().After(deadline) {
			t.Fatal("second Get never coalesced")
		}
		time.Sleep(time.Millisecond)
	}

	cancelWait()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter returned %v, want context.Canceled", err)
	}

	// The originator is still waiting; the fill still completes cleanly.
	close(release)
	if err := <-origDone; err != nil {
		t.Fatalf("originator poisoned by the abandoning waiter: %v", err)
	}
	if origVal != "value" {
		t.Fatalf("originator got %q, want %q", origVal, "value")
	}
	if got := c.Stats().Abandoned - base.Abandoned; got != 0 {
		t.Fatalf("fill with a remaining waiter counted as abandoned (%v)", got)
	}
	// And the completed value is served to later Gets.
	v, err := c.Get(context.Background(), "k", 1, func(context.Context) (string, error) {
		return "recomputed", nil
	})
	if err != nil || v != "value" {
		t.Fatalf("post-fill Get = %q, %v; want cached %q", v, err, "value")
	}
}

// TestLastWaiterOutCancelsFill pins the other half: when every waiter
// has departed, the fill's context is canceled (the computation stops
// claiming work), the abandonment is counted, and a later Get at the
// same version starts a fresh fill instead of joining the doomed one.
func TestLastWaiterOutCancelsFill(t *testing.T) {
	c := New[string](Options{Name: "cancel-test-last"})
	base := c.Stats() // global registry: compare deltas (see above)
	fillCanceled := make(chan struct{})
	started := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx, "k", 1, func(fillCtx context.Context) (string, error) {
			close(started)
			<-fillCtx.Done() // the fill only ends when its own context is canceled
			close(fillCanceled)
			return "", fillCtx.Err()
		})
		got <- err
	}()
	<-started

	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("sole waiter returned %v, want context.Canceled", err)
	}
	select {
	case <-fillCanceled:
	case <-time.After(2 * time.Second):
		t.Fatal("fill context was never canceled after the last waiter departed")
	}
	if got := c.Stats().Abandoned - base.Abandoned; got != 1 {
		t.Fatalf("Abandoned moved %v, want 1", got)
	}

	// A fresh Get at the same (key, version) must not join the abandoned
	// entry: it runs its own fill and succeeds.
	v, err := c.Get(context.Background(), "k", 1, func(context.Context) (string, error) {
		return "fresh", nil
	})
	if err != nil || v != "fresh" {
		t.Fatalf("Get after abandoned fill = %q, %v; want fresh fill", v, err)
	}
}
