package middleware

import (
	"sort"
	"sync"
	"time"

	"freerideg/internal/simgrid"
)

// RecoverySpec tunes the middleware's failure handling: how often a
// failed chunk delivery is retried, how quickly the retry delay grows,
// and how long the master waits before declaring a silent compute node
// dead and re-partitioning its chunks. The zero value means
// DefaultRecovery.
type RecoverySpec struct {
	// MaxRetries bounds the retries per chunk delivery; a chunk whose
	// delivery fails MaxRetries+1 times aborts the run.
	MaxRetries int
	// Backoff is the delay before the first retry; it doubles with every
	// further attempt (exponential backoff).
	Backoff time.Duration
	// DetectTimeout is the master's failure-detection latency: the time
	// between a compute node going silent and its chunks being re-dealt
	// to the survivors.
	DetectTimeout time.Duration
}

// DefaultRecovery returns the middleware's default recovery parameters.
func DefaultRecovery() RecoverySpec {
	return RecoverySpec{
		MaxRetries:    5,
		Backoff:       40 * time.Millisecond,
		DetectTimeout: 250 * time.Millisecond,
	}
}

// withDefaults fills unset (zero or negative) fields from DefaultRecovery.
func (r RecoverySpec) withDefaults() RecoverySpec {
	def := DefaultRecovery()
	if r.MaxRetries <= 0 {
		r.MaxRetries = def.MaxRetries
	}
	if r.Backoff <= 0 {
		r.Backoff = def.Backoff
	}
	if r.DetectTimeout <= 0 {
		r.DetectTimeout = def.DetectTimeout
	}
	return r
}

// faultSchedule indexes a FaultPlan by target node for consultation
// during execution. Faults addressing nodes the run does not have are
// dropped, so one plan replays across differently sized configurations.
// A nil *faultSchedule (no plan, or nothing applicable) is valid and
// means fault-free; all methods are nil-safe.
type faultSchedule struct {
	c          int
	crashPass  []int // per compute node; -1 = never crashes
	crashChunk []int
	disk       [][]simgrid.Fault // per storage node, in plan order
	link       [][]simgrid.Fault
}

// newFaultSchedule builds the per-node index for n storage and c compute
// nodes. Multiple crashes of one node collapse to the earliest
// (pass, chunk) point.
func newFaultSchedule(plan *simgrid.FaultPlan, n, c int) *faultSchedule {
	if plan == nil || plan.Empty() {
		return nil
	}
	s := &faultSchedule{
		c:          c,
		crashPass:  make([]int, c),
		crashChunk: make([]int, c),
		disk:       make([][]simgrid.Fault, n),
		link:       make([][]simgrid.Fault, n),
	}
	for j := range s.crashPass {
		s.crashPass[j] = -1
	}
	any := false
	for _, f := range plan.Faults {
		switch f.Kind {
		case simgrid.FaultCrash:
			if f.Node >= c {
				continue
			}
			j := f.Node
			if s.crashPass[j] == -1 || f.Pass < s.crashPass[j] ||
				(f.Pass == s.crashPass[j] && f.Chunk < s.crashChunk[j]) {
				s.crashPass[j], s.crashChunk[j] = f.Pass, f.Chunk
			}
			any = true
		case simgrid.FaultSlowDisk:
			if f.Node < n {
				s.disk[f.Node] = append(s.disk[f.Node], f)
				any = true
			}
		case simgrid.FaultFlakyLink:
			if f.Node < n {
				s.link[f.Node] = append(s.link[f.Node], f)
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return s
}

// crashPoint reports where compute node j dies: the pass and the number
// of chunks it completes within that pass before going silent.
func (s *faultSchedule) crashPoint(j int) (pass, chunk int, ok bool) {
	if s == nil || j >= len(s.crashPass) || s.crashPass[j] == -1 {
		return 0, 0, false
	}
	return s.crashPass[j], s.crashChunk[j], true
}

// aliveAt reports which compute nodes contribute to the given pass. A
// node crashing in pass p loses its partial work for p, so it already
// counts as dead for its crash pass. Returns nil for a nil schedule
// (everyone alive).
func (s *faultSchedule) aliveAt(pass int) []bool {
	if s == nil {
		return nil
	}
	alive := make([]bool, s.c)
	for j := range alive {
		alive[j] = s.crashPass[j] == -1 || s.crashPass[j] > pass
	}
	return alive
}

// survivorsAt counts the compute nodes contributing to the given pass
// (0 for a nil schedule; only consulted when faults are active).
func (s *faultSchedule) survivorsAt(pass int) int {
	if s == nil {
		return 0
	}
	count := 0
	for _, a := range s.aliveAt(pass) {
		if a {
			count++
		}
	}
	return count
}

// faultFeed consumes one node's scheduled faults (of one kind) in plan
// order as delivery attempts flow past. A fault activates when the
// attempt's (pass, ordinal) reaches its (Pass, Chunk) trigger and then
// applies to the next Count attempts (Count = 0: every remaining
// attempt). Feeds are stateful and belong to exactly one run.
type faultFeed struct {
	faults []simgrid.Fault
	cur    int
	left   int
	active bool
}

// next consults the feed for the attempt at (pass, ordinal): it returns
// the governing fault, whether this is the fault's first application
// (for onset events), and whether any fault applies. Counted faults
// consume one unit per applying attempt.
func (ff *faultFeed) next(pass, ordinal int) (f simgrid.Fault, fresh, hit bool) {
	if ff == nil || ff.cur >= len(ff.faults) {
		return simgrid.Fault{}, false, false
	}
	f = ff.faults[ff.cur]
	if !ff.active {
		if pass < f.Pass || (pass == f.Pass && ordinal < f.Chunk) {
			return simgrid.Fault{}, false, false
		}
		ff.active = true
		ff.left = f.Count
		fresh = true
	}
	if f.Count == 0 { // unbounded: degrades every remaining attempt
		return f, fresh, true
	}
	ff.left--
	if ff.left <= 0 {
		ff.cur++
		ff.active = false
	}
	return f, fresh, true
}

// feedSet holds one feed per storage node (nil where the node has no
// faults of the feed's kind).
type feedSet []*faultFeed

// newFeedSet builds consumable feeds from a schedule's per-node lists.
func newFeedSet(faults [][]simgrid.Fault) feedSet {
	out := make(feedSet, len(faults))
	for i, fs := range faults {
		if len(fs) > 0 {
			out[i] = &faultFeed{faults: fs}
		}
	}
	return out
}

// next consults node i's feed; nil-safe on every level.
func (fs feedSet) next(i, pass, ordinal int) (simgrid.Fault, bool, bool) {
	if i >= len(fs) {
		return simgrid.Fault{}, false, false
	}
	return fs[i].next(pass, ordinal)
}

// incidentLog buffers fault/retry/failover events raised concurrently by
// the goroutine backends' workers, so they can be flushed in a
// deterministic order at the end of the stage that raised them (the
// simulated backend emits directly — the event engine already serializes
// its processes). Durations are preserved; the flush timestamp is the
// stage's completion time.
type incidentLog struct {
	mu     sync.Mutex
	events []Event
}

// add buffers one incident. Safe for concurrent use.
func (l *incidentLog) add(ev Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// drain emits the buffered incidents to sink (if non-nil) sorted by
// (pass, phase, node, detail), stamped with the given timestamp, and
// returns the recovery time and retry count they carry.
func (l *incidentLog) drain(sink Sink, at time.Duration) (recovery time.Duration, retries int) {
	l.mu.Lock()
	evs := l.events
	l.events = nil
	l.mu.Unlock()
	sort.SliceStable(evs, func(i, k int) bool {
		a, b := evs[i], evs[k]
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Detail < b.Detail
	})
	for _, ev := range evs {
		ev.At = at
		switch ev.Phase {
		case PhaseRetry:
			retries++
			recovery += ev.Dur
		case PhaseFailover:
			recovery += ev.Dur
			mwFailovers.Inc()
		}
		if sink != nil {
			sink.Emit(ev)
		}
	}
	return recovery, retries
}
