package middleware

import (
	"fmt"
	"sync"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// LocalCluster is the cluster name recorded in profiles produced by the
// local backend.
const LocalCluster = "local"

// LocalResult is the outcome of one real (goroutine-backed) execution.
type LocalResult struct {
	// Profile is the measured component breakdown, in real wall time.
	Profile core.Profile
	// Elapsed is the run's wall-clock duration.
	Elapsed time.Duration
	// Iterations is the number of passes actually performed (kernels may
	// converge before their maximum).
	Iterations int
	// Recovery is the measured fault-handling overhead and Retries the
	// failed-delivery count (zero on fault-free runs). The goroutine
	// backends measure only the real wasted work — re-materialized chunks
	// — not the modeled detection timeouts the simulated backend charges.
	Recovery time.Duration
	Retries  int
}

// RunLocal executes a kernel for real: dataNodes goroutines materialize
// and serve chunks (the data servers), computeNodes goroutines run local
// reductions concurrently (the compute servers), reduction objects cross
// a real encode/decode boundary when they implement BinaryObject, and the
// master performs the global reduction. Chunks are cached in memory after
// the first pass, exactly like the simulated backend: both run through
// the same Pipeline, so the protocol and accounting cannot drift.
//
// The returned profile's component attribution mirrors the paper's:
// t_d is the (max per data node) chunk materialization time, t_n the
// (max per compute node) time blocked receiving chunks, and t_c the
// (max per compute node) processing time plus the serialized gather and
// global reduction times.
func RunLocal(k reduction.Kernel, spec adr.DatasetSpec, dataNodes, computeNodes int) (LocalResult, error) {
	return runLocal(k, spec, dataNodes, computeNodes, LocalOptions{})
}

func runLocal(k reduction.Kernel, spec adr.DatasetSpec, dataNodes, computeNodes int, opts LocalOptions) (LocalResult, error) {
	if dataNodes < 1 || computeNodes < dataNodes {
		return LocalResult{}, fmt.Errorf("middleware: need computeNodes >= dataNodes >= 1, got %d-%d",
			dataNodes, computeNodes)
	}
	gen, err := datagen.For(spec.Kind)
	if err != nil {
		return LocalResult{}, err
	}
	layout, err := adr.Partition(spec, dataNodes, adr.RoundRobin)
	if err != nil {
		return LocalResult{}, err
	}
	var overlap int64
	if or, ok := k.(reduction.OverlapRequester); ok {
		overlap = or.OverlapElems()
	}
	if opts.Faults != nil {
		if err := opts.Faults.Validate(); err != nil {
			return LocalResult{}, err
		}
	}

	ex := &localExecutor{
		k:         k,
		gen:       gen,
		spec:      spec,
		layout:    layout,
		fields:    gen.FieldsPerElem(spec),
		overlap:   overlap,
		n:         dataNodes,
		c:         computeNodes,
		targets:   chunkTargets(layout, dataNodes, computeNodes),
		base:      chunksByCompute(layout, dataNodes, computeNodes),
		cache:     make([]map[int]reduction.Payload, computeNodes),
		sched:     newFaultSchedule(opts.Faults, dataNodes, computeNodes),
		rec:       opts.Recovery.withDefaults(),
		sink:      opts.Trace,
		incidents: &incidentLog{},
		start:     time.Now(),
	}
	for j := range ex.cache {
		ex.cache[j] = make(map[int]reduction.Payload)
	}
	if ex.sched != nil {
		passes := k.Iterations()
		assign, err := passAssignments(ex.base, ex.sched, passes)
		if err != nil {
			return LocalResult{}, err
		}
		ex.assign = assign
		ex.diskFeeds = newFeedSet(ex.sched.disk)
		ex.linkFeeds = newFeedSet(ex.sched.link)
		ex.lost = make([]int, computeNodes)
		for j := range ex.lost {
			cp, _, ok := ex.sched.crashPoint(j)
			if !ok || cp >= passes {
				continue
			}
			wouldBe := ex.base
			if cp > 0 {
				wb, err := reassignDead(ex.base, ex.sched.aliveAt(cp-1))
				if err != nil {
					return LocalResult{}, err
				}
				wouldBe = wb
			}
			ex.lost[j] = len(wouldBe[j])
		}
	}
	pl := NewPipeline(ex, opts.Trace)
	if err := pl.Run(); err != nil {
		return LocalResult{}, err
	}
	bd := pl.Breakdown()
	profile := bd.Profile(k.Name(), core.Config{
		Cluster:      LocalCluster,
		DataNodes:    dataNodes,
		ComputeNodes: computeNodes,
		Bandwidth:    units.GBPerSec, // nominal in-process "network"
		DatasetBytes: spec.TotalBytes,
	}, ex.roBytes, units.KB, pl.Iterations())
	return LocalResult{
		Profile:    profile,
		Elapsed:    time.Since(ex.start),
		Iterations: pl.Iterations(),
		Recovery:   bd.Recovery,
		Retries:    bd.Retries,
	}, nil
}

// localExecutor runs the protocol for real on goroutines: data-server
// goroutines materialize and distribute chunks, compute-server goroutines
// run local reductions, and the pipeline's master flow gathers, reduces
// globally, and decides convergence.
//
// Under fault injection the backend keeps the simulated backend's
// semantics on wall time: crashed nodes receive no work from their crash
// pass on (their fresh per-pass reduction object stays the merge
// identity, which is exactly a lost contribution), the failover
// assignment re-deals their chunks to the survivors, survivors
// re-materialize inherited chunks missing from their cache, and flaky
// links force data servers to re-materialize lost deliveries. Only the
// real wasted work is measured — the detection timeout the simulated
// backend models has no wall-clock counterpart here.
type localExecutor struct {
	k       reduction.Kernel
	gen     datagen.Generator
	spec    adr.DatasetSpec
	layout  *adr.Layout
	fields  int
	overlap int64
	n, c    int
	targets [][]int
	base    [][]adr.Chunk // per compute node, fault-free assignment
	start   time.Time

	// Fault-injection state (nil/empty on fault-free runs).
	sched     *faultSchedule
	rec       RecoverySpec
	sink      Sink
	incidents *incidentLog
	assign    [][][]adr.Chunk
	lost      []int
	diskFeeds feedSet
	linkFeeds feedSet

	cache   []map[int]reduction.Payload // per compute node, by chunk index
	objs    []reduction.Object
	roBytes units.Bytes
}

// materialize produces one chunk's payload (the local backend's
// "retrieval").
func (ex *localExecutor) materialize(ch adr.Chunk) (reduction.Payload, error) {
	payload := reduction.Payload{Chunk: ch, Fields: ex.fields, Values: ex.gen.ChunkValues(ex.spec, ch)}
	if ex.overlap > 0 {
		before, after, err := datagen.HaloFor(ex.gen, ex.spec, ch, ex.overlap)
		if err != nil {
			return reduction.Payload{}, err
		}
		payload.HaloBefore, payload.HaloAfter = before, after
	}
	return payload, nil
}

// workFor is the pass's chunk list for one compute node under the
// failover assignment (empty from a node's crash pass on).
func (ex *localExecutor) workFor(pass, j int) []adr.Chunk {
	if ex.sched != nil {
		return ex.assign[pass][j]
	}
	return ex.base[j]
}

// Backend implements Executor.
func (ex *localExecutor) Backend() string { return "local" }

// Workload implements Executor.
func (ex *localExecutor) Workload() string { return ex.k.Name() }

// Nodes implements Executor.
func (ex *localExecutor) Nodes() (int, int) { return ex.n, ex.c }

// Passes implements Executor.
func (ex *localExecutor) Passes() int { return ex.k.Iterations() }

// Now implements Executor (wall time since run start).
func (ex *localExecutor) Now() time.Duration { return time.Since(ex.start) }

// LocalReduction runs one pass's chunk phase: materialize-and-deliver on
// pass 0, cache replay afterwards. Under fault injection it closes the
// pass by emitting the pass's crash incidents and flushing the buffered
// fault/retry/failover events in deterministic order.
func (ex *localExecutor) LocalReduction(pass int) (PassStats, error) {
	ex.objs = make([]reduction.Object, ex.c)
	for j := range ex.objs {
		ex.objs[j] = ex.k.NewObject()
	}
	var st PassStats
	var err error
	if pass == 0 {
		st, err = ex.firstPass()
	} else {
		st, err = ex.cachedPass(pass)
	}
	if err != nil {
		return st, err
	}
	if ex.sched != nil {
		for j := 0; j < ex.c; j++ {
			if cp, _, ok := ex.sched.crashPoint(j); ok && cp == pass {
				ex.incidents.add(Event{Pass: pass, Phase: PhaseFault, Node: j, Detail: "crash"})
				ex.incidents.add(Event{Pass: pass, Phase: PhaseFailover, Node: j,
					Detail: fmt.Sprintf("node %d down, %d chunks re-dealt to %d survivors",
						j, ex.lost[j], ex.sched.survivorsAt(pass))})
			}
		}
		rec, retr := ex.incidents.drain(ex.sink, ex.Now())
		st.Recovery += rec
		st.Retries += retr
	}
	return st, nil
}

// firstPass materializes chunks on the data servers and streams them to
// the compute servers, which cache and process them. Under fault
// injection the delivery targets follow the pass-0 failover assignment
// (crashed-at-0 nodes receive nothing) and flaky links force the servers
// to re-materialize and re-send lost deliveries.
func (ex *localExecutor) firstPass() (PassStats, error) {
	diskTime := make([]time.Duration, ex.n)
	recvTime := make([]time.Duration, ex.c)
	compTime := make([]time.Duration, ex.c)
	errs := make(chan error, ex.n+ex.c)
	chans := make([]chan reduction.Payload, ex.c)
	for j := range chans {
		chans[j] = make(chan reduction.Payload, 1)
	}
	// Under failover, chunk ownership comes from the pass-0 assignment
	// rather than the static delivery targets.
	var owner map[int]int
	if ex.sched != nil {
		owner = make(map[int]int)
		for j, list := range ex.assign[0] {
			for _, ch := range list {
				owner[ch.Index] = j
			}
		}
	}
	// Data servers: retrieve (materialize) chunks and distribute them to
	// their compute clients per the shared chunk assignment.
	var serveWG sync.WaitGroup
	for dn := 0; dn < ex.n; dn++ {
		dn := dn
		serveWG.Add(1)
		go func() {
			defer serveWG.Done()
			serveOrd := 0 // live delivery ordinal, the fault trigger coordinate
			for i, ch := range ex.layout.NodeChunks(dn) {
				target := ex.targets[dn][i]
				if owner != nil {
					t, ok := owner[ch.Index]
					if !ok {
						continue // unreachable: every chunk has a surviving owner
					}
					target = t
				}
				t0 := time.Now()
				payload, err := ex.materialize(ch)
				if err != nil {
					errs <- err
					return
				}
				d := time.Since(t0)
				if ex.sched != nil {
					ok := true
					for attempt := 1; ; attempt++ {
						if f, fresh, hit := ex.diskFeeds.next(dn, 0, serveOrd); hit && fresh {
							// Onset marker only: wall-clock disk speed cannot
							// be degraded for real here.
							ex.incidents.add(Event{Pass: 0, Phase: PhaseFault, Node: dn,
								Detail: fmt.Sprintf("slow-disk x%.3g on storage node %d", f.Factor, dn)})
						}
						_, lfresh, lhit := ex.linkFeeds.next(dn, 0, serveOrd)
						serveOrd++
						if lhit && lfresh {
							ex.incidents.add(Event{Pass: 0, Phase: PhaseFault, Node: dn,
								Detail: fmt.Sprintf("flaky-link on storage node %d", dn)})
						}
						if !lhit {
							break
						}
						if attempt > ex.rec.MaxRetries {
							errs <- fmt.Errorf("middleware: delivery of chunk %d from storage node %d to node %d failed after %d attempts",
								ch.Index, dn, target, attempt)
							ok = false
							break
						}
						// The delivery was lost: the wasted materialization is
						// recovery overhead, and the chunk is re-read.
						ex.incidents.add(Event{Pass: 0, Phase: PhaseRetry, Node: target, Dur: d,
							Detail: fmt.Sprintf("chunk %d from storage node %d, attempt %d", ch.Index, dn, attempt)})
						t0 = time.Now()
						payload, err = ex.materialize(ch)
						if err != nil {
							errs <- err
							ok = false
							break
						}
						d = time.Since(t0)
					}
					if !ok {
						return
					}
				}
				diskTime[dn] += d
				chans[target] <- payload
			}
		}()
	}
	go func() {
		serveWG.Wait()
		for _, c := range chans {
			close(c)
		}
	}()
	// Compute servers: receive, cache, process.
	var wg sync.WaitGroup
	for j := 0; j < ex.c; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t0 := time.Now()
				p, ok := <-chans[j]
				recvTime[j] += time.Since(t0)
				if !ok {
					return
				}
				ex.cache[j][p.Chunk.Index] = p
				t1 := time.Now()
				if err := ex.k.ProcessChunk(p, ex.objs[j]); err != nil {
					errs <- err
					return
				}
				compTime[j] += time.Since(t1)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return PassStats{}, err
	default:
	}
	return PassStats{
		Retrieval: maxDur(diskTime),
		Delivery:  maxDur(recvTime),
		Compute:   maxDur(compTime),
	}, nil
}

// cachedPass replays each node's cached chunks per the pass's failover
// assignment: pure local processing, except that chunks a survivor
// inherited from a dead node are missing from its cache and must be
// re-materialized (charged as retrieval, the "failover re-fetch").
func (ex *localExecutor) cachedPass(pass int) (PassStats, error) {
	compTime := make([]time.Duration, ex.c)
	fetchTime := make([]time.Duration, ex.c)
	errs := make(chan error, ex.c)
	var wg sync.WaitGroup
	for j := 0; j < ex.c; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, ch := range ex.workFor(pass, j) {
				p, ok := ex.cache[j][ch.Index]
				if !ok {
					t0 := time.Now()
					var err error
					p, err = ex.materialize(ch)
					if err != nil {
						errs <- err
						return
					}
					fetchTime[j] += time.Since(t0)
					ex.cache[j][ch.Index] = p
				}
				t1 := time.Now()
				if err := ex.k.ProcessChunk(p, ex.objs[j]); err != nil {
					errs <- err
					return
				}
				compTime[j] += time.Since(t1)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return PassStats{}, err
	default:
	}
	return PassStats{Retrieval: maxDur(fetchTime), Compute: maxDur(compTime)}, nil
}

// Gather merges worker objects into the master's, crossing a real
// serialization boundary when supported — serialized, as in the paper's
// model.
func (ex *localExecutor) Gather(int) (time.Duration, error) {
	t0 := time.Now()
	if ex.objs[0].Bytes() > ex.roBytes {
		ex.roBytes = ex.objs[0].Bytes() // master's own pre-merge object
	}
	for j := 1; j < ex.c; j++ {
		if ex.objs[j].Bytes() > ex.roBytes {
			ex.roBytes = ex.objs[j].Bytes()
		}
		recv := ex.objs[j]
		if bo, ok := ex.objs[j].(reduction.BinaryObject); ok {
			enc, err := bo.MarshalBinary()
			if err != nil {
				return 0, fmt.Errorf("encode: %w", err)
			}
			fresh, ok := ex.k.NewObject().(reduction.BinaryObject)
			if !ok {
				return 0, fmt.Errorf("kernel %s object lost codec support", ex.k.Name())
			}
			if err := fresh.UnmarshalBinary(enc); err != nil {
				return 0, fmt.Errorf("decode: %w", err)
			}
			recv = fresh
		}
		if err := ex.objs[0].Merge(recv); err != nil {
			return 0, fmt.Errorf("merge: %w", err)
		}
	}
	return time.Since(t0), nil
}

// GlobalReduce runs the kernel's global reduction on the merged object.
func (ex *localExecutor) GlobalReduce(int) (time.Duration, bool, error) {
	t0 := time.Now()
	done, err := ex.k.GlobalReduce(ex.objs[0])
	return time.Since(t0), done, err
}

// Sync implements Executor; the in-process backend has no per-pass
// coordination cost.
func (ex *localExecutor) Sync(int) (time.Duration, error) { return 0, nil }

// Broadcast implements Executor; the globally reduced state lives in the
// kernel, so in-process re-distribution is free.
func (ex *localExecutor) Broadcast(int, bool) (time.Duration, error) { return 0, nil }
