package middleware

import (
	"fmt"
	"sync"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// LocalCluster is the cluster name recorded in profiles produced by the
// local backend.
const LocalCluster = "local"

// LocalResult is the outcome of one real (goroutine-backed) execution.
type LocalResult struct {
	// Profile is the measured component breakdown, in real wall time.
	Profile core.Profile
	// Elapsed is the run's wall-clock duration.
	Elapsed time.Duration
	// Iterations is the number of passes actually performed (kernels may
	// converge before their maximum).
	Iterations int
}

// RunLocal executes a kernel for real: dataNodes goroutines materialize
// and serve chunks (the data servers), computeNodes goroutines run local
// reductions concurrently (the compute servers), reduction objects cross
// a real encode/decode boundary when they implement BinaryObject, and the
// master performs the global reduction. Chunks are cached in memory after
// the first pass, exactly like the simulated backend.
//
// The returned profile's component attribution mirrors the paper's:
// t_d is the (max per data node) chunk materialization time, t_n the
// (max per compute node) time blocked receiving chunks, and t_c the
// (max per compute node) processing time plus the serialized gather and
// global reduction times.
func RunLocal(k reduction.Kernel, spec adr.DatasetSpec, dataNodes, computeNodes int) (LocalResult, error) {
	if dataNodes < 1 || computeNodes < dataNodes {
		return LocalResult{}, fmt.Errorf("middleware: need computeNodes >= dataNodes >= 1, got %d-%d",
			dataNodes, computeNodes)
	}
	gen, err := datagen.For(spec.Kind)
	if err != nil {
		return LocalResult{}, err
	}
	layout, err := adr.Partition(spec, dataNodes, adr.RoundRobin)
	if err != nil {
		return LocalResult{}, err
	}
	fields := gen.FieldsPerElem(spec)
	var overlap int64
	if or, ok := k.(reduction.OverlapRequester); ok {
		overlap = or.OverlapElems()
	}

	start := time.Now()
	diskTime := make([]time.Duration, dataNodes)
	recvTime := make([]time.Duration, computeNodes)
	compTime := make([]time.Duration, computeNodes)
	var troTime, tgTime time.Duration
	var roBytes units.Bytes

	cache := make([][]reduction.Payload, computeNodes)
	iterations := 0
	for pass := 0; pass < k.Iterations(); pass++ {
		iterations++
		objs := make([]reduction.Object, computeNodes)
		for j := range objs {
			objs[j] = k.NewObject()
		}
		errs := make(chan error, dataNodes+computeNodes)
		var wg sync.WaitGroup

		if pass == 0 {
			chans := make([]chan reduction.Payload, computeNodes)
			for j := range chans {
				chans[j] = make(chan reduction.Payload, 1)
			}
			// Data servers: retrieve (materialize) chunks and distribute
			// them round-robin to their compute clients.
			var serveWG sync.WaitGroup
			for dn := 0; dn < dataNodes; dn++ {
				dn := dn
				var clients []int
				for j := 0; j < computeNodes; j++ {
					if j%dataNodes == dn {
						clients = append(clients, j)
					}
				}
				serveWG.Add(1)
				go func() {
					defer serveWG.Done()
					for i, ch := range layout.NodeChunks(dn) {
						t0 := time.Now()
						vals := gen.ChunkValues(spec, ch)
						payload := reduction.Payload{
							Chunk: ch, Fields: fields, Values: vals,
						}
						if overlap > 0 {
							before, after, err := datagen.HaloFor(gen, spec, ch, overlap)
							if err != nil {
								errs <- err
								diskTime[dn] += time.Since(t0)
								return
							}
							payload.HaloBefore, payload.HaloAfter = before, after
						}
						diskTime[dn] += time.Since(t0)
						chans[clients[i%len(clients)]] <- payload
					}
				}()
			}
			go func() {
				serveWG.Wait()
				for _, c := range chans {
					close(c)
				}
			}()
			// Compute servers: receive, cache, process.
			for j := 0; j < computeNodes; j++ {
				j := j
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						t0 := time.Now()
						p, ok := <-chans[j]
						recvTime[j] += time.Since(t0)
						if !ok {
							return
						}
						cache[j] = append(cache[j], p)
						t1 := time.Now()
						if err := k.ProcessChunk(p, objs[j]); err != nil {
							errs <- err
							return
						}
						compTime[j] += time.Since(t1)
					}
				}()
			}
		} else {
			// Cached passes: pure local processing.
			for j := 0; j < computeNodes; j++ {
				j := j
				wg.Add(1)
				go func() {
					defer wg.Done()
					t0 := time.Now()
					for _, p := range cache[j] {
						if err := k.ProcessChunk(p, objs[j]); err != nil {
							errs <- err
							return
						}
					}
					compTime[j] += time.Since(t0)
				}()
			}
		}
		wg.Wait()
		select {
		case err := <-errs:
			return LocalResult{}, fmt.Errorf("middleware: local pass %d: %w", pass, err)
		default:
		}

		// Gather: worker objects cross a real serialization boundary when
		// supported, then merge into the master's object — serialized, as
		// in the paper's model.
		t0 := time.Now()
		if objs[0].Bytes() > roBytes {
			roBytes = objs[0].Bytes() // master's own pre-merge object
		}
		for j := 1; j < computeNodes; j++ {
			if objs[j].Bytes() > roBytes {
				roBytes = objs[j].Bytes()
			}
			recv := objs[j]
			if bo, ok := objs[j].(reduction.BinaryObject); ok {
				enc, err := bo.MarshalBinary()
				if err != nil {
					return LocalResult{}, fmt.Errorf("middleware: gather encode: %w", err)
				}
				fresh, ok := k.NewObject().(reduction.BinaryObject)
				if !ok {
					return LocalResult{}, fmt.Errorf("middleware: kernel %s object lost codec support", k.Name())
				}
				if err := fresh.UnmarshalBinary(enc); err != nil {
					return LocalResult{}, fmt.Errorf("middleware: gather decode: %w", err)
				}
				recv = fresh
			}
			if err := objs[0].Merge(recv); err != nil {
				return LocalResult{}, fmt.Errorf("middleware: gather merge: %w", err)
			}
		}
		troTime += time.Since(t0)

		t1 := time.Now()
		done, err := k.GlobalReduce(objs[0])
		tgTime += time.Since(t1)
		if err != nil {
			return LocalResult{}, fmt.Errorf("middleware: global reduce pass %d: %w", pass, err)
		}
		if done {
			break
		}
	}

	maxDur := func(ds []time.Duration) time.Duration {
		var m time.Duration
		for _, d := range ds {
			if d > m {
				m = d
			}
		}
		return m
	}
	profile := core.Profile{
		App: k.Name(),
		Config: core.Config{
			Cluster:      LocalCluster,
			DataNodes:    dataNodes,
			ComputeNodes: computeNodes,
			Bandwidth:    units.GBPerSec, // nominal in-process "network"
			DatasetBytes: spec.TotalBytes,
		},
		Breakdown: core.Breakdown{
			Tdisk:    maxDur(diskTime),
			Tnetwork: maxDur(recvTime),
			Tcompute: maxDur(compTime) + troTime + tgTime,
		},
		Tro:            troTime,
		Tglobal:        tgTime,
		ROBytesPerNode: roBytes,
		BroadcastBytes: units.KB,
		Iterations:     iterations,
	}
	return LocalResult{Profile: profile, Elapsed: time.Since(start), Iterations: iterations}, nil
}
