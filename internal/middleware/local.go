package middleware

import (
	"fmt"
	"sync"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// LocalCluster is the cluster name recorded in profiles produced by the
// local backend.
const LocalCluster = "local"

// LocalResult is the outcome of one real (goroutine-backed) execution.
type LocalResult struct {
	// Profile is the measured component breakdown, in real wall time.
	Profile core.Profile
	// Elapsed is the run's wall-clock duration.
	Elapsed time.Duration
	// Iterations is the number of passes actually performed (kernels may
	// converge before their maximum).
	Iterations int
}

// RunLocal executes a kernel for real: dataNodes goroutines materialize
// and serve chunks (the data servers), computeNodes goroutines run local
// reductions concurrently (the compute servers), reduction objects cross
// a real encode/decode boundary when they implement BinaryObject, and the
// master performs the global reduction. Chunks are cached in memory after
// the first pass, exactly like the simulated backend: both run through
// the same Pipeline, so the protocol and accounting cannot drift.
//
// The returned profile's component attribution mirrors the paper's:
// t_d is the (max per data node) chunk materialization time, t_n the
// (max per compute node) time blocked receiving chunks, and t_c the
// (max per compute node) processing time plus the serialized gather and
// global reduction times.
func RunLocal(k reduction.Kernel, spec adr.DatasetSpec, dataNodes, computeNodes int) (LocalResult, error) {
	return runLocal(k, spec, dataNodes, computeNodes, nil)
}

func runLocal(k reduction.Kernel, spec adr.DatasetSpec, dataNodes, computeNodes int, sink Sink) (LocalResult, error) {
	if dataNodes < 1 || computeNodes < dataNodes {
		return LocalResult{}, fmt.Errorf("middleware: need computeNodes >= dataNodes >= 1, got %d-%d",
			dataNodes, computeNodes)
	}
	gen, err := datagen.For(spec.Kind)
	if err != nil {
		return LocalResult{}, err
	}
	layout, err := adr.Partition(spec, dataNodes, adr.RoundRobin)
	if err != nil {
		return LocalResult{}, err
	}
	var overlap int64
	if or, ok := k.(reduction.OverlapRequester); ok {
		overlap = or.OverlapElems()
	}

	ex := &localExecutor{
		k:       k,
		gen:     gen,
		spec:    spec,
		layout:  layout,
		fields:  gen.FieldsPerElem(spec),
		overlap: overlap,
		n:       dataNodes,
		c:       computeNodes,
		targets: chunkTargets(layout, dataNodes, computeNodes),
		cache:   make([][]reduction.Payload, computeNodes),
		start:   time.Now(),
	}
	pl := NewPipeline(ex, sink)
	if err := pl.Run(); err != nil {
		return LocalResult{}, err
	}
	profile := pl.Breakdown().Profile(k.Name(), core.Config{
		Cluster:      LocalCluster,
		DataNodes:    dataNodes,
		ComputeNodes: computeNodes,
		Bandwidth:    units.GBPerSec, // nominal in-process "network"
		DatasetBytes: spec.TotalBytes,
	}, ex.roBytes, units.KB, pl.Iterations())
	return LocalResult{Profile: profile, Elapsed: time.Since(ex.start), Iterations: pl.Iterations()}, nil
}

// localExecutor runs the protocol for real on goroutines: data-server
// goroutines materialize and distribute chunks, compute-server goroutines
// run local reductions, and the pipeline's master flow gathers, reduces
// globally, and decides convergence.
type localExecutor struct {
	k       reduction.Kernel
	gen     datagen.Generator
	spec    adr.DatasetSpec
	layout  *adr.Layout
	fields  int
	overlap int64
	n, c    int
	targets [][]int
	start   time.Time

	cache   [][]reduction.Payload
	objs    []reduction.Object
	roBytes units.Bytes
}

// Backend implements Executor.
func (ex *localExecutor) Backend() string { return "local" }

// Workload implements Executor.
func (ex *localExecutor) Workload() string { return ex.k.Name() }

// Nodes implements Executor.
func (ex *localExecutor) Nodes() (int, int) { return ex.n, ex.c }

// Passes implements Executor.
func (ex *localExecutor) Passes() int { return ex.k.Iterations() }

// Now implements Executor (wall time since run start).
func (ex *localExecutor) Now() time.Duration { return time.Since(ex.start) }

// LocalReduction runs one pass's chunk phase: materialize-and-deliver on
// pass 0, cache replay afterwards.
func (ex *localExecutor) LocalReduction(pass int) (PassStats, error) {
	ex.objs = make([]reduction.Object, ex.c)
	for j := range ex.objs {
		ex.objs[j] = ex.k.NewObject()
	}
	if pass == 0 {
		return ex.firstPass()
	}
	return ex.cachedPass()
}

// firstPass materializes chunks on the data servers and streams them to
// the compute servers, which cache and process them.
func (ex *localExecutor) firstPass() (PassStats, error) {
	diskTime := make([]time.Duration, ex.n)
	recvTime := make([]time.Duration, ex.c)
	compTime := make([]time.Duration, ex.c)
	errs := make(chan error, ex.n+ex.c)
	chans := make([]chan reduction.Payload, ex.c)
	for j := range chans {
		chans[j] = make(chan reduction.Payload, 1)
	}
	// Data servers: retrieve (materialize) chunks and distribute them to
	// their compute clients per the shared chunk assignment.
	var serveWG sync.WaitGroup
	for dn := 0; dn < ex.n; dn++ {
		dn := dn
		serveWG.Add(1)
		go func() {
			defer serveWG.Done()
			for i, ch := range ex.layout.NodeChunks(dn) {
				t0 := time.Now()
				payload := reduction.Payload{
					Chunk: ch, Fields: ex.fields, Values: ex.gen.ChunkValues(ex.spec, ch),
				}
				if ex.overlap > 0 {
					before, after, err := datagen.HaloFor(ex.gen, ex.spec, ch, ex.overlap)
					if err != nil {
						errs <- err
						diskTime[dn] += time.Since(t0)
						return
					}
					payload.HaloBefore, payload.HaloAfter = before, after
				}
				diskTime[dn] += time.Since(t0)
				chans[ex.targets[dn][i]] <- payload
			}
		}()
	}
	go func() {
		serveWG.Wait()
		for _, c := range chans {
			close(c)
		}
	}()
	// Compute servers: receive, cache, process.
	var wg sync.WaitGroup
	for j := 0; j < ex.c; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t0 := time.Now()
				p, ok := <-chans[j]
				recvTime[j] += time.Since(t0)
				if !ok {
					return
				}
				ex.cache[j] = append(ex.cache[j], p)
				t1 := time.Now()
				if err := ex.k.ProcessChunk(p, ex.objs[j]); err != nil {
					errs <- err
					return
				}
				compTime[j] += time.Since(t1)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return PassStats{}, err
	default:
	}
	return PassStats{
		Retrieval: maxDur(diskTime),
		Delivery:  maxDur(recvTime),
		Compute:   maxDur(compTime),
	}, nil
}

// cachedPass replays each node's cached chunks: pure local processing.
func (ex *localExecutor) cachedPass() (PassStats, error) {
	compTime := make([]time.Duration, ex.c)
	errs := make(chan error, ex.c)
	var wg sync.WaitGroup
	for j := 0; j < ex.c; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			for _, p := range ex.cache[j] {
				if err := ex.k.ProcessChunk(p, ex.objs[j]); err != nil {
					errs <- err
					return
				}
			}
			compTime[j] += time.Since(t0)
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return PassStats{}, err
	default:
	}
	return PassStats{Compute: maxDur(compTime)}, nil
}

// Gather merges worker objects into the master's, crossing a real
// serialization boundary when supported — serialized, as in the paper's
// model.
func (ex *localExecutor) Gather(int) (time.Duration, error) {
	t0 := time.Now()
	if ex.objs[0].Bytes() > ex.roBytes {
		ex.roBytes = ex.objs[0].Bytes() // master's own pre-merge object
	}
	for j := 1; j < ex.c; j++ {
		if ex.objs[j].Bytes() > ex.roBytes {
			ex.roBytes = ex.objs[j].Bytes()
		}
		recv := ex.objs[j]
		if bo, ok := ex.objs[j].(reduction.BinaryObject); ok {
			enc, err := bo.MarshalBinary()
			if err != nil {
				return 0, fmt.Errorf("encode: %w", err)
			}
			fresh, ok := ex.k.NewObject().(reduction.BinaryObject)
			if !ok {
				return 0, fmt.Errorf("kernel %s object lost codec support", ex.k.Name())
			}
			if err := fresh.UnmarshalBinary(enc); err != nil {
				return 0, fmt.Errorf("decode: %w", err)
			}
			recv = fresh
		}
		if err := ex.objs[0].Merge(recv); err != nil {
			return 0, fmt.Errorf("merge: %w", err)
		}
	}
	return time.Since(t0), nil
}

// GlobalReduce runs the kernel's global reduction on the merged object.
func (ex *localExecutor) GlobalReduce(int) (time.Duration, bool, error) {
	t0 := time.Now()
	done, err := ex.k.GlobalReduce(ex.objs[0])
	return time.Since(t0), done, err
}

// Sync implements Executor; the in-process backend has no per-pass
// coordination cost.
func (ex *localExecutor) Sync(int) (time.Duration, error) { return 0, nil }

// Broadcast implements Executor; the globally reduced state lives in the
// kernel, so in-process re-distribution is free.
func (ex *localExecutor) Broadcast(int, bool) (time.Duration, error) { return 0, nil }
