package middleware

import (
	"math"
	"sync"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/reduction"
	"freerideg/internal/simgrid"
	"freerideg/internal/units"
)

// countingKernel decorates a kernel with an exactly-once ledger: every
// ProcessChunk call is tallied per chunk index, so tests can prove that
// under failover each chunk is processed exactly once per pass — never
// dropped with its dead owner, never double-run on a survivor.
type countingKernel struct {
	reduction.Kernel
	mu     sync.Mutex
	counts map[int]int
}

func newCountingKernel(k reduction.Kernel) *countingKernel {
	return &countingKernel{Kernel: k, counts: make(map[int]int)}
}

func (ck *countingKernel) ProcessChunk(p reduction.Payload, obj reduction.Object) error {
	ck.mu.Lock()
	ck.counts[p.Chunk.Index]++
	ck.mu.Unlock()
	return ck.Kernel.ProcessChunk(p, obj)
}

// checkExactlyOnce asserts every chunk of the layout was processed
// exactly passes times (once per pass).
func (ck *countingKernel) checkExactlyOnce(t *testing.T, chunks, passes int) {
	t.Helper()
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if len(ck.counts) != chunks {
		t.Errorf("%d distinct chunks processed, layout has %d", len(ck.counts), chunks)
	}
	for idx, n := range ck.counts {
		if n != passes {
			t.Errorf("chunk %d processed %d times over %d passes, want exactly once per pass",
				idx, n, passes)
		}
	}
}

// centersKernel is the slice of the kmeans kernel the result checks need.
type centersKernel interface {
	Centers() [][]float64
}

// requireCentersClose compares cluster centers within a relative
// tolerance: failover changes the grouping of floating-point sums, so
// faulted runs agree with fault-free ones only up to rounding.
func requireCentersClose(t *testing.T, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d centers, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			diff := math.Abs(got[i][j] - want[i][j])
			scale := math.Max(1, math.Abs(want[i][j]))
			if diff/scale > 1e-6 {
				t.Fatalf("center[%d][%d] = %v, want %v (rel err %v)",
					i, j, got[i][j], want[i][j], diff/scale)
			}
		}
	}
}

func kmeansKernel(t *testing.T, spec adr.DatasetSpec) reduction.Kernel {
	t.Helper()
	a, err := apps.Get("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	k, err := a.NewKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func chunkCount(t *testing.T, spec adr.DatasetSpec, dataNodes int) int {
	t.Helper()
	layout, err := adr.Partition(spec, dataNodes, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	return len(layout.Chunks())
}

// Under any generated plan that leaves a compute node alive, the
// simulated backend terminates, processes every chunk exactly once per
// pass, and its recovery accounting reconciles: the traced retry and
// failover durations sum to the reported recovery time, and the traced
// phase totals still reproduce the profile breakdown exactly.
func TestSimFaultRecoveryProperties(t *testing.T) {
	g := testGrid(t)
	total := 64 * units.MB
	a, _ := apps.Get("kmeans")
	spec := pointsSpec(total)
	cost, err := a.Cost(spec)
	if err != nil {
		t.Fatal(err)
	}
	const dataNodes, computeNodes = 2, 4
	cfg := config(dataNodes, computeNodes, total)

	base, err := g.Simulate(cost, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Recovery != 0 || base.Retries != 0 {
		t.Fatalf("fault-free run reports recovery %v, %d retries", base.Recovery, base.Retries)
	}

	for seed := int64(1); seed <= 20; seed++ {
		plan := simgrid.GenerateFaultPlan(seed, dataNodes, computeNodes, cost.Iterations)
		col := NewCollector()
		res, ex, err := g.simulateOpts(cost, spec, cfg, SimOptions{Faults: &plan, Trace: col})
		if err != nil {
			t.Fatalf("seed %d (%v): %v", seed, plan.Faults, err)
		}
		for pass := range ex.processed {
			for idx, n := range ex.processed[pass] {
				if n != 1 {
					t.Fatalf("seed %d: chunk %d processed %d times in pass %d, want exactly once",
						seed, idx, n, pass)
				}
			}
		}
		if got := col.PhaseTotal(PhaseRetry) + col.PhaseTotal(PhaseFailover); got != res.Recovery {
			t.Errorf("seed %d: traced retry+failover = %v, result recovery = %v", seed, got, res.Recovery)
		}
		if got, want := col.Breakdown(), res.Profile.Breakdown; got != want {
			t.Errorf("seed %d: collector breakdown %+v != profile breakdown %+v", seed, got, want)
		}
		if res.Makespan < base.Makespan {
			t.Errorf("seed %d: faulted makespan %v beats fault-free %v", seed, res.Makespan, base.Makespan)
		}
	}
}

// The goroutine backend computes the same reduction under faults as
// without: every chunk lands exactly once per pass on a surviving node,
// and the final kmeans centers match the fault-free run's up to
// floating-point regrouping.
func TestLocalFaultRecoveryProperties(t *testing.T) {
	spec := localSpec("points")
	const dataNodes, computeNodes = 2, 3
	chunks := chunkCount(t, spec, dataNodes)

	baseKernel := kmeansKernel(t, spec)
	baseRes, err := runLocal(baseKernel, spec, dataNodes, computeNodes, LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	baseCenters := baseKernel.(centersKernel).Centers()

	for seed := int64(1); seed <= 8; seed++ {
		plan := simgrid.GenerateFaultPlan(seed, dataNodes, computeNodes, baseKernel.Iterations())
		ck := newCountingKernel(kmeansKernel(t, spec))
		col := NewCollector()
		res, err := runLocal(ck, spec, dataNodes, computeNodes, LocalOptions{Faults: &plan, Trace: col})
		if err != nil {
			t.Fatalf("seed %d (%v): %v", seed, plan.Faults, err)
		}
		if res.Iterations != baseRes.Iterations {
			t.Fatalf("seed %d: %d iterations, fault-free run took %d", seed, res.Iterations, baseRes.Iterations)
		}
		ck.checkExactlyOnce(t, chunks, res.Iterations)
		requireCentersClose(t, ck.Kernel.(centersKernel).Centers(), baseCenters)
		if got := col.PhaseTotal(PhaseRetry) + col.PhaseTotal(PhaseFailover); got != res.Recovery {
			t.Errorf("seed %d: traced retry+failover = %v, result recovery = %v", seed, got, res.Recovery)
		}
		if got, want := col.Breakdown(), res.Profile.Breakdown; got != want {
			t.Errorf("seed %d: collector breakdown %+v != profile breakdown %+v", seed, got, want)
		}
	}
}

// The SMP backend keeps the same guarantees with multi-threaded nodes and
// both sharing strategies.
func TestSMPFaultRecoveryProperties(t *testing.T) {
	spec := localSpec("points")
	const dataNodes, computeNodes = 2, 3
	chunks := chunkCount(t, spec, dataNodes)

	for _, strategy := range []ShmStrategy{FullReplication, FullLocking} {
		baseKernel := kmeansKernel(t, spec)
		baseRes, err := RunLocalSMP(baseKernel, spec, dataNodes, computeNodes,
			LocalOptions{Threads: 2, Strategy: strategy})
		if err != nil {
			t.Fatal(err)
		}
		baseCenters := baseKernel.(centersKernel).Centers()

		for seed := int64(1); seed <= 4; seed++ {
			plan := simgrid.GenerateFaultPlan(seed, dataNodes, computeNodes, baseKernel.Iterations())
			ck := newCountingKernel(kmeansKernel(t, spec))
			col := NewCollector()
			res, err := RunLocalSMP(ck, spec, dataNodes, computeNodes,
				LocalOptions{Threads: 2, Strategy: strategy, Faults: &plan, Trace: col})
			if err != nil {
				t.Fatalf("%v seed %d (%v): %v", strategy, seed, plan.Faults, err)
			}
			if res.Iterations != baseRes.Iterations {
				t.Fatalf("%v seed %d: %d iterations, fault-free run took %d",
					strategy, seed, res.Iterations, baseRes.Iterations)
			}
			ck.checkExactlyOnce(t, chunks, res.Iterations)
			requireCentersClose(t, ck.Kernel.(centersKernel).Centers(), baseCenters)
			if got, want := col.Breakdown(), res.Profile.Breakdown; got != want {
				t.Errorf("%v seed %d: collector breakdown %+v != profile breakdown %+v",
					strategy, seed, got, want)
			}
		}
	}
}

// The single-node shm backend accepts storage-tier plans (vacuous — its
// chunks are pre-materialized) and rejects plans that would crash its
// only compute node.
func TestShmFaultPlanHandling(t *testing.T) {
	spec := localSpec("points")
	chunks := chunkCount(t, spec, 1)

	for seed := int64(1); seed <= 4; seed++ {
		// One data node, one compute node: the generator never crashes the
		// last surviving compute node, so these plans are storage-only.
		plan := simgrid.GenerateFaultPlan(seed, 1, 1, 10)
		ck := newCountingKernel(kmeansKernel(t, spec))
		res, err := RunShmOpts(ck, spec, 2, FullReplication, LocalOptions{Faults: &plan})
		if err != nil {
			t.Fatalf("seed %d (%v): %v", seed, plan.Faults, err)
		}
		ck.checkExactlyOnce(t, chunks, res.Iterations)
	}

	crash := simgrid.FaultPlan{Faults: []simgrid.Fault{{Kind: simgrid.FaultCrash, Node: 0}}}
	if _, err := RunShmOpts(kmeansKernel(t, spec), spec, 2, FullReplication,
		LocalOptions{Faults: &crash}); err == nil {
		t.Error("plan crashing the only compute node accepted")
	}
}

// A plan that crashes every compute node must be rejected, not deadlock.
func TestAllNodesCrashedRejected(t *testing.T) {
	g := testGrid(t)
	total := 64 * units.MB
	a, _ := apps.Get("kmeans")
	spec := pointsSpec(total)
	cost, err := a.Cost(spec)
	if err != nil {
		t.Fatal(err)
	}
	plan := simgrid.FaultPlan{Faults: []simgrid.Fault{
		{Kind: simgrid.FaultCrash, Node: 0, Pass: 1},
		{Kind: simgrid.FaultCrash, Node: 1},
	}}
	if _, err := g.SimulateOpts(cost, spec, config(1, 2, total), SimOptions{Faults: &plan}); err == nil {
		t.Error("all-nodes-crash plan accepted by sim backend")
	}
	k := kmeansKernel(t, localSpec("points"))
	if _, err := runLocal(k, localSpec("points"), 1, 2, LocalOptions{Faults: &plan}); err == nil {
		t.Error("all-nodes-crash plan accepted by local backend")
	}
}
