package middleware

import (
	"testing"

	"freerideg/internal/units"
)

// BenchmarkGridSimulateMid measures one mid-size simulated execution
// (512 MB, 4 storage / 8 compute nodes) — the harness's inner loop and
// the unit of work the parallel sweep engine fans out.
func BenchmarkGridSimulateMid(b *testing.B) {
	b.ReportAllocs()
	g, err := NewGrid(PentiumMyrinet(), OpteronInfiniband())
	if err != nil {
		b.Fatal(err)
	}
	spec := pointsSpec(512 * units.MB)
	cost, err := appCost(spec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := config(4, 8, spec.TotalBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Simulate(cost, spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
