package middleware

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"freerideg/internal/core"
)

// Phase identifies one step of the canonical FREERIDE-G protocol. Every
// backend executes the same phase sequence through the shared Pipeline,
// and every emitted Event carries the phase it belongs to.
//
// Phases map onto the paper's component vocabulary as follows:
//
//	t_d (data retrieval):      PhaseRetrieval + PhaseCachedFetch
//	t_n (data communication):  PhaseDelivery
//	t_c (data processing):     PhaseLocalReduce + PhaseGather +
//	                           PhaseGlobalReduce + PhaseSync + PhaseBroadcast
type Phase int

const (
	// PhaseRunStart opens a run (pass = -1).
	PhaseRunStart Phase = iota
	// PhaseRetrieval is first-pass chunk retrieval at the storage nodes.
	PhaseRetrieval
	// PhaseDelivery is first-pass chunk transfer to the compute nodes.
	PhaseDelivery
	// PhaseCachedFetch is chunk re-retrieval from the caching tier in
	// passes after the first (absent with in-memory caching).
	PhaseCachedFetch
	// PhaseLocalReduce is per-node local reduction over delivered chunks.
	PhaseLocalReduce
	// PhaseGather is the serialized reduction-object gather at the master.
	PhaseGather
	// PhaseGlobalReduce is the master's global reduction.
	PhaseGlobalReduce
	// PhaseSync is the master's per-pass coordination overhead.
	PhaseSync
	// PhaseBroadcast is the master-to-workers result re-broadcast.
	PhaseBroadcast
	// PhaseFault marks an injected fault taking effect (a node crash or
	// the onset of a disk/link degradation). Fault events carry zero Dur —
	// the cost of riding the fault out shows up as retry and failover
	// events.
	PhaseFault
	// PhaseRetry is one failed chunk-delivery attempt: the wasted
	// retrieval and transfer plus the exponential-backoff delay before the
	// re-request.
	PhaseRetry
	// PhaseFailover is the recovery from one compute-node crash: the
	// crashed node's discarded partial work plus the master's detection
	// timeout, after which the node's chunks are re-partitioned onto the
	// survivors.
	PhaseFailover
	// PhaseRunEnd closes a run (pass = -1).
	PhaseRunEnd
)

var phaseNames = [...]string{
	PhaseRunStart:     "run-start",
	PhaseRetrieval:    "retrieval",
	PhaseDelivery:     "delivery",
	PhaseCachedFetch:  "cached-fetch",
	PhaseLocalReduce:  "local-reduce",
	PhaseGlobalReduce: "global-reduce",
	PhaseGather:       "gather",
	PhaseSync:         "sync",
	PhaseBroadcast:    "broadcast",
	PhaseFault:        "fault",
	PhaseRetry:        "retry",
	PhaseFailover:     "failover",
	PhaseRunEnd:       "run-end",
}

func (ph Phase) String() string {
	if ph >= 0 && int(ph) < len(phaseNames) {
		return phaseNames[ph]
	}
	return fmt.Sprintf("Phase(%d)", int(ph))
}

// MarshalJSON renders the phase by name, keeping JSON-lines traces
// self-describing.
func (ph Phase) MarshalJSON() ([]byte, error) { return json.Marshal(ph.String()) }

// UnmarshalJSON accepts a phase name.
func (ph *Phase) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range phaseNames {
		if name == s {
			*ph = Phase(i)
			return nil
		}
	}
	return fmt.Errorf("middleware: unknown phase %q", s)
}

// Event is one structured middleware execution event. Timestamps are
// relative to the run's start: virtual time on the simulated backend,
// wall time on the goroutine backends.
type Event struct {
	// At is when the phase completed (run-start: when the run began).
	At time.Duration `json:"at"`
	// Pass is the pass number, or -1 for run-level events.
	Pass int `json:"pass"`
	// Phase is the protocol step this event reports.
	Phase Phase `json:"phase"`
	// Node is the node the phase is attributed to (-1 = master/run-wide).
	Node int `json:"node"`
	// Dur is the accounted duration of the phase (zero for run-level
	// events). Per-node phases carry the maximum over nodes, matching the
	// paper's component accounting, so summing Dur per component
	// reproduces the run's (t_d, t_n, t_c) breakdown exactly.
	Dur time.Duration `json:"dur"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// Component reports which of the paper's breakdown components the
// event's phase contributes to: "disk", "network", "compute",
// "recovery" for fault-handling overhead that sits outside the additive
// t_d + t_n + t_c decomposition, or "" for run-level events.
func (ev Event) Component() string {
	switch ev.Phase {
	case PhaseRetrieval, PhaseCachedFetch:
		return "disk"
	case PhaseDelivery:
		return "network"
	case PhaseLocalReduce, PhaseGather, PhaseGlobalReduce, PhaseSync, PhaseBroadcast:
		return "compute"
	case PhaseFault, PhaseRetry, PhaseFailover:
		return "recovery"
	}
	return ""
}

// Sink receives middleware events. Emit is always called from the single
// pipeline-driving flow of a run, in event order; a Sink shared across
// concurrent runs must serialize internally (Collector does).
type Sink interface {
	Emit(Event)
}

// TextSink renders events as aligned, human-readable lines.
type TextSink struct {
	w io.Writer
}

// NewTextSink returns a sink writing one text line per event to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit writes the event as one line.
func (s *TextSink) Emit(ev Event) {
	switch ev.Phase {
	case PhaseRunStart, PhaseRunEnd:
		fmt.Fprintf(s.w, "t=%-14v %-13s %s\n", ev.At, ev.Phase, ev.Detail)
	default:
		line := fmt.Sprintf("t=%-14v %-13s pass=%d", ev.At, ev.Phase, ev.Pass)
		if ev.Node >= 0 {
			line += fmt.Sprintf(" node=%d", ev.Node)
		}
		line += fmt.Sprintf(" dur=%v", ev.Dur)
		if ev.Detail != "" {
			line += " " + ev.Detail
		}
		fmt.Fprintln(s.w, line)
	}
}

// JSONSink renders events as JSON lines (one object per line), the
// machine-readable execution log a deployment would ship to its
// observability stack. Durations are nanoseconds; phases are names.
type JSONSink struct {
	enc *json.Encoder
}

// NewJSONSink returns a sink writing one JSON object per event to w.
func NewJSONSink(w io.Writer) *JSONSink { return &JSONSink{enc: json.NewEncoder(w)} }

// Emit writes the event as one JSON line. Encoding errors are dropped:
// tracing must never fail a run.
func (s *JSONSink) Emit(ev Event) { _ = s.enc.Encode(ev) }

// Collector is an in-memory sink that records events and aggregates
// accounted durations per phase. It is safe for use across runs.
type Collector struct {
	mu     sync.Mutex
	events []Event
	totals map[Phase]time.Duration
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{totals: make(map[Phase]time.Duration)}
}

// Emit records the event.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
	c.totals[ev.Phase] += ev.Dur
}

// Events returns a copy of the recorded events in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// PhaseTotal reports the summed accounted duration of one phase.
func (c *Collector) PhaseTotal(ph Phase) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals[ph]
}

// PhaseTotals returns the per-phase duration sums.
func (c *Collector) PhaseTotals() map[Phase]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Phase]time.Duration, len(c.totals))
	for ph, d := range c.totals {
		out[ph] = d
	}
	return out
}

// Breakdown folds the per-phase sums into the paper's three components.
// For any single traced run this equals the returned Profile's breakdown
// (the t_d + t_n + t_c additivity of Section 6).
func (c *Collector) Breakdown() core.Breakdown {
	c.mu.Lock()
	defer c.mu.Unlock()
	return core.Breakdown{
		Tdisk:    c.totals[PhaseRetrieval] + c.totals[PhaseCachedFetch],
		Tnetwork: c.totals[PhaseDelivery],
		Tcompute: c.totals[PhaseLocalReduce] + c.totals[PhaseGather] +
			c.totals[PhaseGlobalReduce] + c.totals[PhaseSync] + c.totals[PhaseBroadcast],
	}
}

// Reset clears recorded events and totals.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = nil
	c.totals = make(map[Phase]time.Duration)
}

// MultiSink fans one event stream out to several sinks.
type MultiSink []Sink

// Emit forwards the event to every sink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(ev)
		}
	}
}
