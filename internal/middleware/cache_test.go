package middleware

import (
	"testing"
	"time"

	"freerideg/internal/apps"
	"freerideg/internal/core"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

func simulateOpts(t *testing.T, g *Grid, app string, total units.Bytes, cfg core.Config, opts SimOptions) SimResult {
	t.Helper()
	a, err := apps.Get(app)
	if err != nil {
		t.Fatal(err)
	}
	spec := pointsSpec(total)
	cost, err := a.Cost(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.SimulateOpts(cost, spec, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCacheModeStrings(t *testing.T) {
	if CacheMemory.String() != "memory" || CacheLocalDisk.String() != "local-disk" ||
		CacheRemote.String() != "remote" {
		t.Error("cache mode strings changed")
	}
	if CacheMode(9).String() == "" {
		t.Error("unknown cache mode has empty string")
	}
}

func TestMemoryCachingHasNoCachedRetrieval(t *testing.T) {
	g := testGrid(t)
	total := 128 * units.MB
	res := simulateOpts(t, g, "kmeans", total, config(1, 2, total), SimOptions{})
	if res.Profile.TdiskCached != 0 {
		t.Fatalf("memory caching recorded %v of cached retrieval", res.Profile.TdiskCached)
	}
}

func TestLocalDiskCachingChargesRetrieval(t *testing.T) {
	g := testGrid(t)
	total := 128 * units.MB
	cfg := config(1, 2, total)
	mem := simulateOpts(t, g, "kmeans", total, cfg, SimOptions{})
	disk := simulateOpts(t, g, "kmeans", total, cfg, SimOptions{Cache: CacheSpec{Mode: CacheLocalDisk}})
	if disk.Profile.TdiskCached <= 0 {
		t.Fatal("local-disk caching recorded no cached retrieval")
	}
	if disk.Makespan <= mem.Makespan {
		t.Fatalf("disk caching (%v) not slower than memory caching (%v)", disk.Makespan, mem.Makespan)
	}
	if disk.Profile.Tdisk <= mem.Profile.Tdisk {
		t.Fatal("cached reads not reflected in Tdisk")
	}
	// kmeans makes 10 passes: 9 cached re-reads of the per-node share.
	// Each node re-reads ~total/2 per pass at DiskBW plus seeks.
	perPass := PentiumMyrinet().DiskBW.TransferTime(total / 2)
	if disk.Profile.TdiskCached < 9*perPass {
		t.Fatalf("cached retrieval %v below the 9-pass transfer floor %v",
			disk.Profile.TdiskCached, 9*perPass)
	}
}

func TestRemoteCachingBetweenMemoryAndOrigin(t *testing.T) {
	g := testGrid(t)
	total := 128 * units.MB
	cfg := config(1, 2, total)
	mem := simulateOpts(t, g, "kmeans", total, cfg, SimOptions{})
	remote := simulateOpts(t, g, "kmeans", total, cfg, SimOptions{
		Cache: CacheSpec{Mode: CacheRemote, Bandwidth: 400 * units.MBPerSec, Latency: 100 * time.Microsecond},
	})
	if remote.Profile.TdiskCached <= 0 {
		t.Fatal("remote caching recorded no cached retrieval")
	}
	if remote.Makespan <= mem.Makespan {
		t.Fatal("remote caching not slower than memory caching")
	}
	// A fast cache site must beat re-fetching from the slow origin
	// repository every pass; compare against local-disk at origin speed.
	slow := simulateOpts(t, g, "kmeans", total, cfg, SimOptions{
		Cache: CacheSpec{Mode: CacheRemote, Bandwidth: 10 * units.MBPerSec},
	})
	if remote.Makespan >= slow.Makespan {
		t.Fatal("faster cache site did not reduce the makespan")
	}
}

func TestRemoteCacheNeedsBandwidth(t *testing.T) {
	g := testGrid(t)
	total := 64 * units.MB
	a, _ := apps.Get("kmeans")
	spec := pointsSpec(total)
	cost, _ := a.Cost(spec)
	_, err := g.SimulateOpts(cost, spec, config(1, 1, total), SimOptions{
		Cache: CacheSpec{Mode: CacheRemote},
	})
	if err == nil {
		t.Fatal("remote cache without bandwidth accepted")
	}
}

// TestCachedPredictionExtension checks the model extension: with disk
// caching, a profile-seeded predictor that splits first-pass and cached
// retrieval stays accurate when the compute-node count changes (cached
// re-reads scale with ĉ, not n̂).
func TestCachedPredictionExtension(t *testing.T) {
	g := testGrid(t)
	total := 256 * units.MB
	opts := SimOptions{Cache: CacheSpec{Mode: CacheLocalDisk}}
	base := simulateOpts(t, g, "kmeans", total, config(1, 1, total), opts)
	a, _ := apps.Get("kmeans")
	pred, err := core.NewPredictor(base.Profile, a.Model)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := core.CalibrateLink(g.MeasureIC("pentium-myrinet"))
	if err != nil {
		t.Fatal(err)
	}
	pred.Links["pentium-myrinet"] = cal
	for _, nc := range [][2]int{{1, 4}, {2, 8}, {4, 16}} {
		cfg := config(nc[0], nc[1], total)
		actual := simulateOpts(t, g, "kmeans", total, cfg, opts)
		p, err := pred.Predict(cfg, core.GlobalReduction)
		if err != nil {
			t.Fatal(err)
		}
		e := stats.RelError(actual.Makespan.Seconds(), p.Texec().Seconds())
		if e > 0.05 {
			t.Errorf("%d-%d with disk caching: prediction off by %.1f%% (actual %v, predicted %v)",
				nc[0], nc[1], 100*e, actual.Makespan, p.Texec())
		}
	}
}

func TestStragglerSlowsRun(t *testing.T) {
	g := testGrid(t)
	total := 128 * units.MB
	cfg := config(2, 4, total)
	clean := simulateOpts(t, g, "em", total, cfg, SimOptions{})
	hurt := simulateOpts(t, g, "em", total, cfg, SimOptions{StragglerNode: 2, StragglerFactor: 3})
	if hurt.Makespan <= clean.Makespan {
		t.Fatalf("straggler did not slow the run: %v vs %v", hurt.Makespan, clean.Makespan)
	}
	// A 3x slowdown of one of four nodes bounds the pass time by ~3x the
	// balanced share; the whole run must be well below a uniform 3x.
	if hurt.Makespan > 3*clean.Makespan {
		t.Fatalf("straggler slowed the whole run more than its own share allows: %v vs %v",
			hurt.Makespan, clean.Makespan)
	}
}

func TestStragglerBreaksPrediction(t *testing.T) {
	// Failure injection: a straggler invisible to the profile makes the
	// (healthy-cluster) prediction optimistic — robustness boundary of
	// the paper's model.
	g := testGrid(t)
	total := 128 * units.MB
	base := simulateOpts(t, g, "em", total, config(1, 1, total), SimOptions{})
	a, _ := apps.Get("em")
	pred, err := core.NewPredictor(base.Profile, a.Model)
	if err != nil {
		t.Fatal(err)
	}
	cal, _ := core.CalibrateLink(g.MeasureIC("pentium-myrinet"))
	pred.Links["pentium-myrinet"] = cal
	cfg := config(2, 4, total)
	hurt := simulateOpts(t, g, "em", total, cfg, SimOptions{StragglerNode: 1, StragglerFactor: 4})
	p, err := pred.Predict(cfg, core.GlobalReduction)
	if err != nil {
		t.Fatal(err)
	}
	if p.Texec().Seconds() >= hurt.Makespan.Seconds() {
		t.Fatal("prediction not optimistic under an injected straggler")
	}
	e := stats.RelError(hurt.Makespan.Seconds(), p.Texec().Seconds())
	if e < 0.2 {
		t.Fatalf("4x straggler on 1 of 4 nodes only moved the error to %.1f%%; injection ineffective", 100*e)
	}
}

func TestStragglerValidation(t *testing.T) {
	g := testGrid(t)
	total := 64 * units.MB
	a, _ := apps.Get("kmeans")
	spec := pointsSpec(total)
	cost, _ := a.Cost(spec)
	_, err := g.SimulateOpts(cost, spec, config(1, 2, total), SimOptions{
		StragglerNode: 7, StragglerFactor: 2,
	})
	if err == nil {
		t.Fatal("out-of-range straggler accepted")
	}
	// Factor <= 1 disables the straggler even with a bogus node index.
	if _, err := g.SimulateOpts(cost, spec, config(1, 2, total), SimOptions{
		StragglerNode: 7, StragglerFactor: 0.5,
	}); err != nil {
		t.Fatalf("disabled straggler rejected: %v", err)
	}
}

func TestProfileValidateCachedField(t *testing.T) {
	g := testGrid(t)
	total := 64 * units.MB
	res := simulateOpts(t, g, "kmeans", total, config(1, 2, total),
		SimOptions{Cache: CacheSpec{Mode: CacheLocalDisk}})
	if err := res.Profile.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := res.Profile
	bad.TdiskCached = bad.Tdisk + time.Second
	if err := bad.Validate(); err == nil {
		t.Fatal("cached retrieval above Tdisk accepted")
	}
}
