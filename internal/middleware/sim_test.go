package middleware

import (
	"testing"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/core"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

func testGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := NewGrid(PentiumMyrinet(), OpteronInfiniband())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pointsSpec(total units.Bytes) adr.DatasetSpec {
	return adr.DatasetSpec{
		Name:       "pts",
		TotalBytes: total,
		ElemBytes:  128,
		ChunkBytes: 8 * units.MB,
		Kind:       "points",
		Dims:       16,
		Seed:       17,
	}
}

func config(n, c int, total units.Bytes) core.Config {
	return core.Config{
		Cluster:      "pentium-myrinet",
		DataNodes:    n,
		ComputeNodes: c,
		Bandwidth:    DefaultBandwidth,
		DatasetBytes: total,
	}
}

func simulate(t *testing.T, g *Grid, app string, spec adr.DatasetSpec, cfg core.Config) SimResult {
	t.Helper()
	a, err := apps.Get(app)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := a.Cost(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Simulate(cost, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(ClusterSpec{}); err == nil {
		t.Error("empty cluster spec accepted")
	}
	if _, err := NewGrid(PentiumMyrinet(), PentiumMyrinet()); err == nil {
		t.Error("duplicate cluster accepted")
	}
	g := testGrid(t)
	if _, err := g.Cluster("nope"); err == nil {
		t.Error("unknown cluster returned")
	}
}

func TestSimulateProducesConsistentProfile(t *testing.T) {
	g := testGrid(t)
	spec := pointsSpec(256 * units.MB)
	res := simulate(t, g, "kmeans", spec, config(1, 1, spec.TotalBytes))
	p := res.Profile
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Tdisk <= 0 || p.Tnetwork <= 0 || p.Tcompute <= 0 {
		t.Fatalf("degenerate breakdown: %+v", p.Breakdown)
	}
	if p.Tro != 0 {
		t.Errorf("Tro = %v on one compute node, want 0", p.Tro)
	}
	if p.Tglobal <= 0 {
		t.Error("Tglobal not measured")
	}
	if p.Iterations != 10 {
		t.Errorf("iterations = %d, want 10 (kmeans default)", p.Iterations)
	}
	// The synchronous protocol makes the breakdown additive: the makespan
	// must be within a few percent of the component sum.
	if e := stats.RelError(res.Makespan.Seconds(), p.Texec().Seconds()); e > 0.03 {
		t.Errorf("additivity violated at 1-1: makespan %v vs sum %v (%.1f%%)",
			res.Makespan, p.Texec(), 100*e)
	}
}

func TestSimulateAdditiveAcrossConfigs(t *testing.T) {
	g := testGrid(t)
	spec := pointsSpec(256 * units.MB)
	for _, nc := range [][2]int{{1, 1}, {1, 4}, {2, 4}, {4, 8}, {8, 16}, {1, 16}} {
		res := simulate(t, g, "kmeans", spec, config(nc[0], nc[1], spec.TotalBytes))
		e := stats.RelError(res.Makespan.Seconds(), res.Profile.Texec().Seconds())
		if e > 0.05 {
			t.Errorf("config %d-%d: makespan %v vs component sum %v (%.1f%%)",
				nc[0], nc[1], res.Makespan, res.Profile.Texec(), 100*e)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	g := testGrid(t)
	spec := pointsSpec(128 * units.MB)
	a := simulate(t, g, "em", spec, config(2, 4, spec.TotalBytes))
	b := simulate(t, g, "em", spec, config(2, 4, spec.TotalBytes))
	if a.Makespan != b.Makespan || a.Profile != b.Profile {
		t.Fatalf("simulation not deterministic: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestComputeTimeScalesWithNodes(t *testing.T) {
	g := testGrid(t)
	spec := pointsSpec(256 * units.MB)
	r1 := simulate(t, g, "kmeans", spec, config(1, 1, spec.TotalBytes))
	r4 := simulate(t, g, "kmeans", spec, config(1, 4, spec.TotalBytes))
	// Local compute shrinks ~4x; serialized parts grow.
	local1 := r1.Profile.Tcompute - r1.Profile.Tro - r1.Profile.Tglobal
	local4 := r4.Profile.Tcompute - r4.Profile.Tro - r4.Profile.Tglobal
	ratio := local1.Seconds() / local4.Seconds()
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("local compute scaled by %.2f with 4 nodes, want ~4", ratio)
	}
	if r4.Profile.Tro <= r1.Profile.Tro {
		t.Error("Tro did not grow with node count")
	}
}

func TestDiskTimeScalesSubLinearly(t *testing.T) {
	g := testGrid(t)
	spec := pointsSpec(256 * units.MB)
	r1 := simulate(t, g, "knn", spec, config(1, 1, spec.TotalBytes))
	r8 := simulate(t, g, "knn", spec, config(8, 8, spec.TotalBytes))
	ratio := r1.Profile.Tdisk.Seconds() / r8.Profile.Tdisk.Seconds()
	// Perfect scaling would be 8; contention (DiskAlpha) keeps it below.
	if ratio >= 8 {
		t.Errorf("disk scaled by %.2f at 8 nodes, want sub-linear (< 8)", ratio)
	}
	if ratio < 6 {
		t.Errorf("disk scaled by only %.2f at 8 nodes; contention too strong", ratio)
	}
}

func TestNetworkTimeScalesWithBandwidth(t *testing.T) {
	g := testGrid(t)
	spec := pointsSpec(128 * units.MB)
	full := config(1, 2, spec.TotalBytes)
	half := full
	half.Bandwidth = full.Bandwidth / 2
	rFull := simulate(t, g, "knn", spec, full)
	rHalf := simulate(t, g, "knn", spec, half)
	ratio := rHalf.Profile.Tnetwork.Seconds() / rFull.Profile.Tnetwork.Seconds()
	// Latency per chunk keeps the ratio slightly under 2.
	if ratio < 1.8 || ratio > 2.0 {
		t.Errorf("halving bandwidth scaled Tnetwork by %.3f, want ~2 (slightly under)", ratio)
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	g := testGrid(t)
	spec := pointsSpec(64 * units.MB)
	a, _ := apps.Get("kmeans")
	cost, _ := a.Cost(spec)
	bad := config(1, 1, 999)
	if _, err := g.Simulate(cost, spec, bad); err == nil {
		t.Error("dataset-size mismatch accepted")
	}
	unknown := config(1, 1, spec.TotalBytes)
	unknown.Cluster = "nope"
	if _, err := g.Simulate(cost, spec, unknown); err == nil {
		t.Error("unknown cluster accepted")
	}
	cost.OpsPerElem = 0
	if _, err := g.Simulate(cost, spec, config(1, 1, spec.TotalBytes)); err == nil {
		t.Error("invalid cost model accepted")
	}
}

func TestMeasureICMatchesSpec(t *testing.T) {
	g := testGrid(t)
	probe := g.MeasureIC("pentium-myrinet")
	d, err := probe(units.MB)
	if err != nil {
		t.Fatal(err)
	}
	want := PentiumMyrinet().ICMessageTime(units.MB)
	if d != want {
		t.Fatalf("probe(1MB) = %v, want %v", d, want)
	}
	if _, err := g.MeasureIC("nope")(units.KB); err == nil {
		t.Error("unknown cluster probe succeeded")
	}
}

// TestEndToEndPredictionAccuracy is the reproduction's crux: a predictor
// seeded only with the 1-1 profile must predict every other configuration
// to within a few percent using the global-reduction variant, and the
// variants must rank no-comm <= reduction-comm <= global-reduction in
// accuracy on the serialized-heavy configurations.
func TestEndToEndPredictionAccuracy(t *testing.T) {
	g := testGrid(t)
	spec := pointsSpec(512 * units.MB)
	base := config(1, 1, spec.TotalBytes)
	prof := simulate(t, g, "kmeans", spec, base).Profile

	a, _ := apps.Get("kmeans")
	pred, err := core.NewPredictor(prof, a.Model)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := core.CalibrateLink(g.MeasureIC("pentium-myrinet"))
	if err != nil {
		t.Fatal(err)
	}
	pred.Links["pentium-myrinet"] = cal

	for _, nc := range [][2]int{{1, 2}, {1, 8}, {2, 4}, {4, 16}, {8, 8}, {8, 16}} {
		cfg := config(nc[0], nc[1], spec.TotalBytes)
		actual := simulate(t, g, "kmeans", spec, cfg).Makespan
		p, err := pred.Predict(cfg, core.GlobalReduction)
		if err != nil {
			t.Fatal(err)
		}
		e := stats.RelError(actual.Seconds(), p.Texec().Seconds())
		if e > 0.05 {
			t.Errorf("global-reduction prediction for %d-%d off by %.1f%% (actual %v, predicted %v)",
				nc[0], nc[1], 100*e, actual, p.Texec())
		}
	}

	// Variant ordering at the most serialized configuration.
	cfg := config(8, 16, spec.TotalBytes)
	actual := simulate(t, g, "kmeans", spec, cfg).Makespan
	var errs [3]float64
	for i, v := range core.Variants() {
		p, err := pred.Predict(cfg, v)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = stats.RelError(actual.Seconds(), p.Texec().Seconds())
	}
	if !(errs[2] <= errs[1] && errs[1] <= errs[0]) {
		t.Errorf("variant errors not ordered at 8-16: no-comm %.2f%%, red-comm %.2f%%, global %.2f%%",
			100*errs[0], 100*errs[1], 100*errs[2])
	}
}

func TestSimulationRunsFast(t *testing.T) {
	// Paper-scale simulations must stay cheap: 1.4 GB over 14 configs is
	// the harness's inner loop.
	if testing.Short() {
		t.Skip("timing test")
	}
	g := testGrid(t)
	spec := pointsSpec(1433 * units.MB)
	start := time.Now()
	simulate(t, g, "kmeans", spec, config(8, 16, spec.TotalBytes))
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("one paper-scale simulation took %v", el)
	}
}
