// Package middleware implements the FREERIDE-G engine: a data server that
// retrieves and distributes chunks from repository nodes, compute servers
// that run generalized reductions over delivered chunks, and the glue
// (caching, reduction-object gather, global reduction, result broadcast).
//
// Two interchangeable backends execute a run:
//
//   - the simulated backend (Grid.Simulate) executes the middleware
//     protocol against simgrid's virtual clusters — the substitute for the
//     paper's physical testbed — using each application's analytic cost
//     model, so gigabyte-scale configurations finish in milliseconds;
//   - the local backend (RunLocal) executes the same protocol for real on
//     goroutines with materialized chunks, exercising the actual kernels.
package middleware

import (
	"fmt"
	"time"

	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// ArchRates describes a cluster's per-category instruction throughput in
// operations per second. Applications declare an instruction mix
// (reduction.WorkMix); the effective rate of a mix differs between
// architectures, which is what makes per-application cross-cluster scaling
// factors differ, as the paper observed (0.233 for kNN vs 0.370 for vortex
// detection).
type ArchRates struct {
	Flop   float64
	Mem    float64
	Branch float64
}

// EffectiveRate reports the blended operation rate for a mix (harmonic
// combination: each category contributes time proportional to its share).
// A category with zero throughput makes any mix that uses it run at rate
// zero; unused categories are ignored.
func (a ArchRates) EffectiveRate(mix reduction.WorkMix) float64 {
	m := mix.Normalize()
	var t float64
	for _, part := range []struct{ share, rate float64 }{
		{m.Flop, a.Flop}, {m.Mem, a.Mem}, {m.Branch, a.Branch},
	} {
		if part.share == 0 {
			continue
		}
		if part.rate <= 0 {
			return 0
		}
		t += part.share / part.rate
	}
	if t <= 0 {
		return 0
	}
	return 1 / t
}

// ClusterSpec describes the hardware of one simulated cluster.
type ClusterSpec struct {
	// Name identifies the cluster in core.Config.
	Name string
	// CPU is the per-category instruction throughput of one node.
	CPU ArchRates
	// ChunkOverhead is the per-chunk dispatch cost on a compute node.
	ChunkOverhead time.Duration
	// DiskBW is one storage node's disk bandwidth.
	DiskBW units.Rate
	// DiskSeek is the per-chunk-read seek/request overhead.
	DiskSeek time.Duration
	// DiskAlpha is the repository contention factor: with n storage nodes
	// the effective per-node disk bandwidth is DiskBW / (1 + alpha*(n-1)),
	// giving the sub-linear retrieval scaling real storage backplanes show.
	DiskAlpha float64
	// NetLatency is the per-chunk message latency between a storage node
	// and a compute node.
	NetLatency time.Duration
	// ICBandwidth is the interprocessor interconnect bandwidth used for
	// reduction-object communication.
	ICBandwidth units.Rate
	// ICLatency is the per-message interconnect cost, dominated by
	// middleware serialization and matching overheads.
	ICLatency time.Duration
	// GlobalValueCost is the master's per-float cost (decode + combine)
	// during global reduction.
	GlobalValueCost time.Duration
	// IterSync is the master's per-pass coordination overhead. It is
	// deliberately outside the prediction model's vocabulary — a constant
	// the model mis-scales, like any real system has.
	IterSync time.Duration
	// JitterAmp is the relative amplitude of deterministic per-chunk disk
	// time variation (0.01 = +/-1%).
	JitterAmp float64
}

// Validate reports whether the spec is usable.
func (c ClusterSpec) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("middleware: cluster without name")
	case c.CPU.Flop <= 0 || c.CPU.Mem <= 0 || c.CPU.Branch <= 0:
		return fmt.Errorf("middleware: cluster %q has non-positive CPU rates", c.Name)
	case c.DiskBW <= 0:
		return fmt.Errorf("middleware: cluster %q has non-positive disk bandwidth", c.Name)
	case c.ICBandwidth <= 0:
		return fmt.Errorf("middleware: cluster %q has non-positive interconnect bandwidth", c.Name)
	case c.DiskAlpha < 0 || c.JitterAmp < 0:
		return fmt.Errorf("middleware: cluster %q has negative contention/jitter factors", c.Name)
	}
	return nil
}

// EffectiveDiskBW reports the per-node disk bandwidth when n storage nodes
// share the repository.
func (c ClusterSpec) EffectiveDiskBW(n int) units.Rate {
	if n < 1 {
		n = 1
	}
	return units.Rate(float64(c.DiskBW) / (1 + c.DiskAlpha*float64(n-1)))
}

// ICMessageTime reports the cost of one interconnect message of b bytes.
func (c ClusterSpec) ICMessageTime(b units.Bytes) time.Duration {
	return c.ICLatency + c.ICBandwidth.TransferTime(b)
}

// PentiumMyrinet models the paper's base testbed: 700 MHz Pentium nodes on
// Myrinet LANai 7.0.
func PentiumMyrinet() ClusterSpec {
	return ClusterSpec{
		Name:            "pentium-myrinet",
		CPU:             ArchRates{Flop: 180e6, Mem: 130e6, Branch: 160e6},
		ChunkOverhead:   2 * time.Millisecond,
		DiskBW:          40 * units.MBPerSec,
		DiskSeek:        6 * time.Millisecond,
		DiskAlpha:       0.012,
		NetLatency:      800 * time.Microsecond,
		ICBandwidth:     100 * units.MBPerSec,
		ICLatency:       12 * time.Millisecond,
		GlobalValueCost: 5 * time.Microsecond,
		IterSync:        30 * time.Millisecond,
		JitterAmp:       0.01,
	}
}

// OpteronInfiniband models the paper's second cluster: dual 2.4 GHz
// Opteron 250 nodes on Mellanox Infiniband.
func OpteronInfiniband() ClusterSpec {
	return ClusterSpec{
		Name:            "opteron-infiniband",
		CPU:             ArchRates{Flop: 760e6, Mem: 360e6, Branch: 520e6},
		ChunkOverhead:   600 * time.Microsecond,
		DiskBW:          120 * units.MBPerSec,
		DiskSeek:        3 * time.Millisecond,
		DiskAlpha:       0.012,
		NetLatency:      150 * time.Microsecond,
		ICBandwidth:     800 * units.MBPerSec,
		ICLatency:       2500 * time.Microsecond,
		GlobalValueCost: 1500 * time.Nanosecond,
		IterSync:        8 * time.Millisecond,
		JitterAmp:       0.01,
	}
}

// DefaultBandwidth is the storage-to-compute bandwidth assumed for the
// Pentium cluster's experiments when none is specified.
const DefaultBandwidth = 100 * units.MBPerSec
