package middleware

import (
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/core"
	"freerideg/internal/units"
)

// The collector's per-phase aggregation must reproduce the returned
// profile's (t_d, t_n, t_c) exactly: both are fed by the same Pipeline
// accounting, so traced events are a lossless decomposition of the
// breakdown.
func TestCollectorBreakdownMatchesSimProfile(t *testing.T) {
	g := testGrid(t)
	total := 512 * units.MB
	a, _ := apps.Get("em")
	spec := pointsSpec(total)
	cost, err := a.Cost(spec)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	res, err := g.SimulateOpts(cost, spec, config(2, 8, total), SimOptions{Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := col.Breakdown(), res.Profile.Breakdown; got != want {
		t.Errorf("collector breakdown %+v != profile breakdown %+v", got, want)
	}
	// Phase-level consistency: Tro = gather + broadcast, Tglobal = global.
	if got, want := col.PhaseTotal(PhaseGather)+col.PhaseTotal(PhaseBroadcast), res.Profile.Tro; got != want {
		t.Errorf("gather+broadcast = %v, profile Tro = %v", got, want)
	}
	if got, want := col.PhaseTotal(PhaseGlobalReduce), res.Profile.Tglobal; got != want {
		t.Errorf("global-reduce total = %v, profile Tglobal = %v", got, want)
	}
	if got, want := col.PhaseTotal(PhaseCachedFetch), res.Profile.TdiskCached; got != want {
		t.Errorf("cached-fetch total = %v, profile TdiskCached = %v", got, want)
	}
}

func TestCollectorBreakdownMatchesLocalProfile(t *testing.T) {
	spec := localSpec("points")
	a, _ := apps.Get("kmeans")
	k, err := a.NewKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	res, err := runLocal(k, spec, 1, 2, LocalOptions{Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := col.Breakdown(), res.Profile.Breakdown; got != want {
		t.Errorf("collector breakdown %+v != profile breakdown %+v", got, want)
	}
}

func TestCollectorBreakdownMatchesSMPProfile(t *testing.T) {
	spec := localSpec("points")
	a, _ := apps.Get("kmeans")
	k, err := a.NewKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	res, err := RunLocalSMP(k, spec, 1, 2, LocalOptions{Threads: 2, Strategy: FullLocking, Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := col.Breakdown(), res.Profile.Breakdown; got != want {
		t.Errorf("collector breakdown %+v != profile breakdown %+v", got, want)
	}
	if res.Profile.Breakdown.Tcompute == 0 {
		t.Error("SMP profile has zero compute time")
	}
}

func TestShmRunsThroughPipeline(t *testing.T) {
	spec := localSpec("points")
	a, _ := apps.Get("kmeans")
	k, err := a.NewKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	res, err := runShm(k, spec, 2, FullReplication, col)
	if err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	if events[0].Phase != PhaseRunStart || events[len(events)-1].Phase != PhaseRunEnd {
		t.Errorf("stream not framed by run-start/run-end: %v .. %v",
			events[0].Phase, events[len(events)-1].Phase)
	}
	if res.Iterations < 1 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if bd := col.Breakdown(); bd.Tcompute == 0 {
		t.Error("shm run accounted zero compute time")
	}
}

// All backends must derive chunk placement from the same partition
// helpers: the simulated backend's per-compute-node chunk streams and the
// goroutine backend's delivery targets describe the same assignment.
func TestPartitionHelpersAgree(t *testing.T) {
	spec := pointsSpec(512 * units.MB)
	const n, c = 2, 5
	layout, err := adr.Partition(spec, n, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	targets := chunkTargets(layout, n, c)
	byCompute := chunksByCompute(layout, n, c)

	counts := make([]int, c)
	for dn := 0; dn < n; dn++ {
		chunks := layout.NodeChunks(dn)
		if len(targets[dn]) != len(chunks) {
			t.Fatalf("storage node %d: %d targets for %d chunks", dn, len(targets[dn]), len(chunks))
		}
		for i, j := range targets[dn] {
			if j < 0 || j >= c {
				t.Fatalf("chunk %d of storage node %d targets invalid node %d", i, dn, j)
			}
			if j%n != dn {
				t.Errorf("compute node %d served by storage node %d, want %d", j, dn, j%n)
			}
			counts[j]++
		}
	}
	got := 0
	for j := 0; j < c; j++ {
		if len(byCompute[j]) != counts[j] {
			t.Errorf("compute node %d: %d chunks via chunksByCompute, %d via chunkTargets",
				j, len(byCompute[j]), counts[j])
		}
		got += len(byCompute[j])
	}
	if want := len(layout.Chunks()); got != want {
		t.Errorf("%d chunks assigned, layout has %d", got, want)
	}
}

// The ablation stages stay pluggable: tree gather changes the accounted
// reduction-object communication but leaves the protocol intact.
func TestTreeGatherStillTraced(t *testing.T) {
	g := testGrid(t)
	total := 512 * units.MB
	a, _ := apps.Get("kmeans")
	spec := pointsSpec(total)
	cost, err := a.Cost(spec)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	res, err := g.SimulateOpts(cost, spec, config(2, 8, total), SimOptions{TreeGather: true, Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := col.Breakdown(), res.Profile.Breakdown; got != want {
		t.Errorf("collector breakdown %+v != profile breakdown %+v", got, want)
	}
	if col.PhaseTotal(PhaseGather) == 0 {
		t.Error("tree gather accounted zero gather time")
	}
}

// PhaseBreakdown.Profile must agree with the component mapping.
func TestPhaseBreakdownMapping(t *testing.T) {
	b := PhaseBreakdown{
		Retrieval: 1, Delivery: 2, CachedFetch: 4, Compute: 8,
		Gather: 16, Global: 32, Sync: 64, Broadcast: 128,
	}
	if got := b.Tdisk(); got != 5 {
		t.Errorf("Tdisk = %v", got)
	}
	if got := b.Tnetwork(); got != 2 {
		t.Errorf("Tnetwork = %v", got)
	}
	if got := b.Tcompute(); got != 8+16+32+64+128 {
		t.Errorf("Tcompute = %v", got)
	}
	if got := b.Tro(); got != 16+128 {
		t.Errorf("Tro = %v", got)
	}
	p := b.Profile("x", core.Config{}, 0, 0, 3)
	if p.Tro != b.Tro() || p.Tglobal != b.Global || p.TdiskCached != b.CachedFetch {
		t.Errorf("profile fields %+v inconsistent with breakdown %+v", p, b)
	}
	if p.Iterations != 3 {
		t.Errorf("iterations = %d", p.Iterations)
	}
}
