package middleware

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/reduction"
	"freerideg/internal/simgrid"
	"freerideg/internal/units"
)

// Grid is a set of simulated clusters that runs the FREERIDE-G protocol.
type Grid struct {
	clusters map[string]ClusterSpec
}

// NewGrid builds a grid from cluster specs.
func NewGrid(specs ...ClusterSpec) (*Grid, error) {
	g := &Grid{clusters: make(map[string]ClusterSpec, len(specs))}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if _, dup := g.clusters[s.Name]; dup {
			return nil, fmt.Errorf("middleware: duplicate cluster %q", s.Name)
		}
		g.clusters[s.Name] = s
	}
	return g, nil
}

// Cluster returns a registered cluster spec.
func (g *Grid) Cluster(name string) (ClusterSpec, error) {
	s, ok := g.clusters[name]
	if !ok {
		return ClusterSpec{}, fmt.Errorf("middleware: unknown cluster %q", name)
	}
	return s, nil
}

// MeasureIC returns a probe function for core.CalibrateLink: it reports
// the simulated interconnect's one-message cost for a given size, exactly
// the "experimentally determined" w and l measurement the paper prescribes.
func (g *Grid) MeasureIC(cluster string) func(units.Bytes) (time.Duration, error) {
	return func(b units.Bytes) (time.Duration, error) {
		s, err := g.Cluster(cluster)
		if err != nil {
			return 0, err
		}
		return s.ICMessageTime(b), nil
	}
}

// CacheMode selects where chunks live after the first pass.
type CacheMode int

const (
	// CacheMemory holds chunks in compute-node memory: later passes pay
	// no retrieval cost. This is the setting the paper's model assumes.
	CacheMemory CacheMode = iota
	// CacheLocalDisk spills chunks to each compute node's local disk:
	// later passes re-read them at local disk speed. This exercises the
	// middleware's "Data Caching" role when memory is insufficient.
	CacheLocalDisk
	// CacheRemote stages chunks at a non-local caching site (the
	// middleware design goal the paper's implementation deferred): later
	// passes fetch them over the network at the cache site's bandwidth,
	// normally much better than the origin repository's.
	CacheRemote
)

func (m CacheMode) String() string {
	switch m {
	case CacheMemory:
		return "memory"
	case CacheLocalDisk:
		return "local-disk"
	case CacheRemote:
		return "remote"
	}
	return fmt.Sprintf("CacheMode(%d)", int(m))
}

// CacheSpec describes the caching tier used for passes after the first.
type CacheSpec struct {
	Mode CacheMode
	// Bandwidth and Latency describe the non-local caching site's path to
	// the compute nodes (CacheRemote only).
	Bandwidth units.Rate
	Latency   time.Duration
}

// SimOptions selects middleware protocol variants for ablation studies.
// The zero value is the paper's protocol (serialized gather, synchronous
// chunk-round delivery, in-memory caching, no stragglers).
type SimOptions struct {
	// TreeGather collects reduction objects in ceil(log2 c) parallel
	// combining rounds instead of the serialized master gather the
	// paper's model assumes.
	TreeGather bool
	// AsyncDelivery removes the per-round flow control from pass 0: data
	// servers stream chunks as fast as clients drain them, letting
	// retrieval overlap computation (and breaking the additive
	// decomposition the prediction model relies on).
	AsyncDelivery bool
	// Cache selects the caching tier for passes after the first.
	Cache CacheSpec
	// StragglerNode selects the compute node slowed by StragglerFactor —
	// failure injection for robustness studies. Only meaningful when
	// StragglerFactor > 1.
	StragglerNode int
	// StragglerFactor is the slowdown of the straggler node (2 = half
	// speed). Values <= 1 disable the straggler.
	StragglerFactor float64
	// Trace, when non-nil, receives one line per middleware phase event
	// (pass boundaries, gather, global reduction) with virtual
	// timestamps — the execution log a real deployment would emit.
	Trace io.Writer
}

// trace writes one timestamped event line when tracing is enabled.
func (o SimOptions) trace(at time.Duration, format string, args ...interface{}) {
	if o.Trace == nil {
		return
	}
	fmt.Fprintf(o.Trace, "t=%-14v %s\n", at, fmt.Sprintf(format, args...))
}

func (o SimOptions) validate(c int) error {
	if o.Cache.Mode == CacheRemote && o.Cache.Bandwidth <= 0 {
		return fmt.Errorf("middleware: remote cache needs positive bandwidth")
	}
	if o.StragglerFactor > 1 && (o.StragglerNode < 0 || o.StragglerNode >= c) {
		return fmt.Errorf("middleware: straggler node %d outside 0..%d", o.StragglerNode, c-1)
	}
	return nil
}

// SimResult is the outcome of one simulated execution.
type SimResult struct {
	// Profile is the summary information the prediction framework
	// consumes (component breakdown measured on the run).
	Profile core.Profile
	// Makespan is the actual wall-clock (virtual) execution time,
	// the T_exact of the paper's error metric.
	Makespan time.Duration
}

// Simulate executes one application run on a simulated configuration,
// following the FREERIDE-G protocol:
//
//	pass 0:   compute nodes pull chunks from their storage node in
//	          synchronous chunk rounds — each node has one outstanding
//	          chunk request (disk read, then network transfer), processes
//	          the chunk, caches it, and the round completes collectively
//	          (application-level flow control);
//	passes 1+: chunks are processed from the cache;
//	each pass: per-node reduction objects are gathered serially at the
//	          master over the interconnect, the master performs the global
//	          reduction, and re-broadcasts the result.
//
// The synchronous delivery protocol is what makes the paper's additive
// decomposition T_exec = t_d + t_n + t_c hold on this middleware; the
// deviations the prediction model has to absorb come from repository
// contention (DiskAlpha), per-chunk jitter, integer chunk imbalance, the
// serialized gather/global phases, and the constant per-pass
// coordination overhead.
//
// Component times follow the paper's accounting: t_d and t_n are the
// maxima over storage nodes of disk and uplink busy time; t_c is the
// maximum per-compute-node processing time plus the serialized
// reduction-object communication and global reduction.
func (g *Grid) Simulate(cost reduction.CostModel, spec adr.DatasetSpec, cfg core.Config) (SimResult, error) {
	return g.SimulateOpts(cost, spec, cfg, SimOptions{})
}

// SimulateOpts is Simulate with explicit protocol options.
func (g *Grid) SimulateOpts(cost reduction.CostModel, spec adr.DatasetSpec, cfg core.Config, opts SimOptions) (SimResult, error) {
	if err := cost.Validate(); err != nil {
		return SimResult{}, err
	}
	if err := cfg.Validate(); err != nil {
		return SimResult{}, err
	}
	cluster, err := g.Cluster(cfg.Cluster)
	if err != nil {
		return SimResult{}, err
	}
	if cfg.DatasetBytes != spec.TotalBytes {
		return SimResult{}, fmt.Errorf("middleware: config dataset %v != spec %v", cfg.DatasetBytes, spec.TotalBytes)
	}
	layout, err := adr.Partition(spec, cfg.DataNodes, adr.RoundRobin)
	if err != nil {
		return SimResult{}, err
	}

	n, c := cfg.DataNodes, cfg.ComputeNodes
	if err := opts.validate(c); err != nil {
		return SimResult{}, err
	}
	totalElems := spec.Elems()
	effRate := cluster.CPU.EffectiveRate(cost.Mix)
	if effRate <= 0 {
		return SimResult{}, fmt.Errorf("middleware: zero effective CPU rate on %q", cfg.Cluster)
	}
	diskBW := cluster.EffectiveDiskBW(n)
	roBytes := cost.ROBytesPerNode(totalElems, c)
	gatherMsg := cluster.ICMessageTime(roBytes)
	bcastMsg := cluster.ICMessageTime(cost.BroadcastBytes)
	globalPerPass := time.Duration(cost.GlobalOps(totalElems, c)) * cluster.GlobalValueCost

	// Assign every chunk to a compute node: compute node j is served by
	// storage node j mod n; each storage node hands its chunks round-robin
	// to its clients.
	clientsOf := make([][]int, n)
	for j := 0; j < c; j++ {
		dn := j % n
		clientsOf[dn] = append(clientsOf[dn], j)
	}
	for _, cl := range clientsOf {
		sort.Ints(cl)
	}
	chunksOf := make([][]adr.Chunk, c)
	for dn := 0; dn < n; dn++ {
		clients := clientsOf[dn]
		for i, ch := range layout.NodeChunks(dn) {
			j := clients[i%len(clients)]
			chunksOf[j] = append(chunksOf[j], ch)
		}
	}

	// Deterministic per-chunk disk jitter.
	jrng := rand.New(rand.NewSource(spec.Seed*1000003 + int64(n)*31 + int64(c)))
	jitter := make([]float64, len(layout.Chunks()))
	for i := range jitter {
		jitter[i] = 1 + cluster.JitterAmp*(2*jrng.Float64()-1)
	}

	eng := simgrid.NewEngine()
	// Each storage node runs a single-threaded data server: one chunk's
	// disk read and network send are serviced as one unit, so a node's
	// retrieval and communication work never overlap — the behavior that
	// makes the paper's additive decomposition hold.
	servers := make([]*simgrid.Resource, n)
	diskBusy := make([]time.Duration, n)
	netBusy := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		servers[i] = eng.NewResource(fmt.Sprintf("dataserver%d", i), 1)
	}
	ic := eng.NewResource("interconnect", 1)
	gatherBox := eng.NewMailbox("gather")
	bcastBox := make([]*simgrid.Mailbox, c)
	for j := range bcastBox {
		bcastBox[j] = eng.NewMailbox(fmt.Sprintf("bcast%d", j))
	}

	compTime := make([]time.Duration, c)
	cachedTime := make([]time.Duration, c)
	var tglobal, tsync, treeTro time.Duration
	treeRounds := 0
	for span := 1; span < c; span *= 2 {
		treeRounds++
	}

	rounds := 0
	for j := 0; j < c; j++ {
		if len(chunksOf[j]) > rounds {
			rounds = len(chunksOf[j])
		}
	}
	roundBarrier := eng.NewBarrier("round", c)
	// The reduction phase is a BSP superstep: all nodes synchronize after
	// local reduction before objects are gathered.
	passBarrier := eng.NewBarrier("pass", c)

	for j := 0; j < c; j++ {
		j := j
		dn := j % n
		eng.Spawn(fmt.Sprintf("compute%d", j), func(p *simgrid.Proc) {
			rate := effRate
			if opts.StragglerFactor > 1 && j == opts.StragglerNode {
				rate /= opts.StragglerFactor
			}
			procTime := func(ch adr.Chunk) time.Duration {
				return units.Seconds(float64(ch.Elems)*cost.OpsPerElem/rate) + cluster.ChunkOverhead
			}
			// cachedFetch charges the per-chunk retrieval cost of a pass
			// after the first, per the configured caching tier.
			cachedFetch := func(ch adr.Chunk) time.Duration {
				switch opts.Cache.Mode {
				case CacheLocalDisk:
					return cluster.DiskSeek + cluster.DiskBW.TransferTime(ch.Bytes)
				case CacheRemote:
					return opts.Cache.Latency + opts.Cache.Bandwidth.TransferTime(ch.Bytes)
				}
				return 0
			}
			for pass := 0; pass < cost.Iterations; pass++ {
				if pass == 0 {
					// Synchronous chunk rounds: retrieve, transfer,
					// process, then complete the round collectively.
					for k := 0; k < rounds; k++ {
						if k < len(chunksOf[j]) {
							ch := chunksOf[j][k]
							read := time.Duration(float64(cluster.DiskSeek+diskBW.TransferTime(ch.Bytes)) * jitter[ch.Index])
							send := cluster.NetLatency + cfg.Bandwidth.TransferTime(ch.Bytes)
							p.Acquire(servers[dn])
							p.Wait(read)
							p.Wait(send)
							p.Release(servers[dn])
							diskBusy[dn] += read
							netBusy[dn] += send
							proc := procTime(ch)
							p.Wait(proc)
							compTime[j] += proc
						}
						if !opts.AsyncDelivery {
							p.Arrive(roundBarrier)
						}
					}
				} else {
					// Cached passes: retrieval from the caching tier (free
					// for in-memory caching), then local processing.
					for _, ch := range chunksOf[j] {
						if fetch := cachedFetch(ch); fetch > 0 {
							p.Wait(fetch)
							cachedTime[j] += fetch
						}
						proc := procTime(ch)
						p.Wait(proc)
						compTime[j] += proc
					}
				}
				p.Arrive(passBarrier)
				if j != 0 {
					// Gather: send this node's reduction object to the
					// master — serialized over the interconnect, or as
					// part of a combining tree under the ablation option.
					if !opts.TreeGather {
						p.Use(ic, gatherMsg)
					}
					gatherBox.Put(j)
					// Wait for the master's result broadcast.
					p.Get(bcastBox[j])
					continue
				}
				// Master: await all worker objects, reduce globally,
				// coordinate the next pass, re-broadcast.
				opts.trace(p.Now(), "pass=%d local reduction complete on master", pass)
				for w := 1; w < c; w++ {
					p.Get(gatherBox)
				}
				opts.trace(p.Now(), "pass=%d gathered %d reduction objects (%v each)", pass, c-1, roBytes)
				if opts.TreeGather && c > 1 {
					d := time.Duration(treeRounds) * gatherMsg
					p.Wait(d)
					treeTro += d
				}
				p.Wait(globalPerPass)
				tglobal += globalPerPass
				opts.trace(p.Now(), "pass=%d global reduction done (%v)", pass, globalPerPass)
				p.Wait(cluster.IterSync)
				tsync += cluster.IterSync
				if opts.TreeGather && c > 1 {
					d := time.Duration(treeRounds) * bcastMsg
					p.Wait(d)
					treeTro += d
					for w := 1; w < c; w++ {
						bcastBox[w].Put(pass)
					}
				} else {
					for w := 1; w < c; w++ {
						p.Use(ic, bcastMsg)
						bcastBox[w].Put(pass)
					}
				}
				opts.trace(p.Now(), "pass=%d results broadcast to %d workers", pass, c-1)
			}
		})
	}
	opts.trace(0, "run=%s config=%v chunks=%d iterations=%d", cost.Name, cfg, len(layout.Chunks()), cost.Iterations)
	if err := eng.Run(); err != nil {
		return SimResult{}, fmt.Errorf("middleware: simulation of %s on %v: %w", cost.Name, cfg, err)
	}
	opts.trace(eng.Now(), "run=%s complete makespan=%v", cost.Name, eng.Now())

	maxDur := func(ds []time.Duration) time.Duration {
		var m time.Duration
		for _, d := range ds {
			if d > m {
				m = d
			}
		}
		return m
	}
	tro := ic.BusyTime() + treeTro
	cached := maxDur(cachedTime)
	profile := core.Profile{
		App:    cost.Name,
		Config: cfg,
		Breakdown: core.Breakdown{
			Tdisk:    maxDur(diskBusy) + cached,
			Tnetwork: maxDur(netBusy),
			Tcompute: maxDur(compTime) + tro + tglobal + tsync,
		},
		TdiskCached:    cached,
		Tro:            tro,
		Tglobal:        tglobal,
		ROBytesPerNode: roBytes,
		BroadcastBytes: cost.BroadcastBytes,
		Iterations:     cost.Iterations,
	}
	if err := profile.Validate(); err != nil {
		return SimResult{}, fmt.Errorf("middleware: simulation produced invalid profile: %w", err)
	}
	return SimResult{Profile: profile, Makespan: eng.Now()}, nil
}
