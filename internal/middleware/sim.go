package middleware

import (
	"fmt"
	"math/rand"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/reduction"
	"freerideg/internal/simgrid"
	"freerideg/internal/units"
)

// Grid is a set of simulated clusters that runs the FREERIDE-G protocol.
type Grid struct {
	clusters map[string]ClusterSpec
}

// NewGrid builds a grid from cluster specs.
func NewGrid(specs ...ClusterSpec) (*Grid, error) {
	g := &Grid{clusters: make(map[string]ClusterSpec, len(specs))}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if _, dup := g.clusters[s.Name]; dup {
			return nil, fmt.Errorf("middleware: duplicate cluster %q", s.Name)
		}
		g.clusters[s.Name] = s
	}
	return g, nil
}

// Cluster returns a registered cluster spec.
func (g *Grid) Cluster(name string) (ClusterSpec, error) {
	s, ok := g.clusters[name]
	if !ok {
		return ClusterSpec{}, fmt.Errorf("middleware: unknown cluster %q", name)
	}
	return s, nil
}

// MeasureIC returns a probe function for core.CalibrateLink: it reports
// the simulated interconnect's one-message cost for a given size, exactly
// the "experimentally determined" w and l measurement the paper prescribes.
func (g *Grid) MeasureIC(cluster string) func(units.Bytes) (time.Duration, error) {
	return func(b units.Bytes) (time.Duration, error) {
		s, err := g.Cluster(cluster)
		if err != nil {
			return 0, err
		}
		return s.ICMessageTime(b), nil
	}
}

// CacheMode selects where chunks live after the first pass.
type CacheMode int

const (
	// CacheMemory holds chunks in compute-node memory: later passes pay
	// no retrieval cost. This is the setting the paper's model assumes.
	CacheMemory CacheMode = iota
	// CacheLocalDisk spills chunks to each compute node's local disk:
	// later passes re-read them at local disk speed. This exercises the
	// middleware's "Data Caching" role when memory is insufficient.
	CacheLocalDisk
	// CacheRemote stages chunks at a non-local caching site (the
	// middleware design goal the paper's implementation deferred): later
	// passes fetch them over the network at the cache site's bandwidth,
	// normally much better than the origin repository's.
	CacheRemote
)

func (m CacheMode) String() string {
	switch m {
	case CacheMemory:
		return "memory"
	case CacheLocalDisk:
		return "local-disk"
	case CacheRemote:
		return "remote"
	}
	return fmt.Sprintf("CacheMode(%d)", int(m))
}

// CacheSpec describes the caching tier used for passes after the first.
type CacheSpec struct {
	Mode CacheMode
	// Bandwidth and Latency describe the non-local caching site's path to
	// the compute nodes (CacheRemote only).
	Bandwidth units.Rate
	Latency   time.Duration
}

// SimOptions selects middleware protocol variants for ablation studies.
// The zero value is the paper's protocol (serialized gather, synchronous
// chunk-round delivery, in-memory caching, no stragglers).
type SimOptions struct {
	// TreeGather collects reduction objects in ceil(log2 c) parallel
	// combining rounds instead of the serialized master gather the
	// paper's model assumes.
	TreeGather bool
	// AsyncDelivery removes the per-round flow control from pass 0: data
	// servers stream chunks as fast as clients drain them, letting
	// retrieval overlap computation (and breaking the additive
	// decomposition the prediction model relies on).
	AsyncDelivery bool
	// Cache selects the caching tier for passes after the first.
	Cache CacheSpec
	// StragglerNode selects the compute node slowed by StragglerFactor —
	// failure injection for robustness studies. Only meaningful when
	// StragglerFactor > 1.
	StragglerNode int
	// StragglerFactor is the slowdown of the straggler node (2 = half
	// speed). Values <= 1 disable the straggler.
	StragglerFactor float64
	// Trace, when non-nil, receives one structured Event per middleware
	// phase (run boundaries, per-pass retrieval/delivery/local-reduce/
	// gather/global-reduce/sync/broadcast) with virtual timestamps — the
	// execution log a real deployment would emit. Use NewTextSink,
	// NewJSONSink, or NewCollector.
	Trace Sink
}

func (o SimOptions) validate(c int) error {
	if o.Cache.Mode == CacheRemote && o.Cache.Bandwidth <= 0 {
		return fmt.Errorf("middleware: remote cache needs positive bandwidth")
	}
	if o.StragglerFactor > 1 && (o.StragglerNode < 0 || o.StragglerNode >= c) {
		return fmt.Errorf("middleware: straggler node %d outside 0..%d", o.StragglerNode, c-1)
	}
	return nil
}

// SimResult is the outcome of one simulated execution.
type SimResult struct {
	// Profile is the summary information the prediction framework
	// consumes (component breakdown measured on the run).
	Profile core.Profile
	// Makespan is the actual wall-clock (virtual) execution time,
	// the T_exact of the paper's error metric.
	Makespan time.Duration
}

// Simulate executes one application run on a simulated configuration,
// following the FREERIDE-G protocol (see Pipeline for the canonical
// phase sequence):
//
//	pass 0:   compute nodes pull chunks from their storage node in
//	          synchronous chunk rounds — each node has one outstanding
//	          chunk request (disk read, then network transfer), processes
//	          the chunk, caches it, and the round completes collectively
//	          (application-level flow control);
//	passes 1+: chunks are processed from the cache;
//	each pass: per-node reduction objects are gathered serially at the
//	          master over the interconnect, the master performs the global
//	          reduction, and re-broadcasts the result.
//
// The synchronous delivery protocol is what makes the paper's additive
// decomposition T_exec = t_d + t_n + t_c hold on this middleware; the
// deviations the prediction model has to absorb come from repository
// contention (DiskAlpha), per-chunk jitter, integer chunk imbalance, the
// serialized gather/global phases, and the constant per-pass
// coordination overhead.
//
// Component times follow the paper's accounting: t_d and t_n are the
// maxima over storage nodes of disk and uplink busy time; t_c is the
// maximum per-compute-node processing time plus the serialized
// reduction-object communication and global reduction.
func (g *Grid) Simulate(cost reduction.CostModel, spec adr.DatasetSpec, cfg core.Config) (SimResult, error) {
	return g.SimulateOpts(cost, spec, cfg, SimOptions{})
}

// SimulateOpts is Simulate with explicit protocol options.
func (g *Grid) SimulateOpts(cost reduction.CostModel, spec adr.DatasetSpec, cfg core.Config, opts SimOptions) (SimResult, error) {
	if err := cost.Validate(); err != nil {
		return SimResult{}, err
	}
	if err := cfg.Validate(); err != nil {
		return SimResult{}, err
	}
	cluster, err := g.Cluster(cfg.Cluster)
	if err != nil {
		return SimResult{}, err
	}
	if cfg.DatasetBytes != spec.TotalBytes {
		return SimResult{}, fmt.Errorf("middleware: config dataset %v != spec %v", cfg.DatasetBytes, spec.TotalBytes)
	}
	layout, err := adr.Partition(spec, cfg.DataNodes, adr.RoundRobin)
	if err != nil {
		return SimResult{}, err
	}
	if err := opts.validate(cfg.ComputeNodes); err != nil {
		return SimResult{}, err
	}

	ex, err := newSimExecutor(cluster, cost, cfg, spec, layout, opts)
	if err != nil {
		return SimResult{}, err
	}
	pl := NewPipeline(ex, opts.Trace)
	ex.eng.Spawn("master", func(p *simgrid.Proc) {
		ex.p = p
		if err := pl.Run(); err != nil {
			p.Fail(err)
		}
	})
	ex.spawnWorkers()
	if err := ex.eng.Run(); err != nil {
		return SimResult{}, fmt.Errorf("middleware: simulation of %s on %v: %w", cost.Name, cfg, err)
	}

	profile := pl.Breakdown().Profile(cost.Name, cfg, ex.roBytes, cost.BroadcastBytes, pl.Iterations())
	if err := profile.Validate(); err != nil {
		return SimResult{}, fmt.Errorf("middleware: simulation produced invalid profile: %w", err)
	}
	return SimResult{Profile: profile, Makespan: ex.eng.Now()}, nil
}

// simExecutor runs the protocol on simgrid's virtual hardware. Worker
// processes (one per compute node) perform chunk retrieval, delivery,
// and local reduction; the pipeline runs inside a dedicated master
// process whose stage methods coordinate them through mailboxes, exactly
// as the paper's master node does over the interconnect.
type simExecutor struct {
	eng     *simgrid.Engine
	p       *simgrid.Proc // master process, set at spawn
	cluster ClusterSpec
	cost    reduction.CostModel
	opts    SimOptions

	n, c      int
	passes    int
	effRate   float64
	diskBW    units.Rate
	bandwidth units.Rate

	roBytes       units.Bytes
	gatherMsg     time.Duration
	bcastMsg      time.Duration
	globalPerPass time.Duration
	treeRounds    int

	chunksOf [][]adr.Chunk
	jitter   []float64
	rounds   int

	servers     []*simgrid.Resource
	ic          *simgrid.Resource
	readyBox    *simgrid.Mailbox
	gatherBox   *simgrid.Mailbox
	bcastBox    []*simgrid.Mailbox
	roundBarr   *simgrid.Barrier
	passBarrier *simgrid.Barrier

	// Per-node busy-time accounting, written by worker processes and read
	// by the master between passes (simgrid runs exactly one process at a
	// time, and the pass barrier orders the accesses).
	diskBusy   []time.Duration
	netBusy    []time.Duration
	compTime   []time.Duration
	cachedTime []time.Duration

	// gatherStage/broadcastStage are the pluggable ablation stages:
	// serialized master gather/broadcast (the paper's protocol) or the
	// combining-tree variant.
	gatherStage    func() time.Duration
	broadcastStage func(pass int) time.Duration
}

func newSimExecutor(cluster ClusterSpec, cost reduction.CostModel, cfg core.Config,
	spec adr.DatasetSpec, layout *adr.Layout, opts SimOptions) (*simExecutor, error) {
	n, c := cfg.DataNodes, cfg.ComputeNodes
	effRate := cluster.CPU.EffectiveRate(cost.Mix)
	if effRate <= 0 {
		return nil, fmt.Errorf("middleware: zero effective CPU rate on %q", cfg.Cluster)
	}
	totalElems := spec.Elems()
	ex := &simExecutor{
		eng:           simgrid.NewEngine(),
		cluster:       cluster,
		cost:          cost,
		opts:          opts,
		n:             n,
		c:             c,
		passes:        cost.Iterations,
		effRate:       effRate,
		diskBW:        cluster.EffectiveDiskBW(n),
		bandwidth:     cfg.Bandwidth,
		roBytes:       cost.ROBytesPerNode(totalElems, c),
		globalPerPass: time.Duration(cost.GlobalOps(totalElems, c)) * cluster.GlobalValueCost,
		chunksOf:      chunksByCompute(layout, n, c),
	}
	ex.gatherMsg = cluster.ICMessageTime(ex.roBytes)
	ex.bcastMsg = cluster.ICMessageTime(cost.BroadcastBytes)
	for span := 1; span < c; span *= 2 {
		ex.treeRounds++
	}
	for j := 0; j < c; j++ {
		if len(ex.chunksOf[j]) > ex.rounds {
			ex.rounds = len(ex.chunksOf[j])
		}
	}

	// Deterministic per-chunk disk jitter.
	jrng := rand.New(rand.NewSource(spec.Seed*1000003 + int64(n)*31 + int64(c)))
	ex.jitter = make([]float64, len(layout.Chunks()))
	for i := range ex.jitter {
		ex.jitter[i] = 1 + cluster.JitterAmp*(2*jrng.Float64()-1)
	}

	// Each storage node runs a single-threaded data server: one chunk's
	// disk read and network send are serviced as one unit, so a node's
	// retrieval and communication work never overlap — the behavior that
	// makes the paper's additive decomposition hold.
	ex.servers = make([]*simgrid.Resource, n)
	for i := 0; i < n; i++ {
		ex.servers[i] = ex.eng.NewResource(fmt.Sprintf("dataserver%d", i), 1)
	}
	ex.ic = ex.eng.NewResource("interconnect", 1)
	ex.readyBox = ex.eng.NewMailbox("ready")
	ex.gatherBox = ex.eng.NewMailbox("gather")
	ex.bcastBox = make([]*simgrid.Mailbox, c)
	for j := range ex.bcastBox {
		ex.bcastBox[j] = ex.eng.NewMailbox(fmt.Sprintf("bcast%d", j))
	}
	ex.roundBarr = ex.eng.NewBarrier("round", c)
	// The reduction phase is a BSP superstep: all nodes synchronize after
	// local reduction before objects are gathered.
	ex.passBarrier = ex.eng.NewBarrier("pass", c)

	ex.diskBusy = make([]time.Duration, n)
	ex.netBusy = make([]time.Duration, n)
	ex.compTime = make([]time.Duration, c)
	ex.cachedTime = make([]time.Duration, c)

	if opts.TreeGather && c > 1 {
		ex.gatherStage = ex.treeGather
		ex.broadcastStage = ex.treeBroadcast
	} else {
		ex.gatherStage = ex.serialGather
		ex.broadcastStage = ex.serialBroadcast
	}
	return ex, nil
}

// spawnWorkers registers the per-compute-node processes. Spawn order
// fixes the deterministic tie-breaking of simultaneous events, so the
// workers are spawned in node order (after the master).
func (ex *simExecutor) spawnWorkers() {
	for j := 0; j < ex.c; j++ {
		j := j
		ex.eng.Spawn(fmt.Sprintf("compute%d", j), func(p *simgrid.Proc) { ex.worker(p, j) })
	}
}

// worker is one compute node: per pass it performs the chunk phase
// (retrieval/delivery/processing in synchronous rounds on pass 0, cached
// processing afterwards), synchronizes on the pass barrier, hands its
// reduction object to the master, and blocks until the master's result
// broadcast releases it into the next pass.
func (ex *simExecutor) worker(p *simgrid.Proc, j int) {
	dn := j % ex.n
	rate := ex.effRate
	if ex.opts.StragglerFactor > 1 && j == ex.opts.StragglerNode {
		rate /= ex.opts.StragglerFactor
	}
	procTime := func(ch adr.Chunk) time.Duration {
		return units.Seconds(float64(ch.Elems)*ex.cost.OpsPerElem/rate) + ex.cluster.ChunkOverhead
	}
	// cachedFetch charges the per-chunk retrieval cost of a pass after
	// the first, per the configured caching tier.
	cachedFetch := func(ch adr.Chunk) time.Duration {
		switch ex.opts.Cache.Mode {
		case CacheLocalDisk:
			return ex.cluster.DiskSeek + ex.cluster.DiskBW.TransferTime(ch.Bytes)
		case CacheRemote:
			return ex.opts.Cache.Latency + ex.opts.Cache.Bandwidth.TransferTime(ch.Bytes)
		}
		return 0
	}
	for pass := 0; pass < ex.passes; pass++ {
		if pass == 0 {
			// Synchronous chunk rounds: retrieve, transfer, process, then
			// complete the round collectively.
			for k := 0; k < ex.rounds; k++ {
				if k < len(ex.chunksOf[j]) {
					ch := ex.chunksOf[j][k]
					read := time.Duration(float64(ex.cluster.DiskSeek+ex.diskBW.TransferTime(ch.Bytes)) * ex.jitter[ch.Index])
					send := ex.cluster.NetLatency + ex.bandwidth.TransferTime(ch.Bytes)
					p.Acquire(ex.servers[dn])
					p.Wait(read)
					p.Wait(send)
					p.Release(ex.servers[dn])
					ex.diskBusy[dn] += read
					ex.netBusy[dn] += send
					proc := procTime(ch)
					p.Wait(proc)
					ex.compTime[j] += proc
				}
				if !ex.opts.AsyncDelivery {
					p.Arrive(ex.roundBarr)
				}
			}
		} else {
			// Cached passes: retrieval from the caching tier (free for
			// in-memory caching), then local processing.
			for _, ch := range ex.chunksOf[j] {
				if fetch := cachedFetch(ch); fetch > 0 {
					p.Wait(fetch)
					ex.cachedTime[j] += fetch
				}
				proc := procTime(ch)
				p.Wait(proc)
				ex.compTime[j] += proc
			}
		}
		p.Arrive(ex.passBarrier)
		if j == 0 {
			// Node 0's object is already at the master; signal the pipeline
			// that the superstep's local reductions are complete.
			ex.readyBox.Put(pass)
		} else {
			// Send this node's reduction object to the master — serialized
			// over the interconnect, or as part of a combining tree under
			// the ablation option.
			if !ex.opts.TreeGather {
				p.Use(ex.ic, ex.gatherMsg)
			}
			ex.gatherBox.Put(j)
		}
		// Wait for the master's result broadcast.
		p.Get(ex.bcastBox[j])
	}
}

// Backend implements Executor.
func (ex *simExecutor) Backend() string { return "sim" }

// Workload implements Executor.
func (ex *simExecutor) Workload() string { return ex.cost.Name }

// Nodes implements Executor.
func (ex *simExecutor) Nodes() (int, int) { return ex.n, ex.c }

// Passes implements Executor.
func (ex *simExecutor) Passes() int { return ex.passes }

// Now implements Executor (virtual time).
func (ex *simExecutor) Now() time.Duration { return ex.eng.Now() }

// LocalReduction waits for every worker to finish the pass's chunk phase
// and reports the per-phase busy-time deltas, each the maximum over
// nodes per the paper's accounting.
func (ex *simExecutor) LocalReduction(pass int) (PassStats, error) {
	disk0 := snapshot(ex.diskBusy)
	net0 := snapshot(ex.netBusy)
	comp0 := snapshot(ex.compTime)
	cached0 := snapshot(ex.cachedTime)
	ex.p.Get(ex.readyBox) // posted by worker 0 at pass-barrier release
	return PassStats{
		Retrieval:   maxDelta(ex.diskBusy, disk0),
		Delivery:    maxDelta(ex.netBusy, net0),
		CachedFetch: maxDelta(ex.cachedTime, cached0),
		Compute:     maxDelta(ex.compTime, comp0),
	}, nil
}

// Gather implements Executor via the configured gather stage.
func (ex *simExecutor) Gather(int) (time.Duration, error) { return ex.gatherStage(), nil }

// serialGather awaits the c-1 serialized object transfers (the workers
// pay the interconnect cost; the stage reports the busy-time delta).
func (ex *simExecutor) serialGather() time.Duration {
	busy0 := ex.ic.BusyTime()
	for w := 1; w < ex.c; w++ {
		ex.p.Get(ex.gatherBox)
	}
	return ex.ic.BusyTime() - busy0
}

// treeGather models ceil(log2 c) parallel combining rounds.
func (ex *simExecutor) treeGather() time.Duration {
	for w := 1; w < ex.c; w++ {
		ex.p.Get(ex.gatherBox)
	}
	d := time.Duration(ex.treeRounds) * ex.gatherMsg
	ex.p.Wait(d)
	return d
}

// GlobalReduce charges the master's per-pass global reduction. The
// simulated backend runs a fixed number of passes, so it never converges
// early.
func (ex *simExecutor) GlobalReduce(int) (time.Duration, bool, error) {
	ex.p.Wait(ex.globalPerPass)
	return ex.globalPerPass, false, nil
}

// Sync charges the constant per-pass coordination overhead.
func (ex *simExecutor) Sync(int) (time.Duration, error) {
	ex.p.Wait(ex.cluster.IterSync)
	return ex.cluster.IterSync, nil
}

// Broadcast implements Executor via the configured broadcast stage.
func (ex *simExecutor) Broadcast(pass int, _ bool) (time.Duration, error) {
	return ex.broadcastStage(pass), nil
}

// serialBroadcast sends the result to each worker over the interconnect,
// serialized at the master, then releases node 0 into the next pass.
func (ex *simExecutor) serialBroadcast(pass int) time.Duration {
	busy0 := ex.ic.BusyTime()
	for w := 1; w < ex.c; w++ {
		ex.p.Use(ex.ic, ex.bcastMsg)
		ex.bcastBox[w].Put(pass)
	}
	ex.bcastBox[0].Put(pass)
	return ex.ic.BusyTime() - busy0
}

// treeBroadcast re-distributes the result through the combining tree.
func (ex *simExecutor) treeBroadcast(pass int) time.Duration {
	d := time.Duration(ex.treeRounds) * ex.bcastMsg
	ex.p.Wait(d)
	for w := 1; w < ex.c; w++ {
		ex.bcastBox[w].Put(pass)
	}
	ex.bcastBox[0].Put(pass)
	return d
}

func snapshot(ds []time.Duration) []time.Duration {
	return append([]time.Duration(nil), ds...)
}

// maxDelta reports the largest per-node increase since the snapshot.
func maxDelta(now, before []time.Duration) time.Duration {
	var m time.Duration
	for i := range now {
		if d := now[i] - before[i]; d > m {
			m = d
		}
	}
	return m
}

func maxDur(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}
