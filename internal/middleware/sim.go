package middleware

import (
	"fmt"
	"math/rand"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/reduction"
	"freerideg/internal/simgrid"
	"freerideg/internal/units"
)

// Grid is a set of simulated clusters that runs the FREERIDE-G protocol.
//
// A Grid is immutable after NewGrid and safe for concurrent use: every
// Simulate/SimulateOpts call builds its own simgrid.Engine and executor,
// so any number of simulations may run concurrently against one shared
// Grid (the bench package's parallel sweep runner does exactly that).
// Concurrent runs stay individually deterministic — each engine owns all
// of its mutable state and only reads the shared ClusterSpec values.
type Grid struct {
	clusters map[string]ClusterSpec
}

// NewGrid builds a grid from cluster specs.
func NewGrid(specs ...ClusterSpec) (*Grid, error) {
	g := &Grid{clusters: make(map[string]ClusterSpec, len(specs))}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if _, dup := g.clusters[s.Name]; dup {
			return nil, fmt.Errorf("middleware: duplicate cluster %q", s.Name)
		}
		g.clusters[s.Name] = s
	}
	return g, nil
}

// Cluster returns a registered cluster spec.
func (g *Grid) Cluster(name string) (ClusterSpec, error) {
	s, ok := g.clusters[name]
	if !ok {
		return ClusterSpec{}, fmt.Errorf("middleware: unknown cluster %q", name)
	}
	return s, nil
}

// MeasureIC returns a probe function for core.CalibrateLink: it reports
// the simulated interconnect's one-message cost for a given size, exactly
// the "experimentally determined" w and l measurement the paper prescribes.
func (g *Grid) MeasureIC(cluster string) func(units.Bytes) (time.Duration, error) {
	return func(b units.Bytes) (time.Duration, error) {
		s, err := g.Cluster(cluster)
		if err != nil {
			return 0, err
		}
		return s.ICMessageTime(b), nil
	}
}

// CacheMode selects where chunks live after the first pass.
type CacheMode int

const (
	// CacheMemory holds chunks in compute-node memory: later passes pay
	// no retrieval cost. This is the setting the paper's model assumes.
	CacheMemory CacheMode = iota
	// CacheLocalDisk spills chunks to each compute node's local disk:
	// later passes re-read them at local disk speed. This exercises the
	// middleware's "Data Caching" role when memory is insufficient.
	CacheLocalDisk
	// CacheRemote stages chunks at a non-local caching site (the
	// middleware design goal the paper's implementation deferred): later
	// passes fetch them over the network at the cache site's bandwidth,
	// normally much better than the origin repository's.
	CacheRemote
)

func (m CacheMode) String() string {
	switch m {
	case CacheMemory:
		return "memory"
	case CacheLocalDisk:
		return "local-disk"
	case CacheRemote:
		return "remote"
	}
	return fmt.Sprintf("CacheMode(%d)", int(m))
}

// CacheSpec describes the caching tier used for passes after the first.
type CacheSpec struct {
	Mode CacheMode
	// Bandwidth and Latency describe the non-local caching site's path to
	// the compute nodes (CacheRemote only).
	Bandwidth units.Rate
	Latency   time.Duration
}

// SimOptions selects middleware protocol variants for ablation studies.
// The zero value is the paper's protocol (serialized gather, synchronous
// chunk-round delivery, in-memory caching, no stragglers).
type SimOptions struct {
	// TreeGather collects reduction objects in ceil(log2 c) parallel
	// combining rounds instead of the serialized master gather the
	// paper's model assumes.
	TreeGather bool
	// AsyncDelivery removes the per-round flow control from pass 0: data
	// servers stream chunks as fast as clients drain them, letting
	// retrieval overlap computation (and breaking the additive
	// decomposition the prediction model relies on).
	AsyncDelivery bool
	// Cache selects the caching tier for passes after the first.
	Cache CacheSpec
	// StragglerNode selects the compute node slowed by StragglerFactor —
	// failure injection for robustness studies. Only meaningful when
	// StragglerFactor > 1.
	StragglerNode int
	// StragglerFactor is the slowdown of the straggler node (2 = half
	// speed). Values <= 1 disable the straggler.
	StragglerFactor float64
	// Faults, when non-nil and non-empty, injects the plan's deterministic
	// fault schedule into the run: compute-node crashes trigger failover
	// re-partitioning onto the survivors, slow disks inflate retrieval,
	// and flaky links force retried deliveries. The plan must leave at
	// least one compute node alive.
	Faults *simgrid.FaultPlan
	// Recovery tunes retry/backoff and failure detection; the zero value
	// means DefaultRecovery.
	Recovery RecoverySpec
	// Transfers, when non-nil, observes every successful repository-to-
	// compute chunk delivery: the chunk's size and the end-to-end time it
	// took (server queueing, disk read, network send, and any failed
	// attempts with their backoff). Wire it to a
	// grid.BandwidthEstimator's observation feed so replica re-selection
	// sees degraded paths.
	Transfers func(bytes units.Bytes, elapsed time.Duration)
	// Trace, when non-nil, receives one structured Event per middleware
	// phase (run boundaries, per-pass retrieval/delivery/local-reduce/
	// gather/global-reduce/sync/broadcast, plus fault/retry/failover under
	// fault injection) with virtual timestamps — the execution log a real
	// deployment would emit. Use NewTextSink, NewJSONSink, or
	// NewCollector.
	Trace Sink
}

func (o SimOptions) validate(c int) error {
	if o.Cache.Mode == CacheRemote && o.Cache.Bandwidth <= 0 {
		return fmt.Errorf("middleware: remote cache needs positive bandwidth")
	}
	if o.StragglerFactor > 1 && (o.StragglerNode < 0 || o.StragglerNode >= c) {
		return fmt.Errorf("middleware: straggler node %d outside 0..%d", o.StragglerNode, c-1)
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SimResult is the outcome of one simulated execution.
type SimResult struct {
	// Profile is the summary information the prediction framework
	// consumes (component breakdown measured on the run).
	Profile core.Profile
	// Makespan is the actual wall-clock (virtual) execution time,
	// the T_exact of the paper's error metric.
	Makespan time.Duration
	// Recovery is the run's fault-handling overhead (discarded work,
	// detection timeouts, retry backoff) and Retries its failed-delivery
	// count; both are zero on fault-free runs.
	Recovery time.Duration
	Retries  int
}

// Simulate executes one application run on a simulated configuration,
// following the FREERIDE-G protocol (see Pipeline for the canonical
// phase sequence):
//
//	pass 0:   compute nodes pull chunks from their storage node in
//	          synchronous chunk rounds — each node has one outstanding
//	          chunk request (disk read, then network transfer), processes
//	          the chunk, caches it, and the round completes collectively
//	          (application-level flow control);
//	passes 1+: chunks are processed from the cache;
//	each pass: per-node reduction objects are gathered serially at the
//	          master over the interconnect, the master performs the global
//	          reduction, and re-broadcasts the result.
//
// The synchronous delivery protocol is what makes the paper's additive
// decomposition T_exec = t_d + t_n + t_c hold on this middleware; the
// deviations the prediction model has to absorb come from repository
// contention (DiskAlpha), per-chunk jitter, integer chunk imbalance, the
// serialized gather/global phases, and the constant per-pass
// coordination overhead.
//
// Component times follow the paper's accounting: t_d and t_n are the
// maxima over storage nodes of disk and uplink busy time; t_c is the
// maximum per-compute-node processing time plus the serialized
// reduction-object communication and global reduction.
func (g *Grid) Simulate(cost reduction.CostModel, spec adr.DatasetSpec, cfg core.Config) (SimResult, error) {
	return g.SimulateOpts(cost, spec, cfg, SimOptions{})
}

// SimulateOpts is Simulate with explicit protocol options.
func (g *Grid) SimulateOpts(cost reduction.CostModel, spec adr.DatasetSpec, cfg core.Config, opts SimOptions) (SimResult, error) {
	res, _, err := g.simulateOpts(cost, spec, cfg, opts)
	return res, err
}

// simulateOpts additionally returns the executor so in-package tests can
// inspect execution-level state (e.g. per-chunk processing counts under
// fault injection).
func (g *Grid) simulateOpts(cost reduction.CostModel, spec adr.DatasetSpec, cfg core.Config, opts SimOptions) (SimResult, *simExecutor, error) {
	if err := cost.Validate(); err != nil {
		return SimResult{}, nil, err
	}
	if err := cfg.Validate(); err != nil {
		return SimResult{}, nil, err
	}
	cluster, err := g.Cluster(cfg.Cluster)
	if err != nil {
		return SimResult{}, nil, err
	}
	if cfg.DatasetBytes != spec.TotalBytes {
		return SimResult{}, nil, fmt.Errorf("middleware: config dataset %v != spec %v", cfg.DatasetBytes, spec.TotalBytes)
	}
	layout, err := adr.Partition(spec, cfg.DataNodes, adr.RoundRobin)
	if err != nil {
		return SimResult{}, nil, err
	}
	if err := opts.validate(cfg.ComputeNodes); err != nil {
		return SimResult{}, nil, err
	}

	ex, err := newSimExecutor(cluster, cost, cfg, spec, layout, opts)
	if err != nil {
		return SimResult{}, nil, err
	}
	pl := NewPipeline(ex, opts.Trace)
	ex.eng.Spawn("master", func(p *simgrid.Proc) {
		ex.p = p
		if err := pl.Run(); err != nil {
			p.Fail(err)
		}
	})
	ex.spawnWorkers()
	if err := ex.eng.Run(); err != nil {
		return SimResult{}, nil, fmt.Errorf("middleware: simulation of %s on %v: %w", cost.Name, cfg, err)
	}

	bd := pl.Breakdown()
	profile := bd.Profile(cost.Name, cfg, ex.roBytes, cost.BroadcastBytes, pl.Iterations())
	if err := profile.Validate(); err != nil {
		return SimResult{}, nil, fmt.Errorf("middleware: simulation produced invalid profile: %w", err)
	}
	return SimResult{
		Profile:  profile,
		Makespan: ex.eng.Now(),
		Recovery: bd.Recovery,
		Retries:  bd.Retries,
	}, ex, nil
}

// simExecutor runs the protocol on simgrid's virtual hardware. Worker
// processes (one per compute node) perform chunk retrieval, delivery,
// and local reduction; the pipeline runs inside a dedicated master
// process whose stage methods coordinate them through mailboxes, exactly
// as the paper's master node does over the interconnect.
type simExecutor struct {
	eng     *simgrid.Engine
	p       *simgrid.Proc // master process, set at spawn
	cluster ClusterSpec
	cost    reduction.CostModel
	opts    SimOptions

	n, c      int
	passes    int
	effRate   float64
	diskBW    units.Rate
	bandwidth units.Rate

	roBytes       units.Bytes
	gatherMsg     time.Duration
	bcastMsg      time.Duration
	globalPerPass time.Duration
	treeRounds    int

	chunksOf [][]adr.Chunk
	jitter   []float64
	rounds   int

	// Fault-injection state (nil/empty on fault-free runs).
	sched     *faultSchedule
	rec       RecoverySpec
	sink      Sink
	assign    [][][]adr.Chunk // per pass, per compute node, under failover
	wasted    [][]adr.Chunk   // per compute node: discarded work of its crash pass
	lost      []int           // per compute node: chunks re-dealt at its crash
	diskFeeds feedSet
	linkFeeds feedSet
	serveOrd  []int          // per storage node: live delivery ordinal within the pass
	cachedSet []map[int]bool // per compute node: chunk indexes in its caching tier
	recovery  []time.Duration
	retries   []int
	processed [][]int // per pass, per chunk index: times locally reduced (test hook)

	servers     []*simgrid.Resource
	ic          *simgrid.Resource
	readyBox    *simgrid.Mailbox
	gatherBox   *simgrid.Mailbox
	bcastBox    []*simgrid.Mailbox
	roundBarr   *simgrid.Barrier
	passBarrier *simgrid.Barrier

	// Per-node busy-time accounting, written by worker processes and read
	// by the master between passes (simgrid runs exactly one process at a
	// time, and the pass barrier orders the accesses).
	diskBusy   []time.Duration
	netBusy    []time.Duration
	compTime   []time.Duration
	cachedTime []time.Duration

	// gatherStage/broadcastStage are the pluggable ablation stages:
	// serialized master gather/broadcast (the paper's protocol) or the
	// combining-tree variant.
	gatherStage    func() time.Duration
	broadcastStage func(pass int) time.Duration
}

func newSimExecutor(cluster ClusterSpec, cost reduction.CostModel, cfg core.Config,
	spec adr.DatasetSpec, layout *adr.Layout, opts SimOptions) (*simExecutor, error) {
	n, c := cfg.DataNodes, cfg.ComputeNodes
	effRate := cluster.CPU.EffectiveRate(cost.Mix)
	if effRate <= 0 {
		return nil, fmt.Errorf("middleware: zero effective CPU rate on %q", cfg.Cluster)
	}
	totalElems := spec.Elems()
	ex := &simExecutor{
		eng:           simgrid.NewEngine(),
		cluster:       cluster,
		cost:          cost,
		opts:          opts,
		n:             n,
		c:             c,
		passes:        cost.Iterations,
		effRate:       effRate,
		diskBW:        cluster.EffectiveDiskBW(n),
		bandwidth:     cfg.Bandwidth,
		roBytes:       cost.ROBytesPerNode(totalElems, c),
		globalPerPass: time.Duration(cost.GlobalOps(totalElems, c)) * cluster.GlobalValueCost,
		chunksOf:      chunksByCompute(layout, n, c),
	}
	ex.gatherMsg = cluster.ICMessageTime(ex.roBytes)
	ex.bcastMsg = cluster.ICMessageTime(cost.BroadcastBytes)
	for span := 1; span < c; span *= 2 {
		ex.treeRounds++
	}
	for j := 0; j < c; j++ {
		if len(ex.chunksOf[j]) > ex.rounds {
			ex.rounds = len(ex.chunksOf[j])
		}
	}

	// Deterministic per-chunk disk jitter.
	jrng := rand.New(rand.NewSource(spec.Seed*1000003 + int64(n)*31 + int64(c)))
	ex.jitter = make([]float64, len(layout.Chunks()))
	for i := range ex.jitter {
		ex.jitter[i] = 1 + cluster.JitterAmp*(2*jrng.Float64()-1)
	}

	// Fault-injection setup: index the plan per node, precompute every
	// pass's failover assignment, and derive each crashing node's
	// discarded-work prefix. All of it is a pure function of the plan and
	// the configuration, which is what makes fault runs deterministic.
	ex.rec = opts.Recovery.withDefaults()
	ex.sched = newFaultSchedule(opts.Faults, n, c)
	ex.sink = opts.Trace
	if ex.sched != nil {
		assign, err := passAssignments(ex.chunksOf, ex.sched, ex.passes)
		if err != nil {
			return nil, err
		}
		ex.assign = assign
		ex.diskFeeds = newFeedSet(ex.sched.disk)
		ex.linkFeeds = newFeedSet(ex.sched.link)
		ex.serveOrd = make([]int, n)
		ex.recovery = make([]time.Duration, c)
		ex.retries = make([]int, c)
		ex.cachedSet = make([]map[int]bool, c)
		for j := range ex.cachedSet {
			ex.cachedSet[j] = make(map[int]bool)
		}
		ex.processed = make([][]int, ex.passes)
		for p := range ex.processed {
			ex.processed[p] = make([]int, len(layout.Chunks()))
		}
		ex.wasted = make([][]adr.Chunk, c)
		ex.lost = make([]int, c)
		for j := 0; j < c; j++ {
			cp, ck, ok := ex.sched.crashPoint(j)
			if !ok || cp >= ex.passes {
				continue
			}
			// The node's would-be list for its crash pass: its assignment
			// given the nodes already dead before that pass.
			wouldBe := ex.chunksOf
			if cp > 0 {
				wb, err := reassignDead(ex.chunksOf, ex.sched.aliveAt(cp-1))
				if err != nil {
					return nil, err
				}
				wouldBe = wb
			}
			list := wouldBe[j]
			if ck > len(list) {
				ck = len(list)
			}
			ex.wasted[j] = list[:ck]
			ex.lost[j] = len(list)
		}
		// Pass-0 rounds must cover reassignment-lengthened survivor lists
		// and pass-0 crashers' discarded prefixes.
		ex.rounds = 0
		for j := 0; j < c; j++ {
			l := len(ex.assign[0][j])
			if cp, _, ok := ex.sched.crashPoint(j); ok && cp == 0 {
				l = len(ex.wasted[j])
			}
			if l > ex.rounds {
				ex.rounds = l
			}
		}
	}

	// Each storage node runs a single-threaded data server: one chunk's
	// disk read and network send are serviced as one unit, so a node's
	// retrieval and communication work never overlap — the behavior that
	// makes the paper's additive decomposition hold.
	ex.servers = make([]*simgrid.Resource, n)
	for i := 0; i < n; i++ {
		ex.servers[i] = ex.eng.NewResource(fmt.Sprintf("dataserver%d", i), 1)
	}
	ex.ic = ex.eng.NewResource("interconnect", 1)
	ex.readyBox = ex.eng.NewMailbox("ready")
	ex.gatherBox = ex.eng.NewMailbox("gather")
	ex.bcastBox = make([]*simgrid.Mailbox, c)
	for j := range ex.bcastBox {
		ex.bcastBox[j] = ex.eng.NewMailbox(fmt.Sprintf("bcast%d", j))
	}
	ex.roundBarr = ex.eng.NewBarrier("round", c)
	// The reduction phase is a BSP superstep: all nodes synchronize after
	// local reduction before objects are gathered.
	ex.passBarrier = ex.eng.NewBarrier("pass", c)

	ex.diskBusy = make([]time.Duration, n)
	ex.netBusy = make([]time.Duration, n)
	ex.compTime = make([]time.Duration, c)
	ex.cachedTime = make([]time.Duration, c)

	if opts.TreeGather && c > 1 {
		ex.gatherStage = ex.treeGather
		ex.broadcastStage = ex.treeBroadcast
	} else {
		ex.gatherStage = ex.serialGather
		ex.broadcastStage = ex.serialBroadcast
	}
	return ex, nil
}

// spawnWorkers registers the per-compute-node processes. Spawn order
// fixes the deterministic tie-breaking of simultaneous events, so the
// workers are spawned in node order (after the master).
func (ex *simExecutor) spawnWorkers() {
	for j := 0; j < ex.c; j++ {
		j := j
		ex.eng.Spawn(fmt.Sprintf("compute%d", j), func(p *simgrid.Proc) { ex.worker(p, j) })
	}
}

// worker is one compute node: per pass it performs the chunk phase
// (retrieval/delivery/processing in synchronous rounds on pass 0, cached
// processing afterwards), synchronizes on the pass barrier, hands its
// reduction object to the master, and blocks until the master's result
// broadcast releases it into the next pass.
//
// Under fault injection a node scheduled to crash performs its
// discarded-work prefix, emits a fault event, rides out the master's
// detection timeout, and then turns into a zombie cooperator: it keeps
// arriving at the barriers and mailboxes (so the event engine's rendezvous
// counts stay intact) but does no further work and contributes no
// reduction object — its chunks run on the survivors per the precomputed
// failover assignment.
func (ex *simExecutor) worker(p *simgrid.Proc, j int) {
	dn := j % ex.n
	rate := ex.effRate
	if ex.opts.StragglerFactor > 1 && j == ex.opts.StragglerNode {
		rate /= ex.opts.StragglerFactor
	}
	procTime := func(ch adr.Chunk) time.Duration {
		return units.Seconds(float64(ch.Elems)*ex.cost.OpsPerElem/rate) + ex.cluster.ChunkOverhead
	}
	// cachedFetch charges the per-chunk retrieval cost of a pass after
	// the first, per the configured caching tier.
	cachedFetch := func(ch adr.Chunk) time.Duration {
		switch ex.opts.Cache.Mode {
		case CacheLocalDisk:
			return ex.cluster.DiskSeek + ex.cluster.DiskBW.TransferTime(ch.Bytes)
		case CacheRemote:
			return ex.opts.Cache.Latency + ex.opts.Cache.Bandwidth.TransferTime(ch.Bytes)
		}
		return 0
	}
	crashPass, _, hasCrash := ex.sched.crashPoint(j)
	if hasCrash && crashPass >= ex.passes {
		hasCrash = false // crash scheduled beyond the run never fires
	}
	for pass := 0; pass < ex.passes; pass++ {
		crashing := hasCrash && pass == crashPass
		dead := hasCrash && pass > crashPass
		var work []adr.Chunk
		switch {
		case dead:
			// zombie: no work
		case crashing:
			work = ex.wasted[j]
		case ex.sched != nil:
			work = ex.assign[pass][j]
		default:
			work = ex.chunksOf[j]
		}
		var wastedDur time.Duration
		if pass == 0 {
			// Synchronous chunk rounds: retrieve, transfer, process, then
			// complete the round collectively.
			faulted := false
			for k := 0; k < ex.rounds; k++ {
				if k < len(work) {
					ch := work[k]
					fetch := ex.fetchChunk(p, j, dn, pass, ch, crashing)
					proc := procTime(ch)
					p.Wait(proc)
					if crashing {
						wastedDur += fetch + proc
					} else {
						ex.compTime[j] += proc
						ex.markDone(pass, j, ch)
					}
				}
				if crashing && !faulted && k+1 >= len(work) {
					// The node dies right after its last completed chunk.
					ex.emitEv(p, pass, PhaseFault, j, 0, "crash")
					faulted = true
				}
				if !ex.opts.AsyncDelivery {
					p.Arrive(ex.roundBarr)
				}
			}
			if crashing && !faulted {
				ex.emitEv(p, pass, PhaseFault, j, 0, "crash")
			}
		} else if !dead {
			// Cached passes: retrieval from the caching tier (free for
			// in-memory caching), then local processing. Chunks this node
			// inherited through failover are not in its cache and must be
			// re-fetched from the repository.
			for _, ch := range work {
				var fetch time.Duration
				if ex.sched != nil && !ex.cachedSet[j][ch.Index] {
					fetch = ex.fetchChunk(p, j, dn, pass, ch, crashing)
				} else if f := cachedFetch(ch); f > 0 {
					p.Wait(f)
					fetch = f
					if !crashing {
						ex.cachedTime[j] += f
					}
				}
				proc := procTime(ch)
				p.Wait(proc)
				if crashing {
					wastedDur += fetch + proc
				} else {
					ex.compTime[j] += proc
					ex.markDone(pass, j, ch)
				}
			}
			if crashing {
				ex.emitEv(p, pass, PhaseFault, j, 0, "crash")
			}
		}
		if crashing {
			// The master notices the silent node only after its detection
			// timeout; the node's partial pass work is discarded. Both are
			// pure recovery overhead.
			p.Wait(ex.rec.DetectTimeout)
			cost := wastedDur + ex.rec.DetectTimeout
			ex.recovery[j] += cost
			mwFailovers.Inc()
			ex.emitEv(p, pass, PhaseFailover, j, cost,
				fmt.Sprintf("node %d down, %d chunks re-dealt to %d survivors",
					j, ex.lost[j], ex.sched.survivorsAt(pass)))
		}
		p.Arrive(ex.passBarrier)
		if j == 0 {
			// Node 0's object is already at the master; signal the pipeline
			// that the superstep's local reductions are complete. (A dead
			// node 0 still signals: the master's pass clock ticks regardless
			// of which nodes contributed.)
			ex.readyBox.Put(pass)
		} else {
			// Send this node's reduction object to the master — serialized
			// over the interconnect, or as part of a combining tree under
			// the ablation option. Crashed nodes have no object: they keep
			// the gather rendezvous count intact but pay no interconnect.
			if !ex.opts.TreeGather && !crashing && !dead {
				p.Use(ex.ic, ex.gatherMsg)
			}
			ex.gatherBox.Put(j)
		}
		// Wait for the master's result broadcast.
		p.Get(ex.bcastBox[j])
	}
}

// fetchChunk performs one repository chunk fetch for compute node j from
// storage node dn, riding out injected disk and link faults. Successful
// transfers charge the storage node's disk/uplink busy time (the paper's
// t_d/t_n accounting) and feed the Transfers observer with the
// end-to-end elapsed time; failed attempts and their exponential backoff
// charge the fetching node's recovery time and emit retry events. When
// wasted is true (the node is in its crash pass) nothing is charged or
// consumed here — the caller folds the returned elapsed time into the
// discarded-work total, and fault ordinals keep counting live deliveries
// only.
func (ex *simExecutor) fetchChunk(p *simgrid.Proc, j, dn, pass int, ch adr.Chunk, wasted bool) time.Duration {
	t0 := p.Now()
	baseRead := time.Duration(float64(ex.cluster.DiskSeek+ex.diskBW.TransferTime(ch.Bytes)) * ex.jitter[ch.Index])
	send := ex.cluster.NetLatency + ex.bandwidth.TransferTime(ch.Bytes)
	for attempt := 1; ; attempt++ {
		read := baseRead
		linkDown := false
		if ex.sched != nil && !wasted {
			ord := ex.serveOrd[dn]
			if f, fresh, hit := ex.diskFeeds.next(dn, pass, ord); hit {
				read = time.Duration(float64(read) * f.Factor)
				if fresh {
					ex.emitEv(p, pass, PhaseFault, dn, 0,
						fmt.Sprintf("slow-disk x%.3g on storage node %d", f.Factor, dn))
				}
			}
			if _, fresh, hit := ex.linkFeeds.next(dn, pass, ord); hit {
				linkDown = true
				if fresh {
					ex.emitEv(p, pass, PhaseFault, dn, 0,
						fmt.Sprintf("flaky-link on storage node %d", dn))
				}
			}
			ex.serveOrd[dn]++
		}
		p.Acquire(ex.servers[dn])
		p.Wait(read)
		p.Wait(send)
		p.Release(ex.servers[dn])
		if linkDown {
			if attempt > ex.rec.MaxRetries {
				p.Fail(fmt.Errorf("middleware: delivery of chunk %d from storage node %d to node %d failed after %d attempts",
					ch.Index, dn, j, attempt))
			}
			backoff := ex.rec.Backoff << (attempt - 1)
			p.Wait(backoff)
			cost := read + send + backoff
			ex.recovery[j] += cost
			ex.retries[j]++
			ex.emitEv(p, pass, PhaseRetry, j, cost,
				fmt.Sprintf("chunk %d from storage node %d, attempt %d", ch.Index, dn, attempt))
			continue
		}
		if !wasted {
			ex.diskBusy[dn] += read
			ex.netBusy[dn] += send
			if ex.opts.Transfers != nil {
				ex.opts.Transfers(ch.Bytes, p.Now()-t0)
			}
		}
		return p.Now() - t0
	}
}

// markDone records a completed local reduction of one chunk: the chunk
// enters the node's caching tier and, under fault injection, the
// exactly-once ledger.
func (ex *simExecutor) markDone(pass, j int, ch adr.Chunk) {
	if ex.sched == nil {
		return
	}
	ex.cachedSet[j][ch.Index] = true
	ex.processed[pass][ch.Index]++
}

// emitEv emits one worker-side event at the current virtual time.
func (ex *simExecutor) emitEv(p *simgrid.Proc, pass int, ph Phase, node int, dur time.Duration, detail string) {
	if ex.sink != nil {
		ex.sink.Emit(Event{At: p.Now(), Pass: pass, Phase: ph, Node: node, Dur: dur, Detail: detail})
	}
}

// Backend implements Executor.
func (ex *simExecutor) Backend() string { return "sim" }

// Workload implements Executor.
func (ex *simExecutor) Workload() string { return ex.cost.Name }

// Nodes implements Executor.
func (ex *simExecutor) Nodes() (int, int) { return ex.n, ex.c }

// Passes implements Executor.
func (ex *simExecutor) Passes() int { return ex.passes }

// Now implements Executor (virtual time).
func (ex *simExecutor) Now() time.Duration { return ex.eng.Now() }

// LocalReduction waits for every worker to finish the pass's chunk phase
// and reports the per-phase busy-time deltas, each the maximum over
// nodes per the paper's accounting.
func (ex *simExecutor) LocalReduction(pass int) (PassStats, error) {
	disk0 := snapshot(ex.diskBusy)
	net0 := snapshot(ex.netBusy)
	comp0 := snapshot(ex.compTime)
	cached0 := snapshot(ex.cachedTime)
	rec0 := snapshot(ex.recovery)
	ret0 := append([]int(nil), ex.retries...)
	ex.p.Get(ex.readyBox) // posted by worker 0 at pass-barrier release
	st := PassStats{
		Retrieval:   maxDelta(ex.diskBusy, disk0),
		Delivery:    maxDelta(ex.netBusy, net0),
		CachedFetch: maxDelta(ex.cachedTime, cached0),
		Compute:     maxDelta(ex.compTime, comp0),
	}
	// Recovery overhead and retries are summed over nodes (total
	// overhead, not a critical path).
	for i := range ex.recovery {
		st.Recovery += ex.recovery[i] - rec0[i]
		st.Retries += ex.retries[i] - ret0[i]
	}
	return st, nil
}

// Gather implements Executor via the configured gather stage.
func (ex *simExecutor) Gather(int) (time.Duration, error) { return ex.gatherStage(), nil }

// serialGather awaits the c-1 serialized object transfers (the workers
// pay the interconnect cost; the stage reports the busy-time delta).
func (ex *simExecutor) serialGather() time.Duration {
	busy0 := ex.ic.BusyTime()
	for w := 1; w < ex.c; w++ {
		ex.p.Get(ex.gatherBox)
	}
	return ex.ic.BusyTime() - busy0
}

// treeGather models ceil(log2 c) parallel combining rounds.
func (ex *simExecutor) treeGather() time.Duration {
	for w := 1; w < ex.c; w++ {
		ex.p.Get(ex.gatherBox)
	}
	d := time.Duration(ex.treeRounds) * ex.gatherMsg
	ex.p.Wait(d)
	return d
}

// GlobalReduce charges the master's per-pass global reduction. The
// simulated backend runs a fixed number of passes, so it never converges
// early.
func (ex *simExecutor) GlobalReduce(int) (time.Duration, bool, error) {
	ex.p.Wait(ex.globalPerPass)
	return ex.globalPerPass, false, nil
}

// Sync charges the constant per-pass coordination overhead.
func (ex *simExecutor) Sync(int) (time.Duration, error) {
	ex.p.Wait(ex.cluster.IterSync)
	return ex.cluster.IterSync, nil
}

// Broadcast implements Executor via the configured broadcast stage.
// With faults active it also resets the storage nodes' per-pass delivery
// ordinals before releasing the workers into the next pass (all workers
// are parked on their broadcast mailboxes at this point, so the reset is
// ordered before any next-pass delivery).
func (ex *simExecutor) Broadcast(pass int, _ bool) (time.Duration, error) {
	for i := range ex.serveOrd {
		ex.serveOrd[i] = 0
	}
	return ex.broadcastStage(pass), nil
}

// serialBroadcast sends the result to each worker over the interconnect,
// serialized at the master, then releases node 0 into the next pass.
func (ex *simExecutor) serialBroadcast(pass int) time.Duration {
	busy0 := ex.ic.BusyTime()
	for w := 1; w < ex.c; w++ {
		ex.p.Use(ex.ic, ex.bcastMsg)
		ex.bcastBox[w].Put(pass)
	}
	ex.bcastBox[0].Put(pass)
	return ex.ic.BusyTime() - busy0
}

// treeBroadcast re-distributes the result through the combining tree.
func (ex *simExecutor) treeBroadcast(pass int) time.Duration {
	d := time.Duration(ex.treeRounds) * ex.bcastMsg
	ex.p.Wait(d)
	for w := 1; w < ex.c; w++ {
		ex.bcastBox[w].Put(pass)
	}
	ex.bcastBox[0].Put(pass)
	return d
}

func snapshot(ds []time.Duration) []time.Duration {
	return append([]time.Duration(nil), ds...)
}

// maxDelta reports the largest per-node increase since the snapshot.
func maxDelta(now, before []time.Duration) time.Duration {
	var m time.Duration
	for i := range now {
		if d := now[i] - before[i]; d > m {
			m = d
		}
	}
	return m
}

func maxDur(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}
