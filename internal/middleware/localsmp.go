package middleware

import (
	"fmt"
	"sync"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/simgrid"
	"freerideg/internal/units"
)

// LocalOptions configures the goroutine backend's node shape: plain
// distributed-memory nodes (Threads = 1) or a cluster of SMPs where each
// compute node runs several threads sharing reduction state through one
// of the FREERIDE techniques. This is the "distributed memory and shared
// memory systems, as well as cluster of SMPs, from a common high-level
// interface" capability the paper's Section 2 describes.
type LocalOptions struct {
	// Threads is the number of processing threads per compute node
	// (0 or 1 = single-threaded nodes).
	Threads int
	// Strategy selects how a node's threads share reduction state.
	Strategy ShmStrategy
	// Faults, when non-nil and non-empty, injects the plan's fault
	// schedule (same semantics as SimOptions.Faults). The goroutine
	// backends honor crash faults with real failover re-partitioning; on
	// the streaming local backend flaky links force re-materialized
	// deliveries, while the pre-materialized SMP backend treats
	// storage-tier faults as vacuous.
	Faults *simgrid.FaultPlan
	// Recovery tunes retry/backoff handling; the zero value means
	// DefaultRecovery.
	Recovery RecoverySpec
	// Trace, when non-nil, receives the run's structured phase events
	// (same schema as the simulated backend's SimOptions.Trace).
	Trace Sink
}

func (o LocalOptions) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// RunLocalSMP executes a kernel on a simulated cluster of SMPs:
// dataNodes data-server goroutines, computeNodes compute nodes each
// running opts.Threads processing threads. Within a node, threads combine
// through the chosen shared-memory strategy; across nodes, objects are
// gathered and globally reduced through the same Pipeline as every other
// backend.
func RunLocalSMP(k reduction.Kernel, spec adr.DatasetSpec, dataNodes, computeNodes int, opts LocalOptions) (LocalResult, error) {
	if opts.threads() == 1 && opts.Strategy == FullReplication {
		return runLocal(k, spec, dataNodes, computeNodes, opts)
	}
	if dataNodes < 1 || computeNodes < dataNodes {
		return LocalResult{}, fmt.Errorf("middleware: need computeNodes >= dataNodes >= 1, got %d-%d",
			dataNodes, computeNodes)
	}
	switch opts.Strategy {
	case FullReplication, FullLocking:
	default:
		return LocalResult{}, fmt.Errorf("middleware: unknown strategy %v", opts.Strategy)
	}
	if opts.Faults != nil {
		if err := opts.Faults.Validate(); err != nil {
			return LocalResult{}, err
		}
	}
	gen, err := datagen.For(spec.Kind)
	if err != nil {
		return LocalResult{}, err
	}
	layout, err := adr.Partition(spec, dataNodes, adr.RoundRobin)
	if err != nil {
		return LocalResult{}, err
	}
	fields := gen.FieldsPerElem(spec)
	var overlap int64
	if or, ok := k.(reduction.OverlapRequester); ok {
		overlap = or.OverlapElems()
	}

	// Materialize each node's chunk stream up front via the shared chunk
	// assignment (the data-server side is identical to RunLocal; the
	// interesting part here is the node's internal parallelism).
	nodePayloads := make([][]reduction.Payload, computeNodes)
	targets := chunkTargets(layout, dataNodes, computeNodes)
	for dn := 0; dn < dataNodes; dn++ {
		for i, ch := range layout.NodeChunks(dn) {
			payload := reduction.Payload{Chunk: ch, Fields: fields, Values: gen.ChunkValues(spec, ch)}
			if overlap > 0 {
				before, after, err := datagen.HaloFor(gen, spec, ch, overlap)
				if err != nil {
					return LocalResult{}, err
				}
				payload.HaloBefore, payload.HaloAfter = before, after
			}
			j := targets[dn][i]
			nodePayloads[j] = append(nodePayloads[j], payload)
		}
	}

	ex := &smpExecutor{
		k:            k,
		opts:         opts,
		n:            dataNodes,
		c:            computeNodes,
		nodePayloads: nodePayloads,
		sched:        newFaultSchedule(opts.Faults, dataNodes, computeNodes),
		incidents:    &incidentLog{},
		start:        time.Now(),
	}
	if ex.sched != nil {
		passes := k.Iterations()
		assign, err := passAssignments(nodePayloads, ex.sched, passes)
		if err != nil {
			return LocalResult{}, err
		}
		ex.assign = assign
		ex.lost = make([]int, computeNodes)
		for j := range ex.lost {
			cp, _, ok := ex.sched.crashPoint(j)
			if !ok || cp >= passes {
				continue
			}
			wouldBe := nodePayloads
			if cp > 0 {
				wb, err := reassignDead(nodePayloads, ex.sched.aliveAt(cp-1))
				if err != nil {
					return LocalResult{}, err
				}
				wouldBe = wb
			}
			ex.lost[j] = len(wouldBe[j])
		}
	}
	pl := NewPipeline(ex, opts.Trace)
	if err := pl.Run(); err != nil {
		return LocalResult{}, err
	}
	bd := pl.Breakdown()
	profile := bd.Profile(k.Name(), core.Config{
		Cluster:      LocalCluster,
		DataNodes:    dataNodes,
		ComputeNodes: computeNodes,
		Bandwidth:    units.GBPerSec, // nominal in-process "network"
		DatasetBytes: spec.TotalBytes,
	}, ex.roBytes, units.KB, pl.Iterations())
	return LocalResult{
		Profile:    profile,
		Elapsed:    time.Since(ex.start),
		Iterations: pl.Iterations(),
		Recovery:   bd.Recovery,
		Retries:    bd.Retries,
	}, nil
}

// smpExecutor runs the protocol on a cluster of SMP nodes: every compute
// node processes its (pre-materialized) chunk stream with several threads
// combining through a shared-memory strategy; across nodes the pipeline
// gathers and reduces globally exactly as on the other backends.
//
// Under fault injection, crash faults apply with real failover: a
// crashed node's payload list re-deals onto the survivors and its empty
// per-pass object drops out of the merge. Storage-tier faults
// (slow-disk, flaky-link) are vacuous here because the chunk streams are
// pre-materialized — there is no delivery to fail.
type smpExecutor struct {
	k            reduction.Kernel
	opts         LocalOptions
	n, c         int
	nodePayloads [][]reduction.Payload
	start        time.Time

	// Fault-injection state (nil/empty on fault-free runs).
	sched     *faultSchedule
	incidents *incidentLog
	assign    [][][]reduction.Payload
	lost      []int

	objs    []reduction.Object
	roBytes units.Bytes
}

// Backend implements Executor.
func (ex *smpExecutor) Backend() string { return "local-smp" }

// Workload implements Executor.
func (ex *smpExecutor) Workload() string { return ex.k.Name() }

// Nodes implements Executor.
func (ex *smpExecutor) Nodes() (int, int) { return ex.n, ex.c }

// Passes implements Executor.
func (ex *smpExecutor) Passes() int { return ex.k.Iterations() }

// Now implements Executor (wall time since run start).
func (ex *smpExecutor) Now() time.Duration { return time.Since(ex.start) }

// LocalReduction runs one pass on every SMP node concurrently; within a
// node, threads share reduction state per the configured strategy. Under
// fault injection the pass's failover assignment decides each node's
// payload list (empty from a node's crash pass on: the node's fresh
// object stays the merge identity, exactly a lost contribution).
func (ex *smpExecutor) LocalReduction(pass int) (PassStats, error) {
	ex.objs = make([]reduction.Object, ex.c)
	nodeTime := make([]time.Duration, ex.c)
	var nodeWG sync.WaitGroup
	errs := make(chan error, ex.c)
	for j := 0; j < ex.c; j++ {
		j := j
		nodeWG.Add(1)
		go func() {
			defer nodeWG.Done()
			work := ex.nodePayloads[j]
			if ex.sched != nil {
				work = ex.assign[pass][j]
			}
			t0 := time.Now()
			var obj reduction.Object
			var err error
			switch ex.opts.Strategy {
			case FullReplication:
				obj, err = shmReplicated(ex.k, work, ex.opts.threads())
			case FullLocking:
				obj, err = shmLocked(ex.k, work, ex.opts.threads())
			}
			nodeTime[j] = time.Since(t0)
			if err != nil {
				errs <- err
				return
			}
			ex.objs[j] = obj
		}()
	}
	nodeWG.Wait()
	select {
	case err := <-errs:
		return PassStats{}, err
	default:
	}
	st := PassStats{Compute: maxDur(nodeTime)}
	if ex.sched != nil {
		for j := 0; j < ex.c; j++ {
			if cp, _, ok := ex.sched.crashPoint(j); ok && cp == pass {
				ex.incidents.add(Event{Pass: pass, Phase: PhaseFault, Node: j, Detail: "crash"})
				ex.incidents.add(Event{Pass: pass, Phase: PhaseFailover, Node: j,
					Detail: fmt.Sprintf("node %d down, %d chunks re-dealt to %d survivors",
						j, ex.lost[j], ex.sched.survivorsAt(pass))})
			}
		}
		rec, retr := ex.incidents.drain(ex.opts.Trace, ex.Now())
		st.Recovery += rec
		st.Retries += retr
	}
	return st, nil
}

// Gather merges the per-node objects into the master's.
func (ex *smpExecutor) Gather(int) (time.Duration, error) {
	t0 := time.Now()
	for j := 0; j < ex.c; j++ {
		if ex.objs[j].Bytes() > ex.roBytes {
			ex.roBytes = ex.objs[j].Bytes()
		}
	}
	for j := 1; j < ex.c; j++ {
		if err := ex.objs[0].Merge(ex.objs[j]); err != nil {
			return 0, fmt.Errorf("merge: %w", err)
		}
	}
	return time.Since(t0), nil
}

// GlobalReduce runs the kernel's global reduction on the merged object.
func (ex *smpExecutor) GlobalReduce(int) (time.Duration, bool, error) {
	t0 := time.Now()
	done, err := ex.k.GlobalReduce(ex.objs[0])
	return time.Since(t0), done, err
}

// Sync implements Executor; no per-pass coordination cost in-process.
func (ex *smpExecutor) Sync(int) (time.Duration, error) { return 0, nil }

// Broadcast implements Executor; re-distribution is free in-process.
func (ex *smpExecutor) Broadcast(int, bool) (time.Duration, error) { return 0, nil }
