package middleware

import (
	"fmt"
	"sync"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
)

// LocalOptions configures the goroutine backend's node shape: plain
// distributed-memory nodes (Threads = 1) or a cluster of SMPs where each
// compute node runs several threads sharing reduction state through one
// of the FREERIDE techniques. This is the "distributed memory and shared
// memory systems, as well as cluster of SMPs, from a common high-level
// interface" capability the paper's Section 2 describes.
type LocalOptions struct {
	// Threads is the number of processing threads per compute node
	// (0 or 1 = single-threaded nodes).
	Threads int
	// Strategy selects how a node's threads share reduction state.
	Strategy ShmStrategy
}

func (o LocalOptions) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// RunLocalSMP executes a kernel on a simulated cluster of SMPs:
// dataNodes data-server goroutines, computeNodes compute nodes each
// running opts.Threads processing threads. Within a node, threads combine
// through the chosen shared-memory strategy; across nodes, objects are
// gathered and globally reduced exactly as in RunLocal.
func RunLocalSMP(k reduction.Kernel, spec adr.DatasetSpec, dataNodes, computeNodes int, opts LocalOptions) (LocalResult, error) {
	if opts.threads() == 1 && opts.Strategy == FullReplication {
		return RunLocal(k, spec, dataNodes, computeNodes)
	}
	if dataNodes < 1 || computeNodes < dataNodes {
		return LocalResult{}, fmt.Errorf("middleware: need computeNodes >= dataNodes >= 1, got %d-%d",
			dataNodes, computeNodes)
	}
	switch opts.Strategy {
	case FullReplication, FullLocking:
	default:
		return LocalResult{}, fmt.Errorf("middleware: unknown strategy %v", opts.Strategy)
	}
	gen, err := datagen.For(spec.Kind)
	if err != nil {
		return LocalResult{}, err
	}
	layout, err := adr.Partition(spec, dataNodes, adr.RoundRobin)
	if err != nil {
		return LocalResult{}, err
	}
	fields := gen.FieldsPerElem(spec)
	var overlap int64
	if or, ok := k.(reduction.OverlapRequester); ok {
		overlap = or.OverlapElems()
	}

	// Materialize each node's chunk stream up front (the data-server side
	// is identical to RunLocal; the interesting part here is the node's
	// internal parallelism).
	nodePayloads := make([][]reduction.Payload, computeNodes)
	for dn := 0; dn < dataNodes; dn++ {
		var clients []int
		for j := 0; j < computeNodes; j++ {
			if j%dataNodes == dn {
				clients = append(clients, j)
			}
		}
		for i, ch := range layout.NodeChunks(dn) {
			payload := reduction.Payload{Chunk: ch, Fields: fields, Values: gen.ChunkValues(spec, ch)}
			if overlap > 0 {
				before, after, err := datagen.HaloFor(gen, spec, ch, overlap)
				if err != nil {
					return LocalResult{}, err
				}
				payload.HaloBefore, payload.HaloAfter = before, after
			}
			j := clients[i%len(clients)]
			nodePayloads[j] = append(nodePayloads[j], payload)
		}
	}

	start := time.Now()
	iterations := 0
	for pass := 0; pass < k.Iterations(); pass++ {
		iterations++
		objs := make([]reduction.Object, computeNodes)
		var nodeWG sync.WaitGroup
		errs := make(chan error, computeNodes)
		for j := 0; j < computeNodes; j++ {
			j := j
			nodeWG.Add(1)
			go func() {
				defer nodeWG.Done()
				var obj reduction.Object
				var err error
				switch opts.Strategy {
				case FullReplication:
					obj, err = shmReplicated(k, nodePayloads[j], opts.threads())
				case FullLocking:
					obj, err = shmLocked(k, nodePayloads[j], opts.threads())
				}
				if err != nil {
					errs <- err
					return
				}
				objs[j] = obj
			}()
		}
		nodeWG.Wait()
		select {
		case err := <-errs:
			return LocalResult{}, fmt.Errorf("middleware: smp pass %d: %w", pass, err)
		default:
		}
		for j := 1; j < computeNodes; j++ {
			if err := objs[0].Merge(objs[j]); err != nil {
				return LocalResult{}, fmt.Errorf("middleware: smp gather merge: %w", err)
			}
		}
		done, err := k.GlobalReduce(objs[0])
		if err != nil {
			return LocalResult{}, fmt.Errorf("middleware: smp global reduce pass %d: %w", pass, err)
		}
		if done {
			break
		}
	}
	return LocalResult{Iterations: iterations, Elapsed: time.Since(start)}, nil
}
