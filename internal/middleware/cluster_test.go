package middleware

import (
	"math"
	"testing"
	"time"

	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

func TestEffectiveRateBlendsMix(t *testing.T) {
	a := ArchRates{Flop: 200e6, Mem: 100e6, Branch: 100e6}
	pureFlop := a.EffectiveRate(reduction.WorkMix{Flop: 1})
	if math.Abs(pureFlop-200e6) > 1 {
		t.Fatalf("pure flop rate = %g, want 200e6", pureFlop)
	}
	half := a.EffectiveRate(reduction.WorkMix{Flop: 1, Mem: 1})
	// Harmonic blend of 200e6 and 100e6 at equal shares: 133.3e6.
	if math.Abs(half-400e6/3) > 1 {
		t.Fatalf("blended rate = %g, want 133.3e6", half)
	}
	zero := ArchRates{}
	if got := zero.EffectiveRate(reduction.WorkMix{Flop: 1}); !math.IsInf(got, 0) && got != 0 {
		// Division by zero rates yields +Inf time share -> 0 rate.
		t.Fatalf("zero arch rate = %g, want 0", got)
	}
}

func TestMixesProduceDifferentCrossClusterRatios(t *testing.T) {
	// This is the mechanism behind the paper's 0.233 vs 0.370 compute
	// factors: the two clusters speed up different mixes differently.
	p, o := PentiumMyrinet(), OpteronInfiniband()
	flopMix := reduction.WorkMix{Flop: 0.9, Mem: 0.05, Branch: 0.05}
	memMix := reduction.WorkMix{Flop: 0.1, Mem: 0.8, Branch: 0.1}
	flopRatio := p.CPU.EffectiveRate(flopMix) / o.CPU.EffectiveRate(flopMix)
	memRatio := p.CPU.EffectiveRate(memMix) / o.CPU.EffectiveRate(memMix)
	if math.Abs(flopRatio-memRatio) < 0.01 {
		t.Fatalf("flop and mem mixes scale identically (%.3f); arch rates degenerate", flopRatio)
	}
}

func TestEffectiveDiskBWContention(t *testing.T) {
	p := PentiumMyrinet()
	if p.EffectiveDiskBW(1) != p.DiskBW {
		t.Fatal("single node should see full disk bandwidth")
	}
	if p.EffectiveDiskBW(8) >= p.DiskBW {
		t.Fatal("8 nodes should see degraded per-node bandwidth")
	}
	if p.EffectiveDiskBW(0) != p.DiskBW {
		t.Fatal("n<1 should clamp to full bandwidth")
	}
}

func TestICMessageTime(t *testing.T) {
	p := PentiumMyrinet()
	small := p.ICMessageTime(0)
	if small != p.ICLatency {
		t.Fatalf("zero-byte message = %v, want latency %v", small, p.ICLatency)
	}
	big := p.ICMessageTime(100 * units.MB)
	want := p.ICLatency + time.Second // 100MB at 100MB/s
	if d := big - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("100MB message = %v, want ~%v", big, want)
	}
}

func TestClusterSpecValidate(t *testing.T) {
	good := PentiumMyrinet()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*ClusterSpec){
		func(c *ClusterSpec) { c.Name = "" },
		func(c *ClusterSpec) { c.CPU.Flop = 0 },
		func(c *ClusterSpec) { c.CPU.Mem = -1 },
		func(c *ClusterSpec) { c.DiskBW = 0 },
		func(c *ClusterSpec) { c.ICBandwidth = 0 },
		func(c *ClusterSpec) { c.DiskAlpha = -0.1 },
		func(c *ClusterSpec) { c.JitterAmp = -0.1 },
	}
	for i, mutate := range cases {
		c := PentiumMyrinet()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPredefinedClustersOrdered(t *testing.T) {
	// The Opteron cluster must be faster than the Pentium one in every
	// dimension the paper's experiments depend on.
	p, o := PentiumMyrinet(), OpteronInfiniband()
	if o.CPU.Flop <= p.CPU.Flop || o.CPU.Mem <= p.CPU.Mem || o.CPU.Branch <= p.CPU.Branch {
		t.Error("Opteron CPU not faster")
	}
	if o.DiskBW <= p.DiskBW {
		t.Error("Opteron disks not faster")
	}
	if o.ICLatency >= p.ICLatency || o.ICBandwidth <= p.ICBandwidth {
		t.Error("Infiniband interconnect not faster than Myrinet")
	}
	if p.Name == o.Name {
		t.Error("clusters share a name")
	}
}
