package middleware

import (
	"fmt"
	"sync"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
)

// ShmStrategy selects how threads of one SMP compute node share reduction
// state — the FREERIDE shared-memory parallelization techniques the
// middleware inherits (Jin & Agrawal, TKDE 2005), which let the same
// kernel run on distributed memory, shared memory, and clusters of SMPs.
type ShmStrategy int

const (
	// FullReplication gives every thread a private reduction object;
	// objects are merged after the pass. No synchronization during
	// processing, at the cost of one object copy per thread.
	FullReplication ShmStrategy = iota
	// FullLocking shares one reduction object per node behind a single
	// lock; threads serialize their updates. Minimal memory, maximal
	// contention.
	FullLocking
)

func (s ShmStrategy) String() string {
	switch s {
	case FullReplication:
		return "full-replication"
	case FullLocking:
		return "full-locking"
	}
	return fmt.Sprintf("ShmStrategy(%d)", int(s))
}

// ShmResult is the outcome of one shared-memory (single SMP node) run.
type ShmResult struct {
	// Elapsed is the wall-clock duration of the processing passes.
	Elapsed time.Duration
	// Iterations is the number of passes performed.
	Iterations int
	// Threads is the thread count used.
	Threads int
	// Strategy is the technique used.
	Strategy ShmStrategy
}

// RunShm executes a kernel on one simulated SMP node with the given
// number of threads and sharing strategy, processing materialized chunks
// through the shared Pipeline (with the cross-node gather and broadcast
// phases degenerate on a single node). It exercises the same Kernel
// interface as the distributed backends: the associativity/commutativity
// contract of reduction objects is exactly what makes all strategies
// compute the same result.
func RunShm(k reduction.Kernel, spec adr.DatasetSpec, threads int, strategy ShmStrategy) (ShmResult, error) {
	return runShm(k, spec, threads, strategy, nil)
}

// RunShmOpts is RunShm accepting the shared LocalOptions, for API
// uniformity across backends. A single SMP node has no storage tier to
// degrade and no peers to fail over to, so slow-disk and flaky-link
// faults are vacuous here; a plan that crashes the node is rejected (it
// would leave no compute node alive).
func RunShmOpts(k reduction.Kernel, spec adr.DatasetSpec, threads int, strategy ShmStrategy, opts LocalOptions) (ShmResult, error) {
	if opts.Faults != nil {
		if err := opts.Faults.Validate(); err != nil {
			return ShmResult{}, err
		}
		for _, n := range opts.Faults.CrashedNodes() {
			if n == 0 {
				return ShmResult{}, fmt.Errorf("middleware: fault plan leaves no compute node alive")
			}
		}
	}
	return runShm(k, spec, threads, strategy, opts.Trace)
}

func runShm(k reduction.Kernel, spec adr.DatasetSpec, threads int, strategy ShmStrategy, sink Sink) (ShmResult, error) {
	if threads < 1 {
		return ShmResult{}, fmt.Errorf("middleware: need >= 1 thread, got %d", threads)
	}
	switch strategy {
	case FullReplication, FullLocking:
	default:
		return ShmResult{}, fmt.Errorf("middleware: unknown strategy %v", strategy)
	}
	gen, err := datagen.For(spec.Kind)
	if err != nil {
		return ShmResult{}, err
	}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		return ShmResult{}, err
	}
	fields := gen.FieldsPerElem(spec)
	var overlap int64
	if or, ok := k.(reduction.OverlapRequester); ok {
		overlap = or.OverlapElems()
	}
	payloads := make([]reduction.Payload, 0, len(layout.Chunks()))
	for _, ch := range layout.Chunks() {
		payload := reduction.Payload{
			Chunk:  ch,
			Fields: fields,
			Values: gen.ChunkValues(spec, ch),
		}
		if overlap > 0 {
			before, after, err := datagen.HaloFor(gen, spec, ch, overlap)
			if err != nil {
				return ShmResult{}, err
			}
			payload.HaloBefore, payload.HaloAfter = before, after
		}
		payloads = append(payloads, payload)
	}

	ex := &shmExecutor{
		k:        k,
		threads:  threads,
		strategy: strategy,
		payloads: payloads,
		start:    time.Now(),
	}
	pl := NewPipeline(ex, sink)
	if err := pl.Run(); err != nil {
		return ShmResult{}, err
	}
	return ShmResult{
		Elapsed:    time.Since(ex.start),
		Iterations: pl.Iterations(),
		Threads:    threads,
		Strategy:   strategy,
	}, nil
}

// shmExecutor runs the protocol on one SMP node: threads combine through
// the chosen strategy during local reduction; the cross-node phases are
// degenerate (the merged object is already at the master).
type shmExecutor struct {
	k        reduction.Kernel
	threads  int
	strategy ShmStrategy
	payloads []reduction.Payload
	start    time.Time

	merged reduction.Object
}

// Backend implements Executor.
func (ex *shmExecutor) Backend() string { return "shm" }

// Workload implements Executor.
func (ex *shmExecutor) Workload() string { return ex.k.Name() }

// Nodes implements Executor: one repository, one compute node.
func (ex *shmExecutor) Nodes() (int, int) { return 1, 1 }

// Passes implements Executor.
func (ex *shmExecutor) Passes() int { return ex.k.Iterations() }

// Now implements Executor (wall time since run start).
func (ex *shmExecutor) Now() time.Duration { return time.Since(ex.start) }

// LocalReduction processes every chunk with the node's threads combining
// through the configured strategy.
func (ex *shmExecutor) LocalReduction(int) (PassStats, error) {
	t0 := time.Now()
	var err error
	switch ex.strategy {
	case FullReplication:
		ex.merged, err = shmReplicated(ex.k, ex.payloads, ex.threads)
	case FullLocking:
		ex.merged, err = shmLocked(ex.k, ex.payloads, ex.threads)
	}
	if err != nil {
		return PassStats{}, err
	}
	return PassStats{Compute: time.Since(t0)}, nil
}

// Gather implements Executor; a single node has nothing to gather.
func (ex *shmExecutor) Gather(int) (time.Duration, error) { return 0, nil }

// GlobalReduce runs the kernel's global reduction on the merged object.
func (ex *shmExecutor) GlobalReduce(int) (time.Duration, bool, error) {
	t0 := time.Now()
	done, err := ex.k.GlobalReduce(ex.merged)
	return time.Since(t0), done, err
}

// Sync implements Executor.
func (ex *shmExecutor) Sync(int) (time.Duration, error) { return 0, nil }

// Broadcast implements Executor.
func (ex *shmExecutor) Broadcast(int, bool) (time.Duration, error) { return 0, nil }

// shmReplicated: one private object per thread, merged afterwards.
func shmReplicated(k reduction.Kernel, payloads []reduction.Payload, threads int) (reduction.Object, error) {
	objs := make([]reduction.Object, threads)
	for i := range objs {
		objs[i] = k.NewObject()
	}
	errs := make(chan error, threads)
	var wg sync.WaitGroup
	var next int64
	var nextMu sync.Mutex
	take := func() int {
		nextMu.Lock()
		defer nextMu.Unlock()
		if next >= int64(len(payloads)) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				if err := k.ProcessChunk(payloads[i], objs[t]); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	for t := 1; t < threads; t++ {
		if err := objs[0].Merge(objs[t]); err != nil {
			return nil, err
		}
	}
	return objs[0], nil
}

// shmLocked: a single shared object behind one lock.
func shmLocked(k reduction.Kernel, payloads []reduction.Payload, threads int) (reduction.Object, error) {
	shared := k.NewObject()
	var mu sync.Mutex
	errs := make(chan error, threads)
	var wg sync.WaitGroup
	var next int64
	var nextMu sync.Mutex
	take := func() int {
		nextMu.Lock()
		defer nextMu.Unlock()
		if next >= int64(len(payloads)) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				mu.Lock()
				err := k.ProcessChunk(payloads[i], shared)
				mu.Unlock()
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return shared, nil
}
