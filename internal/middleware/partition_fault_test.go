package middleware

import (
	"reflect"
	"testing"

	"freerideg/internal/simgrid"
)

// equalLists compares per-node chunk lists element-wise, treating nil
// and empty lists as equal (reassignDead leaves dead and chunkless nodes
// with nil lists).
func equalLists(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for j := range a {
		if len(a[j]) != len(b[j]) {
			return false
		}
		for i := range a[j] {
			if a[j][i] != b[j][i] {
				return false
			}
		}
	}
	return true
}

func TestReassignDead(t *testing.T) {
	tests := []struct {
		name    string
		base    [][]int
		alive   []bool
		want    [][]int
		wantErr bool
	}{
		{
			name:  "single survivor inherits everything",
			base:  [][]int{{0, 3}, {1, 4}, {2, 5}},
			alive: []bool{true, false, false},
			want:  [][]int{{0, 3, 1, 4, 2, 5}, nil, nil},
		},
		{
			name:  "orphans dealt round-robin in ascending survivor order",
			base:  [][]int{{0}, {1}, {2, 3, 4}},
			alive: []bool{true, true, false},
			want:  [][]int{{0, 2, 4}, {1, 3}, nil},
		},
		{
			name:  "more nodes than chunks: empty lists reassign cleanly",
			base:  [][]int{{0}, {}, {}, {}},
			alive: []bool{false, true, true, true},
			want:  [][]int{nil, {0}, {}, {}},
		},
		{
			name:  "zero chunks everywhere",
			base:  [][]int{{}, {}},
			alive: []bool{true, false},
			want:  [][]int{{}, nil},
		},
		{
			name:  "nobody dead is the identity",
			base:  [][]int{{0, 2}, {1, 3}},
			alive: []bool{true, true},
			want:  [][]int{{0, 2}, {1, 3}},
		},
		{
			name:    "all dead is an error",
			base:    [][]int{{0}, {1}},
			alive:   []bool{false, false},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := reassignDead(tt.base, tt.alive)
			if tt.wantErr {
				if err == nil {
					t.Fatal("no error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !equalLists(got, tt.want) {
				t.Errorf("reassignDead = %v, want %v", got, tt.want)
			}
			// Survivors keep their base list as a prefix.
			for j, a := range tt.alive {
				if !a {
					continue
				}
				if len(got[j]) < len(tt.base[j]) || !equalLists([][]int{got[j][:len(tt.base[j])]}, [][]int{tt.base[j]}) {
					t.Errorf("survivor %d list %v does not keep base %v as prefix", j, got[j], tt.base[j])
				}
			}
		})
	}
}

// reassignDead is a pure function: repeated invocations on the same
// inputs produce the identical layout (the property every backend's
// determinism rests on), and no chunk is lost or duplicated.
func TestReassignDeadDeterministicAndLossless(t *testing.T) {
	base := [][]int{{0, 4, 8}, {1, 5}, {2, 6, 9, 10}, {3, 7}}
	alive := []bool{false, true, false, true}
	first, err := reassignDead(base, alive)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := reassignDead(base, alive)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d: %v != %v", i, again, first)
		}
	}
	seen := map[int]int{}
	for _, list := range first {
		for _, ch := range list {
			seen[ch]++
		}
	}
	for _, list := range base {
		for _, ch := range list {
			if seen[ch] != 1 {
				t.Errorf("chunk %d appears %d times after reassignment", ch, seen[ch])
			}
			delete(seen, ch)
		}
	}
	if len(seen) != 0 {
		t.Errorf("reassignment invented chunks: %v", seen)
	}
}

func TestPassAssignments(t *testing.T) {
	base := [][]int{{0, 3}, {1, 4}, {2, 5}}
	plan := simgrid.FaultPlan{Faults: []simgrid.Fault{
		{Kind: simgrid.FaultCrash, Node: 1, Pass: 1},
		{Kind: simgrid.FaultCrash, Node: 2, Pass: 3},
	}}
	sched := newFaultSchedule(&plan, 1, 3)
	if sched == nil {
		t.Fatal("schedule empty")
	}
	assign, err := passAssignments(base, sched, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Pass 0: everyone alive — the base assignment is shared untouched.
	if !equalLists(assign[0], base) {
		t.Errorf("pass 0 assignment %v, want base %v", assign[0], base)
	}
	// Passes 1-2: node 1 dead, its chunks dealt over nodes 0 and 2.
	want12 := [][]int{{0, 3, 1}, nil, {2, 5, 4}}
	for p := 1; p <= 2; p++ {
		if !equalLists(assign[p], want12) {
			t.Errorf("pass %d assignment %v, want %v", p, assign[p], want12)
		}
	}
	// Pass 3: nodes 1 and 2 dead — node 0 carries the whole dataset.
	want3 := [][]int{{0, 3, 1, 4, 2, 5}, nil, nil}
	if !equalLists(assign[3], want3) {
		t.Errorf("pass 3 assignment %v, want %v", assign[3], want3)
	}
}

func TestPassAssignmentsNilScheduleSharesBase(t *testing.T) {
	base := [][]int{{0}, {1}}
	assign, err := passAssignments(base, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for p := range assign {
		if !equalLists(assign[p], base) {
			t.Errorf("pass %d assignment %v, want base", p, assign[p])
		}
	}
}

func TestPassAssignmentsAllDeadError(t *testing.T) {
	plan := simgrid.FaultPlan{Faults: []simgrid.Fault{
		{Kind: simgrid.FaultCrash, Node: 0, Pass: 2},
		{Kind: simgrid.FaultCrash, Node: 1, Pass: 1},
	}}
	sched := newFaultSchedule(&plan, 1, 2)
	if _, err := passAssignments([][]int{{0}, {1}}, sched, 4); err == nil {
		t.Error("no error for a plan that kills every compute node")
	}
}
