package middleware

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"freerideg/internal/apps"
	"freerideg/internal/simgrid"
	"freerideg/internal/units"
)

// faultPlanText exercises all three fault kinds in one run: node 1
// crashes after two chunks of pass 1, the single storage node's disk
// degrades for two deliveries, and its link drops two deliveries.
const faultPlanText = "crash node=1 pass=1 chunk=2; " +
	"slow-disk node=0 pass=0 chunk=1 factor=8 count=2; " +
	"flaky-link node=0 pass=0 chunk=3 count=2"

// faultTraceRun runs the trace_test.go workload under faultPlanText.
func faultTraceRun(t *testing.T, sink Sink) SimResult {
	t.Helper()
	plan, err := simgrid.ParseFaultPlan(faultPlanText)
	if err != nil {
		t.Fatal(err)
	}
	g := testGrid(t)
	total := 64 * units.MB
	a, _ := apps.Get("kmeans")
	spec := pointsSpec(total)
	cost, err := a.Cost(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.SimulateOpts(cost, spec, config(1, 2, total), SimOptions{
		Faults: &plan,
		Trace:  sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The faulted trace is pinned byte-for-byte: fault onset markers, retried
// deliveries, and the failover re-partition all appear at reproducible
// virtual times. Regenerate with -update after intentional changes.
func TestTraceFaultsGolden(t *testing.T) {
	var buf bytes.Buffer
	faultTraceRun(t, NewTextSink(&buf))
	golden := filepath.Join("testdata", "trace_kmeans_faults.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("fault trace deviates from golden file (run with -update to regenerate)\ngot:\n%s\nwant:\n%s",
			got, want)
	}
}

// Recovery events land in the passes the plan schedules them for, carry
// the faulting node, and reconcile with the run's recovery accounting.
func TestTraceFaultEventPlacement(t *testing.T) {
	col := NewCollector()
	res := faultTraceRun(t, col)

	byPhase := func(ph Phase) []Event {
		var out []Event
		for _, ev := range col.Events() {
			if ev.Phase == ph {
				out = append(out, ev)
			}
		}
		return out
	}

	faults := byPhase(PhaseFault)
	if len(faults) != 3 {
		t.Fatalf("%d fault events, want 3 (crash, slow-disk, flaky-link): %+v", len(faults), faults)
	}
	for _, ev := range faults {
		if ev.Dur != 0 {
			t.Errorf("fault onset %+v carries a duration; onsets are markers", ev)
		}
	}

	retries := byPhase(PhaseRetry)
	if len(retries) != res.Retries {
		t.Errorf("%d retry events, result reports %d retries", len(retries), res.Retries)
	}
	for _, ev := range retries {
		if ev.Pass != 0 {
			t.Errorf("retry %+v outside pass 0, where the flaky link is scheduled", ev)
		}
		if ev.Dur <= 0 {
			t.Errorf("retry %+v carries no cost", ev)
		}
	}

	failovers := byPhase(PhaseFailover)
	if len(failovers) != 1 {
		t.Fatalf("%d failover events, want 1: %+v", len(failovers), failovers)
	}
	if fo := failovers[0]; fo.Pass != 1 || fo.Node != 1 {
		t.Errorf("failover %+v, want pass=1 node=1 per the plan", fo)
	}

	if sum := col.PhaseTotal(PhaseRetry) + col.PhaseTotal(PhaseFailover); sum != res.Recovery {
		t.Errorf("retry+failover event durations sum to %v, result recovery is %v", sum, res.Recovery)
	}
	if got, want := col.Breakdown(), res.Profile.Breakdown; got != want {
		t.Errorf("collector breakdown %+v != profile breakdown %+v", got, want)
	}
}

// Two runs of the same plan produce byte-identical JSON traces — the
// whole fault pipeline is deterministic, including virtual timestamps.
func TestTraceFaultsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	resA := faultTraceRun(t, NewJSONSink(&a))
	resB := faultTraceRun(t, NewJSONSink(&b))
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("identical fault runs diverge:\nfirst:\n%s\nsecond:\n%s", a.String(), b.String())
	}
	if resA.Makespan != resB.Makespan || resA.Recovery != resB.Recovery || resA.Retries != resB.Retries {
		t.Errorf("results diverge: %+v vs %+v", resA, resB)
	}
}
