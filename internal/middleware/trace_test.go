package middleware

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"freerideg/internal/apps"
	"freerideg/internal/units"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// traceRun runs a small deterministic simulated workload with the given
// sink attached and returns the result.
func traceRun(t *testing.T, sink Sink) SimResult {
	t.Helper()
	g := testGrid(t)
	total := 64 * units.MB
	a, _ := apps.Get("kmeans")
	spec := pointsSpec(total)
	cost, err := a.Cost(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.SimulateOpts(cost, spec, config(1, 2, total), SimOptions{Trace: sink})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTraceEventOrdering(t *testing.T) {
	col := NewCollector()
	res := traceRun(t, col)
	events := col.Events()
	if len(events) < 4 {
		t.Fatalf("only %d events emitted", len(events))
	}

	// Run-level framing: run-start first, run-end last, nothing in between.
	if events[0].Phase != PhaseRunStart || events[0].Pass != -1 {
		t.Errorf("first event = %+v, want run-start with pass=-1", events[0])
	}
	last := events[len(events)-1]
	if last.Phase != PhaseRunEnd || last.Pass != -1 {
		t.Errorf("last event = %+v, want run-end with pass=-1", last)
	}
	for _, ev := range events[1 : len(events)-1] {
		if ev.Phase == PhaseRunStart || ev.Phase == PhaseRunEnd {
			t.Errorf("run-level event %+v in the middle of the stream", ev)
		}
	}

	// Timestamps are monotone non-decreasing in emission order — the run=
	// framing events share the same clock as the phase events.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Errorf("event %d at %v precedes event %d at %v",
				i, events[i].At, i-1, events[i-1].At)
		}
	}

	// Pass numbering starts at 0 and advances by one at a time, covering
	// every pass of the run.
	pass := 0
	for _, ev := range events[1 : len(events)-1] {
		switch {
		case ev.Pass == pass:
		case ev.Pass == pass+1:
			pass = ev.Pass
		default:
			t.Errorf("event %+v skips from pass %d", ev, pass)
		}
	}
	if want := res.Profile.Iterations - 1; pass != want {
		t.Errorf("trace covers passes 0..%d, want 0..%d", pass, want)
	}

	// Within every pass the protocol order holds: retrieval/cached-fetch
	// before local-reduce before gather before global-reduce before
	// broadcast.
	rank := map[Phase]int{
		PhaseRetrieval:    0,
		PhaseDelivery:     1,
		PhaseCachedFetch:  0,
		PhaseLocalReduce:  2,
		PhaseGather:       3,
		PhaseGlobalReduce: 4,
		PhaseSync:         5,
		PhaseBroadcast:    6,
	}
	prev := -1
	prevPass := -1
	for _, ev := range events[1 : len(events)-1] {
		if ev.Pass != prevPass {
			prev, prevPass = -1, ev.Pass
		}
		r, ok := rank[ev.Phase]
		if !ok {
			t.Fatalf("unexpected phase %v inside pass %d", ev.Phase, ev.Pass)
		}
		if r <= prev {
			t.Errorf("pass %d: phase %v out of protocol order", ev.Pass, ev.Phase)
		}
		prev = r
	}

	// Every pass gathers, globally reduces, and broadcasts exactly once.
	for _, ph := range []Phase{PhaseGather, PhaseGlobalReduce, PhaseBroadcast} {
		count := 0
		for _, ev := range events {
			if ev.Phase == ph {
				count++
			}
		}
		if count != res.Profile.Iterations {
			t.Errorf("%d %v events, want %d", count, ph, res.Profile.Iterations)
		}
	}
}

func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	traceRun(t, NewTextSink(&buf))
	golden := filepath.Join("testdata", "trace_kmeans.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("trace deviates from golden file (run with -update to regenerate)\ngot:\n%s\nwant:\n%s",
			got, want)
	}
}

func TestJSONSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	col := NewCollector()
	traceRun(t, MultiSink{NewJSONSink(&buf), col})
	want := col.Events()

	var got []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("invalid JSON line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d JSON events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("event %d decodes to %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTraceTextFormat(t *testing.T) {
	var buf bytes.Buffer
	res := traceRun(t, NewTextSink(&buf))
	out := buf.String()
	for _, want := range []string{
		"run=kmeans backend=sim data=1 compute=2 passes=10",
		"gather",
		"global-reduce",
		"broadcast",
		"1 reduction objects",
		"1 workers",
		res.Makespan.String(),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q\ntrace:\n%s", want, out)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	g := testGrid(t)
	total := 64 * units.MB
	a, _ := apps.Get("kmeans")
	spec := pointsSpec(total)
	cost, _ := a.Cost(spec)
	// Nil sink must be a no-op (and not panic).
	if _, err := g.SimulateOpts(cost, spec, config(1, 1, total), SimOptions{}); err != nil {
		t.Fatal(err)
	}
}
