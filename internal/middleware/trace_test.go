package middleware

import (
	"strings"
	"testing"

	"freerideg/internal/apps"
	"freerideg/internal/units"
)

func TestTraceEmitsPhaseEvents(t *testing.T) {
	g := testGrid(t)
	total := 64 * units.MB
	a, _ := apps.Get("kmeans")
	spec := pointsSpec(total)
	cost, _ := a.Cost(spec)
	var sb strings.Builder
	res, err := g.SimulateOpts(cost, spec, config(1, 2, total), SimOptions{Trace: &sb})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"run=kmeans config=",
		"pass=0 gathered 1 reduction objects",
		"pass=0 global reduction done",
		"pass=9 results broadcast to 1 workers",
		"complete makespan=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q\ntrace:\n%s", want, out)
		}
	}
	// Each of the 10 passes produces gather, global, and broadcast lines.
	if got := strings.Count(out, "global reduction done"); got != 10 {
		t.Errorf("%d global-reduction events, want 10", got)
	}
	if !strings.Contains(out, res.Makespan.String()) {
		t.Errorf("trace does not record the makespan %v", res.Makespan)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	g := testGrid(t)
	total := 64 * units.MB
	a, _ := apps.Get("kmeans")
	spec := pointsSpec(total)
	cost, _ := a.Cost(spec)
	// Nil writer must be a no-op (and not panic).
	if _, err := g.SimulateOpts(cost, spec, config(1, 1, total), SimOptions{}); err != nil {
		t.Fatal(err)
	}
}
