package middleware

import (
	"fmt"

	"freerideg/internal/adr"
)

// serveClients returns, for each of n storage nodes, the compute nodes it
// serves in ascending order: compute node j is served by storage node
// j mod n. This is the single source of truth for the repository-to-
// compute wiring every backend uses.
func serveClients(n, c int) [][]int {
	clients := make([][]int, n)
	for j := 0; j < c; j++ {
		clients[j%n] = append(clients[j%n], j)
	}
	return clients
}

// chunkTargets maps every chunk of a layout to its compute node: each
// storage node hands its chunks round-robin to its clients, so
// targets[dn][i] is the compute node receiving the i-th chunk of storage
// node dn. All backends derive their chunk placement from this one
// function, which keeps the goroutine backends' layout identical to the
// simulated one.
func chunkTargets(layout *adr.Layout, n, c int) [][]int {
	clients := serveClients(n, c)
	targets := make([][]int, n)
	for dn := 0; dn < n; dn++ {
		cl := clients[dn]
		chunks := layout.NodeChunks(dn)
		targets[dn] = make([]int, len(chunks))
		for i := range chunks {
			targets[dn][i] = cl[i%len(cl)]
		}
	}
	return targets
}

// chunksByCompute assigns the layout's chunks to compute nodes via
// chunkTargets, returning each compute node's chunk list in delivery
// order.
func chunksByCompute(layout *adr.Layout, n, c int) [][]adr.Chunk {
	targets := chunkTargets(layout, n, c)
	out := make([][]adr.Chunk, c)
	for dn := 0; dn < n; dn++ {
		for i, ch := range layout.NodeChunks(dn) {
			j := targets[dn][i]
			out[j] = append(out[j], ch)
		}
	}
	return out
}

// reassignDead is the failover re-partitioner: it re-deals the chunk
// lists of dead compute nodes round-robin onto the survivors. Orphaned
// chunks are collected in ascending dead-node order and dealt to the
// survivors in ascending node order, so the assignment is a pure,
// deterministic function of (base, alive) — every backend and every
// replay derives the identical failover layout. Survivors keep their
// base lists as a prefix; an all-dead alive vector is an error.
func reassignDead[T any](base [][]T, alive []bool) ([][]T, error) {
	var survivors []int
	for j, a := range alive {
		if a {
			survivors = append(survivors, j)
		}
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("middleware: fault plan leaves no compute node alive")
	}
	out := make([][]T, len(base))
	var orphans []T
	for j := range base {
		if j < len(alive) && alive[j] {
			out[j] = append([]T(nil), base[j]...)
		} else {
			orphans = append(orphans, base[j]...)
		}
	}
	for i, t := range orphans {
		s := survivors[i%len(survivors)]
		out[s] = append(out[s], t)
	}
	return out, nil
}

// passAssignments precomputes each pass's per-node chunk assignment
// under the schedule's crash faults: passes where everyone is alive
// share the base assignment, later passes re-deal the accumulated dead
// nodes' chunks via reassignDead. Errors if any pass is left without a
// surviving compute node.
func passAssignments[T any](base [][]T, sched *faultSchedule, passes int) ([][][]T, error) {
	out := make([][][]T, passes)
	for p := 0; p < passes; p++ {
		alive := sched.aliveAt(p)
		all := true
		for _, a := range alive {
			if !a {
				all = false
				break
			}
		}
		if alive == nil || all {
			out[p] = base
			continue
		}
		a, err := reassignDead(base, alive)
		if err != nil {
			return nil, fmt.Errorf("middleware: pass %d: %w", p, err)
		}
		out[p] = a
	}
	return out, nil
}
