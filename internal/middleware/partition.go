package middleware

import "freerideg/internal/adr"

// serveClients returns, for each of n storage nodes, the compute nodes it
// serves in ascending order: compute node j is served by storage node
// j mod n. This is the single source of truth for the repository-to-
// compute wiring every backend uses.
func serveClients(n, c int) [][]int {
	clients := make([][]int, n)
	for j := 0; j < c; j++ {
		clients[j%n] = append(clients[j%n], j)
	}
	return clients
}

// chunkTargets maps every chunk of a layout to its compute node: each
// storage node hands its chunks round-robin to its clients, so
// targets[dn][i] is the compute node receiving the i-th chunk of storage
// node dn. All backends derive their chunk placement from this one
// function, which keeps the goroutine backends' layout identical to the
// simulated one.
func chunkTargets(layout *adr.Layout, n, c int) [][]int {
	clients := serveClients(n, c)
	targets := make([][]int, n)
	for dn := 0; dn < n; dn++ {
		cl := clients[dn]
		chunks := layout.NodeChunks(dn)
		targets[dn] = make([]int, len(chunks))
		for i := range chunks {
			targets[dn][i] = cl[i%len(cl)]
		}
	}
	return targets
}

// chunksByCompute assigns the layout's chunks to compute nodes via
// chunkTargets, returning each compute node's chunk list in delivery
// order.
func chunksByCompute(layout *adr.Layout, n, c int) [][]adr.Chunk {
	targets := chunkTargets(layout, n, c)
	out := make([][]adr.Chunk, c)
	for dn := 0; dn < n; dn++ {
		for i, ch := range layout.NodeChunks(dn) {
			j := targets[dn][i]
			out[j] = append(out[j], ch)
		}
	}
	return out
}
