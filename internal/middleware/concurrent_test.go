package middleware

import (
	"sync"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

func appCost(spec adr.DatasetSpec) (reduction.CostModel, error) {
	a, err := apps.Get("kmeans")
	if err != nil {
		return reduction.CostModel{}, err
	}
	return a.Cost(spec)
}

// TestConcurrentSimulateSharedGrid hammers one shared Grid with
// concurrent Simulate calls (run under -race by make check) and verifies
// every concurrent result is identical to its serial reference — the
// contract the parallel sweep runner depends on.
func TestConcurrentSimulateSharedGrid(t *testing.T) {
	g := testGrid(t)
	spec := pointsSpec(128 * units.MB)
	configs := [][2]int{{1, 1}, {1, 2}, {2, 4}, {4, 8}, {2, 2}, {1, 4}}

	// Serial references first.
	want := make([]SimResult, len(configs))
	for i, nc := range configs {
		want[i] = simulate(t, g, "kmeans", spec, config(nc[0], nc[1], spec.TotalBytes))
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make([]error, len(configs)*rounds)
	got := make([]SimResult, len(configs)*rounds)
	for r := 0; r < rounds; r++ {
		for i := range configs {
			idx := r*len(configs) + i
			nc := configs[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				a, err := appCost(spec)
				if err != nil {
					errs[idx] = err
					return
				}
				got[idx], errs[idx] = g.Simulate(a, spec, config(nc[0], nc[1], spec.TotalBytes))
			}()
		}
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", idx, err)
		}
	}
	for idx, res := range got {
		ref := want[idx%len(configs)]
		if res != ref {
			t.Errorf("concurrent run %d diverged from serial reference:\n got %+v\nwant %+v", idx, res, ref)
		}
	}
}
