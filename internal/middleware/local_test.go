package middleware

import (
	"math"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/apps/defect"
	"freerideg/internal/apps/kmeans"
	"freerideg/internal/apps/knn"
	"freerideg/internal/apps/vortex"
	"freerideg/internal/units"
)

func localSpec(kind string) adr.DatasetSpec {
	spec := adr.DatasetSpec{
		Name:       "local-" + kind,
		ChunkBytes: 128 * units.KB,
		Kind:       kind,
		Seed:       23,
	}
	switch kind {
	case "points":
		spec.TotalBytes = units.MB
		spec.ElemBytes = 128
		spec.Dims = 16
	case "field":
		spec.TotalBytes = units.MB
		spec.ElemBytes = 16
		spec.Dims = 2
	case "lattice":
		spec.TotalBytes = units.MB
		spec.ElemBytes = 24
		spec.Dims = 3
	case "transactions":
		spec.TotalBytes = units.MB
		spec.ElemBytes = 96
		spec.Dims = 12
	}
	return spec
}

func TestRunLocalValidatesNodeCounts(t *testing.T) {
	spec := localSpec("points")
	a, _ := apps.Get("kmeans")
	k, _ := a.NewKernel(spec)
	if _, err := RunLocal(k, spec, 0, 1); err == nil {
		t.Error("0 data nodes accepted")
	}
	if _, err := RunLocal(k, spec, 4, 2); err == nil {
		t.Error("compute < data accepted")
	}
}

func TestRunLocalAllAppsProduceValidProfiles(t *testing.T) {
	for _, name := range apps.Names() {
		a, err := apps.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := localSpec(a.DatasetKind)
		k, err := a.NewKernel(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunLocal(k, spec, 2, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Profile.Validate(); err != nil {
			t.Errorf("%s: invalid profile: %v", name, err)
		}
		if res.Profile.ROBytesPerNode <= 0 {
			t.Errorf("%s: no reduction object size recorded", name)
		}
		if res.Iterations < 1 {
			t.Errorf("%s: %d iterations", name, res.Iterations)
		}
	}
}

func TestRunLocalKMeansMatchesSequential(t *testing.T) {
	spec := localSpec("points")
	seqK, err := kmeans.New(spec, kmeans.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.RunSequential(seqK, spec); err != nil {
		t.Fatal(err)
	}
	parK, _ := kmeans.New(spec, kmeans.DefaultParams())
	if _, err := RunLocal(parK, spec, 2, 4); err != nil {
		t.Fatal(err)
	}
	for ci := range seqK.Centers() {
		for j := range seqK.Centers()[ci] {
			s, p := seqK.Centers()[ci][j], parK.Centers()[ci][j]
			if math.Abs(s-p) > 1e-6*(math.Abs(s)+1) {
				t.Fatalf("center %d dim %d differs: sequential %v vs parallel %v", ci, j, s, p)
			}
		}
	}
}

func TestRunLocalKNNExact(t *testing.T) {
	spec := localSpec("points")
	seqK, _ := knn.New(spec, knn.Params{K: 8, Queries: 4})
	if err := apps.RunSequential(seqK, spec); err != nil {
		t.Fatal(err)
	}
	parK, _ := knn.New(spec, knn.Params{K: 8, Queries: 4})
	if _, err := RunLocal(parK, spec, 2, 4); err != nil {
		t.Fatal(err)
	}
	for qi := range seqK.Result().Lists {
		s, p := seqK.Result().Lists[qi], parK.Result().Lists[qi]
		if len(s) != len(p) {
			t.Fatalf("query %d: %d vs %d neighbours", qi, len(s), len(p))
		}
		for i := range s {
			if s[i].Dist != p[i].Dist {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, s[i], p[i])
			}
		}
	}
}

func TestRunLocalVortexMatchesSequential(t *testing.T) {
	spec := localSpec("field")
	seqK, _ := vortex.New(spec, vortex.DefaultParams())
	if err := apps.RunSequential(seqK, spec); err != nil {
		t.Fatal(err)
	}
	parK, _ := vortex.New(spec, vortex.DefaultParams())
	if _, err := RunLocal(parK, spec, 2, 2); err != nil {
		t.Fatal(err)
	}
	if len(seqK.Result()) != len(parK.Result()) {
		t.Fatalf("vortex counts differ: %d vs %d", len(seqK.Result()), len(parK.Result()))
	}
}

func TestRunLocalDefectMatchesSequential(t *testing.T) {
	spec := localSpec("lattice")
	seqK, _ := defect.New(spec, defect.DefaultParams())
	if err := apps.RunSequential(seqK, spec); err != nil {
		t.Fatal(err)
	}
	parK, _ := defect.New(spec, defect.DefaultParams())
	if _, err := RunLocal(parK, spec, 2, 4); err != nil {
		t.Fatal(err)
	}
	if len(seqK.Defects()) != len(parK.Defects()) {
		t.Fatalf("defect counts differ: %d vs %d", len(seqK.Defects()), len(parK.Defects()))
	}
	for class, n := range seqK.Counts() {
		if parK.Counts()[class] != n {
			t.Fatalf("class %d: %d vs %d", class, n, parK.Counts()[class])
		}
	}
}

func TestRunSequentialAllApps(t *testing.T) {
	for _, name := range apps.Names() {
		a, _ := apps.Get(name)
		spec := localSpec(a.DatasetKind)
		k, err := a.NewKernel(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := apps.RunSequential(k, spec); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
