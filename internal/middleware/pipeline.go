package middleware

import (
	"fmt"
	"time"

	"freerideg/internal/core"
	"freerideg/internal/metrics"
	"freerideg/internal/units"
)

// Fault-recovery metrics, accumulated across every backend: the pipeline
// is the one place all four execution paths converge, so run and retry
// totals are counted here; failovers are counted at their emission sites
// (the simulated executor emits directly, the goroutine backends through
// the incident log).
var (
	mwRuns = metrics.GetCounter("fg_mw_runs_total",
		"Pipeline runs completed across all execution backends.")
	mwRetries = metrics.GetCounter("fg_mw_retries_total",
		"Chunk-delivery retries across all execution backends.")
	mwFailovers = metrics.GetCounter("fg_mw_failovers_total",
		"Compute-node crash failovers recovered across all execution backends.")
	mwRecoverySeconds = metrics.GetCounter("fg_mw_recovery_seconds_total",
		"Fault-recovery overhead (discarded work, detection timeouts, retry backoff) in seconds.")
)

// PassStats reports the per-phase durations one backend accounted for a
// single pass's chunk work. Per-node phases carry the maximum over nodes,
// the paper's component accounting.
type PassStats struct {
	// Retrieval is first-pass chunk retrieval (max over storage nodes).
	Retrieval time.Duration
	// Delivery is first-pass chunk communication (max over nodes).
	Delivery time.Duration
	// CachedFetch is cached-pass re-retrieval (max over compute nodes).
	CachedFetch time.Duration
	// Compute is local reduction processing (max over compute nodes).
	Compute time.Duration
	// Recovery is fault-handling overhead: discarded work of crashed
	// nodes, failure-detection timeouts, and failed delivery attempts with
	// their backoff. Unlike the component fields it is summed over nodes —
	// it accounts total overhead, not a critical path — and sits outside
	// the paper's additive t_d + t_n + t_c decomposition. Zero on
	// fault-free runs.
	Recovery time.Duration
	// Retries counts failed chunk-delivery attempts that were retried.
	Retries int
}

// Executor plugs one backend's stage implementations into the Pipeline.
// The Pipeline owns the protocol sequence and all accounting; stage
// methods perform (or simulate) the work of one phase of one pass and
// report the duration charged to it.
type Executor interface {
	// Backend names the execution backend ("sim", "local", "local-smp",
	// "shm").
	Backend() string
	// Workload names the application or kernel being run.
	Workload() string
	// Nodes reports the storage and compute node counts.
	Nodes() (data, compute int)
	// Passes is the maximum number of passes (kernels may converge and
	// stop the pipeline early via GlobalReduce).
	Passes() int
	// Now is the time since run start: virtual time on the simulated
	// backend, wall time on the goroutine backends.
	Now() time.Duration
	// LocalReduction runs one pass's chunk phase on every node: first-pass
	// retrieval/delivery/processing, or cached-pass re-fetch/processing.
	LocalReduction(pass int) (PassStats, error)
	// Gather collects every worker's reduction object at the master.
	Gather(pass int) (time.Duration, error)
	// GlobalReduce performs the master's global reduction; done stops the
	// pipeline after the broadcast.
	GlobalReduce(pass int) (time.Duration, bool, error)
	// Sync charges the master's per-pass coordination overhead.
	Sync(pass int) (time.Duration, error)
	// Broadcast re-distributes the globally reduced result to the workers
	// (and must release them even when done).
	Broadcast(pass int, done bool) (time.Duration, error)
}

// PhaseBreakdown is the canonical per-phase accounting of one run — the
// single replacement for the hand-rolled t_d/t_n/t_c bookkeeping the four
// backends used to duplicate.
type PhaseBreakdown struct {
	Retrieval   time.Duration
	Delivery    time.Duration
	CachedFetch time.Duration
	Compute     time.Duration
	Gather      time.Duration
	Global      time.Duration
	Sync        time.Duration
	Broadcast   time.Duration
	// Recovery and Retries account fault handling (see PassStats); they
	// are not part of the Tdisk/Tnetwork/Tcompute components. For a traced
	// run, Recovery equals the collector's retry + failover phase totals.
	Recovery time.Duration
	Retries  int
}

// Tdisk is the paper's data retrieval component t_d.
func (b PhaseBreakdown) Tdisk() time.Duration { return b.Retrieval + b.CachedFetch }

// Tnetwork is the paper's data communication component t_n.
func (b PhaseBreakdown) Tnetwork() time.Duration { return b.Delivery }

// Tcompute is the paper's data processing component t_c, which contains
// the serialized reduction-object communication and global reduction.
func (b PhaseBreakdown) Tcompute() time.Duration {
	return b.Compute + b.Gather + b.Global + b.Sync + b.Broadcast
}

// Tro is the reduction-object communication part of t_c (gather plus
// result broadcast).
func (b PhaseBreakdown) Tro() time.Duration { return b.Gather + b.Broadcast }

// Breakdown folds the phase accounting into the model's three components.
func (b PhaseBreakdown) Breakdown() core.Breakdown {
	return core.Breakdown{Tdisk: b.Tdisk(), Tnetwork: b.Tnetwork(), Tcompute: b.Tcompute()}
}

// Profile assembles the core.Profile the prediction framework consumes
// from the accumulated phase accounting.
func (b PhaseBreakdown) Profile(app string, cfg core.Config, roBytes, bcastBytes units.Bytes, iterations int) core.Profile {
	return core.Profile{
		App:            app,
		Config:         cfg,
		Breakdown:      b.Breakdown(),
		TdiskCached:    b.CachedFetch,
		Tro:            b.Tro(),
		Tglobal:        b.Global,
		ROBytesPerNode: roBytes,
		BroadcastBytes: bcastBytes,
		Iterations:     iterations,
	}
}

// Pipeline executes the canonical FREERIDE-G protocol through an
// Executor's stages, accumulating the PhaseBreakdown and emitting one
// structured Event per completed phase:
//
//	pass 0:    retrieval + delivery + local reduction (synchronous chunk
//	           rounds on the backends that model flow control);
//	passes 1+: cached fetch + local reduction;
//	each pass: serialized reduction-object gather at the master, global
//	           reduction, per-pass coordination, result broadcast.
//
// All four backends — the simulated grid and the three goroutine
// backends — run through this one implementation, so they provably
// execute the same protocol with the same accounting.
type Pipeline struct {
	exec       Executor
	sink       Sink
	bd         PhaseBreakdown
	iterations int
}

// NewPipeline builds a pipeline over an executor. sink may be nil.
func NewPipeline(exec Executor, sink Sink) *Pipeline {
	return &Pipeline{exec: exec, sink: sink}
}

// Breakdown returns the phase accounting accumulated by Run.
func (pl *Pipeline) Breakdown() PhaseBreakdown { return pl.bd }

// Iterations reports the number of passes Run performed.
func (pl *Pipeline) Iterations() int { return pl.iterations }

func (pl *Pipeline) emit(ev Event) {
	if pl.sink != nil {
		pl.sink.Emit(ev)
	}
}

// emitPhase records a completed phase: its duration enters the breakdown
// via the caller; the event timestamps the completion.
func (pl *Pipeline) emitPhase(pass int, ph Phase, dur time.Duration, detail string) {
	pl.emit(Event{At: pl.exec.Now(), Pass: pass, Phase: ph, Node: -1, Dur: dur, Detail: detail})
}

// Run executes the protocol for up to Passes() passes and returns the
// number performed. The accumulated breakdown is available afterwards
// from Breakdown.
func (pl *Pipeline) Run() error {
	n, c := pl.exec.Nodes()
	pl.emit(Event{
		At: pl.exec.Now(), Pass: -1, Phase: PhaseRunStart, Node: -1,
		Detail: fmt.Sprintf("run=%s backend=%s data=%d compute=%d passes=%d",
			pl.exec.Workload(), pl.exec.Backend(), n, c, pl.exec.Passes()),
	})
	done := false
	for pass := 0; pass < pl.exec.Passes() && !done; pass++ {
		pl.iterations++
		st, err := pl.exec.LocalReduction(pass)
		if err != nil {
			return fmt.Errorf("middleware: %s pass %d local reduction: %w", pl.exec.Backend(), pass, err)
		}
		pl.bd.Retrieval += st.Retrieval
		pl.bd.Delivery += st.Delivery
		pl.bd.CachedFetch += st.CachedFetch
		pl.bd.Compute += st.Compute
		pl.bd.Recovery += st.Recovery
		pl.bd.Retries += st.Retries
		if pass == 0 {
			pl.emitPhase(pass, PhaseRetrieval, st.Retrieval, "")
			pl.emitPhase(pass, PhaseDelivery, st.Delivery, "")
		} else {
			// Later passes normally serve chunks from the caching tier, but
			// failover re-partitioning can force fresh repository fetches of
			// chunks a dead node had cached.
			if st.Retrieval > 0 {
				pl.emitPhase(pass, PhaseRetrieval, st.Retrieval, "failover re-fetch")
			}
			if st.Delivery > 0 {
				pl.emitPhase(pass, PhaseDelivery, st.Delivery, "failover re-fetch")
			}
			if st.CachedFetch > 0 {
				pl.emitPhase(pass, PhaseCachedFetch, st.CachedFetch, "")
			}
		}
		pl.emitPhase(pass, PhaseLocalReduce, st.Compute, "")

		gd, err := pl.exec.Gather(pass)
		if err != nil {
			return fmt.Errorf("middleware: %s pass %d gather: %w", pl.exec.Backend(), pass, err)
		}
		pl.bd.Gather += gd
		pl.emitPhase(pass, PhaseGather, gd, fmt.Sprintf("%d reduction objects", c-1))

		gl, d, err := pl.exec.GlobalReduce(pass)
		if err != nil {
			return fmt.Errorf("middleware: %s pass %d global reduce: %w", pl.exec.Backend(), pass, err)
		}
		done = d
		pl.bd.Global += gl
		pl.emitPhase(pass, PhaseGlobalReduce, gl, "")

		sy, err := pl.exec.Sync(pass)
		if err != nil {
			return fmt.Errorf("middleware: %s pass %d sync: %w", pl.exec.Backend(), pass, err)
		}
		pl.bd.Sync += sy
		if sy > 0 {
			pl.emitPhase(pass, PhaseSync, sy, "")
		}

		bc, err := pl.exec.Broadcast(pass, done)
		if err != nil {
			return fmt.Errorf("middleware: %s pass %d broadcast: %w", pl.exec.Backend(), pass, err)
		}
		pl.bd.Broadcast += bc
		pl.emitPhase(pass, PhaseBroadcast, bc, fmt.Sprintf("%d workers", c-1))
	}
	mwRuns.Inc()
	mwRetries.Add(float64(pl.bd.Retries))
	mwRecoverySeconds.Add(pl.bd.Recovery.Seconds())
	endDetail := fmt.Sprintf("run=%s passes=%d makespan=%v", pl.exec.Workload(), pl.iterations, pl.exec.Now())
	if pl.bd.Retries > 0 || pl.bd.Recovery > 0 {
		endDetail += fmt.Sprintf(" retries=%d recovery=%v", pl.bd.Retries, pl.bd.Recovery)
	}
	pl.emit(Event{
		At: pl.exec.Now(), Pass: -1, Phase: PhaseRunEnd, Node: -1,
		Detail: endDetail,
	})
	return nil
}
