package middleware

import (
	"testing"
	"testing/quick"

	"freerideg/internal/apps"
	"freerideg/internal/core"
	"freerideg/internal/units"
)

// fuzzConfig builds a valid configuration from fuzz inputs.
func fuzzConfig(nRaw, cRaw, sRaw uint8) (core.Config, units.Bytes) {
	n := 1 << (int(nRaw) % 4) // 1..8
	c := n << (int(cRaw) % 3) // n..4n
	if c > 16 {
		c = 16
	}
	total := units.Bytes(int(sRaw)%192+64) * units.MB
	return core.Config{
		Cluster:      "pentium-myrinet",
		DataNodes:    n,
		ComputeNodes: c,
		Bandwidth:    DefaultBandwidth,
		DatasetBytes: total,
	}, total
}

func TestSimPropertyProfilesAlwaysValid(t *testing.T) {
	g := testGrid(t)
	a, _ := apps.Get("kmeans")
	f := func(nRaw, cRaw, sRaw uint8) bool {
		cfg, total := fuzzConfig(nRaw, cRaw, sRaw)
		spec := pointsSpec(total)
		cost, err := a.Cost(spec)
		if err != nil {
			return false
		}
		res, err := g.Simulate(cost, spec, cfg)
		if err != nil {
			return false
		}
		if err := res.Profile.Validate(); err != nil {
			return false
		}
		// Makespan within 10% of the additive component sum: the
		// protocol's additivity property, for every configuration.
		gap := res.Makespan.Seconds() - res.Profile.Texec().Seconds()
		if gap < 0 {
			gap = -gap
		}
		return gap <= 0.10*res.Makespan.Seconds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSimPropertyMoreComputeNeverSlower(t *testing.T) {
	g := testGrid(t)
	a, _ := apps.Get("em")
	f := func(nRaw, sRaw uint8) bool {
		cfg, total := fuzzConfig(nRaw, 0, sRaw) // c = n
		spec := pointsSpec(total)
		cost, err := a.Cost(spec)
		if err != nil {
			return false
		}
		base, err := g.Simulate(cost, spec, cfg)
		if err != nil {
			return false
		}
		wider := cfg
		wider.ComputeNodes = cfg.ComputeNodes * 2
		if wider.ComputeNodes > 16 {
			return true
		}
		faster, err := g.Simulate(cost, spec, wider)
		if err != nil {
			return false
		}
		// Compute-dominant workloads must not slow down with more nodes.
		return faster.Makespan <= base.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSimPropertyBiggerDatasetSlower(t *testing.T) {
	g := testGrid(t)
	a, _ := apps.Get("knn")
	f := func(nRaw, cRaw, sRaw uint8) bool {
		cfg, total := fuzzConfig(nRaw, cRaw, sRaw)
		spec := pointsSpec(total)
		cost, err := a.Cost(spec)
		if err != nil {
			return false
		}
		small, err := g.Simulate(cost, spec, cfg)
		if err != nil {
			return false
		}
		bigger := cfg
		bigger.DatasetBytes = total * 2
		bigSpec := pointsSpec(total * 2)
		bigCost, err := a.Cost(bigSpec)
		if err != nil {
			return false
		}
		big, err := g.Simulate(bigCost, bigSpec, bigger)
		if err != nil {
			return false
		}
		return big.Makespan > small.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
