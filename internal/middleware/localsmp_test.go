package middleware

import (
	"math"
	"testing"

	"freerideg/internal/apps"
	"freerideg/internal/apps/kmeans"
	"freerideg/internal/apps/knn"
)

func TestRunLocalSMPMatchesRunLocal(t *testing.T) {
	spec := localSpec("points")
	params := kmeans.Params{K: 8, MaxIter: 5, Epsilon: 0}
	plain, err := kmeans.New(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLocal(plain, spec, 2, 2); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []LocalOptions{
		{Threads: 3, Strategy: FullReplication},
		{Threads: 3, Strategy: FullLocking},
	} {
		smp, err := kmeans.New(spec, params)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunLocalSMP(smp, spec, 2, 2, opts)
		if err != nil {
			t.Fatalf("%v: %v", opts.Strategy, err)
		}
		if res.Iterations != params.MaxIter {
			t.Fatalf("%v: %d iterations, want %d", opts.Strategy, res.Iterations, params.MaxIter)
		}
		for ci := range plain.Centers() {
			for j := range plain.Centers()[ci] {
				a, b := plain.Centers()[ci][j], smp.Centers()[ci][j]
				if math.Abs(a-b) > 1e-6*(math.Abs(a)+1) {
					t.Fatalf("%v: center %d dim %d differs: %v vs %v", opts.Strategy, ci, j, a, b)
				}
			}
		}
	}
}

func TestRunLocalSMPKNNExact(t *testing.T) {
	spec := localSpec("points")
	params := knn.Params{K: 8, Queries: 4}
	ref, _ := knn.New(spec, params)
	if err := apps.RunSequential(ref, spec); err != nil {
		t.Fatal(err)
	}
	smp, _ := knn.New(spec, params)
	if _, err := RunLocalSMP(smp, spec, 2, 4, LocalOptions{Threads: 2, Strategy: FullLocking}); err != nil {
		t.Fatal(err)
	}
	for qi := range ref.Result().Lists {
		for i := range ref.Result().Lists[qi] {
			if ref.Result().Lists[qi][i].Dist != smp.Result().Lists[qi][i].Dist {
				t.Fatalf("query %d rank %d differs", qi, i)
			}
		}
	}
}

func TestRunLocalSMPDefaultsToRunLocal(t *testing.T) {
	spec := localSpec("points")
	a, _ := apps.Get("kmeans")
	k, _ := a.NewKernel(spec)
	res, err := RunLocalSMP(k, spec, 1, 2, LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Single-threaded full replication routes through RunLocal, which
	// fills the profile.
	if res.Profile.Tcompute <= 0 {
		t.Fatal("single-thread path did not produce a RunLocal profile")
	}
}

func TestRunLocalSMPValidation(t *testing.T) {
	spec := localSpec("points")
	a, _ := apps.Get("kmeans")
	k, _ := a.NewKernel(spec)
	if _, err := RunLocalSMP(k, spec, 4, 2, LocalOptions{Threads: 2}); err == nil {
		t.Error("compute < data accepted")
	}
	if _, err := RunLocalSMP(k, spec, 1, 1, LocalOptions{Threads: 2, Strategy: ShmStrategy(9)}); err == nil {
		t.Error("unknown strategy accepted")
	}
	bad := spec
	bad.Kind = "bogus"
	if _, err := RunLocalSMP(k, bad, 1, 1, LocalOptions{Threads: 2}); err == nil {
		t.Error("bogus dataset accepted")
	}
}

func TestRunLocalSMPAllApps(t *testing.T) {
	for _, name := range apps.Names() {
		a, _ := apps.Get(name)
		spec := localSpec(a.DatasetKind)
		k, err := a.NewKernel(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunLocalSMP(k, spec, 2, 4, LocalOptions{Threads: 2, Strategy: FullReplication}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
