package middleware

import (
	"math"
	"testing"

	"freerideg/internal/apps"
	"freerideg/internal/apps/kmeans"
	"freerideg/internal/apps/knn"
)

func TestShmStrategyStrings(t *testing.T) {
	if FullReplication.String() != "full-replication" || FullLocking.String() != "full-locking" {
		t.Error("strategy strings changed")
	}
	if ShmStrategy(7).String() == "" {
		t.Error("unknown strategy string empty")
	}
}

func TestShmValidation(t *testing.T) {
	spec := localSpec("points")
	a, _ := apps.Get("kmeans")
	k, _ := a.NewKernel(spec)
	if _, err := RunShm(k, spec, 0, FullReplication); err == nil {
		t.Error("0 threads accepted")
	}
	if _, err := RunShm(k, spec, 2, ShmStrategy(9)); err == nil {
		t.Error("unknown strategy accepted")
	}
	bad := spec
	bad.Kind = "bogus"
	if _, err := RunShm(k, bad, 2, FullReplication); err == nil {
		t.Error("bogus dataset kind accepted")
	}
}

func TestShmStrategiesAgreeKMeans(t *testing.T) {
	spec := localSpec("points")
	params := kmeans.Params{K: 8, MaxIter: 5, Epsilon: 0}
	centersOf := func(strategy ShmStrategy, threads int) [][]float64 {
		k, err := kmeans.New(spec, params)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunShm(k, spec, threads, strategy)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != params.MaxIter {
			t.Fatalf("%v ran %d passes, want %d", strategy, res.Iterations, params.MaxIter)
		}
		return k.Centers()
	}
	ref := centersOf(FullReplication, 1)
	for _, strategy := range []ShmStrategy{FullReplication, FullLocking} {
		got := centersOf(strategy, 4)
		for ci := range ref {
			for j := range ref[ci] {
				if math.Abs(ref[ci][j]-got[ci][j]) > 1e-6*(math.Abs(ref[ci][j])+1) {
					t.Fatalf("%v with 4 threads differs at center %d dim %d: %v vs %v",
						strategy, ci, j, got[ci][j], ref[ci][j])
				}
			}
		}
	}
}

func TestShmStrategiesAgreeKNNExactly(t *testing.T) {
	spec := localSpec("points")
	params := knn.Params{K: 8, Queries: 4}
	resultOf := func(strategy ShmStrategy, threads int) *knn.Object {
		k, err := knn.New(spec, params)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunShm(k, spec, threads, strategy); err != nil {
			t.Fatal(err)
		}
		return k.Result()
	}
	ref := resultOf(FullReplication, 1)
	for _, strategy := range []ShmStrategy{FullReplication, FullLocking} {
		got := resultOf(strategy, 3)
		for qi := range ref.Lists {
			if len(ref.Lists[qi]) != len(got.Lists[qi]) {
				t.Fatalf("%v: query %d list lengths differ", strategy, qi)
			}
			for i := range ref.Lists[qi] {
				if ref.Lists[qi][i].Dist != got.Lists[qi][i].Dist {
					t.Fatalf("%v: query %d rank %d differs", strategy, qi, i)
				}
			}
		}
	}
}

func TestShmAllAppsRunUnderBothStrategies(t *testing.T) {
	for _, name := range apps.Names() {
		a, _ := apps.Get(name)
		spec := localSpec(a.DatasetKind)
		for _, strategy := range []ShmStrategy{FullReplication, FullLocking} {
			k, err := a.NewKernel(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunShm(k, spec, 4, strategy)
			if err != nil {
				t.Fatalf("%s under %v: %v", name, strategy, err)
			}
			if res.Threads != 4 || res.Strategy != strategy {
				t.Fatalf("%s: result metadata %+v", name, res)
			}
		}
	}
}
