// Package cliutil holds the small flag-parsing helpers shared by the
// command-line tools.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"freerideg/internal/units"
)

// ParseNodePair parses "data,compute" into node counts, enforcing the
// middleware's constraints (compute >= data >= 1).
func ParseNodePair(s string) (data, compute int, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("cliutil: want data,compute — got %q", s)
	}
	data, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("cliutil: bad data-node count in %q: %v", s, err)
	}
	compute, err = strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("cliutil: bad compute-node count in %q: %v", s, err)
	}
	if data < 1 {
		return 0, 0, fmt.Errorf("cliutil: need at least one data node, got %d", data)
	}
	if compute < data {
		return 0, 0, fmt.Errorf("cliutil: compute nodes (%d) must be >= data nodes (%d)", compute, data)
	}
	return data, compute, nil
}

// ParseRate parses a per-second rate given as a byte volume ("100MB",
// "500KB").
func ParseRate(s string) (units.Rate, error) {
	b, err := units.ParseBytes(s)
	if err != nil {
		return 0, err
	}
	if b <= 0 {
		return 0, fmt.Errorf("cliutil: non-positive rate %q", s)
	}
	return units.Rate(b), nil
}
