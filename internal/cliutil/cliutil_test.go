package cliutil

import (
	"testing"

	"freerideg/internal/units"
)

func TestParseNodePair(t *testing.T) {
	cases := []struct {
		in      string
		n, c    int
		wantErr bool
	}{
		{"1,1", 1, 1, false},
		{"2,16", 2, 16, false},
		{" 4 , 8 ", 4, 8, false},
		{"1", 0, 0, true},
		{"1,2,3", 0, 0, true},
		{"x,2", 0, 0, true},
		{"2,y", 0, 0, true},
		{"0,4", 0, 0, true},
		{"8,4", 0, 0, true}, // compute < data
	}
	for _, tc := range cases {
		n, c, err := ParseNodePair(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseNodePair(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseNodePair(%q): %v", tc.in, err)
			continue
		}
		if n != tc.n || c != tc.c {
			t.Errorf("ParseNodePair(%q) = %d,%d, want %d,%d", tc.in, n, c, tc.n, tc.c)
		}
	}
}

func TestParseRate(t *testing.T) {
	r, err := ParseRate("100MB")
	if err != nil || r != 100*units.MBPerSec {
		t.Fatalf("ParseRate(100MB) = %v, %v", r, err)
	}
	if _, err := ParseRate("garbage"); err == nil {
		t.Error("garbage rate accepted")
	}
	if _, err := ParseRate("0"); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestParseRateRejectsNonFiniteAndOverflow(t *testing.T) {
	// ParseRate goes through units.ParseBytes and must inherit its
	// non-finite/overflow rejection: these all used to come back as
	// math.MinInt64 with a nil error and then flow into every backend
	// as a negative bandwidth.
	for _, in := range []string{"inf", "-inf", "nan", "1e300GB", "NaNMB"} {
		if r, err := ParseRate(in); err == nil {
			t.Errorf("ParseRate(%q) = %v, want error", in, r)
		}
	}
}
