package cliutil

import (
	"testing"

	"freerideg/internal/units"
)

func TestBytesValue(t *testing.T) {
	v := &BytesValue{Bytes: 256 * units.MB}
	if v.IsSet() {
		t.Error("default value reports set")
	}
	if v.String() != "256.00MB" {
		t.Errorf("String() = %q", v.String())
	}
	if err := v.Set("1.5GB"); err != nil {
		t.Fatal(err)
	}
	if !v.IsSet() || v.Bytes != units.Bytes(1.5*float64(units.GB)) {
		t.Errorf("after Set: %+v", v)
	}
	for _, bad := range []string{"", "fast", "-1MB", "0"} {
		if err := v.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestRateValue(t *testing.T) {
	v := &RateValue{Rate: 100 * units.MBPerSec}
	if err := v.Set("25MB"); err != nil {
		t.Fatal(err)
	}
	if v.Rate != 25*units.MBPerSec || !v.IsSet() {
		t.Errorf("after Set: %+v", v)
	}
	if err := v.Set("-5MB"); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestNodePairValue(t *testing.T) {
	v := &NodePairValue{Data: 1, Compute: 1}
	if v.String() != "1,1" {
		t.Errorf("String() = %q", v.String())
	}
	if err := v.Set("2, 8"); err != nil {
		t.Fatal(err)
	}
	if v.Data != 2 || v.Compute != 8 {
		t.Errorf("after Set: %+v", v)
	}
	for _, bad := range []string{"8", "8,2", "0,4", "a,b"} {
		if err := v.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestBytesListValue(t *testing.T) {
	v := &BytesListValue{Sizes: []units.Bytes{512 * units.MB}}
	if v.String() != "512.00MB" {
		t.Errorf("String() = %q", v.String())
	}
	if err := v.Set("256MB, 1GB ,2GB"); err != nil {
		t.Fatal(err)
	}
	want := []units.Bytes{256 * units.MB, units.GB, 2 * units.GB}
	if len(v.Sizes) != len(want) {
		t.Fatalf("Sizes = %v", v.Sizes)
	}
	for i := range want {
		if v.Sizes[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", v.Sizes, want)
		}
	}
	if v.String() != "256.00MB,1.00GB,2.00GB" {
		t.Errorf("String() = %q", v.String())
	}
	if err := v.Set("256MB,,1GB"); err == nil {
		t.Error("empty element accepted")
	}
	if err := v.Set("256MB,nope"); err == nil {
		t.Error("bad element accepted")
	}
}
