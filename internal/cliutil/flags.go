package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"freerideg/internal/units"
)

// Fatal prints "tool: err" to stderr and exits 1 — the shared failure
// path of every command-line tool.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// App registers the shared -app flag; names is the application
// registry listing shown in the usage string.
func App(def string, names []string) *string {
	return flag.String("app", def, "application: "+fmt.Sprint(names))
}

// Parallel registers the shared -parallel worker-bound flag (0 means
// GOMAXPROCS everywhere it is used).
func Parallel(usage string) *int {
	return flag.Int("parallel", 0, usage)
}

// BytesValue is a flag.Value for byte sizes ("512MB", "1.4GB"). Parsing
// happens at flag-parse time, so a bad size fails in the usage message
// instead of deep in the run.
type BytesValue struct {
	Bytes units.Bytes
	set   bool
}

// Bytes registers a byte-size flag with a default value.
func Bytes(name string, def units.Bytes, usage string) *BytesValue {
	v := &BytesValue{Bytes: def}
	flag.Var(v, name, usage)
	return v
}

func (v *BytesValue) String() string {
	if v == nil || v.Bytes == 0 {
		return ""
	}
	return v.Bytes.String()
}

func (v *BytesValue) Set(s string) error {
	b, err := units.ParseBytes(s)
	if err != nil {
		return err
	}
	if b <= 0 {
		return fmt.Errorf("cliutil: non-positive size %q", s)
	}
	v.Bytes, v.set = b, true
	return nil
}

// IsSet reports whether the flag appeared on the command line (vs.
// holding its default), so optional flags can fall back to another
// flag's value.
func (v *BytesValue) IsSet() bool { return v.set }

// RateValue is a flag.Value for per-second rates given as byte volumes
// ("100MB", "500KB").
type RateValue struct {
	Rate units.Rate
	set  bool
}

// Rate registers a rate flag with a default value.
func Rate(name string, def units.Rate, usage string) *RateValue {
	v := &RateValue{Rate: def}
	flag.Var(v, name, usage)
	return v
}

func (v *RateValue) String() string {
	if v == nil || v.Rate == 0 {
		return ""
	}
	return v.Rate.String()
}

func (v *RateValue) Set(s string) error {
	r, err := ParseRate(s)
	if err != nil {
		return err
	}
	v.Rate, v.set = r, true
	return nil
}

// IsSet reports whether the flag appeared on the command line.
func (v *RateValue) IsSet() bool { return v.set }

// NodePairValue is a flag.Value for "data,compute" node-count pairs,
// validated against the middleware's compute >= data >= 1 constraint.
type NodePairValue struct {
	Data, Compute int
}

// NodePair registers a node-pair flag with default counts.
func NodePair(name string, data, compute int, usage string) *NodePairValue {
	v := &NodePairValue{Data: data, Compute: compute}
	flag.Var(v, name, usage)
	return v
}

func (v *NodePairValue) String() string {
	if v == nil || v.Data == 0 {
		return ""
	}
	return fmt.Sprintf("%d,%d", v.Data, v.Compute)
}

func (v *NodePairValue) Set(s string) error {
	data, compute, err := ParseNodePair(s)
	if err != nil {
		return err
	}
	v.Data, v.Compute = data, compute
	return nil
}

// BytesListValue is a flag.Value for comma-separated byte-size sweeps
// ("256MB,1.4GB").
type BytesListValue struct {
	Sizes []units.Bytes
}

// BytesList registers a size-sweep flag with a single default size.
func BytesList(name string, def units.Bytes, usage string) *BytesListValue {
	v := &BytesListValue{Sizes: []units.Bytes{def}}
	flag.Var(v, name, usage)
	return v
}

func (v *BytesListValue) String() string {
	if v == nil {
		return ""
	}
	parts := make([]string, len(v.Sizes))
	for i, b := range v.Sizes {
		parts[i] = b.String()
	}
	return strings.Join(parts, ",")
}

func (v *BytesListValue) Set(s string) error {
	var sizes []units.Bytes
	for _, part := range strings.Split(s, ",") {
		b, err := units.ParseBytes(strings.TrimSpace(part))
		if err != nil {
			return err
		}
		if b <= 0 {
			return fmt.Errorf("cliutil: non-positive size %q in %q", part, s)
		}
		sizes = append(sizes, b)
	}
	if len(sizes) == 0 {
		return fmt.Errorf("cliutil: empty size list %q", s)
	}
	v.Sizes = sizes
	return nil
}
