//go:build race

package reqtrace

// raceEnabled skips allocation gates under the race detector, which
// instruments every context access and perturbs the counts.
const raceEnabled = true
