//go:build !race

package reqtrace

const raceEnabled = false
