// Package reqtrace is the request-scoped tracing layer of the serve
// plane: a context-carried, allocation-conscious span tree per HTTP
// request, plus the request-ID scheme every response and error envelope
// carries.
//
// The grid performance-prediction literature is unanimous that
// per-request measured breakdowns — not aggregates — are the raw
// material of a predictor. The middleware's event tracing already gives
// that to the execution pipeline; this package gives it to the serving
// layer: the instrument middleware opens a root span per sampled
// request, each layer the request crosses (handler decode/encode, the
// response cache, the rank engine, the workpool, simulation fills)
// records child spans through the context, and completed traces land in
// a bounded in-memory Ring served by GET /debug/requests.
//
// Design constraints, in order:
//
//   - An UNSAMPLED request must cost almost nothing: StartSpan/Child on
//     a context without a trace are allocation-free no-ops, and the only
//     per-request cost is the ID itself (one string) plus its response
//     header slot. The serve hot path's allocation gates pin this.
//   - A sampled request's spans are appended to one trace-owned slice
//     under one mutex — no per-span goroutines, channels, or maps.
//   - Work that deliberately detaches from the request's deadline (cache
//     fills, self-profiling simulations) still attributes its spans to
//     the originating request via Adopt, which carries the trace
//     reference — and nothing else — onto a fresh context.
package reqtrace

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the response header carrying the request ID, in canonical
// MIME form so http.Header.Set never re-canonicalizes (wire clients may
// spell it X-FG-Request-ID; header names are case-insensitive).
const Header = "X-Fg-Request-Id"

// idSeq numbers requests process-wide; idPrefix makes IDs from
// different process runs distinguishable in shared logs.
var (
	idSeq    atomic.Uint64
	idPrefix = func() string {
		// Nanos truncated to 32 bits: enough to tell two restarts apart,
		// short enough to keep IDs readable.
		return "fg-" + strconv.FormatUint(uint64(time.Now().UnixNano())&0xffffffff, 16)
	}()
)

// NewID returns a fresh request ID ("fg-<bootstamp>-<seq>"). One
// allocation: the returned string.
func NewID() string {
	var buf [40]byte
	b := append(buf[:0], idPrefix...)
	b = append(b, '-')
	b = strconv.AppendUint(b, idSeq.Add(1), 10)
	return string(b)
}

// span is one recorded interval. start/end are offsets from the trace's
// start; end < 0 marks a span not yet ended.
type span struct {
	name   string
	parent int32
	start  time.Duration
	end    time.Duration
	note   string
}

// maxSpans bounds one trace's span count so a pathological request (a
// full 256-item batch of cache misses, say) cannot grow a trace without
// limit; spans past the cap are counted and reported in the root note.
const maxSpans = 1024

// Trace is one request's span tree. spans[0] is the root span, opened
// by New. A Trace is safe for concurrent use: coalesced cache fills and
// detached profiling runs record spans from their own goroutines.
type Trace struct {
	id    string
	start time.Time

	mu       sync.Mutex
	spans    []span
	dropped  int
	finished bool
}

// New opens a trace: the root span (named after the request path) starts
// immediately.
func New(id, name string) *Trace {
	t := &Trace{id: id, start: time.Now(), spans: make([]span, 1, 8)}
	t.spans[0] = span{name: name, parent: -1, end: -1}
	return t
}

// ID returns the trace's request ID.
func (t *Trace) ID() string { return t.id }

// startSpan appends a child of parent and returns its index (-1 when
// the trace is finished or full — the returned Span no-ops).
func (t *Trace) startSpan(parent int32, name string) int32 {
	off := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return -1
	}
	if len(t.spans) >= maxSpans {
		t.dropped++
		return -1
	}
	t.spans = append(t.spans, span{name: name, parent: parent, start: off, end: -1})
	return int32(len(t.spans) - 1)
}

// Span is a handle on one recorded interval. The zero value (no trace
// in the context) no-ops everywhere, so callers never branch on whether
// tracing is on.
type Span struct {
	t   *Trace
	idx int32
}

// Traced reports whether the span records anywhere — the guard callers
// use before building an expensive annotation string.
func (s Span) Traced() bool { return s.t != nil && s.idx >= 0 }

// Annotate attaches a note to the span (outcomes like "hit", "miss",
// "i=3 ok"). Later notes append, space-separated.
func (s Span) Annotate(note string) {
	if !s.Traced() {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.idx]
	if sp.note == "" {
		sp.note = note
	} else {
		sp.note += " " + note
	}
	s.t.mu.Unlock()
}

// End closes the span. Ending twice keeps the first end time.
func (s Span) End() {
	if !s.Traced() {
		return
	}
	off := time.Since(s.t.start)
	s.t.mu.Lock()
	if sp := &s.t.spans[s.idx]; sp.end < 0 {
		sp.end = off
	}
	s.t.mu.Unlock()
}

// ctxKey carries a ctxRef — the trace plus the index of the span that
// is "current" (the parent of the next StartSpan) — through a context.
type ctxKey struct{}

type ctxRef struct {
	t    *Trace
	span int32
}

// WithTrace attaches t to ctx with the root span current.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxRef{t: t})
}

// FromContext returns the trace carried by ctx (nil when untraced).
func FromContext(ctx context.Context) *Trace {
	ref, _ := ctx.Value(ctxKey{}).(ctxRef)
	return ref.t
}

// StartSpan opens a child of ctx's current span and returns a derived
// context with the new span current — use it when downstream calls
// should nest under this span. On an untraced context it returns ctx
// unchanged and a no-op Span, without allocating.
func StartSpan(ctx context.Context, name string) (context.Context, Span) {
	ref, ok := ctx.Value(ctxKey{}).(ctxRef)
	if !ok {
		return ctx, Span{}
	}
	idx := ref.t.startSpan(ref.span, name)
	if idx < 0 {
		return ctx, Span{}
	}
	return context.WithValue(ctx, ctxKey{}, ctxRef{t: ref.t, span: idx}), Span{t: ref.t, idx: idx}
}

// Child opens a child of ctx's current span without deriving a new
// context — the cheap form for leaf spans (a decode, an encode, a rank
// round) whose callees don't record spans of their own.
func Child(ctx context.Context, name string) Span {
	ref, ok := ctx.Value(ctxKey{}).(ctxRef)
	if !ok {
		return Span{}
	}
	idx := ref.t.startSpan(ref.span, name)
	if idx < 0 {
		return Span{}
	}
	return Span{t: ref.t, idx: idx}
}

// Adopt returns dst carrying src's trace reference and current span.
// It is the bridge for deliberately-detached work: a cache fill or
// self-profiling run that must not inherit the request's deadline
// (dst is typically context.Background()) still records its spans into
// the originating request's trace. When src is untraced, dst is
// returned unchanged.
func Adopt(dst, src context.Context) context.Context {
	if ref, ok := src.Value(ctxKey{}).(ctxRef); ok {
		return context.WithValue(dst, ctxKey{}, ref)
	}
	return dst
}

// SpanRecord is one span of a completed trace as served by
// GET /debug/requests. Parent is the index of the parent span within
// Record.Spans (-1 for the root at index 0); StartNs is the offset from
// the request's start.
type SpanRecord struct {
	Name       string        `json:"name"`
	Parent     int           `json:"parent"`
	StartNs    time.Duration `json:"startNs"`
	DurationNs time.Duration `json:"durationNs"`
	Note       string        `json:"note,omitempty"`
}

// Record is one completed request trace: the ID (as echoed in
// X-FG-Request-ID), the HTTP outcome, and the span tree.
type Record struct {
	ID         string        `json:"id"`
	Path       string        `json:"path"`
	Status     int           `json:"status"`
	Start      time.Time     `json:"start"`
	DurationNs time.Duration `json:"durationNs"`
	Spans      []SpanRecord  `json:"spans"`
}

// Finish closes the root span with the request's measured duration and
// status and snapshots the trace into a Record. Spans still open (work
// the middleware abandoned at a deadline) are clamped to the root
// duration and marked unfinished; spans recorded after Finish are
// ignored. Finish is idempotent in effect but intended to be called
// once, by the middleware.
func (t *Trace) Finish(status int, d time.Duration) Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished = true
	t.spans[0].end = d
	rec := Record{
		ID:         t.id,
		Path:       t.spans[0].name,
		Status:     status,
		Start:      t.start,
		DurationNs: d,
		Spans:      make([]SpanRecord, len(t.spans)),
	}
	for i, sp := range t.spans {
		end, note := sp.end, sp.note
		if end < 0 {
			end = d
			if note == "" {
				note = "unfinished"
			} else {
				note += " unfinished"
			}
		}
		dur := end - sp.start
		if dur < 0 {
			dur = 0
		}
		rec.Spans[i] = SpanRecord{
			Name:       sp.name,
			Parent:     int(sp.parent),
			StartNs:    sp.start,
			DurationNs: dur,
			Note:       note,
		}
	}
	if t.dropped > 0 {
		rec.Spans[0].Note = appendNote(rec.Spans[0].Note,
			"dropped "+strconv.Itoa(t.dropped)+" spans over the per-trace cap")
	}
	return rec
}

func appendNote(note, extra string) string {
	if note == "" {
		return extra
	}
	return note + " " + extra
}
