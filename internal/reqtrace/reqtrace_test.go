package reqtrace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewIDUnique(t *testing.T) {
	const n = 1000
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		id := NewID()
		if !strings.HasPrefix(id, "fg-") {
			t.Fatalf("NewID() = %q, want fg- prefix", id)
		}
		if seen[id] {
			t.Fatalf("NewID() repeated %q", id)
		}
		seen[id] = true
	}
}

func TestSpanTree(t *testing.T) {
	tr := New("fg-test-1", "/predict/batch")
	ctx := WithTrace(context.Background(), tr)

	hctx, handler := StartSpan(ctx, "handler")
	decode := Child(hctx, "decode")
	decode.End()
	ictx, item := StartSpan(hctx, "item")
	item.Annotate("i=0")
	fill := Child(ictx, "fill")
	fill.Annotate("miss")
	fill.End()
	item.Annotate("ok")
	item.End()
	handler.End()

	rec := tr.Finish(200, 5*time.Millisecond)
	if rec.ID != "fg-test-1" || rec.Path != "/predict/batch" || rec.Status != 200 {
		t.Fatalf("record header = %q %q %d", rec.ID, rec.Path, rec.Status)
	}
	if rec.DurationNs != 5*time.Millisecond {
		t.Fatalf("root duration = %v", rec.DurationNs)
	}
	names := make([]string, len(rec.Spans))
	for i, sp := range rec.Spans {
		names[i] = sp.Name
	}
	want := []string{"/predict/batch", "handler", "decode", "item", "fill"}
	if len(names) != len(want) {
		t.Fatalf("spans = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("spans = %v, want %v", names, want)
		}
	}
	// Parent chain: root -1, handler under root, decode+item under
	// handler, fill under item.
	wantParents := []int{-1, 0, 1, 1, 3}
	for i, sp := range rec.Spans {
		if sp.Parent != wantParents[i] {
			t.Fatalf("span %d (%s) parent = %d, want %d", i, sp.Name, sp.Parent, wantParents[i])
		}
	}
	if rec.Spans[4].Note != "miss" {
		t.Fatalf("fill note = %q", rec.Spans[4].Note)
	}
	if rec.Spans[3].Note != "i=0 ok" {
		t.Fatalf("item note = %q", rec.Spans[3].Note)
	}
}

func TestUntracedContextNoOps(t *testing.T) {
	ctx := context.Background()
	c2, sp := StartSpan(ctx, "x")
	if c2 != ctx {
		t.Fatal("StartSpan on untraced ctx derived a new context")
	}
	if sp.Traced() {
		t.Fatal("StartSpan on untraced ctx returned a live span")
	}
	sp.Annotate("ignored")
	sp.End()
	if c := Child(ctx, "y"); c.Traced() {
		t.Fatal("Child on untraced ctx returned a live span")
	}
	if Adopt(context.Background(), ctx) != context.Background() {
		t.Fatal("Adopt from untraced ctx should return dst unchanged")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on untraced ctx")
	}
}

func TestUntracedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		c, sp := StartSpan(ctx, "x")
		_ = c
		sp.End()
		Child(ctx, "y").End()
	})
	if allocs != 0 {
		t.Fatalf("untraced span ops allocate %.1f allocs/op, want 0", allocs)
	}
}

func TestAdoptCarriesTraceNotDeadline(t *testing.T) {
	tr := New("fg-test-2", "/predict")
	reqCtx, cancel := context.WithCancel(WithTrace(context.Background(), tr))
	hctx, _ := StartSpan(reqCtx, "handler")
	detached := Adopt(context.Background(), hctx)
	cancel()
	if detached.Err() != nil {
		t.Fatal("Adopt leaked the source context's cancellation")
	}
	sp := Child(detached, "fill")
	if !sp.Traced() {
		t.Fatal("Adopt dropped the trace reference")
	}
	sp.End()
	rec := tr.Finish(200, time.Millisecond)
	// fill must be a child of handler (index 1), not the root.
	last := rec.Spans[len(rec.Spans)-1]
	if last.Name != "fill" || last.Parent != 1 {
		t.Fatalf("adopted span = %+v, want fill under handler", last)
	}
}

func TestFinishClampsOpenSpans(t *testing.T) {
	tr := New("fg-test-3", "/predict")
	ctx := WithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "handler")
	_ = sp // never ended: simulates work abandoned at a deadline
	rec := tr.Finish(504, 2*time.Millisecond)
	h := rec.Spans[1]
	if !strings.Contains(h.Note, "unfinished") {
		t.Fatalf("open span note = %q, want unfinished marker", h.Note)
	}
	if h.StartNs+h.DurationNs > rec.DurationNs {
		t.Fatalf("clamped span extends past root: start %v dur %v root %v",
			h.StartNs, h.DurationNs, rec.DurationNs)
	}
	// Spans recorded after Finish are ignored.
	late := Child(ctx, "late")
	if late.Traced() {
		t.Fatal("span recorded after Finish")
	}
}

func TestSpanCap(t *testing.T) {
	tr := New("fg-test-4", "/x")
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < maxSpans+10; i++ {
		Child(ctx, "s").End()
	}
	rec := tr.Finish(200, time.Millisecond)
	if len(rec.Spans) != maxSpans {
		t.Fatalf("spans = %d, want cap %d", len(rec.Spans), maxSpans)
	}
	if !strings.Contains(rec.Spans[0].Note, "dropped") {
		t.Fatalf("root note = %q, want dropped marker", rec.Spans[0].Note)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("fg-test-5", "/x")
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sctx, sp := StartSpan(ctx, "outer")
				Child(sctx, "inner").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	rec := tr.Finish(200, time.Millisecond)
	if got := len(rec.Spans); got != 1+8*50*2 {
		t.Fatalf("spans = %d, want %d", got, 1+8*50*2)
	}
}

func TestRingRecentRotation(t *testing.T) {
	r := NewRing(8) // 1 slow + 1 err reserved, 6 recent
	for i := 0; i < 10; i++ {
		r.Add(Record{ID: NewID(), Status: 200, DurationNs: time.Duration(i)})
	}
	snap := r.Snapshot()
	if len(snap.Recent) != 6 {
		t.Fatalf("recent = %d, want 6", len(snap.Recent))
	}
	// Newest first: durations 9, 8, ... 4.
	for i, rec := range snap.Recent {
		if rec.DurationNs != time.Duration(9-i) {
			t.Fatalf("recent[%d] duration = %d, want %d", i, rec.DurationNs, 9-i)
		}
	}
	if len(snap.Errored) != 0 {
		t.Fatalf("errored = %d, want 0", len(snap.Errored))
	}
}

func TestRingSlowestSurvivesFastBurst(t *testing.T) {
	r := NewRing(64) // 8 slowest slots
	slow := Record{ID: "slow", Status: 200, DurationNs: time.Hour}
	r.Add(slow)
	for i := 0; i < 1000; i++ {
		r.Add(Record{ID: "fast", Status: 200, DurationNs: time.Microsecond})
	}
	snap := r.Snapshot()
	if len(snap.Slowest) == 0 || snap.Slowest[0].ID != "slow" {
		t.Fatalf("slowest section lost the slow trace: %+v", snap.Slowest)
	}
	for i := 1; i < len(snap.Slowest); i++ {
		if snap.Slowest[i].DurationNs > snap.Slowest[i-1].DurationNs {
			t.Fatal("slowest section not sorted slowest-first")
		}
	}
}

func TestRingErroredReservation(t *testing.T) {
	r := NewRing(64) // 8 errored slots
	r.Add(Record{ID: "err-old", Status: 504, DurationNs: time.Millisecond})
	for i := 0; i < 1000; i++ {
		r.Add(Record{ID: "ok", Status: 200, DurationNs: time.Millisecond})
	}
	r.Add(Record{ID: "err-new", Status: 500, DurationNs: time.Millisecond})
	snap := r.Snapshot()
	if len(snap.Errored) != 2 {
		t.Fatalf("errored = %d, want 2", len(snap.Errored))
	}
	if snap.Errored[0].ID != "err-new" || snap.Errored[1].ID != "err-old" {
		t.Fatalf("errored order = %q, %q; want newest first", snap.Errored[0].ID, snap.Errored[1].ID)
	}
	// The old error survived 1000 successes that rotated the recent
	// section many times over.
	for _, rec := range snap.Recent {
		if rec.ID == "err-old" {
			t.Fatal("err-old should have rotated out of recent (that's what the reservation is for)")
		}
	}
}

func TestRingErroredRotation(t *testing.T) {
	r := NewRing(8) // 1 errored slot
	r.Add(Record{ID: "e1", Status: 500})
	r.Add(Record{ID: "e2", Status: 503})
	snap := r.Snapshot()
	if len(snap.Errored) != 1 || snap.Errored[0].ID != "e2" {
		t.Fatalf("errored = %+v, want just e2 (most recent)", snap.Errored)
	}
}
