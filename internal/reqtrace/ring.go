package reqtrace

import "sync"

// DefaultRingCapacity is the total trace count a Ring retains when
// built with capacity <= 0.
const DefaultRingCapacity = 256

// Ring retains completed request traces in bounded memory. Capacity is
// split three ways so the traces an operator actually wants survive
// traffic volume:
//
//   - recent (3/4): the last N completed requests, overwritten
//     round-robin — the "what is the service doing right now" view.
//   - slowest (1/8): the N slowest requests seen since startup; a new
//     trace displaces the current fastest resident only if it is
//     slower. A burst of fast requests can never flush the trace of
//     the one pathological request worth diagnosing.
//   - errored (1/8): the most recent N requests with status >= 400,
//     overwritten round-robin — errors are rare relative to traffic,
//     so without the reservation they would rotate out of the recent
//     section long before anyone looks.
//
// One trace may appear in more than one section (a slow failed request
// is legitimately all three); Snapshot reports the sections separately
// rather than deduplicating, so each section's retention policy stays
// legible to the reader.
type Ring struct {
	mu      sync.Mutex
	recent  []Record
	next    int
	slowest []Record
	errored []Record
	errNext int
	slowCap int
	errCap  int
}

// NewRing builds a ring retaining up to capacity traces total
// (DefaultRingCapacity when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	slowCap := capacity / 8
	errCap := capacity / 8
	// Tiny rings (tests use capacity 4) still reserve one slot each.
	if slowCap < 1 {
		slowCap = 1
	}
	if errCap < 1 {
		errCap = 1
	}
	recentCap := capacity - slowCap - errCap
	if recentCap < 1 {
		recentCap = 1
	}
	return &Ring{
		recent:  make([]Record, 0, recentCap),
		slowest: make([]Record, 0, slowCap),
		errored: make([]Record, 0, errCap),
		slowCap: slowCap,
		errCap:  errCap,
	}
}

// Add retains rec per the section policies above.
func (r *Ring) Add(rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recent) < cap(r.recent) {
		r.recent = append(r.recent, rec)
	} else {
		r.recent[r.next] = rec
		r.next = (r.next + 1) % cap(r.recent)
	}
	if len(r.slowest) < r.slowCap {
		r.slowest = append(r.slowest, rec)
	} else {
		fastest := 0
		for i := 1; i < len(r.slowest); i++ {
			if r.slowest[i].DurationNs < r.slowest[fastest].DurationNs {
				fastest = i
			}
		}
		if rec.DurationNs > r.slowest[fastest].DurationNs {
			r.slowest[fastest] = rec
		}
	}
	if rec.Status >= 400 {
		if len(r.errored) < r.errCap {
			r.errored = append(r.errored, rec)
		} else {
			r.errored[r.errNext] = rec
			r.errNext = (r.errNext + 1) % r.errCap
		}
	}
}

// RingSnapshot is the JSON document GET /debug/requests serves: each
// retention section reported separately, newest-first for the
// round-robin sections, slowest-first for the slowest section.
type RingSnapshot struct {
	Recent  []Record `json:"recent"`
	Slowest []Record `json:"slowest"`
	Errored []Record `json:"errored"`
}

// Snapshot copies the ring's current contents.
func (r *Ring) Snapshot() RingSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingSnapshot{
		Recent:  newestFirst(r.recent, r.next),
		Slowest: slowestFirst(r.slowest),
		Errored: newestFirst(r.errored, r.errNext),
	}
}

// newestFirst linearizes a round-robin buffer (next is the index the
// next Add would overwrite, i.e. the oldest resident once full).
func newestFirst(buf []Record, next int) []Record {
	out := make([]Record, 0, len(buf))
	for i := 0; i < len(buf); i++ {
		// Walk backwards from the most recently written slot.
		idx := (next - 1 - i + 2*len(buf)) % len(buf)
		out = append(out, buf[idx])
	}
	return out
}

func slowestFirst(buf []Record) []Record {
	out := append([]Record(nil), buf...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DurationNs > out[j-1].DurationNs; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
