package simgrid

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// FaultKind classifies one injected fault against a simulated grid node.
// The taxonomy follows what grid workload studies report as the dominant
// failure modes of production grids: whole-node crashes, degraded storage,
// and lossy wide-area links.
type FaultKind int

const (
	// FaultCrash permanently removes a compute node: the node performs no
	// further reduction work and its in-progress pass contribution is
	// lost. The middleware re-partitions the node's chunks onto the
	// surviving compute nodes.
	FaultCrash FaultKind = iota
	// FaultSlowDisk degrades a storage node's disk: reads take Factor
	// times as long for the next Count chunk reads (Count = 0 slows every
	// remaining read of the run).
	FaultSlowDisk
	// FaultFlakyLink makes a storage node's uplink lossy: the next Count
	// chunk deliveries from the node fail and must be retried by the
	// middleware's recovery layer.
	FaultFlakyLink
)

var faultKindNames = [...]string{
	FaultCrash:     "crash",
	FaultSlowDisk:  "slow-disk",
	FaultFlakyLink: "flaky-link",
}

func (k FaultKind) String() string {
	if k >= 0 && int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scheduled fault. Faults trigger on logical protocol
// coordinates rather than wall-clock times so that the same plan is
// meaningful on the simulated backend (virtual time) and on the real
// goroutine backends (wall time): Pass is the middleware pass and Chunk
// the per-node chunk ordinal within that pass at which the fault fires.
type Fault struct {
	// Kind selects the failure mode.
	Kind FaultKind
	// Node is the target node: a compute node for FaultCrash, a storage
	// node for FaultSlowDisk and FaultFlakyLink. Faults addressing nodes a
	// run does not have are ignored, so one plan can be replayed across
	// differently sized configurations.
	Node int
	// Pass is the pass in which the fault fires (0 = first pass).
	Pass int
	// Chunk is the per-node chunk ordinal within Pass at which the fault
	// fires: for a crash, how many chunks the node completes in its crash
	// pass before dying; for disk/link faults, the storage node's
	// delivery ordinal at which degradation starts.
	Chunk int
	// Factor is the slowdown multiplier of a slow-disk fault (> 1).
	Factor float64
	// Count bounds the fault's extent: reads affected by a slow-disk
	// fault (0 = the rest of the run) or failed deliveries of a
	// flaky-link fault (>= 1).
	Count int
}

// Validate reports whether the fault is well-formed.
func (f Fault) Validate() error {
	if f.Node < 0 || f.Pass < 0 || f.Chunk < 0 {
		return fmt.Errorf("simgrid: fault %v has negative coordinates (node=%d pass=%d chunk=%d)",
			f.Kind, f.Node, f.Pass, f.Chunk)
	}
	switch f.Kind {
	case FaultCrash:
		if f.Factor != 0 || f.Count != 0 {
			return fmt.Errorf("simgrid: crash fault takes no factor/count")
		}
	case FaultSlowDisk:
		if !(f.Factor > 1) || math.IsInf(f.Factor, 0) {
			return fmt.Errorf("simgrid: slow-disk factor %v, need finite > 1", f.Factor)
		}
		if f.Count < 0 {
			return fmt.Errorf("simgrid: slow-disk count %d < 0", f.Count)
		}
	case FaultFlakyLink:
		if f.Count < 1 {
			return fmt.Errorf("simgrid: flaky-link count %d, need >= 1", f.Count)
		}
		if f.Factor != 0 {
			return fmt.Errorf("simgrid: flaky-link fault takes no factor")
		}
	default:
		return fmt.Errorf("simgrid: unknown fault kind %d", int(f.Kind))
	}
	return nil
}

// String renders the fault in the canonical plan syntax.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s node=%d pass=%d chunk=%d", f.Kind, f.Node, f.Pass, f.Chunk)
	if f.Kind == FaultSlowDisk {
		fmt.Fprintf(&b, " factor=%s count=%d", strconv.FormatFloat(f.Factor, 'g', -1, 64), f.Count)
	}
	if f.Kind == FaultFlakyLink {
		fmt.Fprintf(&b, " count=%d", f.Count)
	}
	return b.String()
}

// FaultPlan is a deterministic fault schedule: given the same plan, a run
// injects exactly the same fault sequence, which is what makes fault
// traces reproducible and golden-testable.
type FaultPlan struct {
	// Seed records the RNG seed a generated plan was derived from
	// (0 for hand-written plans); it does not influence execution.
	Seed int64
	// Faults is the schedule, applied in order per target node.
	Faults []Fault
}

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool { return len(p.Faults) == 0 }

// Validate checks every fault in the plan.
func (p FaultPlan) Validate() error {
	for i, f := range p.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// String renders the plan in the text syntax ParseFaultPlan accepts:
// one fault per entry, entries joined by "; ".
func (p FaultPlan) String() string {
	entries := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		entries[i] = f.String()
	}
	return strings.Join(entries, "; ")
}

// CrashedNodes returns the distinct compute nodes the plan crashes, in
// ascending order.
func (p FaultPlan) CrashedNodes() []int {
	seen := make(map[int]bool)
	for _, f := range p.Faults {
		if f.Kind == FaultCrash {
			seen[f.Node] = true
		}
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// ParseFaultPlan parses the text fault-plan syntax:
//
//	crash node=2 pass=1 chunk=3; flaky-link node=0 count=2
//	slow-disk node=1 pass=0 factor=4 count=8
//
// Entries are separated by semicolons or newlines; fields inside an entry
// by whitespace. The first field is the fault kind (crash, slow-disk,
// flaky-link); the rest are key=value pairs. pass and chunk default to 0,
// a slow-disk factor to 4, a slow-disk count to 0 (rest of run), and a
// flaky-link count to 1. Malformed plans return an error; ParseFaultPlan
// never panics (see FuzzParseFaultPlan).
func ParseFaultPlan(s string) (FaultPlan, error) {
	var plan FaultPlan
	split := func(r rune) bool { return r == ';' || r == '\n' }
	for _, entry := range strings.FieldsFunc(s, split) {
		fields := strings.Fields(entry)
		if len(fields) == 0 {
			continue
		}
		f, err := parseFault(fields)
		if err != nil {
			return FaultPlan{}, fmt.Errorf("simgrid: fault plan entry %q: %w", strings.TrimSpace(entry), err)
		}
		plan.Faults = append(plan.Faults, f)
	}
	if err := plan.Validate(); err != nil {
		return FaultPlan{}, fmt.Errorf("simgrid: fault plan: %w", err)
	}
	return plan, nil
}

func parseFault(fields []string) (Fault, error) {
	f := Fault{Node: -1}
	switch fields[0] {
	case "crash":
		f.Kind = FaultCrash
	case "slow-disk":
		f.Kind = FaultSlowDisk
		f.Factor = 4
	case "flaky-link":
		f.Kind = FaultFlakyLink
		f.Count = 1
	default:
		return Fault{}, fmt.Errorf("unknown fault kind %q", fields[0])
	}
	seen := make(map[string]bool)
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Fault{}, fmt.Errorf("field %q is not key=value", kv)
		}
		if seen[key] {
			return Fault{}, fmt.Errorf("duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "node", "pass", "chunk", "count":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Fault{}, fmt.Errorf("key %s: %v", key, err)
			}
			switch key {
			case "node":
				f.Node = n
			case "pass":
				f.Pass = n
			case "chunk":
				f.Chunk = n
			case "count":
				if f.Kind == FaultCrash {
					return Fault{}, fmt.Errorf("crash fault takes no count")
				}
				f.Count = n
			}
		case "factor":
			if f.Kind != FaultSlowDisk {
				return Fault{}, fmt.Errorf("%s fault takes no factor", f.Kind)
			}
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Fault{}, fmt.Errorf("key factor: %v", err)
			}
			f.Factor = x
		default:
			return Fault{}, fmt.Errorf("unknown key %q", key)
		}
	}
	if f.Node < 0 {
		return Fault{}, fmt.Errorf("missing node=")
	}
	return f, nil
}

// GenerateFaultPlan derives a random but fully seed-determined fault plan
// for a run shape: the same (seed, dataNodes, computeNodes, passes)
// always yields the identical plan. Generated plans are guaranteed to
// leave at least one compute node alive (crashes target distinct nodes
// and never all of them) and keep per-fault failure counts small enough
// that the middleware's default retry budget recovers from them.
func GenerateFaultPlan(seed int64, dataNodes, computeNodes, passes int) FaultPlan {
	if dataNodes < 1 {
		dataNodes = 1
	}
	if computeNodes < 1 {
		computeNodes = 1
	}
	if passes < 1 {
		passes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	plan := FaultPlan{Seed: seed}
	nFaults := 1 + rng.Intn(4)
	crashed := make(map[int]bool)
	for i := 0; i < nFaults; i++ {
		switch rng.Intn(3) {
		case 0: // crash, if a node can still be spared
			if len(crashed) >= computeNodes-1 {
				continue
			}
			node := rng.Intn(computeNodes)
			if crashed[node] {
				continue
			}
			crashed[node] = true
			plan.Faults = append(plan.Faults, Fault{
				Kind:  FaultCrash,
				Node:  node,
				Pass:  rng.Intn(passes),
				Chunk: rng.Intn(4),
			})
		case 1:
			plan.Faults = append(plan.Faults, Fault{
				Kind:   FaultSlowDisk,
				Node:   rng.Intn(dataNodes),
				Pass:   0,
				Chunk:  rng.Intn(4),
				Factor: 2 + 6*rng.Float64(),
				Count:  rng.Intn(8),
			})
		case 2:
			plan.Faults = append(plan.Faults, Fault{
				Kind:  FaultFlakyLink,
				Node:  rng.Intn(dataNodes),
				Pass:  0,
				Chunk: rng.Intn(4),
				Count: 1 + rng.Intn(3),
			})
		}
	}
	return plan
}
