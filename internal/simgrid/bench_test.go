package simgrid

import (
	"testing"
	"time"
)

// BenchmarkWaitResume measures the bare cost of one calendar event: a
// process waiting on the virtual clock and being resumed by the engine.
func BenchmarkWaitResume(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	e.Spawn("clock", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(time.Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineEventLoop measures scheduler dispatch under contention:
// eight processes time-share one resource and exchange messages, the
// shape of the middleware's data-server/compute-node interaction.
func BenchmarkEngineEventLoop(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	const workers = 8
	res := e.NewResource("disk", 1)
	barr := e.NewBarrier("round", workers)
	rounds := b.N/workers + 1
	for w := 0; w < workers; w++ {
		e.Spawn("worker", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Use(res, time.Microsecond)
				p.Arrive(barr)
			}
		})
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSpawn measures process creation and teardown, exercising the
// proc slab and free-list reuse across short-lived processes.
func BenchmarkSpawn(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	e.Spawn("parent", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			e.Spawn("child", func(c *Proc) {
				c.Wait(time.Microsecond)
			})
			p.Wait(2 * time.Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
