package simgrid

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseFaultPlanBasic(t *testing.T) {
	plan, err := ParseFaultPlan("crash node=2 pass=1 chunk=3; flaky-link node=0 count=2\nslow-disk node=1 factor=4.5 count=8")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: FaultCrash, Node: 2, Pass: 1, Chunk: 3},
		{Kind: FaultFlakyLink, Node: 0, Count: 2},
		{Kind: FaultSlowDisk, Node: 1, Factor: 4.5, Count: 8},
	}
	if !reflect.DeepEqual(plan.Faults, want) {
		t.Errorf("parsed %+v, want %+v", plan.Faults, want)
	}
}

func TestParseFaultPlanDefaults(t *testing.T) {
	plan, err := ParseFaultPlan("slow-disk node=0; flaky-link node=1")
	if err != nil {
		t.Fatal(err)
	}
	if f := plan.Faults[0]; f.Factor != 4 || f.Count != 0 {
		t.Errorf("slow-disk defaults = %+v, want factor=4 count=0", f)
	}
	if f := plan.Faults[1]; f.Count != 1 {
		t.Errorf("flaky-link defaults = %+v, want count=1", f)
	}
}

func TestParseFaultPlanEmpty(t *testing.T) {
	for _, s := range []string{"", "  ", ";;;", "\n\n"} {
		plan, err := ParseFaultPlan(s)
		if err != nil {
			t.Errorf("ParseFaultPlan(%q) = %v", s, err)
		}
		if !plan.Empty() {
			t.Errorf("ParseFaultPlan(%q) yielded %d faults", s, len(plan.Faults))
		}
	}
}

func TestParseFaultPlanRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"meteor node=0",                // unknown kind
		"crash",                        // missing node
		"crash node=-1",                // negative node
		"crash node=0 factor=2",        // crash takes no factor
		"crash node=0 count=2",         // crash takes no count
		"crash node=0 pass=x",          // non-numeric
		"crash node=0 node=1",          // duplicate key
		"crash node=0 color=red",       // unknown key
		"crash node",                   // not key=value
		"slow-disk node=0 factor=1",    // factor must exceed 1
		"slow-disk node=0 factor=+Inf", // non-finite factor
		"slow-disk node=0 count=-1",    // negative window
		"flaky-link node=0 count=0",    // zero failures
		"flaky-link node=0 factor=2",   // link fault takes no factor
	} {
		if _, err := ParseFaultPlan(s); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", s)
		}
	}
}

func TestFaultPlanStringRoundTrip(t *testing.T) {
	plan, err := ParseFaultPlan("crash node=2 pass=1 chunk=3; slow-disk node=1 factor=2.25 count=5; flaky-link node=0 pass=0 chunk=2 count=3")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseFaultPlan(plan.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", plan.String(), err)
	}
	if !reflect.DeepEqual(plan.Faults, again.Faults) {
		t.Errorf("round trip changed plan: %+v -> %+v", plan.Faults, again.Faults)
	}
}

func TestGenerateFaultPlanDeterministic(t *testing.T) {
	a := GenerateFaultPlan(42, 2, 8, 10)
	b := GenerateFaultPlan(42, 2, 8, 10)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different plans:\n%v\n%v", a, b)
	}
	c := GenerateFaultPlan(43, 2, 8, 10)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Error("different seeds produced identical plans")
	}
}

func TestGenerateFaultPlanAlwaysValidAndSurvivable(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		for _, c := range []int{1, 2, 4} {
			plan := GenerateFaultPlan(seed, 2, c, 5)
			if err := plan.Validate(); err != nil {
				t.Fatalf("seed %d c=%d: invalid plan: %v", seed, c, err)
			}
			if got := len(plan.CrashedNodes()); got >= c {
				t.Fatalf("seed %d: plan crashes %d of %d compute nodes", seed, got, c)
			}
			for _, f := range plan.Faults {
				if f.Kind == FaultCrash && f.Node >= c {
					t.Fatalf("seed %d: crash targets node %d of %d", seed, f.Node, c)
				}
				if f.Kind != FaultCrash && f.Node >= 2 {
					t.Fatalf("seed %d: storage fault targets node %d of 2", seed, f.Node)
				}
			}
		}
	}
}

func TestGenerateFaultPlanRoundTripsThroughText(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		plan := GenerateFaultPlan(seed, 4, 8, 10)
		again, err := ParseFaultPlan(plan.String())
		if err != nil {
			t.Fatalf("seed %d: %q does not re-parse: %v", seed, plan.String(), err)
		}
		if !reflect.DeepEqual(plan.Faults, again.Faults) {
			t.Fatalf("seed %d: text round trip changed plan", seed)
		}
	}
}

func TestFaultKindStrings(t *testing.T) {
	for k, want := range map[FaultKind]string{
		FaultCrash: "crash", FaultSlowDisk: "slow-disk", FaultFlakyLink: "flaky-link",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := FaultKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind renders as %q", got)
	}
}
