package simgrid

import (
	"reflect"
	"testing"
)

// FuzzParseFaultPlan pins down the -fault-plan text format: any input
// either parses into a valid plan that round-trips through String, or
// errors — it must never panic. The seed corpus covers every kind,
// defaults, separators, and known-tricky numeric forms; `go test` runs
// the seeds in regression mode without -fuzz.
func FuzzParseFaultPlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"crash node=0",
		"crash node=2 pass=1 chunk=3",
		"slow-disk node=1 factor=4.5 count=8",
		"slow-disk node=0",
		"flaky-link node=0 count=2; crash node=1 pass=2",
		"crash node=1\nflaky-link node=0",
		";; crash node=0 ;",
		"crash node=0; crash node=0",
		// Known-tricky inputs: huge numbers, float edge syntax, stray
		// separators, missing values.
		"crash node=99999999999999999999",
		"slow-disk node=0 factor=1e309",
		"slow-disk node=0 factor=NaN",
		"slow-disk node=0 factor=-4",
		"slow-disk node=0 factor=0x1p4",
		"flaky-link node=0 count=-9223372036854775808",
		"crash node=",
		"crash =0",
		"crash node==0",
		"crash node=0 pass=1 pass=2",
		"crash\tnode=0",
		"\x00crash node=0",
		"crash node=0\r",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		plan, err := ParseFaultPlan(s)
		if err != nil {
			return
		}
		if verr := plan.Validate(); verr != nil {
			t.Fatalf("ParseFaultPlan(%q) accepted an invalid plan: %v", s, verr)
		}
		// Canonical text must re-parse to the same schedule.
		again, err := ParseFaultPlan(plan.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", plan.String(), s, err)
		}
		if !reflect.DeepEqual(plan.Faults, again.Faults) {
			t.Fatalf("round trip changed plan: %+v -> %+v", plan.Faults, again.Faults)
		}
	})
}
