package simgrid

import (
	"fmt"
	"time"
)

// Resource is a FIFO-queued resource with a fixed capacity (number of
// simultaneous holders). Disks, network endpoints, and the cluster
// interconnect are modeled as Resources.
type Resource struct {
	e        *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*Proc
	granted  map[*Proc]int // tokens granted but not yet claimed after wake

	busy      time.Duration // total held time across holders
	lastStart map[*Proc]time.Duration
}

// NewResource creates a resource with the given capacity (>= 1).
func (e *Engine) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("simgrid: resource %q capacity must be >= 1", name))
	}
	return &Resource{
		e:         e,
		name:      name,
		capacity:  capacity,
		granted:   make(map[*Proc]int),
		lastStart: make(map[*Proc]time.Duration),
	}
}

// Name reports the resource name.
func (r *Resource) Name() string { return r.name }

// BusyTime reports the cumulative virtual time the resource has been held,
// summed over holders (a capacity-2 resource held by two processes for 1s
// accumulates 2s).
func (r *Resource) BusyTime() time.Duration { return r.busy }

// Acquire takes one unit of the resource, blocking in FIFO order until a
// unit is free. Each Acquire must be paired with a Release by the same
// process.
func (p *Proc) Acquire(r *Resource) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		r.lastStart[p] = r.e.now
		return
	}
	r.waiters = append(r.waiters, p)
	p.park(blockReason{op: opAcquire, name: r.name})
	// Woken by Release, which already transferred the unit to us.
	if r.granted[p] == 0 {
		panic(fmt.Sprintf("simgrid: %s woken without grant on %s", p.name, r.name))
	}
	r.granted[p]--
	if r.granted[p] == 0 {
		delete(r.granted, p)
	}
	r.lastStart[p] = r.e.now
}

// Release returns one unit of the resource and wakes the first waiter,
// if any, at the current virtual time.
func (p *Proc) Release(r *Resource) {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("simgrid: release of idle resource %q by %s", r.name, p.name))
	}
	if start, ok := r.lastStart[p]; ok {
		r.busy += r.e.now - start
		delete(r.lastStart, p)
	}
	r.inUse--
	if len(r.waiters) > 0 {
		next := popProc(&r.waiters)
		r.inUse++ // unit transferred directly to the waiter
		r.granted[next]++
		r.e.schedule(r.e.now, next)
	}
}

// Use acquires the resource, holds it for d of virtual time, and releases
// it. It returns the total elapsed virtual time including queueing delay.
func (p *Proc) Use(r *Resource, d time.Duration) time.Duration {
	start := p.e.now
	p.Acquire(r)
	p.Wait(d)
	p.Release(r)
	return p.e.now - start
}

// Mailbox is an unbounded FIFO queue of messages between processes.
// Put never blocks; Get blocks until a message is available.
type Mailbox struct {
	e       *Engine
	name    string
	queue   []interface{}
	waiters []*Proc
}

// NewMailbox creates an empty mailbox.
func (e *Engine) NewMailbox(name string) *Mailbox {
	return &Mailbox{e: e, name: name}
}

// Len reports the number of queued messages.
func (m *Mailbox) Len() int { return len(m.queue) }

// Put enqueues a message and wakes the first waiting receiver, if any.
// It may be called from any process (or from spawn-time setup code).
func (m *Mailbox) Put(v interface{}) {
	m.queue = append(m.queue, v)
	if len(m.waiters) > 0 {
		m.e.schedule(m.e.now, popProc(&m.waiters))
	}
}

// Get dequeues the oldest message, blocking until one is available.
func (p *Proc) Get(m *Mailbox) interface{} {
	for len(m.queue) == 0 {
		m.waiters = append(m.waiters, p)
		p.park(blockReason{op: opRecv, name: m.name})
	}
	n := len(m.queue)
	v := m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue[n-1] = nil
	m.queue = m.queue[:n-1]
	return v
}

// popProc dequeues the first waiter by shifting in place, keeping the
// slice anchored to its backing array. Re-slicing from the front
// (s = s[1:]) would shrink the capacity on every wake and force a fresh
// allocation per park/resume cycle; waiter queues are short (bounded by
// the process count), so the copy is cheaper than that steady-state
// garbage.
func popProc(s *[]*Proc) *Proc {
	q := *s
	n := len(q)
	p := q[0]
	copy(q, q[1:])
	q[n-1] = nil
	*s = q[:n-1]
	return p
}

// Barrier blocks a group of processes until n of them have arrived.
type Barrier struct {
	e       *Engine
	name    string
	n       int
	arrived int
	waiters []*Proc
	epoch   int
}

// NewBarrier creates a barrier for n participants.
func (e *Engine) NewBarrier(name string, n int) *Barrier {
	if n < 1 {
		panic(fmt.Sprintf("simgrid: barrier %q needs n >= 1", name))
	}
	return &Barrier{e: e, name: name, n: n}
}

// Arrive blocks until all n participants have arrived, then releases them
// all at the current virtual time. The barrier is reusable.
func (p *Proc) Arrive(b *Barrier) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.epoch++
		for _, w := range b.waiters {
			b.e.schedule(b.e.now, w)
		}
		b.waiters = b.waiters[:0]
		return
	}
	epoch := b.epoch
	b.waiters = append(b.waiters, p)
	for b.epoch == epoch {
		p.park(blockReason{op: opBarrier, name: b.name})
	}
}
