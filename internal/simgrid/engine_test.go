package simgrid

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestWaitAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Spawn("p", func(p *Proc) {
		p.Wait(3 * time.Second)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*time.Second {
		t.Fatalf("time after wait = %v, want 3s", at)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("engine clock = %v, want 3s", e.Now())
	}
}

func TestNegativeWaitIsZero(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		p.Wait(-time.Second)
		if p.Now() != 0 {
			t.Errorf("negative wait advanced the clock to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	e := NewEngine()
	var order []string
	step := func(name string, d time.Duration) func(*Proc) {
		return func(p *Proc) {
			p.Wait(d)
			order = append(order, fmt.Sprintf("%s@%v", name, p.Now()))
		}
	}
	e.Spawn("a", step("a", 2*time.Second))
	e.Spawn("b", step("b", time.Second))
	e.Spawn("c", step("c", 2*time.Second))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(order, " ")
	// b fires first; a and c tie at 2s and must resolve in spawn order.
	want := "b@1s a@2s c@2s"
	if got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestRunIsRepeatable(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		res := e.NewResource("r", 1)
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			e.Spawn(name, func(p *Proc) {
				p.Use(res, time.Duration(i+1)*time.Millisecond)
				order = append(order, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for trial := 0; trial < 10; trial++ {
		if got := run(); strings.Join(got, ",") != strings.Join(first, ",") {
			t.Fatalf("trial %d order %v differs from first %v", trial, got, first)
		}
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine()
	var childTime time.Duration
	e.Spawn("parent", func(p *Proc) {
		p.Wait(time.Second)
		e.Spawn("child", func(c *Proc) {
			c.Wait(time.Second)
			childTime = c.Now()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 2*time.Second {
		t.Fatalf("child finished at %v, want 2s", childTime)
	}
}

func TestFailPropagates(t *testing.T) {
	e := NewEngine()
	boom := errors.New("boom")
	e.Spawn("failer", func(p *Proc) {
		p.Wait(time.Millisecond)
		p.Fail(boom)
	})
	e.Spawn("waiter", func(p *Proc) {
		p.Wait(time.Hour)
	})
	err := e.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("Run() = %v, want %v", err, boom)
	}
}

func TestPanicBecomesError(t *testing.T) {
	e := NewEngine()
	e.Spawn("panicker", func(p *Proc) {
		panic("kaboom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Run() = %v, want panic error", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("never")
	e.Spawn("stuck", func(p *Proc) {
		p.Get(m)
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("Run() = %v, want deadlock error", err)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock error %v does not name the blocked process", err)
	}
}

func TestEventInPastRejected(t *testing.T) {
	// Scheduling in the past cannot happen through the public API; this
	// exercises the internal guard directly.
	e := NewEngine()
	e.Spawn("p", func(p *Proc) { p.Wait(time.Second) })
	e.now = 2 * time.Second
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "past") {
		t.Fatalf("Run() = %v, want past-event error", err)
	}
}

func TestManyProcessesTerminate(t *testing.T) {
	e := NewEngine()
	total := 0
	for i := 0; i < 500; i++ {
		d := time.Duration(i%7) * time.Millisecond
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(d)
			total++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 500 {
		t.Fatalf("ran %d processes, want 500", total)
	}
}
