package simgrid

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestResourceSerializesHolders(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("disk", 1)
	ends := map[string]time.Duration{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("p%d", i)
		e.Spawn(name, func(p *Proc) {
			p.Use(r, time.Second)
			ends[p.Name()] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[string]time.Duration{"p0": time.Second, "p1": 2 * time.Second, "p2": 3 * time.Second}
	for k, v := range want {
		if ends[k] != v {
			t.Errorf("%s finished at %v, want %v", k, ends[k], v)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("link", 1)
	var order []string
	// p0 holds the resource; p1..p3 queue in spawn order.
	e.Spawn("p0", func(p *Proc) {
		p.Acquire(r)
		p.Wait(time.Second)
		p.Release(r)
	})
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("p%d", i)
		e.Spawn(name, func(p *Proc) {
			p.Wait(time.Duration(4-i) * time.Millisecond) // arrive in reverse spawn order
			p.Acquire(r)
			order = append(order, p.Name())
			p.Release(r)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Arrival order was p3 (3ms), p2 (2ms)... wait: 4-i gives p1=3ms, p2=2ms, p3=1ms.
	if got := strings.Join(order, ","); got != "p3,p2,p1" {
		t.Fatalf("grant order %q, want arrival order p3,p2,p1", got)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("cpu", 2)
	ends := make([]time.Duration, 4)
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Use(r, time.Second)
			ends[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run in [0,1s], two in [1s,2s].
	if ends[0] != time.Second || ends[1] != time.Second {
		t.Errorf("first pair ended at %v,%v, want 1s,1s", ends[0], ends[1])
	}
	if ends[2] != 2*time.Second || ends[3] != 2*time.Second {
		t.Errorf("second pair ended at %v,%v, want 2s,2s", ends[2], ends[3])
	}
}

func TestResourceBusyTime(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("disk", 1)
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Use(r, 2*time.Second)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.BusyTime() != 6*time.Second {
		t.Fatalf("busy time = %v, want 6s", r.BusyTime())
	}
}

func TestUseReturnsQueueingDelay(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("disk", 1)
	var second time.Duration
	e.Spawn("first", func(p *Proc) { p.Use(r, time.Second) })
	e.Spawn("second", func(p *Proc) {
		second = p.Use(r, time.Second)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if second != 2*time.Second {
		t.Fatalf("second's Use took %v, want 2s (1s queueing + 1s service)", second)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("x", 1)
	e.Spawn("bad", func(p *Proc) {
		p.Release(r)
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "idle resource") {
		t.Fatalf("Run() = %v, want idle-release error", err)
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewResource with capacity 0 did not panic")
		}
	}()
	NewEngine().NewResource("bad", 0)
}

func TestMailboxDeliversInOrder(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("chunks")
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Wait(time.Millisecond)
			m.Put(i)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, p.Get(m).(int))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d = %d, want %d (order %v)", i, v, i, got)
		}
	}
}

func TestMailboxBlocksUntilPut(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("late")
	var when time.Duration
	e.Spawn("consumer", func(p *Proc) {
		p.Get(m)
		when = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Wait(5 * time.Second)
		m.Put("x")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if when != 5*time.Second {
		t.Fatalf("consumer resumed at %v, want 5s", when)
	}
}

func TestMailboxMultipleConsumers(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("work")
	counts := map[string]int{}
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			for j := 0; j < 3; j++ {
				p.Get(m)
				counts[p.Name()]++
			}
		})
	}
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 6; i++ {
			p.Wait(time.Millisecond)
			m.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if counts["c0"]+counts["c1"] != 6 {
		t.Fatalf("consumed %v messages, want 6 total", counts)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := NewEngine()
	b := e.NewBarrier("sync", 3)
	times := make([]time.Duration, 3)
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Wait(time.Duration(i+1) * time.Second)
			p.Arrive(b)
			times[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, ts := range times {
		if ts != 3*time.Second {
			t.Fatalf("p%d released at %v, want 3s", i, ts)
		}
	}
}

func TestBarrierIsReusable(t *testing.T) {
	e := NewEngine()
	b := e.NewBarrier("sync", 2)
	var rounds []time.Duration
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.Wait(time.Duration(i+1) * time.Second)
				p.Arrive(b)
				if i == 0 {
					rounds = append(rounds, p.Now())
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{2 * time.Second, 4 * time.Second, 6 * time.Second}
	for i, w := range want {
		if rounds[i] != w {
			t.Fatalf("round %d released at %v, want %v", i, rounds[i], w)
		}
	}
}

func TestBarrierSingleParticipant(t *testing.T) {
	e := NewEngine()
	b := e.NewBarrier("solo", 1)
	e.Spawn("p", func(p *Proc) {
		p.Arrive(b) // must not block
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
