package simgrid

import (
	"testing"
	"time"
)

// TestWaitResumeAllocFree is the allocation regression gate for the
// engine's hottest path: a steady-state Wait/resume cycle must not touch
// the heap. Fixed per-simulation setup costs (engine, goroutine, proc
// slab, heap growth) are cancelled out by differencing a short run
// against a long one.
func TestWaitResumeAllocFree(t *testing.T) {
	run := func(waits int) float64 {
		return testing.AllocsPerRun(20, func() {
			e := NewEngine()
			e.Spawn("clock", func(p *Proc) {
				for i := 0; i < waits; i++ {
					p.Wait(time.Microsecond)
				}
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	const extra = 2000
	base := run(10)
	long := run(10 + extra)
	perWait := (long - base) / extra
	if perWait > 0.001 {
		t.Errorf("Wait/resume cycle allocates %.4f objects per event, want 0 "+
			"(short run %.1f allocs, long run %.1f)", perWait, base, long)
	}
}

// TestBlockedReasonsStayLazy checks that parking on resources, mailboxes,
// and barriers does not allocate per block either — the reasons are only
// rendered when a deadlock report needs them.
func TestBlockedReasonsStayLazy(t *testing.T) {
	run := func(cycles int) float64 {
		return testing.AllocsPerRun(20, func() {
			e := NewEngine()
			res := e.NewResource("disk", 1)
			box := e.NewMailbox("box")
			e.Spawn("producer", func(p *Proc) {
				for i := 0; i < cycles; i++ {
					p.Use(res, time.Microsecond)
					box.Put(i)
				}
			})
			e.Spawn("consumer", func(p *Proc) {
				for i := 0; i < cycles; i++ {
					p.Use(res, time.Microsecond)
					p.Get(box)
				}
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	const extra = 1000
	base := run(10)
	long := run(10 + extra)
	// Each extra cycle is several park/resume events across two processes.
	// Mailbox Put boxes its int payload (one allocation); everything else
	// must be allocation-free, so the budget is ~1 alloc per cycle with
	// slack for the occasional queue-slice growth.
	perCycle := (long - base) / extra
	if perCycle > 1.5 {
		t.Errorf("resource/mailbox cycle allocates %.3f objects, want <= ~1 "+
			"(short run %.1f allocs, long run %.1f)", perCycle, base, long)
	}
}
