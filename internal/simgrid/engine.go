// Package simgrid is a deterministic, process-oriented discrete-event
// simulator. It stands in for the physical clusters of the paper's testbed:
// the FREERIDE-G middleware is executed against simulated disks, network
// links, and CPUs, all sharing one virtual clock.
//
// Processes are ordinary functions run on goroutines, but exactly one
// process executes at any instant: a process runs until it blocks on the
// virtual clock (Wait), a Resource, or a Mailbox, at which point control
// returns to the engine, which advances the clock to the next event.
// Ties are broken by event sequence number, so simulations are fully
// deterministic and repeatable.
//
// An Engine confines all of its mutable state (clock, calendar, blocked
// set) to itself and runs exactly one process at a time, so independent
// Engines may run concurrently on separate goroutines without any
// synchronization between them — the property the bench package's
// parallel sweep runner relies on.
package simgrid

import (
	"fmt"
	"sort"
	"time"
)

// Engine owns the virtual clock and the event calendar.
type Engine struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	procSeq int
	active  int // processes spawned and not yet finished
	blocked map[*Proc]blockReason
	yield   chan yieldMsg
	failure error

	// procSlab hands out Proc structs from block allocations and
	// freeProcs recycles completed processes' structs (and their resume
	// channels), so a simulation that spawns many short-lived processes
	// does not pay one heap allocation per Spawn.
	procSlab  []Proc
	freeProcs []*Proc
}

type yieldMsg struct {
	proc *Proc
	done bool
	err  error
}

// event is one calendar entry. Events live inline in the heap slice —
// no per-event heap allocation, and the slice's backing array is reused
// as the calendar grows and shrinks.
type event struct {
	at   time.Duration
	seq  uint64
	proc *Proc
}

func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a concrete binary min-heap of events, ordered by time
// then sequence number. It replaces container/heap to keep interface{}
// boxing (one heap allocation per Push) off the per-event hot path.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{}
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l].before(s[min]) {
			min = l
		}
		if r < n && s[r].before(s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// blockReason records why a process is parked without formatting it:
// parking is the simulator's hottest path and deadlocks are rare, so the
// human-readable string is rendered only when deadlock diagnostics
// actually need it.
type blockReason struct {
	op   string        // one of the op* constants
	name string        // resource/mailbox/barrier name (op != opWaiting)
	dur  time.Duration // wait duration (op == opWaiting)
}

const (
	opWaiting = "waiting"
	opAcquire = "acquire"
	opRecv    = "recv"
	opBarrier = "barrier"
)

func (r blockReason) String() string {
	if r.op == opWaiting {
		return fmt.Sprintf("waiting %v", r.dur)
	}
	return r.op + " " + r.name
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		yield:   make(chan yieldMsg),
		blocked: make(map[*Proc]blockReason),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Proc is a simulated process. All blocking methods must be called from
// the process's own body function.
type Proc struct {
	e      *Engine
	id     int
	name   string
	resume chan struct{}
	err    error
}

// Name reports the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// procSlabSize is how many Proc structs one slab allocation covers.
const procSlabSize = 64

// newProc returns a Proc for a fresh spawn, recycling a completed
// process's struct and resume channel when one is available and drawing
// from the current slab otherwise.
func (e *Engine) newProc(name string) *Proc {
	e.procSeq++
	if n := len(e.freeProcs); n > 0 {
		p := e.freeProcs[n-1]
		e.freeProcs = e.freeProcs[:n-1]
		*p = Proc{e: e, id: e.procSeq, name: name, resume: p.resume}
		return p
	}
	if len(e.procSlab) == 0 {
		e.procSlab = make([]Proc, procSlabSize)
	}
	p := &e.procSlab[0]
	e.procSlab = e.procSlab[1:]
	*p = Proc{e: e, id: e.procSeq, name: name, resume: make(chan struct{})}
	return p
}

// Spawn registers a new process. The body runs when Run is called (or
// immediately at the current virtual time if the simulation is already
// running). A body may itself spawn further processes.
//
// The returned *Proc identifies the process only while it is live: once
// the process has finished and Run has observed its completion, the
// engine may recycle the struct for a later Spawn, so callers must not
// retain the pointer past the process's lifetime.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := e.newProc(name)
	e.active++
	go func() {
		<-p.resume // wait for first scheduling
		defer func() {
			if r := recover(); r != nil {
				if _, aborted := r.(abortSignal); !aborted {
					p.err = fmt.Errorf("simgrid: process %q panicked: %v", name, r)
				}
			}
			e.yield <- yieldMsg{proc: p, done: true, err: p.err}
		}()
		body(p)
	}()
	e.schedule(e.now, p)
	return p
}

func (e *Engine) schedule(at time.Duration, p *Proc) {
	e.seq++
	e.events.push(event{at: at, seq: e.seq, proc: p})
}

// park blocks the calling process until the engine resumes it. reason is
// recorded for deadlock diagnostics.
func (p *Proc) park(reason blockReason) {
	p.e.blocked[p] = reason
	p.e.yield <- yieldMsg{proc: p}
	<-p.resume
	delete(p.e.blocked, p)
	if p.e.failure != nil {
		// The engine is shutting down after another process failed;
		// unwind this process too.
		panic(abortSignal{})
	}
}

type abortSignal struct{}

// Wait advances the process by d of virtual time. Negative durations are
// treated as zero. Wait performs no heap allocations on the steady-state
// path (the event calendar and the block-reason record are both inline
// values), which keeps the per-event cost of large simulations flat.
func (p *Proc) Wait(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.e.schedule(p.e.now+d, p)
	p.park(blockReason{op: opWaiting, dur: d})
}

// Fail aborts the process's simulation run with an error. The engine's Run
// returns this error.
func (p *Proc) Fail(err error) {
	p.err = err
	panic(abortSignal{})
}

// Run executes the simulation until no events remain. It returns an error
// if a process failed or panicked, or if all remaining processes are
// blocked with no pending event (deadlock).
func (e *Engine) Run() error {
	for e.active > 0 {
		if len(e.events) == 0 {
			return e.deadlock()
		}
		ev := e.events.pop()
		if ev.at < e.now {
			return fmt.Errorf("simgrid: event scheduled in the past (%v < %v)", ev.at, e.now)
		}
		e.now = ev.at
		ev.proc.resume <- struct{}{}
		msg := <-e.yield
		if msg.done {
			e.active--
			if msg.err != nil && e.failure == nil {
				e.failure = msg.err
			}
			if e.failure == nil {
				e.freeProcs = append(e.freeProcs, msg.proc)
			}
		}
		if e.failure != nil {
			e.drain()
			return e.failure
		}
	}
	return nil
}

// drain unwinds all still-parked processes after a failure so their
// goroutines terminate.
func (e *Engine) drain() {
	// Wake every parked process; park() observes e.failure and aborts.
	procs := make([]*Proc, 0, len(e.blocked))
	for p := range e.blocked {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	for _, p := range procs {
		p.resume <- struct{}{}
		msg := <-e.yield
		if msg.done {
			e.active--
		}
	}
	// Processes still sitting in the event queue (not parked in a resource)
	// are woken likewise.
	for len(e.events) > 0 {
		ev := e.events.pop()
		select {
		case ev.proc.resume <- struct{}{}:
			msg := <-e.yield
			if msg.done {
				e.active--
			}
		default:
		}
	}
}

func (e *Engine) deadlock() error {
	if len(e.blocked) == 0 {
		return fmt.Errorf("simgrid: %d process(es) unaccounted for with an empty calendar", e.active)
	}
	names := make([]string, 0, len(e.blocked))
	for p, reason := range e.blocked {
		names = append(names, fmt.Sprintf("%s (%s)", p.name, reason))
	}
	sort.Strings(names)
	return fmt.Errorf("simgrid: deadlock at %v; blocked: %v", e.now, names)
}
