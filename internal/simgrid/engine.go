// Package simgrid is a deterministic, process-oriented discrete-event
// simulator. It stands in for the physical clusters of the paper's testbed:
// the FREERIDE-G middleware is executed against simulated disks, network
// links, and CPUs, all sharing one virtual clock.
//
// Processes are ordinary functions run on goroutines, but exactly one
// process executes at any instant: a process runs until it blocks on the
// virtual clock (Wait), a Resource, or a Mailbox, at which point control
// returns to the engine, which advances the clock to the next event.
// Ties are broken by event sequence number, so simulations are fully
// deterministic and repeatable.
package simgrid

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Engine owns the virtual clock and the event calendar.
type Engine struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	procSeq int
	active  int // processes spawned and not yet finished
	blocked map[*Proc]string
	yield   chan yieldMsg
	failure error
}

type yieldMsg struct {
	proc *Proc
	done bool
	err  error
}

type event struct {
	at   time.Duration
	seq  uint64
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		yield:   make(chan yieldMsg),
		blocked: make(map[*Proc]string),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Proc is a simulated process. All blocking methods must be called from
// the process's own body function.
type Proc struct {
	e      *Engine
	id     int
	name   string
	resume chan struct{}
	err    error
}

// Name reports the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// Spawn registers a new process. The body runs when Run is called (or
// immediately at the current virtual time if the simulation is already
// running). A body may itself spawn further processes.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	e.procSeq++
	p := &Proc{e: e, id: e.procSeq, name: name, resume: make(chan struct{})}
	e.active++
	go func() {
		<-p.resume // wait for first scheduling
		defer func() {
			if r := recover(); r != nil {
				if _, aborted := r.(abortSignal); !aborted {
					p.err = fmt.Errorf("simgrid: process %q panicked: %v", name, r)
				}
			}
			e.yield <- yieldMsg{proc: p, done: true, err: p.err}
		}()
		body(p)
	}()
	e.schedule(e.now, p)
	return p
}

func (e *Engine) schedule(at time.Duration, p *Proc) {
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, proc: p})
}

// park blocks the calling process until the engine resumes it. reason is
// recorded for deadlock diagnostics.
func (p *Proc) park(reason string) {
	p.e.blocked[p] = reason
	p.e.yield <- yieldMsg{proc: p}
	<-p.resume
	delete(p.e.blocked, p)
	if p.e.failure != nil {
		// The engine is shutting down after another process failed;
		// unwind this process too.
		panic(abortSignal{})
	}
}

type abortSignal struct{}

// Wait advances the process by d of virtual time. Negative durations are
// treated as zero.
func (p *Proc) Wait(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.e.schedule(p.e.now+d, p)
	p.park(fmt.Sprintf("waiting %v", d))
}

// Fail aborts the process's simulation run with an error. The engine's Run
// returns this error.
func (p *Proc) Fail(err error) {
	p.err = err
	panic(abortSignal{})
}

// Run executes the simulation until no events remain. It returns an error
// if a process failed or panicked, or if all remaining processes are
// blocked with no pending event (deadlock).
func (e *Engine) Run() error {
	for e.active > 0 {
		if e.events.Len() == 0 {
			return e.deadlock()
		}
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			return fmt.Errorf("simgrid: event scheduled in the past (%v < %v)", ev.at, e.now)
		}
		e.now = ev.at
		ev.proc.resume <- struct{}{}
		msg := <-e.yield
		if msg.done {
			e.active--
			if msg.err != nil && e.failure == nil {
				e.failure = msg.err
			}
		}
		if e.failure != nil {
			e.drain()
			return e.failure
		}
	}
	return nil
}

// drain unwinds all still-parked processes after a failure so their
// goroutines terminate.
func (e *Engine) drain() {
	// Wake every parked process; park() observes e.failure and aborts.
	procs := make([]*Proc, 0, len(e.blocked))
	for p := range e.blocked {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	for _, p := range procs {
		p.resume <- struct{}{}
		msg := <-e.yield
		if msg.done {
			e.active--
		}
	}
	// Processes still sitting in the event queue (not parked in a resource)
	// are woken likewise.
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		select {
		case ev.proc.resume <- struct{}{}:
			msg := <-e.yield
			if msg.done {
				e.active--
			}
		default:
		}
	}
}

func (e *Engine) deadlock() error {
	if len(e.blocked) == 0 {
		return fmt.Errorf("simgrid: %d process(es) unaccounted for with an empty calendar", e.active)
	}
	names := make([]string, 0, len(e.blocked))
	for p, reason := range e.blocked {
		names = append(names, fmt.Sprintf("%s (%s)", p.name, reason))
	}
	sort.Strings(names)
	return fmt.Errorf("simgrid: deadlock at %v; blocked: %v", e.now, names)
}
