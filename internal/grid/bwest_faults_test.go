package grid

import (
	"testing"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/core"
	"freerideg/internal/middleware"
	"freerideg/internal/simgrid"
	"freerideg/internal/units"
)

// A degraded replica's transfers, observed through the estimator's feed,
// must lower that path's estimated bandwidth so re-selection prefers the
// healthy replica: the closed loop from fault injection through transfer
// observation to replica ranking.
func TestDegradedReplicaLosesSelection(t *testing.T) {
	mg, err := middleware.NewGrid(middleware.PentiumMyrinet())
	if err != nil {
		t.Fatal(err)
	}
	spec := adr.DatasetSpec{
		Name:       "pts",
		TotalBytes: 64 * units.MB,
		ElemBytes:  128,
		ChunkBytes: 8 * units.MB,
		Kind:       "points",
		Dims:       16,
		Seed:       17,
	}
	a, err := apps.Get("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	cost, err := a.Cost(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Cluster:      "pentium-myrinet",
		DataNodes:    1,
		ComputeNodes: 2,
		Bandwidth:    middleware.DefaultBandwidth,
		DatasetBytes: spec.TotalBytes,
	}

	// Observe one clean run from the healthy site and one run from the
	// degraded site, whose storage node serves every delivery at an eighth
	// of its disk speed and drops several of them.
	est := NewBandwidthEstimator(0)
	if _, err := mg.SimulateOpts(cost, spec, cfg, middleware.SimOptions{
		Transfers: est.Feed("healthy", cfg.Cluster),
	}); err != nil {
		t.Fatal(err)
	}
	plan, err := simgrid.ParseFaultPlan(
		"slow-disk node=0 factor=8; flaky-link node=0 chunk=2 count=3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.SimulateOpts(cost, spec, cfg, middleware.SimOptions{
		Faults:    &plan,
		Transfers: est.Feed("degraded", cfg.Cluster),
	}); err != nil {
		t.Fatal(err)
	}

	healthyBW, _, err := est.Estimate("healthy", cfg.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	degradedBW, _, err := est.Estimate("degraded", cfg.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	if degradedBW >= healthyBW {
		t.Fatalf("degraded path estimated at %v, healthy at %v — faults not visible to the estimator",
			degradedBW, healthyBW)
	}

	// Feed both estimates into the information service and rank: the
	// healthy replica must win for a delivery-sensitive profile.
	svc := NewService()
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range []string{"healthy", "degraded"} {
		if err := svc.Replicas.Register(adr.Replica{
			Site: site, Cluster: cfg.Cluster, StorageNodes: 1, Layout: layout,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.AddOffer(ComputeOffer{Cluster: cfg.Cluster, Nodes: 2}); err != nil {
		t.Fatal(err)
	}
	if err := est.FillService(svc); err != nil {
		t.Fatal(err)
	}
	prof := testProfile()
	prof.Config.Cluster = cfg.Cluster
	prof.Config.DatasetBytes = spec.TotalBytes
	pred, err := core.NewPredictor(prof, core.AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	pred.Links[cfg.Cluster] = core.LinkCalibration{W: 1e-8, L: time.Millisecond}
	sel := &Selector{Predictor: pred, Variant: core.GlobalReduction}
	best, err := sel.Select(svc, "pts")
	if err != nil {
		t.Fatal(err)
	}
	if best.Replica.Site != "healthy" {
		t.Errorf("selected replica at %q, want the healthy site", best.Replica.Site)
	}
}
