package grid

import (
	"context"
	"fmt"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/units"
)

// rankEqual fails the test unless two rankings are identical in length,
// order, and every field of every candidate.
func rankEqual(t *testing.T, label string, got, want []Candidate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: ranked %d candidates, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Replica.Site != want[i].Replica.Site ||
			got[i].Offer != want[i].Offer ||
			got[i].Config != want[i].Config ||
			got[i].Prediction != want[i].Prediction {
			t.Fatalf("%s: rank %d differs: got %s/%d @%v, want %s/%d @%v",
				label, i,
				got[i].Replica.Site, got[i].Offer.Nodes, got[i].Config.Bandwidth,
				want[i].Replica.Site, want[i].Offer.Nodes, want[i].Config.Bandwidth)
		}
	}
}

// TestEngineMatchesSerialUnderInvalidations is the determinism pin: the
// incremental engine's output must be identical to a full serial
// re-evaluation after every kind of input change — repeated rounds,
// bandwidth updates on a subset of paths, predictor replacement, new
// offers, and new replicas.
func TestEngineMatchesSerialUnderInvalidations(t *testing.T) {
	svc := bigService(t)
	sel := bigSelector(t, 0)
	pred := sel.Predictor
	eng := NewRankEngine()

	check := func(label string) {
		t.Helper()
		got, err := eng.Rank(context.Background(), svc, "pts", pred, core.GlobalReduction, 0)
		if err != nil {
			t.Fatalf("%s: engine: %v", label, err)
		}
		want, err := rankSerial(svc, "pts", pred, core.GlobalReduction)
		if err != nil {
			t.Fatalf("%s: serial: %v", label, err)
		}
		rankEqual(t, label, got, want)
	}

	check("first fill")
	check("steady state")

	// Bandwidth update on one path: only its pairs may change.
	if err := svc.SetBandwidth("site3", "A", 5*units.MBPerSec); err != nil {
		t.Fatal(err)
	}
	check("bandwidth update")

	// Predictor replacement (what a recalibration does).
	pred2, err := core.NewPredictor(testProfile(), core.AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	pred2.Links["A"] = core.LinkCalibration{W: 2e-8, L: 0}
	pred = pred2
	check("predictor replacement")

	// Structural change: a new offer re-enumerates the table.
	if err := svc.AddOffer(ComputeOffer{Cluster: "A", Nodes: 3}); err != nil {
		t.Fatal(err)
	}
	check("new offer")

	// Structural change: a new replica (with its bandwidth path).
	spec := testSpec()
	layout, err := adr.Partition(spec, 2, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Replicas.Register(adr.Replica{Site: "site9", Cluster: "A", StorageNodes: 2, Layout: layout}); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetBandwidth("site9", "A", 33*units.MBPerSec); err != nil {
		t.Fatal(err)
	}
	check("new replica")
}

// TestEngineRecomputesOnlyChangedBandwidths pins the incremental
// contract: a steady-state round recomputes nothing, and a bandwidth
// change on one site recomputes exactly that site's pairs.
func TestEngineRecomputesOnlyChangedBandwidths(t *testing.T) {
	svc := bigService(t)
	sel := bigSelector(t, 1)
	eng := NewRankEngine()

	rank := func() float64 {
		before := engineRecomputed.Value()
		if _, err := eng.Rank(context.Background(), svc, "pts", sel.Predictor, core.GlobalReduction, 1); err != nil {
			t.Fatal(err)
		}
		return engineRecomputed.Value() - before
	}

	if got := rank(); got != 48 {
		t.Fatalf("first fill recomputed %v predictions, want 48", got)
	}
	if got := rank(); got != 0 {
		t.Fatalf("steady-state round recomputed %v predictions, want 0", got)
	}
	// site2 is one of eight replicas; each site pairs with all six
	// offers, so exactly 6 predictions depend on its bandwidth.
	if err := svc.SetBandwidth("site2", "A", 7*units.MBPerSec); err != nil {
		t.Fatal(err)
	}
	if got := rank(); got != 6 {
		t.Fatalf("one-path bandwidth change recomputed %v predictions, want 6", got)
	}
	// Re-setting the same value changes nothing.
	if err := svc.SetBandwidth("site2", "A", 7*units.MBPerSec); err != nil {
		t.Fatal(err)
	}
	if got := rank(); got != 0 {
		t.Fatalf("no-op bandwidth write recomputed %v predictions, want 0", got)
	}
}

// TestEngineTablesAreIndependentPerVariant checks that rankings at
// different variants do not thrash one shared table.
func TestEngineTablesAreIndependentPerVariant(t *testing.T) {
	svc := bigService(t)
	sel := bigSelector(t, 1)
	eng := NewRankEngine()
	for _, v := range []core.Variant{core.NoComm, core.ReductionComm, core.GlobalReduction} {
		if _, err := eng.Rank(context.Background(), svc, "pts", sel.Predictor, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	before := engineRecomputed.Value()
	for _, v := range []core.Variant{core.NoComm, core.ReductionComm, core.GlobalReduction} {
		if _, err := eng.Rank(context.Background(), svc, "pts", sel.Predictor, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	if moved := engineRecomputed.Value() - before; moved != 0 {
		t.Fatalf("alternating variants recomputed %v predictions, want 0 (per-variant tables)", moved)
	}
}

// TestEngineErrorCandidatesStayExcluded pins cached prediction errors:
// a pair that fails to predict is excluded round after round, and an
// all-failing grid keeps returning ErrNoCandidates.
func TestEngineErrorCandidatesStayExcluded(t *testing.T) {
	svc := bigService(t)
	// A predictor with no link calibration for cluster A fails the
	// GlobalReduction variant on every pair.
	pred, err := core.NewPredictor(testProfile(), core.AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewRankEngine()
	for round := 0; round < 2; round++ {
		if _, err := eng.Rank(context.Background(), svc, "pts", pred, core.GlobalReduction, 1); err == nil {
			t.Fatalf("round %d: all-failing grid ranked without error", round)
		}
	}
	// The same engine with a fixed predictor recovers.
	fixed, err := core.NewPredictor(testProfile(), core.AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	fixed.Links["A"] = core.LinkCalibration{W: 1e-8, L: 0}
	ranked, err := eng.Rank(context.Background(), svc, "pts", fixed, core.GlobalReduction, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 48 {
		t.Fatalf("recovered engine ranked %d candidates, want 48", len(ranked))
	}
}

// TestSelectorRankWarmAllocs is the allocation regression gate for the
// serve hot path: a steady-state Rank (warm table, no input changes)
// must allocate only the caller-owned result slice — the per-round
// surplus over one baseline allocation must be zero. Differencing two
// AllocsPerRun readings cancels fixed costs the same way the simgrid
// gates do.
func TestSelectorRankWarmAllocs(t *testing.T) {
	svc := bigService(t)
	sel := bigSelector(t, 1)
	if _, err := sel.Rank(svc, "pts"); err != nil { // warm the table
		t.Fatal(err)
	}
	perRank := testing.AllocsPerRun(200, func() {
		if _, err := sel.Rank(svc, "pts"); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation for the 48-candidate result slice; everything else
	// (enumeration, per-pair state, worker fan-out) must be cached or
	// pooled. The old implementation allocated ~60 objects per round.
	if perRank > 1.0 {
		t.Errorf("warm Rank allocates %.1f objects per round, want <= 1 (result slice only)", perRank)
	}
}

// BenchmarkRankIncremental measures the three engine regimes on the
// 48-pair grid: a warm steady-state round, a round after one path's
// bandwidth changed (6 of 48 predictions recomputed), and the cold
// full-recompute round, against the serial reference.
func BenchmarkRankIncremental(b *testing.B) {
	b.Run("steady", func(b *testing.B) {
		svc := bigService(b)
		sel := bigSelector(b, 1)
		if _, err := sel.Rank(svc, "pts"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sel.Rank(svc, "pts"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("one-path-changed", func(b *testing.B) {
		svc := bigService(b)
		sel := bigSelector(b, 1)
		if _, err := sel.Rank(svc, "pts"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate between two rates so every round sees a change.
			rate := units.Rate(20+i%2) * units.MBPerSec
			if err := svc.SetBandwidth("site4", "A", rate); err != nil {
				b.Fatal(err)
			}
			if _, err := sel.Rank(svc, "pts"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial-reference", func(b *testing.B) {
		svc := bigService(b)
		sel := bigSelector(b, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rankSerial(svc, "pts", sel.Predictor, core.GlobalReduction); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestEngineTableBound checks the engine drops tables instead of
// growing without limit under a hostile dataset-name stream.
func TestEngineTableBound(t *testing.T) {
	svc := bigService(t)
	sel := bigSelector(t, 1)
	spec := testSpec()
	eng := NewRankEngine()
	// Register many datasets and rank each once.
	for i := 0; i < maxEngineTables+32; i++ {
		name := fmt.Sprintf("ds-%d", i)
		s2 := spec
		s2.Name = name
		layout, err := adr.Partition(s2, 2, adr.RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Replicas.Register(adr.Replica{Site: "site0", Cluster: "A", StorageNodes: 2, Layout: layout}); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Rank(context.Background(), svc, name, sel.Predictor, core.GlobalReduction, 1); err != nil {
			t.Fatal(err)
		}
	}
	eng.mu.Lock()
	n := len(eng.tables)
	eng.mu.Unlock()
	if n > maxEngineTables {
		t.Fatalf("engine holds %d tables, want <= %d", n, maxEngineTables)
	}
}
