package grid

import (
	"math"
	"testing"
	"time"

	"freerideg/internal/units"
)

// synthTransfer fabricates a sample for a path with the given true
// bandwidth and latency.
func synthTransfer(bytes units.Bytes, bw units.Rate, lat time.Duration) TransferSample {
	return TransferSample{Bytes: bytes, Elapsed: lat + bw.TransferTime(bytes)}
}

func TestEstimatorRecoversBandwidthAndLatency(t *testing.T) {
	e := NewBandwidthEstimator(0)
	trueBW := 40 * units.MBPerSec
	trueLat := 30 * time.Millisecond
	for _, mb := range []units.Bytes{1, 4, 16, 64, 128} {
		if err := e.Observe("site", "cl", synthTransfer(mb*units.MB, trueBW, trueLat)); err != nil {
			t.Fatal(err)
		}
	}
	bw, lat, err := e.Estimate("site", "cl")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(bw)-float64(trueBW))/float64(trueBW) > 0.01 {
		t.Errorf("estimated %v, want %v", bw, trueBW)
	}
	if d := lat - trueLat; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("estimated latency %v, want %v", lat, trueLat)
	}
}

func TestEstimatorNeedsTwoSamples(t *testing.T) {
	e := NewBandwidthEstimator(0)
	if _, _, err := e.Estimate("a", "b"); err == nil {
		t.Error("empty path estimated")
	}
	_ = e.Observe("a", "b", synthTransfer(units.MB, 10*units.MBPerSec, 0))
	if _, _, err := e.Estimate("a", "b"); err == nil {
		t.Error("single-sample path estimated")
	}
}

func TestEstimatorIdenticalSizesFallBack(t *testing.T) {
	// All same size: the regression is degenerate; the median ratio
	// fallback must still produce a sane bandwidth.
	e := NewBandwidthEstimator(0)
	for i := 0; i < 5; i++ {
		_ = e.Observe("a", "b", synthTransfer(8*units.MB, 20*units.MBPerSec, 0))
	}
	bw, _, err := e.Estimate("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(bw) / float64(20*units.MBPerSec)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("fallback estimate %v, want ~20MB/s", bw)
	}
}

func TestEstimatorWindowAgesOutOldSamples(t *testing.T) {
	e := NewBandwidthEstimator(4)
	// Old congested era: 5 MB/s.
	for _, mb := range []units.Bytes{1, 2, 4, 8} {
		_ = e.Observe("a", "b", synthTransfer(mb*units.MB, 5*units.MBPerSec, 0))
	}
	// Recovery: 50 MB/s; window of 4 drops all old samples.
	for _, mb := range []units.Bytes{1, 2, 4, 8} {
		_ = e.Observe("a", "b", synthTransfer(mb*units.MB, 50*units.MBPerSec, 0))
	}
	bw, _, err := e.Estimate("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if float64(bw) < float64(40*units.MBPerSec) {
		t.Fatalf("estimator stuck at stale bandwidth: %v", bw)
	}
	if e.Samples("a", "b") != 4 {
		t.Fatalf("window kept %d samples, want 4", e.Samples("a", "b"))
	}
}

func TestEstimatorRejectsBadSamples(t *testing.T) {
	e := NewBandwidthEstimator(0)
	if err := e.Observe("a", "b", TransferSample{Bytes: 0, Elapsed: time.Second}); err == nil {
		t.Error("zero-byte sample accepted")
	}
	if err := e.Observe("a", "b", TransferSample{Bytes: units.MB, Elapsed: 0}); err == nil {
		t.Error("zero-time sample accepted")
	}
}

func TestFillServiceWiresEstimates(t *testing.T) {
	e := NewBandwidthEstimator(0)
	for _, mb := range []units.Bytes{1, 8, 32} {
		_ = e.Observe("near", "A", synthTransfer(mb*units.MB, 100*units.MBPerSec, time.Millisecond))
		_ = e.Observe("far", "A", synthTransfer(mb*units.MB, 10*units.MBPerSec, 50*time.Millisecond))
	}
	// A path with too little signal is skipped, not an error.
	_ = e.Observe("sparse", "A", synthTransfer(units.MB, 10*units.MBPerSec, 0))

	svc := NewService()
	if err := e.FillService(svc); err != nil {
		t.Fatal(err)
	}
	near, ok := svc.Bandwidth("near", "A")
	if !ok {
		t.Fatal("near path not filled")
	}
	far, ok := svc.Bandwidth("far", "A")
	if !ok {
		t.Fatal("far path not filled")
	}
	if near <= far {
		t.Fatalf("estimates inverted: near %v vs far %v", near, far)
	}
	if _, ok := svc.Bandwidth("sparse", "A"); ok {
		t.Fatal("under-sampled path filled")
	}
	if got := len(e.Paths()); got != 3 {
		t.Fatalf("Paths() = %d entries, want 3", got)
	}
}

func TestSaneRate(t *testing.T) {
	cases := []struct {
		r    units.Rate
		want bool
	}{
		{100 * units.MBPerSec, true},
		{units.Rate(1), true},
		{0, false},
		{units.Rate(-5), false},
		{units.Rate(math.Inf(1)), false},
		{units.Rate(math.Inf(-1)), false},
		{units.Rate(math.NaN()), false},
	}
	for _, c := range cases {
		if got := saneRate(c.r); got != c.want {
			t.Errorf("saneRate(%v) = %v, want %v", float64(c.r), got, c.want)
		}
	}
}

// TestEstimateNearIdenticalSizesStaysFinite is the regression test for
// the slope-underflow bug: sizes that differ by a handful of bytes make
// the least-squares denominator tiny, and the fitted slope can collapse
// toward zero so that 1/slope explodes. Whatever path Estimate takes, a
// nil error must come with a finite, positive rate.
func TestEstimateNearIdenticalSizesStaysFinite(t *testing.T) {
	e := NewBandwidthEstimator(0)
	base := units.Bytes(1_000_000)
	elapsed := []time.Duration{time.Second, time.Second, time.Second + time.Nanosecond}
	for i, d := range elapsed {
		s := TransferSample{Bytes: base + units.Bytes(i%2), Elapsed: d}
		if err := e.Observe("site", "cl", s); err != nil {
			t.Fatal(err)
		}
	}
	bw, lat, err := e.Estimate("site", "cl")
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if !saneRate(bw) {
		t.Fatalf("Estimate returned non-sane rate %v", float64(bw))
	}
	if lat < 0 {
		t.Fatalf("Estimate returned negative latency %v", lat)
	}
}

// TestEstimateIdenticalSizesFallsBackToMedian pins the degenerate-fit
// path: all-equal sizes have no slope at all, so the median direct ratio
// is the estimate.
func TestEstimateIdenticalSizesFallsBackToMedian(t *testing.T) {
	e := NewBandwidthEstimator(0)
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second} {
		if err := e.Observe("s", "c", TransferSample{Bytes: 64 * units.MB, Elapsed: d}); err != nil {
			t.Fatal(err)
		}
	}
	bw, lat, err := e.Estimate("s", "c")
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	want := units.Rate(float64(64*units.MB) / 2) // median elapsed is 2s
	if math.Abs(float64(bw)-float64(want)) > 1 {
		t.Fatalf("median fallback = %v, want %v", bw, want)
	}
	if lat != 0 {
		t.Fatalf("median fallback latency = %v, want 0", lat)
	}
}

// TestFillServiceNeverWritesGarbageBandwidth drives the estimator with
// pathological sample mixes and checks every bandwidth that reaches the
// information service is finite and positive.
func TestFillServiceNeverWritesGarbageBandwidth(t *testing.T) {
	e := NewBandwidthEstimator(0)
	// Near-identical sizes on one path, identical on another, healthy on
	// a third.
	for i := 0; i < 8; i++ {
		_ = e.Observe("p1", "c", TransferSample{Bytes: 1_000_000 + units.Bytes(i%2), Elapsed: time.Second + time.Duration(i)*time.Nanosecond})
		_ = e.Observe("p2", "c", TransferSample{Bytes: 32 * units.MB, Elapsed: time.Second})
		_ = e.Observe("p3", "c", synthTransfer(units.Bytes(i+1)*16*units.MB, 50*units.MBPerSec, 10*time.Millisecond))
	}
	svc := NewService()
	if err := e.FillService(svc); err != nil {
		t.Fatalf("FillService: %v", err)
	}
	for _, path := range e.Paths() {
		bw, ok := svc.Bandwidth(path[0], path[1])
		if !ok {
			continue // not estimable is fine; garbage is not
		}
		if !saneRate(bw) {
			t.Errorf("service holds non-sane bandwidth %v for %v", float64(bw), path)
		}
	}
}
