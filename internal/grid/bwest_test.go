package grid

import (
	"math"
	"testing"
	"time"

	"freerideg/internal/units"
)

// synthTransfer fabricates a sample for a path with the given true
// bandwidth and latency.
func synthTransfer(bytes units.Bytes, bw units.Rate, lat time.Duration) TransferSample {
	return TransferSample{Bytes: bytes, Elapsed: lat + bw.TransferTime(bytes)}
}

func TestEstimatorRecoversBandwidthAndLatency(t *testing.T) {
	e := NewBandwidthEstimator(0)
	trueBW := 40 * units.MBPerSec
	trueLat := 30 * time.Millisecond
	for _, mb := range []units.Bytes{1, 4, 16, 64, 128} {
		if err := e.Observe("site", "cl", synthTransfer(mb*units.MB, trueBW, trueLat)); err != nil {
			t.Fatal(err)
		}
	}
	bw, lat, err := e.Estimate("site", "cl")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(bw)-float64(trueBW))/float64(trueBW) > 0.01 {
		t.Errorf("estimated %v, want %v", bw, trueBW)
	}
	if d := lat - trueLat; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("estimated latency %v, want %v", lat, trueLat)
	}
}

func TestEstimatorNeedsTwoSamples(t *testing.T) {
	e := NewBandwidthEstimator(0)
	if _, _, err := e.Estimate("a", "b"); err == nil {
		t.Error("empty path estimated")
	}
	_ = e.Observe("a", "b", synthTransfer(units.MB, 10*units.MBPerSec, 0))
	if _, _, err := e.Estimate("a", "b"); err == nil {
		t.Error("single-sample path estimated")
	}
}

func TestEstimatorIdenticalSizesFallBack(t *testing.T) {
	// All same size: the regression is degenerate; the median ratio
	// fallback must still produce a sane bandwidth.
	e := NewBandwidthEstimator(0)
	for i := 0; i < 5; i++ {
		_ = e.Observe("a", "b", synthTransfer(8*units.MB, 20*units.MBPerSec, 0))
	}
	bw, _, err := e.Estimate("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(bw) / float64(20*units.MBPerSec)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("fallback estimate %v, want ~20MB/s", bw)
	}
}

func TestEstimatorWindowAgesOutOldSamples(t *testing.T) {
	e := NewBandwidthEstimator(4)
	// Old congested era: 5 MB/s.
	for _, mb := range []units.Bytes{1, 2, 4, 8} {
		_ = e.Observe("a", "b", synthTransfer(mb*units.MB, 5*units.MBPerSec, 0))
	}
	// Recovery: 50 MB/s; window of 4 drops all old samples.
	for _, mb := range []units.Bytes{1, 2, 4, 8} {
		_ = e.Observe("a", "b", synthTransfer(mb*units.MB, 50*units.MBPerSec, 0))
	}
	bw, _, err := e.Estimate("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if float64(bw) < float64(40*units.MBPerSec) {
		t.Fatalf("estimator stuck at stale bandwidth: %v", bw)
	}
	if e.Samples("a", "b") != 4 {
		t.Fatalf("window kept %d samples, want 4", e.Samples("a", "b"))
	}
}

func TestEstimatorRejectsBadSamples(t *testing.T) {
	e := NewBandwidthEstimator(0)
	if err := e.Observe("a", "b", TransferSample{Bytes: 0, Elapsed: time.Second}); err == nil {
		t.Error("zero-byte sample accepted")
	}
	if err := e.Observe("a", "b", TransferSample{Bytes: units.MB, Elapsed: 0}); err == nil {
		t.Error("zero-time sample accepted")
	}
}

func TestFillServiceWiresEstimates(t *testing.T) {
	e := NewBandwidthEstimator(0)
	for _, mb := range []units.Bytes{1, 8, 32} {
		_ = e.Observe("near", "A", synthTransfer(mb*units.MB, 100*units.MBPerSec, time.Millisecond))
		_ = e.Observe("far", "A", synthTransfer(mb*units.MB, 10*units.MBPerSec, 50*time.Millisecond))
	}
	// A path with too little signal is skipped, not an error.
	_ = e.Observe("sparse", "A", synthTransfer(units.MB, 10*units.MBPerSec, 0))

	svc := NewService()
	if err := e.FillService(svc); err != nil {
		t.Fatal(err)
	}
	near, ok := svc.Bandwidth("near", "A")
	if !ok {
		t.Fatal("near path not filled")
	}
	far, ok := svc.Bandwidth("far", "A")
	if !ok {
		t.Fatal("far path not filled")
	}
	if near <= far {
		t.Fatalf("estimates inverted: near %v vs far %v", near, far)
	}
	if _, ok := svc.Bandwidth("sparse", "A"); ok {
		t.Fatal("under-sampled path filled")
	}
	if got := len(e.Paths()); got != 3 {
		t.Fatalf("Paths() = %d entries, want 3", got)
	}
}
