package grid

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strconv"
	"sync"

	"freerideg/internal/core"
	"freerideg/internal/metrics"
	"freerideg/internal/reqtrace"
	"freerideg/internal/workpool"
)

// Rank-engine metrics: how much candidate enumeration and prediction
// work the incremental tables saved versus recomputed.
var (
	engineTables = metrics.GetGauge("fg_rank_engine_tables",
		"Candidate tables currently cached across all rank engines.")
	engineRebuilds = metrics.GetCounter("fg_rank_engine_rebuilds_total",
		"Candidate-table enumerations (first fill or topology change).")
	engineReused = metrics.GetCounter("fg_rank_engine_reused_total",
		"Candidate predictions served from a table without recomputation.")
	engineRecomputed = metrics.GetCounter("fg_rank_engine_recomputed_total",
		"Candidate predictions recomputed because an input changed.")
	engineEvictions = metrics.GetCounter("fg_rank_engine_evictions_total",
		"Candidate tables dropped by the engine's table bound.")
)

// rankPool is the persistent worker pool shared by every rank engine in
// the process, replacing the per-call goroutine+channel setup the old
// Rank used. Workers start lazily on the first parallel round.
var rankPool = workpool.New(0)

// maxEngineTables bounds one engine's cached candidate tables. The
// serve path keys tables by (dataset, variant), and datasets arrive
// from a finite request vocabulary, so the bound exists only to keep a
// hostile key stream from growing the engine without limit.
const maxEngineTables = 512

// tableKey identifies one cached candidate table: rankings differ by
// dataset and by prediction variant, so each pair gets its own table.
type tableKey struct {
	dataset string
	variant core.Variant
}

// rankTable caches one (dataset, variant)'s feasible candidate
// enumeration and the last prediction computed for each candidate,
// together with the inputs (predictor identity, per-pair bandwidth)
// those predictions were computed from.
type rankTable struct {
	mu sync.Mutex

	// svc and topo identify the topology the enumeration was built
	// from: a different Service value, a new offer, a replica
	// registration, or a bandwidth entry for a previously unknown path
	// all force re-enumeration.
	svc  *Service
	topo uint64

	// pred is the predictor the cached predictions were computed with.
	// Predictors are immutable once in use (the profile store builds a
	// fresh one per snapshot version), so pointer identity is the
	// invalidation signal; a recalibration yields a new pointer and
	// recomputes every pair.
	pred *core.Predictor

	// pairs holds the enumerated candidates in deterministic order
	// (replicas sorted by site × offers in registration order), with
	// pairs[i].Config.Bandwidth being the bandwidth input the cached
	// pairs[i].Prediction was computed from. ok[i] marks a valid cached
	// prediction (or cached prediction error in errs[i]).
	pairs []Candidate
	ok    []bool
	errs  []error

	// dirty is the reusable scratch list of pair indices to recompute.
	dirty []int
}

// RankEngine is the incremental ranking engine behind Selector.Rank and
// the prediction service's /select plane. It caches the feasible
// (replica, offer) candidate table per (dataset, variant) and, when
// ranking inputs move, recomputes only the predictions whose inputs
// actually changed:
//
//   - topology change (new offer, new replica, new bandwidth path, or a
//     different Service value) → re-enumerate the table;
//   - predictor change (a profile recalibration) → keep the table,
//     recompute every prediction;
//   - bandwidth change on some paths (a live estimator update) → keep
//     the table, recompute only the pairs on those paths;
//   - nothing changed → serve the cached predictions, allocation-free
//     except for the caller-owned result slice.
//
// Recomputation fans across a persistent bounded worker pool shared by
// all engines. An engine is safe for concurrent use; rounds for the
// same (dataset, variant) serialize on the table, rounds for different
// tables proceed independently.
type RankEngine struct {
	mu     sync.Mutex
	tables map[tableKey]*rankTable
}

// NewRankEngine returns an empty engine.
func NewRankEngine() *RankEngine {
	return &RankEngine{tables: make(map[tableKey]*rankTable)}
}

// table returns (or creates) the cached table for one key, enforcing
// the engine's table bound.
func (e *RankEngine) table(key tableKey) *rankTable {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[key]
	if !ok {
		if len(e.tables) >= maxEngineTables {
			for k := range e.tables {
				delete(e.tables, k)
				engineEvictions.Inc()
				engineTables.Add(-1)
				break
			}
		}
		t = &rankTable{}
		e.tables[key] = t
		engineTables.Add(1)
	}
	return t
}

// Rank returns the feasible (replica, offer) candidates for dataset
// sorted by ascending predicted execution time, exactly as a full
// serial re-evaluation would, but reusing every cached prediction whose
// inputs did not change since the previous round. parallel bounds the
// workers recomputing predictions (see Selector.Parallel); the returned
// slice is owned by the caller.
//
// ctx is checked between candidate predictions: a canceled round stops
// recomputing and returns ctx.Err(). The table stays consistent — every
// pair whose recomputation was skipped remains marked dirty, so the
// next round recomputes exactly the predictions this one abandoned.
//
// The caller must not mutate svc concurrently with Rank (the same
// contract Service already has for readers).
func (e *RankEngine) Rank(ctx context.Context, svc *Service, dataset string, pred *core.Predictor, variant core.Variant, parallel int) ([]Candidate, error) {
	if pred == nil {
		return nil, errors.New("grid: selector without predictor")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// On a traced request the round records one span annotated with how
	// much of the table it reused; the note is only assembled when a
	// trace is listening, keeping the warm round's allocation profile
	// (result slice only) intact.
	sp := reqtrace.Child(ctx, "rank")
	defer sp.End()
	t := e.table(tableKey{dataset: dataset, variant: variant})
	t.mu.Lock()
	defer t.mu.Unlock()

	rebuilt := false
	topo := svc.TopologyVersion()
	if t.svc != svc || t.topo != topo {
		if err := t.enumerate(svc, dataset); err != nil {
			return nil, err
		}
		t.svc, t.topo = svc, topo
		rebuilt = true
	}
	if t.pred != pred {
		for i := range t.ok {
			t.ok[i] = false
		}
		t.pred = pred
	}

	rankRounds.Inc()
	rankCandidates.Add(float64(len(t.pairs)))

	// Refresh the bandwidth input of every pair and collect the ones
	// needing recomputation.
	t.dirty = t.dirty[:0]
	for i := range t.pairs {
		rep, off := &t.pairs[i].Replica, &t.pairs[i].Offer
		bw, known := svc.Bandwidth(rep.Site, off.Cluster)
		if !known {
			// A path can only disappear with a different Service value,
			// which re-enumerated above; defensively treat it as dirty
			// with the stale bandwidth kept.
			bw = t.pairs[i].Config.Bandwidth
		}
		if !t.ok[i] || bw != t.pairs[i].Config.Bandwidth {
			t.pairs[i].Config.Bandwidth = bw
			// Cleared before the recompute rather than inside it: a round
			// canceled mid-batch must not leave a prediction computed from
			// the previous bandwidth marked valid under the new one.
			t.ok[i] = false
			t.dirty = append(t.dirty, i)
		}
	}
	engineReused.Add(float64(len(t.pairs) - len(t.dirty)))
	engineRecomputed.Add(float64(len(t.dirty)))
	if sp.Traced() {
		note := "pairs=" + strconv.Itoa(len(t.pairs)) +
			" reused=" + strconv.Itoa(len(t.pairs)-len(t.dirty)) +
			" recomputed=" + strconv.Itoa(len(t.dirty))
		if rebuilt {
			note += " rebuilt"
		} else {
			note += " table-reused"
		}
		sp.Annotate(note)
	}

	if len(t.dirty) > 0 {
		limit := parallel
		if len(t.dirty) < minParallelRank {
			limit = 1
		}
		dirty := t.dirty
		if err := rankPool.RunCtx(ctx, len(dirty), limit, func(j int) {
			i := dirty[j]
			p, err := t.pred.Predict(t.pairs[i].Config, variant)
			t.pairs[i].Prediction, t.errs[i] = p, err
			t.ok[i] = true
		}); err != nil {
			return nil, err
		}
	}

	out := make([]Candidate, 0, len(t.pairs))
	var lastErr error
	for i := range t.pairs {
		if t.errs[i] != nil {
			lastErr = t.errs[i]
			continue
		}
		out = append(out, t.pairs[i])
	}
	if len(out) == 0 {
		if lastErr != nil {
			return nil, fmt.Errorf("%w (last prediction error: %v)", ErrNoCandidates, lastErr)
		}
		return nil, ErrNoCandidates
	}
	// SortStableFunc rather than sort.SliceStable: same ordering, but no
	// reflection, so a warm round's only allocation is the result slice.
	slices.SortStableFunc(out, func(a, b Candidate) int {
		ta, tb := a.Prediction.Texec(), b.Prediction.Texec()
		switch {
		case ta < tb:
			return -1
		case ta > tb:
			return 1
		default:
			return 0
		}
	})
	return out, nil
}

// enumerate rebuilds the feasible candidate table for dataset from svc,
// reusing the table's backing arrays. Every cached prediction is
// invalidated: the enumeration order may have changed.
func (t *rankTable) enumerate(svc *Service, dataset string) error {
	replicas := svc.Replicas.Replicas(dataset)
	if len(replicas) == 0 {
		return fmt.Errorf("grid: no replicas of dataset %q", dataset)
	}
	engineRebuilds.Inc()
	t.pairs = t.pairs[:0]
	for _, rep := range replicas {
		for _, off := range svc.offers {
			if off.Nodes < rep.StorageNodes {
				continue
			}
			bw, ok := svc.Bandwidth(rep.Site, off.Cluster)
			if !ok {
				continue
			}
			t.pairs = append(t.pairs, Candidate{Replica: rep, Offer: off, Config: core.Config{
				Cluster:      off.Cluster,
				DataNodes:    rep.StorageNodes,
				ComputeNodes: off.Nodes,
				Bandwidth:    bw,
				DatasetBytes: rep.Layout.Spec.TotalBytes,
			}})
		}
	}
	n := len(t.pairs)
	if cap(t.ok) < n {
		t.ok = make([]bool, n)
		t.errs = make([]error, n)
	} else {
		t.ok = t.ok[:n]
		t.errs = t.errs[:n]
	}
	for i := 0; i < n; i++ {
		t.ok[i] = false
		t.errs[i] = nil
	}
	// The predictions cached in pairs are stale relative to the fresh
	// enumeration; force a recompute by clearing the predictor pin.
	t.pred = nil
	return nil
}
