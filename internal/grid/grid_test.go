package grid

import (
	"errors"
	"testing"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/units"
)

func testSpec() adr.DatasetSpec {
	return adr.DatasetSpec{
		Name:       "pts",
		TotalBytes: 100 * units.MB,
		ElemBytes:  128,
		ChunkBytes: units.MB,
		Kind:       "points",
		Dims:       16,
		Seed:       1,
	}
}

func testProfile() core.Profile {
	return core.Profile{
		App: "toy",
		Config: core.Config{
			Cluster:      "A",
			DataNodes:    1,
			ComputeNodes: 1,
			Bandwidth:    100 * units.MBPerSec,
			DatasetBytes: 100 * units.MB,
		},
		Breakdown: core.Breakdown{
			Tdisk:    20 * time.Second,
			Tnetwork: 10 * time.Second,
			Tcompute: 100 * time.Second,
		},
		Tglobal:        time.Second,
		ROBytesPerNode: 10 * units.KB,
		BroadcastBytes: units.KB,
		Iterations:     5,
	}
}

func testService(t *testing.T) *Service {
	t.Helper()
	svc := NewService()
	spec := testSpec()
	l2, err := adr.Partition(spec, 2, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	l8, err := adr.Partition(spec, 8, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Replicas.Register(adr.Replica{Site: "near", Cluster: "A", StorageNodes: 2, Layout: l2}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Replicas.Register(adr.Replica{Site: "far", Cluster: "A", StorageNodes: 8, Layout: l8}); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddOffer(ComputeOffer{Cluster: "A", Nodes: 4}); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddOffer(ComputeOffer{Cluster: "A", Nodes: 16}); err != nil {
		t.Fatal(err)
	}
	// The far site has much lower bandwidth to the compute cluster.
	if err := svc.SetBandwidth("near", "A", 100*units.MBPerSec); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetBandwidth("far", "A", 4*units.MBPerSec); err != nil {
		t.Fatal(err)
	}
	return svc
}

func testSelector(t *testing.T) *Selector {
	t.Helper()
	pred, err := core.NewPredictor(testProfile(), core.AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	pred.Links["A"] = core.LinkCalibration{W: 1e-8, L: time.Millisecond}
	return &Selector{Predictor: pred, Variant: core.GlobalReduction}
}

func TestRankEnumeratesFeasiblePairs(t *testing.T) {
	svc := testService(t)
	sel := testSelector(t)
	ranked, err := sel.Rank(svc, "pts")
	if err != nil {
		t.Fatal(err)
	}
	// near-4, near-16, far-16 are feasible; far-8... offer 4 < 8 nodes is
	// excluded.
	if len(ranked) != 3 {
		t.Fatalf("got %d candidates, want 3", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Prediction.Texec() < ranked[i-1].Prediction.Texec() {
			t.Fatal("candidates not sorted by predicted time")
		}
	}
}

func TestSelectPrefersFastPair(t *testing.T) {
	svc := testService(t)
	sel := testSelector(t)
	best, err := sel.Select(svc, "pts")
	if err != nil {
		t.Fatal(err)
	}
	// The near replica with 16 compute nodes has full bandwidth and the
	// most parallelism; compute dominates this profile, so it must win.
	if best.Replica.Site != "near" || best.Offer.Nodes != 16 {
		t.Fatalf("selected %s with %d nodes, want near with 16", best.Replica.Site, best.Offer.Nodes)
	}
}

func TestSelectTradesBandwidthForParallelism(t *testing.T) {
	// With a retrieval-heavy profile, the 8-node replica (more storage
	// parallelism) should win despite its lower bandwidth being... still
	// feasible only with the 16-node offer. Construct a profile dominated
	// by retrieval.
	svc := testService(t)
	prof := testProfile()
	prof.Tdisk = 500 * time.Second
	prof.Tnetwork = 10 * time.Second
	prof.Tcompute = 10 * time.Second
	prof.Tglobal = 0
	pred, err := core.NewPredictor(prof, core.AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	pred.Links["A"] = core.LinkCalibration{W: 1e-8, L: time.Millisecond}
	sel := &Selector{Predictor: pred, Variant: core.GlobalReduction}
	best, err := sel.Select(svc, "pts")
	if err != nil {
		t.Fatal(err)
	}
	if best.Replica.Site != "far" {
		t.Fatalf("retrieval-heavy app selected %s, want far (8 storage nodes)", best.Replica.Site)
	}
}

func TestRankErrors(t *testing.T) {
	svc := testService(t)
	sel := testSelector(t)
	if _, err := sel.Rank(svc, "unknown"); err == nil {
		t.Error("unknown dataset ranked")
	}
	if _, err := (&Selector{}).Rank(svc, "pts"); err == nil {
		t.Error("selector without predictor ranked")
	}
	empty := NewService()
	spec := testSpec()
	l, _ := adr.Partition(spec, 2, adr.RoundRobin)
	_ = empty.Replicas.Register(adr.Replica{Site: "s", Cluster: "A", StorageNodes: 2, Layout: l})
	// No offers -> no candidates.
	if _, err := sel.Rank(empty, "pts"); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("no-offer rank error = %v, want ErrNoCandidates", err)
	}
	// Offer without bandwidth entry -> still no candidates.
	_ = empty.AddOffer(ComputeOffer{Cluster: "A", Nodes: 4})
	if _, err := sel.Rank(empty, "pts"); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("no-bandwidth rank error = %v, want ErrNoCandidates", err)
	}
}

func TestServiceValidation(t *testing.T) {
	svc := NewService()
	if err := svc.AddOffer(ComputeOffer{}); err == nil {
		t.Error("empty offer accepted")
	}
	if err := svc.SetBandwidth("a", "b", 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, ok := svc.Bandwidth("a", "b"); ok {
		t.Error("unset bandwidth reported as known")
	}
}

func TestRankSurfacesPredictionErrors(t *testing.T) {
	// An offer on a cluster the predictor has no scaling factors for is
	// skipped; if nothing remains the error mentions the cause.
	svc := NewService()
	spec := testSpec()
	l, _ := adr.Partition(spec, 2, adr.RoundRobin)
	_ = svc.Replicas.Register(adr.Replica{Site: "s", Cluster: "B", StorageNodes: 2, Layout: l})
	_ = svc.AddOffer(ComputeOffer{Cluster: "B", Nodes: 4})
	_ = svc.SetBandwidth("s", "B", 100*units.MBPerSec)
	sel := testSelector(t)
	_, err := sel.Rank(svc, "pts")
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("error = %v, want ErrNoCandidates", err)
	}
}
