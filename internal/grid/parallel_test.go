package grid

import (
	"fmt"
	"sync"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/units"
)

// bigService builds a service large enough to cross minParallelRank:
// eight replica sites times six compute offers, all feasible, yielding
// 48 (replica, offer) pairs.
func bigService(tb testing.TB) *Service {
	tb.Helper()
	svc := NewService()
	spec := testSpec()
	layout, err := adr.Partition(spec, 2, adr.RoundRobin)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		site := fmt.Sprintf("site%d", i)
		if err := svc.Replicas.Register(adr.Replica{Site: site, Cluster: "A", StorageNodes: 2, Layout: layout}); err != nil {
			tb.Fatal(err)
		}
		// Distinct bandwidths so the ranking has a meaningful order.
		if err := svc.SetBandwidth(site, "A", units.Rate(10+10*i)*units.MBPerSec); err != nil {
			tb.Fatal(err)
		}
	}
	for _, n := range []int{2, 4, 6, 8, 12, 16} {
		if err := svc.AddOffer(ComputeOffer{Cluster: "A", Nodes: n}); err != nil {
			tb.Fatal(err)
		}
	}
	return svc
}

func bigSelector(tb testing.TB, parallel int) *Selector {
	tb.Helper()
	pred, err := core.NewPredictor(testProfile(), core.AppModel{})
	if err != nil {
		tb.Fatal(err)
	}
	pred.Links["A"] = core.LinkCalibration{W: 1e-8, L: 0}
	return &Selector{Predictor: pred, Variant: core.GlobalReduction, Parallel: parallel}
}

// TestRankParallelMatchesSerial checks that concurrent candidate
// evaluation produces the exact ranking (order included, which pins the
// stable-sort tie behaviour) of a strictly serial evaluation.
func TestRankParallelMatchesSerial(t *testing.T) {
	svc := bigService(t)
	serial, err := bigSelector(t, 1).Rank(svc, "pts")
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := bigSelector(t, 8).Rank(svc, "pts")
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial ranked %d candidates, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Replica.Site != parallel[i].Replica.Site ||
			serial[i].Offer != parallel[i].Offer ||
			serial[i].Config != parallel[i].Config ||
			serial[i].Prediction != parallel[i].Prediction {
			t.Errorf("rank %d: serial %s/%d differs from parallel %s/%d",
				i, serial[i].Replica.Site, serial[i].Offer.Nodes,
				parallel[i].Replica.Site, parallel[i].Offer.Nodes)
		}
	}
}

// TestRankConcurrentCallers hammers one shared Selector from many
// goroutines (run under -race via make check): Rank only reads the
// selector and the service, so concurrent calls must be safe and all
// agree.
func TestRankConcurrentCallers(t *testing.T) {
	svc := bigService(t)
	sel := bigSelector(t, 4)
	want, err := sel.Rank(svc, "pts")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := sel.Rank(svc, "pts")
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) != len(want) {
				t.Errorf("concurrent Rank returned %d candidates, want %d", len(got), len(want))
				return
			}
			for i := range got {
				if got[i].Prediction != want[i].Prediction || got[i].Config != want[i].Config {
					t.Errorf("concurrent Rank diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkSelectorRank measures ranking the 48-pair grid, serial vs
// worker-pool evaluation.
func BenchmarkSelectorRank(b *testing.B) {
	for _, par := range []int{1, 0} {
		name := "serial"
		if par == 0 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			svc := bigService(b)
			sel := bigSelector(b, par)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sel.Rank(svc, "pts"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
