package grid

import (
	"errors"
	"testing"
	"time"
)

func TestPlanCapacityPicksCheapestMeetingDeadline(t *testing.T) {
	svc := testService(t)
	sel := testSelector(t)
	ranked, err := sel.Rank(svc, "pts")
	if err != nil {
		t.Fatal(err)
	}
	// Use a deadline the slower (cheaper) options can also meet: the
	// planner must then return the pair with the fewest nodes, not the
	// fastest.
	slowest := ranked[len(ranked)-1].Prediction.Texec()
	cand, err := PlanCapacity(sel, svc, "pts", slowest+time.Second)
	if err != nil {
		t.Fatal(err)
	}
	minNodes := cand.Config.DataNodes + cand.Config.ComputeNodes
	for _, other := range ranked {
		if n := other.Config.DataNodes + other.Config.ComputeNodes; n < minNodes {
			t.Fatalf("planner chose %d nodes but %d-node option exists within deadline", minNodes, n)
		}
	}
}

func TestPlanCapacityTightDeadlineNeedsFastest(t *testing.T) {
	svc := testService(t)
	sel := testSelector(t)
	ranked, err := sel.Rank(svc, "pts")
	if err != nil {
		t.Fatal(err)
	}
	fastest := ranked[0]
	cand, err := PlanCapacity(sel, svc, "pts", fastest.Prediction.Texec()+time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cand.Prediction.Texec() > fastest.Prediction.Texec()+time.Millisecond {
		t.Fatalf("planned pair misses the tight deadline: %v", cand.Prediction.Texec())
	}
}

func TestPlanCapacityUnreachableDeadline(t *testing.T) {
	svc := testService(t)
	sel := testSelector(t)
	_, err := PlanCapacity(sel, svc, "pts", time.Nanosecond)
	if !errors.Is(err, ErrDeadlineUnreachable) {
		t.Fatalf("error = %v, want ErrDeadlineUnreachable", err)
	}
}

func TestPlanCapacityValidation(t *testing.T) {
	svc := testService(t)
	sel := testSelector(t)
	if _, err := PlanCapacity(sel, svc, "pts", 0); err == nil {
		t.Error("zero deadline accepted")
	}
	if _, err := PlanCapacity(sel, svc, "missing", time.Hour); err == nil {
		t.Error("unknown dataset planned")
	}
}
