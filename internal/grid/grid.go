// Package grid implements the resource selection framework of the
// FREERIDE-G middleware (Sections 1–3 of the paper): given a dataset
// replicated at several repository sites and a set of candidate compute
// configurations, it enumerates the (replica, configuration) pairs,
// predicts each pair's execution time with the prediction framework, and
// picks the pair with the minimum predicted cost.
package grid

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/metrics"
	"freerideg/internal/units"
)

// Selection metrics: how many ranking rounds ran and how many candidate
// (replica, configuration) predictions they evaluated.
var (
	rankRounds = metrics.GetCounter("fg_grid_rank_total",
		"Selector.Rank invocations.")
	rankCandidates = metrics.GetCounter("fg_grid_rank_candidates_total",
		"Candidate (replica, configuration) predictions evaluated by Selector.Rank.")
)

// ComputeOffer is one compute configuration a grid information service
// reports as available.
type ComputeOffer struct {
	// Cluster names the hardware the nodes belong to.
	Cluster string
	// Nodes is the number of compute nodes offered.
	Nodes int
}

// Service is the grid information service the selection framework
// consults: dataset replicas, compute offers, and the measured bandwidth
// between repository sites and compute clusters.
type Service struct {
	Replicas  *adr.Registry
	offers    []ComputeOffer
	bandwidth map[[2]string]units.Rate
	// topo counts structural changes owned by the service itself: offers
	// added and bandwidth entries for previously unknown paths. Updating
	// an existing path's bandwidth is not structural — the rank engine
	// handles it incrementally per pair.
	topo uint64
}

// NewService returns an empty information service.
func NewService() *Service {
	return &Service{
		Replicas:  adr.NewRegistry(),
		bandwidth: make(map[[2]string]units.Rate),
	}
}

// AddOffer registers an available compute configuration.
func (s *Service) AddOffer(o ComputeOffer) error {
	if o.Cluster == "" || o.Nodes < 1 {
		return fmt.Errorf("grid: invalid compute offer %+v", o)
	}
	s.offers = append(s.offers, o)
	s.topo++
	return nil
}

// TopologyVersion is a monotonic fingerprint of the service's feasible
// candidate structure: it moves whenever an offer is added, a replica is
// registered, or a bandwidth entry appears for a new site→cluster path.
// Both terms are monotonic, so the sum can never repeat for a different
// structure. Updating an existing path's bandwidth does not move it.
func (s *Service) TopologyVersion() uint64 {
	return s.topo + s.Replicas.Version()
}

// Offers lists the registered compute offers.
func (s *Service) Offers() []ComputeOffer {
	return append([]ComputeOffer(nil), s.offers...)
}

// SetBandwidth records the measured bandwidth between a repository site
// and a compute cluster. (The paper notes that wide-area bandwidth
// estimation work, e.g. Vazhkudai & Schopf, slots in here.)
func (s *Service) SetBandwidth(site, cluster string, b units.Rate) error {
	if b <= 0 {
		return fmt.Errorf("grid: non-positive bandwidth %v for %s->%s", b, site, cluster)
	}
	key := [2]string{site, cluster}
	if _, known := s.bandwidth[key]; !known {
		// A new path can make pairs feasible that were not enumerated:
		// that is a structural change, unlike an update in place.
		s.topo++
	}
	s.bandwidth[key] = b
	return nil
}

// Bandwidth reports the recorded bandwidth between a site and a cluster.
func (s *Service) Bandwidth(site, cluster string) (units.Rate, bool) {
	b, ok := s.bandwidth[[2]string{site, cluster}]
	return b, ok
}

// Candidate is one (replica, compute configuration) pair with its
// predicted execution time.
type Candidate struct {
	Replica    adr.Replica
	Offer      ComputeOffer
	Config     core.Config
	Prediction core.Prediction
}

// PredictorSource supplies the predictor a ranking round should use.
// A live profile store (internal/profile) satisfies it: each round then
// sees the latest recalibrated snapshot, while a round in flight keeps
// the predictor it resolved.
type PredictorSource interface {
	Predictor() (*core.Predictor, error)
}

// Selector ranks candidates using an application's predictor. Ranking
// runs on a per-selector RankEngine, so repeated Rank calls against the
// same service reuse the enumerated candidate table and every
// prediction whose inputs did not change.
type Selector struct {
	// Predictor is seeded with the application's base profile, link
	// calibrations, and (for cross-cluster offers) scaling factors.
	Predictor *core.Predictor
	// Source, when set, is resolved at the start of every ranking round
	// and takes precedence over the pinned Predictor.
	Source PredictorSource
	// Variant selects the prediction model; the paper's most accurate is
	// GlobalReduction.
	Variant core.Variant
	// Parallel bounds the workers evaluating candidate predictions
	// concurrently (Predictor.Predict is pure, so candidates are
	// independent). Values < 1 select GOMAXPROCS; 1 forces strictly
	// serial evaluation. The ranking is identical either way.
	Parallel int

	engOnce sync.Once
	eng     *RankEngine
}

// Engine returns the selector's rank engine, creating it on first use.
func (s *Selector) Engine() *RankEngine {
	s.engOnce.Do(func() { s.eng = NewRankEngine() })
	return s.eng
}

// minParallelRank is the candidate count below which Rank stays serial:
// a prediction is microseconds of arithmetic, so goroutine fan-out only
// pays for itself on larger (replica, offer) grids.
const minParallelRank = 16

// ErrNoCandidates is returned when no (replica, offer) pair is feasible.
var ErrNoCandidates = errors.New("grid: no feasible (replica, configuration) pair")

// Rank enumerates all feasible (replica, offer) pairs for a dataset and
// returns them sorted by ascending predicted execution time. A pair is
// feasible when the offer has at least as many compute nodes as the
// replica has storage nodes (the middleware's M >= N requirement), the
// site-to-cluster bandwidth is known, and the predictor covers the
// offer's cluster.
func (s *Selector) Rank(svc *Service, dataset string) ([]Candidate, error) {
	return s.RankCtx(context.Background(), svc, dataset)
}

// RankCtx is Rank under a caller-supplied context: the ranking checks
// ctx between candidate predictions and returns ctx.Err() once it is
// done, so a serve-path caller whose request was canceled or timed out
// stops burning prediction work mid-round.
func (s *Selector) RankCtx(ctx context.Context, svc *Service, dataset string) ([]Candidate, error) {
	pred := s.Predictor
	if s.Source != nil {
		var err error
		if pred, err = s.Source.Predictor(); err != nil {
			return nil, fmt.Errorf("grid: resolving predictor: %w", err)
		}
	}
	if pred == nil {
		return nil, errors.New("grid: selector without predictor")
	}
	return s.Engine().Rank(ctx, svc, dataset, pred, s.Variant, s.Parallel)
}

// rankSerial is the reference implementation Rank is pinned against: a
// full, strictly serial enumerate-and-predict round with no caching.
// The determinism test asserts the engine's output is byte-identical to
// this path under every invalidation pattern.
func rankSerial(svc *Service, dataset string, pred *core.Predictor, variant core.Variant) ([]Candidate, error) {
	replicas := svc.Replicas.Replicas(dataset)
	if len(replicas) == 0 {
		return nil, fmt.Errorf("grid: no replicas of dataset %q", dataset)
	}
	var pairs []Candidate
	for _, rep := range replicas {
		for _, off := range svc.Offers() {
			if off.Nodes < rep.StorageNodes {
				continue
			}
			bw, ok := svc.Bandwidth(rep.Site, off.Cluster)
			if !ok {
				continue
			}
			pairs = append(pairs, Candidate{Replica: rep, Offer: off, Config: core.Config{
				Cluster:      off.Cluster,
				DataNodes:    rep.StorageNodes,
				ComputeNodes: off.Nodes,
				Bandwidth:    bw,
				DatasetBytes: rep.Layout.Spec.TotalBytes,
			}})
		}
	}
	out := make([]Candidate, 0, len(pairs))
	var lastErr error
	for _, cand := range pairs {
		p, err := pred.Predict(cand.Config, variant)
		if err != nil {
			lastErr = err
			continue
		}
		cand.Prediction = p
		out = append(out, cand)
	}
	if len(out) == 0 {
		if lastErr != nil {
			return nil, fmt.Errorf("%w (last prediction error: %v)", ErrNoCandidates, lastErr)
		}
		return nil, ErrNoCandidates
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Prediction.Texec() < out[j].Prediction.Texec()
	})
	return out, nil
}

// Select returns the minimum-cost candidate.
func (s *Selector) Select(svc *Service, dataset string) (Candidate, error) {
	ranked, err := s.Rank(svc, dataset)
	if err != nil {
		return Candidate{}, err
	}
	return ranked[0], nil
}
