package grid

import (
	"errors"
	"fmt"
	"time"
)

// ErrDeadlineUnreachable is returned when no feasible pair meets the
// deadline; the wrapped message names the fastest available option.
var ErrDeadlineUnreachable = errors.New("grid: no configuration meets the deadline")

// PlanCapacity picks the cheapest (replica, configuration) pair whose
// predicted execution time meets the deadline — the dual of Select:
// instead of the fastest pair, the least resource-hungry one that is fast
// enough. Cost is the total node count (storage + compute), ties broken
// by predicted time.
//
// This is the resource-allocation question the paper's introduction poses
// ("determine how long an application will take for completion on a
// particular platform or configuration") turned around: given how long
// it may take, how little of the grid do we need to ask for?
func PlanCapacity(sel *Selector, svc *Service, dataset string, deadline time.Duration) (Candidate, error) {
	if deadline <= 0 {
		return Candidate{}, fmt.Errorf("grid: non-positive deadline %v", deadline)
	}
	ranked, err := sel.Rank(svc, dataset)
	if err != nil {
		return Candidate{}, err
	}
	return PlanFromRanked(ranked, deadline)
}

// PlanFromRanked applies PlanCapacity's cheapest-that-meets-the-deadline
// policy to an already ranked candidate list, so callers that rank
// through an engine (the prediction service) need not re-rank to plan.
func PlanFromRanked(ranked []Candidate, deadline time.Duration) (Candidate, error) {
	if deadline <= 0 {
		return Candidate{}, fmt.Errorf("grid: non-positive deadline %v", deadline)
	}
	if len(ranked) == 0 {
		return Candidate{}, ErrNoCandidates
	}
	var best Candidate
	found := false
	cost := func(c Candidate) int { return c.Config.DataNodes + c.Config.ComputeNodes }
	for _, cand := range ranked {
		if cand.Prediction.Texec() > deadline {
			continue
		}
		if !found || cost(cand) < cost(best) ||
			(cost(cand) == cost(best) && cand.Prediction.Texec() < best.Prediction.Texec()) {
			best = cand
			found = true
		}
	}
	if !found {
		fastest := ranked[0]
		return Candidate{}, fmt.Errorf("%w: fastest option is %s with %d+%d nodes at %v",
			ErrDeadlineUnreachable, fastest.Replica.Site,
			fastest.Config.DataNodes, fastest.Config.ComputeNodes,
			fastest.Prediction.Texec().Round(time.Millisecond))
	}
	return best, nil
}
