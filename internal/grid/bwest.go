package grid

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"freerideg/internal/metrics"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

// estimatorSamples counts transfer observations accepted across all
// estimators in the process (the paper's b̂ measurement stream).
var estimatorSamples = metrics.GetCounter("fg_grid_estimator_samples_total",
	"Transfer samples accepted by bandwidth estimators.")

// TransferSample is one observed data movement on a site-to-cluster path.
type TransferSample struct {
	Bytes   units.Bytes
	Elapsed time.Duration
}

// BandwidthEstimator predicts the effective bandwidth of repository-to-
// compute paths from observed transfers, standing in for the wide-area
// transfer prediction services the paper points at for determining b̂
// (Vazhkudai & Schopf; Lu, Qiao, Dinda & Bustamante). The estimator fits
// elapsed = latency + bytes/bandwidth by least squares over the most
// recent observations of each path, so transient congestion ages out.
type BandwidthEstimator struct {
	mu      sync.Mutex
	window  int
	samples map[[2]string][]TransferSample
}

// DefaultEstimatorWindow is how many recent transfers each path keeps.
const DefaultEstimatorWindow = 32

// NewBandwidthEstimator creates an estimator keeping the given number of
// recent samples per path (0 uses DefaultEstimatorWindow).
func NewBandwidthEstimator(window int) *BandwidthEstimator {
	if window <= 0 {
		window = DefaultEstimatorWindow
	}
	return &BandwidthEstimator{
		window:  window,
		samples: make(map[[2]string][]TransferSample),
	}
}

// Observe records one completed transfer on a path.
func (e *BandwidthEstimator) Observe(site, cluster string, s TransferSample) error {
	if s.Bytes <= 0 || s.Elapsed <= 0 {
		return fmt.Errorf("grid: invalid transfer sample %v in %v", s.Bytes, s.Elapsed)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := [2]string{site, cluster}
	list := append(e.samples[key], s)
	if len(list) > e.window {
		list = list[len(list)-e.window:]
	}
	e.samples[key] = list
	estimatorSamples.Inc()
	return nil
}

// Feed returns an observation callback bound to one path, in the shape
// the middleware's SimOptions.Transfers hook expects: wired into a run,
// every completed chunk delivery becomes a sample for the path, so a
// degraded repository (slow disk, retried deliveries) drags the path's
// estimated bandwidth down and the next selection round prefers a
// healthier replica. Unusable samples are dropped silently — the feed is
// an observer, never a failure source.
func (e *BandwidthEstimator) Feed(site, cluster string) func(units.Bytes, time.Duration) {
	return func(b units.Bytes, elapsed time.Duration) {
		_ = e.Observe(site, cluster, TransferSample{Bytes: b, Elapsed: elapsed})
	}
}

// Samples reports how many observations a path currently holds.
func (e *BandwidthEstimator) Samples(site, cluster string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.samples[[2]string{site, cluster}])
}

// saneRate reports whether r is a usable bandwidth estimate: strictly
// positive and finite. A fitted slope that underflows toward zero turns
// 1/slope into +Inf (or an absurd finite value next to it); such an
// estimate must never reach the information service as b̂.
func saneRate(r units.Rate) bool {
	f := float64(r)
	return f > 0 && !math.IsInf(f, 0) && !math.IsNaN(f)
}

// Estimate predicts a path's effective bandwidth and latency. It needs at
// least two observations with distinct sizes. The returned rate is
// guaranteed finite and positive: a degenerate or underflowing fit falls
// back to the median direct bytes/elapsed ratio, and when that is
// unusable too, Estimate reports an error instead of a garbage b̂.
func (e *BandwidthEstimator) Estimate(site, cluster string) (units.Rate, time.Duration, error) {
	e.mu.Lock()
	list := append([]TransferSample(nil), e.samples[[2]string{site, cluster}]...)
	e.mu.Unlock()
	if len(list) < 2 {
		return 0, 0, fmt.Errorf("grid: %d sample(s) for %s->%s, need at least 2", len(list), site, cluster)
	}
	xs := make([]float64, len(list))
	ys := make([]float64, len(list))
	for i, s := range list {
		xs[i] = float64(s.Bytes)
		ys[i] = s.Elapsed.Seconds()
	}
	slope, intercept, err := stats.LinFit(xs, ys)
	if err == nil && slope > 0 {
		if bw := units.Rate(1 / slope); saneRate(bw) {
			lat := units.Seconds(intercept)
			if lat < 0 {
				lat = 0
			}
			return bw, lat, nil
		}
	}
	// Degenerate fit (identical sizes, latency-dominated tiny transfers,
	// or a slope underflow): fall back to the median direct ratio.
	ratios := make([]float64, len(list))
	for i, s := range list {
		ratios[i] = float64(s.Bytes) / s.Elapsed.Seconds()
	}
	med, qerr := stats.Quantile(ratios, 0.5)
	if qerr != nil || !saneRate(units.Rate(med)) {
		return 0, 0, fmt.Errorf("grid: path %s->%s has no usable bandwidth signal", site, cluster)
	}
	return units.Rate(med), 0, nil
}

// Paths lists the observed paths, sorted.
func (e *BandwidthEstimator) Paths() [][2]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][2]string, 0, len(e.samples))
	for k := range e.samples {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// FillService writes every estimable path's bandwidth into the
// information service, making the estimator the service's b̂ source.
func (e *BandwidthEstimator) FillService(svc *Service) error {
	for _, path := range e.Paths() {
		bw, _, err := e.Estimate(path[0], path[1])
		if err != nil {
			continue // paths without enough signal keep their old value
		}
		if err := svc.SetBandwidth(path[0], path[1], bw); err != nil {
			return err
		}
	}
	return nil
}
