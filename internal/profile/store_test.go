package profile

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"freerideg/internal/core"
	"freerideg/internal/units"
)

// truthProfile is the "real" behavior of the test application: the
// profile a perfectly calibrated store would hold.
func truthProfile() core.Profile {
	return core.Profile{
		App: "kmeans",
		Config: core.Config{
			Cluster:      "A",
			DataNodes:    1,
			ComputeNodes: 2,
			Bandwidth:    100 * units.MBPerSec,
			DatasetBytes: 100 * units.MB,
		},
		Breakdown: core.Breakdown{
			Tdisk:    10 * time.Second,
			Tnetwork: 20 * time.Second,
			Tcompute: 60 * time.Second,
		},
		Tro:            2 * time.Second,
		Tglobal:        time.Second,
		ROBytesPerNode: 100 * units.KB,
		BroadcastBytes: 10 * units.KB,
		Iterations:     5,
	}
}

// staleProfile is truthProfile with every component time tripled — the
// deliberately mis-scaled profile the closed-loop tests start from.
func staleProfile() core.Profile {
	p := truthProfile()
	p.Tdisk *= 3
	p.Tnetwork *= 3
	p.Tcompute *= 3
	p.Tro *= 3
	p.Tglobal *= 3
	return p
}

func testLinks() map[string]core.LinkCalibration {
	return map[string]core.LinkCalibration{
		"A": {W: 1e-8, L: 100 * time.Microsecond},
	}
}

func staleDoc() core.ProfileStore {
	return core.ProfileStore{Profiles: []core.Profile{staleProfile()}, Links: testLinks()}
}

// truthPredictor predicts what the application actually does.
func truthPredictor(t *testing.T) *core.Predictor {
	t.Helper()
	pred, err := core.NewPredictor(truthProfile(), core.AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range testLinks() {
		pred.Links[k] = v
	}
	return pred
}

// observeTruth simulates running the application on cfg by predicting it
// with the truth predictor and wrapping the result as an observation.
func observeTruth(t *testing.T, cfg core.Config) Observation {
	t.Helper()
	p, err := truthPredictor(t).Predict(cfg, core.GlobalReduction)
	if err != nil {
		t.Fatalf("truth prediction for %v: %v", cfg, err)
	}
	truth := truthProfile()
	return Observation{
		App:            truth.App,
		Config:         cfg,
		Breakdown:      p.Breakdown,
		Tro:            p.Tro,
		Tglobal:        p.Tglobal,
		ROBytesPerNode: truth.ROBytesPerNode,
		BroadcastBytes: truth.BroadcastBytes,
		Iterations:     truth.Iterations,
	}
}

func sampleConfigs() []core.Config {
	base := truthProfile().Config
	out := make([]core.Config, 0, 6)
	for i, s := range []units.Bytes{50 * units.MB, 150 * units.MB, 200 * units.MB,
		250 * units.MB, 300 * units.MB, 120 * units.MB} {
		cfg := base
		cfg.DatasetBytes = s
		cfg.ComputeNodes = 2 + i%3
		out = append(out, cfg)
	}
	return out
}

func TestNewStoreRejectsDuplicateApps(t *testing.T) {
	doc := core.ProfileStore{Profiles: []core.Profile{staleProfile(), staleProfile()}}
	if _, err := NewStore(doc, Options{}); err == nil {
		t.Fatal("NewStore accepted a document with duplicate apps")
	}
}

func TestNewStoreAllowsEmptyDocument(t *testing.T) {
	s, err := NewStore(core.ProfileStore{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Version() != 0 {
		t.Fatalf("empty store version = %d, want 0", snap.Version())
	}
	if len(snap.Apps()) != 0 {
		t.Fatalf("empty store has apps %v", snap.Apps())
	}
}

func TestIngestAdoptsUnknownApp(t *testing.T) {
	s, err := NewStore(core.ProfileStore{Links: testLinks()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	obs := observeTruth(t, truthProfile().Config)
	res, err := s.Ingest(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adopted {
		t.Fatal("first observation of an unknown app was not adopted")
	}
	if res.AppVersion != 1 || res.StoreVersion == 0 {
		t.Fatalf("adoption versions = app %d store %d, want app 1, store > 0", res.AppVersion, res.StoreVersion)
	}
	snap := s.Snapshot()
	p, ver, ok := snap.Find("kmeans")
	if !ok || ver != 1 {
		t.Fatalf("adopted profile lookup = ok=%v ver=%d", ok, ver)
	}
	if p.Texec() != obs.Texec() {
		t.Fatalf("adopted profile Texec = %v, want %v", p.Texec(), obs.Texec())
	}
	// A second observation of the now-known app is a plain sample.
	res, err = s.Ingest(observeTruth(t, sampleConfigs()[0]))
	if err != nil {
		t.Fatal(err)
	}
	if res.Adopted {
		t.Fatal("second observation re-adopted the app")
	}
	if res.Samples != 2 || res.Pending != 1 {
		t.Fatalf("after second ingest: samples=%d pending=%d, want 2/1", res.Samples, res.Pending)
	}
}

func TestIngestRejectsInvalidObservation(t *testing.T) {
	s, err := NewStore(staleDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	obs := observeTruth(t, truthProfile().Config)
	obs.Tcompute = -time.Second
	if _, err := s.Ingest(obs); err == nil {
		t.Fatal("Ingest accepted a negative component time")
	}
	obs = observeTruth(t, truthProfile().Config)
	obs.Config.Cluster = ""
	if _, err := s.Ingest(obs); err == nil {
		t.Fatal("Ingest accepted a config without cluster")
	}
}

func TestIngestFillsOptionalFieldsFromBaseProfile(t *testing.T) {
	s, err := NewStore(staleDoc(), Options{DisableAutoRecalibrate: true})
	if err != nil {
		t.Fatal(err)
	}
	obs := observeTruth(t, sampleConfigs()[0])
	obs.Iterations = 0
	obs.ROBytesPerNode = 0
	obs.BroadcastBytes = 0
	if _, err := s.Ingest(obs); err != nil {
		t.Fatalf("bare-breakdown observation rejected: %v", err)
	}
	s.mu.Lock()
	got := s.state["kmeans"].pending[0]
	s.mu.Unlock()
	base := staleProfile()
	if got.Iterations != base.Iterations || got.ROBytesPerNode != base.ROBytesPerNode ||
		got.BroadcastBytes != base.BroadcastBytes {
		t.Fatalf("fill = iters %d ro %v bcast %v, want base profile's %d/%v/%v",
			got.Iterations, got.ROBytesPerNode, got.BroadcastBytes,
			base.Iterations, base.ROBytesPerNode, base.BroadcastBytes)
	}
}

func TestVersionsAdvanceOnlyOnContentChange(t *testing.T) {
	s, err := NewStore(staleDoc(), Options{DisableAutoRecalibrate: true})
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.Snapshot().Version()
	if v0 != 1 {
		t.Fatalf("initial store version = %d, want 1", v0)
	}
	res, err := s.Ingest(observeTruth(t, sampleConfigs()[0]))
	if err != nil {
		t.Fatal(err)
	}
	if res.StoreVersion != v0 || s.Snapshot().Version() != v0 {
		t.Fatalf("pure ingestion moved the store version: %d -> %d", v0, res.StoreVersion)
	}
	// But the status view still reflects the ingestion.
	st, ok := s.Snapshot().Status("kmeans")
	if !ok || st.Pending != 1 || st.Samples != 1 {
		t.Fatalf("status after ingest = %+v ok=%v", st, ok)
	}
}

func TestSeedLinksOnlyFillsAbsentClusters(t *testing.T) {
	s, err := NewStore(staleDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.Snapshot().Version()
	orig := testLinks()["A"]
	s.SeedLinks(map[string]core.LinkCalibration{
		"A": {W: 99, L: time.Hour},          // must not clobber the measured value
		"B": {W: 2e-8, L: time.Millisecond}, // absent: seeded
	})
	snap := s.Snapshot()
	if got := snap.Doc().Links["A"]; got != orig {
		t.Fatalf("SeedLinks clobbered measured calibration: %+v", got)
	}
	if got := snap.Doc().Links["B"]; got.W != 2e-8 {
		t.Fatalf("SeedLinks did not install absent cluster: %+v", got)
	}
	if snap.Version() <= v0 {
		t.Fatalf("seeding new links did not advance the version: %d", snap.Version())
	}
	// Seeding the same links again changes nothing.
	v1 := snap.Version()
	s.SeedLinks(map[string]core.LinkCalibration{"B": {W: 5, L: 0}})
	if got := s.Snapshot().Version(); got != v1 {
		t.Fatalf("no-op seeding advanced the version: %d -> %d", v1, got)
	}
}

func TestSnapshotIsCopyOnWrite(t *testing.T) {
	s, err := NewStore(staleDoc(), Options{MinSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Snapshot()
	beforeDisk := before.Doc().Profiles[0].Tdisk
	for _, cfg := range sampleConfigs() {
		if _, err := s.Ingest(observeTruth(t, cfg)); err != nil {
			t.Fatal(err)
		}
	}
	after := s.Snapshot()
	if after.Version() <= before.Version() {
		t.Fatalf("recalibration did not advance the version: %d -> %d", before.Version(), after.Version())
	}
	// The old snapshot still serves the old document.
	if got := before.Doc().Profiles[0].Tdisk; got != beforeDisk {
		t.Fatalf("old snapshot mutated: Tdisk %v -> %v", beforeDisk, got)
	}
	if after.Doc().Profiles[0].Tdisk == beforeDisk {
		t.Fatal("new snapshot still has the stale profile")
	}
}

func TestFileBackedPersistenceSurvivesReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")
	s, err := Create(path, staleDoc(), Options{MinSamples: 2, AutoPersist: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range sampleConfigs() {
		if _, err := s.Ingest(observeTruth(t, cfg)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	_, appVer, _ := snap.Find("kmeans")
	if appVer < 2 {
		t.Fatalf("recalibration did not advance the app version: %d", appVer)
	}

	// A fresh store opened over the same file sees the same content and
	// versions.
	reopened, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rsnap := reopened.Snapshot()
	if rsnap.Version() != snap.Version() {
		t.Fatalf("reopened store version = %d, want %d", rsnap.Version(), snap.Version())
	}
	rp, rv, ok := rsnap.Find("kmeans")
	if !ok || rv != appVer {
		t.Fatalf("reopened app version = %d ok=%v, want %d", rv, ok, appVer)
	}
	if want := snap.Doc().Profiles[0]; rp != want {
		t.Fatalf("reopened profile differs:\n got %+v\nwant %+v", rp, want)
	}

	// And the file is still readable as a plain core document.
	plain, err := core.LoadStore(path)
	if err != nil {
		t.Fatalf("core.LoadStore on a profile.Document file: %v", err)
	}
	if len(plain.Profiles) != 1 || plain.Profiles[0].App != "kmeans" {
		t.Fatalf("plain load content: %+v", plain)
	}
}

func TestReloadKeepsVersionsMonotonic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")
	s, err := Create(path, staleDoc(), Options{MinSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range sampleConfigs() {
		if _, err := s.Ingest(observeTruth(t, cfg)); err != nil {
			t.Fatal(err)
		}
	}
	memVer := s.Snapshot().Version()
	_, memAppVer, _ := s.Snapshot().Find("kmeans")
	if memVer < 2 || memAppVer < 2 {
		t.Fatalf("precondition: versions did not advance (store %d app %d)", memVer, memAppVer)
	}
	// The file still holds the version-1 creation state; an external edit
	// effectively rolled it back. Reload must not move versions backward.
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Version() < memVer {
		t.Fatalf("reload moved the store version backward: %d -> %d", memVer, snap.Version())
	}
	if _, v, _ := snap.Find("kmeans"); v < memAppVer {
		t.Fatalf("reload moved the app version backward: %d -> %d", memAppVer, v)
	}
	// But the content is the file's.
	if got := snap.Doc().Profiles[0]; got != staleProfile() {
		t.Fatalf("reload did not restore the file content: %+v", got)
	}
}

func TestInMemoryStoreRejectsPersist(t *testing.T) {
	s, err := NewStore(staleDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Persist(); !errors.Is(err, ErrNotFileBacked) {
		t.Fatalf("Persist on in-memory store = %v, want ErrNotFileBacked", err)
	}
	if err := s.Reload(); !errors.Is(err, ErrNotFileBacked) {
		t.Fatalf("Reload on in-memory store = %v, want ErrNotFileBacked", err)
	}
}

func TestWriteDocumentLeavesNoTempFilesBehind(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")
	if _, err := Create(path, staleDoc(), Options{}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".profiles-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

func TestOpenPlainCoreStoreFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plain.json")
	if err := core.SaveStore(path, staleDoc()); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Version() != 1 {
		t.Fatalf("plain store adopted at version %d, want 1", snap.Version())
	}
	if _, v, ok := snap.Find("kmeans"); !ok || v != 1 {
		t.Fatalf("plain store app version = %d ok=%v, want 1", v, ok)
	}
}

func TestRecalibrateUnknownApp(t *testing.T) {
	s, err := NewStore(staleDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recalibrate("nope"); err == nil {
		t.Fatal("Recalibrate accepted an unknown app")
	}
}

func TestExplicitRecalibrateWithAutoDisabled(t *testing.T) {
	s, err := NewStore(staleDoc(), Options{MinSamples: 3, DisableAutoRecalibrate: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range sampleConfigs() {
		res, err := s.Ingest(observeTruth(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		if res.Recalibrated {
			t.Fatal("auto recalibration ran while disabled")
		}
	}
	changed, err := s.Recalibrate("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("explicit recalibration changed nothing")
	}
	st, _ := s.Snapshot().Status("kmeans")
	if st.Recalibrations != 1 || st.Pending != 0 {
		t.Fatalf("status after explicit recalibration: %+v", st)
	}
}

func TestLinkRefitRecoversInterconnectParameters(t *testing.T) {
	const (
		wTrue = 2e-8
		iters = 4
		nodes = 3
	)
	lTrue := 500 * time.Microsecond
	base := core.Profile{
		App: "apriori",
		Config: core.Config{Cluster: "A", DataNodes: 1, ComputeNodes: nodes,
			Bandwidth: 100 * units.MBPerSec, DatasetBytes: 100 * units.MB},
		Breakdown:      core.Breakdown{Tdisk: 5 * time.Second, Tnetwork: 5 * time.Second, Tcompute: 50 * time.Second},
		Tro:            time.Second,
		ROBytesPerNode: units.MB,
		BroadcastBytes: 0,
		Iterations:     iters,
	}
	doc := core.ProfileStore{
		Profiles: []core.Profile{base},
		Links:    map[string]core.LinkCalibration{"A": {W: 1e-9, L: time.Millisecond}},
	}
	s, err := NewStore(doc, Options{MinSamples: 4, DisableAutoRecalibrate: true})
	if err != nil {
		t.Fatal(err)
	}
	// Observed runs whose T_ro exactly matches the message-cost model
	// w·r + l over iterations × (c−1) × 2 messages, at varied sizes.
	cal := core.LinkCalibration{W: wTrue, L: lTrue}
	for _, ro := range []units.Bytes{units.MB, 2 * units.MB, 4 * units.MB, 8 * units.MB} {
		obs := Observation{
			App:            base.App,
			Config:         base.Config,
			Breakdown:      base.Breakdown,
			Tro:            time.Duration(iters*(nodes-1)) * (cal.MessageTime(ro) + cal.MessageTime(0)),
			ROBytesPerNode: ro,
			Iterations:     iters,
		}
		if _, err := s.Ingest(obs); err != nil {
			t.Fatal(err)
		}
	}
	if changed, err := s.Recalibrate(base.App); err != nil || !changed {
		t.Fatalf("recalibration changed=%v err=%v", changed, err)
	}
	got := s.Snapshot().Doc().Links["A"]
	if math.Abs(got.W-wTrue) > 1e-10 {
		t.Fatalf("refit W = %g, want %g", got.W, wTrue)
	}
	if math.Abs(got.L.Seconds()-lTrue.Seconds()) > 1e-5 {
		t.Fatalf("refit L = %v, want %v", got.L, lTrue)
	}
}

func TestScalingRefitFromCrossClusterRuns(t *testing.T) {
	want := core.Scaling{Disk: 2, Network: 0.5, Compute: 1.5}
	s, err := NewStore(staleDoc(), Options{MinSamples: 3, DisableAutoRecalibrate: true})
	if err != nil {
		t.Fatal(err)
	}
	// Observed runs on cluster B behave like the stale profile's cluster-A
	// predictions, component-scaled by `want`.
	stalePred, err := core.NewPredictorFromStore(staleDoc(), "kmeans", core.AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range sampleConfigs()[:4] {
		p, err := stalePred.Predict(cfg, core.GlobalReduction)
		if err != nil {
			t.Fatal(err)
		}
		obs := Observation{
			App:    "kmeans",
			Config: cfg,
			Breakdown: core.Breakdown{
				Tdisk:    time.Duration(float64(p.Tdisk) * want.Disk),
				Tnetwork: time.Duration(float64(p.Tnetwork) * want.Network),
				Tcompute: time.Duration(float64(p.Tcompute) * want.Compute),
			},
			Tro:     time.Duration(float64(p.Tro) * want.Compute),
			Tglobal: time.Duration(float64(p.Tglobal) * want.Compute),
		}
		obs.Config.Cluster = "B"
		if _, err := s.Ingest(obs); err != nil {
			t.Fatal(err)
		}
	}
	if changed, err := s.Recalibrate("kmeans"); err != nil || !changed {
		t.Fatalf("recalibration changed=%v err=%v", changed, err)
	}
	got, ok := s.Snapshot().Doc().Scalings["B"]
	if !ok {
		t.Fatal("no scaling factors fitted for cluster B")
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{{"disk", got.Disk, want.Disk}, {"network", got.Network, want.Network}, {"compute", got.Compute, want.Compute}} {
		if math.Abs(c.got-c.want) > 0.02*c.want {
			t.Errorf("refit %s scaling = %g, want %g", c.name, c.got, c.want)
		}
	}
}

func TestDriftRing(t *testing.T) {
	r := newDriftRing(3)
	if m, n := r.mean(); m != 0 || n != 0 {
		t.Fatalf("empty ring mean = %v/%d", m, n)
	}
	r.push(1)
	r.push(2)
	if m, n := r.mean(); m != 1.5 || n != 2 {
		t.Fatalf("partial ring mean = %v/%d, want 1.5/2", m, n)
	}
	r.push(3)
	r.push(10) // evicts the oldest sample (1)
	if m, n := r.mean(); m != 5 || n != 3 {
		t.Fatalf("wrapped ring mean = %v/%d, want 5/3", m, n)
	}
	r.reset()
	if m, n := r.mean(); m != 0 || n != 0 {
		t.Fatalf("reset ring mean = %v/%d", m, n)
	}
}
