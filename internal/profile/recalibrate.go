package profile

import (
	"fmt"
	"math"
	"sync"
	"time"

	"freerideg/internal/core"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

// driftErrorLocked predicts an observed run's total time with the
// store's current calibrations and reports the relative error against
// the observation. The most structured variant that can be evaluated is
// used (GlobalReduction needs a link calibration for the run's cluster;
// cross-cluster runs need scaling factors), so a run no variant can
// predict contributes no drift signal.
func (s *Store) driftErrorLocked(obs Observation) (float64, bool) {
	pred, err := core.NewPredictorFromStore(s.doc, obs.App, s.modelFor(obs.App))
	if err != nil {
		return 0, false
	}
	for _, v := range []core.Variant{core.GlobalReduction, core.NoComm} {
		p, err := pred.Predict(obs.Config, v)
		if err != nil {
			continue
		}
		e := stats.RelError(obs.Texec().Seconds(), p.Texec().Seconds())
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return 0, false
		}
		return e, true
	}
	return 0, false
}

func (s *Store) modelFor(app string) core.AppModel {
	if s.opts.Lookup == nil {
		return core.AppModel{}
	}
	return s.opts.Lookup(app)
}

// componentRatios is one sample's observed/predicted ratio per model
// component — a measurement of s_d, s_n, s_c in the paper's Section 3.4
// sense, taken against the current base profile.
type componentRatios struct {
	disk, network, compute float64
}

// recalibrateLocked refits an app's calibrations from its pending
// samples, in three passes over the accumulated corpus:
//
//  1. Base-profile rebase: samples on the profile's own cluster yield
//     observed/predicted component ratios; the median ratio per
//     component (the paper's s_d/s_n/s_c machinery applied reflexively)
//     rescales the stale base profile's component times.
//  2. Cross-cluster scaling refit: samples on other clusters are
//     compared against the same configuration predicted on the base
//     cluster; the median component ratios become the cluster's
//     Scaling factors — exactly the paper's training-run refit.
//  3. Link refit: samples with serialized reduction-object traffic give
//     (mean message size, mean per-message time) points; a least-squares
//     line over them re-estimates the cluster's w and l.
//
// Each refit group needs MinSamples usable samples (the link fit needs
// two distinct message sizes). Pending samples are consumed — and the
// app and store versions advance — only when something changed.
func (s *Store) recalibrateLocked(app string) bool {
	st, ok := s.state[app]
	if !ok || len(st.pending) == 0 {
		return false
	}
	idx := -1
	for i := range s.doc.Profiles {
		if s.doc.Profiles[i].App == app {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	base := s.doc.Profiles[idx]
	model := s.modelFor(app)
	changed := false

	// Pass 1: rebase the profile from same-cluster samples.
	if rebased, ok := s.rebaseLocked(base, model, st.pending); ok {
		s.doc.Profiles[idx] = rebased
		base = rebased
		changed = true
	}

	// Pass 2: refit cross-cluster scaling factors.
	for cluster, sc := range s.refitScalings(base, model, st.pending) {
		if s.doc.Scalings == nil {
			s.doc.Scalings = make(map[string]core.Scaling)
		}
		s.doc.Scalings[cluster] = sc
		changed = true
	}

	// Pass 3: refit link calibrations from serialized RO traffic.
	for cluster, cal := range s.refitLinks(st.pending) {
		if s.doc.Links == nil {
			s.doc.Links = make(map[string]core.LinkCalibration)
		}
		s.doc.Links[cluster] = cal
		changed = true
	}

	if !changed {
		return false
	}
	st.pending = nil
	st.drift.reset()
	st.recals++
	driftGauge(app).Set(0)
	s.vers[app]++
	s.ver++
	recalTotal.Inc()
	return true
}

// sampleRatios predicts one sample's configuration mapped onto the base
// cluster and returns the observed/predicted component ratios. The
// richest evaluable variant is used, mirroring driftErrorLocked.
func (s *Store) sampleRatios(pred *core.Predictor, obs Observation) (componentRatios, bool) {
	cfg := obs.Config
	cfg.Cluster = pred.Profile.Config.Cluster
	for _, v := range []core.Variant{core.GlobalReduction, core.NoComm} {
		p, err := pred.Predict(cfg, v)
		if err != nil {
			continue
		}
		r := componentRatios{
			disk:    ratio(obs.Tdisk, p.Tdisk),
			network: ratio(obs.Tnetwork, p.Tnetwork),
			compute: ratio(obs.Tcompute, p.Tcompute),
		}
		if usable(r.disk) && usable(r.network) && usable(r.compute) {
			return r, true
		}
		return componentRatios{}, false
	}
	return componentRatios{}, false
}

func ratio(observed, predicted time.Duration) float64 {
	if predicted <= 0 {
		return math.NaN()
	}
	return observed.Seconds() / predicted.Seconds()
}

func usable(r float64) bool {
	return !math.IsNaN(r) && !math.IsInf(r, 0) && r > 0
}

// medianRatios folds per-sample component ratios into their medians.
// The median (not the mean) is what keeps one anomalous run — a
// congested transfer, a straggler pass — from dragging the whole
// recalibration.
func medianRatios(rs []componentRatios) (componentRatios, bool) {
	if len(rs) == 0 {
		return componentRatios{}, false
	}
	ds := make([]float64, len(rs))
	ns := make([]float64, len(rs))
	cs := make([]float64, len(rs))
	for i, r := range rs {
		ds[i], ns[i], cs[i] = r.disk, r.network, r.compute
	}
	d, err1 := stats.Quantile(ds, 0.5)
	n, err2 := stats.Quantile(ns, 0.5)
	c, err3 := stats.Quantile(cs, 0.5)
	if err1 != nil || err2 != nil || err3 != nil {
		return componentRatios{}, false
	}
	med := componentRatios{disk: d, network: n, compute: c}
	if !usable(med.disk) || !usable(med.network) || !usable(med.compute) {
		return componentRatios{}, false
	}
	return med, true
}

// rebaseLocked corrects the base profile's component times by the
// median observed/predicted ratio over same-cluster samples. Scaling
// Tro/Tglobal together with Tcompute and TdiskCached with Tdisk
// preserves the profile invariants (T_ro + T_g <= t_c, cached <= t_d).
func (s *Store) rebaseLocked(base core.Profile, model core.AppModel, samples []Observation) (core.Profile, bool) {
	pred, err := core.NewPredictor(base, model)
	if err != nil {
		return core.Profile{}, false
	}
	for k, v := range s.doc.Links {
		pred.Links[k] = v
	}
	var rs []componentRatios
	for _, obs := range samples {
		if obs.Config.Cluster != base.Config.Cluster {
			continue
		}
		if r, ok := s.sampleRatios(pred, obs); ok {
			rs = append(rs, r)
		}
	}
	if len(rs) < s.opts.MinSamples {
		return core.Profile{}, false
	}
	med, ok := medianRatios(rs)
	if !ok {
		return core.Profile{}, false
	}
	out := base
	out.Tdisk = scaleDur(base.Tdisk, med.disk)
	out.TdiskCached = scaleDur(base.TdiskCached, med.disk)
	out.Tnetwork = scaleDur(base.Tnetwork, med.network)
	out.Tcompute = scaleDur(base.Tcompute, med.compute)
	out.Tro = scaleDur(base.Tro, med.compute)
	out.Tglobal = scaleDur(base.Tglobal, med.compute)
	if err := out.Validate(); err != nil {
		return core.Profile{}, false
	}
	return out, true
}

// refitScalings computes fresh Scaling factors for every non-base
// cluster with enough usable samples.
func (s *Store) refitScalings(base core.Profile, model core.AppModel, samples []Observation) map[string]core.Scaling {
	pred, err := core.NewPredictor(base, model)
	if err != nil {
		return nil
	}
	for k, v := range s.doc.Links {
		pred.Links[k] = v
	}
	byCluster := make(map[string][]componentRatios)
	for _, obs := range samples {
		if obs.Config.Cluster == base.Config.Cluster {
			continue
		}
		if r, ok := s.sampleRatios(pred, obs); ok {
			byCluster[obs.Config.Cluster] = append(byCluster[obs.Config.Cluster], r)
		}
	}
	out := make(map[string]core.Scaling)
	for cluster, rs := range byCluster {
		if len(rs) < s.opts.MinSamples {
			continue
		}
		med, ok := medianRatios(rs)
		if !ok {
			continue
		}
		out[cluster] = core.Scaling{Disk: med.disk, Network: med.network, Compute: med.compute}
	}
	return out
}

// refitLinks re-estimates per-cluster interconnect parameters from
// observed serialized reduction-object traffic. Each multi-node sample
// contributes one (mean message size, mean per-message time) point:
// a pass gathers c−1 objects and re-broadcasts the result, so T_ro
// spreads over iterations × (c−1) × 2 messages. A least-squares line
// over the points recovers w (slope) and l (intercept), the same fit
// core.CalibrateLink performs with synthetic probes.
func (s *Store) refitLinks(samples []Observation) map[string]core.LinkCalibration {
	type point struct{ x, y float64 }
	byCluster := make(map[string][]point)
	for _, obs := range samples {
		c := obs.Config.ComputeNodes
		if c <= 1 || obs.Tro <= 0 || obs.Iterations < 1 {
			continue
		}
		msgs := float64(obs.Iterations) * float64(c-1) * 2
		x := float64(obs.ROBytesPerNode+obs.BroadcastBytes) / 2
		y := obs.Tro.Seconds() / msgs
		if x <= 0 || y <= 0 {
			continue
		}
		byCluster[obs.Config.Cluster] = append(byCluster[obs.Config.Cluster], point{x, y})
	}
	out := make(map[string]core.LinkCalibration)
	for cluster, pts := range byCluster {
		if len(pts) < s.opts.MinSamples {
			continue
		}
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.x, p.y
		}
		w, l, err := stats.LinFit(xs, ys)
		if err != nil || w < 0 {
			continue // identical message sizes or a nonsensical slope: keep the old calibration
		}
		if l < 0 {
			l = 0
		}
		out[cluster] = core.LinkCalibration{W: w, L: units.Seconds(l)}
	}
	return out
}

func scaleDur(d time.Duration, f float64) time.Duration {
	return units.Seconds(d.Seconds() * f)
}

// Source adapts one application of the store to the grid selector's
// predictor-source hook: every ranking round resolves the latest
// snapshot, so recalibrations land in selection decisions without
// rebuilding selectors. The built predictor is cached per app version.
type Source struct {
	store *Store
	app   string
	model core.AppModel

	mu      sync.Mutex
	version uint64
	pred    *core.Predictor
}

// NewSource returns a live predictor source for one app.
func (s *Store) NewSource(app string, m core.AppModel) *Source {
	return &Source{store: s, app: app, model: m}
}

// Predictor builds (or reuses) the predictor for the store's current
// version.
func (src *Source) Predictor() (*core.Predictor, error) {
	snap := src.store.Snapshot()
	_, ver, ok := snap.Find(src.app)
	if !ok {
		return nil, fmt.Errorf("profile: no profile for %q", src.app)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	if src.pred != nil && src.version == ver {
		return src.pred, nil
	}
	pred, err := snap.Predictor(src.app, src.model)
	if err != nil {
		return nil, err
	}
	src.pred, src.version = pred, ver
	return pred, nil
}
