// Package profile is the live profile subsystem: it owns the profiles,
// link calibrations, and cross-cluster scaling factors the prediction
// framework runs on, and keeps them honest over the lifetime of a
// long-running service.
//
// The paper's framework is profile-based — predictions are only as good
// as the calibrations behind them — and its authors refit scaling
// factors and link parameters from training runs. A static profile
// document read once at startup drifts exactly the way Vazhkudai &
// Schopf warn static transfer models do. This package closes the
// run → observe → recalibrate → predict loop:
//
//   - Store is a concurrency-safe, versioned holder of the profile
//     document: every content change (adoption of a new app profile,
//     recalibration, reload) produces a fresh copy-on-write Snapshot and
//     advances a monotonic version, per app and store-wide. Stores are
//     in-memory or file-backed (atomic write-temp-rename persistence,
//     reload).
//   - Observations — middleware run results, bench sweep cells, or
//     POST /runs bodies — are ingested as calibration samples.
//   - Recalibration refits the base profile's component times, the
//     cross-cluster Scaling factors, and the interconnect
//     LinkCalibration from accumulated samples with the stats package's
//     least-squares and quantile machinery, gated by a minimum-sample
//     threshold.
//   - Drift detection keeps a sliding window of predicted-vs-observed
//     relative error per app and flags when recalibration is warranted;
//     the window mean is exported through internal/metrics.
package profile

import (
	"errors"
	"fmt"
	"time"

	"freerideg/internal/core"
	"freerideg/internal/metrics"
	"freerideg/internal/units"
)

// Subsystem metrics. The per-app drift gauge is registered lazily, one
// instrument per application, when the first drift sample lands.
var (
	ingestedTotal = metrics.GetCounter("fg_profile_observations_total",
		"Observed runs ingested as calibration samples.")
	adoptedTotal = metrics.GetCounter("fg_profile_adoptions_total",
		"Applications adopted into a profile store from their first observed run.")
	recalTotal = metrics.GetCounter("fg_profile_recalibrations_total",
		"Recalibrations that changed profile store content.")
	storeVersion = metrics.GetGauge("fg_profile_store_version",
		"Monotonic content version of the process's most recently mutated profile store.")
)

func driftGauge(app string) *metrics.Gauge {
	return metrics.GetGauge("fg_profile_drift_relerr",
		"Mean predicted-vs-observed relative error over the app's sliding drift window.",
		metrics.Label{Key: "app", Value: app})
}

// Defaults for Options fields left zero.
const (
	DefaultMinSamples     = 5
	DefaultDriftWindow    = 16
	DefaultDriftThreshold = 0.15
)

// Options tune a Store's recalibration and drift behavior. The zero
// value selects the defaults noted on each field.
type Options struct {
	// MinSamples is the minimum number of pending calibration samples an
	// application (and each per-cluster refit group) needs before a
	// recalibration runs. Default DefaultMinSamples.
	MinSamples int
	// DriftWindow is how many recent predicted-vs-observed relative
	// errors the sliding drift window keeps per app. Default
	// DefaultDriftWindow.
	DriftWindow int
	// DriftThreshold is the window mean relative error above which an
	// app is flagged as drifting (and, with enough pending samples,
	// recalibrated). Default DefaultDriftThreshold.
	DriftThreshold float64
	// Lookup resolves an application's scaling-class model, used when
	// building predictors for drift checks and recalibration ratio
	// fits. Nil uses the zero AppModel (constant RO, linear-constant
	// global) — adequate for drift signals, exact for most apps.
	Lookup func(app string) core.AppModel
	// DisableAutoRecalibrate stops Ingest from recalibrating on its own;
	// callers then trigger Recalibrate explicitly.
	DisableAutoRecalibrate bool
	// AutoPersist writes the store back to its file after every content
	// change. Ignored by in-memory stores.
	AutoPersist bool
}

func (o Options) withDefaults() Options {
	if o.MinSamples < 1 {
		o.MinSamples = DefaultMinSamples
	}
	if o.DriftWindow < 1 {
		o.DriftWindow = DefaultDriftWindow
	}
	if o.DriftThreshold <= 0 {
		o.DriftThreshold = DefaultDriftThreshold
	}
	return o
}

// Observation is one observed execution offered to a store as a
// calibration sample: the configuration it ran on and the measured
// component breakdown, in the shape the middleware's PhaseBreakdown
// accounting produces.
type Observation struct {
	// App names the application the run executed.
	App string
	// Config is the configuration the run used.
	Config core.Config
	// Breakdown is the measured t_d / t_n / t_c split.
	core.Breakdown
	// TdiskCached is the cached-pass re-read part of Tdisk (see
	// core.Profile).
	TdiskCached time.Duration
	// Tro and Tglobal are the serialized parts of Tcompute.
	Tro     time.Duration
	Tglobal time.Duration
	// ROBytesPerNode and BroadcastBytes describe the reduction-object
	// traffic; zero values are filled from the app's current base
	// profile at ingestion.
	ROBytesPerNode units.Bytes
	BroadcastBytes units.Bytes
	// Iterations is the number of passes; zero is filled from the app's
	// current base profile at ingestion (1 for unknown apps).
	Iterations int
}

// FromProfile wraps a measured run profile as an observation.
func FromProfile(p core.Profile) Observation {
	return Observation{
		App:            p.App,
		Config:         p.Config,
		Breakdown:      p.Breakdown,
		TdiskCached:    p.TdiskCached,
		Tro:            p.Tro,
		Tglobal:        p.Tglobal,
		ROBytesPerNode: p.ROBytesPerNode,
		BroadcastBytes: p.BroadcastBytes,
		Iterations:     p.Iterations,
	}
}

// Profile converts the observation into a core.Profile (not yet
// validated).
func (o Observation) Profile() core.Profile {
	return core.Profile{
		App:            o.App,
		Config:         o.Config,
		Breakdown:      o.Breakdown,
		TdiskCached:    o.TdiskCached,
		Tro:            o.Tro,
		Tglobal:        o.Tglobal,
		ROBytesPerNode: o.ROBytesPerNode,
		BroadcastBytes: o.BroadcastBytes,
		Iterations:     o.Iterations,
	}
}

// IngestResult reports what one observation did to the store.
type IngestResult struct {
	App string `json:"app"`
	// Adopted is true when the app was unknown and the observation
	// became its base profile.
	Adopted bool `json:"adopted,omitempty"`
	// Samples is the app's total accepted observation count; Pending is
	// how many await the next recalibration.
	Samples int `json:"samples"`
	Pending int `json:"pending"`
	// Drift is the mean predicted-vs-observed relative error over the
	// app's sliding window (0 until DriftSamples > 0).
	Drift        float64 `json:"drift"`
	DriftSamples int     `json:"driftSamples"`
	Drifting     bool    `json:"drifting"`
	// Recalibrated is true when this ingestion triggered a
	// recalibration that changed store content.
	Recalibrated bool `json:"recalibrated"`
	// AppVersion and StoreVersion are the monotonic content versions
	// after the ingestion.
	AppVersion   uint64 `json:"appVersion"`
	StoreVersion uint64 `json:"storeVersion"`
}

// AppStatus is one application's live calibration state as seen in a
// Snapshot.
type AppStatus struct {
	App            string  `json:"app"`
	Version        uint64  `json:"version"`
	Samples        int     `json:"samples"`
	Pending        int     `json:"pending"`
	Recalibrations int     `json:"recalibrations"`
	Drift          float64 `json:"drift"`
	DriftSamples   int     `json:"driftSamples"`
	Drifting       bool    `json:"drifting"`
}

// ErrNotFileBacked is returned by Persist and Reload on in-memory
// stores.
var ErrNotFileBacked = errors.New("profile: store is not file-backed")

// driftRing is a fixed-size sliding window of relative errors.
type driftRing struct {
	errs []float64
	next int
	n    int
}

func newDriftRing(size int) *driftRing { return &driftRing{errs: make([]float64, size)} }

func (r *driftRing) push(e float64) {
	r.errs[r.next] = e
	r.next = (r.next + 1) % len(r.errs)
	if r.n < len(r.errs) {
		r.n++
	}
}

// mean reports the window mean and the number of samples behind it.
func (r *driftRing) mean() (float64, int) {
	if r.n == 0 {
		return 0, 0
	}
	sum := 0.0
	for i := 0; i < r.n; i++ {
		sum += r.errs[i]
	}
	return sum / float64(r.n), r.n
}

func (r *driftRing) reset() { r.next, r.n = 0, 0 }

// validateDoc checks a store document: every profile valid, no duplicate
// apps. Unlike core.ProfileStore.Validate it allows an empty profile
// list — a live store legitimately starts cold and grows by adoption.
func validateDoc(doc core.ProfileStore) error {
	seen := make(map[string]bool, len(doc.Profiles))
	for i, p := range doc.Profiles {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("profile: document profile %d: %w", i, err)
		}
		if seen[p.App] {
			return fmt.Errorf("profile: document has duplicate profiles for app %q", p.App)
		}
		seen[p.App] = true
	}
	return nil
}

// copyDoc deep-copies a store document so snapshots never alias the
// store's mutable master copy.
func copyDoc(doc core.ProfileStore) core.ProfileStore {
	out := core.ProfileStore{
		Profiles: append([]core.Profile(nil), doc.Profiles...),
	}
	if doc.Links != nil {
		out.Links = make(map[string]core.LinkCalibration, len(doc.Links))
		for k, v := range doc.Links {
			out.Links[k] = v
		}
	}
	if doc.Scalings != nil {
		out.Scalings = make(map[string]core.Scaling, len(doc.Scalings))
		for k, v := range doc.Scalings {
			out.Scalings[k] = v
		}
	}
	return out
}
