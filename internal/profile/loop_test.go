package profile

import (
	"fmt"
	"sync"
	"testing"

	"freerideg/internal/core"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

// heldOut is a configuration none of the calibration samples use.
func heldOut() core.Config {
	cfg := truthProfile().Config
	cfg.DatasetBytes = 400 * units.MB
	cfg.ComputeNodes = 4
	return cfg
}

// predictionError predicts the held-out configuration from the store's
// current snapshot and reports the relative error against the truth.
func predictionError(t *testing.T, snap *Snapshot) float64 {
	t.Helper()
	exact, err := truthPredictor(t).Predict(heldOut(), core.GlobalReduction)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := snap.Predictor("kmeans", core.AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pred.Predict(heldOut(), core.GlobalReduction)
	if err != nil {
		t.Fatal(err)
	}
	return stats.RelError(exact.Texec().Seconds(), got.Texec().Seconds())
}

// TestClosedLoopRecalibrationImprovesPrediction is the end-to-end loop:
// a store seeded with a 3×-mis-scaled profile ingests observed runs,
// the drift window flags the model, auto-recalibration refits it, and
// the held-out prediction error collapses.
func TestClosedLoopRecalibrationImprovesPrediction(t *testing.T) {
	s, err := NewStore(staleDoc(), Options{MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	stale := s.Snapshot()
	staleErr := predictionError(t, stale)
	if staleErr < 0.5 {
		t.Fatalf("precondition: stale profile error %.3f is not badly mis-scaled", staleErr)
	}

	var recalibrated bool
	for _, cfg := range sampleConfigs() {
		res, err := s.Ingest(observeTruth(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		if res.Drifting && res.DriftSamples >= 4 && !res.Recalibrated && !recalibrated {
			t.Errorf("drifting with %d pending samples but no recalibration: %+v", res.Pending, res)
		}
		recalibrated = recalibrated || res.Recalibrated
	}
	if !recalibrated {
		t.Fatal("ingesting mis-predicted runs never triggered a recalibration")
	}

	fresh := s.Snapshot()
	if fresh.Version() <= stale.Version() {
		t.Fatalf("store version did not advance: %d -> %d", stale.Version(), fresh.Version())
	}
	if _, v, _ := fresh.Find("kmeans"); v < 2 {
		t.Fatalf("app version did not advance: %d", v)
	}
	freshErr := predictionError(t, fresh)
	if freshErr >= staleErr {
		t.Fatalf("recalibration did not improve held-out error: %.3f -> %.3f", staleErr, freshErr)
	}
	if freshErr > 0.05 {
		t.Fatalf("post-recalibration held-out error %.3f, want < 0.05 (stale was %.3f)", freshErr, staleErr)
	}

	st, ok := fresh.Status("kmeans")
	if !ok || st.Recalibrations < 1 {
		t.Fatalf("status after the loop: %+v ok=%v", st, ok)
	}
	if st.Drifting {
		t.Fatalf("drift flag not cleared by recalibration: %+v", st)
	}
}

// TestConcurrentIngestAndPredict hammers one store with concurrent
// ingestion, snapshot prediction, status reads, and explicit
// recalibrations. It exists to fail under -race.
func TestConcurrentIngestAndPredict(t *testing.T) {
	s, err := NewStore(staleDoc(), Options{MinSamples: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := sampleConfigs()
	obs := make([]Observation, len(cfgs))
	for i, cfg := range cfgs {
		obs[i] = observeTruth(t, cfg)
	}

	const writers, readers, rounds = 4, 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				o := obs[(w+i)%len(obs)]
				if w%2 == 1 {
					// Half the writers also adopt fresh apps.
					o.App = fmt.Sprintf("adopted-%d", w)
				}
				if _, err := s.Ingest(o); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
				if i%10 == 9 {
					if _, err := s.Recalibrate("kmeans"); err != nil {
						t.Errorf("recalibrate: %v", err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				snap := s.Snapshot()
				pred, err := snap.Predictor("kmeans", core.AppModel{})
				if err != nil {
					t.Errorf("predictor: %v", err)
					return
				}
				if _, err := pred.Predict(heldOut(), core.GlobalReduction); err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				snap.Status("kmeans")
				snap.Apps()
			}
		}()
	}
	wg.Wait()

	snap := s.Snapshot()
	st, ok := snap.Status("kmeans")
	if !ok {
		t.Fatal("kmeans status missing after concurrent load")
	}
	if want := writers / 2 * rounds; st.Samples != want {
		t.Fatalf("kmeans samples = %d, want %d", st.Samples, want)
	}
	for w := 1; w < writers; w += 2 {
		if _, _, ok := snap.Find(fmt.Sprintf("adopted-%d", w)); !ok {
			t.Fatalf("adopted-%d missing after concurrent load", w)
		}
	}
}

// TestSourceTracksStoreVersion checks the selector-facing predictor
// source rebuilds only when the app's profile version moves.
func TestSourceTracksStoreVersion(t *testing.T) {
	s, err := NewStore(staleDoc(), Options{MinSamples: 3, DisableAutoRecalibrate: true})
	if err != nil {
		t.Fatal(err)
	}
	src := s.NewSource("kmeans", core.AppModel{})
	p1, err := src.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := src.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("source rebuilt the predictor without a version change")
	}
	for _, cfg := range sampleConfigs()[:3] {
		if _, err := s.Ingest(observeTruth(t, cfg)); err != nil {
			t.Fatal(err)
		}
	}
	if changed, err := s.Recalibrate("kmeans"); err != nil || !changed {
		t.Fatalf("recalibration changed=%v err=%v", changed, err)
	}
	p3, err := src.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("source kept serving the stale predictor after recalibration")
	}
	if p3.Profile.Tdisk == p1.Profile.Tdisk {
		t.Fatal("rebuilt predictor still carries the stale profile")
	}

	if _, err := s.NewSource("nope", core.AppModel{}).Predictor(); err == nil {
		t.Fatal("source resolved a predictor for an unknown app")
	}
}
