package profile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"freerideg/internal/core"
)

// Document is the persisted form of a store: the plain core profile
// document plus the subsystem's versioning state. Because the extra
// fields are additive, a Document file is still readable by
// core.ReadStore (which ignores unknown keys), and a plain
// core.ProfileStore file loads as a Document at version 1.
type Document struct {
	core.ProfileStore
	// Version is the store-wide monotonic content version.
	Version uint64 `json:"version,omitempty"`
	// AppVersions maps each app to its monotonic profile version.
	AppVersions map[string]uint64 `json:"appVersions,omitempty"`
}

// Snapshot is one immutable, consistent view of a store: the document
// plus per-app versions and live calibration status. Snapshots are
// copy-on-write — a snapshot taken before a recalibration keeps serving
// the old profiles while new requests see the new ones.
type Snapshot struct {
	version     uint64
	doc         core.ProfileStore
	appVersions map[string]uint64
	status      map[string]AppStatus
	lookup      func(string) core.AppModel
}

// Version is the store-wide monotonic content version the snapshot
// captured.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Find returns the app's profile and profile version.
func (sn *Snapshot) Find(app string) (core.Profile, uint64, bool) {
	p, ok := sn.doc.Find(app)
	if !ok {
		return core.Profile{}, 0, false
	}
	return p, sn.appVersions[app], true
}

// Apps lists the snapshot's applications in document order.
func (sn *Snapshot) Apps() []string {
	out := make([]string, len(sn.doc.Profiles))
	for i, p := range sn.doc.Profiles {
		out[i] = p.App
	}
	return out
}

// Status reports an app's live calibration state.
func (sn *Snapshot) Status(app string) (AppStatus, bool) {
	st, ok := sn.status[app]
	return st, ok
}

// Doc returns the snapshot's profile document. The snapshot owns it;
// callers must treat it as read-only.
func (sn *Snapshot) Doc() core.ProfileStore { return sn.doc }

// Predictor builds a predictor for one application from the snapshot,
// wiring in its link calibrations and scaling factors.
func (sn *Snapshot) Predictor(app string, m core.AppModel) (*core.Predictor, error) {
	return core.NewPredictorFromStore(sn.doc, app, m)
}

// model resolves the app's scaling-class model through the store's
// lookup hook.
func (sn *Snapshot) model(app string) core.AppModel {
	if sn.lookup == nil {
		return core.AppModel{}
	}
	return sn.lookup(app)
}

// appState is one application's accumulated runtime calibration state.
type appState struct {
	pending []Observation // samples since the last recalibration
	total   int
	recals  int
	drift   *driftRing
}

// Store is the live, versioned profile holder. All mutation happens
// under one mutex; readers take lock-free copy-on-write snapshots.
type Store struct {
	opts Options
	path string // "" for in-memory stores

	mu    sync.Mutex
	doc   core.ProfileStore // master copy, only touched under mu
	vers  map[string]uint64
	ver   uint64
	state map[string]*appState

	snap atomic.Pointer[Snapshot]
}

// NewStore builds an in-memory store over a document (which may be
// empty — a cold store grows by adoption).
func NewStore(doc core.ProfileStore, opts Options) (*Store, error) {
	return newStore(doc, nil, 0, "", opts)
}

// Open loads a file-backed store. The file holds either a Document
// (versions intact across restarts) or a plain core.ProfileStore
// (adopted at version 1).
func Open(path string, opts Options) (*Store, error) {
	doc, err := loadDocument(path)
	if err != nil {
		return nil, err
	}
	return newStore(doc.ProfileStore, doc.AppVersions, doc.Version, path, opts)
}

// Create builds a file-backed store over a starting document and
// immediately persists it.
func Create(path string, doc core.ProfileStore, opts Options) (*Store, error) {
	s, err := newStore(doc, nil, 0, path, opts)
	if err != nil {
		return nil, err
	}
	if err := s.Persist(); err != nil {
		return nil, err
	}
	return s, nil
}

func newStore(doc core.ProfileStore, vers map[string]uint64, ver uint64, path string, opts Options) (*Store, error) {
	if err := validateDoc(doc); err != nil {
		return nil, err
	}
	s := &Store{
		opts:  opts.withDefaults(),
		path:  path,
		doc:   copyDoc(doc),
		vers:  make(map[string]uint64, len(doc.Profiles)),
		ver:   ver,
		state: make(map[string]*appState),
	}
	for _, p := range doc.Profiles {
		v := vers[p.App]
		if v == 0 {
			v = 1
		}
		s.vers[p.App] = v
	}
	if s.ver == 0 && len(doc.Profiles) > 0 {
		s.ver = 1
	}
	s.publishLocked(true)
	return s, nil
}

// Snapshot returns the current copy-on-write view. It never blocks on
// ingestion or recalibration.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Path reports the backing file ("" for in-memory stores).
func (s *Store) Path() string { return s.path }

// stateFor returns (creating if needed) an app's runtime state.
func (s *Store) stateFor(app string) *appState {
	st, ok := s.state[app]
	if !ok {
		st = &appState{drift: newDriftRing(s.opts.DriftWindow)}
		s.state[app] = st
	}
	return st
}

// publishLocked rebuilds the lock-free snapshot. When the document
// content did not change, the previous snapshot's document copy is
// reused; only the status view is rebuilt.
func (s *Store) publishLocked(contentChanged bool) {
	prev := s.snap.Load()
	var doc core.ProfileStore
	if contentChanged || prev == nil {
		doc = copyDoc(s.doc)
	} else {
		doc = prev.doc
	}
	vers := make(map[string]uint64, len(s.vers))
	for k, v := range s.vers {
		vers[k] = v
	}
	status := make(map[string]AppStatus, len(s.state))
	for app, st := range s.state {
		mean, n := st.drift.mean()
		status[app] = AppStatus{
			App:            app,
			Version:        s.vers[app],
			Samples:        st.total,
			Pending:        len(st.pending),
			Recalibrations: st.recals,
			Drift:          mean,
			DriftSamples:   n,
			Drifting:       s.driftingLocked(st),
		}
	}
	s.snap.Store(&Snapshot{
		version:     s.ver,
		doc:         doc,
		appVersions: vers,
		status:      status,
		lookup:      s.opts.Lookup,
	})
	storeVersion.Set(float64(s.ver))
}

// driftingLocked reports whether an app's drift window warrants a
// recalibration: a full-enough window whose mean error exceeds the
// threshold.
func (s *Store) driftingLocked(st *appState) bool {
	mean, n := st.drift.mean()
	return n >= s.opts.MinSamples && mean > s.opts.DriftThreshold
}

// SeedLinks installs link calibrations for clusters the document does
// not cover yet (measured calibrations win over seeds). Seeding is a
// content change and advances the store version when anything lands.
func (s *Store) SeedLinks(links map[string]core.LinkCalibration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for cl, cal := range links {
		if _, ok := s.doc.Links[cl]; ok {
			continue
		}
		if s.doc.Links == nil {
			s.doc.Links = make(map[string]core.LinkCalibration)
		}
		s.doc.Links[cl] = cal
		changed = true
	}
	if changed {
		s.ver++
		s.publishLocked(true)
	}
}

// Ingest accepts one observed run as a calibration sample. Unknown apps
// are adopted: the observation becomes their base profile. Known apps
// get a drift check against the current prediction, and — unless auto
// recalibration is disabled — a recalibration once enough samples are
// pending and the drift window flags the model.
func (s *Store) Ingest(obs Observation) (IngestResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	base, known := s.doc.Find(obs.App)
	// Fill optional fields from the current base profile so wire-level
	// callers can post bare breakdowns.
	if obs.Iterations == 0 {
		if known {
			obs.Iterations = base.Iterations
		} else {
			obs.Iterations = 1
		}
	}
	if known {
		if obs.ROBytesPerNode == 0 {
			obs.ROBytesPerNode = base.ROBytesPerNode
		}
		if obs.BroadcastBytes == 0 {
			obs.BroadcastBytes = base.BroadcastBytes
		}
	}
	p := obs.Profile()
	if err := p.Validate(); err != nil {
		return IngestResult{}, fmt.Errorf("profile: rejecting observation: %w", err)
	}

	st := s.stateFor(obs.App)
	res := IngestResult{App: obs.App}

	if !known {
		s.doc.Profiles = append(s.doc.Profiles, p)
		s.vers[obs.App] = 1
		s.ver++
		st.total++
		adoptedTotal.Inc()
		ingestedTotal.Inc()
		res.Adopted = true
		res.Samples = st.total
		s.finishMutationLocked(&res, obs.App, true)
		return res, nil
	}

	// Drift: how wrong is the current model about this run?
	if e, ok := s.driftErrorLocked(obs); ok {
		st.drift.push(e)
		mean, _ := st.drift.mean()
		driftGauge(obs.App).Set(mean)
	}
	st.pending = append(st.pending, obs)
	st.total++
	ingestedTotal.Inc()

	changed := false
	if !s.opts.DisableAutoRecalibrate &&
		len(st.pending) >= s.opts.MinSamples && s.driftingLocked(st) {
		changed = s.recalibrateLocked(obs.App)
		res.Recalibrated = changed
	}
	res.Samples = st.total
	s.finishMutationLocked(&res, obs.App, changed)
	return res, nil
}

// finishMutationLocked fills the result's version/drift fields,
// publishes a fresh snapshot, and auto-persists content changes.
func (s *Store) finishMutationLocked(res *IngestResult, app string, contentChanged bool) {
	st := s.stateFor(app)
	res.Pending = len(st.pending)
	res.Drift, res.DriftSamples = st.drift.mean()
	res.Drifting = s.driftingLocked(st)
	res.AppVersion = s.vers[app]
	res.StoreVersion = s.ver
	s.publishLocked(contentChanged)
	if contentChanged && s.opts.AutoPersist && s.path != "" {
		// Persistence failure must not lose the in-memory update; the
		// next successful persist writes the same state.
		_ = s.persistLocked()
	}
}

// Recalibrate refits an app's calibrations from its pending samples
// regardless of the drift gate (the minimum-sample thresholds per refit
// group still apply). It reports whether store content changed.
func (s *Store) Recalibrate(app string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.doc.Find(app); !ok {
		return false, fmt.Errorf("profile: no profile for %q", app)
	}
	changed := s.recalibrateLocked(app)
	var res IngestResult
	s.finishMutationLocked(&res, app, changed)
	return changed, nil
}

// Observer returns a callback that ingests every observed profile into
// the store — the plug for bench.Harness.SetObserver, so a figure sweep
// doubles as a calibration corpus. Observations the store rejects
// (invalid profiles) are dropped; Ingest is concurrency-safe, so the
// callback may be invoked from a worker pool.
func (s *Store) Observer() func(core.Profile) {
	return func(p core.Profile) {
		_, _ = s.Ingest(FromProfile(p))
	}
}

// Persist writes the store to its backing file atomically
// (write-temp-rename in the target directory).
func (s *Store) Persist() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistLocked()
}

func (s *Store) persistLocked() error {
	if s.path == "" {
		return ErrNotFileBacked
	}
	return writeDocument(s.path, s.documentLocked())
}

// SaveAs writes the store's current content to an arbitrary path
// atomically, without rebinding the store.
func (s *Store) SaveAs(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeDocument(path, s.documentLocked())
}

func (s *Store) documentLocked() Document {
	vers := make(map[string]uint64, len(s.vers))
	for k, v := range s.vers {
		vers[k] = v
	}
	return Document{
		ProfileStore: copyDoc(s.doc),
		Version:      s.ver,
		AppVersions:  vers,
	}
}

// Reload re-reads the backing file and replaces the store's content.
// Versions never move backward: the in-memory version wins wherever it
// is ahead of the file (so watchers polling versions keep a monotonic
// view even across an external file edit). Runtime calibration state
// (pending samples, drift windows) is reset.
func (s *Store) Reload() error {
	if s.path == "" {
		return ErrNotFileBacked
	}
	doc, err := loadDocument(s.path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doc = copyDoc(doc.ProfileStore)
	vers := make(map[string]uint64, len(doc.ProfileStore.Profiles))
	for _, p := range doc.ProfileStore.Profiles {
		v := doc.AppVersions[p.App]
		if v == 0 {
			v = 1
		}
		if cur := s.vers[p.App]; cur > v {
			v = cur
		}
		vers[p.App] = v
	}
	s.vers = vers
	if doc.Version > s.ver {
		s.ver = doc.Version
	} else {
		s.ver++ // a reload that kept or lowered the file version is still a content change
	}
	s.state = make(map[string]*appState)
	s.publishLocked(true)
	return nil
}

// loadDocument reads and validates a Document (or plain
// core.ProfileStore) file.
func loadDocument(path string) (Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return Document{}, fmt.Errorf("profile: decoding %s: %w", path, err)
	}
	if err := validateDoc(doc.ProfileStore); err != nil {
		return Document{}, fmt.Errorf("profile: %s: %w", path, err)
	}
	return doc, nil
}

// writeDocument writes a document atomically: marshal, write to a temp
// file in the destination directory, rename over the target. Readers
// never observe a partially written store.
func writeDocument(path string, doc Document) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("profile: encoding store: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".profiles-*.json")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
