// Package stats provides the small numerical helpers used by the
// prediction framework and the experiment harness: summary statistics,
// least-squares fits, and relative prediction error.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// ErrNonFinite is returned by reductions and fits whose input contains
// NaN or ±Inf: order statistics and least squares are meaningless on
// such samples, and silently propagating them poisons every downstream
// error table.
var ErrNonFinite = errors.New("stats: non-finite sample")

// checkFinite reports ErrNonFinite if xs contains NaN or ±Inf.
func checkFinite(xs []float64) error {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return ErrNonFinite
		}
	}
	return nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. Samples containing NaN or ±Inf
// are rejected with ErrNonFinite: sort.Float64s places NaNs arbitrarily,
// so order statistics over them are garbage.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	if err := checkFinite(xs); err != nil {
		return 0, err
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// RelError returns |exact-predicted| / |exact|, the error measure used
// throughout the paper's evaluation (E = |T_exact − T_predicted| / T_exact).
// A zero exact value with a nonzero prediction reports +Inf. A non-finite
// input (NaN or ±Inf on either side) reports NaN explicitly, so callers
// building error tables can filter undefined comparisons with one
// math.IsNaN check instead of inheriting whatever the subtraction
// happened to produce.
func RelError(exact, predicted float64) float64 {
	if math.IsNaN(exact) || math.IsInf(exact, 0) ||
		math.IsNaN(predicted) || math.IsInf(predicted, 0) {
		return math.NaN()
	}
	if exact == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(exact-predicted) / math.Abs(exact)
}

// LinFit fits y = slope*x + intercept by least squares.
// It needs at least two distinct x values, all finite (a single NaN or
// ±Inf sample is rejected with ErrNonFinite rather than silently turning
// both coefficients into NaN).
func LinFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return 0, 0, errors.New("stats: need at least two points for a fit")
	}
	if err := checkFinite(xs); err != nil {
		return 0, 0, err
	}
	if err := checkFinite(ys); err != nil {
		return 0, 0, err
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: degenerate fit (all x equal)")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	return slope, intercept, nil
}

// PearsonR returns the Pearson correlation coefficient of the paired
// samples, or 0 when either sample is constant.
func PearsonR(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
