package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if m, err := Min(xs); err != nil || m != -1 {
		t.Fatalf("Min = %v, %v", m, err)
	}
	if m, err := Max(xs); err != nil || m != 7 {
		t.Fatalf("Max = %v, %v", m, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil || !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, %v; want %v", c.q, got, err, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(nil) did not error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(q>1) did not error")
	}
	if got, _ := Quantile([]float64{42}, 0.7); got != 42 {
		t.Errorf("Quantile singleton = %v, want 42", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestRelError(t *testing.T) {
	cases := []struct{ exact, pred, want float64 }{
		{100, 95, 0.05},
		{100, 105, 0.05},
		{100, 100, 0},
		{0, 0, 0},
		{-100, -90, 0.1},
	}
	for _, c := range cases {
		if got := RelError(c.exact, c.pred); !almost(got, c.want) {
			t.Errorf("RelError(%v,%v) = %v, want %v", c.exact, c.pred, got, c.want)
		}
	}
	if got := RelError(0, 1); !math.IsInf(got, 1) {
		t.Errorf("RelError(0,1) = %v, want +Inf", got)
	}
}

func TestRelErrorSymmetryInSign(t *testing.T) {
	f := func(e, p float64) bool {
		e = math.Mod(math.Abs(e), 1e6) + 1 // nonzero, bounded
		p = math.Mod(math.Abs(p), 1e6)
		return almost(RelError(e, p), RelError(e, p)) && RelError(e, p) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinFitRecoversLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	slope, intercept, err := LinFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(slope, 3) || !almost(intercept, 7) {
		t.Fatalf("fit = %v, %v; want 3, 7", slope, intercept)
	}
}

func TestLinFitErrors(t *testing.T) {
	if _, _, err := LinFit([]float64{1}, []float64{2}); err == nil {
		t.Error("single-point fit did not error")
	}
	if _, _, err := LinFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths did not error")
	}
	if _, _, err := LinFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate (vertical) fit did not error")
	}
}

func TestLinFitPropertyExactOnLines(t *testing.T) {
	f := func(a, b int8) bool {
		slope := float64(a)
		intercept := float64(b)
		xs := []float64{0, 1, 2, 5, 9}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + intercept
		}
		s, ic, err := LinFit(xs, ys)
		return err == nil && math.Abs(s-slope) < 1e-6 && math.Abs(ic-intercept) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonR(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	up := []float64{2, 4, 6, 8}
	down := []float64{8, 6, 4, 2}
	if got := PearsonR(xs, up); !almost(got, 1) {
		t.Errorf("PearsonR increasing = %v, want 1", got)
	}
	if got := PearsonR(xs, down); !almost(got, -1) {
		t.Errorf("PearsonR decreasing = %v, want -1", got)
	}
	if got := PearsonR(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("PearsonR constant = %v, want 0", got)
	}
	if got := PearsonR(xs, xs[:2]); got != 0 {
		t.Errorf("PearsonR mismatched = %v, want 0", got)
	}
}

func TestQuantileRejectsNonFinite(t *testing.T) {
	for _, xs := range [][]float64{
		{1, math.NaN(), 3},
		{math.Inf(1), 2},
		{1, 2, math.Inf(-1)},
	} {
		if v, err := Quantile(xs, 0.5); err != ErrNonFinite {
			t.Errorf("Quantile(%v) = %v, %v; want ErrNonFinite", xs, v, err)
		}
	}
	if _, err := Quantile([]float64{1, 2}, math.NaN()); err == nil {
		t.Error("Quantile with NaN q accepted")
	}
	if v, err := Quantile([]float64{1, 2, 3}, 0.5); err != nil || v != 2 {
		t.Errorf("finite Quantile = %v, %v", v, err)
	}
}

func TestLinFitRejectsNonFinite(t *testing.T) {
	cases := []struct{ xs, ys []float64 }{
		{[]float64{1, math.NaN()}, []float64{1, 2}},
		{[]float64{1, 2}, []float64{math.Inf(1), 2}},
		{[]float64{math.Inf(-1), 2}, []float64{1, 2}},
	}
	for _, c := range cases {
		if _, _, err := LinFit(c.xs, c.ys); err != ErrNonFinite {
			t.Errorf("LinFit(%v, %v) err = %v, want ErrNonFinite", c.xs, c.ys, err)
		}
	}
	slope, intercept, err := LinFit([]float64{1, 2, 3}, []float64{3, 5, 7})
	if err != nil || !almost(slope, 2) || !almost(intercept, 1) {
		t.Errorf("finite LinFit = %v, %v, %v", slope, intercept, err)
	}
}

func TestRelErrorNonFiniteInputsReportNaN(t *testing.T) {
	cases := [][2]float64{
		{math.NaN(), 1},
		{1, math.NaN()},
		{math.Inf(1), 1},
		{1, math.Inf(-1)},
		{math.Inf(1), math.Inf(1)},
	}
	for _, c := range cases {
		if got := RelError(c[0], c[1]); !math.IsNaN(got) {
			t.Errorf("RelError(%v, %v) = %v, want NaN", c[0], c[1], got)
		}
	}
	// The documented finite semantics are unchanged.
	if got := RelError(0, 0); got != 0 {
		t.Errorf("RelError(0,0) = %v, want 0", got)
	}
	if got := RelError(0, 1); !math.IsInf(got, 1) {
		t.Errorf("RelError(0,1) = %v, want +Inf", got)
	}
	if got := RelError(10, 8); !almost(got, 0.2) {
		t.Errorf("RelError(10,8) = %v, want 0.2", got)
	}
}
