package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"freerideg/internal/core"
	"freerideg/internal/middleware"
	"freerideg/internal/units"
)

// TestParallelRunAllMatchesSerial is the determinism gate for the sweep
// engine: a parallel RunAll must be byte-identical to a serial one —
// figures, cells, notes, and rendering — regardless of scheduling.
func TestParallelRunAllMatchesSerial(t *testing.T) {
	render := func(par int) ([]byte, []byte) {
		h, err := NewHarness()
		if err != nil {
			t.Fatal(err)
		}
		h.SetParallelism(par)
		figs, err := h.RunAll()
		if err != nil {
			t.Fatalf("RunAll with parallelism %d: %v", par, err)
		}
		var buf bytes.Buffer
		if err := RenderAll(&buf, figs); err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(figs)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), js
	}
	serialTxt, serialJSON := render(1)
	parallelTxt, parallelJSON := render(8)
	if !bytes.Equal(serialTxt, parallelTxt) {
		t.Error("parallel RunAll rendered output differs from serial")
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Error("parallel RunAll JSON differs from serial")
	}
}

// TestSetParallelism checks the pool-bound accessors and the GOMAXPROCS
// default for non-positive values.
func TestSetParallelism(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	h.SetParallelism(3)
	if h.Parallelism() != 3 {
		t.Errorf("Parallelism() = %d, want 3", h.Parallelism())
	}
	h.SetParallelism(0)
	if h.Parallelism() < 1 {
		t.Errorf("Parallelism() = %d after SetParallelism(0), want >= 1", h.Parallelism())
	}
}

// TestSimCacheSingleFlight checks the memo cache's duplicate
// suppression: many concurrent requests for one key run the computation
// exactly once and all observe its result.
func TestSimCacheSingleFlight(t *testing.T) {
	c := newSimCache()
	key := simKey{app: "kmeans", total: units.MB, chunk: units.KB}
	var calls atomic.Int32
	want := middleware.SimResult{Makespan: 42}
	const callers = 16
	var wg sync.WaitGroup
	results := make([]middleware.SimResult, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.do(context.Background(), key, func() (middleware.SimResult, error) {
				calls.Add(1)
				return want, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("computation ran %d times, want 1", n)
	}
	for i, res := range results {
		if res != want {
			t.Errorf("caller %d got %+v, want %+v", i, res, want)
		}
	}
}

// TestSimCacheErrorNotMemoized checks that a failed computation is
// retried on the next request instead of being served from the cache.
func TestSimCacheErrorNotMemoized(t *testing.T) {
	c := newSimCache()
	key := simKey{app: "em"}
	boom := errors.New("boom")
	if _, err := c.do(context.Background(), key, func() (middleware.SimResult, error) {
		return middleware.SimResult{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("first call error = %v, want boom", err)
	}
	want := middleware.SimResult{Makespan: 7}
	res, err := c.do(context.Background(), key, func() (middleware.SimResult, error) { return want, nil })
	if err != nil || res != want {
		t.Fatalf("retry after error = %+v, %v; want %+v, nil", res, err, want)
	}
}

// TestSimulateMemoizesAcrossSinkModes checks the publish path: a traced
// base-profile run makes the identical sink-less simulation free, and
// both report the same result.
func TestSimulateMemoizesAcrossSinkModes(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	total := 64 * units.MB
	cfg := core.Config{
		Cluster:      PentiumCluster,
		DataNodes:    1,
		ComputeNodes: 2,
		Bandwidth:    middleware.DefaultBandwidth,
		DatasetBytes: total,
	}
	col := middleware.NewCollector()
	traced, err := h.simulate(context.Background(), "kmeans", total, ChunkFor(total), cfg, col)
	if err != nil {
		t.Fatal(err)
	}
	key := simKey{app: "kmeans", total: total, chunk: ChunkFor(total), cfg: cfg}
	h.cache.mu.Lock()
	_, published := h.cache.m[key]
	h.cache.mu.Unlock()
	if !published {
		t.Error("traced run did not publish its result to the cache")
	}
	cached, err := h.simulate(context.Background(), "kmeans", total, ChunkFor(total), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cached != traced {
		t.Errorf("cached result %+v differs from traced run %+v", cached, traced)
	}
}
