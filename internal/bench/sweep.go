package bench

import (
	"context"
	"runtime"
	"sync"

	"freerideg/internal/core"
	"freerideg/internal/metrics"
	"freerideg/internal/middleware"
	"freerideg/internal/units"
)

// Harness simulation metrics: engine executions versus memo-cache reuse.
var (
	simStarted = metrics.GetCounter("fg_sim_runs_started_total",
		"Simulator executions started by the bench harness (cache misses and traced runs).")
	simCompleted = metrics.GetCounter("fg_sim_runs_completed_total",
		"Simulator executions that completed without error.")
	simCacheHits = metrics.GetCounter("fg_sim_cache_hits_total",
		"Simulations served from the harness memo cache (including waits on in-flight duplicates).")
)

// The parallel sweep engine. Every figure cell, base profile, and
// scaling-factor run is an independent, deterministic simulation, so the
// harness fans them out over a bounded worker pool and collects results
// in deterministic (index) order. A memoizing cache keyed by the full
// simulation input deduplicates the repeated runs the figure definitions
// share — most prominently the Pentium representative runs that every
// cross-cluster figure re-measures.

// simKey identifies one deterministic simulation: the application, its
// dataset and chunk sizes, and the full execution configuration. The
// simulated backend is a pure function of exactly these (the harness
// always runs the default protocol options), so equal keys always yield
// equal SimResults, which is what makes memoization safe. Runs with
// non-default protocol options — fault plans, ablation variants,
// straggler injection — are not covered by this key and MUST bypass the
// cache: the ablations therefore call Grid.SimulateOpts directly. If the
// harness ever sweeps such options, the deviating fields (including the
// fault plan) have to become part of the key.
type simKey struct {
	app          string
	total, chunk units.Bytes
	cfg          core.Config
}

// simEntry is one memoized (or in-flight) simulation.
type simEntry struct {
	done chan struct{} // closed when res/err are valid
	res  middleware.SimResult
	err  error
}

// simCache memoizes simulation results with duplicate suppression:
// concurrent requests for the same key run one simulation and share its
// result. Failed runs are not memoized.
type simCache struct {
	mu sync.Mutex
	m  map[simKey]*simEntry
}

func newSimCache() *simCache {
	return &simCache{m: make(map[simKey]*simEntry)}
}

// do returns the memoized result for k, computing it with f on first
// request. Concurrent callers with the same key block until the single
// in-flight computation finishes; a waiter whose ctx ends abandons the
// wait (the in-flight run itself is unaffected — its originator's
// context governs it, and a successful result still lands in the cache
// for everyone else).
func (c *simCache) do(ctx context.Context, k simKey, f func() (middleware.SimResult, error)) (middleware.SimResult, error) {
	c.mu.Lock()
	if e, ok := c.m[k]; ok {
		c.mu.Unlock()
		simCacheHits.Inc()
		select {
		case <-e.done:
			return e.res, e.err
		case <-ctx.Done():
			return middleware.SimResult{}, ctx.Err()
		}
	}
	e := &simEntry{done: make(chan struct{})}
	c.m[k] = e
	c.mu.Unlock()

	e.res, e.err = f()
	close(e.done)
	if e.err != nil {
		c.mu.Lock()
		if c.m[k] == e {
			delete(c.m, k)
		}
		c.mu.Unlock()
	}
	return e.res, e.err
}

// publish stores an already-computed result (from a traced run, whose
// events cannot be replayed from the cache) so later sink-less requests
// for the same key are free.
func (c *simCache) publish(k simKey, res middleware.SimResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; ok {
		return
	}
	e := &simEntry{done: make(chan struct{}), res: res}
	close(e.done)
	c.m[k] = e
}

// SetParallelism bounds the harness's simulation worker pool: at most n
// simulations run concurrently across Run/RunAll, whatever fan-out the
// figure definitions produce. n < 1 selects GOMAXPROCS. With n == 1 the
// harness executes strictly serially (the baseline the determinism tests
// and benchmarks compare against); any n produces identical results,
// because each simulation is deterministic and results are collected in
// definition order. Not safe to call concurrently with a running sweep.
func (h *Harness) SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	h.par = n
	h.sem = make(chan struct{}, n)
}

// Parallelism reports the current worker-pool bound.
func (h *Harness) Parallelism() int { return h.par }

// fanOut runs n index-addressed tasks on goroutines and returns the
// first error in index order (matching what a serial loop would have
// reported). With parallelism 1 it degenerates to a plain serial loop.
func (h *Harness) fanOut(n int, task func(i int) error) error {
	errs := make([]error, n)
	if h.par <= 1 {
		for i := 0; i < n; i++ {
			if errs[i] = task(i); errs[i] != nil {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = task(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
