// Package bench defines the experiments that regenerate every figure of
// the paper's evaluation (Figures 2–13; Figure 1 is the architecture
// diagram). Each experiment seeds the prediction framework with one base
// profile measured on the simulated testbed, predicts the 14-point
// configuration grid the paper sweeps, simulates the "exact" execution
// times, and reports the relative prediction error
// E = |T_exact − T_predicted| / T_exact per predictor variant.
package bench

import (
	"fmt"
	"sort"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/core"
	"freerideg/internal/middleware"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

// ConfigGrid returns the paper's 14 (data nodes, compute nodes)
// configurations: n in {1,2,4,8}, c in {n..16} over powers of two.
func ConfigGrid() [][2]int {
	var out [][2]int
	for _, n := range []int{1, 2, 4, 8} {
		for c := n; c <= 16; c *= 2 {
			out = append(out, [2]int{n, c})
		}
	}
	return out
}

// ChunkFor picks the ADR chunk size for an experiment whose base dataset
// has the given size: roughly 512 chunks, clamped to [128KB, 2MB] and
// aligned to whole field-grid rows. Within one experiment every dataset
// uses the base's chunk size, so chunk counts scale with dataset size
// (which is what makes EM's deferred per-chunk statistics a linear-class
// reduction object).
func ChunkFor(base units.Bytes) units.Bytes {
	c := base / 512
	if c < 128*units.KB {
		c = 128 * units.KB
	}
	if c > 2*units.MB {
		c = 2 * units.MB
	}
	const row = 4 * units.KB
	return c / row * row
}

// Dataset builds the paper-scale dataset spec for an application with the
// default chunking for its size.
func Dataset(app string, total units.Bytes) (adr.DatasetSpec, error) {
	return DatasetChunked(app, total, ChunkFor(total))
}

// DatasetChunked builds a dataset spec with an explicit chunk size.
func DatasetChunked(app string, total, chunk units.Bytes) (adr.DatasetSpec, error) {
	a, err := apps.Get(app)
	if err != nil {
		return adr.DatasetSpec{}, err
	}
	spec := adr.DatasetSpec{
		Name:       fmt.Sprintf("%s-%v", app, total),
		TotalBytes: total,
		ChunkBytes: chunk,
		Kind:       a.DatasetKind,
		Seed:       41,
	}
	switch a.DatasetKind {
	case "points":
		spec.ElemBytes, spec.Dims = 128, 16
	case "field":
		spec.ElemBytes, spec.Dims = 16, 2
	case "lattice":
		spec.ElemBytes, spec.Dims = 24, 3
	case "transactions":
		spec.ElemBytes, spec.Dims = 96, 12
	}
	return spec, nil
}

// Cell is one configuration's outcome in a figure.
type Cell struct {
	DataNodes    int                            `json:"dataNodes"`
	ComputeNodes int                            `json:"computeNodes"`
	Actual       time.Duration                  `json:"actual"`
	Predicted    map[core.Variant]time.Duration `json:"predicted"`
	Errors       map[core.Variant]float64       `json:"errors"`
}

// PhaseTotal is one protocol phase's accumulated duration over the base
// profile run, taken from the middleware's event trace.
type PhaseTotal struct {
	Phase string        `json:"phase"`
	Total time.Duration `json:"total"`
}

// Figure is one regenerated paper figure.
type Figure struct {
	ID       string         `json:"id"`
	Title    string         `json:"title"`
	App      string         `json:"app"`
	Variants []core.Variant `json:"variants"`
	Cells    []Cell         `json:"cells"`
	// BasePhases is the base profile run's per-phase time, in protocol
	// order (phases that accounted no time are omitted).
	BasePhases []PhaseTotal `json:"basePhases,omitempty"`
	// Notes records workload parameters and any scaling factors used.
	Notes []string `json:"notes"`
}

// phaseTotals folds a trace collector's per-phase sums into protocol
// order, dropping empty phases.
func phaseTotals(col *middleware.Collector) []PhaseTotal {
	var out []PhaseTotal
	for _, ph := range []middleware.Phase{
		middleware.PhaseRetrieval, middleware.PhaseDelivery, middleware.PhaseCachedFetch,
		middleware.PhaseLocalReduce, middleware.PhaseGather, middleware.PhaseGlobalReduce,
		middleware.PhaseSync, middleware.PhaseBroadcast,
	} {
		if d := col.PhaseTotal(ph); d > 0 {
			out = append(out, PhaseTotal{Phase: ph.String(), Total: d})
		}
	}
	return out
}

// MaxError reports the figure's largest error for a variant.
func (f Figure) MaxError(v core.Variant) float64 {
	var m float64
	for _, c := range f.Cells {
		if e, ok := c.Errors[v]; ok && e > m {
			m = e
		}
	}
	return m
}

// MeanError reports the figure's mean error for a variant.
func (f Figure) MeanError(v core.Variant) float64 {
	var xs []float64
	for _, c := range f.Cells {
		if e, ok := c.Errors[v]; ok {
			xs = append(xs, e)
		}
	}
	return stats.Mean(xs)
}

// experiment describes one figure's workload.
type experiment struct {
	id, title, app string
	// base profile configuration.
	baseN, baseC int
	baseBytes    units.Bytes
	baseBW       units.Rate
	// target (predicted/actual) runs.
	targetBytes   units.Bytes
	targetBW      units.Rate
	targetCluster string
	// variants plotted; figures 7-13 show only the global-reduction model.
	variants []core.Variant
	// repApps compute cross-cluster scaling factors (figures 11-13).
	repApps []string
}

// PentiumCluster and OpteronCluster name the two simulated testbeds.
const (
	PentiumCluster = "pentium-myrinet"
	OpteronCluster = "opteron-infiniband"
)

// The paper's synthetic low-bandwidth settings (labelled Kbps in the
// paper; only the 2:1 ratio enters the model).
const (
	bw500K = 500 * units.KBPerSec
	bw250K = 250 * units.KBPerSec
)

func allVariants() []core.Variant { return core.Variants() }
func globalOnly() []core.Variant  { return []core.Variant{core.GlobalReduction} }

// experiments maps figure IDs to their definitions, following the paper's
// evaluation section.
func experiments() map[string]experiment {
	const defBW = middleware.DefaultBandwidth
	gb14 := 1434 * units.MB  // 1.4 GB
	gb18 := 1843 * units.MB  // 1.8 GB
	gb185 := 1894 * units.MB // 1.85 GB
	m := map[string]experiment{
		"fig2": {
			title: "Prediction Errors for k-means Clustering, Base profile: 1-1, 1.4 GB dataset",
			app:   "kmeans", baseN: 1, baseC: 1,
			baseBytes: gb14, baseBW: defBW, targetBytes: gb14, targetBW: defBW,
			targetCluster: PentiumCluster, variants: allVariants(),
		},
		"fig3": {
			title: "Prediction Errors for Vortex Detection, Base profile: 1-1, 710 MB dataset",
			app:   "vortex", baseN: 1, baseC: 1,
			baseBytes: 710 * units.MB, baseBW: defBW, targetBytes: 710 * units.MB, targetBW: defBW,
			targetCluster: PentiumCluster, variants: allVariants(),
		},
		"fig4": {
			title: "Prediction Errors for Molecular Defect Detection, Base profile: 1-1, 130 MB dataset",
			app:   "defect", baseN: 1, baseC: 1,
			baseBytes: 130 * units.MB, baseBW: defBW, targetBytes: 130 * units.MB, targetBW: defBW,
			targetCluster: PentiumCluster, variants: allVariants(),
		},
		"fig5": {
			title: "Prediction Errors for EM Clustering, Base profile: 1-1, 1.4 GB dataset",
			app:   "em", baseN: 1, baseC: 1,
			baseBytes: gb14, baseBW: defBW, targetBytes: gb14, targetBW: defBW,
			targetCluster: PentiumCluster, variants: allVariants(),
		},
		"fig6": {
			title: "Prediction Errors for KNN Search, Base profile: 1-1, 1.4 GB dataset",
			app:   "knn", baseN: 1, baseC: 1,
			baseBytes: gb14, baseBW: defBW, targetBytes: gb14, targetBW: defBW,
			targetCluster: PentiumCluster, variants: allVariants(),
		},
		"fig7": {
			title: "Prediction Errors for EM Clustering, 1.4 GB dataset, Base profile: 1-1 with 350 MB",
			app:   "em", baseN: 1, baseC: 1,
			baseBytes: 350 * units.MB, baseBW: defBW, targetBytes: gb14, targetBW: defBW,
			targetCluster: PentiumCluster, variants: globalOnly(),
		},
		"fig8": {
			title: "Prediction Errors for Molecular Defect Detection with 1.8 GB dataset, Base profile: 1-1 with 130 MB",
			app:   "defect", baseN: 1, baseC: 1,
			baseBytes: 130 * units.MB, baseBW: defBW, targetBytes: gb18, targetBW: defBW,
			targetCluster: PentiumCluster, variants: globalOnly(),
		},
		"fig9": {
			title: "Prediction Errors for Molecular Defect Detection with 250 Kbps, Base profile: 1-1 with 500 Kbps",
			app:   "defect", baseN: 1, baseC: 1,
			baseBytes: 130 * units.MB, baseBW: bw500K, targetBytes: 130 * units.MB, targetBW: bw250K,
			targetCluster: PentiumCluster, variants: globalOnly(),
		},
		"fig10": {
			title: "Prediction Errors for EM Clustering with 250 Kbps, Base profile: 1-1 with 500 Kbps",
			app:   "em", baseN: 1, baseC: 1,
			baseBytes: gb14, baseBW: bw500K, targetBytes: gb14, targetBW: bw250K,
			targetCluster: PentiumCluster, variants: globalOnly(),
		},
		"fig11": {
			title: "Prediction Errors for EM Clustering On a Different Cluster, 700 MB dataset, Base profile: 8-8 with 350 MB",
			app:   "em", baseN: 8, baseC: 8,
			baseBytes: 350 * units.MB, baseBW: defBW, targetBytes: 700 * units.MB, targetBW: defBW,
			targetCluster: OpteronCluster, variants: globalOnly(),
			repApps: []string{"kmeans", "knn", "vortex"},
		},
		"fig12": {
			title: "Prediction Errors for Molecular Defect Detection On a Different Cluster, 1.8 GB dataset, Base profile: 4-4 with 130 MB",
			app:   "defect", baseN: 4, baseC: 4,
			baseBytes: 130 * units.MB, baseBW: defBW, targetBytes: gb18, targetBW: defBW,
			targetCluster: OpteronCluster, variants: globalOnly(),
			repApps: []string{"kmeans", "knn", "em"},
		},
		"fig13": {
			title: "Prediction Errors for Vortex Detection on a Different Cluster, 1.85 GB dataset, Base profile: 1-1 with 710 MB",
			app:   "vortex", baseN: 1, baseC: 1,
			baseBytes: 710 * units.MB, baseBW: defBW, targetBytes: gb185, targetBW: defBW,
			targetCluster: OpteronCluster, variants: globalOnly(),
			repApps: []string{"kmeans", "knn", "em"},
		},
	}
	for id, e := range m {
		e.id = id
		m[id] = e
	}
	return m
}

// FigureIDs lists the available figure experiments in paper order.
func FigureIDs() []string {
	ids := make([]string, 0, len(experiments()))
	for id := range experiments() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(ids[i], "fig%d", &a)
		fmt.Sscanf(ids[j], "fig%d", &b)
		return a < b
	})
	return ids
}
