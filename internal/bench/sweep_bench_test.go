package bench

import (
	"runtime"
	"testing"
)

// benchHarness builds a fresh harness (empty memo cache) per iteration
// so every run measures real simulation work, not cache hits from the
// previous iteration.
func benchHarness(b *testing.B, par int) *Harness {
	b.Helper()
	h, err := NewHarness()
	if err != nil {
		b.Fatal(err)
	}
	h.SetParallelism(par)
	return h
}

// BenchmarkHarnessRunFig5 regenerates one full figure (base profile +
// 14-cell sweep) serially — the per-figure unit of work.
func BenchmarkHarnessRunFig5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness(b, 1)
		if _, err := h.Run("fig5"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllSerial is the sweep baseline: every figure of the
// paper's evaluation, strictly one simulation at a time.
func BenchmarkRunAllSerial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness(b, 1)
		if _, err := h.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllParallel is the same sweep through the parallel engine
// at the GOMAXPROCS worker-pool bound. The ns/op ratio against
// BenchmarkRunAllSerial is the sweep speedup recorded in
// BENCH_sweep.json (≈1 on a single-core machine, ≥2 expected on 4+
// cores).
func BenchmarkRunAllParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness(b, runtime.GOMAXPROCS(0))
		if _, err := h.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}
