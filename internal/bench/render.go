package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Render writes a figure as a text table, one row per configuration and
// one error column per predictor variant, mirroring the paper's bar
// charts.
func Render(w io.Writer, f Figure) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", strings.ToUpper(f.ID[:1])+f.ID[1:], f.Title)
	for _, note := range f.Notes {
		fmt.Fprintf(&b, "  %s\n", note)
	}
	if len(f.BasePhases) > 0 {
		parts := make([]string, len(f.BasePhases))
		for i, pt := range f.BasePhases {
			parts[i] = fmt.Sprintf("%s %v", pt.Phase, pt.Total.Round(time.Millisecond))
		}
		fmt.Fprintf(&b, "  base phases: %s\n", strings.Join(parts, " | "))
	}
	fmt.Fprintf(&b, "  %-8s %14s", "config", "actual")
	for _, v := range f.Variants {
		fmt.Fprintf(&b, " %24s", v.String())
	}
	fmt.Fprintln(&b)
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "  %-8s %14s", fmt.Sprintf("%d-%d", c.DataNodes, c.ComputeNodes),
			c.Actual.Round(time.Millisecond))
		for _, v := range f.Variants {
			fmt.Fprintf(&b, " %15s (%5.2f%%)", c.Predicted[v].Round(time.Millisecond), 100*c.Errors[v])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "  max error:")
	for _, v := range f.Variants {
		fmt.Fprintf(&b, " %s %.2f%%", v, 100*f.MaxError(v))
	}
	fmt.Fprintln(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderAblations writes ablation results as a text table.
func RenderAblations(w io.Writer, results []AblationResult) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (max global-reduction error over the configuration grid)\n")
	fmt.Fprintf(&b, "  %-22s %10s %10s\n", "ablation", "baseline", "variant")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-22s %9.2f%% %9.2f%%\n", r.Name, 100*r.Baseline, 100*r.Variant)
		for _, note := range r.Notes {
			fmt.Fprintf(&b, "      %s\n", note)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RunAblations runs the full ablation suite on representative
// applications.
func (h *Harness) RunAblations() ([]AblationResult, error) {
	var out []AblationResult
	for _, run := range []struct {
		name string
		f    func(string) (AblationResult, error)
		app  string
	}{
		{"tree-gather", h.AblationTreeGather, "kmeans"},
		{"flow-control", h.AblationFlowControl, "knn"},
		{"storage-scaling-term", h.AblationStorageScaling, "knn"},
		{"disk-cache-model", h.AblationDiskCache, "kmeans"},
		{"fault-recovery", h.AblationFaultRecovery, "kmeans"},
	} {
		r, err := run.f(run.app)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", run.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderAll writes every figure separated by blank lines.
func RenderAll(w io.Writer, figs []Figure) error {
	for i, f := range figs {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := Render(w, f); err != nil {
			return err
		}
	}
	return nil
}
