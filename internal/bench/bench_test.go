package bench

import (
	"strings"
	"sync"
	"testing"

	"freerideg/internal/apps"
	"freerideg/internal/core"
	"freerideg/internal/middleware"
	"freerideg/internal/units"
)

// sharedHarness avoids recalibrating per test.
var (
	harnessOnce sync.Once
	harness     *Harness
	harnessErr  error
)

func getHarness(t *testing.T) *Harness {
	t.Helper()
	harnessOnce.Do(func() {
		harness, harnessErr = NewHarness()
	})
	if harnessErr != nil {
		t.Fatal(harnessErr)
	}
	return harness
}

func TestConfigGrid(t *testing.T) {
	grid := ConfigGrid()
	if len(grid) != 14 {
		t.Fatalf("grid has %d configs, want the paper's 14", len(grid))
	}
	for _, nc := range grid {
		if nc[1] < nc[0] {
			t.Errorf("config %d-%d violates compute >= data", nc[0], nc[1])
		}
	}
	if grid[0] != [2]int{1, 1} || grid[len(grid)-1] != [2]int{8, 16} {
		t.Errorf("grid range %v..%v, want 1-1..8-16", grid[0], grid[len(grid)-1])
	}
}

func TestChunkFor(t *testing.T) {
	cases := []struct {
		base units.Bytes
		want units.Bytes
	}{
		{130 * units.MB, 260 * units.KB},
		{1434 * units.MB, 2 * units.MB}, // capped
		{10 * units.MB, 128 * units.KB}, // floored
	}
	for _, c := range cases {
		got := ChunkFor(c.base)
		if got%(4*units.KB) != 0 {
			t.Errorf("ChunkFor(%v) = %v not row-aligned", c.base, got)
		}
		if got != c.want {
			t.Errorf("ChunkFor(%v) = %v, want %v", c.base, got, c.want)
		}
	}
}

func TestDatasetSpecsValid(t *testing.T) {
	for _, app := range apps.Names() {
		spec, err := Dataset(app, 64*units.MB)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", app, err)
		}
	}
	if _, err := Dataset("bogus", units.MB); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestFigureIDsOrdered(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 12 {
		t.Fatalf("%d figures, want 12 (fig2..fig13)", len(ids))
	}
	if ids[0] != "fig2" || ids[11] != "fig13" {
		t.Fatalf("figure order %v", ids)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	h := getHarness(t)
	if _, err := h.Run("fig99"); err == nil {
		t.Fatal("unknown figure ran")
	}
}

// TestFig2ReproducesPaperShape asserts the headline claims of the paper's
// Figure 2 on the simulated testbed: the base configuration predicts
// itself exactly, the three model variants rank no-comm <= red-comm <=
// global at the most serialized configuration, the global-reduction model
// is accurate everywhere, and the no-comm model degrades visibly.
func TestFig2ReproducesPaperShape(t *testing.T) {
	h := getHarness(t)
	fig, err := h.Run("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Cells) != 14 {
		t.Fatalf("%d cells, want 14", len(fig.Cells))
	}
	base := fig.Cells[0]
	if base.DataNodes != 1 || base.ComputeNodes != 1 {
		t.Fatalf("first cell is %d-%d, want 1-1", base.DataNodes, base.ComputeNodes)
	}
	for _, v := range fig.Variants {
		if base.Errors[v] > 1e-9 {
			t.Errorf("base config error for %v = %v, want 0", v, base.Errors[v])
		}
	}
	last := fig.Cells[len(fig.Cells)-1] // 8-16
	if !(last.Errors[core.GlobalReduction] <= last.Errors[core.ReductionComm] &&
		last.Errors[core.ReductionComm] <= last.Errors[core.NoComm]) {
		t.Errorf("variant ordering broken at 8-16: %v", last.Errors)
	}
	if m := fig.MaxError(core.GlobalReduction); m > 0.03 {
		t.Errorf("global-reduction max error %.2f%%, want < 3%%", 100*m)
	}
	if m := fig.MaxError(core.NoComm); m < 0.04 {
		t.Errorf("no-comm max error %.2f%%, want the visible degradation the paper shows (>= 4%%)", 100*m)
	}
}

func TestAllSameClusterFiguresAccurate(t *testing.T) {
	h := getHarness(t)
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6"} {
		fig, err := h.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if m := fig.MaxError(core.GlobalReduction); m > 0.05 {
			t.Errorf("%s: global-reduction max error %.2f%%, want < 5%%", id, 100*m)
		}
		last := fig.Cells[len(fig.Cells)-1]
		if !(last.Errors[core.GlobalReduction] <= last.Errors[core.NoComm]) {
			t.Errorf("%s: global model not better than no-comm at 8-16", id)
		}
	}
}

func TestDatasetAndBandwidthScalingFigures(t *testing.T) {
	h := getHarness(t)
	for _, id := range []string{"fig7", "fig8", "fig9", "fig10"} {
		fig, err := h.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Variants) != 1 || fig.Variants[0] != core.GlobalReduction {
			t.Errorf("%s plots %v, want global reduction only", id, fig.Variants)
		}
		if m := fig.MaxError(core.GlobalReduction); m > 0.03 {
			t.Errorf("%s: max error %.2f%%, want < 3%% (paper: small errors under scaling)", id, 100*m)
		}
	}
}

func TestCrossClusterFigures(t *testing.T) {
	h := getHarness(t)
	sameClusterMax := 0.0
	{
		fig, err := h.Run("fig5") // EM on the same cluster
		if err != nil {
			t.Fatal(err)
		}
		sameClusterMax = fig.MaxError(core.GlobalReduction)
	}
	crossWorst := 0.0
	for _, id := range []string{"fig11", "fig12", "fig13"} {
		fig, err := h.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		m := fig.MaxError(core.GlobalReduction)
		if m > 0.20 {
			t.Errorf("%s: max error %.2f%%, want reasonable accuracy (< 20%%)", id, 100*m)
		}
		if m > crossWorst {
			crossWorst = m
		}
		found := false
		for _, note := range fig.Notes {
			if strings.Contains(note, "scaling factors") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no scaling-factor note recorded", id)
		}
	}
	// Cross-cluster predictions are less accurate than same-cluster ones,
	// the paper's qualitative claim.
	if crossWorst <= sameClusterMax {
		t.Errorf("cross-cluster worst error %.2f%% not above same-cluster %.2f%%",
			100*crossWorst, 100*sameClusterMax)
	}
}

func TestPerAppScalingFactorsDiffer(t *testing.T) {
	// The paper observed per-application compute scaling factors ranging
	// from 0.233 to 0.370; our instruction-mix model must likewise yield
	// different factors per app.
	h := getHarness(t)
	e := experiments()["fig11"]
	var factors []float64
	for _, rep := range e.repApps {
		single, _, err := h.scalingFactors(experiment{
			baseN: e.baseN, baseC: e.baseC, baseBW: e.baseBW,
			targetCluster: e.targetCluster, repApps: []string{rep},
		})
		if err != nil {
			t.Fatal(err)
		}
		factors = append(factors, single.Compute)
	}
	for i := 1; i < len(factors); i++ {
		if factors[i] == factors[0] {
			t.Fatalf("representative apps share compute factor %.3f; mixes not differentiating", factors[0])
		}
	}
	for _, f := range factors {
		if f <= 0.1 || f >= 0.9 {
			t.Errorf("compute factor %.3f outside plausible range", f)
		}
	}
}

func TestInferredModelsMatchLabels(t *testing.T) {
	h := getHarness(t)
	inferred, err := h.InferredModels()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range apps.Names() {
		a, _ := apps.Get(name)
		if inferred[name] != a.Model {
			t.Errorf("%s: inferred %+v, labeled %+v", name, inferred[name], a.Model)
		}
	}
}

func TestAblationTreeGather(t *testing.T) {
	h := getHarness(t)
	res, err := h.AblationTreeGather("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	// The serialized-gather model must lose accuracy when the middleware
	// switches to a combining tree.
	if res.Variant <= res.Baseline {
		t.Errorf("tree gather did not degrade the model: baseline %.2f%%, variant %.2f%%",
			100*res.Baseline, 100*res.Variant)
	}
}

func TestAblationFlowControl(t *testing.T) {
	h := getHarness(t)
	res, err := h.AblationFlowControl("knn")
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline > 0.05 {
		t.Errorf("synchronous protocol additivity gap %.2f%%, want < 5%%", 100*res.Baseline)
	}
	if res.Variant <= res.Baseline {
		t.Errorf("async delivery did not increase the additivity gap: %.2f%% vs %.2f%%",
			100*res.Variant, 100*res.Baseline)
	}
}

func TestAblationDiskCache(t *testing.T) {
	h := getHarness(t)
	res, err := h.AblationDiskCache("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline > 0.05 {
		t.Errorf("extended cached-retrieval model max error %.2f%%, want < 5%%", 100*res.Baseline)
	}
	if res.Variant <= res.Baseline {
		t.Errorf("collapsing the cached split did not hurt: baseline %.2f%%, variant %.2f%%",
			100*res.Baseline, 100*res.Variant)
	}
}

func TestAblationStorageScaling(t *testing.T) {
	h := getHarness(t)
	res, err := h.AblationStorageScaling("knn")
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant <= res.Baseline {
		t.Errorf("dropping the n/n̂ term did not hurt: baseline %.2f%%, variant %.2f%%",
			100*res.Baseline, 100*res.Variant)
	}
}

func TestAblationFaultRecovery(t *testing.T) {
	h := getHarness(t)
	res, err := h.AblationFaultRecovery("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	// The fault-unaware predictor must lose accuracy once the middleware
	// spends time on retries, detection, and failover re-fetches.
	if res.Variant <= res.Baseline {
		t.Errorf("fault recovery did not degrade the model: baseline %.2f%%, variant %.2f%%",
			100*res.Baseline, 100*res.Variant)
	}
}

func TestTestbedSatisfiesModelAssumptions(t *testing.T) {
	// The healthy simulated testbed must pass the paper's own assumption
	// checks (retrieval/network/compute linearity and scaling) — that is
	// what entitles the simple model to work on it.
	h := getHarness(t)
	a, _ := apps.Get("kmeans")
	chunk := ChunkFor(256 * units.MB)
	var profiles []core.Profile
	for _, run := range []struct {
		n, c  int
		bytes units.Bytes
	}{
		{1, 2, 256 * units.MB},
		{1, 2, 512 * units.MB},
		{2, 2, 256 * units.MB},
		{1, 4, 256 * units.MB},
	} {
		spec, err := DatasetChunked("kmeans", run.bytes, chunk)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := a.Cost(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.Config{
			Cluster:      PentiumCluster,
			DataNodes:    run.n,
			ComputeNodes: run.c,
			Bandwidth:    middleware.DefaultBandwidth,
			DatasetBytes: run.bytes,
		}
		res, err := h.Grid().Simulate(cost, spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, res.Profile)
	}
	warnings, err := core.CheckAssumptions(profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("healthy testbed tripped assumption checks: %v", warnings)
	}
}

func TestRunAblationsCoversAll(t *testing.T) {
	h := getHarness(t)
	results, err := h.RunAblations()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d ablations, want 5", len(results))
	}
	var sb strings.Builder
	if err := RenderAblations(&sb, results); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tree-gather", "flow-control", "storage-scaling-term", "disk-cache-model", "fault-recovery"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("rendered ablations missing %q", name)
		}
	}
}

func TestRenderContainsTable(t *testing.T) {
	h := getHarness(t)
	fig, err := h.Run("fig9")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, fig); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig9", "1-1", "8-16", "max error", "global reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q", want)
		}
	}
}

func TestMaxAndMeanError(t *testing.T) {
	f := Figure{Cells: []Cell{
		{Errors: map[core.Variant]float64{core.NoComm: 0.1}},
		{Errors: map[core.Variant]float64{core.NoComm: 0.3}},
	}}
	if f.MaxError(core.NoComm) != 0.3 {
		t.Errorf("MaxError = %v", f.MaxError(core.NoComm))
	}
	if f.MeanError(core.NoComm) != 0.2 {
		t.Errorf("MeanError = %v", f.MeanError(core.NoComm))
	}
	if f.MaxError(core.GlobalReduction) != 0 {
		t.Errorf("missing variant MaxError = %v, want 0", f.MaxError(core.GlobalReduction))
	}
}
