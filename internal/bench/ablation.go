package bench

import (
	"context"
	"fmt"

	"freerideg/internal/apps"
	"freerideg/internal/core"
	"freerideg/internal/middleware"
	"freerideg/internal/simgrid"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

// AblationResult compares the prediction framework's accuracy under a
// baseline setup and an ablated variant. Errors are the maximum
// global-reduction-variant relative errors over the configuration grid.
type AblationResult struct {
	Name     string   `json:"name"`
	Baseline float64  `json:"baseline"`
	Variant  float64  `json:"variant"`
	Notes    []string `json:"notes"`
}

// ablationDataset is the workload the ablations sweep.
const ablationDataset = 512 * units.MB

// maxPredictionError predicts the configuration grid from a 1-1 profile
// and reports the maximum relative error, with configurable simulator
// options and predictor tweaks.
func (h *Harness) maxPredictionError(app string, opts middleware.SimOptions,
	tweak func(*core.Predictor)) (float64, error) {
	a, err := apps.Get(app)
	if err != nil {
		return 0, err
	}
	chunk := ChunkFor(ablationDataset)
	spec, err := DatasetChunked(app, ablationDataset, chunk)
	if err != nil {
		return 0, err
	}
	cost, err := a.Cost(spec)
	if err != nil {
		return 0, err
	}
	mkCfg := func(n, c int) core.Config {
		return core.Config{
			Cluster:      PentiumCluster,
			DataNodes:    n,
			ComputeNodes: c,
			Bandwidth:    middleware.DefaultBandwidth,
			DatasetBytes: ablationDataset,
		}
	}
	base, err := h.grid.SimulateOpts(cost, spec, mkCfg(1, 1), opts)
	if err != nil {
		return 0, err
	}
	pred, err := core.NewPredictor(base.Profile, a.Model)
	if err != nil {
		return 0, err
	}
	for cl, cal := range h.links {
		pred.Links[cl] = cal
	}
	if tweak != nil {
		tweak(pred)
	}
	var worst float64
	for _, nc := range ConfigGrid() {
		cfg := mkCfg(nc[0], nc[1])
		actual, err := h.grid.SimulateOpts(cost, spec, cfg, opts)
		if err != nil {
			return 0, err
		}
		p, err := pred.Predict(cfg, core.GlobalReduction)
		if err != nil {
			return 0, err
		}
		if e := stats.RelError(actual.Makespan.Seconds(), p.Texec().Seconds()); e > worst {
			worst = e
		}
	}
	return worst, nil
}

// AblationTreeGather measures how much accuracy the prediction model loses
// when the middleware gathers reduction objects through a combining tree
// while the model keeps assuming the serialized gather (paper Section
// 3.3.1 models the serialized case).
func (h *Harness) AblationTreeGather(app string) (AblationResult, error) {
	baseline, err := h.maxPredictionError(app, middleware.SimOptions{}, nil)
	if err != nil {
		return AblationResult{}, err
	}
	variant, err := h.maxPredictionError(app, middleware.SimOptions{TreeGather: true}, nil)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "tree-gather",
		Baseline: baseline,
		Variant:  variant,
		Notes: []string{
			"baseline: serialized gather (matches the model)",
			"variant: log2(c) combining-tree gather under the same serialized-gather model",
		},
	}, nil
}

// AblationFlowControl measures how far the additive decomposition
// T_exec = t_d + t_n + t_c drifts when pass-0 delivery streams chunks
// asynchronously instead of using the synchronous chunk rounds.
func (h *Harness) AblationFlowControl(app string) (AblationResult, error) {
	gap := func(opts middleware.SimOptions) (float64, error) {
		a, err := apps.Get(app)
		if err != nil {
			return 0, err
		}
		spec, err := DatasetChunked(app, ablationDataset, ChunkFor(ablationDataset))
		if err != nil {
			return 0, err
		}
		cost, err := a.Cost(spec)
		if err != nil {
			return 0, err
		}
		var worst float64
		for _, nc := range ConfigGrid() {
			cfg := core.Config{
				Cluster:      PentiumCluster,
				DataNodes:    nc[0],
				ComputeNodes: nc[1],
				Bandwidth:    middleware.DefaultBandwidth,
				DatasetBytes: ablationDataset,
			}
			res, err := h.grid.SimulateOpts(cost, spec, cfg, opts)
			if err != nil {
				return 0, err
			}
			e := stats.RelError(res.Makespan.Seconds(), res.Profile.Texec().Seconds())
			if e > worst {
				worst = e
			}
		}
		return worst, nil
	}
	baseline, err := gap(middleware.SimOptions{})
	if err != nil {
		return AblationResult{}, err
	}
	variant, err := gap(middleware.SimOptions{AsyncDelivery: true})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "flow-control",
		Baseline: baseline,
		Variant:  variant,
		Notes: []string{
			"numbers are the worst |makespan - (t_d+t_n+t_c)| / makespan over the grid",
			"baseline: synchronous chunk rounds; variant: asynchronous streaming delivery",
		},
	}, nil
}

// AblationStorageScaling measures the value of the n/n̂ term in the
// network predictor (the paper notes it can be dropped when repository
// throughput does not scale; on this testbed it does scale, so dropping
// the term must hurt).
func (h *Harness) AblationStorageScaling(app string) (AblationResult, error) {
	baseline, err := h.maxPredictionError(app, middleware.SimOptions{}, nil)
	if err != nil {
		return AblationResult{}, err
	}
	variant, err := h.maxPredictionError(app, middleware.SimOptions{}, func(p *core.Predictor) {
		p.DropStorageScaling = true
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "storage-scaling-term",
		Baseline: baseline,
		Variant:  variant,
		Notes: []string{
			"baseline: T̂_network includes the n/n̂ term; variant: term dropped",
		},
	}, nil
}

// AblationDiskCache measures the value of the cached-retrieval model
// extension: with local-disk caching, passes after the first re-read
// chunks on the compute nodes, which scales with ĉ rather than n̂. The
// baseline predictor uses the extended split (Profile.TdiskCached); the
// variant collapses it into plain t_d, the paper's memory-caching
// assumption.
func (h *Harness) AblationDiskCache(app string) (AblationResult, error) {
	opts := middleware.SimOptions{Cache: middleware.CacheSpec{Mode: middleware.CacheLocalDisk}}
	baseline, err := h.maxPredictionError(app, opts, nil)
	if err != nil {
		return AblationResult{}, err
	}
	variant, err := h.maxPredictionError(app, opts, func(p *core.Predictor) {
		p.Profile.TdiskCached = 0 // pretend the profile was memory-cached
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "disk-cache-model",
		Baseline: baseline,
		Variant:  variant,
		Notes: []string{
			"middleware runs with local-disk caching in both cases",
			"baseline: predictor splits first-pass vs cached retrieval; variant: paper's memory-caching model",
		},
	}, nil
}

// AblationFaultRecovery measures how far fault recovery pushes execution
// away from the fault-free additive model: the same (fault-unaware)
// predictor covers runs where the middleware rides out a fixed fault
// plan — a compute-node crash triggers failover re-partitioning, a slow
// disk inflates retrieval, and a flaky link forces retried deliveries.
// Recovery overhead (discarded work, detection timeout, retry backoff)
// lives outside T_exec = t_d + t_n + t_c, so prediction error must grow.
// The plan replays across the whole configuration grid; faults
// addressing nodes a configuration does not have are dropped, so small
// configurations see only the storage-tier faults.
func (h *Harness) AblationFaultRecovery(app string) (AblationResult, error) {
	baseline, err := h.maxPredictionError(app, middleware.SimOptions{}, nil)
	if err != nil {
		return AblationResult{}, err
	}
	plan, err := simgrid.ParseFaultPlan(
		"crash node=1 pass=2; slow-disk node=0 factor=4 count=4; flaky-link node=0 pass=1 chunk=1 count=2")
	if err != nil {
		return AblationResult{}, err
	}
	variant, err := h.maxPredictionError(app, middleware.SimOptions{Faults: &plan}, nil)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "fault-recovery",
		Baseline: baseline,
		Variant:  variant,
		Notes: []string{
			"baseline: fault-free runs; variant: crash + slow-disk + flaky-link plan on every run",
			"recovery overhead is outside the additive model, so the fault-unaware predictor under-predicts",
		},
	}, nil
}

// InferredModels infers each application's scaling classes from three
// profile runs (Sections 3.3.1–3.3.2 allow inferring the classes instead
// of asking the user) and returns them keyed by app name.
func (h *Harness) InferredModels() (map[string]core.AppModel, error) {
	out := make(map[string]core.AppModel, len(apps.Names()))
	for _, name := range apps.Names() {
		chunk := ChunkFor(ablationDataset)
		var profiles []core.Profile
		for _, run := range []struct {
			n, c  int
			bytes units.Bytes
		}{
			{1, 1, ablationDataset},
			{1, 4, ablationDataset},
			{1, 1, ablationDataset / 2},
		} {
			cfg := core.Config{
				Cluster:      PentiumCluster,
				DataNodes:    run.n,
				ComputeNodes: run.c,
				Bandwidth:    middleware.DefaultBandwidth,
				DatasetBytes: run.bytes,
			}
			res, err := h.simulate(context.Background(), name, run.bytes, chunk, cfg, nil)
			if err != nil {
				return nil, fmt.Errorf("bench: inference profile for %s: %w", name, err)
			}
			profiles = append(profiles, res.Profile)
		}
		m, err := core.InferModel(profiles)
		if err != nil {
			return nil, fmt.Errorf("bench: inferring classes for %s: %w", name, err)
		}
		out[name] = m
	}
	return out, nil
}
