package bench

import (
	"fmt"
	"time"

	"freerideg/internal/apps"
	"freerideg/internal/core"
	"freerideg/internal/middleware"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

// Harness runs figure experiments on the simulated testbed.
type Harness struct {
	grid  *middleware.Grid
	links map[string]core.LinkCalibration
}

// NewHarness builds a harness over the paper's two clusters.
func NewHarness() (*Harness, error) {
	g, err := middleware.NewGrid(middleware.PentiumMyrinet(), middleware.OpteronInfiniband())
	if err != nil {
		return nil, err
	}
	h := &Harness{grid: g, links: make(map[string]core.LinkCalibration)}
	for _, cl := range []string{PentiumCluster, OpteronCluster} {
		cal, err := core.CalibrateLink(g.MeasureIC(cl))
		if err != nil {
			return nil, fmt.Errorf("bench: calibrating %s: %w", cl, err)
		}
		h.links[cl] = cal
	}
	return h, nil
}

// Grid exposes the simulated testbed (used by the CLI tools).
func (h *Harness) Grid() *middleware.Grid { return h.grid }

// Links exposes the interconnect calibrations per cluster.
func (h *Harness) Links() map[string]core.LinkCalibration {
	out := make(map[string]core.LinkCalibration, len(h.links))
	for k, v := range h.links {
		out[k] = v
	}
	return out
}

// simulate runs one application configuration on the simulated testbed,
// using the experiment's chunk size. A non-nil sink receives the run's
// phase events.
func (h *Harness) simulate(app string, total, chunk units.Bytes, cfg core.Config, sink middleware.Sink) (middleware.SimResult, error) {
	a, err := apps.Get(app)
	if err != nil {
		return middleware.SimResult{}, err
	}
	spec, err := DatasetChunked(app, total, chunk)
	if err != nil {
		return middleware.SimResult{}, err
	}
	cost, err := a.Cost(spec)
	if err != nil {
		return middleware.SimResult{}, err
	}
	return h.grid.SimulateOpts(cost, spec, cfg, middleware.SimOptions{Trace: sink})
}

// repDatasetBytes is the dataset size used by the representative
// applications when measuring cross-cluster scaling factors.
const repDatasetBytes = 256 * units.MB

// scalingFactors measures the component scaling factors between the base
// cluster and the target cluster using the representative applications on
// identical configurations, per Section 3.4 of the paper.
func (h *Harness) scalingFactors(e experiment) (core.Scaling, []core.Profile, error) {
	var onA, onB []core.Profile
	for _, rep := range e.repApps {
		for _, cl := range []string{PentiumCluster, e.targetCluster} {
			cfg := core.Config{
				Cluster:      cl,
				DataNodes:    e.baseN,
				ComputeNodes: e.baseC,
				Bandwidth:    e.baseBW,
				DatasetBytes: repDatasetBytes,
			}
			res, err := h.simulate(rep, repDatasetBytes, ChunkFor(repDatasetBytes), cfg, nil)
			if err != nil {
				return core.Scaling{}, nil, fmt.Errorf("bench: representative %s on %s: %w", rep, cl, err)
			}
			if cl == PentiumCluster {
				onA = append(onA, res.Profile)
			} else {
				onB = append(onB, res.Profile)
			}
		}
	}
	s, err := core.ComputeScaling(onA, onB)
	return s, onB, err
}

// Run regenerates one figure.
func (h *Harness) Run(id string) (Figure, error) {
	e, ok := experiments()[id]
	if !ok {
		return Figure{}, fmt.Errorf("bench: unknown figure %q (have %v)", id, FigureIDs())
	}
	a, err := apps.Get(e.app)
	if err != nil {
		return Figure{}, err
	}

	baseCfg := core.Config{
		Cluster:      PentiumCluster,
		DataNodes:    e.baseN,
		ComputeNodes: e.baseC,
		Bandwidth:    e.baseBW,
		DatasetBytes: e.baseBytes,
	}
	chunk := ChunkFor(e.baseBytes)
	col := middleware.NewCollector()
	baseRes, err := h.simulate(e.app, e.baseBytes, chunk, baseCfg, col)
	if err != nil {
		return Figure{}, fmt.Errorf("bench: %s base profile: %w", id, err)
	}

	pred, err := core.NewPredictor(baseRes.Profile, a.Model)
	if err != nil {
		return Figure{}, err
	}
	for cl, cal := range h.links {
		pred.Links[cl] = cal
	}

	fig := Figure{
		ID:         id,
		Title:      e.title,
		App:        e.app,
		Variants:   e.variants,
		BasePhases: phaseTotals(col),
		Notes: []string{
			fmt.Sprintf("base profile: %v (T_exec %v)", baseCfg, baseRes.Profile.Texec().Round(time.Millisecond)),
			fmt.Sprintf("target: %v @ %v on %s", e.targetBytes, e.targetBW, e.targetCluster),
			fmt.Sprintf("app model: RO %v, global %v", a.Model.RO, a.Model.Global),
		},
	}

	if e.targetCluster != PentiumCluster {
		scaling, _, err := h.scalingFactors(e)
		if err != nil {
			return Figure{}, fmt.Errorf("bench: %s scaling factors: %w", id, err)
		}
		pred.Scalings[e.targetCluster] = scaling
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"scaling factors from %v: s_d=%.3f s_n=%.3f s_c=%.3f",
			e.repApps, scaling.Disk, scaling.Network, scaling.Compute))
	}

	for _, nc := range ConfigGrid() {
		cfg := core.Config{
			Cluster:      e.targetCluster,
			DataNodes:    nc[0],
			ComputeNodes: nc[1],
			Bandwidth:    e.targetBW,
			DatasetBytes: e.targetBytes,
		}
		actual, err := h.simulate(e.app, e.targetBytes, chunk, cfg, nil)
		if err != nil {
			return Figure{}, fmt.Errorf("bench: %s actual %d-%d: %w", id, nc[0], nc[1], err)
		}
		cell := Cell{
			DataNodes:    nc[0],
			ComputeNodes: nc[1],
			Actual:       actual.Makespan,
			Predicted:    make(map[core.Variant]time.Duration, len(e.variants)),
			Errors:       make(map[core.Variant]float64, len(e.variants)),
		}
		for _, v := range e.variants {
			p, err := pred.Predict(cfg, v)
			if err != nil {
				return Figure{}, fmt.Errorf("bench: %s predict %d-%d %v: %w", id, nc[0], nc[1], v, err)
			}
			cell.Predicted[v] = p.Texec()
			cell.Errors[v] = stats.RelError(actual.Makespan.Seconds(), p.Texec().Seconds())
		}
		fig.Cells = append(fig.Cells, cell)
	}
	return fig, nil
}

// RunAll regenerates every figure in paper order.
func (h *Harness) RunAll() ([]Figure, error) {
	var out []Figure
	for _, id := range FigureIDs() {
		fig, err := h.Run(id)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}
