package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"freerideg/internal/apps"
	"freerideg/internal/core"
	"freerideg/internal/middleware"
	"freerideg/internal/reqtrace"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

// Harness runs figure experiments on the simulated testbed. Sweeps fan
// out over a bounded worker pool (SetParallelism) and memoize repeated
// simulations; see sweep.go. A Harness is safe for concurrent sweeps:
// the grid is immutable, the cache synchronizes itself, and the worker
// pool is a shared bound.
type Harness struct {
	grid  *middleware.Grid
	links map[string]core.LinkCalibration
	par   int
	sem   chan struct{}
	cache *simCache

	obsMu sync.RWMutex
	obs   Observer
}

// Observer receives the profile of every simulated run the harness
// actually executes. Memoized cache hits are not re-reported, so a
// sweep's observation stream carries each distinct run once — the shape
// a calibration corpus wants (feed it to profile.Store.Observer to turn
// a figure sweep into calibration samples).
type Observer func(core.Profile)

// SetObserver installs fn as the run observer (nil removes it). Runs
// fan out over the worker pool, so fn must be safe for concurrent
// calls.
func (h *Harness) SetObserver(fn Observer) {
	h.obsMu.Lock()
	h.obs = fn
	h.obsMu.Unlock()
}

func (h *Harness) observer() Observer {
	h.obsMu.RLock()
	defer h.obsMu.RUnlock()
	return h.obs
}

// NewHarness builds a harness over the paper's two clusters, with the
// worker pool sized to GOMAXPROCS.
func NewHarness() (*Harness, error) {
	g, err := middleware.NewGrid(middleware.PentiumMyrinet(), middleware.OpteronInfiniband())
	if err != nil {
		return nil, err
	}
	h := &Harness{grid: g, links: make(map[string]core.LinkCalibration), cache: newSimCache()}
	h.SetParallelism(runtime.GOMAXPROCS(0))
	for _, cl := range []string{PentiumCluster, OpteronCluster} {
		cal, err := core.CalibrateLink(g.MeasureIC(cl))
		if err != nil {
			return nil, fmt.Errorf("bench: calibrating %s: %w", cl, err)
		}
		h.links[cl] = cal
	}
	return h, nil
}

// Grid exposes the simulated testbed (used by the CLI tools).
func (h *Harness) Grid() *middleware.Grid { return h.grid }

// Links exposes the interconnect calibrations per cluster.
func (h *Harness) Links() map[string]core.LinkCalibration {
	out := make(map[string]core.LinkCalibration, len(h.links))
	for k, v := range h.links {
		out[k] = v
	}
	return out
}

// simulate runs one application configuration on the simulated testbed,
// using the experiment's chunk size. A non-nil sink receives the run's
// phase events. Sink-less runs are memoized (the simulator is
// deterministic, so equal inputs yield equal results); traced runs
// always execute — their events cannot be replayed from a cache — but
// publish their result for later sink-less callers.
func (h *Harness) simulate(ctx context.Context, app string, total, chunk units.Bytes, cfg core.Config, sink middleware.Sink) (middleware.SimResult, error) {
	key := simKey{app: app, total: total, chunk: chunk, cfg: cfg}
	if sink != nil {
		res, err := h.runSim(ctx, app, total, chunk, cfg, sink)
		if err == nil {
			h.cache.publish(key, res)
		}
		return res, err
	}
	return h.cache.do(ctx, key, func() (middleware.SimResult, error) {
		return h.runSim(ctx, app, total, chunk, cfg, nil)
	})
}

// Simulate runs one application configuration through the harness's
// worker pool and memo cache — the entry point long-running callers
// (fgserved) use, so repeated profile requests cost one engine run.
// ctx is honored at the cancellation points a simulation has before its
// bounded engine run: waiting for a worker-pool slot, waiting on a
// memoized in-flight duplicate, and the moment a slot is acquired. A
// canceled ctx therefore never starts an engine run, but a run already
// started completes (its result stays useful to the memo cache).
func (h *Harness) Simulate(ctx context.Context, app string, total, chunk units.Bytes, cfg core.Config) (middleware.SimResult, error) {
	// Traced requests record one span per Simulate call, annotated with
	// the app — a memo hit shows up as a near-zero-duration simulate
	// span, an actual engine run as the dominant one.
	sp := reqtrace.Child(ctx, "simulate")
	res, err := h.simulate(ctx, app, total, chunk, cfg, nil)
	if sp.Traced() {
		if err != nil {
			sp.Annotate("app=" + app + " err")
		} else {
			sp.Annotate("app=" + app)
		}
	}
	sp.End()
	return res, err
}

// runSim executes one simulation while holding a worker-pool slot. The
// slot wait is context-aware: a canceled caller stops queueing for
// simulation capacity instead of holding its place in line.
func (h *Harness) runSim(ctx context.Context, app string, total, chunk units.Bytes, cfg core.Config, sink middleware.Sink) (res middleware.SimResult, err error) {
	select {
	case h.sem <- struct{}{}:
	case <-ctx.Done():
		return middleware.SimResult{}, ctx.Err()
	}
	defer func() { <-h.sem }()
	if cerr := ctx.Err(); cerr != nil {
		// The slot and the cancellation raced; prefer the cancellation —
		// nothing has been simulated yet.
		return middleware.SimResult{}, cerr
	}
	simStarted.Inc()
	a, err := apps.Get(app)
	if err != nil {
		return middleware.SimResult{}, err
	}
	spec, err := DatasetChunked(app, total, chunk)
	if err != nil {
		return middleware.SimResult{}, err
	}
	cost, err := a.Cost(spec)
	if err != nil {
		return middleware.SimResult{}, err
	}
	res, err = h.grid.SimulateOpts(cost, spec, cfg, middleware.SimOptions{Trace: sink})
	if err == nil {
		simCompleted.Inc()
		if fn := h.observer(); fn != nil {
			fn(res.Profile)
		}
	}
	return res, err
}

// repDatasetBytes is the dataset size used by the representative
// applications when measuring cross-cluster scaling factors.
const repDatasetBytes = 256 * units.MB

// scalingFactors measures the component scaling factors between the base
// cluster and the target cluster using the representative applications on
// identical configurations, per Section 3.4 of the paper. The 2×|repApps|
// profile runs are independent and go through the worker pool; across
// figures the identical representative runs are memoized, so each is
// simulated once per harness.
func (h *Harness) scalingFactors(e experiment) (core.Scaling, []core.Profile, error) {
	type repRun struct{ app, cluster string }
	var runs []repRun
	for _, rep := range e.repApps {
		for _, cl := range []string{PentiumCluster, e.targetCluster} {
			runs = append(runs, repRun{rep, cl})
		}
	}
	profiles := make([]core.Profile, len(runs))
	err := h.fanOut(len(runs), func(i int) error {
		r := runs[i]
		cfg := core.Config{
			Cluster:      r.cluster,
			DataNodes:    e.baseN,
			ComputeNodes: e.baseC,
			Bandwidth:    e.baseBW,
			DatasetBytes: repDatasetBytes,
		}
		res, err := h.simulate(context.Background(), r.app, repDatasetBytes, ChunkFor(repDatasetBytes), cfg, nil)
		if err != nil {
			return fmt.Errorf("bench: representative %s on %s: %w", r.app, r.cluster, err)
		}
		profiles[i] = res.Profile
		return nil
	})
	if err != nil {
		return core.Scaling{}, nil, err
	}
	var onA, onB []core.Profile
	for i, r := range runs {
		if r.cluster == PentiumCluster {
			onA = append(onA, profiles[i])
		} else {
			onB = append(onB, profiles[i])
		}
	}
	s, err := core.ComputeScaling(onA, onB)
	return s, onB, err
}

// Run regenerates one figure. The 14 grid cells are independent
// simulations and fan out over the worker pool; the base profile and
// (for cross-cluster figures) the scaling factors are computed first
// because every cell's prediction depends on them.
func (h *Harness) Run(id string) (Figure, error) {
	e, ok := experiments()[id]
	if !ok {
		return Figure{}, fmt.Errorf("bench: unknown figure %q (have %v)", id, FigureIDs())
	}
	a, err := apps.Get(e.app)
	if err != nil {
		return Figure{}, err
	}

	baseCfg := core.Config{
		Cluster:      PentiumCluster,
		DataNodes:    e.baseN,
		ComputeNodes: e.baseC,
		Bandwidth:    e.baseBW,
		DatasetBytes: e.baseBytes,
	}
	chunk := ChunkFor(e.baseBytes)
	col := middleware.NewCollector()
	baseRes, err := h.simulate(context.Background(), e.app, e.baseBytes, chunk, baseCfg, col)
	if err != nil {
		return Figure{}, fmt.Errorf("bench: %s base profile: %w", id, err)
	}

	pred, err := core.NewPredictor(baseRes.Profile, a.Model)
	if err != nil {
		return Figure{}, err
	}
	for cl, cal := range h.links {
		pred.Links[cl] = cal
	}

	fig := Figure{
		ID:         id,
		Title:      e.title,
		App:        e.app,
		Variants:   e.variants,
		BasePhases: phaseTotals(col),
		Notes: []string{
			fmt.Sprintf("base profile: %v (T_exec %v)", baseCfg, baseRes.Profile.Texec().Round(time.Millisecond)),
			fmt.Sprintf("target: %v @ %v on %s", e.targetBytes, e.targetBW, e.targetCluster),
			fmt.Sprintf("app model: RO %v, global %v", a.Model.RO, a.Model.Global),
		},
	}

	if e.targetCluster != PentiumCluster {
		scaling, _, err := h.scalingFactors(e)
		if err != nil {
			return Figure{}, fmt.Errorf("bench: %s scaling factors: %w", id, err)
		}
		pred.Scalings[e.targetCluster] = scaling
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"scaling factors from %v: s_d=%.3f s_n=%.3f s_c=%.3f",
			e.repApps, scaling.Disk, scaling.Network, scaling.Compute))
	}

	grid := ConfigGrid()
	cells := make([]Cell, len(grid))
	err = h.fanOut(len(grid), func(i int) error {
		cell, err := h.runCell(e, pred, chunk, grid[i])
		if err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	fig.Cells = cells
	return fig, nil
}

// runCell simulates one grid configuration and predicts it with every
// plotted variant. Predictor.Predict is pure, so concurrent cells may
// share one predictor.
func (h *Harness) runCell(e experiment, pred *core.Predictor, chunk units.Bytes, nc [2]int) (Cell, error) {
	cfg := core.Config{
		Cluster:      e.targetCluster,
		DataNodes:    nc[0],
		ComputeNodes: nc[1],
		Bandwidth:    e.targetBW,
		DatasetBytes: e.targetBytes,
	}
	actual, err := h.simulate(context.Background(), e.app, e.targetBytes, chunk, cfg, nil)
	if err != nil {
		return Cell{}, fmt.Errorf("bench: %s actual %d-%d: %w", e.id, nc[0], nc[1], err)
	}
	cell := Cell{
		DataNodes:    nc[0],
		ComputeNodes: nc[1],
		Actual:       actual.Makespan,
		Predicted:    make(map[core.Variant]time.Duration, len(e.variants)),
		Errors:       make(map[core.Variant]float64, len(e.variants)),
	}
	for _, v := range e.variants {
		p, err := pred.Predict(cfg, v)
		if err != nil {
			return Cell{}, fmt.Errorf("bench: %s predict %d-%d %v: %w", e.id, nc[0], nc[1], v, err)
		}
		cell.Predicted[v] = p.Texec()
		cell.Errors[v] = stats.RelError(actual.Makespan.Seconds(), p.Texec().Seconds())
	}
	return cell, nil
}

// RunAll regenerates every figure in paper order. Whole figures fan out
// concurrently on top of the per-figure cell fan-out; the worker pool
// bounds total simulation concurrency either way, and the output is
// identical to a serial run because every figure slots into its paper
// position.
func (h *Harness) RunAll() ([]Figure, error) {
	ids := FigureIDs()
	out := make([]Figure, len(ids))
	err := h.fanOut(len(ids), func(i int) error {
		fig, err := h.Run(ids[i])
		if err != nil {
			return err
		}
		out[i] = fig
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
