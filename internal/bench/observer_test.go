package bench

import (
	"context"
	"sync"
	"testing"

	"freerideg/internal/core"
	"freerideg/internal/profile"
	"freerideg/internal/units"
)

func observerConfig(total units.Bytes) core.Config {
	return core.Config{
		Cluster:      PentiumCluster,
		DataNodes:    1,
		ComputeNodes: 2,
		Bandwidth:    100 * units.MBPerSec,
		DatasetBytes: total,
	}
}

// TestObserverSeesEachDistinctRunOnce checks the observer contract: one
// callback per executed simulation, none for memoized repeats, none
// after the observer is removed.
func TestObserverSeesEachDistinctRunOnce(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []core.Profile
	h.SetObserver(func(p core.Profile) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})

	total := 64 * units.MB
	if _, err := h.Simulate(context.Background(), "kmeans", total, ChunkFor(total), observerConfig(total)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("observations after one run: %d, want 1", len(got))
	}
	if got[0].App != "kmeans" || got[0].Config != observerConfig(total) {
		t.Fatalf("observed profile = %+v", got[0])
	}

	// An identical run replays from the memo cache: no new observation.
	if _, err := h.Simulate(context.Background(), "kmeans", total, ChunkFor(total), observerConfig(total)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("memoized repeat re-observed: %d observations", len(got))
	}

	// A removed observer sees nothing, even for fresh runs.
	h.SetObserver(nil)
	small := 32 * units.MB
	if _, err := h.Simulate(context.Background(), "kmeans", small, ChunkFor(small), observerConfig(small)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("removed observer still called: %d observations", len(got))
	}
}

// TestObserverFeedsProfileStore wires a harness into a profile store so
// simulated runs become calibration samples — the sweep-as-corpus hook.
func TestObserverFeedsProfileStore(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	store, err := profile.NewStore(core.ProfileStore{}, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h.SetObserver(store.Observer())

	total := 64 * units.MB
	for _, app := range []string{"kmeans", "knn"} {
		if _, err := h.Simulate(context.Background(), app, total, ChunkFor(total), observerConfig(total)); err != nil {
			t.Fatal(err)
		}
	}
	snap := store.Snapshot()
	if snap.Version() == 0 {
		t.Fatal("store version did not advance after observed runs")
	}
	for _, app := range []string{"kmeans", "knn"} {
		if _, _, ok := snap.Find(app); !ok {
			t.Fatalf("store did not adopt %q from the observed sweep", app)
		}
	}
}
