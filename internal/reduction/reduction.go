// Package reduction defines the FREERIDE-G programming model: applications
// are expressed as generalized reductions. During each pass, data elements
// are read in arbitrary order, each element updates a reduction object
// through associative and commutative operators, per-node objects are
// communicated after local reduction, and a global reduction combines them.
//
// An application supplies a Kernel (the real computation, used by the
// goroutine backend, tests, and examples) and a CostModel (the analytic
// work description, used by the simulated backend that stands in for the
// paper's physical clusters).
package reduction

import (
	"encoding"
	"fmt"

	"freerideg/internal/adr"
	"freerideg/internal/units"
)

// Payload is one chunk's worth of data delivered to a compute node.
type Payload struct {
	Chunk  adr.Chunk
	Fields int       // float64 values per element
	Values []float64 // element-major, len = Chunk.Elems * Fields

	// HaloBefore and HaloAfter hold overlapping data instances from the
	// neighbouring partitions (the paper's vortex decomposition overlaps
	// partitions so stencil detection needs no communication). They are
	// filled by the backends only for kernels that implement
	// OverlapRequester, and are empty at the dataset's edges.
	HaloBefore []float64
	HaloAfter  []float64
}

// Elem returns element e of the payload as a slice of its fields.
func (p Payload) Elem(e int64) []float64 {
	return p.Values[e*int64(p.Fields) : (e+1)*int64(p.Fields)]
}

// Validate reports whether the payload shape is consistent.
func (p Payload) Validate() error {
	if p.Fields <= 0 {
		return fmt.Errorf("reduction: payload for chunk %d has %d fields", p.Chunk.Index, p.Fields)
	}
	if int64(len(p.Values)) != p.Chunk.Elems*int64(p.Fields) {
		return fmt.Errorf("reduction: payload for chunk %d has %d values, want %d",
			p.Chunk.Index, len(p.Values), p.Chunk.Elems*int64(p.Fields))
	}
	if len(p.HaloBefore)%p.Fields != 0 || len(p.HaloAfter)%p.Fields != 0 {
		return fmt.Errorf("reduction: payload for chunk %d has ragged halos (%d, %d values with %d fields)",
			p.Chunk.Index, len(p.HaloBefore), len(p.HaloAfter), p.Fields)
	}
	return nil
}

// HaloBeforeElems reports the number of whole elements in HaloBefore.
func (p Payload) HaloBeforeElems() int64 { return int64(len(p.HaloBefore) / p.Fields) }

// HaloAfterElems reports the number of whole elements in HaloAfter.
func (p Payload) HaloAfterElems() int64 { return int64(len(p.HaloAfter) / p.Fields) }

// Object is a reduction object: the accumulator updated by local reduction
// and combined across nodes. Merge must be associative and commutative
// so nodes can combine objects in any order.
type Object interface {
	// Merge folds another object of the same concrete type into this one.
	Merge(other Object) error
	// Bytes reports the object's serialized size, the quantity the paper's
	// communication model is linear in.
	Bytes() units.Bytes
}

// BinaryObject is an Object that can cross a process boundary. The local
// backend round-trips objects through this encoding to mimic the data
// server/compute server split.
type BinaryObject interface {
	Object
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// Kernel is one application run. Kernels are stateful: GlobalReduce
// updates internal state (cluster centers, catalogs, ...) between passes.
// A Kernel must only be driven by one runner at a time, though
// ProcessChunk may be called concurrently on distinct Objects.
type Kernel interface {
	// Name identifies the application ("kmeans", "em", ...).
	Name() string
	// NewObject returns a fresh local reduction object for the current pass.
	NewObject() Object
	// ProcessChunk folds a chunk into a local reduction object.
	ProcessChunk(p Payload, obj Object) error
	// GlobalReduce consumes the fully merged object, updates kernel state,
	// and reports whether the computation has converged.
	GlobalReduce(merged Object) (done bool, err error)
	// Iterations is the fixed number of passes the application performs
	// (kept deterministic so profile and target runs agree).
	Iterations() int
}

// OverlapRequester is implemented by kernels whose local reduction needs
// overlapping data instances from neighbouring partitions (stencil-based
// feature detection). OverlapElems reports how many elements of overlap
// each chunk needs on each side.
type OverlapRequester interface {
	OverlapElems() int64
}

// WorkMix is an application's instruction mix. Clusters execute mixes at
// different per-category rates, which is what makes per-application
// cross-cluster scaling factors differ (the paper observed 0.233–0.370).
// The three shares should sum to 1.
type WorkMix struct {
	Flop   float64 // floating-point heavy work
	Mem    float64 // memory-bound work
	Branch float64 // control-flow heavy work
}

// Normalize scales the mix so the shares sum to 1. A zero mix becomes
// pure Flop.
func (m WorkMix) Normalize() WorkMix {
	total := m.Flop + m.Mem + m.Branch
	if total <= 0 {
		return WorkMix{Flop: 1}
	}
	return WorkMix{Flop: m.Flop / total, Mem: m.Mem / total, Branch: m.Branch / total}
}

// CostModel is the analytic work description of an application, consumed
// by the simulated backend. The functions depend only on the dataset's
// element count and the compute-node count so simulated runs never need
// to materialize data.
type CostModel struct {
	// Name matches the Kernel name.
	Name string
	// Mix is the application's instruction mix.
	Mix WorkMix
	// OpsPerElem is the local-reduction work per element per pass,
	// in abstract operations.
	OpsPerElem float64
	// Iterations is the number of passes.
	Iterations int
	// ROBytesPerNode reports the per-node reduction object size for a run
	// over totalElems elements on c compute nodes.
	ROBytesPerNode func(totalElems int64, c int) units.Bytes
	// GlobalOps reports the master's global-reduction work per pass,
	// in abstract operations (charged serially).
	GlobalOps func(totalElems int64, c int) float64
	// BroadcastBytes is the per-pass volume re-broadcast from the master
	// to every other compute node after global reduction.
	BroadcastBytes units.Bytes
}

// Validate reports whether the cost model is usable.
func (m CostModel) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("reduction: cost model without name")
	case m.OpsPerElem <= 0:
		return fmt.Errorf("reduction: cost model %q has non-positive OpsPerElem", m.Name)
	case m.Iterations < 1:
		return fmt.Errorf("reduction: cost model %q has %d iterations", m.Name, m.Iterations)
	case m.ROBytesPerNode == nil:
		return fmt.Errorf("reduction: cost model %q lacks ROBytesPerNode", m.Name)
	case m.GlobalOps == nil:
		return fmt.Errorf("reduction: cost model %q lacks GlobalOps", m.Name)
	}
	return nil
}
