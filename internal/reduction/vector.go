package reduction

import (
	"encoding/binary"
	"fmt"
	"math"

	"freerideg/internal/units"
)

// VectorObject is a reduction object holding a fixed-length float64 vector
// combined by element-wise addition. It covers the accumulators of the
// clustering applications (per-cluster sums, counts, sufficient
// statistics).
type VectorObject struct {
	V []float64
}

// NewVectorObject returns a zeroed vector accumulator of length n.
func NewVectorObject(n int) *VectorObject {
	return &VectorObject{V: make([]float64, n)}
}

// Merge adds the other vector element-wise.
func (o *VectorObject) Merge(other Object) error {
	v, ok := other.(*VectorObject)
	if !ok {
		return fmt.Errorf("reduction: cannot merge %T into VectorObject", other)
	}
	if len(v.V) != len(o.V) {
		return fmt.Errorf("reduction: vector length mismatch %d vs %d", len(v.V), len(o.V))
	}
	for i := range o.V {
		o.V[i] += v.V[i]
	}
	return nil
}

// Bytes reports the serialized size (8 bytes per value).
func (o *VectorObject) Bytes() units.Bytes {
	return units.Bytes(8 * len(o.V))
}

// MarshalBinary encodes the vector as little-endian float64 bits.
func (o *VectorObject) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8*len(o.V))
	for i, v := range o.V {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf, nil
}

// UnmarshalBinary decodes little-endian float64 bits.
func (o *VectorObject) UnmarshalBinary(data []byte) error {
	if len(data)%8 != 0 {
		return fmt.Errorf("reduction: vector encoding length %d not a multiple of 8", len(data))
	}
	o.V = make([]float64, len(data)/8)
	for i := range o.V {
		o.V[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return nil
}

var _ BinaryObject = (*VectorObject)(nil)

// FloatsObject is a variable-length reduction object combined by
// concatenation: merging appends the other object's values. It covers
// feature lists (vortices, defects) and deferred per-chunk statistics,
// whose size grows with the data reduced.
type FloatsObject struct {
	Stride int // values per record; 0 means untyped concatenation
	V      []float64
}

// NewFloatsObject returns an empty concatenation accumulator whose records
// are stride values wide.
func NewFloatsObject(stride int) *FloatsObject {
	return &FloatsObject{Stride: stride}
}

// Append adds one record; the record length must equal the stride.
func (o *FloatsObject) Append(record ...float64) error {
	if o.Stride > 0 && len(record) != o.Stride {
		return fmt.Errorf("reduction: record of %d values appended to stride-%d object", len(record), o.Stride)
	}
	o.V = append(o.V, record...)
	return nil
}

// Records reports the number of complete records held.
func (o *FloatsObject) Records() int {
	if o.Stride <= 0 {
		return len(o.V)
	}
	return len(o.V) / o.Stride
}

// Record returns the i-th record.
func (o *FloatsObject) Record(i int) []float64 {
	return o.V[i*o.Stride : (i+1)*o.Stride]
}

// Merge concatenates the other object's values.
func (o *FloatsObject) Merge(other Object) error {
	v, ok := other.(*FloatsObject)
	if !ok {
		return fmt.Errorf("reduction: cannot merge %T into FloatsObject", other)
	}
	if v.Stride != o.Stride {
		return fmt.Errorf("reduction: stride mismatch %d vs %d", v.Stride, o.Stride)
	}
	o.V = append(o.V, v.V...)
	return nil
}

// Bytes reports the serialized size (8 bytes per value plus the stride
// header).
func (o *FloatsObject) Bytes() units.Bytes {
	return units.Bytes(8*len(o.V) + 8)
}

// MarshalBinary encodes the stride followed by the values.
func (o *FloatsObject) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8+8*len(o.V))
	binary.LittleEndian.PutUint64(buf, uint64(o.Stride))
	for i, v := range o.V {
		binary.LittleEndian.PutUint64(buf[8+i*8:], math.Float64bits(v))
	}
	return buf, nil
}

// UnmarshalBinary decodes a MarshalBinary encoding.
func (o *FloatsObject) UnmarshalBinary(data []byte) error {
	if len(data) < 8 || (len(data)-8)%8 != 0 {
		return fmt.Errorf("reduction: floats encoding has invalid length %d", len(data))
	}
	o.Stride = int(binary.LittleEndian.Uint64(data))
	o.V = make([]float64, (len(data)-8)/8)
	for i := range o.V {
		o.V[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+i*8:]))
	}
	return nil
}

var _ BinaryObject = (*FloatsObject)(nil)
