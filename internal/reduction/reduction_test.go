package reduction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"freerideg/internal/adr"
	"freerideg/internal/units"
)

func TestPayloadElemAndValidate(t *testing.T) {
	p := Payload{
		Chunk:  adr.Chunk{Index: 0, Elems: 3},
		Fields: 2,
		Values: []float64{1, 2, 3, 4, 5, 6},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if e := p.Elem(1); e[0] != 3 || e[1] != 4 {
		t.Fatalf("Elem(1) = %v, want [3 4]", e)
	}
	bad := p
	bad.Values = bad.Values[:4]
	if err := bad.Validate(); err == nil {
		t.Error("short payload validated")
	}
	bad2 := p
	bad2.Fields = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero-field payload validated")
	}
}

func TestVectorObjectMerge(t *testing.T) {
	a := &VectorObject{V: []float64{1, 2, 3}}
	b := &VectorObject{V: []float64{10, 20, 30}}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33}
	for i, w := range want {
		if a.V[i] != w {
			t.Fatalf("merged[%d] = %v, want %v", i, a.V[i], w)
		}
	}
}

func TestVectorObjectMergeErrors(t *testing.T) {
	a := NewVectorObject(3)
	if err := a.Merge(NewVectorObject(4)); err == nil {
		t.Error("length mismatch merged")
	}
	if err := a.Merge(NewFloatsObject(1)); err == nil {
		t.Error("cross-type merge accepted")
	}
}

func TestVectorObjectBytes(t *testing.T) {
	if got := NewVectorObject(10).Bytes(); got != 80*units.Byte {
		t.Fatalf("Bytes() = %v, want 80", got)
	}
}

func TestVectorObjectRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		o := &VectorObject{V: raw}
		enc, err := o.MarshalBinary()
		if err != nil {
			return false
		}
		var back VectorObject
		if err := back.UnmarshalBinary(enc); err != nil {
			return false
		}
		if len(back.V) != len(raw) {
			return false
		}
		for i := range raw {
			// NaN-safe bit comparison through re-encoding.
			if raw[i] != back.V[i] && !(raw[i] != raw[i] && back.V[i] != back.V[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorUnmarshalRejectsRaggedData(t *testing.T) {
	var o VectorObject
	if err := o.UnmarshalBinary(make([]byte, 12)); err == nil {
		t.Error("12-byte vector encoding accepted")
	}
}

func TestVectorMergeCommutative(t *testing.T) {
	f := func(x, y [4]float64) bool {
		a1 := &VectorObject{V: append([]float64(nil), x[:]...)}
		b1 := &VectorObject{V: append([]float64(nil), y[:]...)}
		a2 := &VectorObject{V: append([]float64(nil), x[:]...)}
		b2 := &VectorObject{V: append([]float64(nil), y[:]...)}
		if err := a1.Merge(b1); err != nil {
			return false
		}
		if err := b2.Merge(a2); err != nil {
			return false
		}
		for i := range a1.V {
			if a1.V[i] != b2.V[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatsObjectAppendAndRecords(t *testing.T) {
	o := NewFloatsObject(3)
	if err := o.Append(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := o.Append(4, 5, 6); err != nil {
		t.Fatal(err)
	}
	if o.Records() != 2 {
		t.Fatalf("Records() = %d, want 2", o.Records())
	}
	if r := o.Record(1); r[0] != 4 || r[2] != 6 {
		t.Fatalf("Record(1) = %v", r)
	}
	if err := o.Append(1, 2); err == nil {
		t.Error("short record accepted")
	}
}

func TestFloatsObjectMergeConcatenates(t *testing.T) {
	a := NewFloatsObject(2)
	_ = a.Append(1, 2)
	b := NewFloatsObject(2)
	_ = b.Append(3, 4)
	_ = b.Append(5, 6)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Records() != 3 {
		t.Fatalf("merged records = %d, want 3", a.Records())
	}
	if err := a.Merge(NewFloatsObject(5)); err == nil {
		t.Error("stride mismatch merged")
	}
	if err := a.Merge(NewVectorObject(1)); err == nil {
		t.Error("cross-type merge accepted")
	}
}

func TestFloatsObjectMergeAssociativeInSize(t *testing.T) {
	// (a+b)+c and a+(b+c) must hold the same multiset of records; for
	// concatenation we check total size and content as sorted flats.
	rng := rand.New(rand.NewSource(7))
	mk := func(n int) *FloatsObject {
		o := NewFloatsObject(1)
		for i := 0; i < n; i++ {
			_ = o.Append(rng.Float64())
		}
		return o
	}
	a, b, c := mk(3), mk(4), mk(5)
	left := NewFloatsObject(1)
	_ = left.Merge(a)
	_ = left.Merge(b)
	_ = left.Merge(c)
	bc := NewFloatsObject(1)
	_ = bc.Merge(b)
	_ = bc.Merge(c)
	right := NewFloatsObject(1)
	_ = right.Merge(a)
	_ = right.Merge(bc)
	if left.Records() != right.Records() || left.Records() != 12 {
		t.Fatalf("association changed record count: %d vs %d", left.Records(), right.Records())
	}
}

func TestFloatsObjectRoundTrip(t *testing.T) {
	o := NewFloatsObject(2)
	_ = o.Append(1.5, -2.5)
	_ = o.Append(3.25, 4.75)
	enc, err := o.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back FloatsObject
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if back.Stride != 2 || back.Records() != 2 {
		t.Fatalf("round trip lost shape: stride=%d records=%d", back.Stride, back.Records())
	}
	if back.Record(1)[1] != 4.75 {
		t.Fatalf("round trip lost values: %v", back.V)
	}
	if err := back.UnmarshalBinary(make([]byte, 4)); err == nil {
		t.Error("truncated encoding accepted")
	}
}

func TestFloatsObjectBytesTracksGrowth(t *testing.T) {
	o := NewFloatsObject(4)
	before := o.Bytes()
	_ = o.Append(1, 2, 3, 4)
	if o.Bytes() != before+32 {
		t.Fatalf("Bytes() after append = %v, want %v", o.Bytes(), before+32)
	}
}

func TestWorkMixNormalize(t *testing.T) {
	m := WorkMix{Flop: 2, Mem: 1, Branch: 1}.Normalize()
	if m.Flop != 0.5 || m.Mem != 0.25 || m.Branch != 0.25 {
		t.Fatalf("Normalize() = %+v", m)
	}
	z := WorkMix{}.Normalize()
	if z.Flop != 1 {
		t.Fatalf("zero mix normalized to %+v, want pure Flop", z)
	}
}

func TestCostModelValidate(t *testing.T) {
	ok := CostModel{
		Name:           "x",
		OpsPerElem:     1,
		Iterations:     1,
		ROBytesPerNode: func(int64, int) units.Bytes { return 8 },
		GlobalOps:      func(int64, int) float64 { return 1 },
	}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CostModel{
		{},
		{Name: "x", OpsPerElem: 0, Iterations: 1},
		{Name: "x", OpsPerElem: 1, Iterations: 0},
		{Name: "x", OpsPerElem: 1, Iterations: 1},
		{Name: "x", OpsPerElem: 1, Iterations: 1, ROBytesPerNode: func(int64, int) units.Bytes { return 0 }},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad cost model %d validated", i)
		}
	}
}
