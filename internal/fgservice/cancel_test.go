package fgservice

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"freerideg/internal/core"
	"freerideg/internal/metrics"
	"freerideg/internal/units"
)

// postJSONCtx is postJSON with a caller-owned request context, for tests
// that cancel a request mid-handling.
func postJSONCtx(ctx context.Context, h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestTimeoutAnswersJSONEnvelope pins the 504 path: a request that
// exhausts its deadline budget gets a parseable JSON error envelope (the
// old http.TimeoutHandler wrote plain text no client of this API could
// decode) and moves the per-endpoint deadline counter.
func TestTimeoutAnswersJSONEnvelope(t *testing.T) {
	s, err := New(Options{Store: testStore(t), MaxInFlight: 4, RequestTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.delay = 2 * time.Second
	deadlines := metrics.GetCounter("fg_requests_deadline_exceeded_total",
		"Requests that exhausted the per-request deadline budget and answered 504, by endpoint.",
		metrics.Label{Key: "path", Value: "/predict"})
	before := deadlines.Value()

	body := `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"512MB"}}`
	rec := postJSON(t, s.Handler(), "/predict", body)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request: status %d, want 504: %s", rec.Code, rec.Body)
	}
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("504 body is not a JSON error envelope: %v\n%s", err, rec.Body)
	}
	if e.Status != http.StatusGatewayTimeout || e.Error == "" {
		t.Fatalf("504 envelope = %+v", e)
	}
	if after := deadlines.Value(); after != before+1 {
		t.Fatalf("deadline counter moved %v -> %v, want +1", before, after)
	}
	// Both outcome counters must be visible in the exposition.
	metricsOut := getPath(t, s.Handler(), "/metrics").Body.String()
	for _, name := range []string{"fg_requests_deadline_exceeded_total", "fg_requests_canceled_total"} {
		if !strings.Contains(metricsOut, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// TestClientDisconnectFreesLimiterSlot is the regression test for the
// stuck-slot bug: with one concurrency slot and a slow handler, a client
// that disconnects mid-/select must free the slot promptly — the next
// request gets handled instead of being shed with 503 for the rest of
// the abandoned request's (long) deadline.
func TestClientDisconnectFreesLimiterSlot(t *testing.T) {
	s, err := New(Options{Store: testStore(t), MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.delay = 30 * time.Second // far beyond the test's patience: only cancellation can free the slot
	h := s.Handler()
	canceledCtr := metrics.GetCounter("fg_requests_canceled_total",
		"Requests abandoned because the client disconnected mid-handling, by endpoint.",
		metrics.Label{Key: "path", Value: "/select"})
	before := canceledCtr.Value()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := `{"app":"kmeans","size":"512MB"}`
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postJSONCtx(ctx, h, "/select", body) }()

	// Wait until the first request holds the only slot.
	waitFor(t, time.Second, func() bool { return s.lim.saturated() })
	if code := postJSON(t, h, "/select", body).Code; code != http.StatusServiceUnavailable {
		t.Fatalf("second request while slot held: status %d, want 503", code)
	}

	cancel()
	rec := <-first
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("abandoned request: status %d, want 499: %s", rec.Code, rec.Body)
	}
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Status != StatusClientClosedRequest {
		t.Fatalf("499 body is not the JSON envelope (%v): %s", err, rec.Body)
	}
	if after := canceledCtr.Value(); after != before+1 {
		t.Fatalf("canceled counter moved %v -> %v, want +1", before, after)
	}

	// The slot must come back without waiting out the 30s delay: the
	// handler goroutine unwinds on ctx and releases it.
	waitFor(t, 2*time.Second, func() bool { return !s.lim.saturated() })
	// And a fresh request is admitted again. Its handler still runs
	// against the long test delay, so bound it with its own deadline:
	// 504 proves it got the slot; only a 503 would mean a stuck slot.
	ctx3, cancel3 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel3()
	if code := postJSONCtx(ctx3, h, "/select", body).Code; code != http.StatusGatewayTimeout {
		t.Fatalf("request after slot freed: status %d, want 504 (admitted, then its own deadline)", code)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBatchCancelStopsClaiming is the regression test for the
// keeps-working-after-cancel bug: a canceled /select/batch must stop
// claiming new items. Every unknown app in the batch costs one profiling
// simulation, so the simulation count is the observable: with serial
// item claiming and a cancel fired from inside the first item's
// profiling run, exactly one simulation may ever start, and every
// unclaimed item must answer a distinct 499-style per-item error rather
// than ride along as a silent empty success.
func TestBatchCancelStopsClaiming(t *testing.T) {
	s, err := New(Options{
		Store:            testStore(t),
		MaxInFlight:      4,
		BatchParallelism: 1,
		DisableCache:     true,
		BaseBytes:        8 * units.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sims atomic.Int32
	s.harness.SetObserver(func(core.Profile) {
		sims.Add(1)
		cancel() // the client departs while item 0 is still profiling
	})

	// None of these apps are in the test store, so each item profiles.
	apps := []string{"ann", "apriori", "em", "knn", "vortex", "defect"}
	items := make([]string, len(apps))
	for i, app := range apps {
		items[i] = fmt.Sprintf(`{"app":%q,"size":"32MB"}`, app)
	}
	body := `{"items":[` + strings.Join(items, ",") + `]}`

	// Call the batch handler directly (no middleware) so the test
	// observes the handler's own synchronous completion.
	req := httptest.NewRequest(http.MethodPost, "/select/batch", strings.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.handleSelectBatch(rec, req)

	if got := sims.Load(); got != 1 {
		t.Fatalf("canceled batch ran %d profiling simulations, want 1 (it must stop claiming items)", got)
	}
	var resp SelectBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding batch response: %v\n%s", err, rec.Body)
	}
	if len(resp.Items) != len(apps) {
		t.Fatalf("%d items in response, want %d", len(resp.Items), len(apps))
	}
	for i, item := range resp.Items {
		if item.Response != nil {
			t.Errorf("item %d: unexpected success after cancel", i)
			continue
		}
		if item.Error == nil {
			t.Errorf("item %d: no response and no error — a silent empty item", i)
			continue
		}
		if item.Error.Status != StatusClientClosedRequest {
			t.Errorf("item %d: error status %d, want 499: %s", i, item.Error.Status, item.Error.Error)
		}
		if i > 0 && !strings.Contains(item.Error.Error, "not evaluated") {
			t.Errorf("item %d: unclaimed item error %q does not say it was never evaluated", i, item.Error.Error)
		}
	}
}
