package fgservice

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"freerideg/internal/apps"
	"freerideg/internal/metrics"
	"freerideg/internal/reqtrace"
	"freerideg/internal/units"
)

// The batch serve plane: POST /predict/batch and /select/batch accept
// up to MaxBatchItems requests in one HTTP exchange. The profile-store
// snapshot version and estimator epoch are resolved once per batch, the
// items fan across the server's persistent worker pool, and one
// response array streams back. Each item still goes through the
// versioned response cache individually, so a batch both benefits from
// and fills the same cache the singular endpoints use.
//
// What a batch amortizes versus N sequential requests: N-1 HTTP
// round-trips with their per-request handler stack (timeout handler,
// instrumentation, concurrency limiter), N-1 body decodes and response
// encodes, and N-1 snapshot-version resolutions.

// MaxBatchItems bounds one batch request's item count. 256 items of the
// largest legitimate item shape stay well under MaxRequestBody, and a
// larger batch holds the concurrency limiter slot for too long.
const MaxBatchItems = 256

// Batch metrics: request/item volume and how many items failed.
var (
	batchRequests = metrics.GetCounter("fg_batch_requests_total",
		"Batch requests accepted on /predict/batch and /select/batch.")
	batchItems = metrics.GetCounter("fg_batch_items_total",
		"Items evaluated across all batch requests.")
	batchItemErrors = metrics.GetCounter("fg_batch_item_errors_total",
		"Batch items that answered with a per-item error.")
)

// PredictBatchRequest carries up to MaxBatchItems predict requests.
type PredictBatchRequest struct {
	Items []PredictRequest `json:"items"`
}

// PredictBatchItem is one item's outcome: exactly one of Response and
// Error is set. Status mirrors the HTTP status the singular endpoint
// would have answered with.
type PredictBatchItem struct {
	Response *PredictResponse `json:"response,omitempty"`
	Error    *apiError        `json:"error,omitempty"`
}

// PredictBatchResponse answers one batch. StoreVersion is the snapshot
// version every item in the batch was served at.
type PredictBatchResponse struct {
	StoreVersion uint64             `json:"storeVersion"`
	Items        []PredictBatchItem `json:"items"`
}

// SelectBatchRequest carries up to MaxBatchItems select requests.
type SelectBatchRequest struct {
	Items []SelectRequest `json:"items"`
}

// SelectBatchItem is one item's outcome (see PredictBatchItem).
type SelectBatchItem struct {
	Response *SelectResponse `json:"response,omitempty"`
	Error    *apiError       `json:"error,omitempty"`
}

// SelectBatchResponse answers one batch.
type SelectBatchResponse struct {
	StoreVersion uint64            `json:"storeVersion"`
	Items        []SelectBatchItem `json:"items"`
}

// checkBatchSize validates the item count shared by both batch
// endpoints.
func checkBatchSize(n int) error {
	switch {
	case n == 0:
		return errors.New("batch: items is empty")
	case n > MaxBatchItems:
		return fmt.Errorf("batch: %d items exceeds the limit of %d", n, MaxBatchItems)
	}
	return nil
}

// itemError renders one item's failure the way the singular endpoint
// would have: the same message with the same status code. Per-item
// envelopes carry no requestId — the batch's single ID rides the
// response header and identifies every item.
func itemError(status int, err error) *apiError {
	batchItemErrors.Inc()
	return &apiError{Error: err.Error(), Status: status}
}

// itemSpan opens one batch item's span under the request's handler span
// and returns the derived context the item's cache/rank/simulate spans
// nest under. finish annotates the span with the positional index and
// the item's outcome ("i=3 ok", "i=7 status=404").
func itemSpan(ctx context.Context, i int) (context.Context, func(errStatus int)) {
	ictx, sp := reqtrace.StartSpan(ctx, "item")
	if !sp.Traced() {
		return ctx, func(int) {}
	}
	return ictx, func(errStatus int) {
		note := "i=" + strconv.Itoa(i)
		if errStatus != 0 {
			note += " status=" + strconv.Itoa(errStatus)
		} else {
			note += " ok"
		}
		sp.Annotate(note)
		sp.End()
	}
}

// sweepUnstarted marks every item the canceled batch never claimed with
// a distinct per-item error (499 for a departed client, 504 for an
// exhausted deadline), so a partial batch response never carries items
// that silently look like empty successes. check reports whether item i
// was evaluated; mark stores the error.
func sweepUnstarted(ctx context.Context, n int, evaluated func(i int) bool, mark func(i int, e *apiError)) {
	cause := ctx.Err()
	if cause == nil {
		return
	}
	err := fmt.Errorf("batch: item not evaluated: %w", cause)
	status := errorStatus(cause)
	for i := 0; i < n; i++ {
		if !evaluated(i) {
			mark(i, itemError(status, err))
		}
	}
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	var req PredictBatchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := checkBatchSize(len(req.Items)); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	batchRequests.Inc()
	batchItems.Add(float64(len(req.Items)))

	// One snapshot resolution for the whole batch: every item is served
	// (and cached) at this version.
	ver := s.store.Snapshot().Version()
	resp := PredictBatchResponse{
		StoreVersion: ver,
		Items:        make([]PredictBatchItem, len(req.Items)),
	}
	ctx := r.Context()
	if err := s.batchPool.RunCtx(ctx, len(req.Items), s.opts.BatchParallelism, func(i int) {
		ictx, finish := itemSpan(ctx, i)
		resp.Items[i] = s.predictBatchItem(ictx, req.Items[i], ver)
		if e := resp.Items[i].Error; e != nil {
			finish(e.Status)
		} else {
			finish(0)
		}
	}); err != nil {
		sweepUnstarted(ctx, len(resp.Items),
			func(i int) bool { return resp.Items[i].Response != nil || resp.Items[i].Error != nil },
			func(i int, e *apiError) { resp.Items[i].Error = e })
	}
	writeJSONCtx(ctx, w, http.StatusOK, resp)
}

// predictBatchItem evaluates one batch item, mirroring handlePredict's
// validation order and status codes. The leading ctx check closes the
// race where the pool claimed this index just as the request ended:
// the item answers the cancellation error instead of computing an
// answer nobody reads.
func (s *Server) predictBatchItem(ctx context.Context, item PredictRequest, ver uint64) PredictBatchItem {
	if err := ctx.Err(); err != nil {
		return PredictBatchItem{Error: itemError(errorStatus(err), err)}
	}
	v, err := s.requestVariant(item.Variant)
	if err != nil {
		return PredictBatchItem{Error: itemError(http.StatusBadRequest, err)}
	}
	cfg, err := item.Config.Config()
	if err != nil {
		return PredictBatchItem{Error: itemError(http.StatusBadRequest, err)}
	}
	if err := cfg.Validate(); err != nil {
		return PredictBatchItem{Error: itemError(http.StatusBadRequest, err)}
	}
	if _, err := apps.Get(item.App); err != nil {
		return PredictBatchItem{Error: itemError(http.StatusNotFound, err)}
	}
	out, err := s.predictResponseAt(ctx, item.App, v, cfg, ver)
	if err != nil {
		return PredictBatchItem{Error: itemError(errorStatus(err), err)}
	}
	return PredictBatchItem{Response: &out}
}

func (s *Server) handleSelectBatch(w http.ResponseWriter, r *http.Request) {
	var req SelectBatchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := checkBatchSize(len(req.Items)); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	batchRequests.Inc()
	batchItems.Add(float64(len(req.Items)))

	ver := s.store.Snapshot().Version()
	resp := SelectBatchResponse{
		StoreVersion: ver,
		Items:        make([]SelectBatchItem, len(req.Items)),
	}
	ctx := r.Context()
	if err := s.batchPool.RunCtx(ctx, len(req.Items), s.opts.BatchParallelism, func(i int) {
		ictx, finish := itemSpan(ctx, i)
		resp.Items[i] = s.selectBatchItem(ictx, req.Items[i], ver)
		if e := resp.Items[i].Error; e != nil {
			finish(e.Status)
		} else {
			finish(0)
		}
	}); err != nil {
		sweepUnstarted(ctx, len(resp.Items),
			func(i int) bool { return resp.Items[i].Response != nil || resp.Items[i].Error != nil },
			func(i int, e *apiError) { resp.Items[i].Error = e })
	}
	writeJSONCtx(ctx, w, http.StatusOK, resp)
}

// selectBatchItem evaluates one batch item, mirroring handleSelect's
// validation order, status codes, and per-request Limit truncation (and
// predictBatchItem's leading ctx check).
func (s *Server) selectBatchItem(ctx context.Context, item SelectRequest, ver uint64) SelectBatchItem {
	if err := ctx.Err(); err != nil {
		return SelectBatchItem{Error: itemError(errorStatus(err), err)}
	}
	v, err := s.requestVariant(item.Variant)
	if err != nil {
		return SelectBatchItem{Error: itemError(http.StatusBadRequest, err)}
	}
	total, err := units.ParseBytes(item.Size)
	if err != nil {
		return SelectBatchItem{Error: itemError(http.StatusBadRequest, err)}
	}
	var deadline time.Duration
	if item.Deadline != "" {
		deadline, err = time.ParseDuration(item.Deadline)
		if err != nil || deadline <= 0 {
			return SelectBatchItem{Error: itemError(http.StatusBadRequest,
				fmt.Errorf("deadline %q: want a positive Go duration", item.Deadline))}
		}
	}
	if _, err := apps.Get(item.App); err != nil {
		return SelectBatchItem{Error: itemError(http.StatusNotFound, err)}
	}
	out, err := s.selectResponseAt(ctx, item.App, v, total, deadline, ver)
	if err != nil {
		return SelectBatchItem{Error: itemError(errorStatus(err), err)}
	}
	// out is this item's copy of the (possibly cached, shared) value;
	// Limit truncates only this item's view of the ranking.
	if item.Limit > 0 && item.Limit < len(out.Candidates) {
		out.Candidates = out.Candidates[:item.Limit]
	}
	return SelectBatchItem{Response: &out}
}
