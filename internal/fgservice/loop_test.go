package fgservice

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"freerideg/internal/core"
	"freerideg/internal/profile"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

// TestRunsEndpointClosesTheLoop drives the run → observe → recalibrate
// → predict loop over the wire: a server seeded with a 3×-mis-scaled
// kmeans profile receives observed runs via POST /runs until the store
// recalibrates, and /predict, /profiles, and /healthz all reflect the
// corrected, version-advanced profile.
func TestRunsEndpointClosesTheLoop(t *testing.T) {
	truthDoc, err := core.LoadStore(filepath.Join("testdata", "store.json"))
	if err != nil {
		t.Fatal(err)
	}
	truth, err := core.NewPredictorFromStore(truthDoc, "kmeans", AppModelLookup("kmeans"))
	if err != nil {
		t.Fatal(err)
	}
	staleDoc := truthDoc
	staleDoc.Profiles = append([]core.Profile(nil), truthDoc.Profiles...)
	p := &staleDoc.Profiles[0]
	p.Tdisk *= 3
	p.Tnetwork *= 3
	p.Tcompute *= 3
	p.Tro *= 3
	p.Tglobal *= 3
	store, err := profile.NewStore(staleDoc, profile.Options{Lookup: AppModelLookup, MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	heldOut := `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,` +
		`"computeNodes":4,"bandwidth":"100MB","datasetBytes":"768MB"}}`
	heldOutCfg := core.Config{Cluster: "pentium-myrinet", DataNodes: 1, ComputeNodes: 4,
		Bandwidth: 100 * units.MBPerSec, DatasetBytes: 768 * units.MB}
	exact, err := truth.Predict(heldOutCfg, core.GlobalReduction)
	if err != nil {
		t.Fatal(err)
	}
	predictErr := func() float64 {
		rec := postJSON(t, h, "/predict", heldOut)
		if rec.Code != http.StatusOK {
			t.Fatalf("/predict status %d: %s", rec.Code, rec.Body)
		}
		var resp PredictResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return stats.RelError(exact.Texec().Seconds(), resp.Texec.Seconds())
	}

	staleErr := predictErr()
	if staleErr < 0.5 {
		t.Fatalf("precondition: stale error %.3f is not badly mis-scaled", staleErr)
	}
	v0 := s.Store().Snapshot().Version()

	// Post observed runs: what the application actually does on each
	// configuration, per the truth predictor.
	recalibrated := false
	for i, mb := range []int{256, 384, 640, 896, 1024, 512} {
		cfg := core.Config{Cluster: "pentium-myrinet", DataNodes: 1, ComputeNodes: 1 + i%3,
			Bandwidth: 100 * units.MBPerSec, DatasetBytes: units.Bytes(mb) * units.MB}
		obs, err := truth.Predict(cfg, core.GlobalReduction)
		if err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf(`{"app":"kmeans","config":{"cluster":"pentium-myrinet",`+
			`"dataNodes":1,"computeNodes":%d,"bandwidth":"100MB","datasetBytes":"%dMB"},`+
			`"tdisk":"%v","tnetwork":"%v","tcompute":"%v","tro":"%v","tglobal":"%v"}`,
			cfg.ComputeNodes, mb, obs.Tdisk, obs.Tnetwork, obs.Tcompute, obs.Tro, obs.Tglobal)
		rec := postJSON(t, h, "/runs", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("/runs status %d: %s", rec.Code, rec.Body)
		}
		var res profile.IngestResult
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		recalibrated = recalibrated || res.Recalibrated
	}
	if !recalibrated {
		t.Fatal("posting mis-predicted runs never triggered a recalibration")
	}

	// GET /profiles reflects the advanced versions and consumed samples.
	rec := getPath(t, h, "/profiles")
	if rec.Code != http.StatusOK {
		t.Fatalf("/profiles status %d: %s", rec.Code, rec.Body)
	}
	var profiles ProfilesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &profiles); err != nil {
		t.Fatal(err)
	}
	if profiles.StoreVersion <= v0 {
		t.Fatalf("store version did not advance: %d -> %d", v0, profiles.StoreVersion)
	}
	if len(profiles.Profiles) != 1 {
		t.Fatalf("profiles = %+v, want exactly kmeans", profiles.Profiles)
	}
	info := profiles.Profiles[0]
	if info.App != "kmeans" || info.Version < 2 || info.Recalibrations < 1 {
		t.Fatalf("profile info after the loop: %+v", info)
	}
	if info.Samples != 6 {
		t.Fatalf("samples = %d, want 6", info.Samples)
	}

	// The recalibrated profile predicts the held-out configuration far
	// better than the stale one did.
	freshErr := predictErr()
	if freshErr >= staleErr {
		t.Fatalf("held-out error did not improve: %.3f -> %.3f", staleErr, freshErr)
	}
	if freshErr > 0.05 {
		t.Fatalf("post-recalibration held-out error %.3f, want < 0.05 (stale was %.3f)", freshErr, staleErr)
	}

	// /healthz carries the live store version.
	rec = getPath(t, h, "/healthz")
	var health HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.StoreVersion != profiles.StoreVersion {
		t.Fatalf("healthz store version %d != /profiles %d", health.StoreVersion, profiles.StoreVersion)
	}
}

// TestRunsEndpointRejectsBadInput pins the /runs input boundary.
func TestRunsEndpointRejectsBadInput(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	okCfg := `{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"512MB"}`
	cases := []struct{ name, body string }{
		{"missing app", `{"config":` + okCfg + `,"tdisk":"1s","tnetwork":"1s","tcompute":"1s"}`},
		{"missing component", `{"app":"kmeans","config":` + okCfg + `,"tdisk":"1s","tnetwork":"1s"}`},
		{"bad duration", `{"app":"kmeans","config":` + okCfg + `,"tdisk":"fast","tnetwork":"1s","tcompute":"1s"}`},
		{"negative component", `{"app":"kmeans","config":` + okCfg + `,"tdisk":"-1s","tnetwork":"1s","tcompute":"1s"}`},
		{"non-finite size", `{"app":"kmeans","config":` + okCfg + `,"tdisk":"1s","tnetwork":"1s","tcompute":"1s","roBytesPerNode":"inf"}`},
		{"invalid config", `{"app":"kmeans","config":{"cluster":"","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"512MB"},"tdisk":"1s","tnetwork":"1s","tcompute":"1s"}`},
		{"unknown field", `{"app":"kmeans","config":` + okCfg + `,"tdisk":"1s","tnetwork":"1s","tcompute":"1s","bogus":1}`},
	}
	for _, c := range cases {
		rec := postJSON(t, h, "/runs", c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, rec.Code, rec.Body)
		}
	}
}

// TestRunsAdoptsUnknownAppProfile checks that a posted run for an app
// the store has never seen becomes its base profile.
func TestRunsAdoptsUnknownAppProfile(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	body := `{"app":"apriori","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,` +
		`"bandwidth":"100MB","datasetBytes":"512MB"},"tdisk":"8s","tnetwork":"16s","tcompute":"40s",` +
		`"tro":"1s","tglobal":"500ms","roBytesPerNode":"1MB","broadcastBytes":"64KB","iterations":3}`
	rec := postJSON(t, h, "/runs", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/runs status %d: %s", rec.Code, rec.Body)
	}
	var res profile.IngestResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Adopted || res.AppVersion != 1 {
		t.Fatalf("adoption result: %+v", res)
	}
	// The adopted profile serves /predict without simulation.
	pbody := `{"app":"apriori","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":2,` +
		`"bandwidth":"100MB","datasetBytes":"1GB"}}`
	if rec := postJSON(t, h, "/predict", pbody); rec.Code != http.StatusOK {
		t.Fatalf("/predict for adopted app: status %d: %s", rec.Code, rec.Body)
	}
}

// TestPredictorCacheFollowsRecalibration checks a /predict after a
// recalibration serves the new profile (the version-pinned cache entry
// is rebuilt, not reused).
func TestPredictorCacheFollowsRecalibration(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	body := `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":2,` +
		`"bandwidth":"100MB","datasetBytes":"1GB"}}`
	before := predictTexec(t, h, body)

	// Halve the profile out from under the cache via direct ingestion
	// (auto-recalibration fires once the drift window fills; the explicit
	// call below is the backstop if it hasn't yet).
	v0 := s.Store().Snapshot().Version()
	doc := s.Store().Snapshot().Doc()
	base := doc.Profiles[0]
	for i := 0; i < profile.DefaultMinSamples; i++ {
		cfg := base.Config
		cfg.DatasetBytes += units.Bytes(i+1) * units.MB
		scale := 0.5 * float64(cfg.DatasetBytes) / float64(base.Config.DatasetBytes)
		obs := profile.Observation{
			App:    base.App,
			Config: cfg,
			Breakdown: core.Breakdown{
				Tdisk:    time.Duration(float64(base.Tdisk) * scale),
				Tnetwork: time.Duration(float64(base.Tnetwork) * scale),
				Tcompute: time.Duration(float64(base.Tcompute) * scale),
			},
			Tro:     time.Duration(float64(base.Tro) * scale),
			Tglobal: time.Duration(float64(base.Tglobal) * scale),
		}
		if _, err := s.Store().Ingest(obs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Store().Recalibrate("kmeans"); err != nil {
		t.Fatal(err)
	}
	if v := s.Store().Snapshot().Version(); v <= v0 {
		t.Fatalf("no recalibration happened: store version still %d", v)
	}
	after := predictTexec(t, h, body)
	if after >= before {
		t.Fatalf("prediction did not follow the recalibrated profile: %v -> %v", before, after)
	}
}

func predictTexec(t *testing.T, h http.Handler, body string) time.Duration {
	t.Helper()
	rec := postJSON(t, h, "/predict", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/predict status %d: %s", rec.Code, rec.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Texec
}
