package fgservice

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"testing"
	"time"

	"freerideg/internal/core"
	"freerideg/internal/metrics"
	"freerideg/internal/profile"
	"freerideg/internal/units"
)

const cachedPredictBody = `{"app":"kmeans","config":{"cluster":"pentium-myrinet",` +
	`"dataNodes":1,"computeNodes":2,"bandwidth":"100MB","datasetBytes":"1GB"}}`

func cacheCounter(t *testing.T, name, cache string) *metrics.Counter {
	t.Helper()
	return metrics.GetCounter(name, "", metrics.Label{Key: "cache", Value: cache})
}

// TestPredictServedFromCache proves a repeated /predict request is a
// cache hit: the hit counter moves and the responses are identical.
func TestPredictServedFromCache(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	hits := cacheCounter(t, "fg_servecache_hits_total", "predict")
	misses := cacheCounter(t, "fg_servecache_misses_total", "predict")
	h0, m0 := hits.Value(), misses.Value()

	first := postJSON(t, h, "/predict", cachedPredictBody)
	if first.Code != http.StatusOK {
		t.Fatalf("/predict status %d: %s", first.Code, first.Body)
	}
	if got := misses.Value() - m0; got != 1 {
		t.Fatalf("cold request: misses moved %v, want 1", got)
	}
	for i := 0; i < 3; i++ {
		rec := postJSON(t, h, "/predict", cachedPredictBody)
		if rec.Code != http.StatusOK {
			t.Fatalf("repeat %d: status %d", i, rec.Code)
		}
		if rec.Body.String() != first.Body.String() {
			t.Fatalf("cached response differs from first:\n%s\nvs\n%s", rec.Body, first.Body)
		}
	}
	if got := hits.Value() - h0; got != 3 {
		t.Fatalf("hits moved %v, want 3", got)
	}
	if got := misses.Value() - m0; got != 1 {
		t.Fatalf("repeats recomputed: misses moved %v, want 1", got)
	}
}

// TestRecalibrationInvalidatesPredictCache is the coherence acceptance
// check: a profile recalibration must invalidate the cached prediction —
// a post-recalibration read never returns the pre-recalibration answer.
func TestRecalibrationInvalidatesPredictCache(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	inval := cacheCounter(t, "fg_servecache_invalidations_total", "predict")
	i0 := inval.Value()

	before := predictResponseOf(t, h, cachedPredictBody)
	// Prime the cache and prove it's serving.
	if again := predictResponseOf(t, h, cachedPredictBody); again.Texec != before.Texec {
		t.Fatalf("unstable prediction before recalibration: %v vs %v", again.Texec, before.Texec)
	}

	halveProfile(t, s)

	after := predictResponseOf(t, h, cachedPredictBody)
	if after.StoreVersion <= before.StoreVersion {
		t.Fatalf("store version did not advance across recalibration: %d -> %d",
			before.StoreVersion, after.StoreVersion)
	}
	if after.Texec == before.Texec {
		t.Fatalf("post-recalibration read returned the pre-recalibration prediction (%v)", after.Texec)
	}
	if got := inval.Value() - i0; got < 1 {
		t.Fatalf("invalidations moved %v, want >= 1", got)
	}
}

// TestObserveInvalidatesSelectCache: selection answers depend on the
// live bandwidth estimator, so an accepted /observe must stop cached
// rankings from being served.
func TestObserveInvalidatesSelectCache(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	body := `{"app":"kmeans","size":"512MB"}`

	first := postJSON(t, h, "/select", body)
	if first.Code != http.StatusOK {
		t.Fatalf("/select status %d: %s", first.Code, first.Body)
	}
	// Enough observations to move the osu-repository b̂ from its static
	// 100MB/s to ~5MB/s.
	for i := 1; i <= 7; i++ {
		ob := fmt.Sprintf(`{"site":"osu-repository","cluster":"pentium-myrinet",`+
			`"bytes":"%dMB","elapsed":"%dms"}`, 5*i, 1000*i)
		if rec := postJSON(t, h, "/observe", ob); rec.Code != http.StatusOK {
			t.Fatalf("/observe status %d: %s", rec.Code, rec.Body)
		}
	}
	second := postJSON(t, h, "/select", body)
	if second.Code != http.StatusOK {
		t.Fatalf("/select status %d: %s", second.Code, second.Body)
	}
	if first.Body.String() == second.Body.String() {
		t.Fatal("observations did not invalidate the cached ranking")
	}
}

// TestSelectLimitServedFromOneEntry: Limit is not part of the cache key —
// the full ranking is cached once and truncated per request.
func TestSelectLimitServedFromOneEntry(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	misses := cacheCounter(t, "fg_servecache_misses_total", "select")
	m0 := misses.Value()

	var lens []int
	for _, limit := range []int{0, 3, 1, 2} {
		body := `{"app":"kmeans","size":"512MB"}`
		if limit > 0 {
			body = fmt.Sprintf(`{"app":"kmeans","size":"512MB","limit":%d}`, limit)
		}
		rec := postJSON(t, h, "/select", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("limit %d: status %d: %s", limit, rec.Code, rec.Body)
		}
		var resp SelectResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		lens = append(lens, len(resp.Candidates))
	}
	want := []int{5, 3, 1, 2}
	if fmt.Sprint(lens) != fmt.Sprint(want) {
		t.Fatalf("candidate counts = %v, want %v", lens, want)
	}
	if got := misses.Value() - m0; got != 1 {
		t.Fatalf("limited reads recomputed the ranking: misses moved %v, want 1", got)
	}
}

// TestDisableCacheRecomputes pins the cold baseline the load harness
// compares against: with the cache off, counters never move.
func TestDisableCacheRecomputes(t *testing.T) {
	s, err := New(Options{Store: testStore(t), DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	hits := cacheCounter(t, "fg_servecache_hits_total", "predict")
	h0 := hits.Value()
	first := postJSON(t, h, "/predict", cachedPredictBody)
	second := postJSON(t, h, "/predict", cachedPredictBody)
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("statuses %d, %d", first.Code, second.Code)
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("uncached recomputation is not deterministic")
	}
	if hits.Value() != h0 {
		t.Fatal("cache hit recorded with the cache disabled")
	}
}

// TestCacheHitLatencyAdvantage is the ≥5× acceptance measurement at the
// service layer (no HTTP encode/decode noise): the median cached read
// must be at least 5× faster than the median cold computation.
func TestCacheHitLatencyAdvantage(t *testing.T) {
	s := testServer(t)
	app, v := "kmeans", core.GlobalReduction
	total := 512 * units.MB
	// Prime.
	if _, err := s.selectResponse(context.Background(), app, v, total, 0); err != nil {
		t.Fatal(err)
	}
	const iters = 300
	median := func(f func()) time.Duration {
		ds := make([]time.Duration, iters)
		for i := range ds {
			start := time.Now()
			f()
			ds[i] = time.Since(start)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[iters/2]
	}
	warm := median(func() {
		if _, err := s.selectResponse(context.Background(), app, v, total, 0); err != nil {
			t.Fatal(err)
		}
	})
	ver := s.store.Snapshot().Version()
	cold := median(func() {
		if _, err := s.computeSelect(context.Background(), app, v, total, 0, ver); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("median select latency: warm %v, cold %v (%.1fx)", warm, cold, float64(cold)/float64(warm))
	if warm*5 > cold {
		t.Fatalf("cache hit not >=5x faster: warm %v, cold %v", warm, cold)
	}
}

// halveProfile ingests drifted observations and forces a recalibration
// that roughly halves the kmeans profile.
func halveProfile(t *testing.T, s *Server) {
	t.Helper()
	doc := s.Store().Snapshot().Doc()
	base := doc.Profiles[0]
	for i := 0; i < 5; i++ {
		cfg := base.Config
		cfg.DatasetBytes += units.Bytes(i+1) * units.MB
		scale := 0.5 * float64(cfg.DatasetBytes) / float64(base.Config.DatasetBytes)
		obs := profileObservation(base, cfg, scale)
		if _, err := s.Store().Ingest(obs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Store().Recalibrate(base.App); err != nil {
		t.Fatal(err)
	}
}

// profileObservation builds one observation of base's app on cfg with
// every component scaled by scale.
func profileObservation(base core.Profile, cfg core.Config, scale float64) profile.Observation {
	return profile.Observation{
		App:    base.App,
		Config: cfg,
		Breakdown: core.Breakdown{
			Tdisk:    time.Duration(float64(base.Tdisk) * scale),
			Tnetwork: time.Duration(float64(base.Tnetwork) * scale),
			Tcompute: time.Duration(float64(base.Tcompute) * scale),
		},
		Tro:     time.Duration(float64(base.Tro) * scale),
		Tglobal: time.Duration(float64(base.Tglobal) * scale),
	}
}

func profileStoreForBench(doc core.ProfileStore) (*profile.Store, error) {
	return profile.NewStore(doc, profile.Options{Lookup: AppModelLookup})
}

func predictResponseOf(t *testing.T, h http.Handler, body string) PredictResponse {
	t.Helper()
	rec := postJSON(t, h, "/predict", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/predict status %d: %s", rec.Code, rec.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// BenchmarkPredictWarm / BenchmarkPredictCold and the select pair
// quantify the serve-path cache for the tracked benchmark suite.
func benchServer(b *testing.B) *Server {
	b.Helper()
	doc, err := core.LoadStore("testdata/store.json")
	if err != nil {
		b.Fatal(err)
	}
	store, err := profileStoreForBench(doc)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Options{Store: store})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkPredictWarm(b *testing.B) {
	s := benchServer(b)
	cfg := core.Config{Cluster: "pentium-myrinet", DataNodes: 1, ComputeNodes: 2,
		Bandwidth: 100 * units.MBPerSec, DatasetBytes: units.GB}
	if _, err := s.predictResponse(context.Background(), "kmeans", core.GlobalReduction, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.predictResponse(context.Background(), "kmeans", core.GlobalReduction, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictCold(b *testing.B) {
	s := benchServer(b)
	cfg := core.Config{Cluster: "pentium-myrinet", DataNodes: 1, ComputeNodes: 2,
		Bandwidth: 100 * units.MBPerSec, DatasetBytes: units.GB}
	ver := s.store.Snapshot().Version()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.computePredict(context.Background(), "kmeans", core.GlobalReduction, cfg, ver); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectWarm(b *testing.B) {
	s := benchServer(b)
	if _, err := s.selectResponse(context.Background(), "kmeans", core.GlobalReduction, 512*units.MB, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.selectResponse(context.Background(), "kmeans", core.GlobalReduction, 512*units.MB, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectCold(b *testing.B) {
	s := benchServer(b)
	ver := s.store.Snapshot().Version()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.computeSelect(context.Background(), "kmeans", core.GlobalReduction, 512*units.MB, 0, ver); err != nil {
			b.Fatal(err)
		}
	}
}
