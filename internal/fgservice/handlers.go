package fgservice

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/cliutil"
	"freerideg/internal/core"
	"freerideg/internal/grid"
	"freerideg/internal/metrics"
	"freerideg/internal/profile"
	"freerideg/internal/reqtrace"
	"freerideg/internal/units"
)

// ConfigRequest is the wire form of a target configuration. Sizes and
// rates are strings ("1.4GB", "100MB") parsed by units.ParseBytes — the
// input boundary where non-finite and overflowing values are rejected
// with 400 instead of poisoning a run.
type ConfigRequest struct {
	Cluster      string `json:"cluster"`
	DataNodes    int    `json:"dataNodes"`
	ComputeNodes int    `json:"computeNodes"`
	Bandwidth    string `json:"bandwidth"`
	DatasetBytes string `json:"datasetBytes"`
}

// Config parses the wire form into a core.Config (not yet validated).
func (c ConfigRequest) Config() (core.Config, error) {
	bw, err := cliutil.ParseRate(c.Bandwidth)
	if err != nil {
		return core.Config{}, fmt.Errorf("bandwidth: %w", err)
	}
	total, err := units.ParseBytes(c.DatasetBytes)
	if err != nil {
		return core.Config{}, fmt.Errorf("datasetBytes: %w", err)
	}
	return core.Config{
		Cluster:      c.Cluster,
		DataNodes:    c.DataNodes,
		ComputeNodes: c.ComputeNodes,
		Bandwidth:    bw,
		DatasetBytes: total,
	}, nil
}

// PredictRequest asks for one prediction of app on a target config.
type PredictRequest struct {
	App     string        `json:"app"`
	Variant string        `json:"variant,omitempty"`
	Config  ConfigRequest `json:"config"`
}

// PredictResponse is the component breakdown of one prediction.
// Durations are integer nanoseconds; Pretty is a human-readable summary.
// StoreVersion is the profile store snapshot the prediction was
// computed from — load harnesses use its monotonicity to prove a
// post-recalibration read never served a pre-recalibration answer.
type PredictResponse struct {
	App          string        `json:"app"`
	Variant      string        `json:"variant"`
	StoreVersion uint64        `json:"storeVersion"`
	Config       core.Config   `json:"config"`
	Tdisk        time.Duration `json:"tdiskNs"`
	Tnetwork     time.Duration `json:"tnetworkNs"`
	Tcompute     time.Duration `json:"tcomputeNs"`
	Tro          time.Duration `json:"troNs"`
	Tglobal      time.Duration `json:"tglobalNs"`
	Texec        time.Duration `json:"texecNs"`
	Pretty       string        `json:"pretty"`
}

// SelectRequest asks for a ranking of (replica, configuration) pairs for
// one dataset.
type SelectRequest struct {
	App  string `json:"app"`
	Size string `json:"size"`
	// Limit truncates the returned ranking (0 = all candidates).
	Limit int `json:"limit,omitempty"`
	// Deadline, when set (a Go duration string), switches to capacity
	// planning: the cheapest configuration meeting it instead of the
	// fastest overall.
	Deadline string `json:"deadline,omitempty"`
	Variant  string `json:"variant,omitempty"`
}

// SelectCandidate is one ranked (replica, configuration) pair.
type SelectCandidate struct {
	Site         string        `json:"site"`
	Cluster      string        `json:"cluster"`
	DataNodes    int           `json:"dataNodes"`
	ComputeNodes int           `json:"computeNodes"`
	Bandwidth    units.Rate    `json:"bandwidthBps"`
	Predicted    time.Duration `json:"predictedNs"`
	Pretty       string        `json:"pretty"`
}

// SelectResponse is the ranking (or the single planned candidate when a
// deadline was given). StoreVersion mirrors PredictResponse's coherence
// marker.
type SelectResponse struct {
	App          string            `json:"app"`
	Dataset      string            `json:"dataset"`
	StoreVersion uint64            `json:"storeVersion"`
	Size         units.Bytes       `json:"sizeBytes"`
	Candidates   []SelectCandidate `json:"candidates"`
	Selected     *SelectCandidate  `json:"selected,omitempty"`
}

// ObserveRequest feeds one completed transfer into the bandwidth
// estimator, updating the live b̂ for the site→cluster path.
type ObserveRequest struct {
	Site    string `json:"site"`
	Cluster string `json:"cluster"`
	Bytes   string `json:"bytes"`
	Elapsed string `json:"elapsed"` // Go duration string, e.g. "800ms"
}

// ObserveResponse reports the path's state after the observation.
type ObserveResponse struct {
	Site    string `json:"site"`
	Cluster string `json:"cluster"`
	Samples int    `json:"samples"`
	// Bandwidth is the path's current estimate ("" while the path has
	// too few samples to fit).
	Bandwidth string `json:"bandwidth,omitempty"`
}

// RunRequest posts one observed run — the configuration it executed on
// and its measured component breakdown — as a calibration sample.
// Durations are Go duration strings ("42s", "1m30s"); sizes are byte
// strings ("1MB"). Tro, Tglobal, RO/broadcast sizes, and iterations are
// optional (filled from the app's current base profile).
type RunRequest struct {
	App            string        `json:"app"`
	Config         ConfigRequest `json:"config"`
	Tdisk          string        `json:"tdisk"`
	Tnetwork       string        `json:"tnetwork"`
	Tcompute       string        `json:"tcompute"`
	TdiskCached    string        `json:"tdiskCached,omitempty"`
	Tro            string        `json:"tro,omitempty"`
	Tglobal        string        `json:"tglobal,omitempty"`
	ROBytesPerNode string        `json:"roBytesPerNode,omitempty"`
	BroadcastBytes string        `json:"broadcastBytes,omitempty"`
	Iterations     int           `json:"iterations,omitempty"`
}

// observation parses the wire form into a calibration sample.
func (r RunRequest) observation() (profile.Observation, error) {
	cfg, err := r.Config.Config()
	if err != nil {
		return profile.Observation{}, err
	}
	obs := profile.Observation{App: r.App, Config: cfg, Iterations: r.Iterations}
	for _, d := range []struct {
		name     string
		val      string
		dst      *time.Duration
		required bool
	}{
		{"tdisk", r.Tdisk, &obs.Tdisk, true},
		{"tnetwork", r.Tnetwork, &obs.Tnetwork, true},
		{"tcompute", r.Tcompute, &obs.Tcompute, true},
		{"tdiskCached", r.TdiskCached, &obs.TdiskCached, false},
		{"tro", r.Tro, &obs.Tro, false},
		{"tglobal", r.Tglobal, &obs.Tglobal, false},
	} {
		if d.val == "" {
			if d.required {
				return profile.Observation{}, fmt.Errorf("%s: required (a Go duration such as \"42s\")", d.name)
			}
			continue
		}
		v, err := time.ParseDuration(d.val)
		if err != nil {
			return profile.Observation{}, fmt.Errorf("%s %q: %v", d.name, d.val, err)
		}
		*d.dst = v
	}
	for _, b := range []struct {
		name string
		val  string
		dst  *units.Bytes
	}{
		{"roBytesPerNode", r.ROBytesPerNode, &obs.ROBytesPerNode},
		{"broadcastBytes", r.BroadcastBytes, &obs.BroadcastBytes},
	} {
		if b.val == "" {
			continue
		}
		v, err := units.ParseBytes(b.val)
		if err != nil {
			return profile.Observation{}, fmt.Errorf("%s: %w", b.name, err)
		}
		*b.dst = v
	}
	return obs, nil
}

// ProfileInfo is one application's live profile as reported by
// GET /profiles: the profile content plus its version and drift state.
type ProfileInfo struct {
	App            string        `json:"app"`
	Version        uint64        `json:"version"`
	Config         core.Config   `json:"config"`
	Texec          time.Duration `json:"texecNs"`
	Samples        int           `json:"samples"`
	Pending        int           `json:"pending"`
	Recalibrations int           `json:"recalibrations"`
	Drift          float64       `json:"drift"`
	DriftSamples   int           `json:"driftSamples"`
	Drifting       bool          `json:"drifting"`
}

// ProfilesResponse answers GET /profiles from one store snapshot.
type ProfilesResponse struct {
	StoreVersion uint64        `json:"storeVersion"`
	Profiles     []ProfileInfo `json:"profiles"`
}

// HealthResponse answers /healthz. Status is "ok" (200) or "degraded"
// (503, with Reason saying why): a draining server or a saturated
// concurrency limiter is still alive but should not receive new work,
// and load harnesses need to tell that apart from a crash.
type HealthResponse struct {
	Status        string   `json:"status"`
	Reason        string   `json:"reason,omitempty"`
	UptimeSeconds float64  `json:"uptimeSeconds"`
	Apps          []string `json:"apps"`
	ProfiledApps  int      `json:"profiledApps"`
	StoreVersion  uint64   `json:"storeVersion"`
}

// apiError is the JSON error envelope every handler uses: the message,
// the HTTP status it rode in on (so callers and the load harness can
// classify failures without re-parsing transport state), and the
// request ID — the same value as the X-FG-Request-ID response header —
// so a client-reported failure is matchable to server-side traces and
// slow-request logs.
type apiError struct {
	Error     string `json:"error"`
	Status    int    `json:"status"`
	RequestID string `json:"requestId,omitempty"`
}

// encodeFailures counts responses whose JSON encoding failed — the
// errors the old writeJSON silently dropped. An encode failure is a
// server bug (every response type here is a plain struct), so it is
// worth a counter and a 500 rather than a truncated 200.
var encodeFailures = metrics.GetCounter("fg_http_encode_failures_total",
	"Responses dropped because JSON encoding of the response value failed.")

// encodeState is one pooled response-rendering unit: a buffer plus an
// encoder permanently bound to it, so the serve hot path allocates no
// encoder or buffer per request. States whose buffer ballooned (an
// unusually large ranking) are not returned to the pool.
type encodeState struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encodeStates = sync.Pool{New: func() any {
	st := new(encodeState)
	// Encoder+SetIndent (not MarshalIndent) keeps the historical wire
	// bytes: two-space indent and a trailing newline.
	st.enc = json.NewEncoder(&st.buf)
	st.enc.SetIndent("", "  ")
	return st
}}

const maxPooledEncodeBuf = 64 << 10

// writeJSON renders v into a pooled buffer and writes it with a correct
// Content-Length. Encoding errors are counted and turn into a 500 error
// envelope instead of being silently dropped mid-stream — possible
// because nothing has been written to w before the buffer is complete.
func writeJSON(w http.ResponseWriter, status int, v any) {
	st := encodeStates.Get().(*encodeState)
	defer func() {
		if st.buf.Cap() <= maxPooledEncodeBuf {
			encodeStates.Put(st)
		}
	}()
	st.buf.Reset()
	if err := st.enc.Encode(v); err != nil {
		encodeFailures.Inc()
		st.buf.Reset()
		fmt.Fprintf(&st.buf, "{\n  \"error\": %q,\n  \"status\": 500\n}\n",
			"encoding response: "+err.Error())
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(st.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(st.buf.Bytes())
}

// writeJSONCtx is writeJSON with an "encode" span on traced requests —
// the success-path variant handlers use so a trace shows how long
// response rendering took next to the work itself.
func writeJSONCtx(ctx context.Context, w http.ResponseWriter, status int, v any) {
	sp := reqtrace.Child(ctx, "encode")
	writeJSON(w, status, v)
	sp.End()
}

// writeError renders the error envelope. The request ID comes from the
// response header the middleware stamped before the handler ran — both
// the real ResponseWriter and the buffered one carry it — so every
// envelope (including the middleware's own 499/504 ones) correlates.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{
		Error:     err.Error(),
		Status:    status,
		RequestID: w.Header().Get(reqtrace.Header),
	})
}

// statusError carries the HTTP status a computation failure maps to, so
// the cache fill path can report errors through one channel without
// flattening 404/422 distinctions into 500s.
type statusError struct {
	status int
	err    error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

func withStatus(status int, err error) error {
	return &statusError{status: status, err: err}
}

// StatusClientClosedRequest is the non-standard 499 status (the nginx
// convention) a request answers when its client disconnected before the
// response was ready. The body never reaches that client; the status
// exists so metrics, logs, and batch per-item errors can tell "the
// caller left" apart from "the work failed" and from a 504 deadline.
const StatusClientClosedRequest = 499

// errorStatus maps a computation failure to its HTTP status. Context
// errors are classified first — a deadline that expired inside a
// statusError-wrapped path is still a 504, not whatever status the
// wrapping layer assumed for generic failure — then statusError's
// explicit code, falling back to 500.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.status
	}
	return http.StatusInternalServerError
}

// MaxRequestBody bounds every JSON request body. The largest legitimate
// request (a /runs observation) is under a kilobyte; a megabyte leaves
// three orders of magnitude of slack while keeping a misbehaving client
// from buffering unbounded input into the decoder.
const MaxRequestBody = 1 << 20

// decodeJSON strictly decodes one JSON request body: unknown fields are
// rejected, the body is capped at MaxRequestBody, and trailing content
// after the first JSON value is an error. Every failure is a client
// error (400), never a 500.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	sp := reqtrace.Child(r.Context(), "decode")
	defer sp.End()
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return fmt.Errorf("request body exceeds %d bytes", maxErr.Limit)
		}
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return errors.New("request body holds more than one JSON value")
	}
	return nil
}

// requestVariant resolves the request's variant override against the
// server default.
func (s *Server) requestVariant(name string) (core.Variant, error) {
	if name == "" {
		return s.variant, nil
	}
	return core.ParseVariant(name)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.requestVariant(req.Variant)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := req.Config.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := cfg.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := apps.Get(req.App); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp, err := s.predictResponse(r.Context(), req.App, v, cfg)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeJSONCtx(r.Context(), w, http.StatusOK, resp)
}

// predictKey renders the cache key for one prediction. %g round-trips
// float64 exactly, so distinct bandwidths never collide.
func predictKey(app string, v core.Variant, cfg core.Config) string {
	return fmt.Sprintf("%s|%s|%s|%d|%d|%g|%d",
		app, v, cfg.Cluster, cfg.DataNodes, cfg.ComputeNodes,
		float64(cfg.Bandwidth), int64(cfg.DatasetBytes))
}

// predictResponse serves one prediction through the response cache,
// pinned to the profile store snapshot version. Inputs are validated by
// the handler; only successful computations are cached.
func (s *Server) predictResponse(ctx context.Context, app string, v core.Variant, cfg core.Config) (PredictResponse, error) {
	return s.predictResponseAt(ctx, app, v, cfg, s.store.Snapshot().Version())
}

// predictResponseAt is predictResponse against a caller-resolved
// snapshot version: the batch plane resolves the version once and
// serves every item in the batch at it. ctx bounds only this request's
// wait; a fill another request depends on is never canceled by it.
func (s *Server) predictResponseAt(ctx context.Context, app string, v core.Variant, cfg core.Config, ver uint64) (PredictResponse, error) {
	if s.predictCache == nil {
		return s.computePredict(ctx, app, v, cfg, ver)
	}
	return s.predictCache.Get(ctx, predictKey(app, v, cfg), ver, func(ctx context.Context) (PredictResponse, error) {
		return s.computePredict(ctx, app, v, cfg, ver)
	})
}

// computePredict is the cold path: resolve the app's predictor (which
// may self-profile an unknown app) and run the prediction arithmetic.
func (s *Server) computePredict(ctx context.Context, app string, v core.Variant, cfg core.Config, ver uint64) (PredictResponse, error) {
	pred, err := s.predictor(ctx, app)
	if err != nil {
		return PredictResponse{}, withStatus(http.StatusInternalServerError, err)
	}
	p, err := pred.Predict(cfg, v)
	if err != nil {
		return PredictResponse{}, withStatus(http.StatusUnprocessableEntity, err)
	}
	return PredictResponse{
		App:          app,
		Variant:      v.String(),
		StoreVersion: ver,
		Config:       cfg,
		Tdisk:        p.Tdisk,
		Tnetwork:     p.Tnetwork,
		Tcompute:     p.Tcompute,
		Tro:          p.Tro,
		Tglobal:      p.Tglobal,
		Texec:        p.Texec(),
		Pretty: fmt.Sprintf("t_d=%v t_n=%v t_c=%v (T_exec %v)",
			round(p.Tdisk), round(p.Tnetwork), round(p.Tcompute), round(p.Texec())),
	}, nil
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.requestVariant(req.Variant)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	total, err := units.ParseBytes(req.Size)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var deadline time.Duration
	if req.Deadline != "" {
		deadline, err = time.ParseDuration(req.Deadline)
		if err != nil || deadline <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("deadline %q: want a positive Go duration", req.Deadline))
			return
		}
	}
	if _, err := apps.Get(req.App); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp, err := s.selectResponse(r.Context(), req.App, v, total, deadline)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	// resp is a copy of the (possibly cached, shared) value; Limit
	// truncates only this request's view of the ranking.
	if req.Limit > 0 && req.Limit < len(resp.Candidates) {
		resp.Candidates = resp.Candidates[:req.Limit]
	}
	writeJSONCtx(r.Context(), w, http.StatusOK, resp)
}

// selectKey renders the cache key for one ranking. Limit is deliberately
// absent: the full ranking is cached once and truncated per request.
func selectKey(app string, v core.Variant, total units.Bytes, deadline time.Duration) string {
	return fmt.Sprintf("%s|%s|%d|%d", app, v, int64(total), int64(deadline))
}

// selectResponse serves one ranking through the response cache. A
// ranking depends on the profile store and on the live bandwidth
// estimator, so the cache version is the snapshot version plus the
// observation epoch (see Server.estEpoch for why the sum is sound).
func (s *Server) selectResponse(ctx context.Context, app string, v core.Variant, total units.Bytes, deadline time.Duration) (SelectResponse, error) {
	return s.selectResponseAt(ctx, app, v, total, deadline, s.store.Snapshot().Version())
}

// selectResponseAt is selectResponse against a caller-resolved snapshot
// version; the estimator epoch is still read live (it changes only via
// /observe, which the batch plane does not serve).
func (s *Server) selectResponseAt(ctx context.Context, app string, v core.Variant, total units.Bytes, deadline time.Duration, snapVer uint64) (SelectResponse, error) {
	if s.selectCache == nil {
		return s.computeSelect(ctx, app, v, total, deadline, snapVer)
	}
	ver := snapVer + s.estEpoch.Load()
	return s.selectCache.Get(ctx, selectKey(app, v, total, deadline), ver, func(ctx context.Context) (SelectResponse, error) {
		return s.computeSelect(ctx, app, v, total, deadline, snapVer)
	})
}

// computeSelect is the cold path: resolve the dataset's persistent
// selection service, refresh its live bandwidths, and rank — or, with a
// deadline, capacity-plan — the candidates on the shared incremental
// rank engine. The per-dataset service mutex serializes refresh+rank,
// so the engine never sees a half-updated topology; the engine reuses
// every cached prediction whose bandwidth and predictor are unchanged.
func (s *Server) computeSelect(ctx context.Context, app string, v core.Variant, total units.Bytes, deadline time.Duration, ver uint64) (SelectResponse, error) {
	spec, err := bench.Dataset(app, total)
	if err != nil {
		return SelectResponse{}, withStatus(http.StatusBadRequest, err)
	}
	// Ensures the app is profiled and in the store before ranking.
	if _, err := s.predictor(ctx, app); err != nil {
		return SelectResponse{}, withStatus(http.StatusInternalServerError, err)
	}
	// The cached source resolves the store's latest snapshot per ranking
	// round — a recalibration between requests re-ranks with fresh
	// profiles — while keeping the predictor pointer stable per version,
	// which is the engine's recompute-everything signal.
	pred, err := s.source(app).Predictor()
	if err != nil {
		return SelectResponse{}, withStatus(http.StatusInternalServerError, err)
	}
	ss, err := s.selectionService(spec)
	if err != nil {
		return SelectResponse{}, withStatus(http.StatusInternalServerError, err)
	}
	ss.mu.Lock()
	// Refresh bandwidths only when the estimator moved since the last
	// ranking: the epoch is loaded before the refresh, so a concurrent
	// /observe at worst re-triggers the refresh on the next request,
	// never lets a stale estimate survive one.
	if ep := s.estEpoch.Load() + 1; ss.bwEpoch != ep {
		bsp := reqtrace.Child(ctx, "bandwidth-refresh")
		for _, site := range s.opts.Sites {
			if err := ss.svc.SetBandwidth(site.Name, site.Cluster, s.pathBandwidth(site)); err != nil {
				ss.mu.Unlock()
				bsp.End()
				return SelectResponse{}, withStatus(http.StatusInternalServerError, err)
			}
		}
		ss.bwEpoch = ep
		bsp.End()
	}
	ranked, err := s.engine.Rank(ctx, ss.svc, spec.Name, pred, v, 1)
	ss.mu.Unlock()
	if err != nil {
		return SelectResponse{}, withStatus(statusForRankError(err), err)
	}
	resp := SelectResponse{App: app, Dataset: spec.Name, StoreVersion: ver, Size: total}
	if deadline > 0 {
		cand, err := grid.PlanFromRanked(ranked, deadline)
		if err != nil {
			return SelectResponse{}, withStatus(statusForRankError(err), err)
		}
		c := toCandidate(cand)
		resp.Selected = &c
		resp.Candidates = []SelectCandidate{c}
		return resp, nil
	}
	resp.Candidates = make([]SelectCandidate, len(ranked))
	for i, cand := range ranked {
		resp.Candidates[i] = toCandidate(cand)
	}
	best := resp.Candidates[0]
	resp.Selected = &best
	return resp, nil
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Site == "" || req.Cluster == "" {
		writeError(w, http.StatusBadRequest, errors.New("observe: site and cluster are required"))
		return
	}
	b, err := units.ParseBytes(req.Bytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	elapsed, err := time.ParseDuration(req.Elapsed)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("elapsed %q: %v", req.Elapsed, err))
		return
	}
	if err := s.est.Observe(req.Site, req.Cluster, grid.TransferSample{Bytes: b, Elapsed: elapsed}); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The estimator's state feeds selection bandwidths: bump the epoch so
	// cached rankings computed before this observation stop matching.
	s.estEpoch.Add(1)
	resp := ObserveResponse{
		Site:    req.Site,
		Cluster: req.Cluster,
		Samples: s.est.Samples(req.Site, req.Cluster),
	}
	if bw, _, err := s.est.Estimate(req.Site, req.Cluster); err == nil {
		resp.Bandwidth = bw.String()
	}
	writeJSONCtx(r.Context(), w, http.StatusOK, resp)
}

// handleRuns ingests one observed run as a calibration sample: drift is
// tracked against the current prediction, and enough mis-predicted runs
// trigger a recalibration (reported in the response).
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.App == "" {
		writeError(w, http.StatusBadRequest, errors.New("runs: app is required"))
		return
	}
	obs, err := req.observation()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.store.Ingest(obs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSONCtx(r.Context(), w, http.StatusOK, res)
}

// handleProfiles reports the live store: every profile with its version,
// accumulated samples, and drift state, from one consistent snapshot.
func (s *Server) handleProfiles(w http.ResponseWriter, _ *http.Request) {
	snap := s.store.Snapshot()
	resp := ProfilesResponse{
		StoreVersion: snap.Version(),
		Profiles:     make([]ProfileInfo, 0, len(snap.Apps())),
	}
	for _, app := range snap.Apps() {
		p, ver, _ := snap.Find(app)
		info := ProfileInfo{App: app, Version: ver, Config: p.Config, Texec: p.Texec()}
		if st, ok := snap.Status(app); ok {
			info.Samples = st.Samples
			info.Pending = st.Pending
			info.Recalibrations = st.Recalibrations
			info.Drift = st.Drift
			info.DriftSamples = st.DriftSamples
			info.Drifting = st.Drifting
		}
		resp.Profiles = append(resp.Profiles, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	profiled := len(s.preds)
	s.mu.Unlock()
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Apps:          apps.Names(),
		ProfiledApps:  profiled,
		StoreVersion:  s.store.Snapshot().Version(),
	}
	code := http.StatusOK
	switch {
	case s.draining.Load():
		resp.Status, code = "degraded", http.StatusServiceUnavailable
		resp.Reason = "draining: shutdown in progress, in-flight requests are completing"
	case s.lim.saturated():
		resp.Status, code = "degraded", http.StatusServiceUnavailable
		resp.Reason = "overloaded: concurrency limiter saturated, requests are being shed with 503"
	}
	writeJSON(w, code, resp)
}

// handleDebugRequests serves the completed-trace ring: recent requests,
// the slowest since startup, and the most recent errored ones, each with
// its full span tree (see reqtrace.RingSnapshot for the schema).
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.traceRing.Snapshot())
}

// Handler assembles the service mux: instrumented, concurrency-bounded,
// per-request-timed handlers plus the metrics exposition.
func (s *Server) Handler() http.Handler {
	lim := s.lim
	mux := http.NewServeMux()
	mux.Handle("/predict", s.instrument("/predict", lim, http.MethodPost, s.handlePredict))
	mux.Handle("/predict/batch", s.instrument("/predict/batch", lim, http.MethodPost, s.handlePredictBatch))
	mux.Handle("/select", s.instrument("/select", lim, http.MethodPost, s.handleSelect))
	mux.Handle("/select/batch", s.instrument("/select/batch", lim, http.MethodPost, s.handleSelectBatch))
	mux.Handle("/observe", s.instrument("/observe", lim, http.MethodPost, s.handleObserve))
	mux.Handle("/runs", s.instrument("/runs", lim, http.MethodPost, s.handleRuns))
	mux.Handle("/profiles", s.instrument("/profiles", nil, http.MethodGet, s.handleProfiles))
	mux.Handle("/healthz", s.instrument("/healthz", nil, http.MethodGet, s.handleHealthz))
	mux.Handle("/debug/requests", s.instrument("/debug/requests", nil, http.MethodGet, s.handleDebugRequests))
	mux.Handle("/metrics", metrics.Default().Handler())
	// No http.TimeoutHandler wrapper: instrument enforces the per-request
	// deadline budget itself and answers a JSON 504 envelope (the old
	// wrapper wrote a plain-text body no client of this API could parse).
	return mux
}

func toCandidate(cand grid.Candidate) SelectCandidate {
	return SelectCandidate{
		Site:         cand.Replica.Site,
		Cluster:      cand.Config.Cluster,
		DataNodes:    cand.Config.DataNodes,
		ComputeNodes: cand.Config.ComputeNodes,
		Bandwidth:    cand.Config.Bandwidth,
		Predicted:    cand.Prediction.Texec(),
		Pretty: fmt.Sprintf("%s: %d storage / %d compute @ %v, predicted %v",
			cand.Replica.Site, cand.Config.DataNodes, cand.Config.ComputeNodes,
			cand.Config.Bandwidth, round(cand.Prediction.Texec())),
	}
}

// statusForRankError maps "no feasible candidate" and "deadline
// unreachable" to 422: the request was well-formed, the grid just has
// nothing that satisfies it.
func statusForRankError(err error) int {
	if errors.Is(err, grid.ErrNoCandidates) || errors.Is(err, grid.ErrDeadlineUnreachable) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
