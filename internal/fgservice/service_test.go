package fgservice

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"freerideg/internal/core"
	"freerideg/internal/metrics"
	"freerideg/internal/profile"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testStore loads the checked-in profile store so handler tests exercise
// pure prediction arithmetic — no simulation, so goldens don't rot when
// the simulator changes.
func testStore(t *testing.T) *profile.Store {
	t.Helper()
	doc, err := core.LoadStore(filepath.Join("testdata", "store.json"))
	if err != nil {
		t.Fatalf("loading test store: %v", err)
	}
	store, err := profile.NewStore(doc, profile.Options{Lookup: AppModelLookup})
	if err != nil {
		t.Fatalf("building test store: %v", err)
	}
	return store
}

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Options{Store: testStore(t)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response differs from golden %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestPredictGolden(t *testing.T) {
	s := testServer(t)
	body := `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":4,` +
		`"computeNodes":8,"bandwidth":"100MB","datasetBytes":"1.4GB"}}`
	rec := postJSON(t, s.Handler(), "/predict", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/predict status %d: %s", rec.Code, rec.Body)
	}
	checkGolden(t, "predict.golden.json", rec.Body.Bytes())
}

func TestPredictVariantsDiffer(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	seen := make(map[time.Duration]string)
	for _, variant := range []string{"nocomm", "reduction", "global"} {
		body := fmt.Sprintf(`{"app":"kmeans","variant":%q,"config":{"cluster":"pentium-myrinet",`+
			`"dataNodes":2,"computeNodes":4,"bandwidth":"50MB","datasetBytes":"1GB"}}`, variant)
		rec := postJSON(t, h, "/predict", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("variant %s: status %d: %s", variant, rec.Code, rec.Body)
		}
		var resp PredictResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Texec <= 0 {
			t.Fatalf("variant %s: non-positive T_exec %v", variant, resp.Texec)
		}
		if resp.Texec != resp.Tdisk+resp.Tnetwork+resp.Tcompute {
			t.Fatalf("variant %s: components do not sum to T_exec", variant)
		}
		// The three variants model different communication costs, so at a
		// non-base configuration they must not collapse to one value.
		if other, dup := seen[resp.Texec]; dup {
			t.Fatalf("variants %s and %s predict identical T_exec %v", other, variant, resp.Texec)
		}
		seen[resp.Texec] = variant
	}
}

func TestSelectGolden(t *testing.T) {
	s := testServer(t)
	rec := postJSON(t, s.Handler(), "/select", `{"app":"kmeans","size":"512MB"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("/select status %d: %s", rec.Code, rec.Body)
	}
	var resp SelectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// Two replicas (4 and 8 storage nodes) against offers of 4/8/16
	// compute nodes, with the middleware's M >= N rule: 3 + 2 candidates.
	if len(resp.Candidates) != 5 {
		t.Fatalf("got %d candidates, want 5: %s", len(resp.Candidates), rec.Body)
	}
	for i := 1; i < len(resp.Candidates); i++ {
		if resp.Candidates[i].Predicted < resp.Candidates[i-1].Predicted {
			t.Fatal("candidates not sorted by predicted time")
		}
	}
	checkGolden(t, "select.golden.json", rec.Body.Bytes())
}

func TestSelectDeadlinePlansCheapestFeasible(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	// An absurdly generous deadline must pick some candidate (the
	// cheapest), and an impossible one must 422.
	rec := postJSON(t, h, "/select", `{"app":"kmeans","size":"512MB","deadline":"100h"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("generous deadline: status %d: %s", rec.Code, rec.Body)
	}
	var resp SelectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Selected == nil {
		t.Fatal("no candidate selected under generous deadline")
	}
	rec = postJSON(t, h, "/select", `{"app":"kmeans","size":"512MB","deadline":"1ns"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("impossible deadline: status %d, want 422: %s", rec.Code, rec.Body)
	}
}

func TestObserveUpdatesSelectionBandwidth(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	baseline := selectTopBandwidth(t, h)
	// Feed transfers showing the osu-repository path at ~5MB/s, far below
	// its static 100MB/s: the live b̂ must change what /select reports.
	for i := 1; i <= 6; i++ {
		body := fmt.Sprintf(`{"site":"osu-repository","cluster":"pentium-myrinet",`+
			`"bytes":"%dMB","elapsed":"%dms"}`, 5*i, 1000*i)
		rec := postJSON(t, h, "/observe", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("/observe status %d: %s", rec.Code, rec.Body)
		}
	}
	var last ObserveResponse
	rec := postJSON(t, h, "/observe", `{"site":"osu-repository","cluster":"pentium-myrinet","bytes":"35MB","elapsed":"7s"}`)
	if err := json.Unmarshal(rec.Body.Bytes(), &last); err != nil {
		t.Fatal(err)
	}
	if last.Samples != 7 {
		t.Fatalf("samples = %d, want 7", last.Samples)
	}
	if last.Bandwidth == "" {
		t.Fatal("no bandwidth estimate after 7 samples")
	}
	degraded := selectTopBandwidth(t, h)
	if degraded["osu-repository"] == baseline["osu-repository"] {
		t.Fatalf("osu-repository bandwidth unchanged by observations: %v", degraded)
	}
}

// selectTopBandwidth maps site -> bandwidth from a /select ranking.
func selectTopBandwidth(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	rec := postJSON(t, h, "/select", `{"app":"kmeans","size":"512MB"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("/select status %d: %s", rec.Code, rec.Body)
	}
	var resp SelectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, c := range resp.Candidates {
		out[c.Site] = float64(c.Bandwidth)
	}
	return out
}

func TestInputBoundaryRejectsNonFiniteSizes(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	cases := []struct{ path, body string }{
		{"/predict", `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"inf"}}`},
		{"/predict", `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"nan","datasetBytes":"512MB"}}`},
		{"/predict", `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"1e300GB"}}`},
		{"/select", `{"app":"kmeans","size":"inf"}`},
		{"/select", `{"app":"kmeans","size":"nan"}`},
		{"/select", `{"app":"kmeans","size":"1e300GB"}`},
		{"/observe", `{"site":"s","cluster":"c","bytes":"inf","elapsed":"1s"}`},
	}
	for _, c := range cases {
		rec := postJSON(t, h, c.path, c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s with %s: status %d, want 400 (%s)", c.path, c.body, rec.Code, rec.Body)
		}
	}
}

func TestHandlerErrors(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	cases := []struct {
		name string
		do   func() *httptest.ResponseRecorder
		want int
	}{
		{"unknown app", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/predict", `{"app":"nope","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"512MB"}}`)
		}, http.StatusNotFound},
		{"invalid config", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/predict", `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":8,"computeNodes":2,"bandwidth":"100MB","datasetBytes":"512MB"}}`)
		}, http.StatusBadRequest},
		{"unknown variant", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/predict", `{"app":"kmeans","variant":"psychic","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"512MB"}}`)
		}, http.StatusBadRequest},
		{"malformed JSON", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/predict", `{"app":`)
		}, http.StatusBadRequest},
		{"unknown field", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/select", `{"app":"kmeans","size":"512MB","bogus":1}`)
		}, http.StatusBadRequest},
		{"GET on POST endpoint", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/predict")
		}, http.StatusMethodNotAllowed},
		{"bad deadline", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/select", `{"app":"kmeans","size":"512MB","deadline":"-2s"}`)
		}, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := c.do()
		if rec.Code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body)
		}
		var e apiError
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not a JSON envelope: %s", c.name, rec.Body)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec := getPath(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status %d", rec.Code)
	}
	var resp HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || len(resp.Apps) == 0 {
		t.Fatalf("unexpected health response: %+v", resp)
	}
}

func TestMetricsEndpointCountsRequests(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	before := metrics.GetCounter("fg_http_requests_total",
		"HTTP requests handled, by endpoint.", metrics.Label{Key: "path", Value: "/predict"}).Value()
	body := `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":2,"bandwidth":"100MB","datasetBytes":"512MB"}}`
	for i := 0; i < 3; i++ {
		if rec := postJSON(t, h, "/predict", body); rec.Code != http.StatusOK {
			t.Fatalf("/predict status %d: %s", rec.Code, rec.Body)
		}
	}
	rec := getPath(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	out := rec.Body.String()
	if !strings.Contains(out, `fg_http_requests_total{path="/predict"}`) {
		t.Fatalf("/metrics missing per-endpoint request counter:\n%s", out)
	}
	after := metrics.GetCounter("fg_http_requests_total",
		"HTTP requests handled, by endpoint.", metrics.Label{Key: "path", Value: "/predict"}).Value()
	if after < before+3 {
		t.Fatalf("request counter moved %v -> %v, want +3", before, after)
	}
}

// TestConcurrentLoadSmoke hammers the service from many goroutines; run
// under -race (make check does) this is the data-race gate for the
// shared harness, estimator, and predictor cache.
func TestConcurrentLoadSmoke(t *testing.T) {
	const workers, perWorker = 8, 12
	// Explicit bound >= workers: on a small machine the 4x GOMAXPROCS
	// default could legitimately shed this load with 503s.
	s, err := New(Options{Store: testStore(t), MaxInFlight: 2 * workers})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var rec *httptest.ResponseRecorder
				switch i % 4 {
				case 0:
					rec = postJSON(t, h, "/predict", fmt.Sprintf(
						`{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":%d,"computeNodes":%d,"bandwidth":"100MB","datasetBytes":"1GB"}}`,
						1+w%4, 4+w%4))
				case 1:
					rec = postJSON(t, h, "/select", `{"app":"kmeans","size":"512MB"}`)
				case 2:
					rec = postJSON(t, h, "/observe", fmt.Sprintf(
						`{"site":"remote-mirror","cluster":"pentium-myrinet","bytes":"%dMB","elapsed":"%dms"}`,
						8+i, 300+10*i+w))
				case 3:
					rec = getPath(t, h, "/healthz")
				}
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("worker %d req %d: status %d: %s", w, i, rec.Code, rec.Body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestThrottlingShedsLoad pins the bounded-concurrency middleware: with
// one slot and a slow handler, a second concurrent request gets 503.
func TestThrottlingShedsLoad(t *testing.T) {
	s, err := New(Options{Store: testStore(t), MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.delay = 200 * time.Millisecond
	h := s.Handler()
	body := `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"512MB"}}`
	first := make(chan int, 1)
	go func() {
		first <- postJSON(t, h, "/predict", body).Code
	}()
	time.Sleep(50 * time.Millisecond) // let the first request occupy the slot
	if code := postJSON(t, h, "/predict", body).Code; code != http.StatusServiceUnavailable {
		t.Fatalf("second concurrent request: status %d, want 503", code)
	}
	// /healthz bypasses the bound (it must answer under load) but reports
	// the saturation as degraded state, so load tests can tell shedding
	// from failure.
	rec := getPath(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz under saturation: status %d, want 503 degraded (%s)", rec.Code, rec.Body)
	}
	var health HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || !strings.Contains(health.Reason, "overloaded") {
		t.Fatalf("saturated health = %+v, want degraded/overloaded", health)
	}
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", code)
	}
	// With the slot free again, health must recover to ok/200.
	if code := getPath(t, h, "/healthz").Code; code != http.StatusOK {
		t.Fatalf("/healthz after load drained: status %d, want 200", code)
	}
}

// TestHealthzReportsDraining pins the drain half of the degraded state.
func TestHealthzReportsDraining(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	if code := getPath(t, h, "/healthz").Code; code != http.StatusOK {
		t.Fatalf("fresh server /healthz: %d", code)
	}
	s.StartDrain()
	rec := getPath(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz: status %d, want 503", rec.Code)
	}
	var health HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || !strings.Contains(health.Reason, "draining") {
		t.Fatalf("draining health = %+v", health)
	}
	// Draining sheds only new health probes, not requests already allowed
	// in: /predict still answers.
	body := `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"512MB"}}`
	if code := postJSON(t, h, "/predict", body).Code; code != http.StatusOK {
		t.Fatalf("/predict while draining: status %d, want 200", code)
	}
}

// TestGracefulShutdownCompletesInFlight proves http.Server.Shutdown
// drains a request already being handled instead of killing it.
func TestGracefulShutdownCompletesInFlight(t *testing.T) {
	s := testServer(t)
	s.delay = 300 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()

	type result struct {
		status int
		body   string
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		body := `{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"512MB"}}`
		resp, err := http.Post("http://"+ln.Addr().String()+"/predict", "application/json", strings.NewReader(body))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		resc <- result{status: resp.StatusCode, body: string(out)}
	}()

	time.Sleep(100 * time.Millisecond) // request is now in the handler's delay
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", res.err)
	}
	if res.status != http.StatusOK || !strings.Contains(res.body, "texecNs") {
		t.Fatalf("in-flight request: status %d body %s", res.status, res.body)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// New connections must be refused after shutdown.
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}
