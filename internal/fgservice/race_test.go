//go:build race

package fgservice

// raceEnabled skips allocation gates under the race detector: sync.Pool
// deliberately drops pooled items at random when racing, so pooled-path
// allocation counts are not meaningful there.
const raceEnabled = true
