package fgservice

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"freerideg/internal/metrics"
)

const batchPredictItem = `{"app":"kmeans","config":{"cluster":"pentium-myrinet",` +
	`"dataNodes":4,"computeNodes":8,"bandwidth":"100MB","datasetBytes":"1.4GB"}}`

// TestPredictBatchMatchesSingular pins the batch plane to the singular
// endpoint: a good item's response must be exactly the /predict answer,
// and bad items must answer with the same status the singular endpoint
// would have, without failing the batch.
func TestPredictBatchMatchesSingular(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	want := predictResponseOf(t, h, batchPredictItem)

	body := fmt.Sprintf(`{"items":[%s,%s,%s,%s]}`,
		batchPredictItem,
		`{"app":"no-such-app","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"1MB","datasetBytes":"1MB"}}`,
		`{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":8,"computeNodes":4,"bandwidth":"100MB","datasetBytes":"1GB"}}`,
		`{"app":"kmeans","variant":"bogus","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"1MB","datasetBytes":"1MB"}}`)
	rec := postJSON(t, h, "/predict/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/predict/batch status %d: %s", rec.Code, rec.Body)
	}
	var resp PredictBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 4 {
		t.Fatalf("batch answered %d items, want 4", len(resp.Items))
	}
	if resp.Items[0].Response == nil || resp.Items[0].Error != nil {
		t.Fatalf("good item answered with error: %+v", resp.Items[0].Error)
	}
	if *resp.Items[0].Response != want {
		t.Fatalf("batch item differs from singular /predict:\n%+v\nvs\n%+v", *resp.Items[0].Response, want)
	}
	if resp.StoreVersion != want.StoreVersion {
		t.Fatalf("batch StoreVersion %d, item served at %d", resp.StoreVersion, want.StoreVersion)
	}
	for i, wantStatus := range map[int]int{1: http.StatusNotFound, 2: http.StatusBadRequest, 3: http.StatusBadRequest} {
		item := resp.Items[i]
		if item.Error == nil {
			t.Fatalf("bad item %d answered without error: %+v", i, item.Response)
		}
		if item.Error.Status != wantStatus {
			t.Fatalf("bad item %d status %d (%s), want %d", i, item.Error.Status, item.Error.Error, wantStatus)
		}
	}
}

// TestSelectBatchMatchesSingular pins select batches the same way,
// including the per-item Limit truncation.
func TestSelectBatchMatchesSingular(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	single := postJSON(t, h, "/select", `{"app":"kmeans","size":"512MB"}`)
	if single.Code != http.StatusOK {
		t.Fatalf("/select status %d: %s", single.Code, single.Body)
	}
	var want SelectResponse
	if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}

	body := `{"items":[` +
		`{"app":"kmeans","size":"512MB"},` +
		`{"app":"kmeans","size":"512MB","limit":2},` +
		`{"app":"kmeans","size":"not-a-size"},` +
		`{"app":"kmeans","size":"512MB","deadline":"-3s"}]}`
	rec := postJSON(t, h, "/select/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/select/batch status %d: %s", rec.Code, rec.Body)
	}
	var resp SelectBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 4 {
		t.Fatalf("batch answered %d items, want 4", len(resp.Items))
	}
	got := resp.Items[0].Response
	if got == nil {
		t.Fatalf("good item answered with error: %+v", resp.Items[0].Error)
	}
	if got.StoreVersion != want.StoreVersion || len(got.Candidates) != len(want.Candidates) ||
		*got.Selected != *want.Selected {
		t.Fatalf("batch item differs from singular /select:\n%+v\nvs\n%+v", got, want)
	}
	for i := range want.Candidates {
		if got.Candidates[i] != want.Candidates[i] {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, got.Candidates[i], want.Candidates[i])
		}
	}
	if limited := resp.Items[1].Response; limited == nil || len(limited.Candidates) != 2 {
		t.Fatalf("limit item: %+v", resp.Items[1])
	}
	for _, i := range []int{2, 3} {
		if resp.Items[i].Error == nil || resp.Items[i].Error.Status != http.StatusBadRequest {
			t.Fatalf("bad item %d: %+v", i, resp.Items[i])
		}
	}
}

// TestBatchSizeRejected: an empty batch and an oversized batch are
// whole-request 400s.
func TestBatchSizeRejected(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	if rec := postJSON(t, h, "/predict/batch", `{"items":[]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", rec.Code)
	}
	items := make([]string, MaxBatchItems+1)
	for i := range items {
		items[i] = `{"app":"kmeans","size":"1MB"}`
	}
	over := `{"items":[` + strings.Join(items, ",") + `]}`
	if rec := postJSON(t, h, "/select/batch", over); rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", rec.Code)
	}
}

// TestBatchFillsAndHitsResponseCache: batch items go through the same
// versioned response cache as singular requests — duplicates inside one
// batch collapse to one fill, and a later singular request hits what
// the batch filled.
func TestBatchFillsAndHitsResponseCache(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	hits := cacheCounter(t, "fg_servecache_hits_total", "predict")
	misses := cacheCounter(t, "fg_servecache_misses_total", "predict")
	coalesced := cacheCounter(t, "fg_servecache_coalesced_total", "predict")
	h0, m0, c0 := hits.Value(), misses.Value(), coalesced.Value()

	items := make([]string, 8)
	for i := range items {
		items[i] = batchPredictItem
	}
	rec := postJSON(t, h, "/predict/batch", `{"items":[`+strings.Join(items, ",")+`]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("/predict/batch status %d: %s", rec.Code, rec.Body)
	}
	if got := misses.Value() - m0; got != 1 {
		t.Fatalf("8 identical batch items filled %v times, want 1 (single-flight)", got)
	}
	// The other 7 items are served by that one fill either way the race
	// falls: a hit on the completed entry or a coalesced wait on the
	// in-flight one.
	if h, c := hits.Value()-h0, coalesced.Value()-c0; h+c != 7 {
		t.Fatalf("8 identical batch items: %v hits + %v coalesced, want 7 combined", h, c)
	}
	if rec := postJSON(t, h, "/predict", batchPredictItem); rec.Code != http.StatusOK {
		t.Fatalf("/predict status %d", rec.Code)
	}
	if got := hits.Value() - h0; got < 1 {
		t.Fatalf("singular request after batch did not hit the cache (hits moved %v)", got)
	}
}

// TestBatchSelectCoherenceUnderEpochBumps extends the serve-path
// coherence guarantee to the batch plane: while recalibrations land
// concurrently, no batch item may answer from a store snapshot older
// than the last recalibration that completed before its batch was sent.
func TestBatchSelectCoherenceUnderEpochBumps(t *testing.T) {
	// A roomy concurrency bound: this test measures coherence, not the
	// load-shedding limiter (which would 503 the writer on small hosts).
	s, err := New(Options{Store: testStore(t), MaxInFlight: 64})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	var floor atomic.Uint64
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			halveProfile(t, s)
			floor.Store(s.store.Snapshot().Version())
			// Interleave estimator bumps so the select-cache version moves
			// through both of its components.
			ob := fmt.Sprintf(`{"site":"osu-repository","cluster":"pentium-myrinet",`+
				`"bytes":"%dMB","elapsed":"%dms"}`, 5+i%7, 400+50*(i%9))
			if rec := postJSON(t, h, "/observe", ob); rec.Code != http.StatusOK {
				t.Errorf("/observe status %d: %s", rec.Code, rec.Body)
				return
			}
		}
	}()

	body := `{"items":[{"app":"kmeans","size":"512MB"},{"app":"kmeans","size":"512MB","limit":1},` +
		`{"app":"kmeans","size":"256MB"}]}`
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				min := floor.Load()
				rec := postJSON(t, h, "/select/batch", body)
				if rec.Code != http.StatusOK {
					t.Errorf("/select/batch status %d: %s", rec.Code, rec.Body)
					return
				}
				var resp SelectBatchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Error(err)
					return
				}
				for j, item := range resp.Items {
					if item.Error != nil {
						t.Errorf("item %d failed: %+v", j, item.Error)
						return
					}
					if item.Response.StoreVersion < min {
						t.Errorf("item %d served store version %d < recalibration floor %d",
							j, item.Response.StoreVersion, min)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// TestBatchMetricsMove smoke-checks the fg_batch_* series.
func TestBatchMetricsMove(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	reqs := metrics.GetCounter("fg_batch_requests_total", "")
	items := metrics.GetCounter("fg_batch_items_total", "")
	errs := metrics.GetCounter("fg_batch_item_errors_total", "")
	r0, i0, e0 := reqs.Value(), items.Value(), errs.Value()
	body := fmt.Sprintf(`{"items":[%s,{"app":"no-such-app","config":{"cluster":"c","dataNodes":1,`+
		`"computeNodes":1,"bandwidth":"1MB","datasetBytes":"1MB"}}]}`, batchPredictItem)
	if rec := postJSON(t, h, "/predict/batch", body); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if reqs.Value()-r0 != 1 || items.Value()-i0 != 2 || errs.Value()-e0 != 1 {
		t.Fatalf("batch counters moved (%v, %v, %v), want (1, 2, 1)",
			reqs.Value()-r0, items.Value()-i0, errs.Value()-e0)
	}
}

// discardRW is a ResponseWriter without a growing body buffer, so the
// writeJSON allocation gate measures writeJSON and not the recorder.
type discardRW struct{ h http.Header }

func (d *discardRW) Header() http.Header         { return d.h }
func (d *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardRW) WriteHeader(int)             {}

// TestWriteJSONPooledAllocs is the hot-path allocation gate for the
// response encoder: with pooled encode state, writing a typical
// response must stay within a handful of allocations (header values,
// encoder scratch) instead of allocating a fresh encoder and buffer
// every call.
func TestWriteJSONPooledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	resp := PredictResponse{App: "kmeans", Variant: "global", Pretty: "t_d=1s"}
	w := &discardRW{h: make(http.Header)}
	per := testing.AllocsPerRun(200, func() {
		writeJSON(w, http.StatusOK, resp)
	})
	if per > 6.0 {
		t.Errorf("writeJSON allocates %.1f objects per call, want <= 6", per)
	}
}

// TestWriteJSONCountsEncodeFailures: an unencodable value must count,
// not silently truncate the response.
func TestWriteJSONCountsEncodeFailures(t *testing.T) {
	failures := metrics.GetCounter("fg_http_encode_failures_total", "")
	f0 := failures.Value()
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{"bad": func() {}})
	if failures.Value()-f0 != 1 {
		t.Fatalf("encode failures moved %v, want 1", failures.Value()-f0)
	}
	var env apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("error envelope is not JSON: %v\n%s", err, rec.Body)
	}
	if env.Status != http.StatusInternalServerError {
		t.Fatalf("envelope status %d, want 500", env.Status)
	}
}

// TestWriteJSONSetsContentLength: the pooled path must declare the
// response length it buffered.
func TestWriteJSONSetsContentLength(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, apiError{Error: "x", Status: 400})
	cl := rec.Header().Get("Content-Length")
	if cl == "" {
		t.Fatal("Content-Length not set")
	}
	if want := fmt.Sprint(rec.Body.Len()); cl != want {
		t.Fatalf("Content-Length %s, body is %s bytes", cl, want)
	}
}

// BenchmarkPredictBatch measures a 64-item batch through the full
// handler stack against 64 sequential singular requests — the
// amortization the batch plane exists for.
func BenchmarkPredictBatch(b *testing.B) {
	items := make([]string, 64)
	for i := range items {
		items[i] = fmt.Sprintf(`{"app":"kmeans","config":{"cluster":"pentium-myrinet",`+
			`"dataNodes":4,"computeNodes":8,"bandwidth":"%dMB","datasetBytes":"1.4GB"}}`, 50+i)
	}
	batchBody := `{"items":[` + strings.Join(items, ",") + `]}`

	post := func(b *testing.B, h http.Handler, path, body string) {
		b.Helper()
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("%s status %d: %s", path, rec.Code, rec.Body)
		}
	}

	b.Run("batch-64", func(b *testing.B) {
		h := benchServer(b).Handler()
		post(b, h, "/predict/batch", batchBody)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, "/predict/batch", batchBody)
		}
	})
	b.Run("sequential-64", func(b *testing.B) {
		h := benchServer(b).Handler()
		for _, item := range items {
			post(b, h, "/predict", item)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, item := range items {
				post(b, h, "/predict", item)
			}
		}
	})
}

// BenchmarkSelectBatch is the select-side pairing of
// BenchmarkPredictBatch, with distinct sizes so every item ranks.
func BenchmarkSelectBatch(b *testing.B) {
	items := make([]string, 64)
	for i := range items {
		items[i] = fmt.Sprintf(`{"app":"kmeans","size":"%dMB"}`, 128+8*i)
	}
	batchBody := `{"items":[` + strings.Join(items, ",") + `]}`

	post := func(b *testing.B, h http.Handler, path, body string) {
		b.Helper()
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("%s status %d: %s", path, rec.Code, rec.Body)
		}
	}

	b.Run("batch-64", func(b *testing.B) {
		h := benchServer(b).Handler()
		post(b, h, "/select/batch", batchBody)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, "/select/batch", batchBody)
		}
	})
	b.Run("sequential-64", func(b *testing.B) {
		h := benchServer(b).Handler()
		for _, item := range items {
			post(b, h, "/select", item)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, item := range items {
				post(b, h, "/select", item)
			}
		}
	})
}
