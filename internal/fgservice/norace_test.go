//go:build !race

package fgservice

const raceEnabled = false
