package fgservice

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"freerideg/internal/reqtrace"
	"freerideg/internal/units"
)

// findTrace scans a ring snapshot for the record with the given request
// ID, searching every retention section.
func findTrace(snap reqtrace.RingSnapshot, id string) *reqtrace.Record {
	for _, sec := range [][]reqtrace.Record{snap.Recent, snap.Slowest, snap.Errored} {
		for i := range sec {
			if sec[i].ID == id {
				return &sec[i]
			}
		}
	}
	return nil
}

// spanChain walks parent pointers from span idx up to the root and
// returns the names along the way, leaf first.
func spanChain(spans []reqtrace.SpanRecord, idx int) []string {
	var names []string
	for idx >= 0 && idx < len(spans) {
		names = append(names, spans[idx].Name)
		idx = spans[idx].Parent
	}
	return names
}

// TestPredictBatchTraceTree is the acceptance test for the tentpole: a
// /predict/batch request with a forced cache miss (fresh server, empty
// store, so the item self-profiles) must produce a trace observable via
// /debug/requests showing root → handler → per-item workpool spans →
// cache fill → simulate, with every span inside the root's window, and
// the response must carry X-FG-Request-ID.
func TestPredictBatchTraceTree(t *testing.T) {
	// Empty store: kmeans self-profiles, so the trace includes the
	// simulate span. Small BaseBytes keeps the profiling run fast.
	s, err := New(Options{BaseBytes: 8 * units.MB, BatchParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	rec := postJSON(t, h, "/predict/batch", `{"items":[`+goodPredict+`]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}
	id := rec.Header().Get("X-FG-Request-ID")
	if id == "" {
		t.Fatal("response carries no X-FG-Request-ID header")
	}

	dbg := getPath(t, h, "/debug/requests")
	if dbg.Code != http.StatusOK {
		t.Fatalf("/debug/requests status %d: %s", dbg.Code, dbg.Body)
	}
	var snap reqtrace.RingSnapshot
	if err := json.Unmarshal(dbg.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/debug/requests is not a ring snapshot: %v\n%s", err, dbg.Body)
	}
	tr := findTrace(snap, id)
	if tr == nil {
		t.Fatalf("request %s not present in /debug/requests: %s", id, dbg.Body)
	}
	if tr.Path != "/predict/batch" || tr.Status != http.StatusOK {
		t.Fatalf("trace = path %q status %d, want /predict/batch 200", tr.Path, tr.Status)
	}

	// Structural invariants: spans[0] is the root, every other span's
	// parent precedes it, and every span's window fits inside the root's.
	spans := tr.Spans
	if len(spans) == 0 || spans[0].Parent != -1 || spans[0].Name != "/predict/batch" {
		t.Fatalf("malformed root: %+v", spans)
	}
	root := spans[0]
	for i, sp := range spans[1:] {
		if sp.Parent < 0 || sp.Parent > i {
			t.Errorf("span %d %q: parent %d does not precede it", i+1, sp.Name, sp.Parent)
		}
		if sp.StartNs < 0 || sp.DurationNs < 0 || sp.StartNs+sp.DurationNs > root.DurationNs {
			t.Errorf("span %q window [%d, +%d] escapes root window [0, %d]",
				sp.Name, sp.StartNs, sp.DurationNs, root.DurationNs)
		}
	}
	// The root's direct children (the handler span) sum to at most the
	// root duration.
	var childSum time.Duration
	for _, sp := range spans[1:] {
		if sp.Parent == 0 {
			childSum += sp.DurationNs
		}
	}
	if childSum > root.DurationNs {
		t.Errorf("root's children sum to %dns > root %dns", childSum, root.DurationNs)
	}

	// The acceptance chain: the self-profiling simulation hangs off the
	// cache fill, which hangs off the batch item, under the handler.
	simIdx := -1
	for i, sp := range spans {
		if sp.Name == "simulate" {
			simIdx = i
			break
		}
	}
	if simIdx < 0 {
		t.Fatalf("no simulate span in trace: %+v", spans)
	}
	got := spanChain(spans, simIdx)
	want := []string{"simulate", "fill", "item", "handler", "/predict/batch"}
	if len(got) != len(want) {
		t.Fatalf("simulate chain %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("simulate chain %v, want %v", got, want)
		}
	}
	// The item span carries its positional index and outcome.
	itemIdx := spans[simIdx].Parent // fill
	itemIdx = spans[itemIdx].Parent // item
	if note := spans[itemIdx].Note; !strings.Contains(note, "i=0") || !strings.Contains(note, "ok") {
		t.Errorf("item span note %q, want positional index and outcome", note)
	}
	// decode and encode spans bracket the handler work.
	names := make(map[string]bool, len(spans))
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"decode", "encode", "cache:predict"} {
		if !names[want] {
			t.Errorf("trace has no %q span: %+v", want, spans)
		}
	}
}

// TestTimeoutEnvelopeCarriesRequestID pins the correlation contract on
// the middleware-written error path: the 504 envelope the middleware
// renders when the handler overruns its deadline carries the same
// request ID as the X-FG-Request-ID header, and the timed-out request
// is retained in the errored section of the trace ring.
func TestTimeoutEnvelopeCarriesRequestID(t *testing.T) {
	s, err := New(Options{Store: testStore(t), MaxInFlight: 4, RequestTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.delay = 2 * time.Second
	rec := postJSON(t, s.Handler(), "/predict", goodPredict)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body)
	}
	id := rec.Header().Get("X-FG-Request-ID")
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("504 body is not a JSON envelope: %v\n%s", err, rec.Body)
	}
	if id == "" || e.RequestID != id {
		t.Fatalf("envelope requestId %q vs header %q: want equal and non-empty", e.RequestID, id)
	}

	dbg := getPath(t, s.Handler(), "/debug/requests")
	var snap reqtrace.RingSnapshot
	if err := json.Unmarshal(dbg.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	tr := findTrace(snap, id)
	if tr == nil {
		t.Fatalf("timed-out request %s not retained in trace ring", id)
	}
	if tr.Status != http.StatusGatewayTimeout {
		t.Fatalf("retained trace status %d, want 504", tr.Status)
	}
	found := false
	for i := range snap.Errored {
		if snap.Errored[i].ID == id {
			found = true
		}
	}
	if !found {
		t.Errorf("504 trace missing from the errored reservation")
	}
}

// TestSlowRequestLogged: a request over the slow threshold emits one
// structured log line carrying the request ID and a span breakdown.
func TestSlowRequestLogged(t *testing.T) {
	var buf syncBuffer
	s, err := New(Options{Store: testStore(t), SlowRequestThreshold: time.Nanosecond, SlowLogWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, s.Handler(), "/predict", goodPredict)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	id := rec.Header().Get("X-FG-Request-ID")
	line := buf.String()
	for _, want := range []string{"slow_request", "id=" + id, "path=/predict", "status=200", "handler:"} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log %q missing %q", line, want)
		}
	}
}

// TestTraceSampleDisablesTracing: with sampling off, responses still
// carry request IDs but no traces are retained.
func TestTraceSampleDisablesTracing(t *testing.T) {
	s, err := New(Options{Store: testStore(t), TraceSample: -1})
	if err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, s.Handler(), "/predict", goodPredict)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-FG-Request-ID") == "" {
		t.Error("request ID must be issued even with tracing disabled")
	}
	dbg := getPath(t, s.Handler(), "/debug/requests")
	var snap reqtrace.RingSnapshot
	if err := json.Unmarshal(dbg.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if n := len(snap.Recent) + len(snap.Slowest) + len(snap.Errored); n != 0 {
		t.Errorf("trace ring holds %d records with sampling disabled", n)
	}
}

// TestTraceSampleOneInN: with TraceSample=4, roughly one request in
// four is traced — exactly 4 of 16 here, since sampling is a strict
// modulo counter, not probabilistic.
func TestTraceSampleOneInN(t *testing.T) {
	s, err := New(Options{Store: testStore(t), TraceSample: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for i := 0; i < 16; i++ {
		if rec := postJSON(t, h, "/predict", goodPredict); rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
	dbg := getPath(t, h, "/debug/requests")
	var snap reqtrace.RingSnapshot
	if err := json.Unmarshal(dbg.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if got := len(snap.Recent); got != 4 {
		t.Errorf("traced %d of 16 requests at TraceSample=4, want 4", got)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the slow-request log
// writer must tolerate writes from whichever goroutine finishes a
// request.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// replayBody is a rewindable request body so the allocation gate can
// reuse one request object across runs.
type replayBody struct{ r *strings.Reader }

func (b replayBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b replayBody) Close() error               { return nil }

// TestPredictWarmPathAllocs is the hot-path allocation gate for the
// full middleware stack: a warm (cache-hit) singular /predict with
// tracing disabled by sampling. The request-ID machinery contributes
// exactly two of these allocations (the ID string and the shared
// header value slice); the rest is the pre-existing request plumbing
// (timeout context, buffered response, handler goroutine, decode and
// encode scratch). The budget has modest headroom over the measured
// cost so a regression that adds per-request garbage trips it while
// scheduler jitter does not.
func TestPredictWarmPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	s, err := New(Options{Store: testStore(t), TraceSample: -1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	// Warm the response cache so every measured run is a pure hit.
	if rec := postJSON(t, h, "/predict", goodPredict); rec.Code != http.StatusOK {
		t.Fatalf("warmup status %d: %s", rec.Code, rec.Body)
	}

	body := strings.NewReader(goodPredict)
	req := httptest.NewRequest(http.MethodPost, "/predict", nil)
	req.Header.Set("Content-Type", "application/json")
	req.Body = replayBody{r: body}
	w := &discardRW{h: make(http.Header)}
	per := testing.AllocsPerRun(200, func() {
		body.Seek(0, io.SeekStart)
		h.ServeHTTP(w, req)
	})
	const budget = 48.0
	if per > budget {
		t.Errorf("warm /predict allocates %.1f objects per request, want <= %.0f", per, budget)
	}
}
