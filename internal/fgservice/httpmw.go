package fgservice

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"

	"freerideg/internal/metrics"
	"freerideg/internal/reqtrace"
)

// limiter bounds concurrently handled requests with the same
// semaphore-channel shape as the bench harness's worker pool. Unlike the
// pool, a full limiter rejects instead of queueing: a saturated
// prediction service should shed load with 503s, not build an unbounded
// backlog of goroutines.
type limiter struct {
	slots chan struct{}
}

// newLimiter builds a limiter admitting n concurrent requests (n < 1
// selects 4×GOMAXPROCS, enough to keep the prediction arithmetic and the
// occasional profiling simulation busy without unbounded fan-out).
func newLimiter(n int) *limiter {
	if n < 1 {
		n = 4 * runtime.GOMAXPROCS(0)
	}
	return &limiter{slots: make(chan struct{}, n)}
}

// tryAcquire claims a slot without blocking.
func (l *limiter) tryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (l *limiter) release() { <-l.slots }

// saturated reports whether every slot is taken right now — the signal
// /healthz uses to report degraded state while load is being shed.
func (l *limiter) saturated() bool { return len(l.slots) == cap(l.slots) }

// bufferedResponse is the private ResponseWriter a handler goroutine
// renders into. The middleware goroutine owns the real ResponseWriter:
// it either flushes the buffer after the handler finishes, or abandons
// the buffer and answers the timeout/cancel envelope itself. The two
// goroutines never touch the buffer concurrently — the handler's last
// write happens-before the flush (channel close), and an abandoned
// buffer is only ever written by the handler.
type bufferedResponse struct {
	header http.Header
	buf    bytes.Buffer
	status int
}

func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{header: make(http.Header)}
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.buf.Write(p)
}

// flush copies the buffered response onto the real writer and reports
// the status it carried.
func (b *bufferedResponse) flush(w http.ResponseWriter) int {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	dst := w.Header()
	for k, vs := range b.header {
		dst[k] = vs
	}
	w.WriteHeader(b.status)
	_, _ = w.Write(b.buf.Bytes())
	return b.status
}

// instrument wraps one endpoint with method filtering, the concurrency
// bound (nil lim admits everything — /healthz must answer even under
// load), deadline/cancellation propagation, the test-only slowdown, and
// per-endpoint request metrics.
//
// Every admitted request runs its handler under a context derived from
// the client's (so a disconnect cancels it) bounded by the server's
// RequestTimeout budget. The handler renders into a private buffer on
// its own goroutine; if the context ends first, the middleware answers
// the JSON timeout/cancel envelope immediately and the handler — whose
// context is the same, now-canceled one — unwinds cooperatively,
// releasing its limiter slot the moment it returns rather than holding
// it for a full computation nobody is waiting on.
func (s *Server) instrument(path string, lim *limiter, method string, h http.HandlerFunc) http.Handler {
	label := metrics.Label{Key: "path", Value: path}
	requests := metrics.GetCounter("fg_http_requests_total",
		"HTTP requests handled, by endpoint.", label)
	errs := metrics.GetCounter("fg_http_errors_total",
		"HTTP responses with status >= 400, by endpoint.", label)
	throttled := metrics.GetCounter("fg_http_throttled_total",
		"HTTP requests rejected with 503 by the concurrency bound, by endpoint.", label)
	canceled := metrics.GetCounter("fg_requests_canceled_total",
		"Requests abandoned because the client disconnected mid-handling, by endpoint.", label)
	deadlineExceeded := metrics.GetCounter("fg_requests_deadline_exceeded_total",
		"Requests that exhausted the per-request deadline budget and answered 504, by endpoint.", label)
	latency := metrics.GetHistogram("fg_http_request_seconds",
		"HTTP request handling latency in seconds, by endpoint.", nil, label)
	inflight := metrics.GetGauge("fg_http_inflight_requests",
		"Requests currently being handled, by endpoint.", label)

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		// Every request — including ones rejected below — gets an ID,
		// echoed in the response header and readable by writeError for
		// the error envelope. The shared slice is assigned into the
		// header map directly (instead of via Set) so the ID costs
		// exactly two allocations: the string and this slice.
		idv := []string{reqtrace.NewID()}
		w.Header()[reqtrace.Header] = idv
		if r.Method != method {
			errs.Inc()
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed,
				&methodError{method: r.Method, want: method, path: path})
			return
		}
		if lim != nil && !lim.tryAcquire() {
			throttled.Inc()
			errs.Inc()
			writeError(w, http.StatusServiceUnavailable, errOverloaded)
			return
		}
		ctx, cancelReq := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		// Tracing rides only the bounded endpoints (the ones doing real
		// work) and only when sampling selects the request; the ID above
		// is unconditional. The middleware selects on ctx — the trace
		// context derives from it, so the deadline is shared.
		var tr *reqtrace.Trace
		hctx := ctx
		var hspan reqtrace.Span
		if lim != nil && s.sampleTrace() {
			tr = reqtrace.New(idv[0], path)
			hctx = reqtrace.WithTrace(ctx, tr)
			hctx, hspan = reqtrace.StartSpan(hctx, "handler")
		}
		r = r.WithContext(hctx)
		inflight.Add(1)
		start := time.Now()

		br := newBufferedResponse()
		br.header[reqtrace.Header] = idv
		done := make(chan struct{})
		go func() {
			defer func() {
				// Released here — not in the middleware — so the slot and
				// inflight gauge track the handler's actual lifetime even
				// when the middleware answered early. A cooperative handler
				// unwinds promptly once ctx ends, so an abandoned request
				// frees its slot in microseconds, not at the full deadline.
				if lim != nil {
					lim.release()
				}
				inflight.Add(-1)
				cancelReq()
			}()
			// Registered after the release defer so it runs before it
			// (LIFO): done must close before cancelReq fires, or the
			// middleware could observe the release's own cancellation and
			// misreport a completed request as canceled.
			defer close(done)
			// The test-only slowdown models handler work, which only the
			// bounded endpoints do; a delayed health probe would observe the
			// world after the load it is meant to report has drained. It is
			// context-aware like any other handler work.
			if s.delay > 0 && lim != nil {
				select {
				case <-time.After(s.delay):
				case <-ctx.Done():
					// The request died mid-delay: running the handler now
					// would do real work — cache fills, profiling runs — on
					// behalf of nobody, perturbing shared state long after
					// the middleware has answered. Render the same envelope
					// a cooperative handler would and unwind.
					err := ctx.Err()
					writeError(br, errorStatus(err), err)
					hspan.End()
					return
				}
			}
			h(br, r)
			hspan.End()
		}()

		var status int
		select {
		case <-done:
			status = br.flush(w)
		case <-ctx.Done():
			select {
			case <-done:
				// The handler finished in the same instant the context
				// ended; its complete response wins — it is already paid
				// for and still deliverable.
				status = br.flush(w)
			default:
				// The handler is still running against the same canceled
				// context; its buffered output is abandoned, never flushed.
				err := ctx.Err()
				status = errorStatus(err)
				writeError(w, status, err)
			}
		}
		elapsed := time.Since(start)
		latency.Observe(elapsed.Seconds())
		if status >= 400 {
			errs.Inc()
		}
		switch status {
		case http.StatusGatewayTimeout:
			deadlineExceeded.Inc()
		case StatusClientClosedRequest:
			canceled.Inc()
		}
		if tr != nil {
			rec := tr.Finish(status, elapsed)
			s.traceRing.Add(rec)
			if thr := s.opts.SlowRequestThreshold; thr > 0 && elapsed >= thr {
				s.logSlowRequest(rec)
			}
		}
	})
}

// sampleTrace decides whether the next bounded-endpoint request gets a
// span tree: a negative TraceSample disables tracing, 0 or 1 traces
// every request, n > 1 traces one in n (the counter is server-wide, so
// the sampled fraction holds across endpoints).
func (s *Server) sampleTrace() bool {
	n := s.opts.TraceSample
	switch {
	case n < 0:
		return false
	case n <= 1:
		return true
	}
	return s.traceSeq.Add(1)%uint64(n) == 1
}

// logSlowRequest emits the one-line over-threshold report: the request
// identity, outcome, total latency, and the span breakdown (name,
// duration, and note per span, parentage by nesting order).
func (s *Server) logSlowRequest(rec reqtrace.Record) {
	var b strings.Builder
	fmt.Fprintf(&b, "slow_request id=%s path=%s status=%d duration=%s spans=%d breakdown=\"",
		rec.ID, rec.Path, rec.Status, rec.DurationNs, len(rec.Spans))
	for i, sp := range rec.Spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.Name)
		b.WriteByte(':')
		b.WriteString(sp.DurationNs.String())
		if sp.Note != "" {
			b.WriteByte('[')
			b.WriteString(sp.Note)
			b.WriteByte(']')
		}
	}
	b.WriteString("\"\n")
	s.slowLogMu.Lock()
	_, _ = io.WriteString(s.slowLog, b.String())
	s.slowLogMu.Unlock()
}

type methodError struct {
	method, want, path string
}

func (e *methodError) Error() string {
	return "method " + e.method + " not allowed on " + e.path + " (want " + e.want + ")"
}

type constError string

func (e constError) Error() string { return string(e) }

// errOverloaded is the load-shedding response body.
const errOverloaded = constError("service overloaded: concurrency bound reached, retry later")
