package fgservice

import (
	"net/http"
	"runtime"
	"time"

	"freerideg/internal/metrics"
)

// limiter bounds concurrently handled requests with the same
// semaphore-channel shape as the bench harness's worker pool. Unlike the
// pool, a full limiter rejects instead of queueing: a saturated
// prediction service should shed load with 503s, not build an unbounded
// backlog of goroutines.
type limiter struct {
	slots chan struct{}
}

// newLimiter builds a limiter admitting n concurrent requests (n < 1
// selects 4×GOMAXPROCS, enough to keep the prediction arithmetic and the
// occasional profiling simulation busy without unbounded fan-out).
func newLimiter(n int) *limiter {
	if n < 1 {
		n = 4 * runtime.GOMAXPROCS(0)
	}
	return &limiter{slots: make(chan struct{}, n)}
}

// tryAcquire claims a slot without blocking.
func (l *limiter) tryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (l *limiter) release() { <-l.slots }

// saturated reports whether every slot is taken right now — the signal
// /healthz uses to report degraded state while load is being shed.
func (l *limiter) saturated() bool { return len(l.slots) == cap(l.slots) }

// statusRecorder captures the response status for the request counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps one endpoint with method filtering, the concurrency
// bound (nil lim admits everything — /healthz must answer even under
// load), the test-only slowdown, and per-endpoint request metrics.
func (s *Server) instrument(path string, lim *limiter, method string, h http.HandlerFunc) http.Handler {
	label := metrics.Label{Key: "path", Value: path}
	requests := metrics.GetCounter("fg_http_requests_total",
		"HTTP requests handled, by endpoint.", label)
	errs := metrics.GetCounter("fg_http_errors_total",
		"HTTP responses with status >= 400, by endpoint.", label)
	throttled := metrics.GetCounter("fg_http_throttled_total",
		"HTTP requests rejected with 503 by the concurrency bound, by endpoint.", label)
	latency := metrics.GetHistogram("fg_http_request_seconds",
		"HTTP request handling latency in seconds, by endpoint.", nil, label)
	inflight := metrics.GetGauge("fg_http_inflight_requests",
		"Requests currently being handled, by endpoint.", label)

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		if r.Method != method {
			errs.Inc()
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed,
				&methodError{method: r.Method, want: method, path: path})
			return
		}
		if lim != nil {
			if !lim.tryAcquire() {
				throttled.Inc()
				errs.Inc()
				writeError(w, http.StatusServiceUnavailable, errOverloaded)
				return
			}
			defer lim.release()
		}
		inflight.Add(1)
		defer inflight.Add(-1)
		// The test-only slowdown models handler work, which only the
		// bounded endpoints do; a delayed health probe would observe the
		// world after the load it is meant to report has drained.
		if s.delay > 0 && lim != nil {
			time.Sleep(s.delay)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		latency.Observe(time.Since(start).Seconds())
		if rec.status >= 400 {
			errs.Inc()
		}
	})
}

type methodError struct {
	method, want, path string
}

func (e *methodError) Error() string {
	return "method " + e.method + " not allowed on " + e.path + " (want " + e.want + ")"
}

type constError string

func (e constError) Error() string { return string(e) }

// errOverloaded is the load-shedding response body.
const errOverloaded = constError("service overloaded: concurrency bound reached, retry later")
