package fgservice

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"freerideg/internal/metrics"
)

// errorCounter reads the per-endpoint HTTP error counter the
// instrumentation middleware maintains.
func errorCounter(path string) *metrics.Counter {
	return metrics.GetCounter("fg_http_errors_total", "", metrics.Label{Key: "path", Value: path})
}

// doRequest issues one request with an arbitrary method against the
// handler (postJSON is POST-only).
func doRequest(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// oversizedBody is a syntactically valid JSON object just past the
// request body cap, so the only thing wrong with it is its size.
func oversizedBody() string {
	return `{"pad":"` + strings.Repeat("x", MaxRequestBody) + `"}`
}

const (
	goodConfig  = `{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"512MB"}`
	goodPredict = `{"app":"kmeans","config":` + goodConfig + `}`
	goodRun     = `{"app":"kmeans","config":` + goodConfig + `,"tdisk":"2s","tnetwork":"1s","tcompute":"8s"}`
)

// TestHandlerErrorPaths drives every endpoint through its client-error
// classes and pins three contracts per case: the HTTP status, the
// structured apiError envelope (a client mistake is never a bare 500
// body), and that the per-endpoint error counter moved by exactly one.
func TestHandlerErrorPaths(t *testing.T) {
	h := testServer(t).Handler()

	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		status   int
		contains string // required substring of the error message
	}{
		// Wrong method on every endpoint.
		{"predict wrong method", http.MethodGet, "/predict", "", http.StatusMethodNotAllowed, "method"},
		{"select wrong method", http.MethodGet, "/select", "", http.StatusMethodNotAllowed, "method"},
		{"observe wrong method", http.MethodGet, "/observe", "", http.StatusMethodNotAllowed, "method"},
		{"runs wrong method", http.MethodDelete, "/runs", "", http.StatusMethodNotAllowed, "method"},
		{"profiles wrong method", http.MethodPost, "/profiles", "{}", http.StatusMethodNotAllowed, "method"},
		{"healthz wrong method", http.MethodPost, "/healthz", "{}", http.StatusMethodNotAllowed, "method"},

		// Malformed JSON.
		{"predict malformed json", http.MethodPost, "/predict", "{nope", http.StatusBadRequest, "decoding request"},
		{"select malformed json", http.MethodPost, "/select", "[", http.StatusBadRequest, "decoding request"},
		{"observe malformed json", http.MethodPost, "/observe", "not json", http.StatusBadRequest, "decoding request"},
		{"runs malformed json", http.MethodPost, "/runs", `{"app":}`, http.StatusBadRequest, "decoding request"},

		// Empty body is a decode error too, not a panic or a 500.
		{"predict empty body", http.MethodPost, "/predict", "", http.StatusBadRequest, "decoding request"},

		// Unknown fields are rejected — a misspelled key must not be
		// silently dropped into a default.
		{"predict unknown field", http.MethodPost, "/predict",
			`{"app":"kmeans","confg":` + goodConfig + `}`, http.StatusBadRequest, "unknown field"},
		{"select unknown field", http.MethodPost, "/select",
			`{"app":"kmeans","size":"1GB","lmit":3}`, http.StatusBadRequest, "unknown field"},
		{"observe unknown field", http.MethodPost, "/observe",
			`{"site":"osu-repository","cluster":"pentium-myrinet","bytes":"1MB","elapsed":"1s","speed":"9"}`,
			http.StatusBadRequest, "unknown field"},
		{"runs unknown field", http.MethodPost, "/runs",
			`{"app":"kmeans","twall":"10s"}`, http.StatusBadRequest, "unknown field"},

		// Trailing content after the first JSON value.
		{"predict trailing value", http.MethodPost, "/predict", goodPredict + `{}`,
			http.StatusBadRequest, "more than one JSON value"},

		// Oversized bodies on each POST endpoint.
		{"predict oversized body", http.MethodPost, "/predict", oversizedBody(), http.StatusBadRequest, "exceeds"},
		{"select oversized body", http.MethodPost, "/select", oversizedBody(), http.StatusBadRequest, "exceeds"},
		{"observe oversized body", http.MethodPost, "/observe", oversizedBody(), http.StatusBadRequest, "exceeds"},
		{"runs oversized body", http.MethodPost, "/runs", oversizedBody(), http.StatusBadRequest, "exceeds"},

		// Non-finite numerics are stopped at the parse boundary.
		{"predict non-finite size", http.MethodPost, "/predict",
			`{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"NaNGB"}}`,
			http.StatusBadRequest, "non-finite"},
		{"predict non-finite bandwidth", http.MethodPost, "/predict",
			`{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"+InfMB","datasetBytes":"512MB"}}`,
			http.StatusBadRequest, "non-finite"},
		{"select non-finite size", http.MethodPost, "/select",
			`{"app":"kmeans","size":"NaNGB"}`, http.StatusBadRequest, "non-finite"},
		{"observe non-finite bytes", http.MethodPost, "/observe",
			`{"site":"osu-repository","cluster":"pentium-myrinet","bytes":"InfMB","elapsed":"1s"}`,
			http.StatusBadRequest, "non-finite"},
		{"runs non-finite size", http.MethodPost, "/runs",
			`{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"InfGB"},"tdisk":"2s","tnetwork":"1s","tcompute":"8s"}`,
			http.StatusBadRequest, "non-finite"},

		// Unknown application and variant.
		{"predict unknown app", http.MethodPost, "/predict",
			`{"app":"warpdrive","config":` + goodConfig + `}`, http.StatusNotFound, "warpdrive"},
		{"select unknown app", http.MethodPost, "/select",
			`{"app":"warpdrive","size":"1GB"}`, http.StatusNotFound, "warpdrive"},
		{"predict unknown variant", http.MethodPost, "/predict",
			`{"app":"kmeans","variant":"psychic","config":` + goodConfig + `}`, http.StatusBadRequest, "psychic"},
		{"select unknown variant", http.MethodPost, "/select",
			`{"app":"kmeans","size":"1GB","variant":"psychic"}`, http.StatusBadRequest, "psychic"},

		// Semantic validation after a clean decode.
		{"predict invalid config", http.MethodPost, "/predict",
			`{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":4,"computeNodes":2,"bandwidth":"100MB","datasetBytes":"512MB"}}`,
			http.StatusBadRequest, "compute nodes"},
		{"select bad deadline", http.MethodPost, "/select",
			`{"app":"kmeans","size":"1GB","deadline":"soon"}`, http.StatusBadRequest, "deadline"},
		{"observe missing site", http.MethodPost, "/observe",
			`{"cluster":"pentium-myrinet","bytes":"1MB","elapsed":"1s"}`, http.StatusBadRequest, "site"},
		{"runs missing duration", http.MethodPost, "/runs",
			`{"app":"kmeans","config":` + goodConfig + `,"tnetwork":"1s","tcompute":"8s"}`,
			http.StatusBadRequest, "tdisk"},
		{"runs missing app", http.MethodPost, "/runs",
			`{"config":` + goodConfig + `,"tdisk":"2s","tnetwork":"1s","tcompute":"8s"}`,
			http.StatusBadRequest, "app"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errsBefore := errorCounter(tc.path).Value()
			rec := doRequest(t, h, tc.method, tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (%s)", rec.Code, tc.status, rec.Body)
			}
			var apiErr struct {
				Error     string `json:"error"`
				Status    int    `json:"status"`
				RequestID string `json:"requestId"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil {
				t.Fatalf("error body is not the apiError envelope: %v (%s)", err, rec.Body)
			}
			if apiErr.Error == "" || apiErr.Status != tc.status {
				t.Fatalf("envelope = %+v, want non-empty error with status %d", apiErr, tc.status)
			}
			if !strings.Contains(apiErr.Error, tc.contains) {
				t.Errorf("error %q does not mention %q", apiErr.Error, tc.contains)
			}
			// Every error envelope correlates: a non-empty requestId that
			// matches the X-FG-Request-ID response header exactly.
			hdrID := rec.Header().Get("X-FG-Request-ID")
			if apiErr.RequestID == "" || hdrID == "" || apiErr.RequestID != hdrID {
				t.Errorf("requestId %q vs X-FG-Request-ID header %q: want equal and non-empty",
					apiErr.RequestID, hdrID)
			}
			if got := errorCounter(tc.path).Value() - errsBefore; got != 1 {
				t.Errorf("fg_http_errors_total{path=%s} moved by %v, want 1", tc.path, got)
			}
		})
	}
}

// TestErrorPathsLeaveSuccessCounterClean pins that an error request
// still answers a later valid one — the handler state (limiter slots,
// caches) survives every error class above.
func TestErrorPathsLeaveSuccessCounterClean(t *testing.T) {
	h := testServer(t).Handler()
	if rec := postJSON(t, h, "/predict", `{"app":"kmeans","confg":{}}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad request: %d", rec.Code)
	}
	if rec := postJSON(t, h, "/predict", goodPredict); rec.Code != http.StatusOK {
		t.Fatalf("valid request after error: %d (%s)", rec.Code, rec.Body)
	}
}
