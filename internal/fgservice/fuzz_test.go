package fgservice

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// FuzzConfigRequestConfig fuzzes the wire→core boundary of a target
// configuration. The pinned contract: whatever JSON arrives, Config()
// either errors or returns finite quantities — a nil error never
// smuggles NaN/±Inf bandwidths or sizes into the prediction arithmetic
// (where they would poison every downstream duration).
func FuzzConfigRequestConfig(f *testing.F) {
	for _, seed := range []string{
		`{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"512MB"}`,
		`{"bandwidth":"NaNMB","datasetBytes":"1GB"}`,
		`{"bandwidth":"+InfMB","datasetBytes":"NaNGB"}`,
		`{"bandwidth":"1e308GB","datasetBytes":"1e308GB"}`,
		`{"cluster":"","dataNodes":-1,"computeNodes":0,"bandwidth":"","datasetBytes":""}`,
		`{"bandwidth":"-100MB","datasetBytes":"-5MB"}`,
		`{"bandwidth":"100","datasetBytes":"0.0000001KB"}`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		var req ConfigRequest
		if json.Unmarshal([]byte(raw), &req) != nil {
			return
		}
		cfg, err := req.Config()
		if err != nil {
			return
		}
		if bw := float64(cfg.Bandwidth); math.IsNaN(bw) || math.IsInf(bw, 0) {
			t.Fatalf("Config() accepted non-finite bandwidth %v from %q", bw, raw)
		}
		if sz := float64(cfg.DatasetBytes); math.IsNaN(sz) || math.IsInf(sz, 0) {
			t.Fatalf("Config() accepted non-finite dataset size %v from %q", sz, raw)
		}
	})
}

// FuzzRunRequestObservation fuzzes the /runs calibration-sample parser.
// Contract: observation() either errors or yields an observation whose
// config is finite and whose durations are exactly what the duration
// strings parse to — no partial fills where one bad field leaves the
// others applied.
func FuzzRunRequestObservation(f *testing.F) {
	for _, seed := range []string{
		`{"app":"kmeans","config":{"cluster":"pentium-myrinet","dataNodes":1,"computeNodes":1,"bandwidth":"100MB","datasetBytes":"512MB"},"tdisk":"2s","tnetwork":"1s","tcompute":"8s"}`,
		`{"app":"kmeans","config":{"cluster":"c","dataNodes":1,"computeNodes":1,"bandwidth":"1MB","datasetBytes":"1MB"},"tdisk":"-2s","tnetwork":"1s","tcompute":"8s"}`,
		`{"app":"","tdisk":"2s"}`,
		`{"app":"kmeans","config":{"bandwidth":"NaNMB","datasetBytes":"1MB"},"tdisk":"2s","tnetwork":"1s","tcompute":"8s"}`,
		`{"app":"kmeans","config":{"cluster":"c","dataNodes":1,"computeNodes":1,"bandwidth":"1MB","datasetBytes":"1MB"},"tdisk":"2s","tnetwork":"1s","tcompute":"8s","roBytesPerNode":"InfKB"}`,
		`{"app":"kmeans","config":{"cluster":"c","dataNodes":1,"computeNodes":1,"bandwidth":"1MB","datasetBytes":"1MB"},"tdisk":"9999999h","tnetwork":"1ns","tcompute":"1s","iterations":-3}`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		var req RunRequest
		if json.Unmarshal([]byte(raw), &req) != nil {
			return
		}
		obs, err := req.observation()
		if err != nil {
			return
		}
		if bw := float64(obs.Config.Bandwidth); math.IsNaN(bw) || math.IsInf(bw, 0) {
			t.Fatalf("observation() accepted non-finite bandwidth %v from %q", bw, raw)
		}
		if sz := float64(obs.Config.DatasetBytes); math.IsNaN(sz) || math.IsInf(sz, 0) {
			t.Fatalf("observation() accepted non-finite dataset size %v from %q", sz, raw)
		}
		for _, d := range []struct {
			name string
			raw  string
			got  time.Duration
		}{
			{"tdisk", req.Tdisk, obs.Tdisk},
			{"tnetwork", req.Tnetwork, obs.Tnetwork},
			{"tcompute", req.Tcompute, obs.Tcompute},
		} {
			want, perr := time.ParseDuration(d.raw)
			if perr != nil {
				t.Fatalf("observation() succeeded with unparseable %s %q", d.name, d.raw)
			}
			if d.got != want {
				t.Fatalf("%s = %v, want %v (from %q)", d.name, d.got, want, d.raw)
			}
		}
	})
}
