// Package fgservice implements the long-running prediction service the
// fgserved command serves: the resource-selection framework running
// inside grid middleware, answering live "which replica / which
// configuration" queries from observed state instead of forking a CLI
// per prediction. The server loads the simulated grid and the profile
// store once; request handlers only do prediction arithmetic, ranking,
// and estimator updates, so steady-state requests never re-build state.
//
// Endpoints:
//
//	POST /predict  profile + target config -> T̂_disk/T̂_network/T̂_compute
//	POST /select   dataset -> ranked (replica, configuration) candidates
//	POST /observe  feed a TransferSample into the bandwidth estimator
//	POST /runs     ingest an observed run breakdown as a calibration sample
//	GET  /profiles live profile store content, versions, and drift state
//	GET  /healthz  liveness + readiness
//	GET  /metrics  Prometheus text exposition of the process registry
//
// Profiles live in a versioned profile.Store rather than a pinned
// document: observed runs posted to /runs recalibrate them, and every
// request resolves the latest snapshot.
package fgservice

import (
	"fmt"
	"sync"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/core"
	"freerideg/internal/grid"
	"freerideg/internal/profile"
	"freerideg/internal/units"
)

// Site is one repository site of the service's replica topology. Its
// Bandwidth is the static b̂ used until live observations on the
// site→cluster path let the estimator override it.
type Site struct {
	Name         string
	Cluster      string
	StorageNodes int
	Bandwidth    units.Rate
}

// Options configure a Server. Zero values select the defaults noted on
// each field.
type Options struct {
	// Variant names the default prediction model variant for requests
	// that don't carry one ("nocomm", "reduction", "global"); empty
	// selects "global", the paper's most accurate.
	Variant string
	// Base profile configuration used when an application must be
	// profiled on the simulated testbed because the store has no profile
	// for it. Defaults: 1 data node, 1 compute node, 100MB/s, 256MB.
	BaseDataNodes    int
	BaseComputeNodes int
	BaseBandwidth    units.Rate
	BaseBytes        units.Bytes
	// Store is the live profile store behind every prediction. Nil
	// selects a fresh in-memory store that grows by adopting
	// self-profiled applications.
	Store *profile.Store
	// Sites and Offers describe the selection topology. Defaults mirror
	// the fgselect demo: two repository sites and three Pentium-cluster
	// compute offers.
	Sites  []Site
	Offers []grid.ComputeOffer
	// MaxInFlight bounds concurrently handled requests (default
	// 4×GOMAXPROCS via the HTTP middleware); excess requests get 503.
	MaxInFlight int
	// RequestTimeout bounds one request's handling time (default 30s).
	RequestTimeout time.Duration
}

// DefaultSites returns the demo replica topology.
func DefaultSites() []Site {
	return []Site{
		{Name: "osu-repository", Cluster: bench.PentiumCluster, StorageNodes: 4, Bandwidth: 100 * units.MBPerSec},
		{Name: "remote-mirror", Cluster: bench.PentiumCluster, StorageNodes: 8, Bandwidth: 25 * units.MBPerSec},
	}
}

// DefaultOffers returns the demo compute offers.
func DefaultOffers() []grid.ComputeOffer {
	return []grid.ComputeOffer{
		{Cluster: bench.PentiumCluster, Nodes: 4},
		{Cluster: bench.PentiumCluster, Nodes: 8},
		{Cluster: bench.PentiumCluster, Nodes: 16},
	}
}

// predEntry is one cached (or in-flight) per-application predictor, the
// same duplicate-suppression shape as the bench harness's simCache: the
// first request for an app profiles it, concurrent requests wait for
// that one profiling run. The entry is pinned to the app's profile
// version; a recalibration invalidates it by moving the version.
type predEntry struct {
	done    chan struct{}
	version uint64
	pred    *core.Predictor
	err     error
}

// Server holds the loaded-once state behind the HTTP handlers.
type Server struct {
	opts    Options
	variant core.Variant
	harness *bench.Harness
	est     *grid.BandwidthEstimator
	store   *profile.Store
	start   time.Time

	mu    sync.Mutex
	preds map[string]*predEntry

	// delay artificially slows request handling; tests set it to prove
	// in-flight requests survive graceful shutdown.
	delay time.Duration
}

// New builds a server: the simulated grid and link calibrations are
// loaded here, once, and shared by every request.
func New(opts Options) (*Server, error) {
	if opts.BaseDataNodes < 1 {
		opts.BaseDataNodes = 1
	}
	if opts.BaseComputeNodes < opts.BaseDataNodes {
		opts.BaseComputeNodes = opts.BaseDataNodes
	}
	if opts.BaseBandwidth <= 0 {
		opts.BaseBandwidth = 100 * units.MBPerSec
	}
	if opts.BaseBytes <= 0 {
		opts.BaseBytes = 256 * units.MB
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 30 * time.Second
	}
	if len(opts.Sites) == 0 {
		opts.Sites = DefaultSites()
	}
	if len(opts.Offers) == 0 {
		opts.Offers = DefaultOffers()
	}
	if opts.Variant == "" {
		opts.Variant = "global"
	}
	variant, err := core.ParseVariant(opts.Variant)
	if err != nil {
		return nil, fmt.Errorf("fgservice: %w", err)
	}
	h, err := bench.NewHarness()
	if err != nil {
		return nil, fmt.Errorf("fgservice: building harness: %w", err)
	}
	store := opts.Store
	if store == nil {
		store, err = profile.NewStore(core.ProfileStore{}, profile.Options{Lookup: AppModelLookup})
		if err != nil {
			return nil, fmt.Errorf("fgservice: profile store: %w", err)
		}
	}
	// The harness's calibrated interconnects backstop clusters the store
	// has no measured link calibration for; measured values win.
	store.SeedLinks(h.Links())
	return &Server{
		opts:    opts,
		variant: variant,
		harness: h,
		est:     grid.NewBandwidthEstimator(0),
		store:   store,
		start:   time.Now(),
		preds:   make(map[string]*predEntry),
	}, nil
}

// AppModelLookup resolves an application's scaling-class model from the
// registry, the Lookup hook a service-facing profile.Store should use.
func AppModelLookup(name string) core.AppModel {
	a, err := apps.Get(name)
	if err != nil {
		return core.AppModel{}
	}
	return a.Model
}

// Estimator exposes the live bandwidth estimator (the /observe sink).
func (s *Server) Estimator() *grid.BandwidthEstimator { return s.est }

// Store exposes the live profile store behind the handlers.
func (s *Server) Store() *profile.Store { return s.store }

// predictor returns the predictor for app at the store's current
// profile version. Unknown apps are profiled once by a simulated run of
// the base configuration and adopted into the store; a recalibration
// moves the app's version, so the stale cache entry is rebuilt from the
// fresh snapshot on the next request.
func (s *Server) predictor(app string) (*core.Predictor, error) {
	a, err := apps.Get(app)
	if err != nil {
		return nil, err
	}
	snap := s.store.Snapshot()
	_, ver, known := snap.Find(app)

	s.mu.Lock()
	if e, ok := s.preds[app]; ok && (!known || e.version == ver) {
		// Either the cached entry matches the live version, or a
		// self-profiling run is in flight (the app has no profile yet);
		// both mean: wait for that entry.
		s.mu.Unlock()
		<-e.done
		return e.pred, e.err
	}
	e := &predEntry{done: make(chan struct{}), version: ver}
	s.preds[app] = e
	s.mu.Unlock()

	e.pred, e.err = s.buildPredictor(app, a.Model, snap, known)
	if e.err == nil && !known {
		// Adoption assigned the version; pin the entry to it. Concurrent
		// requests read e.version under mu, so write it there too.
		if _, v, ok := s.store.Snapshot().Find(app); ok {
			s.mu.Lock()
			e.version = v
			s.mu.Unlock()
		}
	}
	close(e.done)
	if e.err != nil {
		// Failed profiling is not cached: a later request may succeed
		// (e.g. after a transient harness error) and must be able to retry.
		s.mu.Lock()
		if s.preds[app] == e {
			delete(s.preds, app)
		}
		s.mu.Unlock()
	}
	return e.pred, e.err
}

func (s *Server) buildPredictor(app string, m core.AppModel, snap *profile.Snapshot, known bool) (*core.Predictor, error) {
	if known {
		return snap.Predictor(app, m)
	}
	cfg := core.Config{
		Cluster:      bench.PentiumCluster,
		DataNodes:    s.opts.BaseDataNodes,
		ComputeNodes: s.opts.BaseComputeNodes,
		Bandwidth:    s.opts.BaseBandwidth,
		DatasetBytes: s.opts.BaseBytes,
	}
	res, err := s.harness.Simulate(app, s.opts.BaseBytes, bench.ChunkFor(s.opts.BaseBytes), cfg)
	if err != nil {
		return nil, fmt.Errorf("fgservice: profiling %s: %w", app, err)
	}
	if _, err := s.store.Ingest(profile.FromProfile(res.Profile)); err != nil {
		return nil, fmt.Errorf("fgservice: adopting %s profile: %w", app, err)
	}
	return s.store.Snapshot().Predictor(app, m)
}

// pathBandwidth resolves a site→cluster path's b̂: the estimator's live
// fit when the path has enough observations, the static topology value
// otherwise. Estimate guarantees a finite positive rate on nil error.
func (s *Server) pathBandwidth(site Site) units.Rate {
	if bw, _, err := s.est.Estimate(site.Name, site.Cluster); err == nil {
		return bw
	}
	return site.Bandwidth
}

// selectionService builds the per-request information service for one
// dataset spec: replicas partitioned per site, current bandwidths, and
// the configured compute offers. Building it per request keeps the
// shared server state immutable under concurrency (the estimator
// synchronizes itself).
func (s *Server) selectionService(spec adr.DatasetSpec) (*grid.Service, error) {
	svc := grid.NewService()
	for _, site := range s.opts.Sites {
		layout, err := adr.Partition(spec, site.StorageNodes, adr.RoundRobin)
		if err != nil {
			return nil, fmt.Errorf("fgservice: partitioning for %s: %w", site.Name, err)
		}
		if err := svc.Replicas.Register(adr.Replica{
			Site:         site.Name,
			Cluster:      site.Cluster,
			StorageNodes: site.StorageNodes,
			Layout:       layout,
		}); err != nil {
			return nil, err
		}
		if err := svc.SetBandwidth(site.Name, site.Cluster, s.pathBandwidth(site)); err != nil {
			return nil, err
		}
	}
	for _, off := range s.opts.Offers {
		if err := svc.AddOffer(off); err != nil {
			return nil, err
		}
	}
	return svc, nil
}
