// Package fgservice implements the long-running prediction service the
// fgserved command serves: the resource-selection framework running
// inside grid middleware, answering live "which replica / which
// configuration" queries from observed state instead of forking a CLI
// per prediction. The server loads the simulated grid and the profile
// store once; request handlers only do prediction arithmetic, ranking,
// and estimator updates, so steady-state requests never re-build state.
//
// Endpoints:
//
//	POST /predict        profile + target config -> T̂_disk/T̂_network/T̂_compute
//	POST /select         dataset -> ranked (replica, configuration) candidates
//	POST /observe        feed a TransferSample into the bandwidth estimator
//	POST /runs           ingest an observed run breakdown as a calibration sample
//	GET  /profiles       live profile store content, versions, and drift state
//	GET  /healthz        liveness + readiness
//	GET  /debug/requests completed request traces (recent / slowest / errored)
//	GET  /metrics        Prometheus text exposition of the process registry
//
// Every response carries an X-FG-Request-ID header (error envelopes
// repeat it in their requestId field), and sampled requests record a
// reqtrace span tree retained for GET /debug/requests.
//
// Profiles live in a versioned profile.Store rather than a pinned
// document: observed runs posted to /runs recalibrate them, and every
// request resolves the latest snapshot.
package fgservice

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/core"
	"freerideg/internal/grid"
	"freerideg/internal/profile"
	"freerideg/internal/reqtrace"
	"freerideg/internal/servecache"
	"freerideg/internal/units"
	"freerideg/internal/workpool"
)

// Site is one repository site of the service's replica topology. Its
// Bandwidth is the static b̂ used until live observations on the
// site→cluster path let the estimator override it.
type Site struct {
	Name         string
	Cluster      string
	StorageNodes int
	Bandwidth    units.Rate
}

// Options configure a Server. Zero values select the defaults noted on
// each field.
type Options struct {
	// Variant names the default prediction model variant for requests
	// that don't carry one ("nocomm", "reduction", "global"); empty
	// selects "global", the paper's most accurate.
	Variant string
	// Base profile configuration used when an application must be
	// profiled on the simulated testbed because the store has no profile
	// for it. Defaults: 1 data node, 1 compute node, 100MB/s, 256MB.
	BaseDataNodes    int
	BaseComputeNodes int
	BaseBandwidth    units.Rate
	BaseBytes        units.Bytes
	// Store is the live profile store behind every prediction. Nil
	// selects a fresh in-memory store that grows by adopting
	// self-profiled applications.
	Store *profile.Store
	// Sites and Offers describe the selection topology. Defaults mirror
	// the fgselect demo: two repository sites and three Pentium-cluster
	// compute offers.
	Sites  []Site
	Offers []grid.ComputeOffer
	// MaxInFlight bounds concurrently handled requests (default
	// 4×GOMAXPROCS via the HTTP middleware); excess requests get 503.
	MaxInFlight int
	// BatchParallelism bounds how many items of one batch request are
	// evaluated concurrently (0 = the batch pool's full width). Tests pin
	// it to 1 so item claiming is strictly serial and a mid-batch
	// cancellation cuts the batch at a deterministic point.
	BatchParallelism int
	// RequestTimeout bounds one request's handling time (default 30s).
	RequestTimeout time.Duration
	// DisableCache turns the response cache off: every request runs the
	// full prediction/ranking path. The cold baseline fgload compares
	// against.
	DisableCache bool
	// CacheEntries bounds each response cache's entry count (default
	// servecache.DefaultMaxEntries).
	CacheEntries int
	// TraceSample selects which requests on the bounded endpoints get a
	// full reqtrace span tree: 0 (the default) traces every request,
	// n > 1 traces one in n, and any negative value disables tracing
	// entirely. Request IDs are issued regardless — sampling governs
	// only span recording.
	TraceSample int
	// TraceRing bounds the completed-trace ring served by
	// GET /debug/requests (default reqtrace.DefaultRingCapacity).
	TraceRing int
	// SlowRequestThreshold, when positive, emits a one-line structured
	// log (to SlowLogWriter) for every traced request whose total
	// latency meets or exceeds it, with the request's span breakdown.
	SlowRequestThreshold time.Duration
	// SlowLogWriter receives slow-request log lines; nil selects
	// os.Stderr. Writes are serialized by the server.
	SlowLogWriter io.Writer
}

// DefaultSites returns the demo replica topology.
func DefaultSites() []Site {
	return []Site{
		{Name: "osu-repository", Cluster: bench.PentiumCluster, StorageNodes: 4, Bandwidth: 100 * units.MBPerSec},
		{Name: "remote-mirror", Cluster: bench.PentiumCluster, StorageNodes: 8, Bandwidth: 25 * units.MBPerSec},
	}
}

// DefaultOffers returns the demo compute offers.
func DefaultOffers() []grid.ComputeOffer {
	return []grid.ComputeOffer{
		{Cluster: bench.PentiumCluster, Nodes: 4},
		{Cluster: bench.PentiumCluster, Nodes: 8},
		{Cluster: bench.PentiumCluster, Nodes: 16},
	}
}

// predEntry is one cached (or in-flight) per-application predictor, the
// same duplicate-suppression shape as the bench harness's simCache: the
// first request for an app profiles it, concurrent requests wait for
// that one profiling run. The entry is pinned to the store snapshot
// version it was built from; any content change invalidates it by
// moving the version.
type predEntry struct {
	done    chan struct{}
	version uint64
	pred    *core.Predictor
	err     error
}

// Server holds the loaded-once state behind the HTTP handlers.
type Server struct {
	opts    Options
	variant core.Variant
	harness *bench.Harness
	est     *grid.BandwidthEstimator
	store   *profile.Store
	start   time.Time
	lim     *limiter

	mu    sync.Mutex
	preds map[string]*predEntry

	// engine is the incremental rank engine behind /select: candidate
	// tables are cached per (dataset, variant) and only predictions
	// whose inputs changed are recomputed between requests.
	engine *grid.RankEngine

	// selMu guards the persistent per-dataset selection services and
	// the per-app predictor sources the engine ranks with. Keeping one
	// Service per dataset (instead of rebuilding per request) is what
	// lets the engine reuse its enumerated tables across requests.
	selMu   sync.Mutex
	selSvcs map[string]*selService
	sources map[string]*profile.Source

	// batchPool fans batch-endpoint items across persistent workers.
	batchPool *workpool.Pool

	// Response caches, keyed by the rendered request and pinned to the
	// store snapshot version (selections also fold in estEpoch). Nil
	// when Options.DisableCache is set.
	predictCache *servecache.Cache[PredictResponse]
	selectCache  *servecache.Cache[SelectResponse]

	// estEpoch counts accepted /observe samples. Selection answers
	// depend on the live bandwidth estimator as well as the profile
	// store, so the select cache's version is the sum of the snapshot
	// version and this epoch: both are monotonic, every accepted change
	// bumps the sum by at least one, and a sum value can therefore never
	// recur for a different (store, estimator) state.
	estEpoch atomic.Uint64

	// draining is set once shutdown begins; /healthz reports degraded.
	draining atomic.Bool

	// traceRing retains completed request traces for /debug/requests;
	// traceSeq drives 1-in-N sampling when Options.TraceSample > 1.
	traceRing *reqtrace.Ring
	traceSeq  atomic.Uint64

	// slowLog receives the one-line slow-request reports; slowLogMu
	// serializes them so concurrent slow requests don't interleave.
	slowLogMu sync.Mutex
	slowLog   io.Writer

	// delay artificially slows request handling; tests set it to prove
	// in-flight requests survive graceful shutdown.
	delay time.Duration
}

// New builds a server: the simulated grid and link calibrations are
// loaded here, once, and shared by every request.
func New(opts Options) (*Server, error) {
	if opts.BaseDataNodes < 1 {
		opts.BaseDataNodes = 1
	}
	if opts.BaseComputeNodes < opts.BaseDataNodes {
		opts.BaseComputeNodes = opts.BaseDataNodes
	}
	if opts.BaseBandwidth <= 0 {
		opts.BaseBandwidth = 100 * units.MBPerSec
	}
	if opts.BaseBytes <= 0 {
		opts.BaseBytes = 256 * units.MB
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 30 * time.Second
	}
	if len(opts.Sites) == 0 {
		opts.Sites = DefaultSites()
	}
	if len(opts.Offers) == 0 {
		opts.Offers = DefaultOffers()
	}
	if opts.Variant == "" {
		opts.Variant = "global"
	}
	variant, err := core.ParseVariant(opts.Variant)
	if err != nil {
		return nil, fmt.Errorf("fgservice: %w", err)
	}
	h, err := bench.NewHarness()
	if err != nil {
		return nil, fmt.Errorf("fgservice: building harness: %w", err)
	}
	store := opts.Store
	if store == nil {
		store, err = profile.NewStore(core.ProfileStore{}, profile.Options{Lookup: AppModelLookup})
		if err != nil {
			return nil, fmt.Errorf("fgservice: profile store: %w", err)
		}
	}
	// The harness's calibrated interconnects backstop clusters the store
	// has no measured link calibration for; measured values win.
	store.SeedLinks(h.Links())
	s := &Server{
		opts:      opts,
		variant:   variant,
		harness:   h,
		est:       grid.NewBandwidthEstimator(0),
		store:     store,
		start:     time.Now(),
		lim:       newLimiter(opts.MaxInFlight),
		preds:     make(map[string]*predEntry),
		engine:    grid.NewRankEngine(),
		selSvcs:   make(map[string]*selService),
		sources:   make(map[string]*profile.Source),
		batchPool: workpool.New(0),
		traceRing: reqtrace.NewRing(opts.TraceRing),
		slowLog:   opts.SlowLogWriter,
	}
	if s.slowLog == nil {
		s.slowLog = os.Stderr
	}
	if !opts.DisableCache {
		s.predictCache = servecache.New[PredictResponse](servecache.Options{
			Name: "predict", MaxEntries: opts.CacheEntries})
		s.selectCache = servecache.New[SelectResponse](servecache.Options{
			Name: "select", MaxEntries: opts.CacheEntries})
	}
	return s, nil
}

// CacheStats reads the response caches' counters (zero when the cache
// is disabled). Counter series are shared per cache name across servers
// in one process, so callers comparing runs should subtract a reading
// taken at server construction.
func (s *Server) CacheStats() (predict, sel servecache.Stats) {
	if s.predictCache != nil {
		predict = s.predictCache.Stats()
	}
	if s.selectCache != nil {
		sel = s.selectCache.Stats()
	}
	return predict, sel
}

// StartDrain flips the server into draining state: requests in flight
// keep being served (http.Server.Shutdown handles that), but /healthz
// answers 503 so load balancers and load harnesses stop sending new
// work here and can tell an orderly drain from a crash.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// AppModelLookup resolves an application's scaling-class model from the
// registry, the Lookup hook a service-facing profile.Store should use.
func AppModelLookup(name string) core.AppModel {
	a, err := apps.Get(name)
	if err != nil {
		return core.AppModel{}
	}
	return a.Model
}

// Estimator exposes the live bandwidth estimator (the /observe sink).
func (s *Server) Estimator() *grid.BandwidthEstimator { return s.est }

// Store exposes the live profile store behind the handlers.
func (s *Server) Store() *profile.Store { return s.store }

// predictor returns the predictor for app at the store's current
// snapshot version. Unknown apps are profiled once by a simulated run
// of the base configuration and adopted into the store; any content
// change — a recalibration of this app, but also a link or scaling
// refit landed by another app's samples — moves the snapshot version,
// so the stale cache entry is rebuilt from the fresh snapshot on the
// next request. (Pinning to the per-app version would miss those
// shared-calibration changes.)
//
// ctx bounds only this caller's wait. The build itself — profiling
// simulation included — runs detached on its own goroutine: its result
// lands in the store either way, so a request that times out while the
// app self-profiles does not poison the coalesced waiters (or the next
// request) with its cancellation, and the work is never repeated.
func (s *Server) predictor(ctx context.Context, app string) (*core.Predictor, error) {
	a, err := apps.Get(app)
	if err != nil {
		return nil, err
	}
	snap := s.store.Snapshot()
	_, _, known := snap.Find(app)
	ver := snap.Version()

	s.mu.Lock()
	if e, ok := s.preds[app]; ok && (!known || e.version == ver) {
		// Either the cached entry matches the live version, or a
		// self-profiling run is in flight (the app has no profile yet);
		// both mean: wait for that entry.
		s.mu.Unlock()
		select {
		case <-e.done:
			return e.pred, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &predEntry{done: make(chan struct{}), version: ver}
	s.preds[app] = e
	s.mu.Unlock()

	// Detached from the request's deadline (see above), but adopting its
	// trace: when the originating request is traced, the self-profiling
	// simulation shows up as a span in its tree — exactly the request
	// whose latency that profiling run explains.
	bctx := reqtrace.Adopt(context.Background(), ctx)
	go func() {
		e.pred, e.err = s.buildPredictor(bctx, app, a.Model, snap, known)
		if e.err == nil && !known {
			// Adoption advanced the store; pin the entry to the
			// post-adoption snapshot. Concurrent requests read e.version
			// under mu, so write it there too.
			s.mu.Lock()
			e.version = s.store.Snapshot().Version()
			s.mu.Unlock()
		}
		close(e.done)
		if e.err != nil {
			// Failed profiling is not cached: a later request may succeed
			// (e.g. after a transient harness error) and must be able to
			// retry.
			s.mu.Lock()
			if s.preds[app] == e {
				delete(s.preds, app)
			}
			s.mu.Unlock()
		}
	}()
	select {
	case <-e.done:
		return e.pred, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// buildPredictor resolves (or self-profiles) app's predictor. ctx is
// deadline-free by construction — the caller detaches it so no single
// request can abort the shared profiling run half-way — but may carry a
// request trace, attributing the simulation span to the request that
// triggered it.
func (s *Server) buildPredictor(ctx context.Context, app string, m core.AppModel, snap *profile.Snapshot, known bool) (*core.Predictor, error) {
	if known {
		return snap.Predictor(app, m)
	}
	cfg := core.Config{
		Cluster:      bench.PentiumCluster,
		DataNodes:    s.opts.BaseDataNodes,
		ComputeNodes: s.opts.BaseComputeNodes,
		Bandwidth:    s.opts.BaseBandwidth,
		DatasetBytes: s.opts.BaseBytes,
	}
	res, err := s.harness.Simulate(ctx, app, s.opts.BaseBytes, bench.ChunkFor(s.opts.BaseBytes), cfg)
	if err != nil {
		return nil, fmt.Errorf("fgservice: profiling %s: %w", app, err)
	}
	if _, err := s.store.Ingest(profile.FromProfile(res.Profile)); err != nil {
		return nil, fmt.Errorf("fgservice: adopting %s profile: %w", app, err)
	}
	return s.store.Snapshot().Predictor(app, m)
}

// pathBandwidth resolves a site→cluster path's b̂: the estimator's live
// fit when the path has enough observations, the static topology value
// otherwise. Estimate guarantees a finite positive rate on nil error.
func (s *Server) pathBandwidth(site Site) units.Rate {
	if bw, _, err := s.est.Estimate(site.Name, site.Cluster); err == nil {
		return bw
	}
	return site.Bandwidth
}

// selService is one dataset's persistent selection state: the grid
// information service (replica layouts, offers, bandwidths) built once
// and reused by every request for that dataset. Its mutex serializes
// bandwidth refresh + ranking, so the rank engine never observes a
// half-updated topology.
type selService struct {
	mu  sync.Mutex
	svc *grid.Service
	// bwEpoch is 1 + the estimator epoch the service's bandwidths were
	// last refreshed against (0 = never since build). Distinct rankings
	// at the same epoch — e.g. the items of one cold batch — share a
	// single refresh instead of re-walking every site per request.
	bwEpoch uint64
}

// selectionService returns the persistent selection service for one
// dataset spec, building (and caching) it on first use. Replica
// partitioning is the expensive part; reusing the service also gives
// the rank engine a stable topology to cache candidate tables against.
func (s *Server) selectionService(spec adr.DatasetSpec) (*selService, error) {
	s.selMu.Lock()
	if ss, ok := s.selSvcs[spec.Name]; ok {
		s.selMu.Unlock()
		return ss, nil
	}
	s.selMu.Unlock()

	// Build outside the map lock: partitioning a large dataset is real
	// work and unrelated datasets should not wait on it.
	svc := grid.NewService()
	for _, site := range s.opts.Sites {
		layout, err := adr.Partition(spec, site.StorageNodes, adr.RoundRobin)
		if err != nil {
			return nil, fmt.Errorf("fgservice: partitioning for %s: %w", site.Name, err)
		}
		if err := svc.Replicas.Register(adr.Replica{
			Site:         site.Name,
			Cluster:      site.Cluster,
			StorageNodes: site.StorageNodes,
			Layout:       layout,
		}); err != nil {
			return nil, err
		}
		if err := svc.SetBandwidth(site.Name, site.Cluster, s.pathBandwidth(site)); err != nil {
			return nil, err
		}
	}
	for _, off := range s.opts.Offers {
		if err := svc.AddOffer(off); err != nil {
			return nil, err
		}
	}

	s.selMu.Lock()
	defer s.selMu.Unlock()
	if ss, ok := s.selSvcs[spec.Name]; ok {
		// A concurrent request built it first; use that one so the rank
		// engine keys on a single Service value per dataset.
		return ss, nil
	}
	if len(s.selSvcs) >= maxSelServices {
		for k := range s.selSvcs {
			delete(s.selSvcs, k)
			break
		}
	}
	ss := &selService{svc: svc}
	s.selSvcs[spec.Name] = ss
	return ss, nil
}

// maxSelServices bounds the per-dataset service cache the same way the
// rank engine bounds its tables: the legitimate dataset vocabulary is
// small, the bound only caps hostile request streams.
const maxSelServices = 512

// source returns the live predictor source for one app, cached so the
// rank engine sees a stable predictor pointer per store version (the
// pointer changing is the engine's recompute-everything signal).
func (s *Server) source(app string) *profile.Source {
	s.selMu.Lock()
	defer s.selMu.Unlock()
	if src, ok := s.sources[app]; ok {
		return src
	}
	src := s.store.NewSource(app, AppModelLookup(app))
	s.sources[app] = src
	return src
}
