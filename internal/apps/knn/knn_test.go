package knn

import (
	"math"
	"sort"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

func testSpec() adr.DatasetSpec {
	return adr.DatasetSpec{
		Name:       "pts",
		TotalBytes: 512 * units.KB,
		ElemBytes:  128, // 16 dims
		ChunkBytes: 64 * units.KB,
		Kind:       "points",
		Dims:       16,
		Seed:       3,
	}
}

func run(t *testing.T, k *Kernel, spec adr.DatasetSpec, splits int) *Object {
	t.Helper()
	gen := datagen.Points{}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]reduction.Object, splits)
	for i := range objs {
		objs[i] = k.NewObject()
	}
	for i, c := range layout.Chunks() {
		p := reduction.Payload{Chunk: c, Fields: spec.Dims, Values: gen.ChunkValues(spec, c)}
		if err := k.ProcessChunk(p, objs[i%splits]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < splits; i++ {
		if err := objs[0].Merge(objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	done, err := k.GlobalReduce(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("single-pass kNN did not report done")
	}
	return k.Result()
}

// bruteForce computes the exact k nearest neighbours of each query.
func bruteForce(spec adr.DatasetSpec, queries [][]float64, k int) [][]Neighbor {
	gen := datagen.Points{}
	layout, _ := adr.Partition(spec, 1, adr.RoundRobin)
	all := make([][]Neighbor, len(queries))
	for _, c := range layout.Chunks() {
		vals := gen.ChunkValues(spec, c)
		base := datagen.GlobalBase(spec, c)
		for e := int64(0); e < c.Elems; e++ {
			pt := vals[e*int64(spec.Dims) : (e+1)*int64(spec.Dims)]
			for qi, q := range queries {
				var sum float64
				for j := range q {
					d := pt[j] - q[j]
					sum += d * d
				}
				all[qi] = append(all[qi], Neighbor{Dist: sum, Idx: base + e})
			}
		}
	}
	for qi := range all {
		sort.Slice(all[qi], func(a, b int) bool { return all[qi][a].Dist < all[qi][b].Dist })
		if len(all[qi]) > k {
			all[qi] = all[qi][:k]
		}
	}
	return all
}

func TestMatchesBruteForce(t *testing.T) {
	spec := testSpec()
	params := Params{K: 8, Queries: 5}
	k, err := New(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	got := run(t, k, spec, 1)
	want := bruteForce(spec, k.Queries(), params.K)
	for qi := range want {
		if len(got.Lists[qi]) != len(want[qi]) {
			t.Fatalf("query %d: %d neighbours, want %d", qi, len(got.Lists[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			g, w := got.Lists[qi][i], want[qi][i]
			if math.Abs(g.Dist-w.Dist) > 1e-9 {
				t.Fatalf("query %d rank %d: dist %v, want %v", qi, i, g.Dist, w.Dist)
			}
		}
	}
}

func TestSplitMergeEqualsSingle(t *testing.T) {
	spec := testSpec()
	params := Params{K: 8, Queries: 5}
	k1, _ := New(spec, params)
	single := run(t, k1, spec, 1)
	k3, _ := New(spec, params)
	merged := run(t, k3, spec, 3)
	for qi := range single.Lists {
		for i := range single.Lists[qi] {
			if single.Lists[qi][i].Dist != merged.Lists[qi][i].Dist {
				t.Fatalf("query %d rank %d differs between 1-way and 3-way runs", qi, i)
			}
		}
	}
}

func TestInsertKeepsSortedTopK(t *testing.T) {
	o := NewObject(1, 3)
	for _, d := range []float64{5, 1, 4, 2, 9, 0.5} {
		o.Insert(0, Neighbor{Dist: d, Idx: int64(d * 10)})
	}
	if len(o.Lists[0]) != 3 {
		t.Fatalf("list has %d entries, want 3", len(o.Lists[0]))
	}
	want := []float64{0.5, 1, 2}
	for i, w := range want {
		if o.Lists[0][i].Dist != w {
			t.Fatalf("rank %d = %v, want %v", i, o.Lists[0][i].Dist, w)
		}
	}
}

func TestObjectRoundTrip(t *testing.T) {
	o := NewObject(2, 3)
	o.Insert(0, Neighbor{Dist: 1, Idx: 10})
	o.Insert(1, Neighbor{Dist: 2, Idx: 20})
	o.Insert(1, Neighbor{Dist: 0.5, Idx: 30})
	enc, err := o.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if units.Bytes(len(enc)) != o.Bytes() {
		t.Fatalf("encoding length %d != Bytes() %v", len(enc), o.Bytes())
	}
	var back Object
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if back.K != 3 || len(back.Lists) != 2 {
		t.Fatalf("round trip lost shape: %+v", back)
	}
	if len(back.Lists[0]) != 1 || back.Lists[1][0].Dist != 0.5 || back.Lists[1][0].Idx != 30 {
		t.Fatalf("round trip lost entries: %+v", back.Lists)
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	var o Object
	if err := o.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Error("short encoding accepted")
	}
	good := NewObject(1, 2)
	enc, _ := good.MarshalBinary()
	if err := o.UnmarshalBinary(enc[:len(enc)-8]); err == nil {
		t.Error("truncated encoding accepted")
	}
}

func TestObjectBytesConstant(t *testing.T) {
	empty := NewObject(4, 8)
	full := NewObject(4, 8)
	for q := 0; q < 4; q++ {
		for i := 0; i < 20; i++ {
			full.Insert(q, Neighbor{Dist: float64(i), Idx: int64(i)})
		}
	}
	if empty.Bytes() != full.Bytes() {
		t.Fatalf("dense size changed: %v vs %v", empty.Bytes(), full.Bytes())
	}
}

func TestMergeShapeMismatch(t *testing.T) {
	a := NewObject(2, 3)
	if err := a.Merge(NewObject(2, 4)); err == nil {
		t.Error("k mismatch merged")
	}
	if err := a.Merge(NewObject(3, 3)); err == nil {
		t.Error("query-count mismatch merged")
	}
	if err := a.Merge(reduction.NewVectorObject(2)); err == nil {
		t.Error("cross-type merge accepted")
	}
}

func TestModelAndCost(t *testing.T) {
	m := Model()
	if m.RO != core.ROConstant || m.Global != core.GlobalLinearConstant {
		t.Fatalf("Model() = %+v", m)
	}
	cost, err := Cost(testSpec(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if cost.ROBytesPerNode(1e6, 1) != cost.ROBytesPerNode(4e6, 8) {
		t.Error("constant-class RO varied")
	}
	if cost.GlobalOps(1e6, 16) <= cost.GlobalOps(1e6, 2) {
		t.Error("GlobalOps not increasing in node count")
	}
	// The cost model's RO size must match a real dense object.
	k, _ := New(testSpec(), DefaultParams())
	if got := k.NewObject().Bytes(); got != cost.ROBytesPerNode(1, 1) {
		t.Errorf("cost RO %v != real object %v", cost.ROBytesPerNode(1, 1), got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{K: 0, Queries: 1}).Validate(); err == nil {
		t.Error("K=0 accepted")
	}
	if err := (Params{K: 1, Queries: 0}).Validate(); err == nil {
		t.Error("Queries=0 accepted")
	}
	s := testSpec()
	s.Kind = "field"
	if _, err := New(s, DefaultParams()); err == nil {
		t.Error("field dataset accepted")
	}
}
