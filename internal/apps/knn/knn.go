// Package knn implements k-nearest-neighbour search as a FREERIDE-G
// generalized reduction (Section 4.3 of the paper): training samples are
// distributed over the nodes, each node finds the k nearest neighbours of
// every query among its local samples, and the global reduction merges the
// per-node neighbour lists.
//
// Its reduction object size is constant (q queries times k neighbours) and
// its global reduction is linear-constant — the classes the paper assigns
// to kNN.
package knn

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// Params configures a kNN run.
type Params struct {
	// K is the number of neighbours per query.
	K int
	// Queries is the number of unknown samples classified per run.
	Queries int
}

// DefaultParams mirrors the workload used in the paper-scale experiments.
func DefaultParams() Params { return Params{K: 64, Queries: 64} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("knn: K = %d", p.K)
	}
	if p.Queries < 1 {
		return fmt.Errorf("knn: Queries = %d", p.Queries)
	}
	return nil
}

// Neighbor is one training sample in a neighbour list.
type Neighbor struct {
	Dist float64 // squared euclidean distance
	Idx  int64   // global element index of the training sample
}

// Object holds, for each query, its current k nearest neighbours sorted by
// ascending distance.
type Object struct {
	K     int
	Lists [][]Neighbor
}

// NewObject returns an empty neighbour-list object for q queries.
func NewObject(q, k int) *Object {
	return &Object{K: k, Lists: make([][]Neighbor, q)}
}

// Insert offers a candidate neighbour to a query's list.
func (o *Object) Insert(query int, n Neighbor) {
	list := o.Lists[query]
	if len(list) == o.K && n.Dist >= list[len(list)-1].Dist {
		return
	}
	// Find insertion point (lists are short; linear from the back).
	pos := len(list)
	for pos > 0 && list[pos-1].Dist > n.Dist {
		pos--
	}
	if len(list) < o.K {
		list = append(list, Neighbor{})
	}
	copy(list[pos+1:], list[pos:])
	list[pos] = n
	o.Lists[query] = list
}

// Merge combines another object's lists, keeping the k nearest per query.
func (o *Object) Merge(other reduction.Object) error {
	v, ok := other.(*Object)
	if !ok {
		return fmt.Errorf("knn: cannot merge %T", other)
	}
	if v.K != o.K || len(v.Lists) != len(o.Lists) {
		return fmt.Errorf("knn: shape mismatch (k %d vs %d, q %d vs %d)", v.K, o.K, len(v.Lists), len(o.Lists))
	}
	for q := range o.Lists {
		for _, n := range v.Lists[q] {
			o.Insert(q, n)
		}
	}
	return nil
}

// Bytes reports the serialized size: every query carries a full k-list in
// the dense encoding, so the size is constant.
func (o *Object) Bytes() units.Bytes {
	return units.Bytes(16 + 16*len(o.Lists)*o.K)
}

// MarshalBinary encodes the object densely (absent entries as +Inf).
func (o *Object) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 16+16*len(o.Lists)*o.K)
	binary.LittleEndian.PutUint64(buf, uint64(o.K))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(o.Lists)))
	off := 16
	for _, list := range o.Lists {
		for i := 0; i < o.K; i++ {
			d, idx := math.Inf(1), int64(-1)
			if i < len(list) {
				d, idx = list[i].Dist, list[i].Idx
			}
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(d))
			binary.LittleEndian.PutUint64(buf[off+8:], uint64(idx))
			off += 16
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a MarshalBinary encoding.
func (o *Object) UnmarshalBinary(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("knn: encoding too short (%d bytes)", len(data))
	}
	k := int(binary.LittleEndian.Uint64(data))
	q := int(binary.LittleEndian.Uint64(data[8:]))
	if k < 1 || q < 0 || len(data) != 16+16*q*k {
		return fmt.Errorf("knn: malformed encoding (k=%d q=%d len=%d)", k, q, len(data))
	}
	o.K = k
	o.Lists = make([][]Neighbor, q)
	off := 16
	for qi := 0; qi < q; qi++ {
		for i := 0; i < k; i++ {
			d := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			idx := int64(binary.LittleEndian.Uint64(data[off+8:]))
			off += 16
			if !math.IsInf(d, 1) {
				o.Lists[qi] = append(o.Lists[qi], Neighbor{Dist: d, Idx: idx})
			}
		}
	}
	return nil
}

var _ reduction.BinaryObject = (*Object)(nil)

// Kernel is one kNN run.
type Kernel struct {
	params  Params
	spec    adr.DatasetSpec
	queries [][]float64
	result  *Object
	done    bool
}

// New creates a kernel; queries are generated deterministically from the
// dataset seed.
func New(spec adr.DatasetSpec, params Params) (*Kernel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != "points" {
		return nil, fmt.Errorf("knn: dataset kind %q, want points", spec.Kind)
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x6b6e6e)) // "knn"
	queries := make([][]float64, params.Queries)
	for i := range queries {
		q := make([]float64, spec.Dims)
		for j := range q {
			q[j] = rng.Float64() * 100
		}
		queries[i] = q
	}
	return &Kernel{params: params, spec: spec, queries: queries}, nil
}

// Name implements reduction.Kernel.
func (k *Kernel) Name() string { return "knn" }

// Iterations implements reduction.Kernel: kNN is a single pass.
func (k *Kernel) Iterations() int { return 1 }

// Queries returns the generated query points.
func (k *Kernel) Queries() [][]float64 { return k.queries }

// Result returns the merged neighbour lists after the run.
func (k *Kernel) Result() *Object { return k.result }

// NewObject returns an empty neighbour-list accumulator.
func (k *Kernel) NewObject() reduction.Object {
	return NewObject(k.params.Queries, k.params.K)
}

// ProcessChunk scans the chunk's training samples against every query.
func (k *Kernel) ProcessChunk(p reduction.Payload, obj reduction.Object) error {
	acc, ok := obj.(*Object)
	if !ok {
		return fmt.Errorf("knn: unexpected object %T", obj)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Fields != k.spec.Dims {
		return fmt.Errorf("knn: payload has %d fields, want %d", p.Fields, k.spec.Dims)
	}
	base := datagen.GlobalBase(k.spec, p.Chunk)
	d := k.spec.Dims
	for e := int64(0); e < p.Chunk.Elems; e++ {
		pt := p.Elem(e)
		for qi, q := range k.queries {
			var sum float64
			for j := 0; j < d; j++ {
				diff := pt[j] - q[j]
				sum += diff * diff
			}
			acc.Insert(qi, Neighbor{Dist: sum, Idx: base + e})
		}
	}
	return nil
}

// GlobalReduce stores the merged result; a single pass always completes.
func (k *Kernel) GlobalReduce(merged reduction.Object) (bool, error) {
	acc, ok := merged.(*Object)
	if !ok {
		return false, fmt.Errorf("knn: unexpected object %T", merged)
	}
	k.result = acc
	k.done = true
	return true, nil
}

// Model returns the paper's scaling classes for kNN: constant reduction
// object, linear-constant global reduction.
func Model() core.AppModel {
	return core.AppModel{RO: core.ROConstant, Global: core.GlobalLinearConstant}
}

// Cost returns the analytic work model consumed by the simulated backend.
func Cost(spec adr.DatasetSpec, params Params) (reduction.CostModel, error) {
	if err := params.Validate(); err != nil {
		return reduction.CostModel{}, err
	}
	roBytes := units.Bytes(16 + 16*params.Queries*params.K)
	return reduction.CostModel{
		Name: "knn",
		Mix:  reduction.WorkMix{Flop: 0.55, Mem: 0.25, Branch: 0.20},
		// Per training sample: Queries distance evaluations of 3d flops
		// plus an occasional short insertion.
		OpsPerElem: float64(params.Queries * (3*spec.Dims + 4)),
		Iterations: 1,
		ROBytesPerNode: func(totalElems int64, c int) units.Bytes {
			return roBytes // constant class
		},
		GlobalOps: func(totalElems int64, c int) float64 {
			// Merge c dense lists per query.
			return float64(c * params.Queries * params.K)
		},
		BroadcastBytes: units.Bytes(8 * params.Queries), // one label per query
	}, nil
}
