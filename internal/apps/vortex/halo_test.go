package vortex

import (
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// runWithHalos drives the kernel with overlapping partitions, the paper's
// decomposition for vortex detection.
func runWithHalos(t *testing.T, k *Kernel, spec adr.DatasetSpec) []Vortex {
	t.Helper()
	gen := datagen.Field{}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	obj := k.NewObject()
	for _, c := range layout.Chunks() {
		p := reduction.Payload{Chunk: c, Fields: 2, Values: gen.ChunkValues(spec, c)}
		before, after, err := datagen.HaloFor(gen, spec, c, k.OverlapElems())
		if err != nil {
			t.Fatal(err)
		}
		p.HaloBefore, p.HaloAfter = before, after
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := k.ProcessChunk(p, obj); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.GlobalReduce(obj); err != nil {
		t.Fatal(err)
	}
	return k.Result()
}

func totalCells(vs []Vortex) int {
	n := 0
	for _, v := range vs {
		n += v.Cells
	}
	return n
}

func TestHaloMakesDetectionChunkInvariant(t *testing.T) {
	// One giant chunk: the stencil covers every interior grid row.
	whole := testSpec(units.MB)
	whole.ChunkBytes = whole.TotalBytes
	kWhole, err := New(whole, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ref := run(t, kWhole, whole, 1)

	// Small chunks WITH halos must mark exactly the same cells.
	small := testSpec(units.MB)
	small.ChunkBytes = 64 * units.KB
	kSmall, err := New(small, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got := runWithHalos(t, kSmall, small)
	if len(got) != len(ref) {
		t.Fatalf("halo run found %d vortices, whole-chunk run %d", len(got), len(ref))
	}
	if totalCells(got) != totalCells(ref) {
		t.Fatalf("halo run marked %d cells, whole-chunk run %d", totalCells(got), totalCells(ref))
	}
}

func TestWithoutHalosBoundaryRowsAreLost(t *testing.T) {
	// The same comparison without halos loses the chunk-boundary rows:
	// strictly fewer marked cells. This is the deficit the paper's
	// overlapping partitioning removes.
	whole := testSpec(units.MB)
	whole.ChunkBytes = whole.TotalBytes
	kWhole, _ := New(whole, DefaultParams())
	ref := run(t, kWhole, whole, 1)

	small := testSpec(units.MB)
	small.ChunkBytes = 64 * units.KB
	kSmall, _ := New(small, DefaultParams())
	bare := run(t, kSmall, small, 1)
	if totalCells(bare) >= totalCells(ref) {
		t.Fatalf("expected cell loss without halos: %d vs %d", totalCells(bare), totalCells(ref))
	}
}

func TestHaloForClipsAtEdges(t *testing.T) {
	spec := testSpec(units.MB)
	spec.ChunkBytes = 64 * units.KB
	layout, _ := adr.Partition(spec, 1, adr.RoundRobin)
	gen := datagen.Field{}
	chunks := layout.Chunks()

	first := chunks[0]
	before, after, err := datagen.HaloFor(gen, spec, first, datagen.FieldWidth)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 0 {
		t.Errorf("first chunk has %d halo-before values, want 0", len(before))
	}
	if len(after) != 2*datagen.FieldWidth {
		t.Errorf("first chunk has %d halo-after values, want one row", len(after))
	}

	last := chunks[len(chunks)-1]
	before, after, err = datagen.HaloFor(gen, spec, last, datagen.FieldWidth)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 2*datagen.FieldWidth {
		t.Errorf("last chunk has %d halo-before values, want one row", len(before))
	}
	if len(after) != 0 {
		t.Errorf("last chunk has %d halo-after values, want 0", len(after))
	}
}

func TestHaloForRejectsNonRangeKinds(t *testing.T) {
	spec := adr.DatasetSpec{
		Name: "pts", TotalBytes: units.MB, ElemBytes: 128,
		ChunkBytes: 128 * units.KB, Kind: "points", Dims: 16, Seed: 1,
	}
	layout, _ := adr.Partition(spec, 1, adr.RoundRobin)
	gen, _ := datagen.For("points")
	if _, _, err := datagen.HaloFor(gen, spec, layout.Chunks()[0], 10); err == nil {
		t.Fatal("points generator produced halos; it cannot generate ranges")
	}
	// Zero overlap is always fine.
	if _, _, err := datagen.HaloFor(gen, spec, layout.Chunks()[0], 0); err != nil {
		t.Fatal(err)
	}
}

func TestHaloValuesMatchNeighbourChunks(t *testing.T) {
	spec := testSpec(units.MB)
	spec.ChunkBytes = 64 * units.KB
	layout, _ := adr.Partition(spec, 1, adr.RoundRobin)
	gen := datagen.Field{}
	chunks := layout.Chunks()
	c1 := chunks[1]
	before, after, err := datagen.HaloFor(gen, spec, c1, datagen.FieldWidth)
	if err != nil {
		t.Fatal(err)
	}
	// HaloBefore must equal the last row of chunk 0's values.
	prev := gen.ChunkValues(spec, chunks[0])
	tail := prev[len(prev)-len(before):]
	for i := range before {
		if before[i] != tail[i] {
			t.Fatalf("halo-before value %d differs from neighbour chunk", i)
		}
	}
	// HaloAfter must equal the first row of chunk 2's values.
	next := gen.ChunkValues(spec, chunks[2])
	for i := range after {
		if after[i] != next[i] {
			t.Fatalf("halo-after value %d differs from neighbour chunk", i)
		}
	}
}
