// Package vortex implements the feature-mining vortex detection algorithm
// as a FREERIDE-G generalized reduction (Section 4.4 of the paper). Each
// compute node computes a finite-difference vorticity over its grid
// chunks, thresholds it (detection), classifies marked cells into
// connected regions (classification/aggregation), and the global
// combination joins region fragments that span chunk boundaries, then
// de-noises and sorts the vortices.
//
// Its per-node reduction object is a region list proportional to the
// node's data share (linear class) and the global combination handles a
// region volume proportional to the dataset (constant-linear class) — the
// paper's classification of vortex detection.
package vortex

import (
	"fmt"
	"math"
	"sort"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// Params configures a vortex detection run.
type Params struct {
	// Threshold is the |vorticity| above which a cell is marked.
	Threshold float64
	// MinMass is the minimum region size (cells) kept after de-noising.
	MinMass int
	// JoinGap is the maximum row gap bridged when joining fragments
	// across chunk boundaries.
	JoinGap int
}

// DefaultParams mirrors the workload used in the paper-scale experiments.
// The threshold sits between the Taylor vortices' core vorticity band
// (>= ~0.55) and their opposite-sign annulus band (<= ~0.19).
func DefaultParams() Params { return Params{Threshold: 0.25, MinMass: 12, JoinGap: 3} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Threshold <= 0 {
		return fmt.Errorf("vortex: threshold %g", p.Threshold)
	}
	if p.MinMass < 1 {
		return fmt.Errorf("vortex: min mass %d", p.MinMass)
	}
	if p.JoinGap < 0 {
		return fmt.Errorf("vortex: join gap %d", p.JoinGap)
	}
	return nil
}

// regionStride is the per-region record layout in the reduction object:
// minRow, maxRow, minCol, maxCol, cellCount, sumVorticity, sumRow, sumCol.
const regionStride = 8

// Vortex is one detected feature after global combination.
type Vortex struct {
	Row, Col    float64 // centroid
	Cells       int
	Circulation float64 // signed vorticity sum
}

// Kernel is one vortex detection run.
type Kernel struct {
	params Params
	spec   adr.DatasetSpec
	result []Vortex
}

// New creates a kernel for a field dataset.
func New(spec adr.DatasetSpec, params Params) (*Kernel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != "field" {
		return nil, fmt.Errorf("vortex: dataset kind %q, want field", spec.Kind)
	}
	return &Kernel{params: params, spec: spec}, nil
}

// Name implements reduction.Kernel.
func (k *Kernel) Name() string { return "vortex" }

// Iterations implements reduction.Kernel: detection is a single pass.
func (k *Kernel) Iterations() int { return 1 }

// OverlapElems implements reduction.OverlapRequester: one grid row of
// overlap per side lets the stencil cover every chunk row without
// communication, the paper's partitioning approach for vortex detection.
func (k *Kernel) OverlapElems() int64 { return datagen.FieldWidth }

// Result returns the detected vortices, strongest first.
func (k *Kernel) Result() []Vortex { return k.result }

// NewObject returns an empty region-list accumulator.
func (k *Kernel) NewObject() reduction.Object {
	return reduction.NewFloatsObject(regionStride)
}

// ProcessChunk runs detection, classification, and local aggregation over
// one chunk of grid rows.
func (k *Kernel) ProcessChunk(p reduction.Payload, obj reduction.Object) error {
	acc, ok := obj.(*reduction.FloatsObject)
	if !ok {
		return fmt.Errorf("vortex: unexpected object %T", obj)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Fields != 2 {
		return fmt.Errorf("vortex: payload has %d fields, want 2 (u,v)", p.Fields)
	}
	w := int64(datagen.FieldWidth)
	base := datagen.GlobalBase(k.spec, p.Chunk)
	if base%w != 0 || p.Chunk.Elems%w != 0 {
		return fmt.Errorf("vortex: chunk %d not row-aligned (base %d, elems %d)",
			p.Chunk.Index, base, p.Chunk.Elems)
	}
	rows := p.Chunk.Elems / w
	firstRow := base / w

	// Detection: central-difference vorticity. With overlapping
	// partitions (halo rows from the neighbouring chunks, the paper's
	// vortex decomposition) every chunk row is detectable; without halos
	// the chunk-boundary rows are skipped and their fragments rejoined
	// during global combination.
	haloBefore := p.HaloBeforeElems() / w // rows of overlap below
	haloAfter := p.HaloAfterElems() / w
	marked := make([]float64, rows*w) // 0 = unmarked, else vorticity
	u := func(r, c int64) float64 {
		switch {
		case r < 0:
			off := (haloBefore + r) * w // r = -1 is the halo's last row
			return p.HaloBefore[(off+c)*2]
		case r >= rows:
			return p.HaloAfter[((r-rows)*w+c)*2]
		}
		return p.Values[(r*w+c)*2]
	}
	v := func(r, c int64) float64 {
		switch {
		case r < 0:
			off := (haloBefore + r) * w
			return p.HaloBefore[(off+c)*2+1]
		case r >= rows:
			return p.HaloAfter[((r-rows)*w+c)*2+1]
		}
		return p.Values[(r*w+c)*2+1]
	}
	rStart, rEnd := int64(1), rows-1
	if haloBefore > 0 {
		rStart = 0
	}
	if haloAfter > 0 {
		rEnd = rows
	}
	for r := rStart; r < rEnd; r++ {
		for c := int64(1); c < w-1; c++ {
			vort := (v(r, c+1)-v(r, c-1))/2 - (u(r+1, c)-u(r-1, c))/2
			if math.Abs(vort) >= k.params.Threshold {
				marked[r*w+c] = vort
			}
		}
	}

	// Classification + aggregation: connected components (4-neighbour)
	// over marked cells, via union-find.
	parent := make([]int32, rows*w)
	for i := range parent {
		parent[i] = -1
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for r := int64(0); r < rows; r++ {
		for c := int64(0); c < w; c++ {
			i := r*w + c
			if marked[i] == 0 {
				continue
			}
			parent[i] = int32(i)
			if c > 0 && marked[i-1] != 0 {
				union(int32(i-1), int32(i))
			}
			if r > 0 && marked[i-w] != 0 {
				union(int32(i-w), int32(i))
			}
		}
	}
	regions := make(map[int32][]float64)
	for r := int64(0); r < rows; r++ {
		for c := int64(0); c < w; c++ {
			i := r*w + c
			if marked[i] == 0 {
				continue
			}
			root := find(int32(i))
			rec := regions[root]
			gRow := float64(firstRow + r)
			gCol := float64(c)
			if rec == nil {
				rec = []float64{gRow, gRow, gCol, gCol, 0, 0, 0, 0}
			}
			rec[0] = math.Min(rec[0], gRow)
			rec[1] = math.Max(rec[1], gRow)
			rec[2] = math.Min(rec[2], gCol)
			rec[3] = math.Max(rec[3], gCol)
			rec[4]++
			rec[5] += marked[i]
			rec[6] += gRow
			rec[7] += gCol
			regions[root] = rec
		}
	}
	roots := make([]int32, 0, len(regions))
	for root := range regions {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, root := range roots {
		if err := acc.Append(regions[root]...); err != nil {
			return err
		}
	}
	return nil
}

// GlobalReduce joins region fragments across chunk boundaries, de-noises,
// and sorts the vortices by strength.
func (k *Kernel) GlobalReduce(merged reduction.Object) (bool, error) {
	acc, ok := merged.(*reduction.FloatsObject)
	if !ok {
		return false, fmt.Errorf("vortex: unexpected object %T", merged)
	}
	if acc.Stride != regionStride {
		return false, fmt.Errorf("vortex: stride %d, want %d", acc.Stride, regionStride)
	}
	n := acc.Records()
	recs := make([][]float64, n)
	for i := range recs {
		recs[i] = append([]float64(nil), acc.Record(i)...)
	}
	// Union regions whose row ranges are within JoinGap and whose column
	// ranges overlap: fragments of one vortex split at a chunk boundary.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return recs[order[a]][0] < recs[order[b]][0] })
	gap := float64(k.params.JoinGap)
	for ai := 0; ai < len(order); ai++ {
		a := order[ai]
		for bi := ai + 1; bi < len(order); bi++ {
			b := order[bi]
			if recs[b][0] > recs[a][1]+gap {
				break // sorted by minRow; no later region can touch a
			}
			if recs[a][2] <= recs[b][3] && recs[b][2] <= recs[a][3] {
				ra, rb := find(a), find(b)
				if ra != rb {
					parent[rb] = ra
				}
			}
		}
	}
	joined := make(map[int][]float64)
	for i := range recs {
		root := find(i)
		if cur, ok := joined[root]; ok {
			cur[0] = math.Min(cur[0], recs[i][0])
			cur[1] = math.Max(cur[1], recs[i][1])
			cur[2] = math.Min(cur[2], recs[i][2])
			cur[3] = math.Max(cur[3], recs[i][3])
			for j := 4; j < regionStride; j++ {
				cur[j] += recs[i][j]
			}
		} else {
			joined[root] = append([]float64(nil), recs[i]...)
		}
	}
	// De-noise and sort.
	k.result = k.result[:0]
	for _, rec := range joined {
		cells := int(rec[4])
		if cells < k.params.MinMass {
			continue
		}
		k.result = append(k.result, Vortex{
			Row:         rec[6] / rec[4],
			Col:         rec[7] / rec[4],
			Cells:       cells,
			Circulation: rec[5],
		})
	}
	sort.Slice(k.result, func(i, j int) bool {
		a, b := math.Abs(k.result[i].Circulation), math.Abs(k.result[j].Circulation)
		if a != b {
			return a > b
		}
		return k.result[i].Row < k.result[j].Row
	})
	return true, nil
}

// Model returns the paper's scaling classes for vortex detection: linear
// reduction object, constant-linear global reduction.
func Model() core.AppModel {
	return core.AppModel{RO: core.ROLinear, Global: core.GlobalConstantLinear}
}

// Cost returns the analytic work model consumed by the simulated backend.
func Cost(spec adr.DatasetSpec, params Params) (reduction.CostModel, error) {
	if err := params.Validate(); err != nil {
		return reduction.CostModel{}, err
	}
	// Expected regions: one per injected vortex plus ~30% fragmentation at
	// chunk boundaries.
	regionsFor := func(totalElems int64) float64 {
		rows := totalElems / datagen.FieldWidth
		return 1.3 * float64(rows/datagen.VortexRowPeriod)
	}
	return reduction.CostModel{
		Name: "vortex",
		Mix:  reduction.WorkMix{Flop: 0.45, Mem: 0.40, Branch: 0.15},
		// Per cell: the vorticity stencil, thresholding, classification,
		// and amortized union-find/aggregation work of the feature-mining
		// pipeline.
		OpsPerElem: 400,
		Iterations: 1,
		ROBytesPerNode: func(totalElems int64, c int) units.Bytes {
			perNode := regionsFor(totalElems) / float64(c)
			return units.Bytes(perNode*regionStride*8) + 8 // linear class
		},
		GlobalOps: func(totalElems int64, c int) float64 {
			// Join/de-noise/sort over all regions: proportional to the
			// dataset, independent of the node count.
			r := regionsFor(totalElems)
			return r * 40
		},
		BroadcastBytes: units.KB, // final vortex summary
	}, nil
}
