package vortex

import (
	"math"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

func testSpec(total units.Bytes) adr.DatasetSpec {
	return adr.DatasetSpec{
		Name:       "cfd",
		TotalBytes: total,
		ElemBytes:  16,             // (u, v) as two float64
		ChunkBytes: 128 * units.KB, // 32 rows of 256 cells
		Kind:       "field",
		Dims:       2,
		Seed:       5,
	}
}

func run(t *testing.T, k *Kernel, spec adr.DatasetSpec, splits int) []Vortex {
	t.Helper()
	gen := datagen.Field{}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]reduction.Object, splits)
	for i := range objs {
		objs[i] = k.NewObject()
	}
	for i, c := range layout.Chunks() {
		p := reduction.Payload{Chunk: c, Fields: 2, Values: gen.ChunkValues(spec, c)}
		if err := k.ProcessChunk(p, objs[i%splits]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < splits; i++ {
		if err := objs[0].Merge(objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	done, err := k.GlobalReduce(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("single-pass detection did not report done")
	}
	return k.Result()
}

func TestDetectsInjectedVortices(t *testing.T) {
	spec := testSpec(2 * units.MB)
	truth := datagen.Field{}.Vortices(spec)
	if len(truth) < 5 {
		t.Fatalf("test dataset has only %d vortices", len(truth))
	}
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got := run(t, k, spec, 1)
	if len(got) != len(truth) {
		t.Fatalf("detected %d vortices, injected %d", len(got), len(truth))
	}
	// Every injected vortex must have a detection within its radius.
	for _, vt := range truth {
		best := math.Inf(1)
		for _, d := range got {
			dist := math.Hypot(d.Row-vt.Row, d.Col-vt.Col)
			best = math.Min(best, dist)
		}
		if best > vt.Radius {
			t.Errorf("vortex at (%.0f,%.0f) r=%.1f: nearest detection %.1f away",
				vt.Row, vt.Col, vt.Radius, best)
		}
	}
}

func TestBoundarySpanningVortexJoined(t *testing.T) {
	// Chunks are 32 rows; vortices near row multiples of 32 fragment and
	// must be rejoined by the global combination. With correct joining the
	// count matches truth regardless of chunk alignment.
	spec := testSpec(2 * units.MB)
	spec.ChunkBytes = 64 * units.KB // 16-row chunks: more boundaries
	truth := datagen.Field{}.Vortices(spec)
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got := run(t, k, spec, 1)
	if len(got) != len(truth) {
		t.Fatalf("detected %d vortices with 16-row chunks, injected %d", len(got), len(truth))
	}
}

func TestSplitMergeInvariant(t *testing.T) {
	spec := testSpec(units.MB)
	k1, _ := New(spec, DefaultParams())
	single := run(t, k1, spec, 1)
	k4, _ := New(spec, DefaultParams())
	merged := run(t, k4, spec, 4)
	if len(single) != len(merged) {
		t.Fatalf("vortex count differs between 1-way (%d) and 4-way (%d) runs", len(single), len(merged))
	}
	for i := range single {
		if single[i].Cells != merged[i].Cells ||
			math.Abs(single[i].Circulation-merged[i].Circulation) > 1e-9 {
			t.Fatalf("vortex %d differs: %+v vs %+v", i, single[i], merged[i])
		}
	}
}

func TestResultsSortedByStrength(t *testing.T) {
	spec := testSpec(2 * units.MB)
	k, _ := New(spec, DefaultParams())
	got := run(t, k, spec, 1)
	for i := 1; i < len(got); i++ {
		if math.Abs(got[i].Circulation) > math.Abs(got[i-1].Circulation) {
			t.Fatalf("results not sorted by |circulation| at %d", i)
		}
	}
}

func TestDenoiseDropsSmallRegions(t *testing.T) {
	spec := testSpec(units.MB)
	params := DefaultParams()
	params.MinMass = 1 << 20 // absurd: everything is noise
	k, err := New(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	if got := run(t, k, spec, 1); len(got) != 0 {
		t.Fatalf("de-noising kept %d regions", len(got))
	}
}

func TestProcessChunkRejectsBadInput(t *testing.T) {
	spec := testSpec(units.MB)
	k, _ := New(spec, DefaultParams())
	obj := k.NewObject()
	bad := reduction.Payload{Chunk: adr.Chunk{Elems: 3}, Fields: 1, Values: []float64{1, 2, 3}}
	if err := k.ProcessChunk(bad, obj); err == nil {
		t.Error("1-field payload accepted")
	}
	if err := k.ProcessChunk(bad, reduction.NewVectorObject(1)); err == nil {
		t.Error("wrong object type accepted")
	}
	misaligned := reduction.Payload{
		Chunk:  adr.Chunk{Index: 0, Elems: 100},
		Fields: 2,
		Values: make([]float64, 200),
	}
	if err := k.ProcessChunk(misaligned, k.NewObject()); err == nil {
		t.Error("row-misaligned chunk accepted")
	}
	if _, err := k.GlobalReduce(reduction.NewFloatsObject(3)); err == nil {
		t.Error("wrong stride accepted in global reduce")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{Threshold: 0, MinMass: 1}).Validate(); err == nil {
		t.Error("zero threshold accepted")
	}
	if err := (Params{Threshold: 1, MinMass: 0}).Validate(); err == nil {
		t.Error("zero min mass accepted")
	}
	if err := (Params{Threshold: 1, MinMass: 1, JoinGap: -1}).Validate(); err == nil {
		t.Error("negative join gap accepted")
	}
	s := testSpec(units.MB)
	s.Kind = "points"
	if _, err := New(s, DefaultParams()); err == nil {
		t.Error("points dataset accepted")
	}
}

func TestModelAndCostClasses(t *testing.T) {
	m := Model()
	if m.RO != core.ROLinear || m.Global != core.GlobalConstantLinear {
		t.Fatalf("Model() = %+v", m)
	}
	cost, err := Cost(testSpec(units.MB), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if cost.ROBytesPerNode(1<<22, 1) <= cost.ROBytesPerNode(1<<20, 1) {
		t.Error("RO did not grow with dataset")
	}
	if cost.ROBytesPerNode(1<<22, 8) >= cost.ROBytesPerNode(1<<22, 1) {
		t.Error("RO did not shrink with nodes")
	}
	if cost.GlobalOps(1<<22, 1) != cost.GlobalOps(1<<22, 16) {
		t.Error("GlobalOps varied with node count")
	}
	if cost.GlobalOps(1<<22, 4) <= cost.GlobalOps(1<<20, 4) {
		t.Error("GlobalOps did not grow with dataset")
	}
}
