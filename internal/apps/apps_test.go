package apps

import (
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/units"
)

func specFor(t *testing.T, a App) adr.DatasetSpec {
	t.Helper()
	spec := adr.DatasetSpec{
		Name:       "reg-" + a.Name,
		TotalBytes: units.MB,
		ChunkBytes: 128 * units.KB,
		Kind:       a.DatasetKind,
		Seed:       13,
	}
	switch a.DatasetKind {
	case "points":
		spec.ElemBytes, spec.Dims = 128, 16
	case "field":
		spec.ElemBytes, spec.Dims = 16, 2
	case "lattice":
		spec.ElemBytes, spec.Dims = 24, 3
	case "transactions":
		spec.ElemBytes, spec.Dims = 96, 12
	default:
		t.Fatalf("unknown dataset kind %q", a.DatasetKind)
	}
	return spec
}

func TestNamesListsFiveApps(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("registry has %d apps, want the paper's 5 plus apriori and ann", len(names))
	}
	want := []string{"ann", "apriori", "defect", "em", "kmeans", "knn", "vortex"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("birch"); err == nil {
		t.Fatal("unknown app returned")
	}
}

func TestEveryAppBuildsAndRuns(t *testing.T) {
	for _, name := range Names() {
		a, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name != name {
			t.Errorf("registry key %q holds app %q", name, a.Name)
		}
		spec := specFor(t, a)
		k, err := a.NewKernel(spec)
		if err != nil {
			t.Fatalf("%s: NewKernel: %v", name, err)
		}
		if k.Name() != name {
			t.Errorf("%s: kernel names itself %q", name, k.Name())
		}
		cost, err := a.Cost(spec)
		if err != nil {
			t.Fatalf("%s: Cost: %v", name, err)
		}
		if err := cost.Validate(); err != nil {
			t.Errorf("%s: invalid cost model: %v", name, err)
		}
		if cost.Iterations != k.Iterations() {
			t.Errorf("%s: cost model iterations %d != kernel %d", name, cost.Iterations, k.Iterations())
		}
		if err := RunSequential(k, spec); err != nil {
			t.Errorf("%s: RunSequential: %v", name, err)
		}
	}
}

func TestKernelObjectSizeMatchesCostModel(t *testing.T) {
	// The paper's classes only work if the cost models track the real
	// objects: for a 1-node run over the whole dataset, the fresh object
	// plus the data it accumulates must stay within 2x of the model.
	for _, name := range Names() {
		a, _ := Get(name)
		spec := specFor(t, a)
		cost, err := a.Cost(spec)
		if err != nil {
			t.Fatal(err)
		}
		k, err := a.NewKernel(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := RunSequential(k, spec); err != nil {
			t.Fatal(err)
		}
		model := float64(cost.ROBytesPerNode(spec.Elems(), 1))
		real := float64(k.NewObject().Bytes()) // fresh object floor
		if model < real/4 {
			t.Errorf("%s: model RO %v far below even an empty object %v", name, model, real)
		}
	}
}

func TestRunSequentialRejectsBadSpec(t *testing.T) {
	a, _ := Get("kmeans")
	spec := specFor(t, a)
	spec.Kind = "nonsense"
	k, err := a.NewKernel(specFor(t, a))
	if err != nil {
		t.Fatal(err)
	}
	if err := RunSequential(k, spec); err == nil {
		t.Fatal("nonsense dataset kind ran")
	}
	tiny := specFor(t, a)
	tiny.TotalBytes = 1
	if err := RunSequential(k, tiny); err == nil {
		t.Fatal("sub-element dataset ran")
	}
}

func TestModelsAreConsistentWithClasses(t *testing.T) {
	constant := map[string]bool{"kmeans": true, "knn": true, "apriori": true, "ann": true}
	for _, name := range Names() {
		a, _ := Get(name)
		if constant[name] {
			if a.Model.RO != core.ROConstant || a.Model.Global != core.GlobalLinearConstant {
				t.Errorf("%s: model %+v, want constant/linear-constant", name, a.Model)
			}
		} else {
			if a.Model.RO != core.ROLinear || a.Model.Global != core.GlobalConstantLinear {
				t.Errorf("%s: model %+v, want linear/constant-linear", name, a.Model)
			}
		}
	}
}
