// Package apps registers the mining applications — the five the paper
// evaluates plus apriori association mining and artificial neural network
// training, the other examples the paper gives of the middleware's
// application class (Section 2.2) — and provides a sequential reference
// driver used by tests and examples.
package apps

import (
	"fmt"
	"sort"

	"freerideg/internal/adr"
	"freerideg/internal/apps/ann"
	"freerideg/internal/apps/apriori"
	"freerideg/internal/apps/defect"
	"freerideg/internal/apps/em"
	"freerideg/internal/apps/kmeans"
	"freerideg/internal/apps/knn"
	"freerideg/internal/apps/vortex"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
)

// App bundles everything the middleware and the experiment harness need to
// run one application: the real kernel, the analytic cost model, and the
// ground-truth scaling classes.
type App struct {
	// Name identifies the application.
	Name string
	// DatasetKind is the dataset kind the application consumes.
	DatasetKind string
	// NewKernel builds a fresh kernel for a dataset.
	NewKernel func(spec adr.DatasetSpec) (reduction.Kernel, error)
	// Cost builds the analytic work model for a dataset.
	Cost func(spec adr.DatasetSpec) (reduction.CostModel, error)
	// Model holds the paper's scaling classes for the application.
	Model core.AppModel
}

var registry = map[string]App{
	"ann": {
		Name:        "ann",
		DatasetKind: "points",
		NewKernel: func(spec adr.DatasetSpec) (reduction.Kernel, error) {
			return ann.New(spec, ann.DefaultParams())
		},
		Cost: func(spec adr.DatasetSpec) (reduction.CostModel, error) {
			return ann.Cost(spec, ann.DefaultParams())
		},
		Model: ann.Model(),
	},
	"apriori": {
		Name:        "apriori",
		DatasetKind: "transactions",
		NewKernel: func(spec adr.DatasetSpec) (reduction.Kernel, error) {
			return apriori.New(spec, apriori.DefaultParams())
		},
		Cost: func(spec adr.DatasetSpec) (reduction.CostModel, error) {
			return apriori.Cost(spec, apriori.DefaultParams())
		},
		Model: apriori.Model(),
	},
	"kmeans": {
		Name:        "kmeans",
		DatasetKind: "points",
		NewKernel: func(spec adr.DatasetSpec) (reduction.Kernel, error) {
			return kmeans.New(spec, kmeans.DefaultParams())
		},
		Cost: func(spec adr.DatasetSpec) (reduction.CostModel, error) {
			return kmeans.Cost(spec, kmeans.DefaultParams())
		},
		Model: kmeans.Model(),
	},
	"em": {
		Name:        "em",
		DatasetKind: "points",
		NewKernel: func(spec adr.DatasetSpec) (reduction.Kernel, error) {
			return em.New(spec, em.DefaultParams())
		},
		Cost: func(spec adr.DatasetSpec) (reduction.CostModel, error) {
			return em.Cost(spec, em.DefaultParams())
		},
		Model: em.Model(),
	},
	"knn": {
		Name:        "knn",
		DatasetKind: "points",
		NewKernel: func(spec adr.DatasetSpec) (reduction.Kernel, error) {
			return knn.New(spec, knn.DefaultParams())
		},
		Cost: func(spec adr.DatasetSpec) (reduction.CostModel, error) {
			return knn.Cost(spec, knn.DefaultParams())
		},
		Model: knn.Model(),
	},
	"vortex": {
		Name:        "vortex",
		DatasetKind: "field",
		NewKernel: func(spec adr.DatasetSpec) (reduction.Kernel, error) {
			return vortex.New(spec, vortex.DefaultParams())
		},
		Cost: func(spec adr.DatasetSpec) (reduction.CostModel, error) {
			return vortex.Cost(spec, vortex.DefaultParams())
		},
		Model: vortex.Model(),
	},
	"defect": {
		Name:        "defect",
		DatasetKind: "lattice",
		NewKernel: func(spec adr.DatasetSpec) (reduction.Kernel, error) {
			return defect.New(spec, defect.DefaultParams())
		},
		Cost: func(spec adr.DatasetSpec) (reduction.CostModel, error) {
			return defect.Cost(spec, defect.DefaultParams())
		},
		Model: defect.Model(),
	},
}

// Get returns a registered application by name.
func Get(name string) (App, error) {
	a, ok := registry[name]
	if !ok {
		return App{}, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	return a, nil
}

// Names lists the registered applications, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunSequential drives a kernel over a dataset on a single logical node,
// materializing chunks with the synthetic generators. It is the reference
// implementation parallel runs are checked against.
func RunSequential(k reduction.Kernel, spec adr.DatasetSpec) error {
	gen, err := datagen.For(spec.Kind)
	if err != nil {
		return err
	}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		return err
	}
	var overlap int64
	if or, ok := k.(reduction.OverlapRequester); ok {
		overlap = or.OverlapElems()
	}
	for pass := 0; pass < k.Iterations(); pass++ {
		obj := k.NewObject()
		for _, c := range layout.Chunks() {
			p := reduction.Payload{
				Chunk:  c,
				Fields: gen.FieldsPerElem(spec),
				Values: gen.ChunkValues(spec, c),
			}
			if overlap > 0 {
				before, after, err := datagen.HaloFor(gen, spec, c, overlap)
				if err != nil {
					return err
				}
				p.HaloBefore, p.HaloAfter = before, after
			}
			if err := k.ProcessChunk(p, obj); err != nil {
				return fmt.Errorf("apps: %s pass %d chunk %d: %w", k.Name(), pass, c.Index, err)
			}
		}
		done, err := k.GlobalReduce(obj)
		if err != nil {
			return fmt.Errorf("apps: %s pass %d global reduce: %w", k.Name(), pass, err)
		}
		if done {
			return nil
		}
	}
	return nil
}
