// Package em implements Expectation-Maximization clustering of a
// diagonal-covariance Gaussian mixture as a FREERIDE-G generalized
// reduction (Section 4.2 of the paper). Each pass performs the E step
// locally (responsibilities and weighted sufficient statistics) and the
// M step in the global reduction (parameter re-estimation from the merged
// statistics).
//
// Local reduction defers aggregation: every processed chunk contributes
// its own sufficient-statistics block, and the blocks are combined
// pairwise only at global reduction time for numerically stable
// summation. The per-node reduction object therefore grows linearly with
// the node's data share, and the global reduction handles a volume
// proportional to the whole dataset — exactly the paper's classification
// of EM: linear reduction object size, constant-linear global reduction.
package em

import (
	"fmt"
	"math"
	"math/rand"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// Params configures an EM run.
type Params struct {
	// K is the number of mixture components.
	K int
	// MaxIter is the fixed number of EM passes.
	MaxIter int
	// Epsilon is the log-likelihood convergence threshold (relative).
	Epsilon float64
}

// DefaultParams mirrors the workload used in the paper-scale experiments.
func DefaultParams() Params { return Params{K: 8, MaxIter: 10, Epsilon: 1e-6} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("em: K = %d", p.K)
	}
	if p.MaxIter < 1 {
		return fmt.Errorf("em: MaxIter = %d", p.MaxIter)
	}
	return nil
}

// blockLen reports the sufficient-statistics block length: per component a
// responsibility sum, d weighted mean sums, and d weighted square sums,
// plus one log-likelihood cell.
func blockLen(k, d int) int { return k*(1+2*d) + 1 }

// Kernel is one EM run.
type Kernel struct {
	params  Params
	dims    int
	weights []float64
	means   [][]float64
	vars    [][]float64
	loglik  float64
	iter    int
}

// New creates a kernel with means initialized from a deterministic sample
// of the dataset's first chunk (random means far from any data leave EM in
// poor local optima).
func New(spec adr.DatasetSpec, params Params) (*Kernel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != "points" {
		return nil, fmt.Errorf("em: dataset kind %q, want points", spec.Kind)
	}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		return nil, err
	}
	first := layout.Chunks()[0]
	sample := (datagen.Points{}).ChunkValues(spec, first)
	if first.Elems < int64(params.K) {
		return nil, fmt.Errorf("em: first chunk holds %d points, need %d for initialization",
			first.Elems, params.K)
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x656d)) // "em"
	k := &Kernel{
		params:  params,
		dims:    spec.Dims,
		weights: make([]float64, params.K),
		means:   make([][]float64, params.K),
		vars:    make([][]float64, params.K),
		loglik:  math.Inf(-1),
	}
	for i, pt := range farthestPoints(sample, spec.Dims, first.Elems, params.K) {
		k.weights[i] = 1 / float64(params.K)
		m := make([]float64, spec.Dims)
		v := make([]float64, spec.Dims)
		for j := range m {
			// Jitter the sampled point so coinciding samples still separate.
			m[j] = pt[j] + rng.NormFloat64()*0.5
			v[j] = 9 // moderately tight initial variance
		}
		k.means[i] = m
		k.vars[i] = v
	}
	return k, nil
}

// farthestPoints picks k initial means by greedy farthest-point (k-center)
// sampling over a bounded prefix of the sample, spreading the means across
// well-separated clusters.
func farthestPoints(sample []float64, dims int, elems int64, k int) [][]float64 {
	n := int(elems)
	if n > 2048 {
		n = 2048
	}
	pt := func(i int) []float64 { return sample[i*dims : (i+1)*dims] }
	dist2 := func(a, b []float64) float64 {
		var s float64
		for j := range a {
			d := a[j] - b[j]
			s += d * d
		}
		return s
	}
	chosen := make([][]float64, 0, k)
	chosen = append(chosen, pt(0))
	minDist := make([]float64, n)
	for i := 0; i < n; i++ {
		minDist[i] = dist2(pt(i), chosen[0])
	}
	for len(chosen) < k {
		best, bestD := 0, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		next := pt(best)
		chosen = append(chosen, next)
		for i := 0; i < n; i++ {
			if d := dist2(pt(i), next); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return chosen
}

// Name implements reduction.Kernel.
func (k *Kernel) Name() string { return "em" }

// Iterations implements reduction.Kernel.
func (k *Kernel) Iterations() int { return k.params.MaxIter }

// Means returns the current component means.
func (k *Kernel) Means() [][]float64 { return k.means }

// Weights returns the current mixture weights.
func (k *Kernel) Weights() []float64 { return k.weights }

// LogLikelihood returns the log-likelihood of the last completed pass.
func (k *Kernel) LogLikelihood() float64 { return k.loglik }

// NewObject returns an empty deferred-block accumulator.
func (k *Kernel) NewObject() reduction.Object {
	return reduction.NewFloatsObject(blockLen(k.params.K, k.dims))
}

// ProcessChunk performs the E step over one chunk and appends the chunk's
// sufficient-statistics block.
func (k *Kernel) ProcessChunk(p reduction.Payload, obj reduction.Object) error {
	acc, ok := obj.(*reduction.FloatsObject)
	if !ok {
		return fmt.Errorf("em: unexpected object %T", obj)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Fields != k.dims {
		return fmt.Errorf("em: payload has %d fields, want %d", p.Fields, k.dims)
	}
	K, d := k.params.K, k.dims
	block := make([]float64, blockLen(K, d))
	logResp := make([]float64, K)
	// Precompute per-component log normalizers for the diagonal Gaussian.
	logNorm := make([]float64, K)
	for c := 0; c < K; c++ {
		ln := math.Log(k.weights[c])
		for j := 0; j < d; j++ {
			ln -= 0.5 * math.Log(2*math.Pi*k.vars[c][j])
		}
		logNorm[c] = ln
	}
	for e := int64(0); e < p.Chunk.Elems; e++ {
		pt := p.Elem(e)
		maxLog := math.Inf(-1)
		for c := 0; c < K; c++ {
			l := logNorm[c]
			for j := 0; j < d; j++ {
				diff := pt[j] - k.means[c][j]
				l -= 0.5 * diff * diff / k.vars[c][j]
			}
			logResp[c] = l
			if l > maxLog {
				maxLog = l
			}
		}
		var denom float64
		for c := 0; c < K; c++ {
			denom += math.Exp(logResp[c] - maxLog)
		}
		block[len(block)-1] += maxLog + math.Log(denom) // log-likelihood
		for c := 0; c < K; c++ {
			r := math.Exp(logResp[c]-maxLog) / denom
			base := c * (1 + 2*d)
			block[base] += r
			for j := 0; j < d; j++ {
				block[base+1+j] += r * pt[j]
				block[base+1+d+j] += r * pt[j] * pt[j]
			}
		}
	}
	return acc.Append(block...)
}

// GlobalReduce performs the M step over all deferred blocks, combining
// them pairwise for numerical stability.
func (k *Kernel) GlobalReduce(merged reduction.Object) (bool, error) {
	acc, ok := merged.(*reduction.FloatsObject)
	if !ok {
		return false, fmt.Errorf("em: unexpected object %T", merged)
	}
	K, d := k.params.K, k.dims
	if acc.Stride != blockLen(K, d) {
		return false, fmt.Errorf("em: block stride %d, want %d", acc.Stride, blockLen(K, d))
	}
	if acc.Records() == 0 {
		return false, fmt.Errorf("em: global reduce over zero blocks")
	}
	total := pairwiseSum(acc)
	var n float64
	for c := 0; c < K; c++ {
		n += total[c*(1+2*d)]
	}
	if n <= 0 {
		return false, fmt.Errorf("em: total responsibility %g", n)
	}
	for c := 0; c < K; c++ {
		base := c * (1 + 2*d)
		rc := total[base]
		k.weights[c] = rc / n
		if rc < 1e-12 {
			continue // starving component keeps its parameters
		}
		for j := 0; j < d; j++ {
			mean := total[base+1+j] / rc
			meanSq := total[base+1+d+j] / rc
			k.means[c][j] = mean
			v := meanSq - mean*mean
			if v < 1e-6 {
				v = 1e-6 // variance floor
			}
			k.vars[c][j] = v
		}
	}
	prev := k.loglik
	k.loglik = total[len(total)-1]
	k.iter++
	converged := !math.IsInf(prev, -1) &&
		math.Abs(k.loglik-prev) <= k.params.Epsilon*math.Abs(prev)
	return k.iter >= k.params.MaxIter || converged, nil
}

// pairwiseSum combines the blocks with pairwise (cascade) summation.
func pairwiseSum(acc *reduction.FloatsObject) []float64 {
	n := acc.Records()
	if n == 1 {
		return append([]float64(nil), acc.Record(0)...)
	}
	blocks := make([][]float64, n)
	for i := range blocks {
		blocks[i] = append([]float64(nil), acc.Record(i)...)
	}
	for len(blocks) > 1 {
		half := (len(blocks) + 1) / 2
		for i := 0; i+half < len(blocks); i++ {
			a, b := blocks[i], blocks[i+half]
			for j := range a {
				a[j] += b[j]
			}
		}
		blocks = blocks[:half]
	}
	return blocks[0]
}

// Model returns the paper's scaling classes for EM: linear reduction
// object, constant-linear global reduction.
func Model() core.AppModel {
	return core.AppModel{RO: core.ROLinear, Global: core.GlobalConstantLinear}
}

// Cost returns the analytic work model consumed by the simulated backend.
func Cost(spec adr.DatasetSpec, params Params) (reduction.CostModel, error) {
	if err := params.Validate(); err != nil {
		return reduction.CostModel{}, err
	}
	d := spec.Dims
	block := units.Bytes(8 * blockLen(params.K, d))
	elemsPerChunk := int64(spec.ChunkBytes / spec.ElemBytes)
	return reduction.CostModel{
		Name: "em",
		Mix:  reduction.WorkMix{Flop: 0.60, Mem: 0.30, Branch: 0.10},
		// Per point per pass: K components x (distance + exp + updates).
		OpsPerElem: float64(params.K * (6*d + 12)),
		Iterations: params.MaxIter,
		ROBytesPerNode: func(totalElems int64, c int) units.Bytes {
			chunks := (totalElems + elemsPerChunk - 1) / elemsPerChunk
			perNode := (chunks + int64(c) - 1) / int64(c)
			return units.Bytes(perNode)*block + 8 // linear class
		},
		GlobalOps: func(totalElems int64, c int) float64 {
			// Pairwise-sum every chunk block: the cascade is a tight
			// vectorizable add over a volume proportional to the dataset,
			// independent of the node count (a quarter value-touch each).
			chunks := (totalElems + elemsPerChunk - 1) / elemsPerChunk
			return float64(chunks*int64(blockLen(params.K, d))) / 4
		},
		BroadcastBytes: units.Bytes(8 * params.K * (1 + 2*d)),
	}, nil
}
