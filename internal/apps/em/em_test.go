package em

import (
	"math"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

func testSpec() adr.DatasetSpec {
	return adr.DatasetSpec{
		Name:       "pts",
		TotalBytes: units.MB,
		ElemBytes:  64, // 8 dims * 8 bytes
		ChunkBytes: 128 * units.KB,
		Kind:       "points",
		Dims:       8,
		Seed:       11,
	}
}

// runPasses drives the kernel and returns the log-likelihood after each
// completed pass.
func runPasses(t *testing.T, k *Kernel, spec adr.DatasetSpec) []float64 {
	t.Helper()
	gen := datagen.Points{}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	var logliks []float64
	for pass := 0; pass < k.Iterations(); pass++ {
		obj := k.NewObject()
		for _, c := range layout.Chunks() {
			p := reduction.Payload{Chunk: c, Fields: spec.Dims, Values: gen.ChunkValues(spec, c)}
			if err := k.ProcessChunk(p, obj); err != nil {
				t.Fatal(err)
			}
		}
		done, err := k.GlobalReduce(obj)
		if err != nil {
			t.Fatal(err)
		}
		logliks = append(logliks, k.LogLikelihood())
		if done {
			break
		}
	}
	return logliks
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{K: 0, MaxIter: 1}).Validate(); err == nil {
		t.Error("K=0 accepted")
	}
	if err := (Params{K: 2, MaxIter: 0}).Validate(); err == nil {
		t.Error("MaxIter=0 accepted")
	}
}

func TestLogLikelihoodNonDecreasing(t *testing.T) {
	spec := testSpec()
	k, err := New(spec, Params{K: 8, MaxIter: 8, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	lls := runPasses(t, k, spec)
	if len(lls) < 3 {
		t.Fatalf("only %d passes ran", len(lls))
	}
	for i := 1; i < len(lls); i++ {
		// EM guarantees monotone likelihood; allow a sliver of float
		// noise from the variance floor.
		if lls[i] < lls[i-1]-math.Abs(lls[i-1])*1e-9 {
			t.Fatalf("log-likelihood decreased at pass %d: %v -> %v", i, lls[i-1], lls[i])
		}
	}
}

func TestWeightsStayNormalized(t *testing.T) {
	spec := testSpec()
	k, err := New(spec, Params{K: 4, MaxIter: 3, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	runPasses(t, k, spec)
	var sum float64
	for _, w := range k.Weights() {
		if w < 0 || w > 1 {
			t.Fatalf("weight %v out of [0,1]", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
}

func TestMeansLandNearMixture(t *testing.T) {
	spec := testSpec()
	k, err := New(spec, Params{K: 8, MaxIter: 12, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	runPasses(t, k, spec)
	truth := datagen.Points{}.Centers(spec)
	// Every recovered mean with non-trivial weight must lie near some true
	// component (EM can merge components; the reverse check would be
	// stricter than the algorithm guarantees).
	for mi, m := range k.Means() {
		if k.Weights()[mi] < 0.02 {
			continue
		}
		best := math.Inf(1)
		for _, tc := range truth {
			var sum float64
			for j := range m {
				d := m[j] - tc[j]
				sum += d * d
			}
			best = math.Min(best, math.Sqrt(sum))
		}
		if best > 8 {
			t.Errorf("mean %d (weight %.3f) is %.2f from every true center", mi, k.Weights()[mi], best)
		}
	}
}

func TestDeferredBlocksOnePerChunk(t *testing.T) {
	spec := testSpec()
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	gen := datagen.Points{}
	layout, _ := adr.Partition(spec, 1, adr.RoundRobin)
	obj := k.NewObject().(*reduction.FloatsObject)
	for _, c := range layout.Chunks() {
		p := reduction.Payload{Chunk: c, Fields: spec.Dims, Values: gen.ChunkValues(spec, c)}
		if err := k.ProcessChunk(p, obj); err != nil {
			t.Fatal(err)
		}
	}
	if obj.Records() != len(layout.Chunks()) {
		t.Fatalf("%d blocks for %d chunks", obj.Records(), len(layout.Chunks()))
	}
}

func TestROGrowsWithDataShrinksWithNodes(t *testing.T) {
	spec := testSpec()
	cost, err := Cost(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	base := cost.ROBytesPerNode(1<<20, 1)
	bigger := cost.ROBytesPerNode(1<<22, 1)
	spread := cost.ROBytesPerNode(1<<22, 4)
	if bigger <= base {
		t.Fatal("RO did not grow with dataset")
	}
	ratio := float64(bigger) / float64(base)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("4x data scaled RO by %.2f, want ~4", ratio)
	}
	if spread >= bigger {
		t.Fatal("RO did not shrink with more nodes")
	}
}

func TestGlobalOpsConstantLinear(t *testing.T) {
	cost, err := Cost(testSpec(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if cost.GlobalOps(1<<20, 1) != cost.GlobalOps(1<<20, 16) {
		t.Fatal("GlobalOps varied with node count")
	}
	if cost.GlobalOps(1<<22, 4) <= cost.GlobalOps(1<<20, 4) {
		t.Fatal("GlobalOps did not grow with dataset size")
	}
}

func TestModelClasses(t *testing.T) {
	m := Model()
	if m.RO != core.ROLinear || m.Global != core.GlobalConstantLinear {
		t.Fatalf("Model() = %+v", m)
	}
}

func TestGlobalReduceRejectsBadObjects(t *testing.T) {
	spec := testSpec()
	k, _ := New(spec, DefaultParams())
	if _, err := k.GlobalReduce(reduction.NewVectorObject(3)); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := k.GlobalReduce(reduction.NewFloatsObject(3)); err == nil {
		t.Error("wrong stride accepted")
	}
	empty := k.NewObject()
	if _, err := k.GlobalReduce(empty); err == nil {
		t.Error("zero blocks accepted")
	}
}

func TestNewRejectsWrongKind(t *testing.T) {
	s := testSpec()
	s.Kind = "lattice"
	if _, err := New(s, DefaultParams()); err == nil {
		t.Fatal("lattice dataset accepted")
	}
}

func TestPairwiseSumMatchesNaive(t *testing.T) {
	o := reduction.NewFloatsObject(3)
	for i := 0; i < 7; i++ {
		_ = o.Append(float64(i), float64(i*i), 1)
	}
	got := pairwiseSum(o)
	want := []float64{21, 91, 7} // sums of i, i^2, 1 for i=0..6
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-12 {
			t.Fatalf("pairwiseSum[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}
