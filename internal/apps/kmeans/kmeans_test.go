package kmeans

import (
	"math"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

func testSpec() adr.DatasetSpec {
	return adr.DatasetSpec{
		Name:       "pts",
		TotalBytes: 2 * units.MB,
		ElemBytes:  128, // 16 dims * 8 bytes
		ChunkBytes: 256 * units.KB,
		Kind:       "points",
		Dims:       16,
		Seed:       7,
	}
}

// runSequential drives the kernel over all chunks for all passes.
func runSequential(t *testing.T, k *Kernel, spec adr.DatasetSpec) {
	t.Helper()
	gen := datagen.Points{}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < k.Iterations(); pass++ {
		obj := k.NewObject()
		for _, c := range layout.Chunks() {
			p := reduction.Payload{Chunk: c, Fields: spec.Dims, Values: gen.ChunkValues(spec, c)}
			if err := k.ProcessChunk(p, obj); err != nil {
				t.Fatal(err)
			}
		}
		done, err := k.GlobalReduce(obj)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{K: 0, MaxIter: 1}).Validate(); err == nil {
		t.Error("K=0 accepted")
	}
	if err := (Params{K: 1, MaxIter: 0}).Validate(); err == nil {
		t.Error("MaxIter=0 accepted")
	}
}

func TestNewRejectsWrongKind(t *testing.T) {
	s := testSpec()
	s.Kind = "field"
	if _, err := New(s, DefaultParams()); err == nil {
		t.Fatal("field dataset accepted")
	}
}

func TestRecoversMixtureCenters(t *testing.T) {
	spec := testSpec()
	k, err := New(spec, Params{K: 24, MaxIter: 15, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	runSequential(t, k, spec)
	truth := datagen.Points{}.Centers(spec)
	for gi, tc := range truth {
		best := math.Inf(1)
		for _, c := range k.Centers() {
			var sum float64
			for j := range tc {
				d := c[j] - tc[j]
				sum += d * d
			}
			best = math.Min(best, math.Sqrt(sum))
		}
		// Points scatter ~ sigma*sqrt(d) = 8 around each center; a center
		// that captured the component must sit well inside that.
		if best > 6 {
			t.Errorf("true center %d has no k-means center within 6 (nearest %.2f)", gi, best)
		}
	}
}

func TestCentersMoveTowardData(t *testing.T) {
	spec := testSpec()
	k, err := New(spec, Params{K: 8, MaxIter: 1, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	before := make([][]float64, len(k.Centers()))
	for i, c := range k.Centers() {
		before[i] = append([]float64(nil), c...)
	}
	runSequential(t, k, spec)
	moved := false
	for i, c := range k.Centers() {
		for j := range c {
			if c[j] != before[i][j] {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("no center moved after one pass over clustered data")
	}
	if k.LastShift() <= 0 {
		t.Fatal("LastShift() not positive after movement")
	}
}

func TestSplitMergeMatchesSequential(t *testing.T) {
	// Processing chunks into two objects and merging must equal one
	// object, up to float addition order.
	spec := testSpec()
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	gen := datagen.Points{}
	layout, _ := adr.Partition(spec, 1, adr.RoundRobin)
	chunks := layout.Chunks()
	single := k.NewObject()
	a, b := k.NewObject(), k.NewObject()
	for i, c := range chunks {
		p := reduction.Payload{Chunk: c, Fields: spec.Dims, Values: gen.ChunkValues(spec, c)}
		if err := k.ProcessChunk(p, single); err != nil {
			t.Fatal(err)
		}
		dst := a
		if i%2 == 1 {
			dst = b
		}
		if err := k.ProcessChunk(p, dst); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	sv := single.(*reduction.VectorObject).V
	av := a.(*reduction.VectorObject).V
	for i := range sv {
		if math.Abs(sv[i]-av[i]) > 1e-6*(math.Abs(sv[i])+1) {
			t.Fatalf("split+merge differs at %d: %v vs %v", i, sv[i], av[i])
		}
	}
}

func TestObjectSizeIsConstant(t *testing.T) {
	spec := testSpec()
	k, _ := New(spec, DefaultParams())
	obj := k.NewObject()
	want := units.Bytes(8 * DefaultParams().K * (spec.Dims + 1))
	if obj.Bytes() != want {
		t.Fatalf("object bytes = %v, want %v", obj.Bytes(), want)
	}
	cost, err := Cost(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The cost model's RO size must match the real object and be constant.
	if got := cost.ROBytesPerNode(1e6, 1); got != want {
		t.Fatalf("cost RO = %v, want %v", got, want)
	}
	if cost.ROBytesPerNode(4e6, 16) != cost.ROBytesPerNode(1e6, 1) {
		t.Fatal("constant-class RO varied with scale")
	}
}

func TestGlobalOpsLinearInNodes(t *testing.T) {
	cost, err := Cost(testSpec(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	g1 := cost.GlobalOps(1e6, 1)
	g16 := cost.GlobalOps(1e6, 16)
	if g16 <= g1 {
		t.Fatal("GlobalOps did not grow with node count")
	}
	// Dataset-size independence (linear-constant class).
	if cost.GlobalOps(1e6, 4) != cost.GlobalOps(8e6, 4) {
		t.Fatal("GlobalOps varied with dataset size")
	}
}

func TestModelClasses(t *testing.T) {
	m := Model()
	if m.RO != core.ROConstant || m.Global != core.GlobalLinearConstant {
		t.Fatalf("Model() = %+v", m)
	}
}

func TestProcessChunkRejectsBadInput(t *testing.T) {
	spec := testSpec()
	k, _ := New(spec, DefaultParams())
	obj := k.NewObject()
	bad := reduction.Payload{Chunk: adr.Chunk{Elems: 1}, Fields: 3, Values: []float64{1, 2, 3}}
	if err := k.ProcessChunk(bad, obj); err == nil {
		t.Error("wrong-dimensionality payload accepted")
	}
	if err := k.ProcessChunk(bad, reduction.NewFloatsObject(1)); err == nil {
		t.Error("wrong object type accepted")
	}
	if _, err := k.GlobalReduce(reduction.NewVectorObject(3)); err == nil {
		t.Error("wrong-size merged object accepted")
	}
}

func TestAssignPicksNearestCenter(t *testing.T) {
	spec := testSpec()
	k, _ := New(spec, Params{K: 2, MaxIter: 1, Epsilon: 0})
	k.centers = [][]float64{make([]float64, 16), make([]float64, 16)}
	for j := range k.centers[1] {
		k.centers[1][j] = 10
	}
	pt := make([]float64, 16)
	for j := range pt {
		pt[j] = 9
	}
	if got := k.Assign(pt); got != 1 {
		t.Fatalf("Assign = %d, want 1", got)
	}
}
