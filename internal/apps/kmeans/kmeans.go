// Package kmeans implements k-means clustering as a FREERIDE-G
// generalized reduction (Section 4.1 of the paper): each pass assigns
// every point to its nearest center and accumulates per-cluster coordinate
// sums and counts in the reduction object; the global reduction recomputes
// the centers.
//
// Its reduction object size is constant (k centers, independent of dataset
// size and node count) and its global reduction time is linear-constant
// (linear in the node count, independent of dataset size) — the classes
// the paper assigns to k-means.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// Params configures a k-means run.
type Params struct {
	// K is the number of clusters.
	K int
	// MaxIter is the fixed number of passes.
	MaxIter int
	// Epsilon is the center-shift convergence threshold.
	Epsilon float64
}

// DefaultParams mirrors the workload used in the paper-scale experiments.
func DefaultParams() Params { return Params{K: 32, MaxIter: 10, Epsilon: 1e-3} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("kmeans: K = %d", p.K)
	}
	if p.MaxIter < 1 {
		return fmt.Errorf("kmeans: MaxIter = %d", p.MaxIter)
	}
	return nil
}

// Kernel is one k-means run.
type Kernel struct {
	params  Params
	dims    int
	centers [][]float64
	iter    int
	shift   float64
}

// New creates a kernel for the dataset, with centers seeded
// deterministically from the dataset seed.
func New(spec adr.DatasetSpec, params Params) (*Kernel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != "points" {
		return nil, fmt.Errorf("kmeans: dataset kind %q, want points", spec.Kind)
	}
	if spec.Dims < 1 {
		return nil, errors.New("kmeans: dataset without dimensions")
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x6b6d65616e73)) // "kmeans"
	centers := make([][]float64, params.K)
	for i := range centers {
		c := make([]float64, spec.Dims)
		for j := range c {
			c[j] = rng.Float64() * 100
		}
		centers[i] = c
	}
	return &Kernel{params: params, dims: spec.Dims, centers: centers}, nil
}

// Name implements reduction.Kernel.
func (k *Kernel) Name() string { return "kmeans" }

// Iterations implements reduction.Kernel.
func (k *Kernel) Iterations() int { return k.params.MaxIter }

// Centers returns the current cluster centers.
func (k *Kernel) Centers() [][]float64 { return k.centers }

// LastShift reports the maximum center movement of the last pass.
func (k *Kernel) LastShift() float64 { return k.shift }

// NewObject returns the per-cluster (sums..., count) accumulator.
func (k *Kernel) NewObject() reduction.Object {
	return reduction.NewVectorObject(k.params.K * (k.dims + 1))
}

// ProcessChunk assigns each point to its nearest center and accumulates.
func (k *Kernel) ProcessChunk(p reduction.Payload, obj reduction.Object) error {
	acc, ok := obj.(*reduction.VectorObject)
	if !ok {
		return fmt.Errorf("kmeans: unexpected object %T", obj)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Fields != k.dims {
		return fmt.Errorf("kmeans: payload has %d fields, want %d", p.Fields, k.dims)
	}
	d := k.dims
	for e := int64(0); e < p.Chunk.Elems; e++ {
		pt := p.Elem(e)
		best, bestDist := 0, math.Inf(1)
		for ci, c := range k.centers {
			var sum float64
			for j := 0; j < d; j++ {
				diff := pt[j] - c[j]
				sum += diff * diff
			}
			if sum < bestDist {
				best, bestDist = ci, sum
			}
		}
		base := best * (d + 1)
		for j := 0; j < d; j++ {
			acc.V[base+j] += pt[j]
		}
		acc.V[base+d]++
	}
	return nil
}

// GlobalReduce recomputes centers from the merged sums and counts.
func (k *Kernel) GlobalReduce(merged reduction.Object) (bool, error) {
	acc, ok := merged.(*reduction.VectorObject)
	if !ok {
		return false, fmt.Errorf("kmeans: unexpected object %T", merged)
	}
	if len(acc.V) != k.params.K*(k.dims+1) {
		return false, fmt.Errorf("kmeans: merged object has %d values, want %d",
			len(acc.V), k.params.K*(k.dims+1))
	}
	d := k.dims
	k.shift = 0
	for ci := range k.centers {
		base := ci * (d + 1)
		count := acc.V[base+d]
		if count == 0 {
			continue // empty cluster keeps its center
		}
		for j := 0; j < d; j++ {
			next := acc.V[base+j] / count
			if move := math.Abs(next - k.centers[ci][j]); move > k.shift {
				k.shift = move
			}
			k.centers[ci][j] = next
		}
	}
	k.iter++
	return k.iter >= k.params.MaxIter || k.shift < k.params.Epsilon, nil
}

// Assign reports the index of the nearest center to a point, for
// downstream classification use.
func (k *Kernel) Assign(pt []float64) int {
	best, bestDist := 0, math.Inf(1)
	for ci, c := range k.centers {
		var sum float64
		for j := range c {
			diff := pt[j] - c[j]
			sum += diff * diff
		}
		if sum < bestDist {
			best, bestDist = ci, sum
		}
	}
	return best
}

// Model returns the paper's scaling classes for k-means: constant
// reduction object, linear-constant global reduction.
func Model() core.AppModel {
	return core.AppModel{RO: core.ROConstant, Global: core.GlobalLinearConstant}
}

// Cost returns the analytic work model consumed by the simulated backend.
func Cost(spec adr.DatasetSpec, params Params) (reduction.CostModel, error) {
	if err := params.Validate(); err != nil {
		return reduction.CostModel{}, err
	}
	d := spec.Dims
	roBytes := units.Bytes(8 * params.K * (d + 1))
	return reduction.CostModel{
		Name: "kmeans",
		Mix:  reduction.WorkMix{Flop: 0.75, Mem: 0.15, Branch: 0.10},
		// Per point per pass: K squared-distance evaluations of 3d flops.
		OpsPerElem: float64(3 * params.K * d),
		Iterations: params.MaxIter,
		ROBytesPerNode: func(totalElems int64, c int) units.Bytes {
			return roBytes // constant class
		},
		GlobalOps: func(totalElems int64, c int) float64 {
			// Merge c objects of K(d+1) values — decode, combine, and
			// allocation touch each value about four times — then
			// recompute K centers.
			return float64(4*c*params.K*(d+1) + params.K*d)
		},
		BroadcastBytes: units.Bytes(8 * params.K * d),
	}, nil
}
