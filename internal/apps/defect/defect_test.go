package defect

import (
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

func testSpec(total units.Bytes) adr.DatasetSpec {
	return adr.DatasetSpec{
		Name:       "si",
		TotalBytes: total,
		ElemBytes:  24,            // (x, y, z)
		ChunkBytes: 96 * units.KB, // 4096 atoms per chunk
		Kind:       "lattice",
		Dims:       3,
		Seed:       9,
	}
}

// run drives both passes of the kernel, splitting chunk processing into
// `splits` reduction objects per pass to mimic parallel compute nodes.
func drive(t *testing.T, k *Kernel, spec adr.DatasetSpec, splits int) {
	t.Helper()
	gen := datagen.Lattice{}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < k.Iterations(); pass++ {
		objs := make([]reduction.Object, splits)
		for i := range objs {
			objs[i] = k.NewObject()
		}
		for i, c := range layout.Chunks() {
			p := reduction.Payload{Chunk: c, Fields: 3, Values: gen.ChunkValues(spec, c)}
			if err := k.ProcessChunk(p, objs[i%splits]); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i < splits; i++ {
			if err := objs[0].Merge(objs[i]); err != nil {
				t.Fatal(err)
			}
		}
		done, err := k.GlobalReduce(objs[0])
		if err != nil {
			t.Fatal(err)
		}
		if done != (pass == 1) {
			t.Fatalf("pass %d reported done=%v", pass, done)
		}
	}
}

func TestDetectsInjectedDefects(t *testing.T) {
	spec := testSpec(2 * units.MB)
	truth := datagen.Lattice{}.Defects(spec)
	if len(truth) < 5 {
		t.Fatalf("test dataset has only %d defects", len(truth))
	}
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, k, spec, 1)
	got := k.Defects()
	if len(got) != len(truth) {
		t.Fatalf("detected %d defects, injected %d", len(got), len(truth))
	}
	for i, d := range got {
		if d.First != truth[i].FirstAtom || d.Size != truth[i].Size {
			t.Errorf("defect %d = [%d..%d] size %d, want first %d size %d",
				i, d.First, d.Last, d.Size, truth[i].FirstAtom, truth[i].Size)
		}
	}
}

func TestBoundarySpanningDefectJoined(t *testing.T) {
	// Pick a chunk size whose boundary falls inside an injected defect:
	// cluster 1 starts at atom 8292 with size 2; a chunk boundary at 8293
	// splits it.
	spec := testSpec(2 * units.MB)
	spec.ChunkBytes = 8293 * 24
	truth := datagen.Lattice{}.Defects(spec)
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, k, spec, 1)
	if len(k.Defects()) != len(truth) {
		t.Fatalf("detected %d defects with splitting boundary, injected %d", len(k.Defects()), len(truth))
	}
	// The categorization histogram must also account for every defect.
	var classified int
	for _, n := range k.Counts() {
		classified += n
	}
	if classified != len(truth) {
		t.Fatalf("categorized %d defects, want %d", classified, len(truth))
	}
}

func TestCatalogHasOneClassPerSize(t *testing.T) {
	spec := testSpec(4 * units.MB)
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, k, spec, 1)
	if len(k.Catalog()) != datagen.MaxDefectSize {
		t.Fatalf("catalog has %d classes, want %d", len(k.Catalog()), datagen.MaxDefectSize)
	}
	seen := map[int]bool{}
	for size, class := range k.Catalog() {
		if size < 1 || size > datagen.MaxDefectSize {
			t.Errorf("catalog size %d out of range", size)
		}
		if seen[class] {
			t.Errorf("class %d assigned twice", class)
		}
		seen[class] = true
	}
}

func TestCountsMatchTruthHistogram(t *testing.T) {
	spec := testSpec(4 * units.MB)
	truth := datagen.Lattice{}.Defects(spec)
	wantBySize := map[int]int{}
	for _, d := range truth {
		wantBySize[d.Size]++
	}
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, k, spec, 1)
	for size, class := range k.Catalog() {
		if got := k.Counts()[class]; got != wantBySize[size] {
			t.Errorf("size-%d class counted %d, want %d", size, got, wantBySize[size])
		}
	}
}

func TestSplitMergeInvariant(t *testing.T) {
	spec := testSpec(2 * units.MB)
	k1, _ := New(spec, DefaultParams())
	drive(t, k1, spec, 1)
	k4, _ := New(spec, DefaultParams())
	drive(t, k4, spec, 4)
	if len(k1.Defects()) != len(k4.Defects()) {
		t.Fatalf("defect count differs between 1-way (%d) and 4-way (%d) runs",
			len(k1.Defects()), len(k4.Defects()))
	}
	for class, n := range k1.Counts() {
		if k4.Counts()[class] != n {
			t.Fatalf("class %d count differs: %d vs %d", class, n, k4.Counts()[class])
		}
	}
}

func TestTempClassAssignment(t *testing.T) {
	// Force a categorization-time catalog miss: seed the catalog without
	// one of the sizes after the detection pass.
	spec := testSpec(2 * units.MB)
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	gen := datagen.Lattice{}
	layout, _ := adr.Partition(spec, 1, adr.RoundRobin)
	// Detection pass.
	obj := k.NewObject()
	for _, c := range layout.Chunks() {
		p := reduction.Payload{Chunk: c, Fields: 3, Values: gen.ChunkValues(spec, c)}
		if err := k.ProcessChunk(p, obj); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.GlobalReduce(obj); err != nil {
		t.Fatal(err)
	}
	// Drop size 3 from the catalog to simulate a previously unseen shape.
	oldLen := len(k.Catalog())
	delete(k.catalog, 3)
	// Categorization pass.
	obj = k.NewObject()
	for _, c := range layout.Chunks() {
		p := reduction.Payload{Chunk: c, Fields: 3, Values: gen.ChunkValues(spec, c)}
		if err := k.ProcessChunk(p, obj); err != nil {
			t.Fatal(err)
		}
	}
	done, err := k.GlobalReduce(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("categorization pass did not finish")
	}
	if _, ok := k.Catalog()[3]; !ok {
		t.Fatal("catalog was not updated with the unseen size")
	}
	if len(k.Catalog()) != oldLen {
		t.Fatalf("catalog has %d classes after update, want %d", len(k.Catalog()), oldLen)
	}
}

func TestJoinRuns(t *testing.T) {
	runs := []run{
		{first: 10, last: 12, sumDisp: 3},
		{first: 13, last: 14, sumDisp: 2}, // adjacent: joins with previous
		{first: 20, last: 20, sumDisp: 1}, // separate
	}
	got := joinRuns(runs)
	if len(got) != 2 {
		t.Fatalf("joined into %d defects, want 2", len(got))
	}
	if got[0].First != 10 || got[0].Last != 14 || got[0].Size != 5 || got[0].SumDisp != 5 {
		t.Fatalf("joined defect = %+v", got[0])
	}
	if got[1].Size != 1 {
		t.Fatalf("singleton defect = %+v", got[1])
	}
	if len(joinRuns(nil)) != 0 {
		t.Fatal("joinRuns(nil) not empty")
	}
}

func TestModelAndCostClasses(t *testing.T) {
	m := Model()
	if m.RO != core.ROLinear || m.Global != core.GlobalConstantLinear {
		t.Fatalf("Model() = %+v", m)
	}
	cost, err := Cost(testSpec(units.MB), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if cost.Iterations != 2 {
		t.Fatalf("defect cost iterations = %d, want 2", cost.Iterations)
	}
	if cost.ROBytesPerNode(1<<24, 1) <= cost.ROBytesPerNode(1<<22, 1) {
		t.Error("RO did not grow with dataset")
	}
	if cost.GlobalOps(1<<24, 1) != cost.GlobalOps(1<<24, 16) {
		t.Error("GlobalOps varied with node count")
	}
}

func TestRejectsBadInput(t *testing.T) {
	spec := testSpec(units.MB)
	if err := (Params{Threshold: 0}).Validate(); err == nil {
		t.Error("zero threshold accepted")
	}
	wrongKind := spec
	wrongKind.Kind = "points"
	if _, err := New(wrongKind, DefaultParams()); err == nil {
		t.Error("points dataset accepted")
	}
	k, _ := New(spec, DefaultParams())
	bad := reduction.Payload{Chunk: adr.Chunk{Elems: 2}, Fields: 2, Values: make([]float64, 4)}
	if err := k.ProcessChunk(bad, k.NewObject()); err == nil {
		t.Error("2-field payload accepted")
	}
	if err := k.ProcessChunk(bad, reduction.NewVectorObject(1)); err == nil {
		t.Error("wrong object type accepted")
	}
	if _, err := k.GlobalReduce(reduction.NewFloatsObject(99)); err == nil {
		t.Error("wrong stride accepted")
	}
}
