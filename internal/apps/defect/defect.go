// Package defect implements the molecular defect detection and
// categorization application as a FREERIDE-G generalized reduction
// (Section 4.5 of the paper). The run makes two passes over the lattice:
//
//   - Detection: atoms displaced beyond a threshold from their ideal
//     lattice sites are marked and clustered into defect structures on
//     each node; structures spanning chunk boundaries are joined in the
//     global combination, which also builds the defect-class catalog.
//   - Categorization: each node matches its local defects against the
//     broadcast catalog; non-matching defects receive temporary class
//     assignments, local catalogs are merged globally, and the final
//     class histogram is produced.
//
// Its per-node reduction object is a defect list proportional to the
// node's data share (linear class) and the global combination handles a
// defect volume proportional to the dataset (constant-linear class).
package defect

import (
	"fmt"
	"math"
	"sort"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// Params configures a defect detection run.
type Params struct {
	// Threshold is the displacement above which an atom is anomalous.
	Threshold float64
}

// DefaultParams uses the generator's injection threshold.
func DefaultParams() Params { return Params{Threshold: datagen.DefectThreshold} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Threshold <= 0 {
		return fmt.Errorf("defect: threshold %g", p.Threshold)
	}
	return nil
}

// Record kinds in the categorization pass's reduction object.
const (
	recClassified = 0 // [kind, classID, 1, size, 0]
	recTempClass  = 1 // [kind, size, 1, size, 0] — size not in catalog
	recFragment   = 2 // [kind, firstIdx, lastIdx, sumDisp, 0]
)

// detStride is the detection-pass record layout:
// firstIdx, lastIdx, size, sumDisp.
const detStride = 4

// catStride is the categorization-pass record layout (see constants).
const catStride = 5

// Defect is one joined defect structure.
type Defect struct {
	First, Last int64 // global atom index range
	Size        int
	SumDisp     float64
}

// Kernel is one defect detection + categorization run.
type Kernel struct {
	params  Params
	spec    adr.DatasetSpec
	lattice datagen.Lattice
	pass    int

	defects []Defect    // joined structures after the detection pass
	catalog map[int]int // size -> class id
	counts  map[int]int // class id -> defect count (final result)
}

// New creates a kernel for a lattice dataset.
func New(spec adr.DatasetSpec, params Params) (*Kernel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != "lattice" {
		return nil, fmt.Errorf("defect: dataset kind %q, want lattice", spec.Kind)
	}
	return &Kernel{params: params, spec: spec, catalog: make(map[int]int)}, nil
}

// Name implements reduction.Kernel.
func (k *Kernel) Name() string { return "defect" }

// Iterations implements reduction.Kernel: detection then categorization.
func (k *Kernel) Iterations() int { return 2 }

// Defects returns the joined defect structures found by the detection pass.
func (k *Kernel) Defects() []Defect { return k.defects }

// Catalog returns the size -> class-id catalog.
func (k *Kernel) Catalog() map[int]int { return k.catalog }

// Counts returns the final class-id -> defect-count histogram.
func (k *Kernel) Counts() map[int]int { return k.counts }

// NewObject returns the pass-appropriate accumulator.
func (k *Kernel) NewObject() reduction.Object {
	if k.pass == 0 {
		return reduction.NewFloatsObject(detStride)
	}
	return reduction.NewFloatsObject(catStride)
}

// run is a maximal run of consecutive anomalous atoms within one chunk.
type run struct {
	first, last int64
	sumDisp     float64
}

// detectRuns finds the anomalous runs in a chunk.
func (k *Kernel) detectRuns(p reduction.Payload) ([]run, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Fields != 3 {
		return nil, fmt.Errorf("defect: payload has %d fields, want 3 (x,y,z)", p.Fields)
	}
	base := datagen.GlobalBase(k.spec, p.Chunk)
	var runs []run
	open := false
	var cur run
	for e := int64(0); e < p.Chunk.Elems; e++ {
		idx := base + e
		ix, iy, iz := k.lattice.IdealPosition(k.spec, idx)
		pos := p.Elem(e)
		dx, dy, dz := pos[0]-ix, pos[1]-iy, pos[2]-iz
		disp := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if disp > k.params.Threshold {
			if open && cur.last == idx-1 {
				cur.last = idx
				cur.sumDisp += disp
			} else {
				if open {
					runs = append(runs, cur)
				}
				cur = run{first: idx, last: idx, sumDisp: disp}
				open = true
			}
		}
	}
	if open {
		runs = append(runs, cur)
	}
	return runs, nil
}

// ProcessChunk dispatches on the current pass.
func (k *Kernel) ProcessChunk(p reduction.Payload, obj reduction.Object) error {
	acc, ok := obj.(*reduction.FloatsObject)
	if !ok {
		return fmt.Errorf("defect: unexpected object %T", obj)
	}
	runs, err := k.detectRuns(p)
	if err != nil {
		return err
	}
	if k.pass == 0 {
		for _, r := range runs {
			if err := acc.Append(float64(r.first), float64(r.last),
				float64(r.last-r.first+1), r.sumDisp); err != nil {
				return err
			}
		}
		return nil
	}
	// Categorization pass: classify runs interior to the chunk against
	// the catalog; emit boundary runs as fragments for the master to join.
	base := datagen.GlobalBase(k.spec, p.Chunk)
	end := base + p.Chunk.Elems - 1
	for _, r := range runs {
		if r.first == base || r.last == end {
			if err := acc.Append(recFragment, float64(r.first), float64(r.last), r.sumDisp, 0); err != nil {
				return err
			}
			continue
		}
		size := int(r.last - r.first + 1)
		if class, ok := k.catalog[size]; ok {
			if err := acc.Append(recClassified, float64(class), 1, float64(size), 0); err != nil {
				return err
			}
		} else {
			if err := acc.Append(recTempClass, float64(size), 1, float64(size), 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// GlobalReduce dispatches on the current pass.
func (k *Kernel) GlobalReduce(merged reduction.Object) (bool, error) {
	acc, ok := merged.(*reduction.FloatsObject)
	if !ok {
		return false, fmt.Errorf("defect: unexpected object %T", merged)
	}
	if k.pass == 0 {
		if acc.Stride != detStride {
			return false, fmt.Errorf("defect: detection stride %d, want %d", acc.Stride, detStride)
		}
		k.defects = joinRuns(recordsAsRuns(acc))
		// Build the catalog: one class per distinct size, ordered.
		sizes := map[int]bool{}
		for _, d := range k.defects {
			sizes[d.Size] = true
		}
		ordered := make([]int, 0, len(sizes))
		for s := range sizes {
			ordered = append(ordered, s)
		}
		sort.Ints(ordered)
		k.catalog = make(map[int]int, len(ordered))
		for i, s := range ordered {
			k.catalog[s] = i
		}
		k.pass = 1
		return false, nil
	}
	// Categorization pass.
	if acc.Stride != catStride {
		return false, fmt.Errorf("defect: categorization stride %d, want %d", acc.Stride, catStride)
	}
	counts := make(map[int]int)
	var fragments []run
	nextClass := len(k.catalog)
	tempSizes := map[int]int{} // size -> temp class id
	classify := func(size int) {
		if class, ok := k.catalog[size]; ok {
			counts[class]++
			return
		}
		// Temporary class assignment; added to the catalog during merge.
		class, ok := tempSizes[size]
		if !ok {
			class = nextClass
			nextClass++
			tempSizes[size] = class
			k.catalog[size] = class
		}
		counts[class]++
	}
	for i := 0; i < acc.Records(); i++ {
		rec := acc.Record(i)
		switch int(rec[0]) {
		case recClassified:
			counts[int(rec[1])] += int(rec[2])
		case recTempClass:
			for n := 0; n < int(rec[2]); n++ {
				classify(int(rec[1]))
			}
		case recFragment:
			fragments = append(fragments, run{
				first:   int64(rec[1]),
				last:    int64(rec[2]),
				sumDisp: rec[3],
			})
		default:
			return false, fmt.Errorf("defect: unknown record kind %v", rec[0])
		}
	}
	for _, d := range joinRuns(fragments) {
		classify(d.Size)
	}
	k.counts = counts
	return true, nil
}

// recordsAsRuns converts detection-pass records back to runs.
func recordsAsRuns(acc *reduction.FloatsObject) []run {
	runs := make([]run, acc.Records())
	for i := range runs {
		rec := acc.Record(i)
		runs[i] = run{first: int64(rec[0]), last: int64(rec[1]), sumDisp: rec[3]}
	}
	return runs
}

// joinRuns merges runs that are adjacent in atom-index space (defects
// spanning chunk boundaries) and returns the joined defects sorted by
// first atom.
func joinRuns(runs []run) []Defect {
	sort.Slice(runs, func(i, j int) bool { return runs[i].first < runs[j].first })
	var out []Defect
	for _, r := range runs {
		if n := len(out); n > 0 && out[n-1].Last+1 >= r.first {
			if r.last > out[n-1].Last {
				out[n-1].Last = r.last
			}
			out[n-1].SumDisp += r.sumDisp
			out[n-1].Size = int(out[n-1].Last - out[n-1].First + 1)
			continue
		}
		out = append(out, Defect{
			First:   r.first,
			Last:    r.last,
			Size:    int(r.last - r.first + 1),
			SumDisp: r.sumDisp,
		})
	}
	return out
}

// Model returns the paper's scaling classes for defect detection: linear
// reduction object, constant-linear global reduction.
func Model() core.AppModel {
	return core.AppModel{RO: core.ROLinear, Global: core.GlobalConstantLinear}
}

// Cost returns the analytic work model consumed by the simulated backend.
func Cost(spec adr.DatasetSpec, params Params) (reduction.CostModel, error) {
	if err := params.Validate(); err != nil {
		return reduction.CostModel{}, err
	}
	defectsFor := func(totalElems int64) float64 {
		return float64(totalElems / datagen.DefectAtomPeriod)
	}
	return reduction.CostModel{
		Name: "defect",
		Mix:  reduction.WorkMix{Flop: 0.35, Mem: 0.45, Branch: 0.20},
		// Per atom per pass: neighbour-shell reconstruction, displacement
		// analysis, and amortized clustering plus shape-matching work
		// (categorization dominates the average).
		OpsPerElem: 1800,
		Iterations: 2,
		ROBytesPerNode: func(totalElems int64, c int) units.Bytes {
			perNode := defectsFor(totalElems) / float64(c)
			return units.Bytes(perNode*catStride*8) + 8 // linear class
		},
		GlobalOps: func(totalElems int64, c int) float64 {
			// Join + classify every defect: proportional to the dataset,
			// independent of the node count.
			return defectsFor(totalElems) * 30
		},
		// The catalog re-broadcast after the detection pass: bounded by
		// the number of defect classes.
		BroadcastBytes: units.Bytes(16*datagen.MaxDefectSize) + 64,
	}, nil
}
