// Package ann implements artificial neural network training as a
// FREERIDE-G generalized reduction — the last of the paper's Section 2.2
// examples of the middleware's application class (apriori, k-means, kNN,
// and ANNs). Each pass is one epoch of batch gradient descent: every node
// accumulates the loss gradient of its local data in the reduction object,
// and the global reduction applies the combined gradient to the weights.
//
// The network is a one-hidden-layer tanh/softmax classifier; the training
// labels are the generating mixture component of each point (the points
// dataset is a labeled Gaussian mixture). The gradient vector's size is
// fixed by the architecture, so the reduction object is constant-class and
// the global reduction (merging c gradients) is linear-constant — like
// k-means.
package ann

import (
	"fmt"
	"math"
	"math/rand"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// Params configures a training run.
type Params struct {
	// Hidden is the hidden layer width.
	Hidden int
	// Epochs is the fixed number of passes.
	Epochs int
	// LearningRate scales the batch gradient step.
	LearningRate float64
}

// DefaultParams trains a 16-unit hidden layer for 12 epochs.
func DefaultParams() Params { return Params{Hidden: 16, Epochs: 12, LearningRate: 1.5} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Hidden < 1 {
		return fmt.Errorf("ann: Hidden = %d", p.Hidden)
	}
	if p.Epochs < 1 {
		return fmt.Errorf("ann: Epochs = %d", p.Epochs)
	}
	if p.LearningRate <= 0 {
		return fmt.Errorf("ann: LearningRate = %g", p.LearningRate)
	}
	return nil
}

// Kernel is one training run. Weight layout:
//
//	W1 [hidden][dims+1] (input->hidden, +bias), W2 [classes][hidden+1].
type Kernel struct {
	params  Params
	dims    int
	classes int
	centers [][]float64 // mixture centers = labeling function
	w1, w2  []float64
	loss    float64
	count   float64
	iter    int
}

// gradLen is the reduction object length: all weight gradients plus a
// loss cell and an example-count cell.
func gradLen(d, h, g int) int { return h*(d+1) + g*(h+1) + 2 }

// New creates a kernel with weights seeded from the dataset seed.
func New(spec adr.DatasetSpec, params Params) (*Kernel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != "points" {
		return nil, fmt.Errorf("ann: dataset kind %q, want points", spec.Kind)
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x616e6e)) // "ann"
	k := &Kernel{
		params:  params,
		dims:    spec.Dims,
		classes: datagen.MixtureComponents,
		centers: (datagen.Points{}).Centers(spec),
	}
	k.w1 = make([]float64, params.Hidden*(spec.Dims+1))
	k.w2 = make([]float64, k.classes*(params.Hidden+1))
	for i := range k.w1 {
		k.w1[i] = rng.NormFloat64() * 0.3
	}
	for i := range k.w2 {
		k.w2[i] = rng.NormFloat64() * 0.3
	}
	return k, nil
}

// Name implements reduction.Kernel.
func (k *Kernel) Name() string { return "ann" }

// Iterations implements reduction.Kernel.
func (k *Kernel) Iterations() int { return k.params.Epochs }

// Loss reports the mean cross-entropy of the last completed epoch.
func (k *Kernel) Loss() float64 {
	if k.count == 0 {
		return math.Inf(1)
	}
	return k.loss / k.count
}

// NewObject returns a zeroed gradient accumulator.
func (k *Kernel) NewObject() reduction.Object {
	return reduction.NewVectorObject(gradLen(k.dims, k.params.Hidden, k.classes))
}

// label reports a point's class: the nearest generating mixture center.
func (k *Kernel) label(pt []float64) int {
	best, bestDist := 0, math.Inf(1)
	for ci, c := range k.centers {
		var sum float64
		for j := range c {
			diff := pt[j] - c[j]
			sum += diff * diff
		}
		if sum < bestDist {
			best, bestDist = ci, sum
		}
	}
	return best
}

// forward computes hidden activations and class probabilities.
func (k *Kernel) forward(x []float64, hidden, probs []float64) {
	h, d, g := k.params.Hidden, k.dims, k.classes
	for i := 0; i < h; i++ {
		sum := k.w1[i*(d+1)+d] // bias
		for j := 0; j < d; j++ {
			sum += k.w1[i*(d+1)+j] * x[j]
		}
		hidden[i] = math.Tanh(sum)
	}
	maxLogit := math.Inf(-1)
	for c := 0; c < g; c++ {
		sum := k.w2[c*(h+1)+h] // bias
		for i := 0; i < h; i++ {
			sum += k.w2[c*(h+1)+i] * hidden[i]
		}
		probs[c] = sum
		if sum > maxLogit {
			maxLogit = sum
		}
	}
	var denom float64
	for c := 0; c < g; c++ {
		probs[c] = math.Exp(probs[c] - maxLogit)
		denom += probs[c]
	}
	for c := 0; c < g; c++ {
		probs[c] /= denom
	}
}

// ProcessChunk accumulates the batch gradient over one chunk.
func (k *Kernel) ProcessChunk(p reduction.Payload, obj reduction.Object) error {
	acc, ok := obj.(*reduction.VectorObject)
	if !ok {
		return fmt.Errorf("ann: unexpected object %T", obj)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Fields != k.dims {
		return fmt.Errorf("ann: payload has %d fields, want %d", p.Fields, k.dims)
	}
	h, d, g := k.params.Hidden, k.dims, k.classes
	if len(acc.V) != gradLen(d, h, g) {
		return fmt.Errorf("ann: object has %d cells, want %d", len(acc.V), gradLen(d, h, g))
	}
	x := make([]float64, d)
	hidden := make([]float64, h)
	probs := make([]float64, g)
	dHidden := make([]float64, h)
	g2off := h * (d + 1)
	for e := int64(0); e < p.Chunk.Elems; e++ {
		pt := p.Elem(e)
		for j := 0; j < d; j++ {
			x[j] = pt[j] / 100 // inputs live in [0,100]; normalize
		}
		k.forward(x, hidden, probs)
		label := k.label(pt)
		acc.V[len(acc.V)-2] += -math.Log(math.Max(probs[label], 1e-12))
		acc.V[len(acc.V)-1]++
		// Backward: softmax cross-entropy.
		for i := range dHidden {
			dHidden[i] = 0
		}
		for c := 0; c < g; c++ {
			delta := probs[c]
			if c == label {
				delta--
			}
			base := g2off + c*(h+1)
			for i := 0; i < h; i++ {
				acc.V[base+i] += delta * hidden[i]
				dHidden[i] += delta * k.w2[c*(h+1)+i]
			}
			acc.V[base+h] += delta
		}
		for i := 0; i < h; i++ {
			dh := dHidden[i] * (1 - hidden[i]*hidden[i])
			base := i * (d + 1)
			for j := 0; j < d; j++ {
				acc.V[base+j] += dh * x[j]
			}
			acc.V[base+d] += dh
		}
	}
	return nil
}

// GlobalReduce applies the combined gradient — one synchronous batch
// gradient-descent step.
func (k *Kernel) GlobalReduce(merged reduction.Object) (bool, error) {
	acc, ok := merged.(*reduction.VectorObject)
	if !ok {
		return false, fmt.Errorf("ann: unexpected object %T", merged)
	}
	h, d, g := k.params.Hidden, k.dims, k.classes
	if len(acc.V) != gradLen(d, h, g) {
		return false, fmt.Errorf("ann: merged object has %d cells, want %d", len(acc.V), gradLen(d, h, g))
	}
	n := acc.V[len(acc.V)-1]
	if n <= 0 {
		return false, fmt.Errorf("ann: no examples accumulated")
	}
	step := k.params.LearningRate / n
	g2off := h * (d + 1)
	for i := range k.w1 {
		k.w1[i] -= step * acc.V[i]
	}
	for i := range k.w2 {
		k.w2[i] -= step * acc.V[g2off+i]
	}
	k.loss = acc.V[len(acc.V)-2]
	k.count = n
	k.iter++
	return k.iter >= k.params.Epochs, nil
}

// Classify predicts the class of a point.
func (k *Kernel) Classify(pt []float64) int {
	x := make([]float64, k.dims)
	for j := range x {
		x[j] = pt[j] / 100
	}
	hidden := make([]float64, k.params.Hidden)
	probs := make([]float64, k.classes)
	k.forward(x, hidden, probs)
	best := 0
	for c := range probs {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return best
}

// Model returns the scaling classes: constant reduction object (the
// gradient's size is the architecture's), linear-constant global
// reduction.
func Model() core.AppModel {
	return core.AppModel{RO: core.ROConstant, Global: core.GlobalLinearConstant}
}

// Cost returns the analytic work model consumed by the simulated backend.
func Cost(spec adr.DatasetSpec, params Params) (reduction.CostModel, error) {
	if err := params.Validate(); err != nil {
		return reduction.CostModel{}, err
	}
	d, h, g := spec.Dims, params.Hidden, datagen.MixtureComponents
	weights := gradLen(d, h, g)
	return reduction.CostModel{
		Name: "ann",
		Mix:  reduction.WorkMix{Flop: 0.8, Mem: 0.12, Branch: 0.08},
		// Forward + backward: ~4 ops per weight per example, plus the
		// labeling distance scan.
		OpsPerElem: float64(4*weights + 3*g*d),
		Iterations: params.Epochs,
		ROBytesPerNode: func(totalElems int64, c int) units.Bytes {
			return units.Bytes(8 * weights) // constant class
		},
		GlobalOps: func(totalElems int64, c int) float64 {
			return float64(4 * c * weights)
		},
		BroadcastBytes: units.Bytes(8 * weights), // updated weights
	}, nil
}
