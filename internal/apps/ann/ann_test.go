package ann

import (
	"math"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

func testSpec() adr.DatasetSpec {
	return adr.DatasetSpec{
		Name:       "pts",
		TotalBytes: units.MB,
		ElemBytes:  128,
		ChunkBytes: 128 * units.KB,
		Kind:       "points",
		Dims:       16,
		Seed:       47,
	}
}

// drive runs all epochs, splitting chunks into `splits` objects per pass,
// and returns the per-epoch mean losses.
func drive(t *testing.T, k *Kernel, spec adr.DatasetSpec, splits int) []float64 {
	t.Helper()
	gen := datagen.Points{}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for pass := 0; pass < k.Iterations(); pass++ {
		objs := make([]reduction.Object, splits)
		for i := range objs {
			objs[i] = k.NewObject()
		}
		for i, c := range layout.Chunks() {
			p := reduction.Payload{Chunk: c, Fields: spec.Dims, Values: gen.ChunkValues(spec, c)}
			if err := k.ProcessChunk(p, objs[i%splits]); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i < splits; i++ {
			if err := objs[0].Merge(objs[i]); err != nil {
				t.Fatal(err)
			}
		}
		done, err := k.GlobalReduce(objs[0])
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, k.Loss())
		if done {
			break
		}
	}
	return losses
}

// accuracy measures training accuracy against the generating labels.
func accuracy(t *testing.T, k *Kernel, spec adr.DatasetSpec) float64 {
	t.Helper()
	gen := datagen.Points{}
	layout, _ := adr.Partition(spec, 1, adr.RoundRobin)
	var hit, total int64
	for _, c := range layout.Chunks() {
		vals := gen.ChunkValues(spec, c)
		for e := int64(0); e < c.Elems; e++ {
			pt := vals[e*int64(spec.Dims) : (e+1)*int64(spec.Dims)]
			if k.Classify(pt) == k.label(pt) {
				hit++
			}
			total++
		}
	}
	return float64(hit) / float64(total)
}

func TestLossDecreases(t *testing.T) {
	spec := testSpec()
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	losses := drive(t, k, spec, 1)
	if len(losses) < 3 {
		t.Fatalf("only %d epochs ran", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestLearnsSeparableMixture(t *testing.T) {
	spec := testSpec()
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, k, spec, 1)
	if acc := accuracy(t, k, spec); acc < 0.9 {
		t.Fatalf("training accuracy %.2f after %d epochs, want >= 0.9 on a separable mixture",
			acc, DefaultParams().Epochs)
	}
}

func TestSplitMergeMatchesSingle(t *testing.T) {
	spec := testSpec()
	params := Params{Hidden: 8, Epochs: 3, LearningRate: 1}
	k1, _ := New(spec, params)
	l1 := drive(t, k1, spec, 1)
	k4, _ := New(spec, params)
	l4 := drive(t, k4, spec, 4)
	for i := range l1 {
		if math.Abs(l1[i]-l4[i]) > 1e-9*(math.Abs(l1[i])+1) {
			t.Fatalf("epoch %d loss differs between 1-way (%v) and 4-way (%v) accumulation", i, l1[i], l4[i])
		}
	}
}

func TestGradientObjectConstantSize(t *testing.T) {
	spec := testSpec()
	k, _ := New(spec, DefaultParams())
	obj := k.NewObject()
	before := obj.Bytes()
	gen := datagen.Points{}
	layout, _ := adr.Partition(spec, 1, adr.RoundRobin)
	c := layout.Chunks()[0]
	p := reduction.Payload{Chunk: c, Fields: spec.Dims, Values: gen.ChunkValues(spec, c)}
	if err := k.ProcessChunk(p, obj); err != nil {
		t.Fatal(err)
	}
	if obj.Bytes() != before {
		t.Fatalf("gradient object grew from %v to %v", before, obj.Bytes())
	}
	cost, err := Cost(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if cost.ROBytesPerNode(1, 1) != before {
		t.Fatalf("cost RO %v != real object %v", cost.ROBytesPerNode(1, 1), before)
	}
}

func TestModelAndCostClasses(t *testing.T) {
	m := Model()
	if m.RO != core.ROConstant || m.Global != core.GlobalLinearConstant {
		t.Fatalf("Model() = %+v", m)
	}
	cost, err := Cost(testSpec(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := cost.Validate(); err != nil {
		t.Fatal(err)
	}
	if cost.ROBytesPerNode(1e6, 1) != cost.ROBytesPerNode(4e6, 8) {
		t.Error("constant-class RO varied")
	}
	if cost.GlobalOps(1e6, 16) <= cost.GlobalOps(1e6, 2) {
		t.Error("GlobalOps not increasing in node count")
	}
}

func TestValidation(t *testing.T) {
	if err := (Params{Hidden: 0, Epochs: 1, LearningRate: 1}).Validate(); err == nil {
		t.Error("zero hidden accepted")
	}
	if err := (Params{Hidden: 1, Epochs: 0, LearningRate: 1}).Validate(); err == nil {
		t.Error("zero epochs accepted")
	}
	if err := (Params{Hidden: 1, Epochs: 1, LearningRate: 0}).Validate(); err == nil {
		t.Error("zero learning rate accepted")
	}
	bad := testSpec()
	bad.Kind = "lattice"
	if _, err := New(bad, DefaultParams()); err == nil {
		t.Error("lattice dataset accepted")
	}
	k, _ := New(testSpec(), DefaultParams())
	if err := k.ProcessChunk(reduction.Payload{}, reduction.NewFloatsObject(1)); err == nil {
		t.Error("wrong object type accepted")
	}
	if _, err := k.GlobalReduce(reduction.NewVectorObject(3)); err == nil {
		t.Error("wrong-size merged object accepted")
	}
	empty := k.NewObject()
	if _, err := k.GlobalReduce(empty); err == nil {
		t.Error("zero-example gradient accepted")
	}
}
