package apriori

import (
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

func testSpec() adr.DatasetSpec {
	return adr.DatasetSpec{
		Name:       "baskets",
		TotalBytes: units.MB,
		ElemBytes:  96, // 12 slots x 8 bytes
		ChunkBytes: 96 * units.KB,
		Kind:       "transactions",
		Dims:       12,
		Seed:       31,
	}
}

// drive runs all passes sequentially, splitting chunk processing into
// `splits` objects per pass to mimic parallel nodes.
func drive(t *testing.T, k *Kernel, spec adr.DatasetSpec, splits int) {
	t.Helper()
	gen := datagen.Transactions{}
	layout, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < k.Iterations(); pass++ {
		objs := make([]reduction.Object, splits)
		for i := range objs {
			objs[i] = k.NewObject()
		}
		for i, c := range layout.Chunks() {
			p := reduction.Payload{Chunk: c, Fields: spec.Dims, Values: gen.ChunkValues(spec, c)}
			if err := k.ProcessChunk(p, objs[i%splits]); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i < splits; i++ {
			if err := objs[0].Merge(objs[i]); err != nil {
				t.Fatal(err)
			}
		}
		done, err := k.GlobalReduce(objs[0])
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return
		}
	}
}

func frequentKeys(k *Kernel) map[string]int64 {
	out := map[string]int64{}
	for _, f := range k.Frequent() {
		out[key(f.Items)] = f.Support
	}
	return out
}

func TestRecoversPlantedPatterns(t *testing.T) {
	spec := testSpec()
	k, err := New(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, k, spec, 1)
	freq := frequentKeys(k)
	patterns := datagen.Transactions{}.Patterns(spec)
	for _, p := range patterns {
		if _, ok := freq[key(p)]; !ok {
			t.Errorf("planted pattern %v not found frequent", p)
		}
	}
	// Every subset of a planted pattern is frequent too (apriori
	// property on the data side).
	for _, p := range patterns {
		for drop := range p {
			sub := append(append([]int(nil), p[:drop]...), p[drop+1:]...)
			if len(sub) == 0 {
				continue
			}
			if _, ok := freq[key(sub)]; !ok {
				t.Errorf("subset %v of planted pattern %v not frequent", sub, p)
			}
		}
	}
}

func TestNoSpuriousLargeItemsets(t *testing.T) {
	spec := testSpec()
	k, _ := New(spec, DefaultParams())
	drive(t, k, spec, 1)
	patterns := datagen.Transactions{}.Patterns(spec)
	planted := map[string]bool{}
	for _, p := range patterns {
		// all subsets of planted patterns
		for mask := 1; mask < 1<<len(p); mask++ {
			var sub []int
			for i := range p {
				if mask&(1<<i) != 0 {
					sub = append(sub, p[i])
				}
			}
			planted[key(sub)] = true
		}
	}
	for _, f := range k.Frequent() {
		if len(f.Items) >= 2 && !planted[key(f.Items)] {
			t.Errorf("spurious frequent itemset %v (support %d)", f.Items, f.Support)
		}
	}
}

func TestSupportsAreConsistent(t *testing.T) {
	spec := testSpec()
	k, _ := New(spec, DefaultParams())
	drive(t, k, spec, 1)
	freq := frequentKeys(k)
	// Support is anti-monotone: a pattern's support cannot exceed any of
	// its single items'.
	for _, p := range (datagen.Transactions{}).Patterns(spec) {
		full := freq[key(p)]
		for _, item := range p {
			if single, ok := freq[key([]int{item})]; ok && full > single {
				t.Errorf("pattern %v support %d exceeds item %d support %d", p, full, item, single)
			}
		}
		// Planted patterns appear in ~30% of transactions.
		total := spec.Elems()
		share := float64(full) / float64(total)
		if share < 0.2 || share > 0.45 {
			t.Errorf("pattern %v support share %.2f outside [0.2, 0.45]", p, share)
		}
	}
}

func TestSplitMergeInvariant(t *testing.T) {
	spec := testSpec()
	k1, _ := New(spec, DefaultParams())
	drive(t, k1, spec, 1)
	k4, _ := New(spec, DefaultParams())
	drive(t, k4, spec, 4)
	f1, f4 := frequentKeys(k1), frequentKeys(k4)
	if len(f1) != len(f4) {
		t.Fatalf("frequent set sizes differ: %d vs %d", len(f1), len(f4))
	}
	for key, s := range f1 {
		if f4[key] != s {
			t.Fatalf("support differs for %q: %d vs %d", key, s, f4[key])
		}
	}
}

func TestAprioriGen(t *testing.T) {
	freq := [][]int{{1, 2}, {1, 3}, {2, 3}, {2, 4}}
	got := aprioriGen(freq)
	// {1,2}+{1,3} -> {1,2,3}: subsets {1,2},{1,3},{2,3} all frequent: keep.
	// {2,3}+{2,4} -> {2,3,4}: subset {3,4} missing: prune.
	if len(got) != 1 || got[0][0] != 1 || got[0][1] != 2 || got[0][2] != 3 {
		t.Fatalf("aprioriGen = %v, want [[1 2 3]]", got)
	}
	if aprioriGen(nil) != nil {
		t.Fatal("aprioriGen(nil) not empty")
	}
}

func TestEarlyTermination(t *testing.T) {
	// An absurd support threshold leaves no frequent items: pass 2 has no
	// candidates and the run stops after pass 1... GlobalReduce reports
	// done.
	spec := testSpec()
	k, err := New(spec, Params{MinSupport: 0.999, MaxItemsetSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	gen := datagen.Transactions{}
	layout, _ := adr.Partition(spec, 1, adr.RoundRobin)
	obj := k.NewObject()
	for _, c := range layout.Chunks() {
		p := reduction.Payload{Chunk: c, Fields: spec.Dims, Values: gen.ChunkValues(spec, c)}
		if err := k.ProcessChunk(p, obj); err != nil {
			t.Fatal(err)
		}
	}
	done, err := k.GlobalReduce(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("run did not terminate with zero candidates")
	}
	if len(k.Frequent()) != 0 {
		t.Fatalf("%d itemsets frequent at 99.9%% support", len(k.Frequent()))
	}
}

func TestValidation(t *testing.T) {
	if err := (Params{MinSupport: 0, MaxItemsetSize: 2}).Validate(); err == nil {
		t.Error("zero support accepted")
	}
	if err := (Params{MinSupport: 1.5, MaxItemsetSize: 2}).Validate(); err == nil {
		t.Error("support > 1 accepted")
	}
	if err := (Params{MinSupport: 0.1, MaxItemsetSize: 0}).Validate(); err == nil {
		t.Error("zero itemset size accepted")
	}
	bad := testSpec()
	bad.Kind = "points"
	if _, err := New(bad, DefaultParams()); err == nil {
		t.Error("points dataset accepted")
	}
	k, _ := New(testSpec(), DefaultParams())
	if err := k.ProcessChunk(reduction.Payload{}, reduction.NewFloatsObject(1)); err == nil {
		t.Error("wrong object type accepted")
	}
	if _, err := k.GlobalReduce(reduction.NewVectorObject(1)); err == nil {
		t.Error("wrong-size merged object accepted")
	}
}

func TestModelAndCost(t *testing.T) {
	m := Model()
	if m.RO != core.ROConstant || m.Global != core.GlobalLinearConstant {
		t.Fatalf("Model() = %+v", m)
	}
	cost, err := Cost(testSpec(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := cost.Validate(); err != nil {
		t.Fatal(err)
	}
	if cost.ROBytesPerNode(1e6, 1) != cost.ROBytesPerNode(4e6, 8) {
		t.Error("constant-class RO varied")
	}
	if cost.GlobalOps(1e6, 16) <= cost.GlobalOps(1e6, 2) {
		t.Error("GlobalOps not increasing in node count")
	}
}
