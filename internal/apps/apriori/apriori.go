// Package apriori implements apriori association mining as a FREERIDE-G
// generalized reduction — the first example the paper gives of the
// application class the middleware targets (Section 2.2, citing Agrawal &
// Shafer's parallel association mining). Each pass counts the support of
// the current candidate itemsets in a reduction object of counters; the
// global reduction keeps the frequent itemsets and generates the next
// candidates (apriori-gen with subset pruning).
//
// Its reduction object size depends only on the candidate count — bounded
// by the application parameters, not the dataset or node count — so it is
// a constant-class object with a linear-constant global reduction, like
// k-means.
package apriori

import (
	"fmt"
	"sort"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/datagen"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// Params configures an apriori run.
type Params struct {
	// MinSupport is the frequency threshold (fraction of transactions).
	MinSupport float64
	// MaxItemsetSize bounds the number of passes.
	MaxItemsetSize int
}

// DefaultParams mines itemsets up to size 5 at 15% support, matching the
// planted patterns of the transactions generator.
func DefaultParams() Params { return Params{MinSupport: 0.15, MaxItemsetSize: 5} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.MinSupport <= 0 || p.MinSupport > 1 {
		return fmt.Errorf("apriori: MinSupport %g outside (0,1]", p.MinSupport)
	}
	if p.MaxItemsetSize < 1 {
		return fmt.Errorf("apriori: MaxItemsetSize %d", p.MaxItemsetSize)
	}
	return nil
}

// Itemset is a frequent itemset with its measured support count.
type Itemset struct {
	Items   []int
	Support int64
}

// Kernel is one apriori run.
type Kernel struct {
	params Params
	width  int
	pass   int

	candidates [][]int // current pass's candidate itemsets (sorted items)
	total      int64   // transactions counted in pass 1
	frequent   []Itemset
}

// New creates a kernel for a transactions dataset. Pass 1 counts single
// items 1..TransactionItems.
func New(spec adr.DatasetSpec, params Params) (*Kernel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != "transactions" {
		return nil, fmt.Errorf("apriori: dataset kind %q, want transactions", spec.Kind)
	}
	k := &Kernel{params: params, width: spec.Dims}
	for item := 1; item <= datagen.TransactionItems; item++ {
		k.candidates = append(k.candidates, []int{item})
	}
	return k, nil
}

// Name implements reduction.Kernel.
func (k *Kernel) Name() string { return "apriori" }

// Iterations implements reduction.Kernel: at most MaxItemsetSize passes;
// the run finishes early when no candidates remain.
func (k *Kernel) Iterations() int { return k.params.MaxItemsetSize }

// Frequent returns all frequent itemsets found so far, smallest first.
func (k *Kernel) Frequent() []Itemset { return k.frequent }

// Candidates returns the current pass's candidate itemsets.
func (k *Kernel) Candidates() [][]int { return k.candidates }

// NewObject returns one support counter per candidate, plus a
// transaction-count cell.
func (k *Kernel) NewObject() reduction.Object {
	return reduction.NewVectorObject(len(k.candidates) + 1)
}

// ProcessChunk counts candidate support over one chunk of transactions.
func (k *Kernel) ProcessChunk(p reduction.Payload, obj reduction.Object) error {
	acc, ok := obj.(*reduction.VectorObject)
	if !ok {
		return fmt.Errorf("apriori: unexpected object %T", obj)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Fields != k.width {
		return fmt.Errorf("apriori: payload has %d fields, want %d", p.Fields, k.width)
	}
	if len(acc.V) != len(k.candidates)+1 {
		return fmt.Errorf("apriori: object has %d cells, want %d", len(acc.V), len(k.candidates)+1)
	}
	var present [datagen.TransactionItems + 1]bool
	for e := int64(0); e < p.Chunk.Elems; e++ {
		tx := p.Elem(e)
		for i := range present {
			present[i] = false
		}
		for _, slot := range tx {
			id := int(slot)
			if id >= 1 && id <= datagen.TransactionItems {
				present[id] = true
			}
		}
		for ci, cand := range k.candidates {
			hit := true
			for _, item := range cand {
				if !present[item] {
					hit = false
					break
				}
			}
			if hit {
				acc.V[ci]++
			}
		}
		acc.V[len(acc.V)-1]++ // transaction count
	}
	return nil
}

// GlobalReduce keeps the frequent candidates and generates the next
// pass's candidates; it reports done when none remain or the size bound
// is reached.
func (k *Kernel) GlobalReduce(merged reduction.Object) (bool, error) {
	acc, ok := merged.(*reduction.VectorObject)
	if !ok {
		return false, fmt.Errorf("apriori: unexpected object %T", merged)
	}
	if len(acc.V) != len(k.candidates)+1 {
		return false, fmt.Errorf("apriori: merged object has %d cells, want %d",
			len(acc.V), len(k.candidates)+1)
	}
	if k.pass == 0 {
		k.total = int64(acc.V[len(acc.V)-1])
		if k.total == 0 {
			return false, fmt.Errorf("apriori: no transactions counted")
		}
	}
	threshold := k.params.MinSupport * float64(k.total)
	var freq [][]int
	for ci, cand := range k.candidates {
		if acc.V[ci] >= threshold {
			freq = append(freq, cand)
			k.frequent = append(k.frequent, Itemset{
				Items:   append([]int(nil), cand...),
				Support: int64(acc.V[ci]),
			})
		}
	}
	k.pass++
	if k.pass >= k.params.MaxItemsetSize {
		return true, nil
	}
	k.candidates = aprioriGen(freq)
	return len(k.candidates) == 0, nil
}

// aprioriGen joins frequent k-itemsets sharing a (k-1)-prefix and prunes
// candidates with any infrequent subset — the classic candidate
// generation.
func aprioriGen(freq [][]int) [][]int {
	if len(freq) == 0 {
		return nil
	}
	have := make(map[string]bool, len(freq))
	for _, f := range freq {
		have[key(f)] = true
	}
	var out [][]int
	for i := 0; i < len(freq); i++ {
		for j := i + 1; j < len(freq); j++ {
			a, b := freq[i], freq[j]
			if !samePrefix(a, b) {
				continue
			}
			lo, hi := a[len(a)-1], b[len(b)-1]
			if lo > hi {
				lo, hi = hi, lo
			}
			cand := append(append([]int(nil), a[:len(a)-1]...), lo, hi)
			if allSubsetsFrequent(cand, have) {
				out = append(out, cand)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

func key(items []int) string {
	b := make([]byte, 0, len(items)*3)
	for _, it := range items {
		b = append(b, byte(it), byte(it>>8), ',')
	}
	return string(b)
}

func samePrefix(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent checks the apriori property: every (k-1)-subset of
// the candidate must itself be frequent.
func allSubsetsFrequent(cand []int, have map[string]bool) bool {
	if len(cand) <= 2 {
		return true // both 1-subsets were frequent by construction
	}
	sub := make([]int, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !have[key(sub)] {
			return false
		}
	}
	return true
}

func less(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Model returns the scaling classes: constant reduction object (bounded
// by the candidate count), linear-constant global reduction.
func Model() core.AppModel {
	return core.AppModel{RO: core.ROConstant, Global: core.GlobalLinearConstant}
}

// Cost returns the analytic work model consumed by the simulated backend.
// Candidate counts vary per pass; the model uses the dominant pass-1/2
// shape (catalog-sized counter vectors).
func Cost(spec adr.DatasetSpec, params Params) (reduction.CostModel, error) {
	if err := params.Validate(); err != nil {
		return reduction.CostModel{}, err
	}
	counters := datagen.TransactionItems + 1
	return reduction.CostModel{
		Name: "apriori",
		Mix:  reduction.WorkMix{Flop: 0.15, Mem: 0.45, Branch: 0.40},
		// Per transaction per pass: presence marking plus candidate
		// subset checks.
		OpsPerElem: float64(spec.Dims*4 + 3*counters),
		Iterations: params.MaxItemsetSize,
		ROBytesPerNode: func(totalElems int64, c int) units.Bytes {
			return units.Bytes(8 * counters) // constant class
		},
		GlobalOps: func(totalElems int64, c int) float64 {
			return float64(4 * c * counters)
		},
		BroadcastBytes: units.Bytes(8 * counters), // next candidate set
	}, nil
}
