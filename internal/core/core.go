// Package core implements the paper's contribution: a profile-based
// performance prediction framework for generalized-reduction applications
// on the FREERIDE-G middleware (Section 3 of the paper).
//
// A Profile records one execution's component breakdown — data retrieval
// (t_d), data communication (t_n), and data processing (t_c), with the
// serialized reduction-object communication (T_ro) and global reduction
// (T_g) parts of t_c — together with the configuration it ran on. A
// Predictor scales that profile to other configurations: different numbers
// of storage and compute nodes, dataset sizes, network bandwidths, and,
// through experimentally measured component scaling factors, entirely
// different clusters.
package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"freerideg/internal/units"
)

// Config identifies one execution configuration: a replica's storage-node
// count, a compute configuration, the bandwidth between them, and the
// dataset size. The paper's model is a function of exactly these.
type Config struct {
	// Cluster names the hardware both node sets run on.
	Cluster string `json:"cluster"`
	// DataNodes is n, the number of storage (data server) nodes.
	DataNodes int `json:"dataNodes"`
	// ComputeNodes is c, the number of processing nodes.
	ComputeNodes int `json:"computeNodes"`
	// Bandwidth is b, the per-storage-node bandwidth to the compute nodes.
	Bandwidth units.Rate `json:"bandwidth"`
	// DatasetBytes is s, the dataset size.
	DatasetBytes units.Bytes `json:"datasetBytes"`
}

// Validate reports whether the configuration is well-formed. The
// middleware requires ComputeNodes >= DataNodes (Section 2 of the paper).
func (c Config) Validate() error {
	switch {
	case c.Cluster == "":
		return errors.New("core: config without cluster")
	case c.DataNodes < 1:
		return fmt.Errorf("core: %d data nodes", c.DataNodes)
	case c.ComputeNodes < c.DataNodes:
		return fmt.Errorf("core: %d compute nodes < %d data nodes", c.ComputeNodes, c.DataNodes)
	case c.Bandwidth <= 0:
		return errors.New("core: non-positive bandwidth")
	case c.DatasetBytes <= 0:
		return errors.New("core: non-positive dataset size")
	}
	return nil
}

// String renders the configuration in the paper's "n-c" shorthand.
func (c Config) String() string {
	return fmt.Sprintf("%d-%d %v@%v on %s", c.DataNodes, c.ComputeNodes, c.DatasetBytes, c.Bandwidth, c.Cluster)
}

// Breakdown is the execution time split the framework models: t_d, t_n,
// and t_c.
type Breakdown struct {
	// Tdisk is the data retrieval component (t_d).
	Tdisk time.Duration `json:"tdisk"`
	// Tnetwork is the repository-to-compute communication component (t_n).
	Tnetwork time.Duration `json:"tnetwork"`
	// Tcompute is the data processing component (t_c), which contains the
	// serialized reduction-object communication and global reduction.
	Tcompute time.Duration `json:"tcompute"`
}

// Texec is the total execution time, the sum of the three components.
func (b Breakdown) Texec() time.Duration { return b.Tdisk + b.Tnetwork + b.Tcompute }

// Profile is the summary information collected from one execution
// (Section 3.1 of the paper).
type Profile struct {
	// App names the application the profile belongs to.
	App string `json:"app"`
	// Config is the configuration the profile run used.
	Config Config `json:"config"`
	// Breakdown is the measured component split.
	Breakdown
	// TdiskCached is the part of Tdisk spent re-reading cached chunks on
	// the compute nodes in passes after the first (zero when chunks are
	// cached in memory, the setting the paper's model assumes). Unlike
	// first-pass retrieval it scales with the compute-node count, so the
	// predictor treats it separately.
	TdiskCached time.Duration `json:"tdiskCached,omitempty"`
	// Tro is the reduction-object communication time contained in
	// Tcompute, summed over all passes (zero on a single compute node).
	Tro time.Duration `json:"tro"`
	// Tglobal is the global reduction time contained in Tcompute, summed
	// over all passes.
	Tglobal time.Duration `json:"tglobal"`
	// ROBytesPerNode is the maximum per-node reduction object size.
	ROBytesPerNode units.Bytes `json:"roBytesPerNode"`
	// BroadcastBytes is the per-pass master-to-workers result volume.
	BroadcastBytes units.Bytes `json:"broadcastBytes"`
	// Iterations is the number of passes the application performed.
	Iterations int `json:"iterations"`
}

// Validate reports whether the profile can seed predictions.
func (p Profile) Validate() error {
	if p.App == "" {
		return errors.New("core: profile without app name")
	}
	if err := p.Config.Validate(); err != nil {
		return fmt.Errorf("core: profile for %q: %w", p.App, err)
	}
	if p.Tdisk < 0 || p.Tnetwork < 0 || p.Tcompute < 0 {
		return fmt.Errorf("core: profile for %q has negative components", p.App)
	}
	if p.Tro < 0 || p.Tglobal < 0 {
		return fmt.Errorf("core: profile for %q has negative serialized parts", p.App)
	}
	if p.Tro+p.Tglobal > p.Tcompute {
		return fmt.Errorf("core: profile for %q: T_ro + T_g (%v) exceeds t_c (%v)",
			p.App, p.Tro+p.Tglobal, p.Tcompute)
	}
	if p.TdiskCached < 0 || p.TdiskCached > p.Tdisk {
		return fmt.Errorf("core: profile for %q: cached retrieval %v outside [0, t_d=%v]",
			p.App, p.TdiskCached, p.Tdisk)
	}
	if p.Iterations < 1 {
		return fmt.Errorf("core: profile for %q has %d iterations", p.App, p.Iterations)
	}
	return nil
}

// ROSizeClass describes how the per-node reduction object size scales
// (Section 3.3.1): constant, or linear in the data share.
type ROSizeClass int

const (
	// ROConstant: the object size depends only on application parameters
	// (k-means centroids, kNN neighbor lists).
	ROConstant ROSizeClass = iota
	// ROLinear: the per-node object grows linearly with the dataset size
	// and shrinks with the number of compute nodes — the object holds
	// per-data artifacts (feature lists, deferred per-chunk statistics),
	// so the total communicated volume scales with the dataset.
	ROLinear
)

func (c ROSizeClass) String() string {
	switch c {
	case ROConstant:
		return "constant"
	case ROLinear:
		return "linear"
	}
	return fmt.Sprintf("ROSizeClass(%d)", int(c))
}

// GlobalClass describes how the global reduction time scales
// (Section 3.3.2).
type GlobalClass int

const (
	// GlobalLinearConstant: T_g scales linearly with the number of
	// processing nodes and is independent of the dataset size.
	GlobalLinearConstant GlobalClass = iota
	// GlobalConstantLinear: T_g is independent of the node count and
	// linear in the dataset size.
	GlobalConstantLinear
)

func (c GlobalClass) String() string {
	switch c {
	case GlobalLinearConstant:
		return "linear-constant"
	case GlobalConstantLinear:
		return "constant-linear"
	}
	return fmt.Sprintf("GlobalClass(%d)", int(c))
}

// AppModel is the pair of scaling classes for one application. It can be
// supplied by the user or inferred from multiple profiles.
type AppModel struct {
	RO     ROSizeClass `json:"ro"`
	Global GlobalClass `json:"global"`
}

// Variant selects how much of the data processing structure the compute
// predictor models — the three curves in the paper's figures.
type Variant int

const (
	// NoComm scales t_c linearly, ignoring interprocessor communication
	// and global reduction (Section 3.3, first predictor).
	NoComm Variant = iota
	// ReductionComm additionally models reduction-object communication
	// (Section 3.3.1).
	ReductionComm
	// GlobalReduction additionally models the global reduction time
	// (Section 3.3.2) — the paper's most accurate predictor.
	GlobalReduction
)

func (v Variant) String() string {
	switch v {
	case NoComm:
		return "no communication"
	case ReductionComm:
		return "reduction communication"
	case GlobalReduction:
		return "global reduction"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists the three predictor variants in paper order.
func Variants() []Variant { return []Variant{NoComm, ReductionComm, GlobalReduction} }

// ParseVariant resolves a user-supplied variant name. It accepts the
// String() forms plus the short aliases the CLI tools and the prediction
// service use ("nocomm", "reduction", "global").
func ParseVariant(s string) (Variant, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "nocomm", "no-comm", "no communication":
		return NoComm, nil
	case "reduction", "ro", "reduction communication":
		return ReductionComm, nil
	case "global", "global reduction":
		return GlobalReduction, nil
	}
	return 0, fmt.Errorf("core: unknown predictor variant %q (want nocomm, reduction, or global)", s)
}

// Prediction is a predicted execution time with its component split.
type Prediction struct {
	Config  Config  `json:"config"`
	Variant Variant `json:"variant"`
	Breakdown
	// Tro and Tglobal are the serialized parts included in Tcompute
	// (zero for variants that do not model them).
	Tro     time.Duration `json:"tro"`
	Tglobal time.Duration `json:"tglobal"`
}
