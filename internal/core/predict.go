package core

import (
	"fmt"
	"time"

	"freerideg/internal/units"
)

// LinkCalibration is the experimentally determined bandwidth and latency
// of a cluster's interprocessor interconnect: communicating an object of
// r bytes costs w*r + l (Section 3.3.1).
type LinkCalibration struct {
	// W is the per-byte cost in seconds.
	W float64 `json:"w"`
	// L is the per-message latency.
	L time.Duration `json:"l"`
}

// MessageTime reports the modeled one-message cost for r bytes.
func (c LinkCalibration) MessageTime(r units.Bytes) time.Duration {
	return units.Seconds(c.W*float64(r)) + c.L
}

// Scaling holds the component-wise scaling factors between two clusters
// (Section 3.4): predicted time on cluster B = s_d*T_disk,A +
// s_n*T_network,A + s_c*T_compute,A.
type Scaling struct {
	Disk    float64 `json:"disk"`
	Network float64 `json:"network"`
	Compute float64 `json:"compute"`
}

// Predictor scales one application profile to other configurations.
type Predictor struct {
	// Profile is the base profile all predictions start from.
	Profile Profile
	// Model supplies the application's reduction-object size and global
	// reduction scaling classes.
	Model AppModel
	// Links maps cluster name to interconnect calibration; required for
	// the ReductionComm and GlobalReduction variants.
	Links map[string]LinkCalibration
	// Scalings maps a target cluster name to the scaling factors from the
	// profile's cluster; required for cross-cluster predictions.
	Scalings map[string]Scaling
	// DropStorageScaling removes the n/n̂ term from the network predictor,
	// for environments where throughput does not grow with storage nodes
	// (the paper notes this option; also used by the ablation bench).
	DropStorageScaling bool
}

// NewPredictor returns a predictor over a validated profile.
func NewPredictor(p Profile, m AppModel) (*Predictor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Predictor{
		Profile:  p,
		Model:    m,
		Links:    make(map[string]LinkCalibration),
		Scalings: make(map[string]Scaling),
	}, nil
}

// Predict estimates the execution time of the profiled application on cfg
// using the given predictor variant.
func (pr *Predictor) Predict(cfg Config, v Variant) (Prediction, error) {
	if err := cfg.Validate(); err != nil {
		return Prediction{}, err
	}
	base := pr.Profile.Config
	if cfg.Cluster == base.Cluster {
		return pr.predictSameCluster(cfg, v)
	}
	// Cross-cluster (Section 3.4): predict the identical configuration on
	// the profile's cluster, then scale each component.
	scale, ok := pr.Scalings[cfg.Cluster]
	if !ok {
		return Prediction{}, fmt.Errorf("core: no scaling factors from %q to %q", base.Cluster, cfg.Cluster)
	}
	if scale.Disk <= 0 || scale.Network <= 0 || scale.Compute <= 0 {
		return Prediction{}, fmt.Errorf("core: non-positive scaling factors to %q", cfg.Cluster)
	}
	onA := cfg
	onA.Cluster = base.Cluster
	p, err := pr.predictSameCluster(onA, v)
	if err != nil {
		return Prediction{}, err
	}
	p.Config = cfg
	p.Tdisk = scaleDur(p.Tdisk, scale.Disk)
	p.Tnetwork = scaleDur(p.Tnetwork, scale.Network)
	p.Tcompute = scaleDur(p.Tcompute, scale.Compute)
	p.Tro = scaleDur(p.Tro, scale.Compute)
	p.Tglobal = scaleDur(p.Tglobal, scale.Compute)
	return p, nil
}

func (pr *Predictor) predictSameCluster(cfg Config, v Variant) (Prediction, error) {
	base := pr.Profile.Config
	sRatio := float64(cfg.DatasetBytes) / float64(base.DatasetBytes)
	nRatio := float64(base.DataNodes) / float64(cfg.DataNodes)
	bRatio := float64(base.Bandwidth) / float64(cfg.Bandwidth)
	cRatio := float64(base.ComputeNodes) / float64(cfg.ComputeNodes)

	p := Prediction{Config: cfg, Variant: v}
	// T̂_disk = (ŝ/s) * (n/n̂) * t_d  (Section 3.2). When the profile ran
	// with disk (rather than memory) caching, the cached-pass re-reads
	// happen on the compute nodes and scale with ĉ, not n̂ — an extension
	// beyond the paper's memory-caching assumption.
	firstPass := pr.Profile.Tdisk - pr.Profile.TdiskCached
	p.Tdisk = scaleDur(firstPass, sRatio*nRatio) + scaleDur(pr.Profile.TdiskCached, sRatio*cRatio)
	// T̂_network = (ŝ/s) * (n/n̂) * (b/b̂) * t_n.
	netScale := sRatio * bRatio
	if !pr.DropStorageScaling {
		netScale *= nRatio
	}
	p.Tnetwork = scaleDur(pr.Profile.Tnetwork, netScale)

	switch v {
	case NoComm:
		// T̂_compute = (ŝ/s) * (c/ĉ) * t_c  (Section 3.3).
		p.Tcompute = scaleDur(pr.Profile.Tcompute, sRatio*cRatio)
	case ReductionComm:
		// T' = t_c − T_ro; scale T', then add the modeled T̂_ro.
		tro, err := pr.roTime(cfg, sRatio, cRatio)
		if err != nil {
			return Prediction{}, err
		}
		tPrime := pr.Profile.Tcompute - pr.Profile.Tro
		p.Tro = tro
		p.Tcompute = scaleDur(tPrime, sRatio*cRatio) + tro
	case GlobalReduction:
		// T'' = t_c − T_ro − T_g; scale T'', add T̂_ro and T̂_g.
		tro, err := pr.roTime(cfg, sRatio, cRatio)
		if err != nil {
			return Prediction{}, err
		}
		tg := pr.globalTime(cfg, sRatio)
		tDoublePrime := pr.Profile.Tcompute - pr.Profile.Tro - pr.Profile.Tglobal
		p.Tro = tro
		p.Tglobal = tg
		p.Tcompute = scaleDur(tDoublePrime, sRatio*cRatio) + tro + tg
	default:
		return Prediction{}, fmt.Errorf("core: unknown predictor variant %v", v)
	}
	return p, nil
}

// roTime models the per-run reduction-object communication time: in every
// pass the master serially receives ĉ−1 objects of the estimated per-node
// size r̂ and re-broadcasts the (constant-size) result, each message
// costing w*bytes + l on the target cluster's interconnect.
func (pr *Predictor) roTime(cfg Config, sRatio, cRatio float64) (time.Duration, error) {
	if cfg.ComputeNodes <= 1 {
		return 0, nil
	}
	cal, ok := pr.Links[cfg.Cluster]
	if !ok {
		return 0, fmt.Errorf("core: no link calibration for cluster %q", cfg.Cluster)
	}
	ro := pr.estimateROBytes(sRatio, cRatio)
	perPass := time.Duration(cfg.ComputeNodes-1) *
		(cal.MessageTime(ro) + cal.MessageTime(pr.Profile.BroadcastBytes))
	return time.Duration(pr.Profile.Iterations) * perPass, nil
}

// estimateROBytes estimates the per-node reduction object size on the
// target configuration from the profiled size (Section 3.3.1).
func (pr *Predictor) estimateROBytes(sRatio, cRatio float64) units.Bytes {
	switch pr.Model.RO {
	case ROLinear:
		// Per-node share of a dataset-proportional object.
		return units.Bytes(float64(pr.Profile.ROBytesPerNode) * sRatio * cRatio)
	default: // ROConstant
		return pr.Profile.ROBytesPerNode
	}
}

// globalTime estimates the global reduction time on the target
// configuration (Section 3.3.2).
func (pr *Predictor) globalTime(cfg Config, sRatio float64) time.Duration {
	base := pr.Profile.Config
	switch pr.Model.Global {
	case GlobalConstantLinear:
		return scaleDur(pr.Profile.Tglobal, sRatio)
	default: // GlobalLinearConstant
		return scaleDur(pr.Profile.Tglobal, float64(cfg.ComputeNodes)/float64(base.ComputeNodes))
	}
}

func scaleDur(d time.Duration, f float64) time.Duration {
	return units.Seconds(d.Seconds() * f)
}
