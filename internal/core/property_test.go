package core

import (
	"testing"
	"testing/quick"
	"time"

	"freerideg/internal/units"
)

// cfgFrom builds a valid config from fuzz inputs.
func cfgFrom(nRaw, cRaw, sRaw, bRaw uint8) Config {
	n := 1 << (int(nRaw) % 4) // 1,2,4,8
	c := n << (int(cRaw) % 3) // n..4n
	if c > 16 {
		c = 16
	}
	s := units.Bytes(int(sRaw)%1000+1) * units.MB
	b := units.Rate(int(bRaw)%400+10) * units.MBPerSec
	return Config{Cluster: "A", DataNodes: n, ComputeNodes: c, Bandwidth: b, DatasetBytes: s}
}

func TestPredictPropertyPositiveComponents(t *testing.T) {
	pr := mustPredictor(t, AppModel{RO: ROConstant, Global: GlobalLinearConstant})
	f := func(nRaw, cRaw, sRaw, bRaw uint8, vRaw uint8) bool {
		cfg := cfgFrom(nRaw, cRaw, sRaw, bRaw)
		v := Variants()[int(vRaw)%3]
		p, err := pr.Predict(cfg, v)
		if err != nil {
			return false
		}
		return p.Tdisk >= 0 && p.Tnetwork >= 0 && p.Tcompute >= 0 &&
			p.Tro >= 0 && p.Tglobal >= 0 && p.Texec() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictPropertyDiskScalesWithStorageNodes(t *testing.T) {
	pr := mustPredictor(t, AppModel{})
	f := func(sRaw, bRaw uint8) bool {
		a := cfgFrom(0, 2, sRaw, bRaw) // 1 data node
		b := a
		b.DataNodes, b.ComputeNodes = 2, a.ComputeNodes*2
		pa, err1 := pr.Predict(a, NoComm)
		pb, err2 := pr.Predict(b, NoComm)
		if err1 != nil || err2 != nil {
			return false
		}
		// Doubling storage nodes halves T̂_disk (within duration rounding).
		diff := pa.Tdisk/2 - pb.Tdisk
		return diff > -time.Microsecond && diff < time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictPropertyDatasetLinearity(t *testing.T) {
	// Doubling ŝ doubles every NoComm component exactly.
	pr := mustPredictor(t, AppModel{})
	f := func(nRaw, cRaw, sRaw, bRaw uint8) bool {
		a := cfgFrom(nRaw, cRaw, sRaw, bRaw)
		b := a
		b.DatasetBytes *= 2
		pa, err1 := pr.Predict(a, NoComm)
		pb, err2 := pr.Predict(b, NoComm)
		if err1 != nil || err2 != nil {
			return false
		}
		close := func(x, y time.Duration) bool {
			d := 2*x - y
			return d > -time.Microsecond && d < time.Microsecond
		}
		return close(pa.Tdisk, pb.Tdisk) && close(pa.Tnetwork, pb.Tnetwork) &&
			close(pa.Tcompute, pb.Tcompute)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictPropertyVariantsOrderedInCompute(t *testing.T) {
	// For configurations larger than the profile's, the serialized terms
	// only ever add compute time: NoComm <= ReductionComm <= Global when
	// the profile's Tro and Tg are zero-ish and classes grow with c.
	pr := mustPredictor(t, AppModel{RO: ROConstant, Global: GlobalLinearConstant})
	f := func(nRaw, cRaw, sRaw, bRaw uint8) bool {
		cfg := cfgFrom(nRaw, cRaw, sRaw, bRaw)
		if cfg.ComputeNodes < 2 {
			return true
		}
		pn, err1 := pr.Predict(cfg, NoComm)
		prc, err2 := pr.Predict(cfg, ReductionComm)
		pg, err3 := pr.Predict(cfg, GlobalReduction)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return pn.Tcompute <= prc.Tcompute && prc.Tcompute <= pg.Tcompute+time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictPropertyBandwidthOnlyMovesNetwork(t *testing.T) {
	pr := mustPredictor(t, AppModel{})
	f := func(nRaw, cRaw, sRaw uint8) bool {
		a := cfgFrom(nRaw, cRaw, sRaw, 50)
		b := a
		b.Bandwidth = a.Bandwidth * 2
		pa, err1 := pr.Predict(a, NoComm)
		pb, err2 := pr.Predict(b, NoComm)
		if err1 != nil || err2 != nil {
			return false
		}
		if pa.Tdisk != pb.Tdisk || pa.Tcompute != pb.Tcompute {
			return false
		}
		diff := pa.Tnetwork/2 - pb.Tnetwork
		return diff > -time.Microsecond && diff < time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictPropertyCrossClusterScalesTotal(t *testing.T) {
	pr := mustPredictor(t, AppModel{})
	pr.Scalings["B"] = Scaling{Disk: 0.5, Network: 0.5, Compute: 0.5}
	f := func(nRaw, cRaw, sRaw, bRaw uint8) bool {
		onA := cfgFrom(nRaw, cRaw, sRaw, bRaw)
		onB := onA
		onB.Cluster = "B"
		pa, err1 := pr.Predict(onA, NoComm)
		pb, err2 := pr.Predict(onB, NoComm)
		if err1 != nil || err2 != nil {
			return false
		}
		diff := pa.Texec()/2 - pb.Texec()
		return diff > -time.Microsecond && diff < time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
