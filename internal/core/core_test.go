package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"freerideg/internal/units"
)

func baseProfile() Profile {
	return Profile{
		App: "toy",
		Config: Config{
			Cluster:      "A",
			DataNodes:    1,
			ComputeNodes: 1,
			Bandwidth:    100 * units.MBPerSec,
			DatasetBytes: 100 * units.MB,
		},
		Breakdown: Breakdown{
			Tdisk:    10 * time.Second,
			Tnetwork: 5 * time.Second,
			Tcompute: 100 * time.Second,
		},
		Tro:            0,
		Tglobal:        2 * time.Second,
		ROBytesPerNode: 10 * units.KB,
		BroadcastBytes: units.KB,
		Iterations:     5,
	}
}

func mustPredictor(t *testing.T, m AppModel) *Predictor {
	t.Helper()
	pr, err := NewPredictor(baseProfile(), m)
	if err != nil {
		t.Fatal(err)
	}
	pr.Links["A"] = LinkCalibration{W: 1e-8, L: time.Millisecond}
	return pr
}

func durClose(t *testing.T, what string, got, want time.Duration) {
	t.Helper()
	if math.Abs(got.Seconds()-want.Seconds()) > 1e-6*math.Max(1, want.Seconds()) {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

func TestConfigValidate(t *testing.T) {
	good := baseProfile().Config
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Cluster: "A", DataNodes: 0, ComputeNodes: 1, Bandwidth: 1, DatasetBytes: 1},
		{Cluster: "A", DataNodes: 4, ComputeNodes: 2, Bandwidth: 1, DatasetBytes: 1},
		{Cluster: "A", DataNodes: 1, ComputeNodes: 1, Bandwidth: 0, DatasetBytes: 1},
		{Cluster: "A", DataNodes: 1, ComputeNodes: 1, Bandwidth: 1, DatasetBytes: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigString(t *testing.T) {
	s := baseProfile().Config.String()
	if !strings.HasPrefix(s, "1-1 ") || !strings.Contains(s, "on A") {
		t.Fatalf("Config.String() = %q, want n-c shorthand", s)
	}
}

func TestProfileValidate(t *testing.T) {
	good := baseProfile()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	noApp := good
	noApp.App = ""
	if err := noApp.Validate(); err == nil {
		t.Error("profile without app accepted")
	}
	negative := good
	negative.Tdisk = -time.Second
	if err := negative.Validate(); err == nil {
		t.Error("negative component accepted")
	}
	overflow := good
	overflow.Tro = 200 * time.Second
	if err := overflow.Validate(); err == nil {
		t.Error("Tro > Tcompute accepted")
	}
	noIter := good
	noIter.Iterations = 0
	if err := noIter.Validate(); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestTexecIsComponentSum(t *testing.T) {
	b := Breakdown{Tdisk: time.Second, Tnetwork: 2 * time.Second, Tcompute: 3 * time.Second}
	if b.Texec() != 6*time.Second {
		t.Fatalf("Texec = %v, want 6s", b.Texec())
	}
}

func TestPredictIdentityConfig(t *testing.T) {
	pr := mustPredictor(t, AppModel{RO: ROConstant, Global: GlobalLinearConstant})
	p, err := pr.Predict(pr.Profile.Config, GlobalReduction)
	if err != nil {
		t.Fatal(err)
	}
	// Same configuration must reproduce the profile exactly: Tro is zero
	// at one compute node and Tg scales by 1.
	durClose(t, "Tdisk", p.Tdisk, 10*time.Second)
	durClose(t, "Tnetwork", p.Tnetwork, 5*time.Second)
	durClose(t, "Tcompute", p.Tcompute, 100*time.Second)
}

func TestPredictDiskAndNetworkScaling(t *testing.T) {
	pr := mustPredictor(t, AppModel{})
	cfg := Config{
		Cluster: "A", DataNodes: 2, ComputeNodes: 4,
		Bandwidth: 50 * units.MBPerSec, DatasetBytes: 200 * units.MB,
	}
	p, err := pr.Predict(cfg, NoComm)
	if err != nil {
		t.Fatal(err)
	}
	// T̂d = (2)(1/2)(10s) = 10s; T̂n = (2)(1/2)(2)(5s) = 10s.
	durClose(t, "Tdisk", p.Tdisk, 10*time.Second)
	durClose(t, "Tnetwork", p.Tnetwork, 10*time.Second)
	// NoComm: T̂c = (2)(1/4)(100s) = 50s.
	durClose(t, "Tcompute", p.Tcompute, 50*time.Second)
	durClose(t, "Texec", p.Texec(), 70*time.Second)
}

func TestPredictDropStorageScaling(t *testing.T) {
	pr := mustPredictor(t, AppModel{})
	pr.DropStorageScaling = true
	cfg := Config{
		Cluster: "A", DataNodes: 2, ComputeNodes: 4,
		Bandwidth: 100 * units.MBPerSec, DatasetBytes: 100 * units.MB,
	}
	p, err := pr.Predict(cfg, NoComm)
	if err != nil {
		t.Fatal(err)
	}
	// Without the n/n̂ term the network time stays at the profile's 5s.
	durClose(t, "Tnetwork", p.Tnetwork, 5*time.Second)
	// The disk predictor keeps its n/n̂ term.
	durClose(t, "Tdisk", p.Tdisk, 5*time.Second)
}

func TestPredictReductionCommConstantRO(t *testing.T) {
	pr := mustPredictor(t, AppModel{RO: ROConstant})
	cfg := Config{
		Cluster: "A", DataNodes: 2, ComputeNodes: 4,
		Bandwidth: 50 * units.MBPerSec, DatasetBytes: 200 * units.MB,
	}
	p, err := pr.Predict(cfg, ReductionComm)
	if err != nil {
		t.Fatal(err)
	}
	// Per pass: 3 * (msg(10KB) + msg(1KB));
	// msg(10KB) = 10240e-8 s + 1ms; msg(1KB) = 1024e-8 s + 1ms.
	perPass := 3 * (102400*time.Nanosecond + time.Millisecond +
		10240*time.Nanosecond + time.Millisecond)
	wantRO := 5 * perPass
	durClose(t, "Tro", p.Tro, wantRO)
	durClose(t, "Tcompute", p.Tcompute, 50*time.Second+wantRO)
}

func TestPredictGlobalReductionLinearConstant(t *testing.T) {
	pr := mustPredictor(t, AppModel{RO: ROConstant, Global: GlobalLinearConstant})
	cfg := Config{
		Cluster: "A", DataNodes: 2, ComputeNodes: 4,
		Bandwidth: 50 * units.MBPerSec, DatasetBytes: 200 * units.MB,
	}
	p, err := pr.Predict(cfg, GlobalReduction)
	if err != nil {
		t.Fatal(err)
	}
	// T̂g = 2s * (4/1) = 8s (linear in nodes, independent of dataset size).
	durClose(t, "Tglobal", p.Tglobal, 8*time.Second)
	// T'' = 100 - 0 - 2 = 98s; scaled = 2 * 1/4 * 98 = 49s.
	want := 49*time.Second + p.Tro + 8*time.Second
	durClose(t, "Tcompute", p.Tcompute, want)
}

func TestPredictGlobalReductionConstantLinear(t *testing.T) {
	pr := mustPredictor(t, AppModel{RO: ROConstant, Global: GlobalConstantLinear})
	cfg := Config{
		Cluster: "A", DataNodes: 2, ComputeNodes: 4,
		Bandwidth: 100 * units.MBPerSec, DatasetBytes: 200 * units.MB,
	}
	p, err := pr.Predict(cfg, GlobalReduction)
	if err != nil {
		t.Fatal(err)
	}
	// T̂g = 2s * (200/100) = 4s (linear in dataset size, node-independent).
	durClose(t, "Tglobal", p.Tglobal, 4*time.Second)
}

func TestPredictLinearROShrinksPerNode(t *testing.T) {
	pr := mustPredictor(t, AppModel{RO: ROLinear})
	// Same dataset, 4 compute nodes: per-node object is 1/4 the profiled
	// size, so the gather is cheaper than under ROConstant.
	cfg := Config{
		Cluster: "A", DataNodes: 1, ComputeNodes: 4,
		Bandwidth: 100 * units.MBPerSec, DatasetBytes: 100 * units.MB,
	}
	linear, err := pr.Predict(cfg, ReductionComm)
	if err != nil {
		t.Fatal(err)
	}
	pr2 := mustPredictor(t, AppModel{RO: ROConstant})
	constant, err := pr2.Predict(cfg, ReductionComm)
	if err != nil {
		t.Fatal(err)
	}
	if linear.Tro >= constant.Tro {
		t.Fatalf("linear-RO Tro %v not below constant-RO %v", linear.Tro, constant.Tro)
	}
	// Doubling the dataset doubles the linear per-node object.
	cfg2 := cfg
	cfg2.DatasetBytes *= 2
	bigger, err := pr.Predict(cfg2, ReductionComm)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Tro <= linear.Tro {
		t.Fatalf("linear-RO Tro did not grow with dataset: %v vs %v", bigger.Tro, linear.Tro)
	}
}

func TestPredictSingleComputeNodeHasNoRO(t *testing.T) {
	pr := mustPredictor(t, AppModel{})
	cfg := pr.Profile.Config
	cfg.DatasetBytes *= 4
	p, err := pr.Predict(cfg, GlobalReduction)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tro != 0 {
		t.Fatalf("Tro = %v on one compute node, want 0", p.Tro)
	}
}

func TestPredictMissingCalibration(t *testing.T) {
	pr, err := NewPredictor(baseProfile(), AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Cluster: "A", DataNodes: 1, ComputeNodes: 2,
		Bandwidth: 100 * units.MBPerSec, DatasetBytes: 100 * units.MB,
	}
	if _, err := pr.Predict(cfg, ReductionComm); err == nil {
		t.Fatal("prediction without link calibration succeeded")
	}
	// NoComm needs no calibration.
	if _, err := pr.Predict(cfg, NoComm); err != nil {
		t.Fatalf("NoComm prediction failed: %v", err)
	}
}

func TestPredictCrossCluster(t *testing.T) {
	pr := mustPredictor(t, AppModel{RO: ROConstant, Global: GlobalLinearConstant})
	pr.Scalings["B"] = Scaling{Disk: 0.5, Network: 0.4, Compute: 0.3}
	cfg := Config{
		Cluster: "B", DataNodes: 1, ComputeNodes: 1,
		Bandwidth: 100 * units.MBPerSec, DatasetBytes: 100 * units.MB,
	}
	p, err := pr.Predict(cfg, GlobalReduction)
	if err != nil {
		t.Fatal(err)
	}
	durClose(t, "Tdisk", p.Tdisk, 5*time.Second)
	durClose(t, "Tnetwork", p.Tnetwork, 2*time.Second)
	durClose(t, "Tcompute", p.Tcompute, 30*time.Second)
	if p.Config.Cluster != "B" {
		t.Fatalf("prediction config cluster = %q, want B", p.Config.Cluster)
	}
}

func TestPredictCrossClusterMissingScaling(t *testing.T) {
	pr := mustPredictor(t, AppModel{})
	cfg := baseProfile().Config
	cfg.Cluster = "unknown"
	if _, err := pr.Predict(cfg, NoComm); err == nil {
		t.Fatal("cross-cluster prediction without scaling factors succeeded")
	}
}

func TestPredictRejectsBadConfigAndVariant(t *testing.T) {
	pr := mustPredictor(t, AppModel{})
	if _, err := pr.Predict(Config{}, NoComm); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := pr.Predict(baseProfile().Config, Variant(42)); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestNewPredictorRejectsBadProfile(t *testing.T) {
	bad := baseProfile()
	bad.Iterations = 0
	if _, err := NewPredictor(bad, AppModel{}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestVariantAndClassStrings(t *testing.T) {
	if NoComm.String() != "no communication" ||
		ReductionComm.String() != "reduction communication" ||
		GlobalReduction.String() != "global reduction" {
		t.Error("variant strings changed")
	}
	if !strings.Contains(Variant(9).String(), "9") {
		t.Error("unknown variant string")
	}
	if ROConstant.String() != "constant" || ROLinear.String() != "linear" {
		t.Error("RO class strings changed")
	}
	if GlobalLinearConstant.String() != "linear-constant" ||
		GlobalConstantLinear.String() != "constant-linear" {
		t.Error("global class strings changed")
	}
	if len(Variants()) != 3 {
		t.Error("Variants() must list the paper's three curves")
	}
}

func TestParseVariant(t *testing.T) {
	cases := []struct {
		in   string
		want Variant
	}{
		{"nocomm", NoComm},
		{"no-comm", NoComm},
		{"no communication", NoComm},
		{"reduction", ReductionComm},
		{"RO", ReductionComm},
		{"reduction communication", ReductionComm},
		{"global", GlobalReduction},
		{" Global Reduction ", GlobalReduction},
	}
	for _, c := range cases {
		got, err := ParseVariant(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseVariant("bogus"); err == nil {
		t.Error("ParseVariant accepted bogus variant")
	}
}
